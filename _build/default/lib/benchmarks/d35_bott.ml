(* D35_bott: 35 cores with a shared-memory bottleneck — 32 processing
   cores all stream to 3 memory controllers and get responses back,
   plus a nearest-neighbour processing pipeline and a few seeded
   cross-traffic flows. *)

open Noc_model

let n_cores = 35
let n_processors = 32
let memories = [| 32; 33; 34 |]

let build () =
  let rng = Rng.make 3535 in
  let traffic = Traffic.create ~n_cores in
  let add src dst bandwidth =
    ignore
      (Traffic.add_flow traffic ~src:(Ids.Core.of_int src)
         ~dst:(Ids.Core.of_int dst) ~bandwidth)
  in
  for p = 0 to n_processors - 1 do
    let mem = memories.(p mod Array.length memories) in
    add p mem 150.;
    (* write path: the bottleneck *)
    add mem p 75. (* read responses *)
  done;
  (* Neighbour pipeline across the processing cores. *)
  for p = 0 to n_processors - 2 do
    add p (p + 1) 40.
  done;
  (* A handful of long-range control flows. *)
  for _ = 1 to 12 do
    let src = Rng.int rng n_processors in
    let dst = Rng.int rng n_processors in
    if src <> dst then add src dst (10. +. float_of_int (Rng.int rng 4) *. 10.)
  done;
  traffic

let spec =
  {
    Spec.name = "D35_bott";
    description =
      "35 cores: 32 processors hammering 3 shared memory controllers, with a \
       neighbour pipeline and sparse cross traffic";
    n_cores;
    build;
  }
