open Noc_model

let bandwidth_proportional net ~packet_length ~duration ~capacity_mbps ~seed =
  if duration < 1 then invalid_arg "Workloads.bandwidth_proportional: duration < 1";
  if packet_length < 1 then
    invalid_arg "Workloads.bandwidth_proportional: packet_length < 1";
  if capacity_mbps <= 0. then
    invalid_arg "Workloads.bandwidth_proportional: capacity <= 0";
  let rng = Rng.make seed in
  let next_id = ref 0 in
  let packets_for (f : Traffic.flow) =
    match Network.route net f.Traffic.id with
    | [] -> []
    | route ->
        let flits =
          f.Traffic.bandwidth /. capacity_mbps *. float_of_int duration
        in
        let n = max 1 (int_of_float (flits /. float_of_int packet_length)) in
        let interval = max 1 (duration / n) in
        List.init n (fun j ->
            let jitter = Rng.int rng (max 1 (interval / 2)) in
            let id = !next_id in
            incr next_id;
            Noc_sim.Packet.make ~id ~flow:f.Traffic.id ~route
              ~length:packet_length
              ~inject_at:(min (duration - 1) ((j * interval) + jitter)))
    in
  List.concat_map packets_for (Traffic.flows (Network.traffic net))

let offered_load net ~capacity_mbps =
  let flows =
    List.filter
      (fun (f : Traffic.flow) -> Network.route net f.Traffic.id <> [])
      (Traffic.flows (Network.traffic net))
  in
  match flows with
  | [] -> 0.
  | _ ->
      List.fold_left
        (fun acc (f : Traffic.flow) -> acc +. (f.Traffic.bandwidth /. capacity_mbps))
        0. flows
      /. float_of_int (List.length flows)
