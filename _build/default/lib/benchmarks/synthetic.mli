(** Classic synthetic traffic patterns (uniform random, transpose,
    bit-complement, hotspot, neighbour ring): the standard kernels NoC
    papers sweep when no application trace is available.  They
    complement the SoC benchmarks with controllable structure. *)

open Noc_model

val uniform : n_cores:int -> flows_per_core:int -> seed:int -> Traffic.t
(** Each core sends to [flows_per_core] distinct random peers,
    bandwidth 50–200 MB/s quantized.
    @raise Invalid_argument when [flows_per_core >= n_cores]. *)

val transpose : n_cores:int -> bandwidth:float -> Traffic.t
(** Core [i] sends to core [(i * k) mod n] where [k = ceil(sqrt n)] —
    the matrix-transpose permutation generalized to any core count;
    cores mapping to themselves stay silent. *)

val bit_complement : n_cores:int -> bandwidth:float -> Traffic.t
(** Core [i] sends to core [n - 1 - i]; the middle core (odd [n])
    stays silent. *)

val hotspot :
  n_cores:int -> n_hotspots:int -> background:float -> hotspot_bw:float ->
  Traffic.t
(** Every core sends [hotspot_bw] to its designated hotspot (the last
    [n_hotspots] cores, round-robin) plus [background] to its ring
    successor.
    @raise Invalid_argument when [n_hotspots] is not in
    [1 .. n_cores - 1]. *)

val neighbour_ring : n_cores:int -> bandwidth:float -> Traffic.t
(** Core [i] sends to core [(i + 1) mod n]: the pattern that makes
    rings deadlock under minimal routing. *)

val spec_of :
  name:string -> description:string -> n_cores:int -> (unit -> Traffic.t) ->
  Spec.t
(** Wrap any generator as a benchmark {!Spec.t}. *)
