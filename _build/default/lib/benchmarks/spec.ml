open Noc_model

type t = {
  name : string;
  description : string;
  n_cores : int;
  build : unit -> Traffic.t;
}

let flows_of_table ~n_cores rows =
  let traffic = Traffic.create ~n_cores in
  List.iter
    (fun (src, dst, bandwidth) ->
      ignore
        (Traffic.add_flow traffic ~src:(Ids.Core.of_int src)
           ~dst:(Ids.Core.of_int dst) ~bandwidth))
    rows;
  traffic

let pp ppf t =
  Format.fprintf ppf "%s: %d cores — %s" t.name t.n_cores t.description
