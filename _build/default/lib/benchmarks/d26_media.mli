(** D26_media: 26-core multimedia + wireless SoC (video/audio
    pipelines, baseband subsystem, shared SRAM/DRAM, DMA), the paper's
    Figure 8 case study.  Deterministic explicit flow table. *)

val spec : Spec.t

val flow_table : (int * int * float) list
(** The raw [(src, dst, MB/s)] rows, exposed for tests and docs. *)

val n_cores : int
