(** Benchmark descriptors.  Each benchmark is a named, deterministic
    generator of a communication graph; the topology for a given switch
    count is synthesized separately ({!Noc_synth.Custom}).

    These are synthetic stand-ins for the proprietary SoC designs of
    the paper's ref. [21] — see DESIGN.md for the substitution
    rationale.  Core counts and traffic structure follow the published
    descriptions. *)

open Noc_model

type t = {
  name : string;
  description : string;
  n_cores : int;
  build : unit -> Traffic.t;  (** Fresh, identical traffic each call. *)
}

val flows_of_table : n_cores:int -> (int * int * float) list -> Traffic.t
(** Builds a communication graph from explicit
    [(src, dst, bandwidth MB/s)] rows. *)

val pp : Format.formatter -> t -> unit
