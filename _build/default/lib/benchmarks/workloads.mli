(** Simulator workloads derived from the benchmark bandwidth demands:
    each flow injects packets at a rate proportional to its demanded
    bandwidth relative to link capacity, with seeded jitter.  This is
    the realistic counterpart to {!Noc_sim.Traffic_gen.burst}'s
    adversarial stress pattern. *)

open Noc_model

val bandwidth_proportional :
  Network.t ->
  packet_length:int ->
  duration:int ->
  capacity_mbps:float ->
  seed:int ->
  Noc_sim.Packet.t list
(** Over [duration] cycles, flow [f] injects about
    [f.bandwidth / capacity * duration / packet_length] packets at
    jittered, roughly even intervals.  Flows with empty routes are
    skipped; every flow with positive demand gets at least one packet.
    Deterministic for a fixed seed.
    @raise Invalid_argument when [duration < 1], [packet_length < 1]
    or [capacity_mbps <= 0]. *)

val offered_load : Network.t -> capacity_mbps:float -> float
(** Mean per-flow injection rate in flits/cycle implied by the
    demands — a quick saturation sanity check before simulating. *)
