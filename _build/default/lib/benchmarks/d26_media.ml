(* D26_media: a 26-core multimedia + wireless SoC, mirroring the
   published description of the benchmark used in the paper (video and
   audio pipelines, a wireless baseband subsystem, shared SRAM/DRAM and
   DMA).  The flow table is explicit and deterministic. *)

(* Core roles, for readability of the table below. *)
let arm = 0
let dsp0 = 1
let dsp1 = 2
let dsp2 = 3
let video_enc = 4
let video_dec = 5
let audio_enc = 6
let audio_dec = 7
let imaging = 8
let baseband = 9
let rf_frontend = 10
let crypto = 11
let sram0 = 12
let sram1 = 13
let sram2 = 14
let sram3 = 15
let dram0 = 16
let dram1 = 17
let dma = 18
let bridge = 19
let display = 20
let camera = 21
let usb = 22
let storage = 23
let gps = 24
let bluetooth = 25

let n_cores = 26

(* (src, dst, bandwidth MB/s) *)
let flow_table =
  [
    (* Video capture/encode pipeline. *)
    (camera, imaging, 400.);
    (imaging, sram0, 400.);
    (sram0, video_enc, 400.);
    (video_enc, dram0, 200.);
    (arm, video_enc, 20.);
    (* Video decode/display pipeline. *)
    (dram0, video_dec, 200.);
    (video_dec, sram1, 400.);
    (sram1, display, 400.);
    (dram0, display, 350.);
    (arm, video_dec, 20.);
    (* Imaging assistance on a DSP. *)
    (imaging, dsp2, 100.);
    (dsp2, sram2, 80.);
    (* Audio pipelines. *)
    (storage, audio_dec, 60.);
    (audio_dec, sram2, 60.);
    (sram2, audio_enc, 40.);
    (audio_enc, dram1, 50.);
    (dram1, audio_dec, 60.);
    (audio_dec, bridge, 30.);
    (dsp2, audio_enc, 50.);
    (* Wireless subsystem. *)
    (rf_frontend, baseband, 300.);
    (baseband, rf_frontend, 150.);
    (baseband, dsp0, 200.);
    (dsp0, baseband, 120.);
    (dsp0, sram3, 200.);
    (sram3, dsp1, 150.);
    (dsp1, dram1, 100.);
    (gps, baseband, 30.);
    (bluetooth, baseband, 20.);
    (baseband, crypto, 80.);
    (crypto, dram1, 80.);
    (baseband, dram1, 120.);
    (dram1, baseband, 120.);
    (* CPU to memories and peripherals. *)
    (arm, dram0, 150.);
    (dram0, arm, 300.);
    (arm, dram1, 100.);
    (dram1, arm, 200.);
    (arm, sram0, 50.);
    (arm, sram1, 50.);
    (arm, sram2, 50.);
    (arm, sram3, 50.);
    (arm, bridge, 40.);
    (arm, crypto, 20.);
    (crypto, arm, 20.);
    (arm, baseband, 30.);
    (arm, camera, 10.);
    (arm, display, 15.);
    (arm, gps, 5.);
    (arm, bluetooth, 5.);
    (arm, dma, 10.);
    (* DMA engine. *)
    (dma, dram0, 250.);
    (dram0, dma, 250.);
    (dma, sram1, 120.);
    (dma, sram2, 120.);
    (* Inter-DSP traffic. *)
    (dsp0, dsp1, 80.);
    (dsp1, dsp0, 80.);
    (dsp1, dsp2, 60.);
    (dsp2, dsp1, 60.);
    (* Peripheral bridge cluster. *)
    (bridge, usb, 60.);
    (usb, bridge, 60.);
    (bridge, storage, 120.);
    (storage, bridge, 120.);
    (usb, dram1, 80.);
    (dram1, usb, 80.);
    (storage, dram0, 150.);
    (dram0, storage, 100.);
    (bluetooth, dram1, 15.);
    (gps, dram1, 10.);
  ]

let spec =
  {
    Spec.name = "D26_media";
    description =
      "26-core multimedia + wireless SoC: video/audio pipelines, baseband, \
       shared memories, DMA";
    n_cores;
    build = (fun () -> Spec.flows_of_table ~n_cores flow_table);
  }
