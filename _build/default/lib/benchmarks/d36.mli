(** D36_k: 36 processing cores, each streaming to [k] pseudo-randomly
    chosen peers — the paper's dense stress benchmarks (Figure 9 uses
    [k = 8]).  Seeded, so each variant is fixed forever. *)

val make : int -> Spec.t
(** [make k] is the D36_k benchmark. *)

val d36_4 : Spec.t
val d36_6 : Spec.t
val d36_8 : Spec.t
val n_cores : int
