(** D38_tvopd: a 38-core TV object-plane-decoder-style design — two
    long decode pipelines with cross-coupling, two shared memories and
    a control processor. *)

val spec : Spec.t
val n_cores : int

val mem0 : int
val mem1 : int
val control : int
(** Distinguished core ids, exposed for structural tests. *)
