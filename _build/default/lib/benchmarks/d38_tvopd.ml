(* D38_tvopd: a 38-core TV object-plane-decoder-style design — two long
   decode pipelines with cross-coupling, two shared memories, and a
   control processor, following the published structure of the TVOPD
   benchmark family. *)

open Noc_model

let n_cores = 38
let mem0 = 36
let mem1 = 37
let control = 0

let build () =
  let traffic = Traffic.create ~n_cores in
  let add src dst bandwidth =
    ignore
      (Traffic.add_flow traffic ~src:(Ids.Core.of_int src)
         ~dst:(Ids.Core.of_int dst) ~bandwidth)
  in
  (* Pipeline A: stages 1..17; Pipeline B: stages 18..35. *)
  for s = 1 to 16 do
    add s (s + 1) (60. +. float_of_int ((s mod 4) * 30))
  done;
  for s = 18 to 34 do
    add s (s + 1) (60. +. float_of_int ((s mod 4) * 30))
  done;
  (* Cross-coupling between the two planes. *)
  add 8 20 90.;
  add 26 5 90.;
  add 12 30 45.;
  add 33 14 45.;
  (* Memory traffic: every fourth stage spills/fills. *)
  List.iter
    (fun s ->
      let m = if s mod 8 = 0 then mem0 else mem1 in
      add s m 120.;
      add m s 120.)
    [ 4; 8; 12; 16; 20; 24; 28; 32 ];
  (* Control processor commands all pipeline heads and memory. *)
  List.iter (fun s -> add control s 10.) [ 1; 18; mem0; mem1 ];
  add 17 mem0 200.;
  add 35 mem1 200.;
  add mem0 1 150.;
  add mem1 18 150.;
  traffic

let spec =
  {
    Spec.name = "D38_tvopd";
    description =
      "38-core TV object plane decoder: two long pipelines, cross-coupling, \
       two shared memories, one control core";
    n_cores;
    build;
  }
