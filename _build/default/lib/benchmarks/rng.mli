(** Tiny deterministic pseudo-random generator (SplitMix64), so every
    benchmark instantiation is bit-identical across runs and platforms.
    Not for cryptography; for reproducible workload synthesis only. *)

type t

val make : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument when [bound <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val sample_distinct : t -> int -> exclude:int -> count:int -> int list
(** [sample_distinct t bound ~exclude ~count] draws [count] distinct
    values from [0, bound) \ {exclude}, in draw order.
    @raise Invalid_argument when fewer than [count] values exist. *)
