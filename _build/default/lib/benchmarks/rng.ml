type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }

(* SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, and excellent
   stream quality for this purpose. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit
     native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. v /. 9007199254740992.0 (* 2^53 *)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let sample_distinct t bound ~exclude ~count =
  let available = if exclude >= 0 && exclude < bound then bound - 1 else bound in
  if count > available then invalid_arg "Rng.sample_distinct: not enough values";
  let chosen = Hashtbl.create count in
  let rec draw acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let v = int t bound in
      if v = exclude || Hashtbl.mem chosen v then draw acc remaining
      else begin
        Hashtbl.replace chosen v ();
        draw (v :: acc) (remaining - 1)
      end
    end
  in
  draw [] count
