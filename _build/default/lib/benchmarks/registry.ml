let all =
  [
    D26_media.spec;
    D36.d36_4;
    D36.d36_6;
    D36.d36_8;
    D35_bott.spec;
    D38_tvopd.spec;
  ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii s.Spec.name = target) all

let names = List.map (fun s -> s.Spec.name) all
