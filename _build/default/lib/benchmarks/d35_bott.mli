(** D35_bott: 35 cores with a shared-memory bottleneck — 32 processors
    stream to 3 memory controllers (with responses), plus a neighbour
    pipeline and seeded sparse cross traffic. *)

val spec : Spec.t
val n_cores : int

val memories : int array
(** The memory-controller core ids (the hotspots). *)
