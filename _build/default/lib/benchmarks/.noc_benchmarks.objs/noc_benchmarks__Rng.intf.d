lib/benchmarks/rng.mli:
