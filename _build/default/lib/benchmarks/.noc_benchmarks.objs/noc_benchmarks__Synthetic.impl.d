lib/benchmarks/synthetic.ml: Ids List Noc_model Rng Spec Traffic
