lib/benchmarks/d36.mli: Spec
