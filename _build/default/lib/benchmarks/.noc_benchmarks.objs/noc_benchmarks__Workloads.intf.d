lib/benchmarks/workloads.mli: Network Noc_model Noc_sim
