lib/benchmarks/spec.mli: Format Noc_model Traffic
