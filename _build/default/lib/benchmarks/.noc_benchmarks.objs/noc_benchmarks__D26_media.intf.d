lib/benchmarks/d26_media.mli: Spec
