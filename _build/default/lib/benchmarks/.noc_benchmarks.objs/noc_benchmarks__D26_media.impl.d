lib/benchmarks/d26_media.ml: Spec
