lib/benchmarks/d38_tvopd.ml: Ids List Noc_model Spec Traffic
