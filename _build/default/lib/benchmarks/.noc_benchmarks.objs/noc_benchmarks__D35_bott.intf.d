lib/benchmarks/d35_bott.mli: Spec
