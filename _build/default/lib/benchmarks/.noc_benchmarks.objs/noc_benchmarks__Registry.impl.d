lib/benchmarks/registry.ml: D26_media D35_bott D36 D38_tvopd List Spec String
