lib/benchmarks/workloads.ml: List Network Noc_model Noc_sim Rng Traffic
