lib/benchmarks/registry.mli: Spec
