lib/benchmarks/synthetic.mli: Noc_model Spec Traffic
