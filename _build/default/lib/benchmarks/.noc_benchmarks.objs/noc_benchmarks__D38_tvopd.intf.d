lib/benchmarks/d38_tvopd.mli: Spec
