lib/benchmarks/d35_bott.ml: Array Ids Noc_model Rng Spec Traffic
