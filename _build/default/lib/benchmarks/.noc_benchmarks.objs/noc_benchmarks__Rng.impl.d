lib/benchmarks/rng.ml: Array Hashtbl Int64 List
