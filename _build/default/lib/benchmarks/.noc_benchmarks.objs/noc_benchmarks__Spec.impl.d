lib/benchmarks/spec.ml: Format Ids List Noc_model Traffic
