lib/benchmarks/d36.ml: Ids List Noc_model Printf Rng Spec Traffic
