(** All benchmarks of the evaluation, in the order of Figure 10. *)

val all : Spec.t list
(** D26_media, D36_4, D36_6, D36_8, D35_bott, D38_tvopd. *)

val find : string -> Spec.t option
(** Lookup by name (case-insensitive). *)

val names : string list
