open Noc_model

type verdict = {
  deadlock_free : bool;
  connectivity_failure : string option;
  extended_cdg_cycle : Channel.t list option;
  n_escape_channels : int;
  n_extended_dependencies : int;
}

let escape_everything (_ : Channel.t) = true

(* Switches reachable from [start] by following the function towards
   [dst] (the places a packet might find itself). *)
let closure rf topo ~start ~dst =
  let n = Topology.n_switches topo in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(Ids.Switch.to_int start) <- true;
  Queue.add start q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    if not (Ids.Switch.equal u dst) then
      List.iter
        (fun c ->
          let v = (Topology.link topo (Channel.link c)).Topology.dst in
          if not seen.(Ids.Switch.to_int v) then begin
            seen.(Ids.Switch.to_int v) <- true;
            Queue.add v q
          end)
        (Routing_function.options rf ~at:u ~dst)
  done;
  seen

let reaches rf topo ~start ~dst =
  let seen = closure rf topo ~start ~dst in
  seen.(Ids.Switch.to_int dst)

(* Part 1: from anywhere the full function can take a packet, the
   escape subfunction must still deliver. *)
let connectivity net rf r1 =
  let topo = Network.topology net in
  let check_flow (f : Traffic.flow) =
    let src, dst = Network.endpoints net f.Traffic.id in
    if Ids.Switch.equal src dst then Ok ()
    else begin
      let reachable = closure rf topo ~start:src ~dst in
      let n = Topology.n_switches topo in
      let rec scan u =
        if u >= n then Ok ()
        else if
          reachable.(u)
          && (not (Ids.Switch.equal (Ids.Switch.of_int u) dst))
          && not (reaches r1 topo ~start:(Ids.Switch.of_int u) ~dst)
        then
          Error
            (Format.asprintf
               "escape subfunction cannot deliver flow %a from %a to %a"
               Ids.Flow.pp f.Traffic.id Ids.Switch.pp (Ids.Switch.of_int u)
               Ids.Switch.pp dst)
        else scan (u + 1)
      in
      scan 0
    end
  in
  let rec all = function
    | [] -> Ok ()
    | f :: rest -> (
        match check_flow f with Ok () -> all rest | Error _ as e -> e)
  in
  all (Traffic.flows (Network.traffic net))

(* Part 2: the extended CDG over escape channels, with direct and
   indirect (adaptive-detour) dependencies. *)
let extended_cdg net rf r1 ~escape =
  let topo = Network.topology net in
  let channels = Array.of_list (List.filter escape (Topology.channels topo)) in
  let index = Channel.Table.create 64 in
  Array.iteri (fun i c -> Channel.Table.replace index c i) channels;
  let g = Noc_graph.Digraph.create ~initial_capacity:(max 1 (Array.length channels)) () in
  if Array.length channels > 0 then
    Noc_graph.Digraph.ensure_vertex g (Array.length channels - 1);
  let destinations =
    List.sort_uniq Ids.Switch.compare
      (List.map
         (fun (f : Traffic.flow) -> snd (Network.endpoints net f.Traffic.id))
         (Traffic.flows (Network.traffic net)))
  in
  let head c = (Topology.link topo (Channel.link c)).Topology.dst in
  let add_deps_for dst =
    (* Switches that may hold a packet heading to [dst]: union of
       closures from every source of a flow to [dst].  Being generous
       (all switches with options) is sound and simpler. *)
    let n = Topology.n_switches topo in
    for u = 0 to n - 1 do
      let at = Ids.Switch.of_int u in
      let escapes_here = Routing_function.options r1 ~at ~dst in
      let adaptive_closure start =
        (* Switches reachable from [start] using only adaptive
           (non-escape) channels of the full function. *)
        let seen = Array.make n false in
        let q = Queue.create () in
        seen.(Ids.Switch.to_int start) <- true;
        Queue.add start q;
        while not (Queue.is_empty q) do
          let w = Queue.pop q in
          if not (Ids.Switch.equal w dst) then
            List.iter
              (fun c ->
                if not (escape c) then begin
                  let v = head c in
                  if not seen.(Ids.Switch.to_int v) then begin
                    seen.(Ids.Switch.to_int v) <- true;
                    Queue.add v q
                  end
                end)
              (Routing_function.options rf ~at:w ~dst)
        done;
        seen
      in
      let dep c1 =
        let reach = adaptive_closure (head c1) in
        let u1 = Channel.Table.find index c1 in
        for w = 0 to n - 1 do
          if reach.(w) && not (Ids.Switch.equal (Ids.Switch.of_int w) dst) then
            List.iter
              (fun c2 ->
                let u2 = Channel.Table.find index c2 in
                if u1 <> u2 then Noc_graph.Digraph.add_edge g u1 u2)
              (Routing_function.options r1 ~at:(Ids.Switch.of_int w) ~dst)
        done
      in
      List.iter dep escapes_here
    done
  in
  List.iter add_deps_for destinations;
  (g, channels)

let check net rf ~escape =
  let r1 = Routing_function.restrict rf ~keep:escape in
  let connectivity_failure =
    match connectivity net rf r1 with Ok () -> None | Error e -> Some e
  in
  let g, channels = extended_cdg net rf r1 ~escape in
  let extended_cdg_cycle =
    Option.map
      (List.map (fun v -> channels.(v)))
      (Noc_graph.Cycles.shortest g)
  in
  {
    deadlock_free = connectivity_failure = None && extended_cdg_cycle = None;
    connectivity_failure;
    extended_cdg_cycle;
    n_escape_channels = Array.length channels;
    n_extended_dependencies = Noc_graph.Digraph.n_edges g;
  }

let pp_verdict ppf v =
  Format.fprintf ppf
    "@[<v>Duato check: %s (%d escape channels, %d extended dependencies)"
    (if v.deadlock_free then "DEADLOCK-FREE" else "NOT PROVEN FREE")
    v.n_escape_channels v.n_extended_dependencies;
  (match v.connectivity_failure with
  | Some e -> Format.fprintf ppf "@,connectivity: %s" e
  | None -> ());
  (match v.extended_cdg_cycle with
  | Some cycle ->
      Format.fprintf ppf "@,extended CDG cycle: %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
           Channel.pp)
        cycle
  | None -> ());
  Format.fprintf ppf "@]"
