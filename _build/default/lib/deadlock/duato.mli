(** Duato's necessary-and-sufficient condition for deadlock-free
    adaptive wormhole routing (the paper's ref. [12]).

    An adaptive routing function [R] is deadlock-free if there is a
    subset of {e escape channels} [E] such that
    + the subfunction [R1 = R restricted to E] is connected — a packet
      can always fall back to escape channels and still reach its
      destination from anywhere the full function may take it; and
    + the {e extended} channel dependency graph of [R1] is acyclic,
      where besides the direct dependencies (escape channel, then
      escape channel at the next switch) it also contains the
      {e indirect} dependencies: escape channel, a detour over
      adaptive channels, then the next escape channel.

    This module checks both parts for a concrete escape predicate, and
    produces a certificate or a counterexample. *)

open Noc_model

type verdict = {
  deadlock_free : bool;
  connectivity_failure : string option;
      (** Why part 1 failed, when it did. *)
  extended_cdg_cycle : Channel.t list option;
      (** A cycle of escape channels in the extended CDG, when part 2
          failed. *)
  n_escape_channels : int;
  n_extended_dependencies : int;
}

val check :
  Network.t -> Routing_function.t -> escape:(Channel.t -> bool) -> verdict
(** Evaluates Duato's condition for the routing function and escape
    set on the network's flow endpoints. *)

val escape_everything : Channel.t -> bool
(** The trivial escape set (every channel): Duato's condition then
    degenerates to plain CDG acyclicity of the full function. *)

val pp_verdict : Format.formatter -> verdict -> unit
