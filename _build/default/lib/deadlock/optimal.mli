(** Exact minimum-cost sequencing of the paper's break operator, by
    branch-and-bound — the oracle that measures the greedy heuristic's
    optimality gap.

    The decision space is the algorithm's own: at every cyclic state,
    break the current smallest cycle at {e any} of its dependencies in
    {e either} direction (Algorithm 1 greedily picks one; this search
    tries them all, pruning with the cheapest-so-far bound).  The
    result is therefore the minimum over all Algorithm-1-style break
    sequences — a strict improvement bound for the paper's greedy
    choice, though a hypothetical method with a different repair
    operator could in principle do better still.  Exponential in the
    worst case, so it carries a node budget; within the budget it
    either exhausts the space or reports the best sequence found.
    Practical for the CDGs this project meets (tens of channels, a
    handful of cycles). *)

open Noc_model

type result = {
  vcs_added : int;  (** Cost of the best solution found. *)
  proven_optimal : bool;
      (** [true] when the break-sequence space was exhausted within
          budget. *)
  nodes_explored : int;
  solution : Network.t;
      (** A copy of the input network with the best break sequence
          applied (deadlock-free when any solution was found). *)
}

val search : ?node_budget:int -> Network.t -> result
(** Branch-and-bound over break sequences (default budget: 20_000
    nodes).  The input network is not mutated. *)

val pp_result : Format.formatter -> result -> unit
