(** Up*/down* routing — the classic turn-prohibition alternative the
    paper discusses (refs [17], [18]): build a BFS spanning tree over
    the switches, orient every link "up" (towards the root, by
    (level, id) order) or "down", and restrict every route to an
    up-phase followed by a down-phase.  No VCs are ever added and the
    CDG is acyclic by construction, but routes get longer and — the
    paper's key argument against it — the method {e fails outright} on
    topologies whose directed links cannot realize an up-then-down path
    for some flow (custom topologies are not always bidirectional).

    This module exists as a second baseline: deadlock freedom for free
    in VCs, paid in hops or in infeasibility. *)

open Noc_model

type report = {
  root : Ids.Switch.t;  (** Spanning-tree root (highest degree). *)
  rerouted_flows : int;  (** Flows whose physical path changed. *)
  total_hops_before : int;
  total_hops_after : int;
}

val apply : Network.t -> (report, string) result
(** Recomputes every route under the up*/down* restriction and
    installs the result (VC 0 everywhere).  [Error] — with the design
    left untouched — when at least one flow admits no legal path,
    naming the first such flow. *)

val route_exists : Network.t -> Ids.Flow.t -> bool
(** Whether a legal up*/down* path exists for the flow (without
    modifying anything). *)

val pp_report : Format.formatter -> report -> unit
