open Noc_model

type report = { flows_isolated : int; vcs_added : int; moves : int }

(* Users of every channel across the design. *)
let users net =
  let table = Channel.Table.create 128 in
  List.iter
    (fun (flow, route) ->
      List.iter
        (fun c ->
          Channel.Table.replace table c
            (flow :: Option.value ~default:[] (Channel.Table.find_opt table c)))
        route)
    (Network.routes net);
  table

let isolate net ~guaranteed =
  if
    List.length (List.sort_uniq Ids.Flow.compare guaranteed)
    <> List.length guaranteed
  then invalid_arg "Isolation.isolate: duplicate flow in the guaranteed list";
  if not (Cdg.is_deadlock_free (Cdg.build net)) then
    invalid_arg "Isolation.isolate: CDG is cyclic; run Removal first";
  let topo = Network.topology net in
  let vcs_before = Topology.total_vcs topo in
  let moves = ref 0 in
  let isolate_flow flow =
    if Network.route net flow = [] then
      invalid_arg
        (Format.asprintf "Isolation.isolate: flow %a has no route" Ids.Flow.pp flow);
    let table = users net in
    let exclusive c =
      match Channel.Table.find_opt table c with
      | Some [ single ] -> Ids.Flow.equal single flow
      | Some _ | None -> false
    in
    let private_channel c =
      if exclusive c then c
      else begin
        let link = Channel.link c in
        (* Prefer an existing idle VC; otherwise buy a new one. *)
        let rec free vc =
          if vc >= Topology.vc_count topo link then
            Channel.make link (Topology.add_vc topo link)
          else begin
            let cand = Channel.make link vc in
            match Channel.Table.find_opt table cand with
            | None | Some [] -> cand
            | Some _ -> free (vc + 1)
          end
        in
        incr moves;
        free 0
      end
    in
    Network.set_route net flow (List.map private_channel (Network.route net flow))
  in
  List.iter isolate_flow guaranteed;
  (* Moving flows onto private channels cannot close a cycle, but the
     invariant is cheap to re-check and the whole point of this
     library. *)
  assert (Cdg.is_deadlock_free (Cdg.build net));
  {
    flows_isolated = List.length guaranteed;
    vcs_added = Topology.total_vcs topo - vcs_before;
    moves = !moves;
  }

let verify_isolation net ~guaranteed =
  let table = users net in
  let check_flow flow =
    let route = Network.route net flow in
    let shared =
      List.find_opt
        (fun c ->
          match Channel.Table.find_opt table c with
          | Some [ _ ] -> false
          | Some _ | None -> true)
        route
    in
    match shared with
    | None -> Ok ()
    | Some c ->
        Error
          (Format.asprintf "flow %a shares channel %a" Ids.Flow.pp flow Channel.pp
             c)
  in
  let rec all = function
    | [] -> Ok ()
    | f :: rest -> (
        match check_flow f with Ok () -> all rest | Error _ as e -> e)
  in
  all guaranteed

let pp_report ppf r =
  Format.fprintf ppf
    "isolation: %d flow(s) given exclusive channels, %d hop(s) moved, +%d VC(s)"
    r.flows_isolated r.moves r.vcs_added
