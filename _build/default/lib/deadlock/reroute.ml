open Noc_model

type change = { flow : Ids.Flow.t; old_route : Route.t; new_route : Route.t }

type report = {
  cycles_broken : int;
  changes : change list;
  fully_acyclic : bool;
  extra_hops : int;
}

let cycle_count net =
  List.length (Cdg.cycles ~max_cycles:2000 (Cdg.build net))

(* Alternative physical routes for a flow: k-shortest over the switch
   graph (collapsing parallel links to the smallest id), realized on
   VC 0, excluding its current physical path. *)
let alternatives net flow ~k ~max_detour =
  let topo = Network.topology net in
  let src, dst = Network.endpoints net flow in
  if Ids.Switch.equal src dst then []
  else begin
    let g = Topology.switch_graph topo in
    let paths =
      Noc_graph.K_shortest.yen g
        ~weight:(fun _ _ -> 1.)
        ~k:(k + 1)
        (Ids.Switch.to_int src) (Ids.Switch.to_int dst)
    in
    let current = Route.links (Network.route net flow) in
    let current_len = List.length current in
    let to_route path =
      let rec channels = function
        | a :: (b :: _ as rest) -> (
            match
              Topology.find_links topo ~src:(Ids.Switch.of_int a)
                ~dst:(Ids.Switch.of_int b)
            with
            | l :: _ -> Channel.make l.Topology.id 0 :: channels rest
            | [] -> failwith "Reroute: switch-graph edge without a link")
        | [ _ ] | [] -> []
      in
      channels path
    in
    paths
    |> List.map to_route
    |> List.filter (fun r ->
           Route.length r <= current_len + max_detour
           && Route.links r <> current)
  end

let run ?(max_iterations = 200) ?(k_alternatives = 4) ?(max_detour = 2) net =
  let changes = ref [] in
  let cycles_broken = ref 0 in
  let rec loop iter =
    let cdg = Cdg.build net in
    match Cdg.smallest_cycle cdg with
    | None -> true
    | Some cycle ->
        if iter >= max_iterations then false
        else begin
          let before_count = cycle_count net in
          let cycle_set = Channel.Set.of_list cycle in
          (* Flows participating in the cycle, largest involvement
             first (they are the likeliest single fix). *)
          let involved =
            Traffic.flows (Network.traffic net)
            |> List.filter_map (fun (f : Traffic.flow) ->
                   let inside =
                     List.length
                       (List.filter
                          (fun c -> Channel.Set.mem c cycle_set)
                          (Network.route net f.Traffic.id))
                   in
                   if inside > 1 then Some (inside, f.Traffic.id) else None)
            |> List.sort (fun (a, fa) (b, fb) ->
                   match compare b a with 0 -> Ids.Flow.compare fa fb | c -> c)
            |> List.map snd
          in
          let try_flow flow =
            let old_route = Network.route net flow in
            let rec try_candidates = function
              | [] ->
                  Network.set_route net flow old_route;
                  false
              | candidate :: rest ->
                  Network.set_route net flow candidate;
                  let cdg' = Cdg.build net in
                  let still_there =
                    match Cdg.smallest_cycle cdg' with
                    | None -> false
                    | Some _ ->
                        (* The targeted cycle counts as gone when any of
                           its edges lost all supporting flows. *)
                        let rec edges = function
                          | a :: (b :: _ as rest) -> (a, b) :: edges rest
                          | [ last ] -> [ (last, List.hd cycle) ]
                          | [] -> []
                        in
                        List.for_all
                          (fun (a, b) ->
                            Cdg.flows_on_dependency cdg' ~src:a ~dst:b <> [])
                          (edges cycle)
                  in
                  if (not still_there) && cycle_count net < before_count then begin
                    changes := { flow; old_route; new_route = candidate } :: !changes;
                    incr cycles_broken;
                    true
                  end
                  else try_candidates rest
            in
            try_candidates (alternatives net flow ~k:k_alternatives ~max_detour)
          in
          if List.exists try_flow involved then loop (iter + 1) else false
        end
  in
  let fully_acyclic = loop 0 in
  let extra_hops =
    List.fold_left
      (fun acc c -> acc + Route.length c.new_route - Route.length c.old_route)
      0 !changes
  in
  {
    cycles_broken = !cycles_broken;
    changes = List.rev !changes;
    fully_acyclic;
    extra_hops;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "reroute-first: %d cycle(s) broken by rerouting %d flow(s) (+%d hops), %s"
    r.cycles_broken
    (List.length r.changes)
    r.extra_hops
    (if r.fully_acyclic then "fully acyclic" else "cycles remain")
