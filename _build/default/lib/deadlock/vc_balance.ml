open Noc_model

type report = {
  moves : int;
  rejected : int;
  max_flows_per_channel_before : int;
  max_flows_per_channel_after : int;
}

(* Flows per channel over the whole design. *)
let channel_counts net =
  let counts = Channel.Table.create 64 in
  List.iter
    (fun (_, route) ->
      List.iter
        (fun c ->
          Channel.Table.replace counts c
            (1 + Option.value ~default:0 (Channel.Table.find_opt counts c)))
        route)
    (Network.routes net);
  counts

let max_count net =
  Channel.Table.fold (fun _ n acc -> max n acc) (channel_counts net) 0

let run net =
  if not (Noc_graph.Toposort.is_acyclic (Cdg.graph (Cdg.build net))) then
    invalid_arg "Vc_balance.run: CDG is cyclic; run Removal first";
  let topo = Network.topology net in
  let before = max_count net in
  let moves = ref 0 and rejected = ref 0 in
  (* For each flow hop on a multi-VC link, consider moving it to the
     least-loaded VC of that link; accept if the CDG stays acyclic. *)
  let try_rebalance_flow (f : Traffic.flow) =
    let flow = f.Traffic.id in
    let route = Array.of_list (Network.route net flow) in
    Array.iteri
      (fun i c ->
        let link = Channel.link c in
        let n_vcs = Topology.vc_count topo link in
        if n_vcs > 1 then begin
          let counts = channel_counts net in
          let load vc =
            Option.value ~default:0
              (Channel.Table.find_opt counts (Channel.make link vc))
          in
          let current = Channel.vc c in
          let best = ref current in
          for vc = 0 to n_vcs - 1 do
            if load vc < load !best then best := vc
          done;
          (* Worth moving only if it strictly reduces the imbalance. *)
          if !best <> current && load !best + 1 < load current then begin
            let candidate =
              Array.to_list
                (Array.mapi
                   (fun j cj -> if j = i then Channel.make link !best else cj)
                   route)
            in
            let old_route = Array.to_list route in
            Network.set_route net flow candidate;
            if Noc_graph.Toposort.is_acyclic (Cdg.graph (Cdg.build net)) then begin
              incr moves;
              route.(i) <- Channel.make link !best
            end
            else begin
              Network.set_route net flow old_route;
              incr rejected
            end
          end
        end)
      route
  in
  List.iter try_rebalance_flow (Traffic.flows (Network.traffic net));
  {
    moves = !moves;
    rejected = !rejected;
    max_flows_per_channel_before = before;
    max_flows_per_channel_after = max_count net;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "vc balancing: %d move(s) (%d rejected to stay acyclic), worst channel %d \
     -> %d flows"
    r.moves r.rejected r.max_flows_per_channel_before
    r.max_flows_per_channel_after
