(** Post-removal VC load balancing.

    The removal pass leaves most traffic on VC 0 and uses the added VCs
    only for the rerouted flows, so one VC of a link can carry many
    flows (head-of-line blocking) while its twin idles.  This pass
    redistributes flows across each link's existing VCs — changing VC
    indices only, never physical paths, never adding resources — while
    keeping the CDG acyclic (every tentative move is checked and rolled
    back if it would re-close a cycle). *)

open Noc_model

type report = {
  moves : int;  (** Accepted per-hop VC changes. *)
  rejected : int;  (** Moves rolled back to protect acyclicity. *)
  max_flows_per_channel_before : int;
  max_flows_per_channel_after : int;
}

val run : Network.t -> report
(** Greedy balancing, heaviest channels first.  The network must
    already be deadlock-free.
    @raise Invalid_argument when the CDG is cyclic on entry. *)

val pp_report : Format.formatter -> report -> unit
