open Noc_model

type result = {
  vcs_added : int;
  proven_optimal : bool;
  nodes_explored : int;
  solution : Network.t;
}

let search ?(node_budget = 20_000) net =
  let baseline = Topology.total_vcs (Network.topology net) in
  let nodes = ref 0 in
  let exhausted = ref true in
  let best_cost = ref max_int in
  let best_net = ref None in
  (* Depth-first over break decisions; [state] is a private copy. *)
  let rec explore state =
    incr nodes;
    if !nodes > node_budget then exhausted := false
    else begin
      let cost_so_far = Topology.total_vcs (Network.topology state) - baseline in
      if cost_so_far < !best_cost then begin
        let cdg = Cdg.build state in
        match Cdg.smallest_cycle cdg with
        | None ->
            best_cost := cost_so_far;
            best_net := Some (Network.copy state)
        | Some cycle ->
            let tables =
              [ Cost_table.forward state cycle; Cost_table.backward state cycle ]
            in
            (* Candidate (table, column) pairs, cheapest first so the
               bound tightens early.  Skip columns whose immediate cost
               already busts the bound. *)
            let candidates =
              List.concat_map
                (fun (t : Cost_table.t) ->
                  List.init
                    (Array.length t.Cost_table.max_costs)
                    (fun col -> (t, col, t.Cost_table.max_costs.(col))))
                tables
              |> List.filter (fun (_, _, c) -> c > 0)
              |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
            in
            List.iter
              (fun (t, col, immediate) ->
                if cost_so_far + immediate < !best_cost then begin
                  let child = Network.copy state in
                  (* Rebuild the table against the child so the break
                     mutates the copy, not the parent. *)
                  let t' =
                    match t.Cost_table.direction with
                    | Cost_table.Forward -> Cost_table.forward child cycle
                    | Cost_table.Backward -> Cost_table.backward child cycle
                  in
                  ignore (Break_cycle.apply_at child t' col);
                  explore child
                end)
              candidates
      end
    end
  in
  explore (Network.copy net);
  match !best_net with
  | Some solution ->
      {
        vcs_added = !best_cost;
        proven_optimal = !exhausted;
        nodes_explored = !nodes;
        solution;
      }
  | None ->
      (* Budget ran out before any acyclic state was reached: fall back
         to the heuristic so the caller still gets a usable design. *)
      let solution = Network.copy net in
      let report = Removal.run solution in
      {
        vcs_added = report.Removal.vcs_added;
        proven_optimal = false;
        nodes_explored = !nodes;
        solution;
      }

let pp_result ppf r =
  Format.fprintf ppf "optimal search: %d VC(s)%s (%d nodes explored)" r.vcs_added
    (if r.proven_optimal then ", proven minimal" else ", best found within budget")
    r.nodes_explored
