open Noc_model

type certificate = {
  acyclic : bool;
  n_channels : int;
  n_dependencies : int;
  numbering : (Channel.t * int) list option;
  sample_cycle : Channel.t list option;
  structural_issues : Validate.issue list;
}

let certify net =
  let cdg = Cdg.build net in
  let g = Cdg.graph cdg in
  let order = Noc_graph.Toposort.sort g in
  let numbering =
    Option.map
      (fun vs -> List.mapi (fun i v -> (Cdg.channel_of_vertex cdg v, i)) vs)
    order
  in
  let acyclic = numbering <> None in
  {
    acyclic;
    n_channels = Cdg.n_channels cdg;
    n_dependencies = Noc_graph.Digraph.n_edges g;
    numbering;
    sample_cycle = (if acyclic then None else Cdg.smallest_cycle cdg);
    structural_issues = Validate.check net;
  }

let check_numbering net numbering =
  let table = Channel.Table.create 64 in
  List.iter (fun (c, n) -> Channel.Table.replace table c n) numbering;
  let route_ok (_, route) =
    let increasing (a, b) =
      match (Channel.Table.find_opt table a, Channel.Table.find_opt table b) with
      | Some na, Some nb -> na < nb
      | None, _ | _, None -> false
    in
    List.for_all increasing (Route.consecutive_pairs route)
  in
  List.for_all route_ok (Network.routes net)

let pp_certificate ppf c =
  Format.fprintf ppf "@[<v>certificate: %s, %d channels, %d dependencies"
    (if c.acyclic then "deadlock-free" else "CYCLIC")
    c.n_channels c.n_dependencies;
  (match c.sample_cycle with
  | Some cycle ->
      Format.fprintf ppf "@,cycle: %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
           Channel.pp)
        cycle
  | None -> ());
  List.iter
    (fun i -> Format.fprintf ppf "@,issue: %a" Validate.pp_issue i)
    c.structural_issues;
  Format.fprintf ppf "@]"
