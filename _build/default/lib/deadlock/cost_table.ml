open Noc_model

type direction = Forward | Backward

type t = {
  direction : direction;
  cycle : Channel.t array;
  flows : Ids.Flow.t array;
  routes : Route.t array;
  costs : int array array;
  max_costs : int array;
  best_cost : int;
  best_pos : int;
}

let dependency t i =
  let k = Array.length t.cycle in
  (t.cycle.(i), t.cycle.((i + 1) mod k))

(* Position of the (unique, routes being simple) occurrence of the
   dependency [ci -> cj] inside a route, or [None] when the flow does
   not create it. *)
let dep_position route ci cj =
  let arr = Array.of_list route in
  let m = Array.length arr in
  let rec scan i =
    if i + 1 >= m then None
    else if Channel.equal arr.(i) ci && Channel.equal arr.(i + 1) cj then Some i
    else scan (i + 1)
  in
  scan 0

let duplicate_set direction ~cycle_set ~route ~ci ~cj =
  match dep_position route ci cj with
  | None -> []
  | Some idx ->
      let arr = Array.of_list route in
      let m = Array.length arr in
      let in_cycle c = Channel.Set.mem c cycle_set in
      let collect lo hi =
        let out = ref [] in
        for p = hi downto lo do
          if in_cycle arr.(p) then out := arr.(p) :: !out
        done;
        !out
      in
      (match direction with
      | Forward -> collect 0 idx
      | Backward -> collect (idx + 1) (m - 1))

let involved_flows net cycle_set =
  let crosses (f : Traffic.flow) =
    let inside =
      List.filter
        (fun c -> Channel.Set.mem c cycle_set)
        (Network.route net f.Traffic.id)
    in
    List.length inside > 1
  in
  List.filter crosses (Traffic.flows (Network.traffic net))

let compute direction net cycle_list =
  if cycle_list = [] then invalid_arg "Cost_table: empty cycle";
  let cycle = Array.of_list cycle_list in
  let k = Array.length cycle in
  let cycle_set = Channel.Set.of_list cycle_list in
  let flows = Array.of_list (involved_flows net cycle_set) in
  let n_rows = Array.length flows in
  let costs = Array.make_matrix n_rows k 0 in
  for row = 0 to n_rows - 1 do
    let route = Network.route net flows.(row).Traffic.id in
    for col = 0 to k - 1 do
      let ci = cycle.(col) and cj = cycle.((col + 1) mod k) in
      costs.(row).(col) <-
        List.length (duplicate_set direction ~cycle_set ~route ~ci ~cj)
    done
  done;
  let max_costs =
    Array.init k (fun col ->
        let best = ref 0 in
        for row = 0 to n_rows - 1 do
          if costs.(row).(col) > !best then best := costs.(row).(col)
        done;
        !best)
  in
  (* Columns with max 0 carry no dependency created by an involved flow
     (possible only on degenerate inputs); they cannot be broken, so
     they are skipped when choosing the minimum. *)
  let best_cost = ref max_int and best_pos = ref (-1) in
  Array.iteri
    (fun col c -> if c > 0 && c < !best_cost then begin best_cost := c; best_pos := col end)
    max_costs;
  if !best_pos < 0 then begin
    (* No breakable column: fall back to column 0 with the price of
       duplicating the whole cycle.  The driver treats this as "break
       everything", which always succeeds. *)
    best_cost := k;
    best_pos := 0
  end;
  {
    direction;
    cycle;
    flows = Array.map (fun f -> f.Traffic.id) flows;
    routes = Array.map (fun f -> Network.route net f.Traffic.id) flows;
    costs;
    max_costs;
    best_cost = !best_cost;
    best_pos = !best_pos;
  }

let forward net cycle = compute Forward net cycle
let backward net cycle = compute Backward net cycle

let channels_to_duplicate t flow col =
  let ci, cj = dependency t col in
  let cycle_set = Channel.Set.of_list (Array.to_list t.cycle) in
  let row = ref (-1) in
  Array.iteri (fun i f -> if Ids.Flow.equal f flow then row := i) t.flows;
  if !row < 0 then []
  else
    duplicate_set t.direction ~cycle_set ~route:t.routes.(!row) ~ci ~cj

let pp ppf t =
  let k = Array.length t.cycle in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "     ";
  for col = 1 to k do
    Format.fprintf ppf "D%-3d" col
  done;
  Array.iteri
    (fun row f ->
      Format.fprintf ppf "@,%-5s" (Format.asprintf "%a" Ids.Flow.pp f);
      Array.iter (fun c -> Format.fprintf ppf "%-4d" c) t.costs.(row))
    t.flows;
  Format.fprintf ppf "@,%-5s" "MAX";
  Array.iter (fun c -> Format.fprintf ppf "%-4d" c) t.max_costs;
  Format.fprintf ppf "@]"
