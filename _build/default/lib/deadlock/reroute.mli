(** Reroute-first deadlock mitigation: before paying for a single VC,
    try to break CDG cycles by moving one of the offending flows onto
    an {e alternative physical path} (found with Yen's k-shortest
    search over the switch graph).

    This is a zero-resource complement to {!Removal}: rerouting costs
    no VCs (it may cost hops), but it cannot always succeed — the
    topology may offer no alternative path, or every alternative may
    close a different cycle.  The intended use is
    [Reroute.run net; Removal.run net]: take the free wins first, let
    the paper's algorithm finish the job.  The ablation
    ({!Figures.ablation} is the entry point) quantifies how much that
    saves. *)

open Noc_model

type change = {
  flow : Ids.Flow.t;
  old_route : Route.t;
  new_route : Route.t;
}

type report = {
  cycles_broken : int;  (** Cycles eliminated by rerouting alone. *)
  changes : change list;
  fully_acyclic : bool;  (** [true] when no cycles remain at all. *)
  extra_hops : int;  (** Total hop increase across all reroutes. *)
}

val run :
  ?max_iterations:int ->
  ?k_alternatives:int ->
  ?max_detour:int ->
  Network.t ->
  report
(** Greedy loop: smallest cycle -> try alternatives for each involved
    flow (up to [k_alternatives] per flow, default 4; at most
    [max_detour] extra hops, default 2) -> accept the first candidate
    that strictly reduces the number of elementary CDG cycles and
    removes the targeted one -> repeat.  Stops when acyclic or stuck.
    Mutates routes only — never the topology. *)

val pp_report : Format.formatter -> report -> unit
