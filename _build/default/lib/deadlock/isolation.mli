(** Guaranteed-throughput (GT) flow isolation — the VC-based service
    separation of combined GT/best-effort NoCs (the paper's ref. [5]).

    A GT flow gets exclusive channels end to end: every (link, VC) it
    rides is used by no other flow, so best-effort congestion can never
    block it behind a busy wormhole.  Isolation is bought with the same
    currency as deadlock removal — VCs — and composes with it: moving a
    flow onto fresh private channels never re-closes a CDG cycle (the
    new vertices carry only that flow's own chain), which
    {!isolate} re-verifies anyway. *)

open Noc_model

type report = {
  flows_isolated : int;
  vcs_added : int;  (** Fresh VCs bought for exclusivity. *)
  moves : int;  (** Hops moved to an exclusive channel. *)
}

val isolate : Network.t -> guaranteed:Ids.Flow.t list -> report
(** Gives each listed flow exclusive channels along its existing
    physical path (reusing idle VCs before adding new ones).  Mutates
    routes and the topology's VC counts only.
    @raise Invalid_argument when a listed flow has no route, is listed
    twice, or when the input CDG is cyclic (run {!Removal} first). *)

val verify_isolation :
  Network.t -> guaranteed:Ids.Flow.t list -> (unit, string) result
(** Checks the exclusivity property: no channel of a guaranteed flow
    is shared with any other flow.  [Error] names the first
    violation. *)

val pp_report : Format.formatter -> report -> unit
