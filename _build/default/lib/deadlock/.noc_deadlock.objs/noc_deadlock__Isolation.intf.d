lib/deadlock/isolation.mli: Format Ids Network Noc_model
