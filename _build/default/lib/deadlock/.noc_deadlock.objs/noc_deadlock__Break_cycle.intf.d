lib/deadlock/break_cycle.mli: Channel Cost_table Format Ids Network Noc_model
