lib/deadlock/cost_table.mli: Channel Format Ids Network Noc_model Route
