lib/deadlock/vc_balance.mli: Format Network Noc_model
