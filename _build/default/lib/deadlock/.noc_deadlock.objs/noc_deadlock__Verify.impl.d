lib/deadlock/verify.ml: Cdg Channel Format List Network Noc_graph Noc_model Option Route Validate
