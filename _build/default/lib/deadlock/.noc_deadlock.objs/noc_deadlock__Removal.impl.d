lib/deadlock/removal.ml: Break_cycle Cdg Cost_table Format List Logs Network Noc_graph Noc_model Option Topology
