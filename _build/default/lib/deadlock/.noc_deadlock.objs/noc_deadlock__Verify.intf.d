lib/deadlock/verify.mli: Channel Format Network Noc_model Validate
