lib/deadlock/resource_ordering.ml: Channel Format Ids List Network Noc_model Topology
