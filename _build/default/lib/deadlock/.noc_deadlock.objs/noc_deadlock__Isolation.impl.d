lib/deadlock/isolation.ml: Cdg Channel Format Ids List Network Noc_model Option Topology
