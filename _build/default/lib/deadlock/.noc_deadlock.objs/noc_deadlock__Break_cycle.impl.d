lib/deadlock/break_cycle.ml: Array Channel Cost_table Format Ids List Network Noc_model Topology
