lib/deadlock/duato.ml: Array Channel Format Ids List Network Noc_graph Noc_model Option Queue Routing_function Topology Traffic
