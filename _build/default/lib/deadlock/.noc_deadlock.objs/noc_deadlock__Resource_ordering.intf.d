lib/deadlock/resource_ordering.mli: Format Network Noc_model
