lib/deadlock/vc_balance.ml: Array Cdg Channel Format List Network Noc_graph Noc_model Option Topology Traffic
