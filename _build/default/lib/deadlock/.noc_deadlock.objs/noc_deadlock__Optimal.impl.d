lib/deadlock/optimal.ml: Array Break_cycle Cdg Cost_table Format List Network Noc_model Removal Topology
