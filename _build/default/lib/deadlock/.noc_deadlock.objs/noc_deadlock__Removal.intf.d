lib/deadlock/removal.mli: Break_cycle Cost_table Format Network Noc_model
