lib/deadlock/reroute.ml: Cdg Channel Format Ids List Network Noc_graph Noc_model Route Topology Traffic
