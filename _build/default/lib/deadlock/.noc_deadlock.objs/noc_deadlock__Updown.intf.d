lib/deadlock/updown.mli: Format Ids Network Noc_model
