lib/deadlock/duato.mli: Channel Format Network Noc_model Routing_function
