lib/deadlock/cost_table.ml: Array Channel Format Ids List Network Noc_model Route Traffic
