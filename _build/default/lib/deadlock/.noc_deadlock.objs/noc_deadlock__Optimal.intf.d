lib/deadlock/optimal.mli: Format Network Noc_model
