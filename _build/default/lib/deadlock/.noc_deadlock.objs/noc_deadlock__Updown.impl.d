lib/deadlock/updown.ml: Array Channel Format Ids List Network Noc_model Queue Route Topology Traffic
