lib/deadlock/reroute.mli: Format Ids Network Noc_model Route
