open Noc_model

type report = {
  root : Ids.Switch.t;
  rerouted_flows : int;
  total_hops_before : int;
  total_hops_after : int;
}

(* Levels of the BFS spanning tree over the *undirected* switch
   adjacency, rooted at the highest-degree switch (smallest id breaks
   ties).  (level, id) is a total order; a directed link is "up" when
   it decreases that order. *)
let levels topo =
  let n = Topology.n_switches topo in
  let adjacency = Array.make n [] in
  List.iter
    (fun (l : Topology.link) ->
      let a = Ids.Switch.to_int l.Topology.src
      and b = Ids.Switch.to_int l.Topology.dst in
      adjacency.(a) <- b :: adjacency.(a);
      adjacency.(b) <- a :: adjacency.(b))
    (Topology.links topo);
  let root = ref 0 in
  for s = 1 to n - 1 do
    let d s = List.length adjacency.(s) in
    if d s > d !root then root := s
  done;
  let level = Array.make n max_int in
  let q = Queue.create () in
  level.(!root) <- 0;
  Queue.add !root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if level.(v) = max_int then begin
          level.(v) <- level.(u) + 1;
          Queue.add v q
        end)
      (List.sort compare adjacency.(u))
  done;
  (Ids.Switch.of_int !root, level)

let order_key level s = (level.(Ids.Switch.to_int s), Ids.Switch.to_int s)

let is_up level (l : Topology.link) =
  order_key level l.Topology.dst < order_key level l.Topology.src

(* Legal-path search over states (switch, phase): BFS, so paths are
   minimum-hop among legal ones.  Phase 0 = still climbing, phase 1 =
   descending; an up-link is legal only in phase 0. *)
let legal_route topo level ~src ~dst =
  if Ids.Switch.equal src dst then Some []
  else begin
    let n = Topology.n_switches topo in
    let seen = Array.make (2 * n) false in
    let parent = Array.make (2 * n) None in
    (* parent: state -> (previous state, link taken) *)
    let state s phase = (2 * Ids.Switch.to_int s) + phase in
    let q = Queue.create () in
    let start = state src 0 in
    seen.(start) <- true;
    Queue.add (src, 0) q;
    let final = ref None in
    while !final = None && not (Queue.is_empty q) do
      let u, phase = Queue.pop q in
      let step (l : Topology.link) =
        if !final = None then begin
          let up = is_up level l in
          if (not up) || phase = 0 then begin
            let phase' = if up then 0 else 1 in
            let st = state l.Topology.dst phase' in
            if not seen.(st) then begin
              seen.(st) <- true;
              parent.(st) <- Some (state u phase, l);
              if Ids.Switch.equal l.Topology.dst dst then final := Some st
              else Queue.add (l.Topology.dst, phase') q
            end
          end
        end
      in
      List.iter step (Topology.out_links topo u)
    done;
    match !final with
    | None -> None
    | Some st ->
        let rec unwind st acc =
          match parent.(st) with
          | None -> acc
          | Some (prev, l) -> unwind prev (Channel.make l.Topology.id 0 :: acc)
        in
        Some (unwind st [])
  end

let route_exists net flow =
  let topo = Network.topology net in
  let _, level = levels topo in
  let src, dst = Network.endpoints net flow in
  legal_route topo level ~src ~dst <> None

let apply net =
  let topo = Network.topology net in
  let root, level = levels topo in
  let traffic = Network.traffic net in
  (* Compute every route first; commit only if all exist. *)
  let rec compute acc = function
    | [] -> Ok (List.rev acc)
    | (f : Traffic.flow) :: rest -> (
        let src, dst = Network.endpoints net f.Traffic.id in
        match legal_route topo level ~src ~dst with
        | Some route -> compute ((f.Traffic.id, route) :: acc) rest
        | None ->
            Error
              (Format.asprintf
                 "flow %a (%a -> %a) has no legal up*/down* path" Ids.Flow.pp
                 f.Traffic.id Ids.Switch.pp src Ids.Switch.pp dst))
  in
  match compute [] (Traffic.flows traffic) with
  | Error _ as e -> e
  | Ok routes ->
      let before = Network.routes net in
      let total_hops_before =
        List.fold_left (fun acc (_, r) -> acc + Route.length r) 0 before
      in
      let rerouted = ref 0 in
      List.iter
        (fun (flow, route) ->
          let old_links = Route.links (Network.route net flow) in
          if old_links <> Route.links route then incr rerouted;
          Network.set_route net flow route)
        routes;
      let total_hops_after =
        List.fold_left (fun acc (_, r) -> acc + Route.length r) 0 routes
      in
      Ok { root; rerouted_flows = !rerouted; total_hops_before; total_hops_after }

let pp_report ppf r =
  Format.fprintf ppf
    "up*/down* (root %a): %d flow(s) rerouted, hops %d -> %d (%+.1f%%)"
    Ids.Switch.pp r.root r.rerouted_flows r.total_hops_before r.total_hops_after
    (if r.total_hops_before = 0 then 0.
     else
       100.
       *. float_of_int (r.total_hops_after - r.total_hops_before)
       /. float_of_int r.total_hops_before)
