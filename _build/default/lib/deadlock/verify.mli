(** Deadlock-freedom verification and certificates.

    Beyond a boolean, {!certify} produces a witness: a topological
    order of the CDG, which is exactly a valid resource numbering of
    the channels (Dally & Towles' sufficient condition).  Any third
    party can re-check the certificate in linear time. *)

open Noc_model

type certificate = {
  acyclic : bool;
  n_channels : int;
  n_dependencies : int;
  numbering : (Channel.t * int) list option;
      (** A channel numbering under which every dependency increases;
          [None] when cyclic. *)
  sample_cycle : Channel.t list option;
      (** A smallest offending cycle when cyclic; [None] otherwise. *)
  structural_issues : Validate.issue list;
      (** Route/topology well-formedness problems, independent of
          deadlock freedom. *)
}

val certify : Network.t -> certificate

val check_numbering : Network.t -> (Channel.t * int) list -> bool
(** Re-validates a certificate numbering against the network's current
    routes: [true] iff every consecutive channel pair of every route
    strictly increases.  Channels missing from the numbering fail. *)

val pp_certificate : Format.formatter -> certificate -> unit
