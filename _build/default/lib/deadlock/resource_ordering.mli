(** The resource-ordering baseline (Dally & Towles, ref. [10] of the
    paper): every channel is assigned a resource number, and each flow
    must traverse channels in strictly increasing number.  VCs are
    added until every route can be realized that way.  Deadlock freedom
    is guaranteed by construction; the cost in extra VCs is what the
    paper's Figures 8–10 compare against. *)

open Noc_model

type strategy =
  | Hop_index
      (** Channel VC index = hop position in the route: flow hop [p]
          always rides VC [p].  The classic textbook scheme; needs as
          many VCs on a link as the deepest hop position crossing it. *)
  | Greedy_ordered
      (** Channels numbered [vc * n_links + link_id]; each flow greedily
          takes the lowest-numbered VC that keeps its sequence strictly
          increasing.  Much cheaper than [Hop_index]; used as the
          paper-comparison baseline (conservative for us: the weaker we
          make the baseline, the smaller our reported advantage). *)

type report = {
  strategy : strategy;
  vcs_added : int;
  classes_used : int;  (** Highest VC index used, plus one. *)
}

val apply : ?strategy:strategy -> Network.t -> report
(** Mutates the network: adds VCs and rewrites every route's VC
    indices (physical paths are untouched).  Default strategy is
    [Greedy_ordered]. *)

val pp_report : Format.formatter -> report -> unit
