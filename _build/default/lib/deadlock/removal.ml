open Noc_model

type report = {
  iterations : int;
  vcs_added : int;
  changes : Break_cycle.change list;
  deadlock_free : bool;
}

type heuristic = Smallest_cycle_first | Any_cycle_first

let find_cycle heuristic cdg =
  match heuristic with
  | Smallest_cycle_first -> Cdg.smallest_cycle cdg
  | Any_cycle_first ->
      Option.map
        (List.map (Cdg.channel_of_vertex cdg))
        (Noc_graph.Cycles.find_any (Cdg.graph cdg))

let pick_table net directions cycle =
  let candidates =
    List.map
      (fun d ->
        match d with
        | Cost_table.Forward -> Cost_table.forward net cycle
        | Cost_table.Backward -> Cost_table.backward net cycle)
      directions
  in
  match candidates with
  | [] -> invalid_arg "Removal.run: empty direction list"
  | first :: rest ->
      (* Algorithm 1 step 7: forward wins ties, and [directions] lists
         Forward first by default, so [<] (strict) implements "f_cost
         <= b_cost chooses forward". *)
      List.fold_left
        (fun best t ->
          if t.Cost_table.best_cost < best.Cost_table.best_cost then t else best)
        first rest

let run ?(max_iterations = 10_000) ?(heuristic = Smallest_cycle_first)
    ?(directions = [ Cost_table.Forward; Cost_table.Backward ])
    ?(resource = Break_cycle.Virtual_channel) net =
  let before = Topology.total_vcs (Network.topology net) in
  let rec loop iter changes =
    let cdg = Cdg.build net in
    match find_cycle heuristic cdg with
    | None ->
        {
          iterations = iter;
          vcs_added = Topology.total_vcs (Network.topology net) - before;
          changes = List.rev changes;
          deadlock_free = true;
        }
    | Some cycle ->
        if iter >= max_iterations then
          {
            iterations = iter;
            vcs_added = Topology.total_vcs (Network.topology net) - before;
            changes = List.rev changes;
            deadlock_free = false;
          }
        else begin
          let table = pick_table net directions cycle in
          let change = Break_cycle.apply ~resource net table in
          Logs.debug (fun m ->
              m "removal: iteration %d, cycle length %d, %a" (iter + 1)
                (List.length cycle) Break_cycle.pp_change change);
          loop (iter + 1) (change :: changes)
        end
  in
  loop 0 []

let is_deadlock_free net = Cdg.is_deadlock_free (Cdg.build net)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>deadlock removal: %d cycle(s) broken, %d VC(s) added, %s"
    r.iterations r.vcs_added
    (if r.deadlock_free then "deadlock-free" else "ITERATION CAP HIT");
  List.iter (fun c -> Format.fprintf ppf "@,  %a" Break_cycle.pp_change c) r.changes;
  Format.fprintf ppf "@]"
