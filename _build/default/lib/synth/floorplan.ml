open Noc_model

type t = { topo : Topology.t; columns : int; tile_mm : float }

let make ?(tile_mm = 1.0) topo =
  let n = Topology.n_switches topo in
  let columns = int_of_float (ceil (sqrt (float_of_int n))) in
  { topo; columns = max 1 columns; tile_mm }

let position t s =
  let i = Ids.Switch.to_int s in
  (i mod t.columns, i / t.columns)

let link_length_mm t l =
  let info = Topology.link t.topo l in
  let x1, y1 = position t info.Topology.src in
  let x2, y2 = position t info.Topology.dst in
  let manhattan = abs (x1 - x2) + abs (y1 - y2) in
  float_of_int (max 1 manhattan) *. t.tile_mm

let total_wire_mm t =
  List.fold_left
    (fun acc (l : Topology.link) -> acc +. link_length_mm t l.Topology.id)
    0.
    (Topology.links t.topo)

let bounding_box_mm t =
  let n = Topology.n_switches t.topo in
  let rows = (n + t.columns - 1) / t.columns in
  (float_of_int t.columns *. t.tile_mm, float_of_int rows *. t.tile_mm)
