open Noc_model

type report = { links_added : int; remaining_critical : int }

let run net =
  let topo = Network.topology net in
  let added = ref 0 in
  let rec fix budget =
    match Metrics.critical_links net with
    | [] -> ()
    | victim :: _ when budget > 0 ->
        (* A parallel twin is the minimal repair: it keeps the switch
           graph identical under any single failure of the pair. *)
        let info = Topology.link topo victim in
        ignore
          (Topology.add_link topo ~src:info.Topology.src ~dst:info.Topology.dst);
        incr added;
        fix (budget - 1)
    | _ :: _ -> ()
  in
  fix (Topology.n_links topo + 1);
  { links_added = !added; remaining_critical = List.length (Metrics.critical_links net) }

let pp_report ppf r =
  Format.fprintf ppf "hardening: %d backup link(s) added, %d critical link(s) remain"
    r.links_added r.remaining_critical
