(** Grid floorplan approximation: switches are placed on a near-square
    grid in id order; link length is the Manhattan distance between the
    endpoints' tiles.  This feeds the wire-power term of the power
    model (the paper's flow used floorplan-aware synthesis [9]; the
    relative comparisons only need consistent, monotone lengths). *)

open Noc_model

type t

val make : ?tile_mm:float -> Topology.t -> t
(** [tile_mm] is the pitch between adjacent tiles (default 1.0 mm). *)

val position : t -> Ids.Switch.t -> int * int
(** Grid coordinates of a switch. *)

val link_length_mm : t -> Ids.Link.t -> float
(** Manhattan wire length of a link; at least one tile pitch. *)

val total_wire_mm : t -> float
(** Sum of all link lengths. *)

val bounding_box_mm : t -> float * float
(** Width and height of the occupied grid. *)
