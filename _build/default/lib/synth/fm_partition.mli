(** Fiduccia–Mattheyses bipartitioning, applied recursively to map
    cores onto switches — the classic min-cut alternative to the
    greedy agglomerative mapper in {!Mapping}.

    FM iteratively moves the single core with the best gain (reduction
    in cut bandwidth) across the partition boundary, locks it, and
    keeps the best prefix of the move sequence; balance is enforced as
    a maximum part size.  Recursion then splits each part until enough
    parts exist for one switch each. *)

open Noc_model

val bipartition :
  Traffic.t -> cores:int list -> max_part:int -> int list * int list
(** One FM bipartition of the given cores (by id) under the size cap
    [max_part] per side.  Deterministic.
    @raise Invalid_argument when [cores] has fewer than 2 elements or
    the cap makes a legal split impossible. *)

val cluster : Traffic.t -> n_switches:int -> Ids.Switch.t array
(** Recursive FM mapping of every core to a switch; same contract as
    {!Mapping.cluster} (all switches used, deterministic).
    @raise Invalid_argument when [n_switches <= 0] or
    [n_switches > n_cores]. *)

val cut_bandwidth : Traffic.t -> int list -> int list -> float
(** Total bandwidth crossing between the two core sets (both
    directions). *)
