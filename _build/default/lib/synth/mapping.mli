(** Core-to-switch assignment by communication-affinity clustering.

    The paper's input topologies come from an application-specific
    synthesis tool (ref. [9]) that groups heavily-communicating cores
    on the same switch.  We reproduce the essential behaviour with
    deterministic greedy agglomerative clustering: start from singleton
    clusters and repeatedly merge the pair with the highest
    inter-cluster bandwidth, subject to a balance cap, until exactly
    [n_switches] clusters remain. *)

open Noc_model

val cluster : Traffic.t -> n_switches:int -> Ids.Switch.t array
(** [cluster traffic ~n_switches] maps each core (by index) to a
    switch.  Every switch receives at least one core when
    [n_switches <= n_cores]; cluster sizes never exceed
    [2 * ceil(n_cores / n_switches)].  Fully deterministic.
    @raise Invalid_argument when [n_switches <= 0] or
    [n_switches > n_cores]. *)

val intra_cluster_bandwidth : Traffic.t -> Ids.Switch.t array -> float
(** Total bandwidth of flows whose endpoints share a switch — the
    quantity the clustering greedily maximizes (such flows never enter
    the network). *)
