(** Application-specific topology synthesis — the substitute for the
    paper's ref. [9] flow.

    Given the application traffic and a target switch count, synthesis
    (1) clusters cores onto switches ({!Mapping.cluster}),
    (2) creates directed links between switch pairs in decreasing order
    of inter-switch demand subject to a per-switch degree budget,
    (3) guarantees that every flow is routable by adding a minimal set
    of fallback links, and
    (4) computes deterministic min-hop, load-aware routes.

    Resulting designs are irregular and application-specific, exactly
    the inputs the paper's deadlock-removal pass is aimed at; depending
    on the demand structure their CDG may or may not be cyclic, which
    mirrors the paper's observation that many synthesized topologies
    are deadlock-free as-built (Figure 8) while denser ones are not
    (Figure 9). *)

open Noc_model

type mapper = Greedy_affinity  (** {!Mapping.cluster} (default). *)
            | Min_cut  (** {!Fm_partition.cluster}. *)

type options = {
  max_out_degree : int;  (** Per-switch outgoing link budget (default 4). *)
  max_in_degree : int;  (** Per-switch incoming link budget (default 4). *)
  load_aware_routing : bool;  (** Default [true]. *)
  force_bidirectional : bool;
      (** Add a reverse link wherever only one direction exists
          (default [false]).  Costs links but makes turn-prohibition
          methods such as {!Noc_deadlock.Updown} applicable — the
          trade-off the paper discusses around its refs [18]/[21]. *)
  mapper : mapper;  (** Core-to-switch clustering algorithm. *)
}

val default_options : options

val synthesize :
  ?options:options -> Traffic.t -> n_switches:int -> (Network.t, string) result
(** Builds the full design (topology, mapping and routes).  Fails only
    when the traffic cannot be realized at all (never happens for
    connected demand sets; fallback links guarantee routability). *)

val synthesize_exn : ?options:options -> Traffic.t -> n_switches:int -> Network.t
(** @raise Failure on the (never observed) error case. *)
