(** Topology hardening: eliminate single points of failure.

    {!Noc_model.Metrics.critical_links} finds the links whose loss
    disconnects some flow pair.  This pass adds, for each critical
    link, a backup path: a parallel link if nothing cheaper exists, or
    nothing at all when an alternative route already exists but was
    simply not needed.  The result is a design where every routed flow
    pair survives any single link failure. *)

open Noc_model

type report = {
  links_added : int;
  remaining_critical : int;  (** Should be [0] after hardening. *)
}

val run : Network.t -> report
(** Adds backup links until {!Noc_model.Metrics.critical_links} is
    empty (or no further progress is possible — never observed, since
    a parallel link always removes the criticality of its twin).
    Routes are untouched; re-run routing or removal afterwards if the
    new links should carry traffic. *)

val pp_report : Format.formatter -> report -> unit
