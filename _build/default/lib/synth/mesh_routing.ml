open Noc_model

let link_between topo a b =
  match Topology.find_links topo ~src:a ~dst:b with
  | l :: _ -> l.Topology.id
  | [] ->
      invalid_arg
        (Format.asprintf "Mesh_routing: no link %a -> %a" Ids.Switch.pp a
           Ids.Switch.pp b)

let coord ~columns i = (i mod columns, i / columns)

(* Id of the XY next hop towards dst, if any. *)
let xy_next ~columns at dst =
  let x, y = coord ~columns at and dx, dy = coord ~columns dst in
  if x < dx then Some (at + 1)
  else if x > dx then Some (at - 1)
  else if y < dy then Some (at + columns)
  else if y > dy then Some (at - columns)
  else None

let xy_static ~columns ~rows net =
  ignore rows;
  let topo = Network.topology net in
  Routing_function.make topo (fun ~at ~dst ->
      match xy_next ~columns (Ids.Switch.to_int at) (Ids.Switch.to_int dst) with
      | Some nb ->
          [ Channel.make (link_between topo at (Ids.Switch.of_int nb)) 0 ]
      | None -> [])

let adaptive_with_xy_escape ~columns ~rows net =
  ignore rows;
  let topo = Network.topology net in
  Routing_function.make topo (fun ~at ~dst ->
      let a = Ids.Switch.to_int at and d = Ids.Switch.to_int dst in
      let x, y = coord ~columns a and dx, dy = coord ~columns d in
      let minimal_neighbours =
        List.filter_map
          (fun (l : Topology.link) ->
            let cand = Ids.Switch.to_int l.Topology.dst in
            let cx, cy = coord ~columns cand in
            if abs (dx - cx) + abs (dy - cy) < abs (dx - x) + abs (dy - y) then
              Some cand
            else None)
          (Topology.out_links topo at)
      in
      let adaptive =
        List.map
          (fun nb -> Channel.make (link_between topo at (Ids.Switch.of_int nb)) 1)
          (List.sort_uniq compare minimal_neighbours)
      in
      let escape =
        match xy_next ~columns a d with
        | Some nb -> [ Channel.make (link_between topo at (Ids.Switch.of_int nb)) 0 ]
        | None -> []
      in
      escape @ adaptive)
