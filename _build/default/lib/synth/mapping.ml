open Noc_model

(* Greedy agglomerative clustering on the undirected communication
   affinity between clusters.  Affinities are kept in a dense matrix
   indexed by cluster representative (the smallest core id in the
   cluster), which is ample for the <=64-core benchmarks this project
   targets. *)

let cluster traffic ~n_switches =
  let n = Traffic.n_cores traffic in
  if n_switches <= 0 then invalid_arg "Mapping.cluster: n_switches <= 0";
  if n_switches > n then
    invalid_arg "Mapping.cluster: more switches than cores";
  let cap = 2 * ((n + n_switches - 1) / n_switches) in
  (* affinity.(i).(j): bandwidth between clusters represented by i, j. *)
  let affinity = Array.make_matrix n n 0. in
  List.iter
    (fun (f : Traffic.flow) ->
      let a = Ids.Core.to_int f.Traffic.src and b = Ids.Core.to_int f.Traffic.dst in
      affinity.(a).(b) <- affinity.(a).(b) +. f.Traffic.bandwidth;
      affinity.(b).(a) <- affinity.(b).(a) +. f.Traffic.bandwidth)
    (Traffic.flows traffic);
  let rep = Array.init n (fun i -> i) in
  (* representative of each core's cluster *)
  let size = Array.make n 1 in
  let alive = Array.make n true in
  let n_clusters = ref n in
  let find_rep i = rep.(i) in
  let merge a b =
    (* Fold cluster b into cluster a (a < b kept as representative). *)
    for k = 0 to n - 1 do
      if alive.(k) && k <> a && k <> b then begin
        affinity.(a).(k) <- affinity.(a).(k) +. affinity.(b).(k);
        affinity.(k).(a) <- affinity.(a).(k)
      end
    done;
    alive.(b) <- false;
    size.(a) <- size.(a) + size.(b);
    for i = 0 to n - 1 do
      if rep.(i) = b then rep.(i) <- a
    done;
    decr n_clusters
  in
  let best_pair () =
    (* Highest affinity pair whose merged size fits the cap; ties break
       to the smallest (a, b).  Falls back to the smallest-size legal
       pair when no positive affinity remains. *)
    let best = ref None in
    for a = 0 to n - 1 do
      if alive.(a) then
        for b = a + 1 to n - 1 do
          if alive.(b) && size.(a) + size.(b) <= cap then begin
            let w = affinity.(a).(b) in
            match !best with
            | Some (w', _, _) when w' >= w -> ()
            | Some _ | None -> if w > 0. then best := Some (w, a, b)
          end
        done
    done;
    match !best with
    | Some (_, a, b) -> Some (a, b)
    | None ->
        (* No affine pair: merge the two smallest clusters that fit. *)
        let candidates = ref [] in
        for a = 0 to n - 1 do
          if alive.(a) then candidates := a :: !candidates
        done;
        let sorted =
          List.sort
            (fun a b ->
              match compare size.(a) size.(b) with 0 -> compare a b | c -> c)
            !candidates
        in
        (match sorted with
        | a :: rest -> (
            match List.find_opt (fun b -> size.(a) + size.(b) <= cap) rest with
            | Some b -> Some (min a b, max a b)
            | None -> (
                (* Cap blocks everything: merge the two smallest anyway
                   (can only happen with extreme skew). *)
                match rest with b :: _ -> Some (min a b, max a b) | [] -> None))
        | [] -> None)
  in
  let rec reduce () =
    if !n_clusters > n_switches then
      match best_pair () with
      | Some (a, b) ->
          merge a b;
          reduce ()
      | None -> ()
  in
  reduce ();
  (* Densify representatives to switch ids 0..n_switches-1, in order of
     smallest core id, so results are stable. *)
  let reps =
    List.sort_uniq compare (List.init n (fun i -> find_rep i))
  in
  let index_of r =
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if x = r then i else go (i + 1) rest
    in
    go 0 reps
  in
  Array.init n (fun i -> Ids.Switch.of_int (index_of (find_rep i)))

let intra_cluster_bandwidth traffic mapping =
  List.fold_left
    (fun acc (f : Traffic.flow) ->
      let s = mapping.(Ids.Core.to_int f.Traffic.src) in
      let d = mapping.(Ids.Core.to_int f.Traffic.dst) in
      if Ids.Switch.equal s d then acc +. f.Traffic.bandwidth else acc)
    0. (Traffic.flows traffic)
