lib/synth/floorplan.mli: Ids Noc_model Topology
