lib/synth/regular.mli: Ids Noc_model Topology
