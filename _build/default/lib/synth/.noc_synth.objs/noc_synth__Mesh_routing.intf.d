lib/synth/mesh_routing.mli: Network Noc_model Routing_function
