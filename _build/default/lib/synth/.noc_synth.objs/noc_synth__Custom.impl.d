lib/synth/custom.ml: Array Fm_partition Ids List Mapping Network Noc_graph Noc_model Routing Topology Traffic
