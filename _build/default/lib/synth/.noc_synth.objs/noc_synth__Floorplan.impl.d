lib/synth/floorplan.ml: Ids List Noc_model Topology
