lib/synth/fm_partition.mli: Ids Noc_model Traffic
