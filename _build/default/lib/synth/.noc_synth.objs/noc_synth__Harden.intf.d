lib/synth/harden.mli: Format Network Noc_model
