lib/synth/harden.ml: Format List Metrics Network Noc_model Topology
