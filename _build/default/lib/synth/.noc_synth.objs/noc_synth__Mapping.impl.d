lib/synth/mapping.ml: Array Ids List Noc_model Traffic
