lib/synth/mapping.mli: Ids Noc_model Traffic
