lib/synth/mesh_routing.ml: Channel Format Ids List Network Noc_model Routing_function Topology
