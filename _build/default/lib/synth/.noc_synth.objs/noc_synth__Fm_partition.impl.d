lib/synth/fm_partition.ml: Array Hashtbl Ids List Noc_model Traffic
