lib/synth/regular.ml: Ids Noc_model Topology
