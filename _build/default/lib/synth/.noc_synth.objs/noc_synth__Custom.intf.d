lib/synth/custom.mli: Network Noc_model Traffic
