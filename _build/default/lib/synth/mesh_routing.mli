(** Mesh-specific routing functions: dimension-ordered (XY) routing
    and the classic Duato construction — fully adaptive minimal
    routing on VC 1 with an XY escape lane on VC 0.

    All functions assume the {!Regular.mesh} id convention
    (switch [(x, y)] has id [y * columns + x]) and that every link of
    the mesh carries the VCs the function offers. *)

open Noc_model

val xy_static : columns:int -> rows:int -> Network.t -> Routing_function.t
(** Pure XY on VC 0: deterministic, deadlock-free by turn
    elimination.
    @raise Invalid_argument (at query time) if the topology lacks a
    needed mesh link. *)

val adaptive_with_xy_escape :
  columns:int -> rows:int -> Network.t -> Routing_function.t
(** Duato's construction: all minimal hops on VC 1 (adaptive lane)
    plus the XY hop on VC 0 (escape lane).  Passes
    {!Noc_deadlock.Duato.check} with [escape = (vc = 0)].  Requires
    two VCs on every mesh link. *)
