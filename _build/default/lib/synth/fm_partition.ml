open Noc_model

(* Undirected affinity between two cores. *)
let affinity_matrix traffic =
  let n = Traffic.n_cores traffic in
  let m = Array.make_matrix n n 0. in
  List.iter
    (fun (f : Traffic.flow) ->
      let a = Ids.Core.to_int f.Traffic.src and b = Ids.Core.to_int f.Traffic.dst in
      m.(a).(b) <- m.(a).(b) +. f.Traffic.bandwidth;
      m.(b).(a) <- m.(b).(a) +. f.Traffic.bandwidth)
    (Traffic.flows traffic);
  m

let cut_bandwidth traffic left right =
  let m = affinity_matrix traffic in
  List.fold_left
    (fun acc a -> List.fold_left (fun acc b -> acc +. m.(a).(b)) acc right)
    0. left

let bipartition traffic ~cores ~max_part =
  let k = List.length cores in
  if k < 2 then invalid_arg "Fm_partition.bipartition: need at least 2 cores";
  if 2 * max_part < k then
    invalid_arg "Fm_partition.bipartition: cap makes a legal split impossible";
  let m = affinity_matrix traffic in
  let arr = Array.of_list (List.sort compare cores) in
  (* Initial split: first half left, second half right (stable and
     deterministic; FM refines it). *)
  let side = Hashtbl.create k in
  Array.iteri (fun i c -> Hashtbl.replace side c (i < (k + 1) / 2)) arr;
  let in_left c = Hashtbl.find side c in
  let size_left () = Array.fold_left (fun n c -> if in_left c then n + 1 else n) 0 arr in
  (* Gain of moving core c to the other side: external - internal
     affinity (within this core subset only). *)
  let gain c =
    Array.fold_left
      (fun g c' ->
        if c' = c then g
        else if in_left c' = in_left c then g -. m.(c).(c')
        else g +. m.(c).(c'))
      0. arr
  in
  (* One FM pass: move-and-lock every core in best-gain order, then
     keep the best prefix. *)
  let pass () =
    let locked = Hashtbl.create k in
    let moves = ref [] in
    let cum = ref 0. and best_cum = ref 0. and best_len = ref 0 in
    for step = 1 to k do
      (* Pick the unlocked core with the highest gain whose move keeps
         both sides within the cap. *)
      let best = ref None in
      Array.iter
        (fun c ->
          if not (Hashtbl.mem locked c) then begin
            let l = size_left () in
            let new_left = if in_left c then l - 1 else l + 1 in
            if new_left <= max_part && k - new_left <= max_part then begin
              let g = gain c in
              match !best with
              | Some (g', c') when g' > g || (g' = g && c' < c) -> ()
              | Some _ | None -> best := Some (g, c)
            end
          end)
        arr;
      match !best with
      | None -> ()
      | Some (g, c) ->
          Hashtbl.replace side c (not (in_left c));
          Hashtbl.replace locked c ();
          cum := !cum +. g;
          moves := c :: !moves;
          if !cum > !best_cum +. 1e-9 then begin
            best_cum := !cum;
            best_len := step
          end
    done;
    (* Roll back the moves after the best prefix. *)
    let all = List.rev !moves in
    List.iteri
      (fun i c -> if i >= !best_len then Hashtbl.replace side c (not (in_left c)))
      all;
    !best_cum > 1e-9
  in
  let rec refine budget = if budget > 0 && pass () then refine (budget - 1) in
  refine 8;
  let left = List.filter in_left (Array.to_list arr) in
  let right = List.filter (fun c -> not (in_left c)) (Array.to_list arr) in
  (left, right)

let cluster traffic ~n_switches =
  let n = Traffic.n_cores traffic in
  if n_switches <= 0 then invalid_arg "Fm_partition.cluster: n_switches <= 0";
  if n_switches > n then invalid_arg "Fm_partition.cluster: more switches than cores";
  (* Recursively split the core set, always giving each side a number
     of target parts proportional to its share. *)
  let mapping = Array.make n (-1) in
  let next_part = ref 0 in
  let rec split cores parts =
    if parts <= 1 || List.length cores <= 1 then begin
      let p = !next_part in
      incr next_part;
      List.iter (fun c -> mapping.(c) <- p) cores
    end
    else begin
      let k = List.length cores in
      let parts_left = parts / 2 in
      let parts_right = parts - parts_left in
      let left, right = bipartition traffic ~cores ~max_part:((k + 1) / 2) in
      (* Each side must keep at least one core per part it will host;
         move smallest-id cores across until both minima hold. *)
      let rec rebalance left right =
        if List.length left < parts_left then
          match right with
          | c :: rest -> rebalance (c :: left) rest
          | [] -> (left, right)
        else if List.length right < parts_right then
          match left with
          | c :: rest -> rebalance rest (c :: right)
          | [] -> (left, right)
        else (left, right)
      in
      let left, right = rebalance left right in
      split left parts_left;
      split right parts_right
    end
  in
  split (List.init n (fun i -> i)) n_switches;
  (* Densify part ids (they already are dense by construction). *)
  Array.map Ids.Switch.of_int mapping
