(** Regular topology generators.  All links are created in directed
    pairs, so every generated topology is symmetric. *)

open Noc_model

val ring : n_switches:int -> Topology.t
(** Bidirectional ring [0 - 1 - ... - (n-1) - 0].
    @raise Invalid_argument when [n_switches < 2]. *)

val mesh : columns:int -> rows:int -> Topology.t
(** 2D mesh; switch [(x, y)] has id [y * columns + x].
    @raise Invalid_argument when either dimension is [< 1] or the mesh
    has a single switch. *)

val torus : columns:int -> rows:int -> Topology.t
(** 2D torus: mesh plus wrap-around links (no wrap on a dimension of
    size [<= 2], where it would duplicate the mesh link). *)

val mesh_coords : columns:int -> Ids.Switch.t -> int * int
(** Inverse of the mesh id convention: [(x, y)] of a switch. *)

val fully_connected : n_switches:int -> Topology.t
(** Every ordered switch pair gets a link; used as a stress input. *)
