open Noc_model

let sw = Ids.Switch.of_int

let add_pair topo a b =
  ignore (Topology.add_link topo ~src:(sw a) ~dst:(sw b));
  ignore (Topology.add_link topo ~src:(sw b) ~dst:(sw a))

let ring ~n_switches =
  if n_switches < 2 then invalid_arg "Regular.ring: need at least 2 switches";
  let topo = Topology.create ~n_switches in
  for i = 0 to n_switches - 1 do
    add_pair topo i ((i + 1) mod n_switches)
  done;
  topo

let mesh ~columns ~rows =
  if columns < 1 || rows < 1 || columns * rows < 2 then
    invalid_arg "Regular.mesh: need at least 2 switches";
  let topo = Topology.create ~n_switches:(columns * rows) in
  let id x y = (y * columns) + x in
  for y = 0 to rows - 1 do
    for x = 0 to columns - 1 do
      if x + 1 < columns then add_pair topo (id x y) (id (x + 1) y);
      if y + 1 < rows then add_pair topo (id x y) (id x (y + 1))
    done
  done;
  topo

let torus ~columns ~rows =
  let topo = mesh ~columns ~rows in
  let id x y = (y * columns) + x in
  if columns > 2 then
    for y = 0 to rows - 1 do
      add_pair topo (id (columns - 1) y) (id 0 y)
    done;
  if rows > 2 then
    for x = 0 to columns - 1 do
      add_pair topo (id x (rows - 1)) (id x 0)
    done;
  topo

let mesh_coords ~columns s =
  let i = Ids.Switch.to_int s in
  (i mod columns, i / columns)

let fully_connected ~n_switches =
  if n_switches < 2 then
    invalid_arg "Regular.fully_connected: need at least 2 switches";
  let topo = Topology.create ~n_switches in
  for a = 0 to n_switches - 1 do
    for b = 0 to n_switches - 1 do
      if a <> b then ignore (Topology.add_link topo ~src:(sw a) ~dst:(sw b))
    done
  done;
  topo
