open Noc_model

type mapper = Greedy_affinity | Min_cut

type options = {
  max_out_degree : int;
  max_in_degree : int;
  load_aware_routing : bool;
  force_bidirectional : bool;
  mapper : mapper;
}

let default_options =
  {
    max_out_degree = 4;
    max_in_degree = 4;
    load_aware_routing = true;
    force_bidirectional = false;
    mapper = Greedy_affinity;
  }

(* Inter-switch demand matrix induced by the mapping. *)
let demands traffic mapping n_switches =
  let d = Array.make_matrix n_switches n_switches 0. in
  List.iter
    (fun (f : Traffic.flow) ->
      let s = Ids.Switch.to_int mapping.(Ids.Core.to_int f.Traffic.src) in
      let t = Ids.Switch.to_int mapping.(Ids.Core.to_int f.Traffic.dst) in
      if s <> t then d.(s).(t) <- d.(s).(t) +. f.Traffic.bandwidth)
    (Traffic.flows traffic);
  d

let synthesize ?(options = default_options) traffic ~n_switches =
  let mapping =
    match options.mapper with
    | Greedy_affinity -> Mapping.cluster traffic ~n_switches
    | Min_cut -> Fm_partition.cluster traffic ~n_switches
  in
  let topo = Topology.create ~n_switches in
  let demand = demands traffic mapping n_switches in
  let out_deg = Array.make n_switches 0 and in_deg = Array.make n_switches 0 in
  let add_link a b =
    ignore
      (Topology.add_link topo ~src:(Ids.Switch.of_int a) ~dst:(Ids.Switch.of_int b));
    out_deg.(a) <- out_deg.(a) + 1;
    in_deg.(b) <- in_deg.(b) + 1
  in
  (* Pass 1: direct links for the heaviest demands while the degree
     budget lasts.  Sorting is (demand desc, then pair asc) so the
     result is deterministic. *)
  let pairs = ref [] in
  for a = 0 to n_switches - 1 do
    for b = 0 to n_switches - 1 do
      if a <> b && demand.(a).(b) > 0. then pairs := (demand.(a).(b), a, b) :: !pairs
    done
  done;
  let sorted =
    List.sort
      (fun (w1, a1, b1) (w2, a2, b2) ->
        match compare w2 w1 with 0 -> compare (a1, b1) (a2, b2) | c -> c)
      !pairs
  in
  List.iter
    (fun (_, a, b) ->
      if out_deg.(a) < options.max_out_degree && in_deg.(b) < options.max_in_degree
      then add_link a b)
    sorted;
  (* Pass 2: routability.  Every demanded pair must have a directed
     path; when it does not, route through the least-loaded relay with
     spare degree, or add a direct link as last resort (technology
     constraints bend before unroutable designs do, as in the paper's
     discussion of [18]/[21]). *)
  let reachable_matrix () =
    let g = Topology.switch_graph topo in
    Array.init n_switches (fun s -> Noc_graph.Traversal.reachable g s)
  in
  let needed =
    List.filter (fun (_, a, b) -> a <> b) (List.map (fun (w, a, b) -> (w, a, b)) sorted)
  in
  let fix (_, a, b) =
    let reach = reachable_matrix () in
    if not reach.(a).(b) then add_link a b
  in
  List.iter fix needed;
  if options.force_bidirectional then begin
    (* Open the reverse direction wherever it is missing, ignoring the
       degree budget: this is the "make connections bidirectional"
       escape hatch the paper describes as not always available. *)
    let missing =
      List.filter_map
        (fun (l : Topology.link) ->
          match
            Topology.find_links topo ~src:l.Topology.dst ~dst:l.Topology.src
          with
          | [] -> Some (Ids.Switch.to_int l.Topology.dst, Ids.Switch.to_int l.Topology.src)
          | _ :: _ -> None)
        (Topology.links topo)
    in
    List.iter (fun (a, b) -> add_link a b) (List.sort_uniq compare missing)
  end;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        mapping.(Ids.Core.to_int c))
  in
  let routed =
    if options.load_aware_routing then Routing.route_all_load_aware net
    else Routing.route_all net
  in
  match routed with
  | Ok () -> Ok net
  | Error e -> Error e

let synthesize_exn ?options traffic ~n_switches =
  match synthesize ?options traffic ~n_switches with
  | Ok net -> net
  | Error e -> failwith ("Custom.synthesize: " ^ e)
