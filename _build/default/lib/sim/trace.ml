open Noc_model

type event =
  | Inject of { cycle : int; packet : int }
  | Acquire of { cycle : int; packet : int; channel : Channel.t }
  | Release of { cycle : int; packet : int; channel : Channel.t }
  | Hop of { cycle : int; packet : int; flit : int; channel : Channel.t }
  | Deliver of { cycle : int; packet : int }

let recorder () =
  let events = ref [] in
  let emit e = events := e :: !events in
  let dump () = List.rev !events in
  (emit, dump)

let fail fmt = Format.kasprintf (fun s -> Error s) fmt

let check_exclusive_ownership events =
  let owner = Channel.Table.create 64 in
  let rec go = function
    | [] -> Ok ()
    | Acquire { cycle; packet; channel } :: rest -> (
        match Channel.Table.find_opt owner channel with
        | Some other ->
            fail "cycle %d: packet %d acquired %a still owned by packet %d" cycle
              packet Channel.pp channel other
        | None ->
            Channel.Table.replace owner channel packet;
            go rest)
    | Release { cycle; packet; channel } :: rest -> (
        match Channel.Table.find_opt owner channel with
        | Some p when p = packet ->
            Channel.Table.remove owner channel;
            go rest
        | Some p ->
            fail "cycle %d: packet %d released %a owned by packet %d" cycle packet
              Channel.pp channel p
        | None ->
            fail "cycle %d: packet %d released unowned %a" cycle packet Channel.pp
              channel)
    | (Inject _ | Hop _ | Deliver _) :: rest -> go rest
  in
  go events

let check_balanced events =
  let acquired = Hashtbl.create 64 in
  let injected = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e with
      | Acquire { packet; channel; _ } ->
          Hashtbl.replace acquired (packet, channel) ()
      | Release { packet; channel; _ } -> Hashtbl.remove acquired (packet, channel)
      | Inject { packet; _ } -> Hashtbl.replace injected packet ()
      | Deliver { packet; _ } -> Hashtbl.remove injected packet
      | Hop _ -> ())
    events;
  if Hashtbl.length acquired > 0 then
    let (packet, channel), () = Hashtbl.to_seq acquired |> List.of_seq |> List.hd in
    fail "packet %d never released %a" packet Channel.pp channel
  else if Hashtbl.length injected > 0 then
    let packet = Hashtbl.to_seq_keys injected |> List.of_seq |> List.hd in
    fail "packet %d injected but never delivered" packet
  else Ok ()

let check_route_order route_of events =
  (* Position of the next expected acquisition per packet. *)
  let next = Hashtbl.create 64 in
  let rec go = function
    | [] -> Ok ()
    | Acquire { cycle; packet; channel } :: rest -> (
        let route = route_of packet in
        let pos = Option.value ~default:0 (Hashtbl.find_opt next packet) in
        match List.nth_opt route pos with
        | Some expected when Channel.equal expected channel ->
            Hashtbl.replace next packet (pos + 1);
            go rest
        | Some expected ->
            fail "cycle %d: packet %d acquired %a, route expects %a at hop %d"
              cycle packet Channel.pp channel Channel.pp expected pos
        | None ->
            fail "cycle %d: packet %d acquired %a past the end of its route" cycle
              packet Channel.pp channel)
    | (Inject _ | Hop _ | Deliver _ | Release _) :: rest -> go rest
  in
  go events

let pp_event ppf = function
  | Inject { cycle; packet } -> Format.fprintf ppf "@%d inject pkt%d" cycle packet
  | Acquire { cycle; packet; channel } ->
      Format.fprintf ppf "@%d pkt%d acquires %a" cycle packet Channel.pp channel
  | Release { cycle; packet; channel } ->
      Format.fprintf ppf "@%d pkt%d releases %a" cycle packet Channel.pp channel
  | Hop { cycle; packet; flit; channel } ->
      Format.fprintf ppf "@%d pkt%d flit %d -> %a" cycle packet flit Channel.pp
        channel
  | Deliver { cycle; packet } -> Format.fprintf ppf "@%d deliver pkt%d" cycle packet
