(** Waits-for analysis over blocked packets.

    The simulator reports, for each blocked packet, which packet owns
    the channel it is waiting to acquire.  A directed cycle in that
    waits-for relation is a genuine wormhole deadlock certificate: no
    packet in the cycle can ever advance. *)

type edge = { waiter : int; holder : int }
(** Packet ids: [waiter] is blocked on a channel owned by [holder]. *)

val find_cycle : edge list -> int list option
(** A cycle of packet ids in the waits-for relation, or [None]. *)

val is_deadlocked : edge list -> bool
