open Noc_model

type flow_stats = {
  flow : Ids.Flow.t;
  delivered : int;
  total_latency : int;
  max_latency : int;
}

type t = {
  cycles : int;
  delivered : int;
  flits_moved : int;
  per_flow : flow_stats list;
  channel_moves : (Channel.t * int) list;
}

let utilization t c =
  if t.cycles <= 0 then 0.
  else
    match List.find_opt (fun (c', _) -> Channel.equal c c') t.channel_moves with
    | Some (_, n) -> float_of_int n /. float_of_int t.cycles
    | None -> 0.

let busiest_channel t =
  List.fold_left
    (fun best ((_, n) as cand) ->
      match best with
      | Some (_, m) when m >= n -> best
      | Some _ | None -> Some cand)
    None t.channel_moves

let avg_latency t =
  if t.delivered = 0 then 0.
  else
    let total =
      List.fold_left (fun acc f -> acc + f.total_latency) 0 t.per_flow
    in
    float_of_int total /. float_of_int t.delivered

let max_latency t = List.fold_left (fun acc f -> max acc f.max_latency) 0 t.per_flow

let flow t id = List.find_opt (fun f -> Ids.Flow.equal f.flow id) t.per_flow

module Accumulator = struct
  type acc = {
    table : (int, flow_stats ref) Hashtbl.t;
    mutable total_delivered : int;
  }

  let create () = { table = Hashtbl.create 64; total_delivered = 0 }

  let record acc ~flow ~latency =
    acc.total_delivered <- acc.total_delivered + 1;
    let cell =
      match Hashtbl.find_opt acc.table (Ids.Flow.to_int flow) with
      | Some r -> r
      | None ->
          let r = ref { flow; delivered = 0; total_latency = 0; max_latency = 0 } in
          Hashtbl.replace acc.table (Ids.Flow.to_int flow) r;
          r
    in
    cell :=
      {
        !cell with
        delivered = !cell.delivered + 1;
        total_latency = !cell.total_latency + latency;
        max_latency = max !cell.max_latency latency;
      }

  let delivered acc = acc.total_delivered

  let flow_stats acc =
    Hashtbl.fold (fun _ r l -> !r :: l) acc.table []
    |> List.sort (fun a b -> Ids.Flow.compare a.flow b.flow)
end

let pp ppf t =
  Format.fprintf ppf
    "@[<v>simulation: %d cycles, %d packets delivered, %d flit moves, avg \
     latency %.1f, max %d"
    t.cycles t.delivered t.flits_moved (avg_latency t) (max_latency t);
  List.iter
    (fun f ->
      Format.fprintf ppf "@,  %a: %d delivered, max latency %d" Ids.Flow.pp f.flow
        f.delivered f.max_latency)
    t.per_flow;
  Format.fprintf ppf "@]"
