(** Packet workload generators for the simulator.  Flows whose source
    and destination share a switch have empty routes and never enter
    the network; they are skipped. *)

open Noc_model

val burst :
  Network.t -> packet_length:int -> packets_per_flow:int -> Packet.t list
(** Every flow injects all its packets back-to-back starting at cycle
    0 — the adversarial pattern that exposes wormhole deadlocks: long
    packets grab channel chains simultaneously. *)

val periodic :
  Network.t ->
  packet_length:int ->
  packets_per_flow:int ->
  interval:int ->
  Packet.t list
(** Flow [i] injects packet [j] at cycle [i + j * interval]: staggered
    steady-state traffic.
    @raise Invalid_argument when [interval < 1]. *)

val total_flits : Packet.t list -> int
