(** Simulation statistics. *)

open Noc_model

type flow_stats = {
  flow : Ids.Flow.t;
  delivered : int;
  total_latency : int;  (** Sum over delivered packets. *)
  max_latency : int;
}

type t = {
  cycles : int;
  delivered : int;
  flits_moved : int;
  per_flow : flow_stats list;
  channel_moves : (Channel.t * int) list;
      (** Flits that crossed each channel (entered its buffer), in
          channel order; channels that never moved a flit are
          omitted. *)
}

val utilization : t -> Channel.t -> float
(** Fraction of simulated cycles in which the channel accepted a flit;
    [0.] for unknown channels or zero-cycle runs. *)

val busiest_channel : t -> (Channel.t * int) option
(** The channel with the most flit arrivals (ties: smallest channel). *)

(** Incremental per-flow accounting shared by the simulation engines. *)
module Accumulator : sig
  type acc

  val create : unit -> acc
  val record : acc -> flow:Ids.Flow.t -> latency:int -> unit
  val delivered : acc -> int
  val flow_stats : acc -> flow_stats list
  (** Sorted by flow id. *)
end

val avg_latency : t -> float
(** Mean packet latency over all delivered packets; [0.] when none. *)

val max_latency : t -> int

val flow : t -> Ids.Flow.t -> flow_stats option

val pp : Format.formatter -> t -> unit
