open Noc_model

type t = {
  id : int;
  flow : Ids.Flow.t;
  route : Channel.t array;
  length : int;
  inject_at : int;
}

type flit = { packet : t; index : int }

let make ~id ~flow ~route ~length ~inject_at =
  if length < 1 then invalid_arg "Packet.make: length < 1";
  if route = [] then invalid_arg "Packet.make: empty route";
  if inject_at < 0 then invalid_arg "Packet.make: negative injection cycle";
  { id; flow; route = Array.of_list route; length; inject_at }

let flits t = List.init t.length (fun index -> { packet = t; index })
let is_head f = f.index = 0
let is_tail f = f.index = f.packet.length - 1

let pp ppf t =
  Format.fprintf ppf "pkt%d(%a, %d flits, %d hops, t>=%d)" t.id Ids.Flow.pp t.flow
    t.length (Array.length t.route) t.inject_at
