open Noc_model

type workload = {
  id : int;
  flow : Ids.Flow.t;
  src : Ids.Switch.t;
  dst : Ids.Switch.t;
  length : int;
  inject_at : int;
}

let workload_of_flows net ~packet_length ~packets_per_flow =
  let next = ref 0 in
  List.concat_map
    (fun (f : Traffic.flow) ->
      let src, dst = Network.endpoints net f.Traffic.id in
      if Ids.Switch.equal src dst then []
      else
        List.init packets_per_flow (fun _ ->
            let id = !next in
            incr next;
            { id; flow = f.Traffic.id; src; dst; length = packet_length; inject_at = 0 }))
    (Traffic.flows (Network.traffic net))

type stalled = { cycle : int; in_network_flits : int; blocked_packets : int list }

type outcome = Completed of Stats.t | Stalled of stalled | Timed_out of Stats.t

(* Per-packet dynamic state: the path its head has carved so far
   (reversed), how many flits the source has pushed, etc. *)
type job = {
  w : workload;
  mutable path_rev : Channel.t list;
  mutable sent : int;  (** Flits injected so far. *)
  mutable finished : bool;
}

type buffered = { job : job; flit_index : int; mutable arrived : int }

type chan_state = {
  channel : Channel.t;
  head_switch : Ids.Switch.t;  (** Downstream endpoint of the link. *)
  capacity : int;
  queue : buffered Queue.t;
  mutable owner : int option;
  mutable accepted : bool;
  mutable arrivals : int;
}

let run ?(config = Engine.default_config)
    ?(on_event = fun (_ : Trace.event) -> ()) net rf workloads =
  let topo = Network.topology net in
  let states = Channel.Table.create 256 in
  List.iter
    (fun c ->
      Channel.Table.replace states c
        {
          channel = c;
          head_switch = (Topology.link topo (Channel.link c)).Topology.dst;
          capacity = config.Engine.buffer_depth;
          queue = Queue.create ();
          owner = None;
          accepted = false;
          arrivals = 0;
        })
    (Topology.channels topo);
  let state c =
    match Channel.Table.find_opt states c with
    | Some s -> s
    | None ->
        invalid_arg
          (Format.asprintf "Adaptive_engine: routing function offered unknown %a"
             Channel.pp c)
  in
  let channel_order =
    List.map state (List.sort Channel.compare (Topology.channels topo))
  in
  let jobs =
    List.map (fun w -> { w; path_rev = []; sent = 0; finished = false }) workloads
  in
  (* Source queues per flow, jobs in (inject_at, id) order. *)
  let sources =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun j ->
        let k = Ids.Flow.to_int j.w.flow in
        Hashtbl.replace tbl k (j :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
      jobs;
    Hashtbl.fold
      (fun k js acc ->
        ( k,
          ref
            (List.sort
               (fun a b ->
                 match compare a.w.inject_at b.w.inject_at with
                 | 0 -> compare a.w.id b.w.id
                 | c -> c)
               js) )
        :: acc)
      tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let n_packets = List.length workloads in
  let flits_moved = ref 0 in
  let acc = Stats.Accumulator.create () in
  (* Position of channel [c] in a job's carved path. *)
  let path_index j c =
    let rec find i = function
      | [] -> invalid_arg "Adaptive_engine: flit off its path"
      | x :: rest -> if Channel.equal x c then i else find (i - 1) rest
    in
    find (List.length j.path_rev - 1) j.path_rev
  in
  let path_nth j i = List.nth (List.rev j.path_rev) i in
  (* Try to acquire a next channel among the function's candidates:
     first free-with-space candidate wins. *)
  let try_extend j ~at cycle =
    let candidates = Routing_function.options rf ~at ~dst:j.w.dst in
    let free cs' =
      cs'.owner = None && (not cs'.accepted) && Queue.length cs'.queue < cs'.capacity
    in
    let rec pick = function
      | [] -> None
      | c :: rest ->
          let cs' = state c in
          (* Minimal adaptivity is loopless, but guard against a
             function offering a channel already on the path. *)
          if List.exists (Channel.equal c) j.path_rev then pick rest
          else if free cs' then Some cs'
          else pick rest
    in
    match pick candidates with
    | None -> None
    | Some cs' ->
        cs'.owner <- Some j.w.id;
        on_event
          (Trace.Acquire { cycle; packet = j.w.id; channel = cs'.channel });
        cs'.accepted <- true;
        cs'.arrivals <- cs'.arrivals + 1;
        j.path_rev <- cs'.channel :: j.path_rev;
        Some cs'
  in
  let step cycle =
    let moved = ref false in
    List.iter (fun cs -> cs.accepted <- false) channel_order;
    let forward cs =
      match Queue.peek_opt cs.queue with
      | None -> ()
      | Some b when b.arrived + config.Engine.router_latency > cycle -> ()
      | Some b ->
          let j = b.job in
          let i = path_index j cs.channel in
          let at_path_end = i = List.length j.path_rev - 1 in
          let is_tail = b.flit_index = j.w.length - 1 in
          if at_path_end && Ids.Switch.equal cs.head_switch j.w.dst then begin
            (* Ejection. *)
            ignore (Queue.pop cs.queue);
            incr flits_moved;
            moved := true;
            if is_tail then begin
              cs.owner <- None;
              on_event
                (Trace.Release { cycle; packet = j.w.id; channel = cs.channel });
              j.finished <- true;
              Stats.Accumulator.record acc ~flow:j.w.flow
                ~latency:(cycle - j.w.inject_at);
              on_event (Trace.Deliver { cycle; packet = j.w.id })
            end
          end
          else begin
            let target =
              if at_path_end then begin
                (* Only the head extends the path. *)
                if b.flit_index = 0 then try_extend j ~at:cs.head_switch cycle
                else None
              end
              else begin
                let cs' = state (path_nth j (i + 1)) in
                if
                  (not cs'.accepted)
                  && Queue.length cs'.queue < cs'.capacity
                  && cs'.owner = Some j.w.id
                then begin
                  cs'.accepted <- true;
                  cs'.arrivals <- cs'.arrivals + 1;
                  Some cs'
                end
                else None
              end
            in
            match target with
            | None -> ()
            | Some cs' ->
                ignore (Queue.pop cs.queue);
                Queue.push { job = j; flit_index = b.flit_index; arrived = cycle } cs'.queue;
                on_event
                  (Trace.Hop
                     {
                       cycle;
                       packet = j.w.id;
                       flit = b.flit_index;
                       channel = cs'.channel;
                     });
                if is_tail then begin
                  cs.owner <- None;
                  on_event
                    (Trace.Release { cycle; packet = j.w.id; channel = cs.channel })
                end;
                incr flits_moved;
                moved := true
          end
    in
    List.iter forward channel_order;
    let inject src =
      match !src with
      | [] -> ()
      | j :: rest ->
          if j.w.inject_at <= cycle then begin
            let target =
              if j.sent = 0 then try_extend j ~at:j.w.src cycle
              else begin
                match j.path_rev with
                | [] -> None
                | _ ->
                    let cs' = state (path_nth j 0) in
                    if
                      (not cs'.accepted)
                      && Queue.length cs'.queue < cs'.capacity
                      && cs'.owner = Some j.w.id
                    then begin
                      cs'.accepted <- true;
                      cs'.arrivals <- cs'.arrivals + 1;
                      Some cs'
                    end
                    else None
              end
            in
            match target with
            | None -> ()
            | Some cs' ->
                if j.sent = 0 then
                  on_event (Trace.Inject { cycle; packet = j.w.id });
                Queue.push { job = j; flit_index = j.sent; arrived = cycle } cs'.queue;
                on_event
                  (Trace.Hop
                     { cycle; packet = j.w.id; flit = j.sent; channel = cs'.channel });
                j.sent <- j.sent + 1;
                incr flits_moved;
                moved := true;
                if j.sent = j.w.length then src := rest
          end
    in
    List.iter inject sources;
    !moved
  in
  let network_flits () =
    Channel.Table.fold (fun _ cs n -> n + Queue.length cs.queue) states 0
  in
  let stats cycle =
    let channel_moves =
      List.filter_map
        (fun cs -> if cs.arrivals > 0 then Some (cs.channel, cs.arrivals) else None)
        channel_order
    in
    {
      Stats.cycles = cycle;
      delivered = Stats.Accumulator.delivered acc;
      flits_moved = !flits_moved;
      per_flow = Stats.Accumulator.flow_stats acc;
      channel_moves;
    }
  in
  let blocked () =
    let from_channels =
      List.filter_map
        (fun cs ->
          match Queue.peek_opt cs.queue with
          | Some b when not b.job.finished -> Some b.job.w.id
          | Some _ | None -> None)
        channel_order
    in
    let from_sources =
      List.filter_map
        (fun src -> match !src with j :: _ -> Some j.w.id | [] -> None)
        sources
    in
    List.sort_uniq compare (from_channels @ from_sources)
  in
  let rec loop cycle stall =
    if Stats.Accumulator.delivered acc = n_packets then Completed (stats cycle)
    else if cycle >= config.Engine.max_cycles then Timed_out (stats cycle)
    else begin
      let moved = step cycle in
      let alive =
        network_flits () > 0
        || List.exists
             (fun src ->
               match !src with j :: _ -> j.w.inject_at <= cycle | [] -> false)
             sources
      in
      let stall = if moved || not alive then 0 else stall + 1 in
      let threshold =
        max config.Engine.stall_threshold (4 * config.Engine.router_latency)
      in
      if stall >= threshold then
        Stalled
          { cycle; in_network_flits = network_flits (); blocked_packets = blocked () }
      else loop (cycle + 1) stall
    end
  in
  loop 0 0

let pp_outcome ppf = function
  | Completed s -> Format.fprintf ppf "completed: %a" Stats.pp s
  | Timed_out s -> Format.fprintf ppf "TIMED OUT: %a" Stats.pp s
  | Stalled d ->
      Format.fprintf ppf "STALLED at cycle %d: %d flits stuck, %d blocked packets"
        d.cycle d.in_network_flits
        (List.length d.blocked_packets)
