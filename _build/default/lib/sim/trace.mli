(** Event tracing and invariant checking for the simulator.

    The engine can emit one event per observable action (channel
    acquisition/release, flit hop, injection, delivery).  A recorded
    trace can then be checked against the defining invariants of
    wormhole flow control — catching simulator bugs that aggregate
    statistics would hide. *)

open Noc_model

type event =
  | Inject of { cycle : int; packet : int }
      (** The packet's head flit entered the network. *)
  | Acquire of { cycle : int; packet : int; channel : Channel.t }
      (** The packet's head took ownership of a free channel. *)
  | Release of { cycle : int; packet : int; channel : Channel.t }
      (** The packet's tail left the channel. *)
  | Hop of { cycle : int; packet : int; flit : int; channel : Channel.t }
      (** A flit entered the channel's buffer. *)
  | Deliver of { cycle : int; packet : int }
      (** The packet's tail was ejected at its destination. *)

val recorder : unit -> (event -> unit) * (unit -> event list)
(** [let emit, dump = recorder ()]: feed [emit] to
    {!Engine.run}; [dump ()] returns the events in emission order. *)

val check_exclusive_ownership : event list -> (unit, string) result
(** No channel is ever acquired while another packet holds it — the
    wormhole property itself. *)

val check_balanced : event list -> (unit, string) result
(** On a completed run every [Acquire] has a matching [Release] and
    every [Inject] a matching [Deliver]. *)

val check_route_order : (int -> Channel.t list) -> event list -> (unit, string) result
(** Given each packet's route (by packet id), its acquisitions must
    happen in route order with no skips. *)

val pp_event : Format.formatter -> event -> unit
