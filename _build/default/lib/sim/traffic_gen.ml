open Noc_model

let routed_flows net =
  List.filter_map
    (fun (f : Traffic.flow) ->
      match Network.route net f.Traffic.id with
      | [] -> None
      | route -> Some (f.Traffic.id, route))
    (Traffic.flows (Network.traffic net))

let generate net ~packet_length ~packets_per_flow ~inject_cycle =
  let next_id = ref 0 in
  List.concat_map
    (fun (flow, route) ->
      List.init packets_per_flow (fun j ->
          let id = !next_id in
          incr next_id;
          Packet.make ~id ~flow ~route ~length:packet_length
            ~inject_at:(inject_cycle flow j)))
    (routed_flows net)

let burst net ~packet_length ~packets_per_flow =
  generate net ~packet_length ~packets_per_flow ~inject_cycle:(fun _ _ -> 0)

let periodic net ~packet_length ~packets_per_flow ~interval =
  if interval < 1 then invalid_arg "Traffic_gen.periodic: interval < 1";
  generate net ~packet_length ~packets_per_flow ~inject_cycle:(fun flow j ->
      Ids.Flow.to_int flow + (j * interval))

let total_flits packets =
  List.fold_left (fun acc (p : Packet.t) -> acc + p.Packet.length) 0 packets
