(** Packets and flits of the wormhole simulator. *)

open Noc_model

type t = {
  id : int;
  flow : Ids.Flow.t;
  route : Channel.t array;  (** Channel sequence, source to sink. *)
  length : int;  (** Flits, head and tail included. *)
  inject_at : int;  (** Earliest injection cycle. *)
}

type flit = {
  packet : t;
  index : int;  (** 0 = head, [length - 1] = tail. *)
}

val make :
  id:int -> flow:Ids.Flow.t -> route:Channel.t list -> length:int ->
  inject_at:int -> t
(** @raise Invalid_argument when [length < 1], the route is empty, or
    [inject_at < 0]. *)

val flits : t -> flit list
(** The packet's flits in order. *)

val is_head : flit -> bool
val is_tail : flit -> bool

val pp : Format.formatter -> t -> unit
