(** Wormhole simulator with {e adaptive} routing: instead of a fixed
    per-packet channel list, each packet's head consults a
    {!Noc_model.Routing_function.t} at every switch and grabs the first
    candidate channel that is free and has space (deterministic
    preference order: the function's own channel order).  The body
    follows the path the head carved.

    This is the runtime companion of {!Noc_deadlock.Duato}: a function
    that passes Duato's check (e.g. fully adaptive VC 1 with an XY
    escape lane on VC 0) completes any workload here, while an
    unprotected adaptive function on a cyclic topology can be driven
    into a standing stall.

    Note on stall semantics: an adaptive head waits on {e all} its
    candidate channels at once and proceeds when any frees up
    (OR-waiting), so a waits-for {e cycle} is no longer a sufficient
    deadlock witness; the stall watchdog (no flit moved for
    [stall_threshold] cycles) is the ground truth and the blocked-set
    report is diagnostic. *)

open Noc_model

type workload = {
  id : int;
  flow : Ids.Flow.t;
  src : Ids.Switch.t;
  dst : Ids.Switch.t;
  length : int;  (** Flits. *)
  inject_at : int;
}

val workload_of_flows :
  Network.t -> packet_length:int -> packets_per_flow:int -> workload list
(** Burst workload straight from the network's flow endpoints (no
    static routes needed); same-switch flows are skipped. *)

type stalled = {
  cycle : int;
  in_network_flits : int;
  blocked_packets : int list;
}

type outcome =
  | Completed of Stats.t
  | Stalled of stalled  (** No flit moved for [stall_threshold] cycles. *)
  | Timed_out of Stats.t

val run :
  ?config:Engine.config ->
  ?on_event:(Trace.event -> unit) ->
  Network.t ->
  Routing_function.t ->
  workload list ->
  outcome
(** Simulates the workload under the routing function.  [on_event]
    receives the same event stream as {!Engine.run}; note that
    {!Trace.check_route_order} does not apply (paths are carved at
    runtime), but ownership and balance invariants do.
    @raise Invalid_argument when the function offers a channel that
    does not exist. *)

val pp_outcome : Format.formatter -> outcome -> unit
