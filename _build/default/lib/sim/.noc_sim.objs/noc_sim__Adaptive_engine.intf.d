lib/sim/adaptive_engine.mli: Engine Format Ids Network Noc_model Routing_function Stats Trace
