lib/sim/stats.mli: Channel Format Ids Noc_model
