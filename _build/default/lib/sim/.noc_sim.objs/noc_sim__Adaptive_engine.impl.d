lib/sim/adaptive_engine.ml: Channel Engine Format Hashtbl Ids List Network Noc_model Option Queue Routing_function Stats Topology Trace Traffic
