lib/sim/engine.mli: Format Network Noc_model Packet Stats Trace
