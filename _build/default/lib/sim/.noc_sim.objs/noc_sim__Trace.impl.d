lib/sim/trace.ml: Channel Format Hashtbl List Noc_model Option
