lib/sim/traffic_gen.mli: Network Noc_model Packet
