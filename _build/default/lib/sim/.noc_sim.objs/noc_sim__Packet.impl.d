lib/sim/packet.ml: Array Channel Format Ids List Noc_model
