lib/sim/stats.ml: Channel Format Hashtbl Ids List Noc_model
