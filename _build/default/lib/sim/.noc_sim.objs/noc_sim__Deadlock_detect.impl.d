lib/sim/deadlock_detect.ml: Array Hashtbl List Noc_graph
