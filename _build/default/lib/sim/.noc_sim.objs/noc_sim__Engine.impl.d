lib/sim/engine.ml: Array Channel Deadlock_detect Format Hashtbl Ids List Network Noc_model Option Packet Queue Stats Topology Trace
