lib/sim/packet.mli: Channel Format Ids Noc_model
