lib/sim/traffic_gen.ml: Ids List Network Noc_model Packet Traffic
