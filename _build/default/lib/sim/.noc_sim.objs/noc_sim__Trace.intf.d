lib/sim/trace.mli: Channel Format Noc_model
