lib/sim/deadlock_detect.mli:
