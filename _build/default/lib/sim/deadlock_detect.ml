type edge = { waiter : int; holder : int }

(* Packet ids are sparse; compact them into dense graph vertices. *)
let find_cycle edges =
  let ids = Hashtbl.create 16 in
  let names = ref [] in
  let intern id =
    match Hashtbl.find_opt ids id with
    | Some v -> v
    | None ->
        let v = Hashtbl.length ids in
        Hashtbl.replace ids id v;
        names := id :: !names;
        v
  in
  let g = Noc_graph.Digraph.create () in
  List.iter (fun e -> Noc_graph.Digraph.add_edge g (intern e.waiter) (intern e.holder)) edges;
  match Noc_graph.Cycles.find_any g with
  | None -> None
  | Some vertices ->
      let arr = Array.of_list (List.rev !names) in
      Some (List.map (fun v -> arr.(v)) vertices)

let is_deadlocked edges = find_cycle edges <> None
