(** Behavioural check of GT isolation: simulate a guaranteed flow
    under heavy best-effort burst traffic, with and without exclusive
    channels, and compare its latency.  Isolation should make the GT
    flow (nearly) immune to the background load. *)

open Noc_model

type result = {
  gt_flow : Ids.Flow.t;
  latency_alone : float;  (** GT packets only, empty network. *)
  latency_shared : float;  (** GT + best-effort burst, no isolation. *)
  latency_isolated : float;  (** GT + burst, after {!Noc_deadlock.Isolation}. *)
  isolation_vcs : int;
}

val run :
  ?name:string -> ?n_switches:int -> ?packet_length:int -> unit -> result
(** Synthesizes the benchmark (default D36_8 at 14 switches), removes
    deadlocks, picks the longest-routed flow as the GT flow, and runs
    the three scenarios.  Deterministic. *)

val pp_result : Format.formatter -> result -> unit
