open Noc_model

type result = {
  gt_flow : Ids.Flow.t;
  latency_alone : float;
  latency_shared : float;
  latency_isolated : float;
  isolation_vcs : int;
}

(* Average latency of [flow]'s packets in a burst where every flow
   sends [packets_per_flow] packets. *)
let gt_latency net flow ~packet_length ~gt_only =
  let packets =
    Noc_sim.Traffic_gen.burst net ~packet_length ~packets_per_flow:2
  in
  let packets =
    if gt_only then
      List.filter
        (fun (p : Noc_sim.Packet.t) -> Ids.Flow.equal p.Noc_sim.Packet.flow flow)
        packets
    else packets
  in
  match Noc_sim.Engine.run net packets with
  | Noc_sim.Engine.Completed s -> (
      match Noc_sim.Stats.flow s flow with
      | Some fs when fs.Noc_sim.Stats.delivered > 0 ->
          float_of_int fs.Noc_sim.Stats.total_latency
          /. float_of_int fs.Noc_sim.Stats.delivered
      | Some _ | None -> nan)
  | Noc_sim.Engine.Deadlocked _ | Noc_sim.Engine.Timed_out _ -> nan

let run ?(name = "D36_8") ?(n_switches = 14) ?(packet_length = 8) () =
  let spec =
    match Noc_benchmarks.Registry.find name with
    | Some s -> s
    | None -> invalid_arg ("Qos_check: unknown benchmark " ^ name)
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Noc_synth.Custom.synthesize_exn traffic ~n_switches in
  ignore (Noc_deadlock.Removal.run net);
  (* The GT candidate: the longest-routed flow (most exposed to
     blocking). *)
  let gt_flow =
    let best = ref None in
    List.iter
      (fun (f, r) ->
        match !best with
        | Some (_, len) when len >= Route.length r -> ()
        | Some _ | None ->
            if r <> [] then best := Some (f, Route.length r))
      (Network.routes net);
    match !best with Some (f, _) -> f | None -> invalid_arg "Qos_check: no routes"
  in
  let latency_alone = gt_latency net gt_flow ~packet_length ~gt_only:true in
  let latency_shared = gt_latency net gt_flow ~packet_length ~gt_only:false in
  let isolated = Network.copy net in
  let ir = Noc_deadlock.Isolation.isolate isolated ~guaranteed:[ gt_flow ] in
  (match Noc_deadlock.Isolation.verify_isolation isolated ~guaranteed:[ gt_flow ] with
  | Ok () -> ()
  | Error e -> failwith ("Qos_check: isolation failed: " ^ e));
  let latency_isolated = gt_latency isolated gt_flow ~packet_length ~gt_only:false in
  {
    gt_flow;
    latency_alone;
    latency_shared;
    latency_isolated;
    isolation_vcs = ir.Noc_deadlock.Isolation.vcs_added;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>GT flow %a under best-effort burst:@,\
     alone:             %.1f cycles@,\
     shared channels:   %.1f cycles@,\
     isolated (+%d VC): %.1f cycles@]"
    Ids.Flow.pp r.gt_flow r.latency_alone r.latency_shared r.isolation_vcs
    r.latency_isolated
