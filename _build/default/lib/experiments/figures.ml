open Noc_model

type vc_row = { n_switches : int; removal_vcs : int; ordering_vcs : int }

let benchmark name =
  match Noc_benchmarks.Registry.find name with
  | Some spec -> spec
  | None -> invalid_arg ("Figures: unknown benchmark " ^ name)

let vc_sweep spec counts =
  List.map
    (fun n ->
      let p = Sweep.evaluate spec ~n_switches:n in
      {
        n_switches = n;
        removal_vcs = p.Sweep.removal.Sweep.vcs_added;
        ordering_vcs = p.Sweep.ordering_hop.Sweep.vcs_added;
      })
    counts

let fig8_counts = [ 5; 8; 11; 14; 17; 20; 23; 25 ]
let fig9_counts = [ 10; 14; 18; 22; 26; 30; 35 ]

let fig8 () = vc_sweep (benchmark "D26_media") fig8_counts
let fig9 () = vc_sweep (benchmark "D36_8") fig9_counts

type power_row = {
  benchmark : string;
  removal_power_norm : float;
  ordering_power_norm : float;
  removal_overhead_vs_none : float;
  area_saving : float;
}

let power_row (p : Sweep.point) =
  {
    benchmark = p.Sweep.benchmark;
    removal_power_norm = 1.0;
    ordering_power_norm = p.Sweep.ordering_hop.Sweep.power_mw /. p.Sweep.removal.Sweep.power_mw;
    removal_overhead_vs_none =
      (p.Sweep.removal.Sweep.power_mw -. p.Sweep.baseline.Sweep.power_mw)
      /. p.Sweep.baseline.Sweep.power_mw;
    area_saving =
      1.
      -. (p.Sweep.removal.Sweep.area_mm2 /. p.Sweep.ordering_hop.Sweep.area_mm2);
  }

let fig10 ?(n_switches = 14) () =
  List.map
    (fun spec -> power_row (Sweep.evaluate spec ~n_switches))
    Noc_benchmarks.Registry.all

type summary = {
  avg_vc_reduction : float;
  avg_area_saving : float;
  avg_overhead_area_reduction : float;
  avg_power_saving : float;
  max_removal_overhead_vs_none : float;
  points : Sweep.point list;
}

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let summary () =
  let sweep_points =
    List.map (fun n -> Sweep.evaluate (benchmark "D26_media") ~n_switches:n) fig8_counts
    @ List.map (fun n -> Sweep.evaluate (benchmark "D36_8") ~n_switches:n) fig9_counts
    @ List.map
        (fun spec -> Sweep.evaluate spec ~n_switches:14)
        Noc_benchmarks.Registry.all
  in
  (* VC reduction only defined where ordering actually pays something. *)
  let vc_reductions =
    List.filter_map
      (fun p ->
        let o = p.Sweep.ordering_hop.Sweep.vcs_added in
        if o = 0 then None
        else
          Some (1. -. (float_of_int p.Sweep.removal.Sweep.vcs_added /. float_of_int o)))
      sweep_points
  in
  let area_savings =
    List.map
      (fun p ->
        1. -. (p.Sweep.removal.Sweep.area_mm2 /. p.Sweep.ordering_hop.Sweep.area_mm2))
      sweep_points
  in
  let power_savings =
    List.map
      (fun p ->
        1. -. (p.Sweep.removal.Sweep.power_mw /. p.Sweep.ordering_hop.Sweep.power_mw))
      sweep_points
  in
  let overhead_area_reductions =
    List.filter_map
      (fun p ->
        let added_by_ordering =
          p.Sweep.ordering_hop.Sweep.area_mm2 -. p.Sweep.baseline.Sweep.area_mm2
        in
        let added_by_removal =
          p.Sweep.removal.Sweep.area_mm2 -. p.Sweep.baseline.Sweep.area_mm2
        in
        if added_by_ordering <= 0. then None
        else Some (1. -. (added_by_removal /. added_by_ordering)))
      sweep_points
  in
  let overheads =
    List.map
      (fun p ->
        (p.Sweep.removal.Sweep.power_mw -. p.Sweep.baseline.Sweep.power_mw)
        /. p.Sweep.baseline.Sweep.power_mw)
      sweep_points
  in
  {
    avg_vc_reduction = mean vc_reductions;
    avg_area_saving = mean area_savings;
    avg_overhead_area_reduction = mean overhead_area_reductions;
    avg_power_saving = mean power_savings;
    max_removal_overhead_vs_none = List.fold_left max 0. overheads;
    points = sweep_points;
  }

type ablation_row = {
  configuration : string;
  vcs_added : int;
  cycles_broken : int;
  note : string;
}

let ablation ?(benchmark = "D36_8") ?(n_switches = 20) () =
  let spec =
    match Noc_benchmarks.Registry.find benchmark with
    | Some s -> s
    | None -> invalid_arg ("Figures.ablation: unknown benchmark " ^ benchmark)
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let base = Noc_synth.Custom.synthesize_exn traffic ~n_switches in
  let removal_config name ~heuristic ~directions =
    let net = Network.copy base in
    let r = Noc_deadlock.Removal.run ~heuristic ~directions net in
    {
      configuration = name;
      vcs_added = r.Noc_deadlock.Removal.vcs_added;
      cycles_broken = r.Noc_deadlock.Removal.iterations;
      note = "";
    }
  in
  let ordering_config name strategy =
    let net = Network.copy base in
    let r = Noc_deadlock.Resource_ordering.apply ~strategy net in
    {
      configuration = name;
      vcs_added = r.Noc_deadlock.Resource_ordering.vcs_added;
      cycles_broken = 0;
      note = Printf.sprintf "%d classes" r.Noc_deadlock.Resource_ordering.classes_used;
    }
  in
  let updown_config name net =
    match Noc_deadlock.Updown.apply net with
    | Ok r ->
        {
          configuration = name;
          vcs_added = 0;
          cycles_broken = 0;
          note =
            Printf.sprintf "hops %d -> %d"
              r.Noc_deadlock.Updown.total_hops_before
              r.Noc_deadlock.Updown.total_hops_after;
        }
    | Error _ ->
        {
          configuration = name;
          vcs_added = 0;
          cycles_broken = 0;
          note = "INFEASIBLE (unidirectional links)";
        }
  in
  let bidir =
    let options =
      { Noc_synth.Custom.default_options with Noc_synth.Custom.force_bidirectional = true }
    in
    Noc_synth.Custom.synthesize_exn ~options traffic ~n_switches
  in
  let extra_links =
    Topology.n_links (Network.topology bidir)
    - Topology.n_links (Network.topology base)
  in
  let open Noc_deadlock in
  [
    removal_config "removal: smallest cycle, fwd+bwd"
      ~heuristic:Removal.Smallest_cycle_first
      ~directions:[ Cost_table.Forward; Cost_table.Backward ];
    removal_config "removal: smallest cycle, fwd only"
      ~heuristic:Removal.Smallest_cycle_first ~directions:[ Cost_table.Forward ];
    removal_config "removal: smallest cycle, bwd only"
      ~heuristic:Removal.Smallest_cycle_first ~directions:[ Cost_table.Backward ];
    removal_config "removal: any cycle, fwd+bwd" ~heuristic:Removal.Any_cycle_first
      ~directions:[ Cost_table.Forward; Cost_table.Backward ];
    (let o = Optimal.search ~node_budget:30_000 base in
     {
       configuration = "exact optimum (branch-and-bound oracle)";
       vcs_added = o.Optimal.vcs_added;
       cycles_broken = 0;
       note =
         Printf.sprintf "%s, %d nodes"
           (if o.Optimal.proven_optimal then "proven minimal" else "budget-limited")
           o.Optimal.nodes_explored;
     });
    (let net = Network.copy base in
     let rr = Reroute.run net in
     let cr = Removal.run net in
     {
       configuration = "reroute-first, then removal";
       vcs_added = cr.Removal.vcs_added;
       cycles_broken = rr.Reroute.cycles_broken + cr.Removal.iterations;
       note =
         Printf.sprintf "%d cycle(s) rerouted away, +%d hops"
           rr.Reroute.cycles_broken rr.Reroute.extra_hops;
     });
    ordering_config "resource ordering: greedy" Resource_ordering.Greedy_ordered;
    ordering_config "resource ordering: hop-index (paper baseline)"
      Resource_ordering.Hop_index;
    updown_config "up*/down* routing (as synthesized)" (Network.copy base);
    (let row = updown_config "up*/down* routing (bidirectionalized)" bidir in
     {
       row with
       note =
         (if row.note = "INFEASIBLE (unidirectional links)" then row.note
          else Printf.sprintf "+%d links, %s" extra_links row.note);
     });
  ]

(* Rendering -------------------------------------------------------- *)

let pp_vc_rows ~title ppf rows =
  let table =
    Series.create ~header:[ "switch count"; "deadlock removal alg."; "resource ordering" ]
  in
  List.iter
    (fun r ->
      Series.add_row table
        [ string_of_int r.n_switches; string_of_int r.removal_vcs;
          string_of_int r.ordering_vcs ])
    rows;
  Format.fprintf ppf "@[<v>%s (number of extra VCs)@,%a@]" title Series.pp table

let pp_power_rows ppf rows =
  let table =
    Series.create
      ~header:
        [ "benchmark"; "removal (norm)"; "ordering (norm)"; "removal vs none";
          "area saving" ]
  in
  List.iter
    (fun r ->
      Series.add_row table
        [
          r.benchmark;
          Printf.sprintf "%.2f" r.removal_power_norm;
          Printf.sprintf "%.2f" r.ordering_power_norm;
          Printf.sprintf "%+.1f%%" (100. *. r.removal_overhead_vs_none);
          Printf.sprintf "%.1f%%" (100. *. r.area_saving);
        ])
    rows;
  Format.fprintf ppf
    "@[<v>Figure 10: normalised NoC power, resource ordering vs deadlock \
     removal@,%a@]"
    Series.pp table

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>Aggregate claims (paper values in brackets):@,\
     average VC reduction:            %5.1f%%  [88%%]@,\
     average area saving (total NoC): %5.1f%%  [66%%, see EXPERIMENTS.md]@,\
     average overhead-area reduction: %5.1f%%  [66%%]@,\
     average power saving:            %5.1f%%  [8.6%%]@,\
     worst removal power overhead:    %5.1f%%  [< 5%%]@,\
     over %d evaluation points@]"
    (100. *. s.avg_vc_reduction) (100. *. s.avg_area_saving)
    (100. *. s.avg_overhead_area_reduction)
    (100. *. s.avg_power_saving)
    (100. *. s.max_removal_overhead_vs_none)
    (List.length s.points)

let pp_ablation ppf rows =
  let table =
    Series.create ~header:[ "configuration"; "VCs added"; "cycles broken"; "notes" ]
  in
  List.iter
    (fun r ->
      Series.add_row table
        [
          r.configuration; string_of_int r.vcs_added;
          string_of_int r.cycles_broken; r.note;
        ])
    rows;
  Format.fprintf ppf "@[<v>Ablation (D36_8-class design):@,%a@]" Series.pp table
