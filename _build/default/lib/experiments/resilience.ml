open Noc_model

type failure_outcome = {
  failed_link : Ids.Link.t;
  routable : bool;
  deadlock_free : bool;
  vcs_added : int;
}

type t = {
  outcomes : failure_outcome list;
  survivable_failures : int;
  total_links : int;
}

let drop_link net victim =
  let topo = Network.topology net in
  ignore (Topology.link topo victim);
  let topo' = Topology.create ~n_switches:(Topology.n_switches topo) in
  List.iter
    (fun (l : Topology.link) ->
      if not (Ids.Link.equal l.Topology.id victim) then begin
        let id = Topology.add_link topo' ~src:l.Topology.src ~dst:l.Topology.dst in
        for _ = 2 to Topology.vc_count topo l.Topology.id do
          ignore (Topology.add_vc topo' id)
        done
      end)
    (Topology.links topo);
  Network.make ~topology:topo' ~traffic:(Network.traffic net)
    ~mapping:(Network.switch_of_core net)

let fail_one net victim =
  let degraded = drop_link net victim in
  match Routing.route_all_load_aware degraded with
  | Error _ ->
      { failed_link = victim; routable = false; deadlock_free = false; vcs_added = 0 }
  | Ok () ->
      let report = Noc_deadlock.Removal.run degraded in
      {
        failed_link = victim;
        routable = true;
        deadlock_free = report.Noc_deadlock.Removal.deadlock_free;
        vcs_added = report.Noc_deadlock.Removal.vcs_added;
      }

let sweep net =
  let links = Topology.links (Network.topology net) in
  let outcomes = List.map (fun (l : Topology.link) -> fail_one net l.Topology.id) links in
  {
    outcomes;
    survivable_failures =
      List.length (List.filter (fun o -> o.routable && o.deadlock_free) outcomes);
    total_links = List.length links;
  }

let pp ppf t =
  Format.fprintf ppf "single-link failures: %d/%d survivable"
    t.survivable_failures t.total_links;
  List.iter
    (fun o ->
      if not (o.routable && o.deadlock_free) then
        Format.fprintf ppf "@.  %a: %s" Ids.Link.pp o.failed_link
          (if not o.routable then "UNROUTABLE" else "NOT DEADLOCK-FREE"))
    t.outcomes
