open Noc_model

type t = {
  net : Network.t;
  links : Ids.Link.t array;
  flows : Ids.Flow.t array;
}

let sw = Ids.Switch.of_int
let core = Ids.Core.of_int

let build () =
  let topo = Topology.create ~n_switches:4 in
  let l1 = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let l2 = Topology.add_link topo ~src:(sw 1) ~dst:(sw 2) in
  let l3 = Topology.add_link topo ~src:(sw 2) ~dst:(sw 3) in
  let l4 = Topology.add_link topo ~src:(sw 3) ~dst:(sw 0) in
  let traffic = Traffic.create ~n_cores:4 in
  let f1 = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 3) ~bandwidth:100. in
  let f2 = Traffic.add_flow traffic ~src:(core 2) ~dst:(core 0) ~bandwidth:100. in
  let f3 = Traffic.add_flow traffic ~src:(core 3) ~dst:(core 1) ~bandwidth:100. in
  let f4 = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 2) ~bandwidth:100. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  let ch l = Channel.make l 0 in
  Network.set_route net f1 [ ch l1; ch l2; ch l3 ];
  Network.set_route net f2 [ ch l3; ch l4 ];
  Network.set_route net f3 [ ch l4; ch l1 ];
  Network.set_route net f4 [ ch l1; ch l2 ];
  { net; links = [| l1; l2; l3; l4 |]; flows = [| f1; f2; f3; f4 |] }

let cycle t = Array.to_list (Array.map (fun l -> Channel.make l 0) t.links)

let narrate ppf =
  let t = build () in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "== Paper running example (Figures 1-7, Table 1) ==@,@,";
  Format.fprintf ppf "Topology (Figure 1) and routes:@,%a@,@," Network.pp t.net;
  let cdg = Cdg.build t.net in
  Format.fprintf ppf "CDG (Figure 2):@,%a@,@," Cdg.pp cdg;
  let cyc = cycle t in
  let fwd = Noc_deadlock.Cost_table.forward t.net cyc in
  let bwd = Noc_deadlock.Cost_table.backward t.net cyc in
  Format.fprintf ppf "Cost table, forward direction (Table 1):@,%a@,@,"
    Noc_deadlock.Cost_table.pp fwd;
  Format.fprintf ppf "Cost table, backward direction:@,%a@,@,"
    Noc_deadlock.Cost_table.pp bwd;
  Format.fprintf ppf "f_cost=%d at D%d, b_cost=%d at D%d -> break %s@,@,"
    fwd.Noc_deadlock.Cost_table.best_cost
    (fwd.Noc_deadlock.Cost_table.best_pos + 1)
    bwd.Noc_deadlock.Cost_table.best_cost
    (bwd.Noc_deadlock.Cost_table.best_pos + 1)
    (if
       fwd.Noc_deadlock.Cost_table.best_cost
       <= bwd.Noc_deadlock.Cost_table.best_cost
     then "forward"
     else "backward");
  let report = Noc_deadlock.Removal.run t.net in
  Format.fprintf ppf "%a@,@," Noc_deadlock.Removal.pp_report report;
  let cdg' = Cdg.build t.net in
  Format.fprintf ppf "Modified CDG (Figure 3) — acyclic=%b:@,%a@,@,"
    (Cdg.is_deadlock_free cdg') Cdg.pp cdg';
  Format.fprintf ppf "Modified topology (Figure 4):@,%a@,"
    Topology.pp (Network.topology t.net);
  Format.fprintf ppf "@]"
