(** Regeneration of every table and figure of the paper's evaluation
    (Section 5), plus the aggregate claims.  Each function returns the
    raw data and can render itself; `bench/main.exe` is the CLI front
    end.

    Baseline note: the figures' "Resource ordering" series uses the
    {!Noc_deadlock.Resource_ordering.Hop_index} strategy, which matches
    the paper's description ("the number of classes needed for a flow
    depends on the length of the route"); the cheaper greedy variant
    appears in the ablation. *)

type vc_row = { n_switches : int; removal_vcs : int; ordering_vcs : int }

val fig8 : unit -> vc_row list
(** Figure 8: extra VCs vs switch count on D26_media (5..25). *)

val fig9 : unit -> vc_row list
(** Figure 9: extra VCs vs switch count on D36_8 (10..35). *)

type power_row = {
  benchmark : string;
  removal_power_norm : float;  (** Always 1.0 — the reference. *)
  ordering_power_norm : float;  (** Resource ordering / removal. *)
  removal_overhead_vs_none : float;
      (** (removal - baseline) / baseline; the paper's "< 5 %". *)
  area_saving : float;  (** 1 - removal area / ordering area. *)
}

val fig10 : ?n_switches:int -> unit -> power_row list
(** Figure 10: normalized power at 14 switches across all six
    benchmarks. *)

type summary = {
  avg_vc_reduction : float;  (** Paper: ~88 %. *)
  avg_area_saving : float;
      (** Total-NoC-area reading of the paper's ~66 % claim. *)
  avg_overhead_area_reduction : float;
      (** Overhead-area reading: reduction of the area {e added to
          remove deadlocks} relative to resource ordering — the
          interpretation consistent with the paper's "< 5 % overhead"
          framing. *)
  avg_power_saving : float;  (** Paper: ~8.6 %. *)
  max_removal_overhead_vs_none : float;  (** Paper: < 5 %. *)
  points : Sweep.point list;
}

val summary : unit -> summary
(** Aggregates over the union of the Fig. 8/9 sweeps and the Fig. 10
    benchmark set. *)

type ablation_row = {
  configuration : string;
  vcs_added : int;
  cycles_broken : int;
  note : string;  (** Extra observations (hop overhead, infeasibility). *)
}

val ablation : ?benchmark:string -> ?n_switches:int -> unit -> ablation_row list
(** Design-choice ablation on a cyclic design (default D36_8 at 20
    switches): cycle-selection heuristic, break-direction set, the two
    resource-ordering strategies, and up*/down* turn-prohibition
    routing — both on the design as synthesized (where it is typically
    infeasible, the paper's argument against refs [17]/[18]) and on a
    bidirectionalized variant (where it works but pays links and
    hops). *)

val pp_vc_rows : title:string -> Format.formatter -> vc_row list -> unit
val pp_power_rows : Format.formatter -> power_row list -> unit
val pp_summary : Format.formatter -> summary -> unit
val pp_ablation : Format.formatter -> ablation_row list -> unit
