(** Load–latency curves on the wormhole simulator (extension X4).

    For a deadlock-free design, sweep the injection interval of a
    periodic workload and record the average packet latency: the
    classic NoC saturation curve.  Used to compare a removal-repaired
    design against an ordering-repaired one under identical offered
    load — both are safe, but they carry different buffer structures. *)

open Noc_model

type row = {
  interval : int;  (** Cycles between successive packets per flow. *)
  offered_load : float;  (** Flits per cycle per flow. *)
  avg_latency : float;
  max_latency : int;
  delivered : int;
  completed : bool;  (** [false] on timeout (past saturation). *)
}

val sweep :
  ?packet_length:int ->
  ?packets_per_flow:int ->
  ?intervals:int list ->
  Network.t ->
  row list
(** Defaults: 4-flit packets, 8 packets per flow, intervals
    [[128; 64; 32; 16; 8]].  The network is not mutated.
    @raise Invalid_argument when the design's CDG is cyclic (the curve
    is meaningless on a design that can deadlock). *)

val pp_rows : title:string -> Format.formatter -> row list -> unit
