(** Single-link-failure resilience: for every link of a design, fail
    it, re-route all traffic on the survivors, re-run deadlock
    removal, and check the result.  Quantifies what
    {!Noc_synth.Harden} buys: a hardened design should survive every
    single failure with routes intact and a deadlock-free CDG. *)

open Noc_model

type failure_outcome = {
  failed_link : Ids.Link.t;
  routable : bool;  (** All flows re-routed on the survivors. *)
  deadlock_free : bool;  (** After re-running removal. *)
  vcs_added : int;  (** Removal cost on the degraded topology. *)
}

type t = {
  outcomes : failure_outcome list;  (** One per link, id order. *)
  survivable_failures : int;  (** Routable and deadlock-free. *)
  total_links : int;
}

val sweep : Network.t -> t
(** Fails each link in turn (on an independent copy each time; the
    input is never mutated). *)

val drop_link : Network.t -> Ids.Link.t -> Network.t
(** A fresh design without the given link (and with no routes
    installed): the degraded network a failure leaves behind.  VC
    counts of surviving links are preserved.
    @raise Invalid_argument on an unknown link. *)

val pp : Format.formatter -> t -> unit
