(** The paper's running example (Figures 1–7, Table 1): a 4-switch
    ring carrying four flows whose CDG is the cycle
    L1 -> L2 -> L3 -> L4 -> L1. *)

open Noc_model

type t = {
  net : Network.t;
  links : Ids.Link.t array;  (** [L1 L2 L3 L4] of the paper (0-based ids). *)
  flows : Ids.Flow.t array;  (** [F1 F2 F3 F4]. *)
}

val build : unit -> t
(** Fresh instance; routes R1={L1,L2,L3}, R2={L3,L4}, R3={L4,L1},
    R4={L1,L2} as in the paper. *)

val cycle : t -> Channel.t list
(** The CDG cycle [L1; L2; L3; L4] (all on VC 0). *)

val narrate : Format.formatter -> unit
(** Prints the worked example end to end: the CDG, Table 1 in both
    directions, the chosen break, and the resulting acyclic CDG —
    regenerating Figures 2, 3 and Table 1. *)
