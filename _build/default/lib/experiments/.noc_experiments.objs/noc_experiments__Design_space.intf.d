lib/experiments/design_space.mli: Format Noc_benchmarks
