lib/experiments/sim_check.ml: Format Noc_benchmarks Noc_deadlock Noc_sim Noc_synth Printf Ring_example
