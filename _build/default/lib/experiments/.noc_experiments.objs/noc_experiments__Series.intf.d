lib/experiments/series.mli: Format
