lib/experiments/sweep.mli: Format Noc_benchmarks
