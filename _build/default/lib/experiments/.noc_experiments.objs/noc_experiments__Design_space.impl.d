lib/experiments/design_space.ml: List Noc_benchmarks Noc_deadlock Noc_model Noc_power Noc_synth Printf Series
