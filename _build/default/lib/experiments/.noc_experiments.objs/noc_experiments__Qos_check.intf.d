lib/experiments/qos_check.mli: Format Ids Noc_model
