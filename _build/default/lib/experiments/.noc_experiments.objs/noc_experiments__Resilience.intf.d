lib/experiments/resilience.mli: Format Ids Network Noc_model
