lib/experiments/load_latency.mli: Format Network Noc_model
