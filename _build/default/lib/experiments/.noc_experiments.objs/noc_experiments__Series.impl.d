lib/experiments/series.ml: Format List String
