lib/experiments/ring_example.mli: Channel Format Ids Network Noc_model
