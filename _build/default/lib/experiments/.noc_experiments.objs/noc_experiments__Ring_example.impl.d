lib/experiments/ring_example.ml: Array Cdg Channel Format Ids Network Noc_deadlock Noc_model Topology Traffic
