lib/experiments/figures.ml: Cost_table Format List Network Noc_benchmarks Noc_deadlock Noc_model Noc_synth Optimal Printf Removal Reroute Resource_ordering Series Sweep Topology
