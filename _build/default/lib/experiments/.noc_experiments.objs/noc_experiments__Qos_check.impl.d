lib/experiments/qos_check.ml: Format Ids List Network Noc_benchmarks Noc_deadlock Noc_model Noc_sim Noc_synth Route
