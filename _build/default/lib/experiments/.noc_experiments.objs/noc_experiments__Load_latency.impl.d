lib/experiments/load_latency.ml: Format List Noc_deadlock Noc_sim Printf Series
