lib/experiments/resilience.ml: Format Ids List Network Noc_deadlock Noc_model Routing Topology
