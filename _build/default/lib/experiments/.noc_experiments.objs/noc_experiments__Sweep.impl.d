lib/experiments/sweep.ml: Format Network Noc_benchmarks Noc_deadlock Noc_model Noc_power Noc_synth Printf Topology Traffic
