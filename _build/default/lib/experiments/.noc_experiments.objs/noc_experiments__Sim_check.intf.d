lib/experiments/sim_check.mli: Format Network Noc_model Noc_sim
