(** Tiny fixed-width table rendering for the experiment harness: every
    figure is regenerated as aligned text rows, one series per column,
    so outputs stay diff-stable across runs. *)

type t

val create : header:string list -> t
(** A table with the given column titles. *)

val add_row : t -> string list -> unit
(** Appends a row.
    @raise Invalid_argument when the arity differs from the header. *)

val pp : Format.formatter -> t -> unit
(** Renders with every column padded to its widest cell. *)
