type row = {
  interval : int;
  offered_load : float;
  avg_latency : float;
  max_latency : int;
  delivered : int;
  completed : bool;
}

let sweep ?(packet_length = 4) ?(packets_per_flow = 8)
    ?(intervals = [ 128; 64; 32; 16; 8 ]) net =
  if not (Noc_deadlock.Removal.is_deadlock_free net) then
    invalid_arg "Load_latency.sweep: design still has CDG cycles";
  let measure interval =
    let packets =
      Noc_sim.Traffic_gen.periodic net ~packet_length ~packets_per_flow ~interval
    in
    let offered_load = float_of_int packet_length /. float_of_int interval in
    match Noc_sim.Engine.run net packets with
    | Noc_sim.Engine.Completed s ->
        {
          interval;
          offered_load;
          avg_latency = Noc_sim.Stats.avg_latency s;
          max_latency = Noc_sim.Stats.max_latency s;
          delivered = s.Noc_sim.Stats.delivered;
          completed = true;
        }
    | Noc_sim.Engine.Timed_out s ->
        {
          interval;
          offered_load;
          avg_latency = Noc_sim.Stats.avg_latency s;
          max_latency = Noc_sim.Stats.max_latency s;
          delivered = s.Noc_sim.Stats.delivered;
          completed = false;
        }
    | Noc_sim.Engine.Deadlocked d ->
        (* Unreachable for acyclic designs; fail loudly if the
           simulator ever disagrees with the static analysis. *)
        failwith
          (Printf.sprintf
             "Load_latency.sweep: deadlock at cycle %d on an acyclic design"
             d.Noc_sim.Engine.cycle)
  in
  List.map measure (List.sort (fun a b -> compare b a) intervals)

let pp_rows ~title ppf rows =
  let table =
    Series.create
      ~header:[ "interval"; "load (flit/cyc/flow)"; "avg latency"; "max"; "done" ]
  in
  List.iter
    (fun r ->
      Series.add_row table
        [
          string_of_int r.interval;
          Printf.sprintf "%.3f" r.offered_load;
          Printf.sprintf "%.1f" r.avg_latency;
          string_of_int r.max_latency;
          (if r.completed then "yes" else "TIMEOUT");
        ])
    rows;
  Format.fprintf ppf "@[<v>%s@,%a@]" title Series.pp table
