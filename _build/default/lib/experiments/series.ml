type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Series.add_row: arity mismatch";
  t.rows <- row :: t.rows

let pp ppf t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let n = List.length t.header in
  let width col =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row col))) 0 all
  in
  let widths = List.init n width in
  let pp_row ppf row =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i = 0 then Format.fprintf ppf "%-*s" w cell
        else Format.fprintf ppf "  %*s" w cell)
      row
  in
  Format.fprintf ppf "@[<v>%a" pp_row t.header;
  List.iter (fun row -> Format.fprintf ppf "@,%a" pp_row row) rows;
  Format.fprintf ppf "@]"
