(** Textual design format: save and load a complete NoC design
    (topology, VC counts, cores, mapping, flows, routes).

    The format is line-oriented and versioned:

    {v
    noc-design 1
    switches 4
    cores 4
    link <id> <src-switch> <dst-switch> <vc-count>
    core <id> <switch>
    flow <id> <src-core> <dst-core> <bandwidth>
    route <flow-id> <link>:<vc> <link>:<vc> ...
    v}

    Comment lines start with [#]; blank lines are ignored.  [link],
    [core] and [flow] ids must be dense and in order (they are assigned
    by the builders); a [route] line may be omitted for an unrouted
    flow. *)

val save : Network.t -> string
(** Serialize to the textual format. *)

val save_file : string -> Network.t -> unit
(** [save_file path net] writes {!save} to [path]. *)

val load : string -> (Network.t, string) result
(** Parse a design.  Errors carry a line number and a reason. *)

val load_file : string -> (Network.t, string) result
(** Read and {!load} a file; I/O failures become [Error]. *)
