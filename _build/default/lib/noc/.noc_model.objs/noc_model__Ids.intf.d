lib/noc/ids.mli: Format
