lib/noc/routing_function.mli: Channel Ids Network Topology
