lib/noc/tables.ml: Channel Format Hashtbl Ids List Network Option Topology
