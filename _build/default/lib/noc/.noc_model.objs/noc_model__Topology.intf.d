lib/noc/topology.mli: Channel Format Ids Noc_graph
