lib/noc/route.mli: Channel Format Ids Topology
