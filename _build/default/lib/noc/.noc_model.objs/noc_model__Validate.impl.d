lib/noc/validate.ml: Channel Format Ids List Network Route Topology Traffic
