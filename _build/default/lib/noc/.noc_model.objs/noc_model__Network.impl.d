lib/noc/network.ml: Array Channel Format Ids List Printf Route Topology Traffic
