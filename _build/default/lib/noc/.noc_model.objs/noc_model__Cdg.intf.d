lib/noc/cdg.mli: Channel Format Ids Network Noc_graph
