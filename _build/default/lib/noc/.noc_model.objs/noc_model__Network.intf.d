lib/noc/network.mli: Channel Format Ids Route Topology Traffic
