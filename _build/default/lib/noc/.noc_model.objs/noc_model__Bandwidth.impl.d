lib/noc/bandwidth.ml: Channel Format Ids List Network Topology Traffic
