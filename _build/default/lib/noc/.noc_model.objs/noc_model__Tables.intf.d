lib/noc/tables.mli: Channel Format Ids Network
