lib/noc/ids.ml: Format Int
