lib/noc/validate.mli: Format Ids Network
