lib/noc/dot_export.ml: Buffer Cdg Channel Format Ids List Network Noc_graph Printf Topology
