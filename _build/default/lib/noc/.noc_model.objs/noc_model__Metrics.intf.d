lib/noc/metrics.mli: Format Ids Network
