lib/noc/routing.mli: Ids Network Route Topology
