lib/noc/cdg.ml: Array Channel Format Hashtbl Ids List Network Noc_graph Option Printf Route Topology
