lib/noc/channel.mli: Format Hashtbl Ids Map Set
