lib/noc/route.ml: Channel Format Ids List Topology
