lib/noc/io.mli: Network
