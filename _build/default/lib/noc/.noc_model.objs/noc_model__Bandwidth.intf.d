lib/noc/bandwidth.mli: Format Ids Network
