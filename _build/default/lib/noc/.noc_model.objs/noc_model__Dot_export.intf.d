lib/noc/dot_export.mli: Ids Network
