lib/noc/routing_function.ml: Array Channel Format Hashtbl Ids List Network Noc_graph Option Queue Topology Traffic
