lib/noc/metrics.ml: Array Format Hashtbl Ids List Network Noc_graph Option Route Topology Traffic
