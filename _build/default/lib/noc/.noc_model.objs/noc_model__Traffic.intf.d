lib/noc/traffic.mli: Format Ids
