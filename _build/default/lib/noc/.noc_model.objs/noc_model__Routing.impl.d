lib/noc/routing.ml: Channel Format Hashtbl Ids List Network Noc_graph Option Topology Traffic
