lib/noc/topology.ml: Channel Format Hashtbl Ids List Noc_graph Option Printf
