lib/noc/traffic.ml: Format Hashtbl Ids List Printf
