lib/noc/io.ml: Array Buffer Channel Format Fun Ids In_channel List Network Printf Result String Topology Traffic Validate
