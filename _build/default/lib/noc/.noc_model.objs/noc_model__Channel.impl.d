lib/noc/channel.ml: Format Hashtbl Ids Int Map Set
