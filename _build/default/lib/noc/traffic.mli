(** The communication graph G(V, E): cores and directed communication
    flows between them (Definition 2 of the paper).  Each flow carries
    a bandwidth demand in MB/s, used by the synthesizer for clustering
    and by the power model for load estimation. *)

type t

type flow = {
  id : Ids.Flow.t;
  src : Ids.Core.t;
  dst : Ids.Core.t;
  bandwidth : float;
}

val create : n_cores:int -> t
(** @raise Invalid_argument when [n_cores <= 0]. *)

val n_cores : t -> int
val n_flows : t -> int

val add_flow : t -> src:Ids.Core.t -> dst:Ids.Core.t -> bandwidth:float -> Ids.Flow.t
(** Adds a directed flow.  Self-flows are rejected; duplicate pairs
    are permitted (they model independent traffic classes).
    @raise Invalid_argument on a self-flow, an unknown core, or a
    non-positive bandwidth. *)

val flow : t -> Ids.Flow.t -> flow
(** @raise Invalid_argument on an unknown flow id. *)

val flows : t -> flow list
(** All flows in id order. *)

val flows_from : t -> Ids.Core.t -> flow list
val flows_to : t -> Ids.Core.t -> flow list

val total_bandwidth : t -> float

val demand_between : t -> Ids.Core.t -> Ids.Core.t -> float
(** Sum of bandwidths of flows from the first core to the second. *)

val pp : Format.formatter -> t -> unit
