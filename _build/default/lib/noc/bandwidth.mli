(** Link bandwidth feasibility: are the routed flow demands actually
    servable by the links?  Deadlock freedom is necessary but not
    sufficient for a working design; an oversubscribed link starves
    flows no matter how the VCs are arranged.  The synthesizer and the
    CLI use this as a design sanity gate. *)

type link_usage = {
  link : Ids.Link.t;
  load_mbps : float;
  utilization : float;  (** [load / capacity]. *)
  flows : Ids.Flow.t list;  (** Flows crossing the link, id order. *)
}

type t = {
  capacity_mbps : float;
  usages : link_usage list;  (** Every link, id order. *)
  feasible : bool;  (** No link above 100 % utilization. *)
  worst : link_usage option;  (** Highest-utilization loaded link. *)
}

val analyze : capacity_mbps:float -> Network.t -> t
(** @raise Invalid_argument when [capacity_mbps <= 0]. *)

val oversubscribed : t -> link_usage list
(** Links above 100 % utilization, worst first. *)

val pp : Format.formatter -> t -> unit
(** Summary plus the oversubscribed links, if any. *)
