type t = {
  topology : Topology.t;
  traffic : Traffic.t;
  mapping : Ids.Switch.t array;
  routes : Route.t array;
}

let make ~topology ~traffic ~mapping =
  let n_cores = Traffic.n_cores traffic in
  let sample i =
    let s = mapping (Ids.Core.of_int i) in
    if Ids.Switch.to_int s >= Topology.n_switches topology then
      invalid_arg
        (Printf.sprintf "Network.make: core %d mapped to unknown switch %d" i
           (Ids.Switch.to_int s));
    s
  in
  {
    topology;
    traffic;
    mapping = Array.init n_cores sample;
    routes = Array.make (Traffic.n_flows traffic) [];
  }

let topology t = t.topology
let traffic t = t.traffic
let switch_of_core t c = t.mapping.(Ids.Core.to_int c)
let set_route t f r = t.routes.(Ids.Flow.to_int f) <- r
let route t f = t.routes.(Ids.Flow.to_int f)

let routes t =
  List.map (fun f -> (f.Traffic.id, route t f.Traffic.id)) (Traffic.flows t.traffic)

let endpoints t f =
  let fl = Traffic.flow t.traffic f in
  (switch_of_core t fl.Traffic.src, switch_of_core t fl.Traffic.dst)

let copy t =
  {
    topology = Topology.copy t.topology;
    traffic = t.traffic;
    mapping = Array.copy t.mapping;
    routes = Array.copy t.routes;
  }

let channel_load t c =
  let add acc f =
    if Route.uses_channel (route t f.Traffic.id) c then acc +. f.Traffic.bandwidth
    else acc
  in
  List.fold_left add 0. (Traffic.flows t.traffic)

let link_load t l =
  let add acc f =
    let uses =
      List.exists (fun c -> Ids.Link.equal (Channel.link c) l) (route t f.Traffic.id)
    in
    if uses then acc +. f.Traffic.bandwidth else acc
  in
  List.fold_left add 0. (Traffic.flows t.traffic)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@,routes:" Topology.pp t.topology Traffic.pp
    t.traffic;
  List.iter
    (fun (f, r) -> Format.fprintf ppf "@,%a: %a" Ids.Flow.pp f Route.pp r)
    (routes t);
  Format.fprintf ppf "@]"
