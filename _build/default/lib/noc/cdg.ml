module Digraph = Noc_graph.Digraph

type t = {
  graph : Digraph.t;
  channel_of_vertex : Channel.t array;
  vertex_of_channel : int Channel.Table.t;
  dep_flows : (int * int, Ids.Flow.t list) Hashtbl.t;
}

let build net =
  let topo = Network.topology net in
  let channels = Array.of_list (Topology.channels topo) in
  let n = Array.length channels in
  let vertex_of_channel = Channel.Table.create (2 * n) in
  Array.iteri (fun i c -> Channel.Table.replace vertex_of_channel c i) channels;
  let graph = Digraph.create ~initial_capacity:(max 1 n) () in
  if n > 0 then Digraph.ensure_vertex graph (n - 1);
  let dep_flows = Hashtbl.create (4 * n) in
  let add_route (flow_id, route) =
    let dep (a, b) =
      let u = Channel.Table.find vertex_of_channel a in
      let v = Channel.Table.find vertex_of_channel b in
      Digraph.add_edge graph u v;
      let old = Option.value ~default:[] (Hashtbl.find_opt dep_flows (u, v)) in
      Hashtbl.replace dep_flows (u, v) (flow_id :: old)
    in
    List.iter dep (Route.consecutive_pairs route)
  in
  List.iter add_route (Network.routes net);
  { graph; channel_of_vertex = channels; vertex_of_channel; dep_flows }

let graph t = t.graph
let n_channels t = Array.length t.channel_of_vertex

let channel_of_vertex t v =
  if v < 0 || v >= Array.length t.channel_of_vertex then
    invalid_arg (Printf.sprintf "Cdg.channel_of_vertex: vertex %d out of range" v);
  t.channel_of_vertex.(v)

let vertex_of_channel t c = Channel.Table.find t.vertex_of_channel c

let flows_on_dependency t ~src ~dst =
  match
    ( Channel.Table.find_opt t.vertex_of_channel src,
      Channel.Table.find_opt t.vertex_of_channel dst )
  with
  | Some u, Some v ->
      List.sort_uniq Ids.Flow.compare
        (Option.value ~default:[] (Hashtbl.find_opt t.dep_flows (u, v)))
  | None, _ | _, None -> []

let is_deadlock_free t = not (Noc_graph.Cycles.has_cycle t.graph)

let smallest_cycle t =
  Option.map
    (List.map (channel_of_vertex t))
    (Noc_graph.Cycles.shortest t.graph)

let cycles ?max_cycles t =
  List.map
    (List.map (channel_of_vertex t))
    (Noc_graph.Cycles.enumerate ?max_cycles t.graph)

let pp ppf t =
  Format.fprintf ppf "@[<v>CDG: %d channels, %d dependencies"
    (n_channels t) (Digraph.n_edges t.graph);
  Digraph.iter_edges
    (fun u v ->
      Format.fprintf ppf "@,%a -> %a" Channel.pp (channel_of_vertex t u) Channel.pp
        (channel_of_vertex t v))
    t.graph;
  Format.fprintf ppf "@]"
