let save net =
  let b = Buffer.create 4096 in
  let topo = Network.topology net in
  let traffic = Network.traffic net in
  Buffer.add_string b "noc-design 1\n";
  Buffer.add_string b
    (Printf.sprintf "# %d switches, %d links, %d VCs, %d flows\n"
       (Topology.n_switches topo) (Topology.n_links topo)
       (Topology.total_vcs topo) (Traffic.n_flows traffic));
  Buffer.add_string b (Printf.sprintf "switches %d\n" (Topology.n_switches topo));
  Buffer.add_string b (Printf.sprintf "cores %d\n" (Traffic.n_cores traffic));
  List.iter
    (fun (l : Topology.link) ->
      Buffer.add_string b
        (Printf.sprintf "link %d %d %d %d\n"
           (Ids.Link.to_int l.Topology.id)
           (Ids.Switch.to_int l.Topology.src)
           (Ids.Switch.to_int l.Topology.dst)
           (Topology.vc_count topo l.Topology.id)))
    (Topology.links topo);
  for c = 0 to Traffic.n_cores traffic - 1 do
    Buffer.add_string b
      (Printf.sprintf "core %d %d\n" c
         (Ids.Switch.to_int (Network.switch_of_core net (Ids.Core.of_int c))))
  done;
  List.iter
    (fun (f : Traffic.flow) ->
      Buffer.add_string b
        (Printf.sprintf "flow %d %d %d %.6g\n"
           (Ids.Flow.to_int f.Traffic.id)
           (Ids.Core.to_int f.Traffic.src)
           (Ids.Core.to_int f.Traffic.dst)
           f.Traffic.bandwidth))
    (Traffic.flows traffic);
  List.iter
    (fun (flow, route) ->
      if route <> [] then begin
        Buffer.add_string b (Printf.sprintf "route %d" (Ids.Flow.to_int flow));
        List.iter
          (fun c ->
            Buffer.add_string b
              (Printf.sprintf " %d:%d"
                 (Ids.Link.to_int (Channel.link c))
                 (Channel.vc c)))
          route;
        Buffer.add_char b '\n'
      end)
    (Network.routes net);
  Buffer.contents b

let save_file path net =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (save net))

(* Parsing ----------------------------------------------------------- *)

type parse_state = {
  mutable n_switches : int option;
  mutable n_cores : int option;
  mutable links : (int * int * int * int) list;  (* id, src, dst, vcs *)
  mutable mapping : (int * int) list;  (* core, switch *)
  mutable flows : (int * int * int * float) list;
  mutable route_lines : (int * (int * int) list) list;
}

let load text =
  let state =
    {
      n_switches = None;
      n_cores = None;
      links = [];
      mapping = [];
      flows = [];
      route_lines = [];
    }
  in
  let error line_no fmt =
    Printf.ksprintf (fun msg -> Error (Printf.sprintf "line %d: %s" line_no msg)) fmt
  in
  let parse_int line_no what s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> error line_no "bad %s %S" what s
  in
  let parse_channel line_no s =
    match String.split_on_char ':' s with
    | [ l; v ] ->
        Result.bind (parse_int line_no "link" l) (fun l ->
            Result.bind (parse_int line_no "vc" v) (fun v -> Ok (l, v)))
    | _ :: _ | [] -> error line_no "bad channel %S (expected link:vc)" s
  in
  let rec parse_channels line_no acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
        Result.bind (parse_channel line_no s) (fun c ->
            parse_channels line_no (c :: acc) rest)
  in
  let parse_line line_no line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok ()
    else begin
      let fields =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
      in
      match fields with
      | [ "noc-design"; version ] ->
          if version = "1" then Ok ()
          else error line_no "unsupported format version %s" version
      | [ "switches"; n ] ->
          Result.map (fun v -> state.n_switches <- Some v) (parse_int line_no "switch count" n)
      | [ "cores"; n ] ->
          Result.map (fun v -> state.n_cores <- Some v) (parse_int line_no "core count" n)
      | [ "link"; id; src; dst; vcs ] ->
          Result.bind (parse_int line_no "link id" id) (fun id ->
              Result.bind (parse_int line_no "link src" src) (fun src ->
                  Result.bind (parse_int line_no "link dst" dst) (fun dst ->
                      Result.map
                        (fun vcs -> state.links <- (id, src, dst, vcs) :: state.links)
                        (parse_int line_no "vc count" vcs))))
      | [ "core"; id; sw ] ->
          Result.bind (parse_int line_no "core id" id) (fun id ->
              Result.map
                (fun sw -> state.mapping <- (id, sw) :: state.mapping)
                (parse_int line_no "core switch" sw))
      | [ "flow"; id; src; dst; bw ] ->
          Result.bind (parse_int line_no "flow id" id) (fun id ->
              Result.bind (parse_int line_no "flow src" src) (fun src ->
                  Result.bind (parse_int line_no "flow dst" dst) (fun dst ->
                      match float_of_string_opt bw with
                      | Some bw ->
                          state.flows <- (id, src, dst, bw) :: state.flows;
                          Ok ()
                      | None -> error line_no "bad bandwidth %S" bw)))
      | "route" :: id :: channels ->
          Result.bind (parse_int line_no "route flow id" id) (fun id ->
              Result.map
                (fun cs -> state.route_lines <- (id, cs) :: state.route_lines)
                (parse_channels line_no [] channels))
      | keyword :: _ -> error line_no "unknown directive %S" keyword
      | [] -> Ok ()
    end
  in
  let lines = String.split_on_char '\n' text in
  let rec parse_all line_no = function
    | [] -> Ok ()
    | line :: rest -> (
        match parse_line line_no line with
        | Ok () -> parse_all (line_no + 1) rest
        | Error _ as e -> e)
  in
  Result.bind (parse_all 1 lines) (fun () ->
      match (state.n_switches, state.n_cores) with
      | None, _ -> Error "missing 'switches' directive"
      | _, None -> Error "missing 'cores' directive"
      | Some n_switches, Some n_cores -> (
          try
            let topo = Topology.create ~n_switches in
            let links = List.sort compare (List.rev state.links) in
            List.iteri
              (fun expected (id, src, dst, vcs) ->
                if id <> expected then
                  failwith (Printf.sprintf "link ids not dense at %d" id);
                let lid =
                  Topology.add_link topo ~src:(Ids.Switch.of_int src)
                    ~dst:(Ids.Switch.of_int dst)
                in
                for _ = 2 to vcs do
                  ignore (Topology.add_vc topo lid)
                done)
              links;
            let traffic = Traffic.create ~n_cores in
            let flows = List.sort compare (List.rev state.flows) in
            List.iteri
              (fun expected (id, src, dst, bw) ->
                if id <> expected then
                  failwith (Printf.sprintf "flow ids not dense at %d" id);
                ignore
                  (Traffic.add_flow traffic ~src:(Ids.Core.of_int src)
                     ~dst:(Ids.Core.of_int dst) ~bandwidth:bw))
              flows;
            let mapping = Array.make n_cores (-1) in
            List.iter (fun (c, s) -> mapping.(c) <- s) state.mapping;
            Array.iteri
              (fun c s ->
                if s < 0 then failwith (Printf.sprintf "core %d has no mapping" c))
              mapping;
            let net =
              Network.make ~topology:topo ~traffic ~mapping:(fun c ->
                  Ids.Switch.of_int mapping.(Ids.Core.to_int c))
            in
            List.iter
              (fun (flow_id, channels) ->
                if flow_id >= Traffic.n_flows traffic then
                  failwith (Printf.sprintf "route for unknown flow %d" flow_id);
                let route =
                  List.map
                    (fun (l, v) -> Channel.make (Ids.Link.of_int l) v)
                    channels
                in
                Network.set_route net (Ids.Flow.of_int flow_id) route)
              (List.rev state.route_lines);
            (* Structural sanity of what we just built. *)
            match Validate.check net with
            | [] -> Ok net
            | issue :: _ ->
                Error (Format.asprintf "invalid design: %a" Validate.pp_issue issue)
          with
          | Failure msg -> Error msg
          | Invalid_argument msg -> Error msg))

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> load text
  | exception Sys_error msg -> Error msg
