type t = { link : Ids.Link.t; vc : int }

let make link vc =
  if vc < 0 then invalid_arg "Channel.make: negative VC index";
  { link; vc }

let link c = c.link
let vc c = c.vc
let equal a b = Ids.Link.equal a.link b.link && Int.equal a.vc b.vc

let compare a b =
  let c = Ids.Link.compare a.link b.link in
  if c <> 0 then c else Int.compare a.vc b.vc

let hash c = (Ids.Link.hash c.link * 31) + c.vc

let pp ppf c =
  if c.vc = 0 then Ids.Link.pp ppf c.link
  else if c.vc = 1 then Format.fprintf ppf "%a'" Ids.Link.pp c.link
  else Format.fprintf ppf "%a'%d" Ids.Link.pp c.link c.vc

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
