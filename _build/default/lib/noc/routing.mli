(** Static route computation.  Routes are computed on the switch graph
    and realized on VC 0 of each link; the deadlock-removal pass is
    what later moves flows onto higher VCs. *)

val route_flow :
  ?weight:(Topology.link -> float) -> Network.t -> Ids.Flow.t ->
  (Route.t, string) result
(** Minimum-weight route for one flow (default weight: 1 per hop).
    When parallel links exist between two switches the smallest link
    id is used.  Returns [Error] when the destination switch is
    unreachable. *)

val route_all :
  ?weight:(Topology.link -> float) -> Network.t -> (unit, string) result
(** Routes every flow with {!route_flow} and installs the results.
    Stops at the first unroutable flow. *)

val route_all_load_aware : Network.t -> (unit, string) result
(** Routes flows in decreasing bandwidth order; each flow's weight is
    [1 + load(link)/total_bandwidth], which spreads heavy flows over
    distinct links.  Deterministic. *)
