(** Per-switch forwarding tables: the hardware-facing compilation of
    the flow routes.

    A wormhole router with table-based routing looks up
    (input channel, flow id) — or (local injection, flow id) — and gets
    the output channel to request.  This module compiles a network's
    routes into exactly those tables and cross-checks them against the
    route set, catching the class of bugs where two flows disagree
    about a shared table entry. *)

type entry = {
  flow : Ids.Flow.t;
  input : Channel.t option;  (** [None] = injected locally here. *)
  output : Channel.t option;  (** [None] = ejected locally here. *)
}

type t

val compile : Network.t -> t
(** Builds every switch's table from the current routes. *)

val switch_entries : t -> Ids.Switch.t -> entry list
(** Entries of one switch, sorted by flow id then input channel. *)

val lookup :
  t -> Ids.Switch.t -> flow:Ids.Flow.t -> input:Channel.t option ->
  Channel.t option option
(** [lookup t sw ~flow ~input] is [Some output] when the table has the
    entry, [None] when it does not (the flow never presents that input
    at that switch). *)

val total_entries : t -> int

val check : Network.t -> t -> (unit, string) result
(** Re-walks every route through the compiled tables: each flow must
    traverse from its source switch to its destination switch using
    only table lookups.  [Error] pinpoints the first inconsistency. *)

val pp_switch : t -> Format.formatter -> Ids.Switch.t -> unit
