type link_usage = {
  link : Ids.Link.t;
  load_mbps : float;
  utilization : float;
  flows : Ids.Flow.t list;
}

type t = {
  capacity_mbps : float;
  usages : link_usage list;
  feasible : bool;
  worst : link_usage option;
}

let analyze ~capacity_mbps net =
  if capacity_mbps <= 0. then invalid_arg "Bandwidth.analyze: capacity <= 0";
  let topo = Network.topology net in
  let usage (l : Topology.link) =
    let flows =
      List.filter_map
        (fun (f : Traffic.flow) ->
          let crosses =
            List.exists
              (fun c -> Ids.Link.equal (Channel.link c) l.Topology.id)
              (Network.route net f.Traffic.id)
          in
          if crosses then Some f.Traffic.id else None)
        (Traffic.flows (Network.traffic net))
    in
    let load_mbps = Network.link_load net l.Topology.id in
    {
      link = l.Topology.id;
      load_mbps;
      utilization = load_mbps /. capacity_mbps;
      flows;
    }
  in
  let usages = List.map usage (Topology.links topo) in
  let worst =
    List.fold_left
      (fun best u ->
        match best with
        | Some b when b.utilization >= u.utilization -> best
        | Some _ | None -> if u.load_mbps > 0. then Some u else best)
      None usages
  in
  {
    capacity_mbps;
    usages;
    feasible = List.for_all (fun u -> u.utilization <= 1.0) usages;
    worst;
  }

let oversubscribed t =
  List.filter (fun u -> u.utilization > 1.0) t.usages
  |> List.sort (fun a b -> compare b.utilization a.utilization)

let pp ppf t =
  Format.fprintf ppf "bandwidth at %.0f MB/s per link: %s" t.capacity_mbps
    (if t.feasible then "feasible" else "OVERSUBSCRIBED");
  (match t.worst with
  | Some w ->
      Format.fprintf ppf " (worst: %a at %.0f%%, %d flows)" Ids.Link.pp w.link
        (100. *. w.utilization)
        (List.length w.flows)
  | None -> ());
  List.iter
    (fun u ->
      Format.fprintf ppf "@.  %a: %.0f MB/s (%.0f%%)" Ids.Link.pp u.link
        u.load_mbps
        (100. *. u.utilization))
    (oversubscribed t)
