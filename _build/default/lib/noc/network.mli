(** A complete NoC design instance: topology + traffic + core-to-switch
    mapping + one static route per flow.  This is the object the
    deadlock-removal algorithm transforms. *)

type t

val make :
  topology:Topology.t ->
  traffic:Traffic.t ->
  mapping:(Ids.Core.t -> Ids.Switch.t) ->
  t
(** Builds a design with empty routes.  [mapping] is sampled once for
    every core and stored.
    @raise Invalid_argument if [mapping] returns an out-of-range
    switch. *)

val topology : t -> Topology.t
val traffic : t -> Traffic.t
val switch_of_core : t -> Ids.Core.t -> Ids.Switch.t

val set_route : t -> Ids.Flow.t -> Route.t -> unit
val route : t -> Ids.Flow.t -> Route.t
(** The flow's route ([[]] until set). *)

val routes : t -> (Ids.Flow.t * Route.t) list
(** All (flow, route) pairs in flow-id order. *)

val endpoints : t -> Ids.Flow.t -> Ids.Switch.t * Ids.Switch.t
(** Source and destination switches of a flow (through the mapping). *)

val copy : t -> t
(** Deep copy: mutating the copy's topology or routes leaves the
    original untouched. *)

val channel_load : t -> Channel.t -> float
(** Total bandwidth of the flows routed over the channel. *)

val link_load : t -> Ids.Link.t -> float
(** Total bandwidth over all VCs of a link. *)

val pp : Format.formatter -> t -> unit
