module Digraph = Noc_graph.Digraph
module Paths = Noc_graph.Paths

(* Best link per switch pair under the weight function: smallest weight,
   then smallest link id for determinism. *)
let best_links topo ~weight =
  let best = Hashtbl.create 64 in
  let consider (l : Topology.link) =
    let key = (Ids.Switch.to_int l.Topology.src, Ids.Switch.to_int l.Topology.dst) in
    let w = weight l in
    match Hashtbl.find_opt best key with
    | Some (w', l') when w' < w || (w' = w && Ids.Link.compare l'.Topology.id l.Topology.id < 0) ->
        ()
    | Some _ | None -> Hashtbl.replace best key (w, l)
  in
  List.iter consider (Topology.links topo);
  best

let route_between topo ~weight ~src ~dst =
  if Ids.Switch.equal src dst then Ok []
  else begin
    let best = best_links topo ~weight in
    let g = Topology.switch_graph topo in
    let edge_weight u v =
      match Hashtbl.find_opt best (u, v) with
      | Some (w, _) -> w
      | None -> infinity
    in
    match
      Paths.shortest_path g ~weight:edge_weight (Ids.Switch.to_int src)
        (Ids.Switch.to_int dst)
    with
    | None ->
        Error
          (Format.asprintf "no path from %a to %a" Ids.Switch.pp src Ids.Switch.pp
             dst)
    | Some vertices ->
        let rec channels = function
          | u :: (v :: _ as rest) ->
              let _, l = Hashtbl.find best (u, v) in
              Channel.make l.Topology.id 0 :: channels rest
          | [ _ ] | [] -> []
        in
        Ok (channels vertices)
  end

let route_flow ?(weight = fun (_ : Topology.link) -> 1.) net flow =
  let src, dst = Network.endpoints net flow in
  route_between (Network.topology net) ~weight ~src ~dst

let route_all ?weight net =
  let rec go = function
    | [] -> Ok ()
    | (f : Traffic.flow) :: rest -> (
        match route_flow ?weight net f.Traffic.id with
        | Ok r ->
            Network.set_route net f.Traffic.id r;
            go rest
        | Error e ->
            Error (Format.asprintf "flow %a: %s" Ids.Flow.pp f.Traffic.id e))
  in
  go (Traffic.flows (Network.traffic net))

let route_all_load_aware net =
  let traffic = Network.traffic net in
  let total = max 1e-9 (Traffic.total_bandwidth traffic) in
  let by_bw =
    List.sort
      (fun (a : Traffic.flow) b ->
        match compare b.Traffic.bandwidth a.Traffic.bandwidth with
        | 0 -> Ids.Flow.compare a.Traffic.id b.Traffic.id
        | c -> c)
      (Traffic.flows traffic)
  in
  let load = Hashtbl.create 64 in
  let link_load (l : Topology.link) =
    Option.value ~default:0. (Hashtbl.find_opt load (Ids.Link.to_int l.Topology.id))
  in
  let rec go = function
    | [] -> Ok ()
    | (f : Traffic.flow) :: rest -> (
        let weight l = 1. +. (link_load l /. total) in
        match route_flow ~weight net f.Traffic.id with
        | Ok r ->
            Network.set_route net f.Traffic.id r;
            List.iter
              (fun c ->
                let k = Ids.Link.to_int (Channel.link c) in
                Hashtbl.replace load k
                  (Option.value ~default:0. (Hashtbl.find_opt load k)
                  +. f.Traffic.bandwidth))
              r;
            go rest
        | Error e ->
            Error (Format.asprintf "flow %a: %s" Ids.Flow.pp f.Traffic.id e))
  in
  go by_bw
