let topology ?(name = "topology") net =
  let topo = Network.topology net in
  (* Render through a plain digraph over switch ids, adding one edge
     per link via the edge-attribute hook keyed on (src, dst).  DOT
     collapses parallel edges only if we let it, so links are emitted
     directly instead. *)
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n" name);
  for s = 0 to Topology.n_switches topo - 1 do
    Buffer.add_string b (Printf.sprintf "  s%d [label=\"sw%d\", shape=box];\n" s s)
  done;
  List.iter
    (fun (l : Topology.link) ->
      let vcs = Topology.vc_count topo l.Topology.id in
      let load = Network.link_load net l.Topology.id in
      Buffer.add_string b
        (Printf.sprintf "  s%d -> s%d [label=\"L%d (%d VC, %.0f MB/s)\"%s];\n"
           (Ids.Switch.to_int l.Topology.src)
           (Ids.Switch.to_int l.Topology.dst)
           (Ids.Link.to_int l.Topology.id)
           vcs load
           (if vcs > 1 then ", color=\"red\"" else "")))
    (Topology.links topo);
  Buffer.add_string b "}\n";
  Buffer.contents b

let topology_heatmap ?(name = "utilization") ~utilization net =
  let topo = Network.topology net in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n" name);
  for s = 0 to Topology.n_switches topo - 1 do
    Buffer.add_string b (Printf.sprintf "  s%d [label=\"sw%d\", shape=box];\n" s s)
  done;
  let colour u =
    (* Grey -> orange -> red as the link heats up. *)
    if u <= 0.01 then "gray70"
    else if u < 0.3 then "darkgreen"
    else if u < 0.6 then "orange"
    else "red"
  in
  List.iter
    (fun (l : Topology.link) ->
      let u = max 0. (min 1. (utilization l.Topology.id)) in
      Buffer.add_string b
        (Printf.sprintf
           "  s%d -> s%d [label=\"L%d %.0f%%\", color=\"%s\", penwidth=\"%.1f\"];\n"
           (Ids.Switch.to_int l.Topology.src)
           (Ids.Switch.to_int l.Topology.dst)
           (Ids.Link.to_int l.Topology.id)
           (100. *. u) (colour u)
           (1. +. (4. *. u))))
    (Topology.links topo);
  Buffer.add_string b "}\n";
  Buffer.contents b

let cdg ?(name = "cdg") net =
  let cdg = Cdg.build net in
  let cycle_set =
    match Cdg.smallest_cycle cdg with
    | Some cycle -> Channel.Set.of_list cycle
    | None -> Channel.Set.empty
  in
  let label v = Format.asprintf "%a" Channel.pp (Cdg.channel_of_vertex cdg v) in
  let vertex_attrs v =
    if Channel.Set.mem (Cdg.channel_of_vertex cdg v) cycle_set then
      [ ("color", "red"); ("fontcolor", "red") ]
    else []
  in
  let edge_attrs u v =
    let cu = Cdg.channel_of_vertex cdg u and cv = Cdg.channel_of_vertex cdg v in
    if Channel.Set.mem cu cycle_set && Channel.Set.mem cv cycle_set then
      [ ("color", "red") ]
    else []
  in
  Noc_graph.Dot.render ~name ~vertex_label:label ~vertex_attrs ~edge_attrs
    (Cdg.graph cdg)
