(** Typed identifiers for the NoC domain.

    Switches, cores, physical links and flows are all represented by
    dense integers internally, but mixing them up (e.g. indexing a
    route table with a switch id) is a classic source of silent bugs in
    EDA code.  Each entity therefore gets its own opaque id type. *)

module type S = sig
  type t

  val of_int : int -> t
  (** @raise Invalid_argument on negative input. *)

  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Switch : S
(** A switch (router) of the topology graph TG(S, L). *)

module Core : S
(** A core (IP block) of the communication graph G(V, E). *)

module Link : S
(** A directed physical link of the topology. *)

module Flow : S
(** A communication flow (edge of G(V, E)) with a static route. *)
