(** Whole-design quality metrics: hop counts, link-load statistics and
    cut bandwidth.  Used by the synthesizer's evaluation, the ablation
    study, and anyone judging a design before/after a transformation. *)

type t = {
  n_switches : int;
  n_links : int;
  total_vcs : int;
  n_routed_flows : int;
  avg_hops : float;  (** Mean route length over routed flows. *)
  max_hops : int;
  avg_link_load : float;  (** MB/s, over links carrying any traffic. *)
  max_link_load : float;
  load_imbalance : float;
      (** [max_link_load / avg_link_load]; [1.0] = perfectly even,
          higher = hotter hotspots.  [0.] when nothing is routed. *)
  switch_connectivity : float;
      (** Fraction of ordered switch pairs with a directed path. *)
}

val of_network : Network.t -> t

val flow_cut_bandwidth :
  Network.t -> src:Ids.Switch.t -> dst:Ids.Switch.t -> float
(** Maximum bandwidth (in units of link capacities = 1.0 per link)
    that could flow between two switches — the min cut of the switch
    graph.  Collapses parallel links into their multiplicity. *)

val critical_links : Network.t -> Ids.Link.t list
(** Links whose removal disconnects at least one routed flow's
    endpoint pair — the single points of failure of the design, in
    link-id order.  A robust design has none (every flow pair has a
    disjoint backup path). *)

val pp : Format.formatter -> t -> unit
