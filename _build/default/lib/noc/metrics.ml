type t = {
  n_switches : int;
  n_links : int;
  total_vcs : int;
  n_routed_flows : int;
  avg_hops : float;
  max_hops : int;
  avg_link_load : float;
  max_link_load : float;
  load_imbalance : float;
  switch_connectivity : float;
}

let of_network net =
  let topo = Network.topology net in
  let routes = List.filter (fun (_, r) -> r <> []) (Network.routes net) in
  let n_routed_flows = List.length routes in
  let hop_total = List.fold_left (fun acc (_, r) -> acc + Route.length r) 0 routes in
  let max_hops = List.fold_left (fun acc (_, r) -> max acc (Route.length r)) 0 routes in
  let loads =
    List.filter_map
      (fun (l : Topology.link) ->
        let load = Network.link_load net l.Topology.id in
        if load > 0. then Some load else None)
      (Topology.links topo)
  in
  let load_total = List.fold_left ( +. ) 0. loads in
  let max_link_load = List.fold_left max 0. loads in
  let avg_link_load =
    if loads = [] then 0. else load_total /. float_of_int (List.length loads)
  in
  let n = Topology.n_switches topo in
  let connectivity =
    if n < 2 then 1.
    else begin
      let g = Topology.switch_graph topo in
      let reachable_pairs = ref 0 in
      for s = 0 to n - 1 do
        let r = Noc_graph.Traversal.reachable g s in
        Array.iteri (fun d ok -> if ok && d <> s then incr reachable_pairs) r
      done;
      float_of_int !reachable_pairs /. float_of_int (n * (n - 1))
    end
  in
  {
    n_switches = n;
    n_links = Topology.n_links topo;
    total_vcs = Topology.total_vcs topo;
    n_routed_flows;
    avg_hops =
      (if n_routed_flows = 0 then 0.
       else float_of_int hop_total /. float_of_int n_routed_flows);
    max_hops;
    avg_link_load;
    max_link_load;
    load_imbalance =
      (if avg_link_load = 0. then 0. else max_link_load /. avg_link_load);
    switch_connectivity = connectivity;
  }

let flow_cut_bandwidth net ~src ~dst =
  let topo = Network.topology net in
  let multiplicity = Hashtbl.create 64 in
  List.iter
    (fun (l : Topology.link) ->
      let key = (Ids.Switch.to_int l.Topology.src, Ids.Switch.to_int l.Topology.dst) in
      Hashtbl.replace multiplicity key
        (1. +. Option.value ~default:0. (Hashtbl.find_opt multiplicity key)))
    (Topology.links topo);
  let g = Topology.switch_graph topo in
  let capacity u v = Option.value ~default:0. (Hashtbl.find_opt multiplicity (u, v)) in
  Noc_graph.Max_flow.max_flow g ~capacity ~source:(Ids.Switch.to_int src)
    ~sink:(Ids.Switch.to_int dst)

let critical_links net =
  let topo = Network.topology net in
  let pairs =
    List.sort_uniq compare
      (List.filter_map
         (fun (f : Traffic.flow) ->
           let src, dst = Network.endpoints net f.Traffic.id in
           if Ids.Switch.equal src dst then None
           else Some (Ids.Switch.to_int src, Ids.Switch.to_int dst))
         (Traffic.flows (Network.traffic net)))
  in
  (* Rebuild the switch graph without one link and re-check every
     endpoint pair; parallel links make a link non-critical by
     construction (the twin keeps the edge alive). *)
  let links = Topology.links topo in
  let is_critical (victim : Topology.link) =
    let g = Noc_graph.Digraph.create ~initial_capacity:(Topology.n_switches topo) () in
    Noc_graph.Digraph.ensure_vertex g (Topology.n_switches topo - 1);
    List.iter
      (fun (l : Topology.link) ->
        if not (Ids.Link.equal l.Topology.id victim.Topology.id) then
          Noc_graph.Digraph.add_edge g
            (Ids.Switch.to_int l.Topology.src)
            (Ids.Switch.to_int l.Topology.dst))
      links;
    List.exists
      (fun (s, d) ->
        not (Noc_graph.Traversal.reachable g s).(d))
      pairs
  in
  List.filter_map
    (fun (l : Topology.link) ->
      if is_critical l then Some l.Topology.id else None)
    links

let pp ppf m =
  Format.fprintf ppf
    "@[<v>%d switches, %d links, %d VCs, %d routed flows@,\
     hops: avg %.2f, max %d@,\
     link load: avg %.1f MB/s, max %.1f MB/s, imbalance %.2f@,\
     switch connectivity: %.0f%%@]"
    m.n_switches m.n_links m.total_vcs m.n_routed_flows m.avg_hops m.max_hops
    m.avg_link_load m.max_link_load m.load_imbalance
    (100. *. m.switch_connectivity)
