type t = Channel.t list

let links r = List.map Channel.link r
let length = List.length
let uses_channel r c = List.exists (Channel.equal c) r

let consecutive_pairs r =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs r

let check topo ~src ~dst r =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_vc c =
    let have = Topology.vc_count topo (Channel.link c) in
    if Channel.vc c >= have then
      Some
        (Format.asprintf "channel %a uses VC %d but link has only %d" Channel.pp c
           (Channel.vc c) have)
    else None
  in
  match r with
  | [] ->
      if Ids.Switch.equal src dst then Ok ()
      else fail "empty route between distinct switches %a and %a" Ids.Switch.pp src
             Ids.Switch.pp dst
  | first :: _ -> (
      match List.find_map check_vc r with
      | Some msg -> Error msg
      | None ->
          let first_link = Topology.link topo (Channel.link first) in
          let last = List.nth r (List.length r - 1) in
          let last_link = Topology.link topo (Channel.link last) in
          if not (Ids.Switch.equal first_link.Topology.src src) then
            fail "route starts at %a, expected %a" Ids.Switch.pp
              first_link.Topology.src Ids.Switch.pp src
          else if not (Ids.Switch.equal last_link.Topology.dst dst) then
            fail "route ends at %a, expected %a" Ids.Switch.pp last_link.Topology.dst
              Ids.Switch.pp dst
          else begin
            let continuous (a, b) =
              let la = Topology.link topo (Channel.link a) in
              let lb = Topology.link topo (Channel.link b) in
              Ids.Switch.equal la.Topology.dst lb.Topology.src
            in
            match List.find_opt (fun p -> not (continuous p)) (consecutive_pairs r) with
            | Some (a, b) ->
                fail "discontinuous route: %a then %a" Channel.pp a Channel.pp b
            | None ->
                let sorted = List.sort Channel.compare r in
                let rec has_dup = function
                  | a :: (b :: _ as rest) ->
                      if Channel.equal a b then true else has_dup rest
                  | [ _ ] | [] -> false
                in
                if has_dup sorted then fail "route repeats a channel" else Ok ()
          end)

let pp ppf r =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Channel.pp) r
