type flow = {
  id : Ids.Flow.t;
  src : Ids.Core.t;
  dst : Ids.Core.t;
  bandwidth : float;
}

type t = {
  n_cores : int;
  mutable flows_rev : flow list;
  mutable n_flows : int;
  flow_by_id : (int, flow) Hashtbl.t;
}

let create ~n_cores =
  if n_cores <= 0 then invalid_arg "Traffic.create: need at least one core";
  { n_cores; flows_rev = []; n_flows = 0; flow_by_id = Hashtbl.create 64 }

let n_cores t = t.n_cores
let n_flows t = t.n_flows

let check_core t c name =
  let i = Ids.Core.to_int c in
  if i >= t.n_cores then
    invalid_arg (Printf.sprintf "Traffic.%s: core %d out of range" name i)

let add_flow t ~src ~dst ~bandwidth =
  check_core t src "add_flow";
  check_core t dst "add_flow";
  if Ids.Core.equal src dst then invalid_arg "Traffic.add_flow: self-flow";
  if bandwidth <= 0. then invalid_arg "Traffic.add_flow: non-positive bandwidth";
  let id = Ids.Flow.of_int t.n_flows in
  let f = { id; src; dst; bandwidth } in
  t.flows_rev <- f :: t.flows_rev;
  t.n_flows <- t.n_flows + 1;
  Hashtbl.replace t.flow_by_id (Ids.Flow.to_int id) f;
  id

let flow t id =
  match Hashtbl.find_opt t.flow_by_id (Ids.Flow.to_int id) with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Traffic.flow: unknown flow %d" (Ids.Flow.to_int id))

let flows t = List.rev t.flows_rev
let flows_from t c = List.filter (fun f -> Ids.Core.equal f.src c) (flows t)
let flows_to t c = List.filter (fun f -> Ids.Core.equal f.dst c) (flows t)
let total_bandwidth t = List.fold_left (fun acc f -> acc +. f.bandwidth) 0. (flows t)

let demand_between t src dst =
  List.fold_left
    (fun acc f -> if Ids.Core.equal f.dst dst then acc +. f.bandwidth else acc)
    0. (flows_from t src)

let pp ppf t =
  Format.fprintf ppf "@[<v>traffic: %d cores, %d flows" t.n_cores t.n_flows;
  List.iter
    (fun f ->
      Format.fprintf ppf "@,%a: %a -> %a (%.1f MB/s)" Ids.Flow.pp f.id Ids.Core.pp
        f.src Ids.Core.pp f.dst f.bandwidth)
    (flows t);
  Format.fprintf ppf "@]"
