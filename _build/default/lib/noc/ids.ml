module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

(* All id kinds share one implementation; the functor application gives
   each a distinct abstract type, and [prefix] a distinct printed
   form. *)
module Make (P : sig
  val prefix : string
end) : S = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg (P.prefix ^ " id must be non-negative");
    i

  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash i = i
  let pp ppf i = Format.fprintf ppf "%s%d" P.prefix i
end

module Switch = Make (struct
  let prefix = "sw"
end)

module Core = Make (struct
  let prefix = "core"
end)

module Link = Make (struct
  let prefix = "L"
end)

module Flow = Make (struct
  let prefix = "F"
end)
