(** A route: the ordered list of channels a flow traverses from its
    source switch to its destination switch (Definition 3). *)

type t = Channel.t list

val links : t -> Ids.Link.t list
val length : t -> int

val uses_channel : t -> Channel.t -> bool

val consecutive_pairs : t -> (Channel.t * Channel.t) list
(** The channel dependencies a route induces: [(c1,c2); (c2,c3); ...].
    Empty for routes with fewer than two channels. *)

val check : Topology.t -> src:Ids.Switch.t -> dst:Ids.Switch.t -> t ->
  (unit, string) result
(** Structural validation of a route on a topology:
    - non-empty unless [src = dst];
    - every channel's VC index is within the link's VC count;
    - the first link leaves [src], the last enters [dst];
    - consecutive links are head-to-tail;
    - no channel repeats (routes are simple, as required for
      wormhole-deadlock analysis on static routes). *)

val pp : Format.formatter -> t -> unit
