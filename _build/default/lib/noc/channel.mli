(** A communication channel: a physical link together with a virtual
    channel (VC) index on that link (Definition 3 of the paper).
    Channels are the vertices of the channel dependency graph. *)

type t = { link : Ids.Link.t; vc : int }

val make : Ids.Link.t -> int -> t
(** @raise Invalid_argument on a negative VC index. *)

val link : t -> Ids.Link.t
val vc : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [L3] for VC 0 and [L3'2] for VC 2, mirroring the paper's
    "primed" notation for duplicated channels. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
