type t = {
  topo : Topology.t;
  func : at:Ids.Switch.t -> dst:Ids.Switch.t -> Channel.t list;
  cache : (int * int, Channel.t list) Hashtbl.t;
}

let make topo func = { topo; func; cache = Hashtbl.create 256 }

let options t ~at ~dst =
  let key = (Ids.Switch.to_int at, Ids.Switch.to_int dst) in
  match Hashtbl.find_opt t.cache key with
  | Some cs -> cs
  | None ->
      let cs =
        if Ids.Switch.equal at dst then []
        else begin
          let raw = t.func ~at ~dst in
          let validate c =
            let info = Topology.link t.topo (Channel.link c) in
            if not (Ids.Switch.equal info.Topology.src at) then
              invalid_arg
                (Format.asprintf
                   "Routing_function: channel %a does not leave %a" Channel.pp c
                   Ids.Switch.pp at);
            if Channel.vc c >= Topology.vc_count t.topo (Channel.link c) then
              invalid_arg
                (Format.asprintf "Routing_function: channel %a does not exist"
                   Channel.pp c)
          in
          List.iter validate raw;
          List.sort_uniq Channel.compare raw
        end
      in
      Hashtbl.replace t.cache key cs;
      cs

let topology t = t.topo

let of_static_routes net =
  let topo = Network.topology net in
  (* (switch, dst switch) -> channels, harvested from the routes. *)
  let table = Hashtbl.create 256 in
  let harvest (flow, route) =
    let _, dst = Network.endpoints net flow in
    List.iter
      (fun c ->
        let at = (Topology.link topo (Channel.link c)).Topology.src in
        let key = (Ids.Switch.to_int at, Ids.Switch.to_int dst) in
        let old = Option.value ~default:[] (Hashtbl.find_opt table key) in
        if not (List.exists (Channel.equal c) old) then
          Hashtbl.replace table key (c :: old))
      route
  in
  List.iter harvest (Network.routes net);
  make topo (fun ~at ~dst ->
      Option.value ~default:[]
        (Hashtbl.find_opt table (Ids.Switch.to_int at, Ids.Switch.to_int dst)))

let minimal_adaptive ?(all_vcs = true) net =
  let topo = Network.topology net in
  let g = Topology.switch_graph topo in
  (* Hop distance from every switch to every destination: BFS on the
     transposed switch graph, once per destination. *)
  let n = Topology.n_switches topo in
  let gt = Noc_graph.Digraph.transpose g in
  let dist_to = Array.init n (fun d -> Noc_graph.Traversal.bfs_distances gt d) in
  make topo (fun ~at ~dst ->
      let d = dist_to.(Ids.Switch.to_int dst) in
      let here = d.(Ids.Switch.to_int at) in
      if here <= 0 then []
      else
        List.concat_map
          (fun (l : Topology.link) ->
            let next = d.(Ids.Switch.to_int l.Topology.dst) in
            if next >= 0 && next = here - 1 then
              if all_vcs then
                List.init (Topology.vc_count topo l.Topology.id) (fun vc ->
                    Channel.make l.Topology.id vc)
              else [ Channel.make l.Topology.id 0 ]
            else [])
          (Topology.out_links topo at))

let restrict t ~keep =
  make t.topo (fun ~at ~dst -> List.filter keep (options t ~at ~dst))

let is_connected t net =
  let topo = Network.topology net in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* For each destination switch, walk the closure of switches reachable
     under the function from each flow source; every switch in the
     closure (except the destination) must offer at least one option. *)
  let check_flow (f : Traffic.flow) =
    let src, dst = Network.endpoints net f.Traffic.id in
    if Ids.Switch.equal src dst then Ok ()
    else begin
      let seen = Array.make (Topology.n_switches topo) false in
      let q = Queue.create () in
      seen.(Ids.Switch.to_int src) <- true;
      Queue.add src q;
      let stranded = ref None in
      while !stranded = None && not (Queue.is_empty q) do
        let u = Queue.pop q in
        if not (Ids.Switch.equal u dst) then begin
          match options t ~at:u ~dst with
          | [] -> stranded := Some u
          | cs ->
              List.iter
                (fun c ->
                  let v = (Topology.link topo (Channel.link c)).Topology.dst in
                  if not seen.(Ids.Switch.to_int v) then begin
                    seen.(Ids.Switch.to_int v) <- true;
                    Queue.add v q
                  end)
                cs
        end
      done;
      match !stranded with
      | Some u ->
          fail "flow %a: stranded at %a while routing to %a" Ids.Flow.pp
            f.Traffic.id Ids.Switch.pp u Ids.Switch.pp dst
      | None -> Ok ()
    end
  in
  let rec all = function
    | [] -> Ok ()
    | f :: rest -> (
        match check_flow f with Ok () -> all rest | Error _ as e -> e)
  in
  all (Traffic.flows (Network.traffic net))
