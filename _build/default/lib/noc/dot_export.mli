(** Graphviz views of a design: the switch-level topology (links
    annotated with VC counts and loads) and the channel dependency
    graph (cycle channels highlighted). *)

val topology : ?name:string -> Network.t -> string
(** Switches as nodes, one edge per physical link, labelled
    ["Lk (n VC)"] and coloured red when it carries more than one VC. *)

val cdg : ?name:string -> Network.t -> string
(** The network's CDG; channels on a smallest cycle (if any) are
    coloured red, so the deadlock risk is visible at a glance. *)

val topology_heatmap :
  ?name:string -> utilization:(Ids.Link.t -> float) -> Network.t -> string
(** Topology with links coloured by a utilization in [0, 1] (e.g. from
    simulation statistics): grey when idle, through orange, to red at
    saturation; labels carry the percentage. *)
