(** The topology graph TG(S, L): switches connected by directed
    physical links, each carrying one or more virtual channels
    (Definition 1 of the paper).

    The structure is mutable in exactly the two ways the deadlock
    removal algorithm needs: adding links (during synthesis) and
    adding VCs to an existing link (during cycle breaking). *)

type t

type link = { id : Ids.Link.t; src : Ids.Switch.t; dst : Ids.Switch.t }

val create : n_switches:int -> t
(** A topology with [n_switches] switches and no links.
    @raise Invalid_argument when [n_switches <= 0]. *)

val copy : t -> t
(** Independent deep copy (used to compare methods on one input). *)

val n_switches : t -> int
val n_links : t -> int

val add_link : t -> src:Ids.Switch.t -> dst:Ids.Switch.t -> Ids.Link.t
(** Adds a directed link with one VC.  Parallel links are permitted
    (they model physical duplication); self-loops are rejected.
    @raise Invalid_argument on a self-loop or an unknown switch. *)

val link : t -> Ids.Link.t -> link
(** @raise Invalid_argument on an unknown link id. *)

val links : t -> link list
(** All links in id order. *)

val vc_count : t -> Ids.Link.t -> int
(** Number of VCs currently on the link (at least 1). *)

val add_vc : t -> Ids.Link.t -> int
(** Adds one VC to the link; returns the new VC's index. *)

val total_vcs : t -> int
(** Sum of [vc_count] over all links — the paper's resource count
    |L'|. *)

val extra_vcs : t -> int
(** [total_vcs t - n_links t]: VCs beyond the baseline one-per-link,
    i.e. the paper's |L'| - |L| cost metric. *)

val channels : t -> Channel.t list
(** Every (link, vc) channel, ordered by link id then VC index. *)

val out_links : t -> Ids.Switch.t -> link list
val in_links : t -> Ids.Switch.t -> link list

val find_links : t -> src:Ids.Switch.t -> dst:Ids.Switch.t -> link list
(** All parallel links from [src] to [dst] (possibly empty). *)

val switch_graph : t -> Noc_graph.Digraph.t
(** The switch-level connectivity as a plain digraph (vertex [i] is
    switch [i]); parallel links collapse to one edge. *)

val degree : t -> Ids.Switch.t -> int
(** Total number of link endpoints (in + out) at the switch. *)

val is_connected : t -> bool
(** [true] iff every switch can reach every other treating links as
    bidirectional (weak connectivity); vacuously true for a single
    switch. *)

val pp : Format.formatter -> t -> unit
