type entry = {
  flow : Ids.Flow.t;
  input : Channel.t option;
  output : Channel.t option;
}

(* Key: (switch, flow, input channel).  Routes are simple, so a flow
   presents at most one input per switch and the key is unique. *)
type t = {
  entries : (int * int * (Channel.t option), Channel.t option) Hashtbl.t;
  by_switch : (int, entry list) Hashtbl.t;
}

let add t sw flow ~input ~output =
  let key = (Ids.Switch.to_int sw, Ids.Flow.to_int flow, input) in
  Hashtbl.replace t.entries key output;
  let old = Option.value ~default:[] (Hashtbl.find_opt t.by_switch (Ids.Switch.to_int sw)) in
  Hashtbl.replace t.by_switch (Ids.Switch.to_int sw) ({ flow; input; output } :: old)

let compile net =
  let topo = Network.topology net in
  let t = { entries = Hashtbl.create 256; by_switch = Hashtbl.create 64 } in
  let compile_route (flow, route) =
    match route with
    | [] -> ()
    | first :: _ ->
        let src_switch = (Topology.link topo (Channel.link first)).Topology.src in
        add t src_switch flow ~input:None ~output:(Some first);
        let rec hops = function
          | a :: (b :: _ as rest) ->
              let mid = (Topology.link topo (Channel.link a)).Topology.dst in
              add t mid flow ~input:(Some a) ~output:(Some b);
              hops rest
          | [ last ] ->
              let dst_switch = (Topology.link topo (Channel.link last)).Topology.dst in
              add t dst_switch flow ~input:(Some last) ~output:None
          | [] -> ()
        in
        hops route
  in
  List.iter compile_route (Network.routes net);
  t

let switch_entries t sw =
  let entries =
    Option.value ~default:[] (Hashtbl.find_opt t.by_switch (Ids.Switch.to_int sw))
  in
  List.sort
    (fun a b ->
      match Ids.Flow.compare a.flow b.flow with
      | 0 -> Option.compare Channel.compare a.input b.input
      | c -> c)
    entries

let lookup t sw ~flow ~input =
  Hashtbl.find_opt t.entries (Ids.Switch.to_int sw, Ids.Flow.to_int flow, input)

let total_entries t = Hashtbl.length t.entries

let check net t =
  let topo = Network.topology net in
  let walk (flow, route) =
    match route with
    | [] -> Ok ()
    | first :: _ ->
        let src = (Topology.link topo (Channel.link first)).Topology.src in
        let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
        let rec step sw input remaining =
          match lookup t sw ~flow ~input with
          | None ->
              fail "flow %a: missing table entry at %a" Ids.Flow.pp flow
                Ids.Switch.pp sw
          | Some None -> (
              match remaining with
              | [] -> Ok ()
              | _ :: _ ->
                  fail "flow %a: table ejects early at %a" Ids.Flow.pp flow
                    Ids.Switch.pp sw)
          | Some (Some out) -> (
              match remaining with
              | expected :: rest when Channel.equal out expected ->
                  let next_sw = (Topology.link topo (Channel.link out)).Topology.dst in
                  step next_sw (Some out) rest
              | expected :: _ ->
                  fail "flow %a: table says %a, route says %a at %a" Ids.Flow.pp
                    flow Channel.pp out Channel.pp expected Ids.Switch.pp sw
              | [] ->
                  fail "flow %a: table forwards past the destination at %a"
                    Ids.Flow.pp flow Ids.Switch.pp sw)
        in
        step src None route
  in
  let rec all = function
    | [] -> Ok ()
    | r :: rest -> ( match walk r with Ok () -> all rest | Error _ as e -> e)
  in
  all (Network.routes net)

let pp_entry ppf e =
  let pp_opt ppf = function
    | None -> Format.pp_print_string ppf "local"
    | Some c -> Channel.pp ppf c
  in
  Format.fprintf ppf "%a: %a -> %a" Ids.Flow.pp e.flow pp_opt e.input pp_opt
    e.output

let pp_switch t ppf sw =
  Format.fprintf ppf "@[<v>%a:" Ids.Switch.pp sw;
  List.iter (fun e -> Format.fprintf ppf "@,  %a" pp_entry e) (switch_entries t sw);
  Format.fprintf ppf "@]"
