(** The Channel Dependency Graph (Definition 4): one vertex per channel
    of the topology, one edge [ci -> cj] when at least one flow's route
    uses [ci] and then immediately [cj].  A cycle in this graph is the
    necessary condition for a wormhole routing deadlock (Dally &
    Towles), and its absence is sufficient for deadlock freedom under
    static routing. *)

type t

val build : Network.t -> t
(** Builds the CDG of the network's current topology and routes. *)

val graph : t -> Noc_graph.Digraph.t
(** The underlying digraph; vertex ids are dense channel indices. *)

val n_channels : t -> int

val channel_of_vertex : t -> int -> Channel.t
(** @raise Invalid_argument on an out-of-range vertex. *)

val vertex_of_channel : t -> Channel.t -> int
(** @raise Not_found when the channel does not exist in the topology
    snapshot this CDG was built from. *)

val flows_on_dependency : t -> src:Channel.t -> dst:Channel.t -> Ids.Flow.t list
(** The flows whose routes create the dependency edge, in flow-id
    order; empty when the edge is absent. *)

val is_deadlock_free : t -> bool
(** [true] iff the CDG is acyclic. *)

val smallest_cycle : t -> Channel.t list option
(** The paper's [GetSmallestCycle]: a minimum-length cycle as a channel
    list in dependency order, or [None] when acyclic. *)

val cycles : ?max_cycles:int -> t -> Channel.t list list
(** All elementary cycles (bounded enumeration), for diagnostics. *)

val pp : Format.formatter -> t -> unit
