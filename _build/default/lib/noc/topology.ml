type link = { id : Ids.Link.t; src : Ids.Switch.t; dst : Ids.Switch.t }

type t = {
  n_switches : int;
  mutable links_rev : link list;
  mutable n_links : int;
  link_by_id : (int, link) Hashtbl.t;
  vcs : (int, int) Hashtbl.t; (* link id -> vc count *)
  out_by_switch : (int, link list) Hashtbl.t;
  in_by_switch : (int, link list) Hashtbl.t;
}

let create ~n_switches =
  if n_switches <= 0 then invalid_arg "Topology.create: need at least one switch";
  {
    n_switches;
    links_rev = [];
    n_links = 0;
    link_by_id = Hashtbl.create 64;
    vcs = Hashtbl.create 64;
    out_by_switch = Hashtbl.create 64;
    in_by_switch = Hashtbl.create 64;
  }

let n_switches t = t.n_switches
let n_links t = t.n_links

let check_switch t s name =
  let i = Ids.Switch.to_int s in
  if i >= t.n_switches then
    invalid_arg (Printf.sprintf "Topology.%s: switch %d out of range" name i)

let bucket_add tbl key v =
  let old = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (v :: old)

let add_link t ~src ~dst =
  check_switch t src "add_link";
  check_switch t dst "add_link";
  if Ids.Switch.equal src dst then invalid_arg "Topology.add_link: self-loop";
  let id = Ids.Link.of_int t.n_links in
  let l = { id; src; dst } in
  t.links_rev <- l :: t.links_rev;
  t.n_links <- t.n_links + 1;
  Hashtbl.replace t.link_by_id (Ids.Link.to_int id) l;
  Hashtbl.replace t.vcs (Ids.Link.to_int id) 1;
  bucket_add t.out_by_switch (Ids.Switch.to_int src) l;
  bucket_add t.in_by_switch (Ids.Switch.to_int dst) l;
  id

let link t id =
  match Hashtbl.find_opt t.link_by_id (Ids.Link.to_int id) with
  | Some l -> l
  | None ->
      invalid_arg
        (Printf.sprintf "Topology.link: unknown link %d" (Ids.Link.to_int id))

let links t = List.rev t.links_rev

let vc_count t id =
  match Hashtbl.find_opt t.vcs (Ids.Link.to_int id) with
  | Some n -> n
  | None ->
      invalid_arg
        (Printf.sprintf "Topology.vc_count: unknown link %d" (Ids.Link.to_int id))

let add_vc t id =
  let n = vc_count t id in
  Hashtbl.replace t.vcs (Ids.Link.to_int id) (n + 1);
  n

let total_vcs t = Hashtbl.fold (fun _ n acc -> acc + n) t.vcs 0
let extra_vcs t = total_vcs t - t.n_links

let channels t =
  let per_link l =
    List.init (vc_count t l.id) (fun v -> Channel.make l.id v)
  in
  List.concat_map per_link (links t)

let out_links t s =
  check_switch t s "out_links";
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.out_by_switch (Ids.Switch.to_int s)))

let in_links t s =
  check_switch t s "in_links";
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.in_by_switch (Ids.Switch.to_int s)))

let find_links t ~src ~dst =
  List.filter (fun l -> Ids.Switch.equal l.dst dst) (out_links t src)

let switch_graph t =
  let g = Noc_graph.Digraph.create ~initial_capacity:t.n_switches () in
  Noc_graph.Digraph.ensure_vertex g (t.n_switches - 1);
  List.iter
    (fun l ->
      Noc_graph.Digraph.add_edge g (Ids.Switch.to_int l.src) (Ids.Switch.to_int l.dst))
    (links t);
  g

let degree t s = List.length (out_links t s) + List.length (in_links t s)

let is_connected t =
  let uf = Noc_graph.Union_find.create t.n_switches in
  List.iter
    (fun l ->
      ignore
        (Noc_graph.Union_find.union uf (Ids.Switch.to_int l.src)
           (Ids.Switch.to_int l.dst)))
    (links t);
  Noc_graph.Union_find.n_sets uf = 1

let copy t =
  {
    n_switches = t.n_switches;
    links_rev = t.links_rev;
    n_links = t.n_links;
    link_by_id = Hashtbl.copy t.link_by_id;
    vcs = Hashtbl.copy t.vcs;
    out_by_switch = Hashtbl.copy t.out_by_switch;
    in_by_switch = Hashtbl.copy t.in_by_switch;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>topology: %d switches, %d links, %d VCs" t.n_switches
    t.n_links (total_vcs t);
  List.iter
    (fun l ->
      Format.fprintf ppf "@,%a: %a -> %a (%d VC)" Ids.Link.pp l.id Ids.Switch.pp
        l.src Ids.Switch.pp l.dst (vc_count t l.id))
    (links t);
  Format.fprintf ppf "@]"
