(** Adaptive routing functions.

    The core flow of this library uses static per-flow routes, but the
    deadlock theory it builds on (Dally/Duato) is stated for *routing
    functions*: given the current switch and the destination switch,
    the function offers a set of candidate output channels.  This
    module provides that abstraction plus builders, so Duato's
    necessary-and-sufficient condition ({!Noc_deadlock.Duato}) can be
    checked on adaptive designs. *)

type t
(** A routing function over a fixed topology. *)

val make :
  Topology.t ->
  (at:Ids.Switch.t -> dst:Ids.Switch.t -> Channel.t list) ->
  t
(** Wrap an arbitrary candidate-set function.  The callback is memoized
    per (at, dst) pair; it must only return channels that exist and
    leave [at].
    @raise Invalid_argument (at query time) on a channel that does not
    leave [at] or does not exist. *)

val options : t -> at:Ids.Switch.t -> dst:Ids.Switch.t -> Channel.t list
(** Candidate channels, sorted; empty at the destination or when the
    function offers nothing. *)

val topology : t -> Topology.t

val of_static_routes : Network.t -> t
(** The degenerate function induced by installed routes: at switch [u]
    towards destination-switch [d], the channels that some flow with
    destination switch [d] actually uses out of [u]. *)

val minimal_adaptive : ?all_vcs:bool -> Network.t -> t
(** Fully adaptive minimal routing: every channel on any minimum-hop
    path towards the destination.  With [all_vcs] (default [true])
    every VC of a chosen link is offered, otherwise only VC 0. *)

val restrict : t -> keep:(Channel.t -> bool) -> t
(** The subfunction offering only the channels satisfying [keep] —
    Duato's R1. *)

val is_connected : t -> Network.t -> (unit, string) result
(** Checks that every flow's destination is reachable from its source
    switch by always following the function (and that progress never
    strands: every reachable intermediate switch keeps at least one
    option).  [Error] names the first stranded (switch, destination)
    pair. *)
