(** Whole-network power and area rollup — the quantities behind the
    paper's Figure 10 and its 66 % area / 8.6 % power savings claims. *)

open Noc_model

type t = {
  switch_dynamic_mw : float;
  switch_leakage_mw : float;
  link_dynamic_mw : float;
  total_power_mw : float;
  switch_area_mm2 : float;
  link_area_mm2 : float;
  total_area_mm2 : float;
  total_vcs : int;
  switches : Switch_model.breakdown list;
  links : Link_model.breakdown list;
}

val of_network : ?params:Params.t -> Network.t -> t
(** Evaluates the model on the network's current topology, VC counts
    and routed loads.  The floorplan is derived from the topology. *)

val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> t -> unit
