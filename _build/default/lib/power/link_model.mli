(** Per-link wire power and repeater area, using floorplan lengths. *)

open Noc_model

type breakdown = {
  link : Ids.Link.t;
  length_mm : float;
  dynamic_mw : float;
  area_um2 : float;
}

val analyze : Params.t -> Noc_synth.Floorplan.t -> Network.t -> Ids.Link.t -> breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit
