type t = {
  voltage_v : float;
  frequency_hz : float;
  flit_bits : int;
  buffer_depth : int;
  e_buffer_pj_per_bit : float;
  e_crossbar_pj_per_bit_port : float;
  e_arbiter_pj_per_req : float;
  e_wire_pj_per_bit_mm : float;
  e_clock_fj_per_bit_cycle : float;
  p_leak_buffer_nw_per_bit : float;
  p_leak_crossbar_nw_per_bit_port2 : float;
  p_leak_arbiter_nw_per_port : float;
  a_buffer_um2_per_bit : float;
  a_crossbar_um2_per_bit_port2 : float;
  a_arbiter_um2_per_port_vc : float;
  a_wire_um2_per_bit_mm : float;
}

(* Magnitudes follow the published ORION 2.0 / Intel 80-core router
   breakdowns at 65 nm: buffer access ~0.03-0.06 pJ/bit, crossbar a few
   hundredths of a pJ/bit/port, wires ~0.1-0.2 pJ/bit/mm, SRAM cell
   area ~0.6 um^2/bit.  The comparisons in this project depend only on
   monotone trends (more VCs -> more buffers -> more power/area), which
   these constants preserve. *)
let default_65nm =
  {
    voltage_v = 1.1;
    frequency_hz = 1.0e9;
    flit_bits = 32;
    buffer_depth = 4;
    e_buffer_pj_per_bit = 0.05;
    e_crossbar_pj_per_bit_port = 0.01;
    e_arbiter_pj_per_req = 0.3;
    e_wire_pj_per_bit_mm = 0.15;
    e_clock_fj_per_bit_cycle = 3.0;
    p_leak_buffer_nw_per_bit = 25.0;
    p_leak_crossbar_nw_per_bit_port2 = 0.4;
    p_leak_arbiter_nw_per_port = 150.0;
    a_buffer_um2_per_bit = 28.0;
    a_crossbar_um2_per_bit_port2 = 5.0;
    a_arbiter_um2_per_port_vc = 120.0;
    a_wire_um2_per_bit_mm = 12.0;
  }

(* One-node scalings, first order: dynamic energy ~ C*V^2 shrinks ~0.55x
   per node; cell area ~0.5x; leakage density grows as oxides thin. *)
let scaled_90nm =
  {
    default_65nm with
    voltage_v = 1.2;
    frequency_hz = 0.8e9;
    e_buffer_pj_per_bit = default_65nm.e_buffer_pj_per_bit /. 0.55;
    e_crossbar_pj_per_bit_port = default_65nm.e_crossbar_pj_per_bit_port /. 0.55;
    e_arbiter_pj_per_req = default_65nm.e_arbiter_pj_per_req /. 0.55;
    e_wire_pj_per_bit_mm = default_65nm.e_wire_pj_per_bit_mm /. 0.7;
    e_clock_fj_per_bit_cycle = default_65nm.e_clock_fj_per_bit_cycle /. 0.55;
    p_leak_buffer_nw_per_bit = default_65nm.p_leak_buffer_nw_per_bit *. 0.4;
    a_buffer_um2_per_bit = default_65nm.a_buffer_um2_per_bit /. 0.5;
    a_crossbar_um2_per_bit_port2 = default_65nm.a_crossbar_um2_per_bit_port2 /. 0.5;
    a_arbiter_um2_per_port_vc = default_65nm.a_arbiter_um2_per_port_vc /. 0.5;
    a_wire_um2_per_bit_mm = default_65nm.a_wire_um2_per_bit_mm /. 0.7;
  }

let scaled_45nm =
  {
    default_65nm with
    voltage_v = 1.0;
    frequency_hz = 1.5e9;
    e_buffer_pj_per_bit = default_65nm.e_buffer_pj_per_bit *. 0.55;
    e_crossbar_pj_per_bit_port = default_65nm.e_crossbar_pj_per_bit_port *. 0.55;
    e_arbiter_pj_per_req = default_65nm.e_arbiter_pj_per_req *. 0.55;
    e_wire_pj_per_bit_mm = default_65nm.e_wire_pj_per_bit_mm *. 0.7;
    e_clock_fj_per_bit_cycle = default_65nm.e_clock_fj_per_bit_cycle *. 0.55;
    p_leak_buffer_nw_per_bit = default_65nm.p_leak_buffer_nw_per_bit *. 2.5;
    a_buffer_um2_per_bit = default_65nm.a_buffer_um2_per_bit *. 0.5;
    a_crossbar_um2_per_bit_port2 = default_65nm.a_crossbar_um2_per_bit_port2 *. 0.5;
    a_arbiter_um2_per_port_vc = default_65nm.a_arbiter_um2_per_port_vc *. 0.5;
    a_wire_um2_per_bit_mm = default_65nm.a_wire_um2_per_bit_mm *. 0.7;
  }

let link_capacity_mbps p =
  (* One flit per cycle; flit_bits/8 bytes per flit; report MB/s. *)
  p.frequency_hz *. float_of_int p.flit_bits /. 8. /. 1.0e6
