(** Per-switch power and area.  A switch has one input port per
    incoming link plus a local injection port, one output port per
    outgoing link plus a local ejection port; each network input port
    carries as many VC buffers as its link has VCs, the local port one.

    Dynamic power scales with the switch's traffic (flit arrival rate
    derived from the routed bandwidths); leakage and area scale with
    the instantiated structures — which is where extra VCs hurt. *)

open Noc_model

type breakdown = {
  switch : Ids.Switch.t;
  in_ports : int;
  out_ports : int;
  vc_buffers : int;  (** Total VC FIFOs across input ports. *)
  dynamic_mw : float;
  leakage_mw : float;
  area_um2 : float;
}

val analyze : Params.t -> Network.t -> Ids.Switch.t -> breakdown
(** Power/area of one switch under the network's routed traffic. *)

val total_mw : breakdown -> float

val pp_breakdown : Format.formatter -> breakdown -> unit
