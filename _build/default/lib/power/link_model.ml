open Noc_model

type breakdown = {
  link : Ids.Link.t;
  length_mm : float;
  dynamic_mw : float;
  area_um2 : float;
}

let analyze (p : Params.t) floorplan net l =
  let length_mm = Noc_synth.Floorplan.link_length_mm floorplan l in
  let bits_per_s = Network.link_load net l *. 1.0e6 *. 8. in
  let dynamic_mw =
    bits_per_s *. p.Params.e_wire_pj_per_bit_mm *. length_mm /. 1.0e9
  in
  let area_um2 =
    float_of_int p.Params.flit_bits *. p.Params.a_wire_um2_per_bit_mm *. length_mm
  in
  { link = l; length_mm; dynamic_mw; area_um2 }

let pp_breakdown ppf b =
  Format.fprintf ppf "%a: %.1f mm, %.3f mW, %.0f um^2" Ids.Link.pp b.link
    b.length_mm b.dynamic_mw b.area_um2
