lib/power/flow_energy.mli: Format Ids Network Noc_model Params
