lib/power/flow_energy.ml: Channel Format Ids List Network Noc_model Noc_synth Params Route Topology Traffic
