lib/power/params.ml:
