lib/power/link_model.ml: Format Ids Network Noc_model Noc_synth Params
