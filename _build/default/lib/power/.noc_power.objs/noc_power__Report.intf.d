lib/power/report.mli: Format Link_model Network Noc_model Params Switch_model
