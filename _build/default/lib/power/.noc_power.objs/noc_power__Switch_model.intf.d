lib/power/switch_model.mli: Format Ids Network Noc_model Params
