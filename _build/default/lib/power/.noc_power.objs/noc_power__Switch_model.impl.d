lib/power/switch_model.ml: Channel Format Ids List Network Noc_model Params Topology Traffic
