lib/power/params.mli:
