lib/power/report.ml: Format Ids Link_model List Network Noc_model Noc_synth Params Switch_model Topology
