lib/power/link_model.mli: Format Ids Network Noc_model Noc_synth Params
