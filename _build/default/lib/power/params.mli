(** Technology and microarchitecture parameters of the power/area
    model.  Defaults are calibrated to the order of magnitude of
    ORION 2.0 at 65 nm / 1.1 V / 1 GHz with 32-bit flits and 4-flit VC
    buffers: a 5x5 router at moderate load lands in the
    single-digit-milliwatt range, with buffers the dominant term — the
    property the paper's VC-count comparisons rely on. *)

type t = {
  voltage_v : float;
  frequency_hz : float;
  flit_bits : int;
  buffer_depth : int;  (** Flits per VC buffer. *)
  (* Dynamic energy coefficients. *)
  e_buffer_pj_per_bit : float;
      (** Write + read energy per bit through a VC FIFO. *)
  e_crossbar_pj_per_bit_port : float;
      (** Per bit and per (in+out)-port of the crossbar. *)
  e_arbiter_pj_per_req : float;  (** Per allocation request. *)
  e_wire_pj_per_bit_mm : float;  (** Link traversal per bit per mm. *)
  e_clock_fj_per_bit_cycle : float;
      (** Clock power of buffer storage cells: every buffer bit burns
          this much per cycle whether or not traffic flows (ORION 2.0
          models clock power as a first-class, often dominant term).
          This is what makes an unused extra VC expensive. *)
  (* Leakage power coefficients. *)
  p_leak_buffer_nw_per_bit : float;
  p_leak_crossbar_nw_per_bit_port2 : float;
      (** Per bit of datapath width and per (in*out) port product. *)
  p_leak_arbiter_nw_per_port : float;
  (* Area coefficients. *)
  a_buffer_um2_per_bit : float;
  a_crossbar_um2_per_bit_port2 : float;
  a_arbiter_um2_per_port_vc : float;
  a_wire_um2_per_bit_mm : float;  (** Repeater/driver area. *)
}

val default_65nm : t

val scaled_90nm : t
(** 65 nm constants scaled up one node: higher dynamic energy and
    area, lower leakage density, 0.8 GHz. *)

val scaled_45nm : t
(** 65 nm constants scaled down one node: lower dynamic energy and
    area, markedly higher leakage density, 1.5 GHz. *)

val link_capacity_mbps : t -> float
(** Peak bandwidth of one link: one flit per cycle, in MB/s. *)
