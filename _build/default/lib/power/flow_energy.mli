(** Per-flow energy accounting: how many picojoules each transferred
    bit of a flow costs along its route (buffers, crossbars, wires),
    and therefore which flows dominate the NoC's dynamic power.  The
    classic use is ranking candidates for remapping onto shorter
    paths. *)

open Noc_model

type flow_cost = {
  flow : Ids.Flow.t;
  hops : int;
  energy_pj_per_bit : float;  (** Route traversal cost for one bit. *)
  power_mw : float;  (** At the flow's demanded bandwidth. *)
}

type t = {
  flows : flow_cost list;  (** Flow-id order. *)
  total_dynamic_mw : float;
}

val of_network : ?params:Params.t -> Network.t -> t

val ranked : t -> flow_cost list
(** Flows by descending power. *)

val pp : Format.formatter -> t -> unit
