open Noc_model

type breakdown = {
  switch : Ids.Switch.t;
  in_ports : int;
  out_ports : int;
  vc_buffers : int;
  dynamic_mw : float;
  leakage_mw : float;
  area_um2 : float;
}

let analyze (p : Params.t) net s =
  let topo = Network.topology net in
  let in_links = Topology.in_links topo s in
  let out_links = Topology.out_links topo s in
  let in_ports = List.length in_links + 1 in
  let out_ports = List.length out_links + 1 in
  let vc_buffers =
    1
    + List.fold_left
        (fun acc (l : Topology.link) -> acc + Topology.vc_count topo l.Topology.id)
        0 in_links
  in
  let flit_bits = float_of_int p.Params.flit_bits in
  let buffer_bits =
    float_of_int (vc_buffers * p.Params.buffer_depth) *. flit_bits
  in
  (* Traffic through the switch: every flit arriving on an input link
     is written into and read out of a buffer, crosses the crossbar and
     requests the allocator once. *)
  let arriving_mbps =
    List.fold_left
      (fun acc (l : Topology.link) -> acc +. Network.link_load net l.Topology.id)
      0. in_links
  in
  (* Locally injected traffic also crosses the crossbar. *)
  let injected_mbps =
    List.fold_left
      (fun acc (f : Traffic.flow) ->
        match Network.route net f.Traffic.id with
        | first :: _ ->
            let l = Topology.link topo (Channel.link first) in
            if Ids.Switch.equal l.Topology.src s then acc +. f.Traffic.bandwidth
            else acc
        | [] -> acc)
      0.
      (Traffic.flows (Network.traffic net))
  in
  let bits_per_s mbps = mbps *. 1.0e6 *. 8. in
  let flits_per_s mbps = bits_per_s mbps /. flit_bits in
  let dynamic_pj_per_s =
    (bits_per_s arriving_mbps *. p.Params.e_buffer_pj_per_bit)
    +. bits_per_s (arriving_mbps +. injected_mbps)
       *. p.Params.e_crossbar_pj_per_bit_port
       *. float_of_int (in_ports + out_ports)
    +. flits_per_s (arriving_mbps +. injected_mbps) *. p.Params.e_arbiter_pj_per_req
  in
  let dynamic_mw = dynamic_pj_per_s /. 1.0e9 in
  (* Load-independent power: storage-cell clocking plus leakage.  This
     is the term through which every extra VC buffer costs power even
     when no flit ever rides it. *)
  let clock_mw =
    buffer_bits *. p.Params.e_clock_fj_per_bit_cycle *. p.Params.frequency_hz
    /. 1.0e12
  in
  let leakage_mw =
    clock_mw
    +. (buffer_bits *. p.Params.p_leak_buffer_nw_per_bit
    +. flit_bits
       *. float_of_int (in_ports * out_ports)
       *. p.Params.p_leak_crossbar_nw_per_bit_port2
    +. float_of_int (in_ports + out_ports) *. p.Params.p_leak_arbiter_nw_per_port)
    /. 1.0e6
  in
  let area_um2 =
    (buffer_bits *. p.Params.a_buffer_um2_per_bit)
    +. flit_bits
       *. float_of_int (in_ports * out_ports)
       *. p.Params.a_crossbar_um2_per_bit_port2
    +. float_of_int (vc_buffers * (in_ports + out_ports))
       *. p.Params.a_arbiter_um2_per_port_vc
  in
  { switch = s; in_ports; out_ports; vc_buffers; dynamic_mw; leakage_mw; area_um2 }

let total_mw b = b.dynamic_mw +. b.leakage_mw

let pp_breakdown ppf b =
  Format.fprintf ppf
    "%a: %dx%d ports, %d VC buffers, %.3f mW dyn + %.3f mW leak, %.0f um^2"
    Ids.Switch.pp b.switch b.in_ports b.out_ports b.vc_buffers b.dynamic_mw
    b.leakage_mw b.area_um2
