open Noc_model

type t = {
  switch_dynamic_mw : float;
  switch_leakage_mw : float;
  link_dynamic_mw : float;
  total_power_mw : float;
  switch_area_mm2 : float;
  link_area_mm2 : float;
  total_area_mm2 : float;
  total_vcs : int;
  switches : Switch_model.breakdown list;
  links : Link_model.breakdown list;
}

let of_network ?(params = Params.default_65nm) net =
  let topo = Network.topology net in
  let floorplan = Noc_synth.Floorplan.make topo in
  let switches =
    List.init (Topology.n_switches topo) (fun i ->
        Switch_model.analyze params net (Ids.Switch.of_int i))
  in
  let links =
    List.map
      (fun (l : Topology.link) -> Link_model.analyze params floorplan net l.Topology.id)
      (Topology.links topo)
  in
  let sum f xs = List.fold_left (fun acc x -> acc +. f x) 0. xs in
  let switch_dynamic_mw = sum (fun b -> b.Switch_model.dynamic_mw) switches in
  let switch_leakage_mw = sum (fun b -> b.Switch_model.leakage_mw) switches in
  let link_dynamic_mw = sum (fun b -> b.Link_model.dynamic_mw) links in
  let switch_area_mm2 = sum (fun b -> b.Switch_model.area_um2) switches /. 1.0e6 in
  let link_area_mm2 = sum (fun b -> b.Link_model.area_um2) links /. 1.0e6 in
  {
    switch_dynamic_mw;
    switch_leakage_mw;
    link_dynamic_mw;
    total_power_mw = switch_dynamic_mw +. switch_leakage_mw +. link_dynamic_mw;
    switch_area_mm2;
    link_area_mm2;
    total_area_mm2 = switch_area_mm2 +. link_area_mm2;
    total_vcs = Topology.total_vcs topo;
    switches;
    links;
  }

let pp_summary ppf r =
  Format.fprintf ppf
    "power %.3f mW (switch dyn %.3f + leak %.3f + links %.3f), area %.4f mm^2, %d VCs"
    r.total_power_mw r.switch_dynamic_mw r.switch_leakage_mw r.link_dynamic_mw
    r.total_area_mm2 r.total_vcs

let pp ppf r =
  Format.fprintf ppf "@[<v>%a" pp_summary r;
  List.iter
    (fun b -> Format.fprintf ppf "@,  %a" Switch_model.pp_breakdown b)
    r.switches;
  List.iter (fun b -> Format.fprintf ppf "@,  %a" Link_model.pp_breakdown b) r.links;
  Format.fprintf ppf "@]"
