open Noc_model

type flow_cost = {
  flow : Ids.Flow.t;
  hops : int;
  energy_pj_per_bit : float;
  power_mw : float;
}

type t = { flows : flow_cost list; total_dynamic_mw : float }

let of_network ?(params = Params.default_65nm) net =
  let topo = Network.topology net in
  let floorplan = Noc_synth.Floorplan.make topo in
  (* Energy for one bit to traverse one hop: buffer write+read at the
     downstream switch, crossbar pass, arbiter share, plus the wire. *)
  let hop_energy c =
    let link = Channel.link c in
    let info = Topology.link topo link in
    let downstream = info.Topology.dst in
    let in_ports = List.length (Topology.in_links topo downstream) + 1 in
    let out_ports = List.length (Topology.out_links topo downstream) + 1 in
    let wire =
      params.Params.e_wire_pj_per_bit_mm
      *. Noc_synth.Floorplan.link_length_mm floorplan link
    in
    let arbiter_per_bit =
      params.Params.e_arbiter_pj_per_req /. float_of_int params.Params.flit_bits
    in
    params.Params.e_buffer_pj_per_bit
    +. (params.Params.e_crossbar_pj_per_bit_port *. float_of_int (in_ports + out_ports))
    +. arbiter_per_bit +. wire
  in
  let cost (f : Traffic.flow) =
    let route = Network.route net f.Traffic.id in
    let energy_pj_per_bit =
      List.fold_left (fun acc c -> acc +. hop_energy c) 0. route
    in
    let bits_per_s = f.Traffic.bandwidth *. 1.0e6 *. 8. in
    {
      flow = f.Traffic.id;
      hops = Route.length route;
      energy_pj_per_bit;
      power_mw = bits_per_s *. energy_pj_per_bit /. 1.0e9;
    }
  in
  let flows = List.map cost (Traffic.flows (Network.traffic net)) in
  {
    flows;
    total_dynamic_mw = List.fold_left (fun acc c -> acc +. c.power_mw) 0. flows;
  }

let ranked t =
  List.sort
    (fun a b ->
      match compare b.power_mw a.power_mw with
      | 0 -> Ids.Flow.compare a.flow b.flow
      | c -> c)
    t.flows

let pp ppf t =
  Format.fprintf ppf "@[<v>per-flow dynamic power (total %.3f mW):"
    t.total_dynamic_mw;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  %a: %d hops, %.2f pJ/bit, %.3f mW" Ids.Flow.pp
        c.flow c.hops c.energy_pj_per_bit c.power_mw)
    (ranked t);
  Format.fprintf ppf "@]"
