(** Breadth-first and depth-first traversals over {!Digraph.t}. *)

val bfs_distances : Digraph.t -> int -> int array
(** [bfs_distances g src] is an array [d] with [d.(v)] the number of
    edges on a shortest path from [src] to [v], or [-1] when [v] is
    unreachable. *)

val bfs_order : Digraph.t -> int -> int list
(** Vertices reachable from [src] in BFS discovery order (includes
    [src] itself, first). *)

val shortest_path : Digraph.t -> int -> int -> int list option
(** [shortest_path g src dst] is a minimum-edge-count path
    [[src; ...; dst]], or [None] if [dst] is unreachable.  When
    [src = dst] the path is [[src]] (zero edges). *)

val dfs_postorder : Digraph.t -> int list
(** Postorder of a DFS forest covering every vertex (roots scanned in
    increasing id order).  The head of the list finished first. *)

val reachable : Digraph.t -> int -> bool array
(** [reachable g src] marks every vertex reachable from [src]
    (including [src]). *)

val is_reachable : Digraph.t -> int -> int -> bool
(** [is_reachable g u v] is [true] iff a directed path [u ->* v]
    exists (trivially true for [u = v]). *)
