let has_cycle g =
  let non_trivial = Scc.non_trivial g in
  non_trivial <> []

(* DFS with colors; on meeting a grey vertex we unwind the explicit
   path stack to extract the cycle. *)
let find_any g =
  let n = Digraph.n_vertices g in
  let color = Array.make n 0 in
  (* 0 white, 1 grey, 2 black *)
  let cycle = ref None in
  let rec walk path u =
    color.(u) <- 1;
    let path = u :: path in
    let check v =
      if !cycle = None then
        if color.(v) = 1 then begin
          (* [path] is [u; ...; v; ...]; the cycle is v ... u. *)
          let rec take acc = function
            | [] -> acc
            | w :: ws -> if w = v then w :: acc else take (w :: acc) ws
          in
          cycle := Some (take [] path)
        end
        else if color.(v) = 0 then walk path v
    in
    Digraph.iter_succ check g u;
    color.(u) <- 2
  in
  let try_root v = if color.(v) = 0 && !cycle = None then walk [] v in
  Digraph.iter_vertices try_root g;
  !cycle

let shortest_through g v =
  (* Shortest cycle through v = 1 + shortest path from some successor
     of v back to v.  A single BFS from v over the whole graph would
     not find the path *ending* at v, so we search from v and read the
     parent chain when v is re-entered. *)
  if Digraph.mem_edge g v v then Some [ v ]
  else begin
    let best = ref None in
    let consider s =
      match Traversal.shortest_path g s v with
      | None -> ()
      | Some path ->
          let len = List.length path in
          let better =
            match !best with None -> true | Some b -> len < List.length b
          in
          if better then best := Some path
    in
    List.iter consider (List.sort compare (Digraph.succ g v));
    match !best with
    | None -> None
    | Some path -> Some (v :: List.filter (fun w -> w <> v) path)
  end

let cycle_length = List.length

let shortest g =
  (* Restrict the search to vertices inside non-trivial SCCs: every
     cycle lives entirely within one SCC, so other vertices cannot
     start one. *)
  let candidates = List.sort compare (List.concat (Scc.non_trivial g)) in
  let pick best v =
    match shortest_through g v with
    | None -> best
    | Some c -> (
        match best with
        | None -> Some c
        | Some b ->
            if cycle_length c < cycle_length b then Some c else best)
  in
  List.fold_left pick None candidates

let girth g = Option.map cycle_length (shortest g)

(* Johnson's elementary-cycle enumeration, bounded. *)
let enumerate ?(max_cycles = 10_000) g =
  let n = Digraph.n_vertices g in
  let results = ref [] in
  let count = ref 0 in
  let blocked = Array.make n false in
  let b_sets = Array.make n [] in
  let stack = ref [] in
  let exception Done in
  let rec unblock v =
    if blocked.(v) then begin
      blocked.(v) <- false;
      let deps = b_sets.(v) in
      b_sets.(v) <- [];
      List.iter unblock deps
    end
  in
  let normalize cycle =
    (* Rotate so the smallest vertex leads: canonical form for
       deduplication and stable test expectations. *)
    let arr = Array.of_list cycle in
    let k = Array.length arr in
    let min_pos = ref 0 in
    for i = 1 to k - 1 do
      if arr.(i) < arr.(!min_pos) then min_pos := i
    done;
    List.init k (fun i -> arr.((i + !min_pos) mod k))
  in
  let emit cycle =
    results := normalize cycle :: !results;
    incr count;
    if !count >= max_cycles then raise Done
  in
  let rec circuit s allowed v =
    let found = ref false in
    blocked.(v) <- true;
    stack := v :: !stack;
    let explore w =
      if w >= s && allowed w then
        if w = s then begin
          emit (List.rev !stack);
          found := true
        end
        else if not blocked.(w) then
          if circuit s allowed w then found := true
    in
    Digraph.iter_succ explore g v;
    if !found then unblock v
    else
      Digraph.iter_succ
        (fun w ->
          if w >= s && allowed w && not (List.mem v b_sets.(w)) then
            b_sets.(w) <- v :: b_sets.(w))
        g v;
    (match !stack with
    | w :: rest when w = v -> stack := rest
    | _ -> assert false);
    !found
  in
  (try
     for s = 0 to n - 1 do
       (* Only consider the SCC of s in the subgraph induced by
          vertices >= s; the [w >= s] guards in [circuit] realize the
          induced-subgraph restriction, and the SCC pre-check below
          keeps the allowed set tight. *)
       Array.fill blocked 0 n false;
       Array.fill b_sets 0 n [];
       stack := [];
       let allowed w = w >= s in
       if List.exists (fun w -> w >= s) (Digraph.succ g s) || Digraph.mem_edge g s s
       then ignore (circuit s allowed s)
     done
   with Done -> ());
  List.rev !results
