lib/graph/max_flow.ml: Array Digraph List Queue
