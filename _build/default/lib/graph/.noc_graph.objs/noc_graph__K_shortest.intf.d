lib/graph/k_shortest.mli: Digraph
