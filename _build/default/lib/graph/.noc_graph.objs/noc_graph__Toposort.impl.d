lib/graph/toposort.ml: Array Digraph Int List Set
