lib/graph/paths.ml: Array Digraph Set Traversal
