lib/graph/cycles.ml: Array Digraph List Option Scc Traversal
