lib/graph/max_flow.mli: Digraph
