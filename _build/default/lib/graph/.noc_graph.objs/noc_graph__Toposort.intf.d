lib/graph/toposort.mli: Digraph
