lib/graph/k_shortest.ml: Array Digraph Hashtbl List Paths Set
