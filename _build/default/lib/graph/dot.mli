(** Graphviz (DOT) rendering of directed graphs, for inspecting
    topologies and channel dependency graphs visually. *)

val render :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?edge_attrs:(int -> int -> (string * string) list) ->
  Digraph.t ->
  string
(** [render g] is a complete [digraph { ... }] document.  Labels
    default to vertex numbers; attribute callbacks may add styling
    (e.g. [("color", "red")]).  Output is deterministic: vertices in
    id order, edges in [iter_edges] order. *)

val output :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?edge_attrs:(int -> int -> (string * string) list) ->
  out_channel ->
  Digraph.t ->
  unit
(** Same, writing to a channel. *)
