module Int_set = Set.Make (Int)

let sort g =
  let n = Digraph.n_vertices g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges (fun _ v -> indeg.(v) <- indeg.(v) + 1) g;
  let ready = ref Int_set.empty in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then ready := Int_set.add v !ready
  done;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Int_set.is_empty !ready) do
    let v = Int_set.min_elt !ready in
    ready := Int_set.remove v !ready;
    order := v :: !order;
    incr emitted;
    let release w =
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then ready := Int_set.add w !ready
    in
    Digraph.iter_succ release g v
  done;
  if !emitted = n then Some (List.rev !order) else None

let is_acyclic g = sort g <> None

let layers g =
  match sort g with
  | None -> None
  | Some order ->
      let n = Digraph.n_vertices g in
      let depth = Array.make n 0 in
      let deepen u =
        Digraph.iter_succ
          (fun v -> if depth.(v) < depth.(u) + 1 then depth.(v) <- depth.(u) + 1)
          g u
      in
      List.iter deepen order;
      let max_depth = Array.fold_left max 0 depth in
      let buckets = Array.make (if n = 0 then 1 else max_depth + 1) [] in
      for v = n - 1 downto 0 do
        buckets.(depth.(v)) <- v :: buckets.(depth.(v))
      done;
      Some (if n = 0 then [] else Array.to_list buckets)
