type result = { component : int array; count : int }

(* Iterative Tarjan.  Each stack frame carries the vertex and the list
   of successors still to examine; [low] is folded back into the parent
   frame when a child finishes. *)
let compute g =
  let n = Digraph.n_vertices g in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    if index.(root) < 0 then begin
      let frames = ref [ (root, Digraph.succ g root) ] in
      index.(root) <- !next_index;
      low.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (u, next) :: rest -> (
            match next with
            | v :: vs ->
                frames := (u, vs) :: rest;
                if index.(v) < 0 then begin
                  index.(v) <- !next_index;
                  low.(v) <- !next_index;
                  incr next_index;
                  stack := v :: !stack;
                  on_stack.(v) <- true;
                  frames := (v, Digraph.succ g v) :: !frames
                end
                else if on_stack.(v) then low.(u) <- min low.(u) index.(v)
            | [] ->
                if low.(u) = index.(u) then begin
                  let rec pop () =
                    match !stack with
                    | [] -> assert false
                    | w :: ws ->
                        stack := ws;
                        on_stack.(w) <- false;
                        comp.(w) <- !next_comp;
                        if w <> u then pop ()
                  in
                  pop ();
                  incr next_comp
                end;
                frames := rest;
                (match rest with
                | (p, _) :: _ -> low.(p) <- min low.(p) low.(u)
                | [] -> ()))
      done
    end
  in
  Digraph.iter_vertices visit g;
  { component = comp; count = !next_comp }

let components g =
  let { component; count } = compute g in
  let buckets = Array.make count [] in
  for v = Digraph.n_vertices g - 1 downto 0 do
    buckets.(component.(v)) <- v :: buckets.(component.(v))
  done;
  Array.to_list buckets

let condensation g =
  let ({ component; count } as r) = compute g in
  let cg = Digraph.create ~initial_capacity:(max 1 count) () in
  if count > 0 then Digraph.ensure_vertex cg (count - 1);
  let add u v =
    let cu = component.(u) and cv = component.(v) in
    if cu <> cv then Digraph.add_edge cg cu cv
  in
  Digraph.iter_edges add g;
  (r, cg)

let non_trivial g =
  let cyclic = function
    | [ v ] -> Digraph.mem_edge g v v
    | _ :: _ :: _ -> true
    | [] -> false
  in
  List.filter cyclic (components g)
