(** Disjoint sets with union by rank and path compression.  Used by the
    topology synthesizer to guarantee switch-level connectivity. *)

type t

val create : int -> t
(** [create n] is [n] singleton sets [{0} ... {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merge two sets; [true] iff they were distinct before the call. *)

val same : t -> int -> int -> bool
(** [true] iff the two elements are currently in the same set. *)

val n_sets : t -> int
(** Number of distinct sets remaining. *)
