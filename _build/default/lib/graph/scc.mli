(** Strongly connected components (Tarjan's algorithm, iterative). *)

type result = {
  component : int array;  (** [component.(v)] is the SCC id of [v]. *)
  count : int;  (** Number of SCCs; ids are [0 .. count - 1]. *)
}

val compute : Digraph.t -> result
(** SCC decomposition.  Component ids are assigned in reverse
    topological order of the condensation: if there is an edge from
    SCC [a] to SCC [b] (with [a <> b]) then [a > b]. *)

val components : Digraph.t -> int list list
(** The SCCs as explicit vertex lists, indexed by component id. *)

val condensation : Digraph.t -> result * Digraph.t
(** The SCC result together with the condensation graph: one vertex
    per SCC, an edge [a -> b] whenever some original edge crosses from
    component [a] into component [b]. The condensation is acyclic. *)

val non_trivial : Digraph.t -> int list list
(** Only the SCCs that can contain a cycle: size [>= 2], or a single
    vertex carrying a self-loop. *)
