(* Yen's algorithm.  Candidate paths are kept in a sorted set keyed by
   (weight, path) so extraction order is deterministic. *)

module Candidates = Set.Make (struct
  type t = float * int list

  let compare = compare
end)

let yen g ~weight ~k src dst =
  if k < 1 then invalid_arg "K_shortest.yen: k < 1";
  (* Shortest path avoiding a set of edges and a set of vertices. *)
  let restricted_shortest ~banned_edges ~banned_vertices s =
    let n = Digraph.n_vertices g in
    let dist = Array.make n infinity in
    let parent = Array.make n (-1) in
    let module Pq = Set.Make (struct
      type t = float * int

      let compare = compare
    end) in
    dist.(s) <- 0.;
    let pq = ref (Pq.singleton (0., s)) in
    while not (Pq.is_empty !pq) do
      let ((d, u) as top) = Pq.min_elt !pq in
      pq := Pq.remove top !pq;
      if d <= dist.(u) then
        Digraph.iter_succ
          (fun v ->
            if
              (not (Hashtbl.mem banned_edges (u, v)))
              && not (Hashtbl.mem banned_vertices v)
            then begin
              let w = weight u v in
              if w < 0. then raise Paths.Negative_weight;
              let d' = d +. w in
              if d' < dist.(v) then begin
                dist.(v) <- d';
                parent.(v) <- u;
                pq := Pq.add (d', v) !pq
              end
            end)
          g u
    done;
    if dist.(dst) = infinity then None
    else begin
      let rec build v acc = if v = s then v :: acc else build parent.(v) (v :: acc) in
      Some (dist.(dst), build dst [])
    end
  in
  let path_weight path = Paths.path_weight ~weight path in
  let no_bans () = (Hashtbl.create 1, Hashtbl.create 1) in
  match
    let be, bv = no_bans () in
    restricted_shortest ~banned_edges:be ~banned_vertices:bv src
  with
  | None -> []
  | Some (w0, p0) ->
      let accepted = ref [ (w0, p0) ] in
      let candidates = ref Candidates.empty in
      let rec grow () =
        if List.length !accepted >= k then ()
        else begin
          let _, last_path = List.hd !accepted in
          let last = Array.of_list last_path in
          (* Spur from every prefix of the last accepted path. *)
          for i = 0 to Array.length last - 2 do
            let spur = last.(i) in
            let root = Array.to_list (Array.sub last 0 (i + 1)) in
            let banned_edges = Hashtbl.create 8 in
            let banned_vertices = Hashtbl.create 8 in
            (* Ban edges leaving the spur node along any accepted or
               candidate path sharing this root. *)
            let ban_for (_, path) =
              let arr = Array.of_list path in
              if Array.length arr > i + 1 then begin
                let same_root = ref true in
                for j = 0 to i do
                  if arr.(j) <> last.(j) then same_root := false
                done;
                if !same_root then
                  Hashtbl.replace banned_edges (arr.(i), arr.(i + 1)) ()
              end
            in
            List.iter ban_for !accepted;
            Candidates.iter (fun (w, p) -> ban_for (w, p)) !candidates;
            (* Ban root vertices except the spur itself (looplessness). *)
            List.iteri
              (fun j v -> if j < i then Hashtbl.replace banned_vertices v ())
              root;
            (match restricted_shortest ~banned_edges ~banned_vertices spur with
            | None -> ()
            | Some (_, spur_path) ->
                let full =
                  root @ (match spur_path with _ :: rest -> rest | [] -> [])
                in
                let cand = (path_weight full, full) in
                if
                  (not (List.exists (fun (_, p) -> p = full) !accepted))
                  && not (Candidates.mem cand !candidates)
                then candidates := Candidates.add cand !candidates)
          done;
          match Candidates.min_elt_opt !candidates with
          | None -> ()
          | Some best ->
              candidates := Candidates.remove best !candidates;
              accepted := best :: !accepted;
              grow ()
        end
      in
      grow ();
      List.map snd (List.sort compare (List.rev !accepted))
