(** Weighted shortest paths over {!Digraph.t}.

    Weights are supplied as a function on edges, which lets callers
    price a topology link by load, wire length, or uniformly by hop
    without materializing a weighted graph. *)

exception Negative_weight
(** Raised by {!dijkstra} when the weight function returns a negative
    value. *)

val dijkstra :
  Digraph.t -> weight:(int -> int -> float) -> int -> float array * int array
(** [dijkstra g ~weight src] is [(dist, parent)]: [dist.(v)] the
    minimum total weight from [src] to [v] ([infinity] when
    unreachable) and [parent.(v)] the predecessor of [v] on such a
    path ([-1] for [src] and unreachable vertices).
    @raise Negative_weight on a negative edge weight. *)

val shortest_path :
  Digraph.t -> weight:(int -> int -> float) -> int -> int -> int list option
(** Minimum-weight path [[src; ...; dst]], or [None]. *)

val path_weight : weight:(int -> int -> float) -> int list -> float
(** Total weight of a path given as a vertex list; [0.] on paths with
    fewer than two vertices. *)

val eccentricity : Digraph.t -> int -> int
(** Largest finite BFS distance from the vertex (hops); [0] when
    nothing else is reachable. *)

val diameter : Digraph.t -> int
(** Largest finite pairwise hop distance over the whole graph. *)
