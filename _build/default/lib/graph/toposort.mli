(** Topological ordering (Kahn's algorithm). *)

val sort : Digraph.t -> int list option
(** [sort g] is [Some order] with every edge pointing forward in
    [order], or [None] if [g] has a cycle.  Vertices of equal depth
    come out in increasing id order (a min-heap of ready vertices), so
    the result is deterministic. *)

val is_acyclic : Digraph.t -> bool
(** [true] iff [g] has no directed cycle. *)

val layers : Digraph.t -> int list list option
(** Longest-path layering: layer 0 holds the sources, layer [k] the
    vertices whose longest incoming path has [k] edges.  [None] on a
    cyclic graph. *)
