(** K-shortest loopless paths (Yen's algorithm) over {!Digraph.t}.

    Used by the synthesizer to propose alternative routes and by the
    deadlock tooling to look for cycle-avoiding detours before paying
    for a VC. *)

val yen :
  Digraph.t ->
  weight:(int -> int -> float) ->
  k:int ->
  int ->
  int ->
  int list list
(** [yen g ~weight ~k src dst] is up to [k] distinct loopless paths
    from [src] to [dst], ordered by non-decreasing total weight (ties
    broken lexicographically by vertex sequence).  Empty when [dst] is
    unreachable.
    @raise Invalid_argument when [k < 1].
    @raise Paths.Negative_weight on a negative edge weight. *)
