(* Edmonds-Karp on an explicit residual matrix, fine for the few dozen
   switches of a NoC. *)

let residual_setup g ~capacity ~source ~sink =
  let n = Digraph.n_vertices g in
  if source < 0 || source >= n || sink < 0 || sink >= n then
    invalid_arg "Max_flow: vertex out of range";
  if source = sink then invalid_arg "Max_flow: source = sink";
  let residual = Array.make_matrix n n 0. in
  Digraph.iter_edges
    (fun u v ->
      let c = capacity u v in
      if c < 0. then invalid_arg "Max_flow: negative capacity";
      residual.(u).(v) <- residual.(u).(v) +. c)
    g;
  residual

let augment residual n ~source ~sink =
  (* BFS for a shortest augmenting path; returns its bottleneck. *)
  let parent = Array.make n (-1) in
  parent.(source) <- source;
  let q = Queue.create () in
  Queue.add source q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    for v = 0 to n - 1 do
      if parent.(v) < 0 && residual.(u).(v) > 0. then begin
        parent.(v) <- u;
        if v = sink then found := true else Queue.add v q
      end
    done
  done;
  if not !found then None
  else begin
    let rec bottleneck v acc =
      if v = source then acc
      else
        let u = parent.(v) in
        bottleneck u (min acc residual.(u).(v))
    in
    let delta = bottleneck sink infinity in
    let rec apply v =
      if v <> source then begin
        let u = parent.(v) in
        residual.(u).(v) <- residual.(u).(v) -. delta;
        residual.(v).(u) <- residual.(v).(u) +. delta;
        apply u
      end
    in
    apply sink;
    Some delta
  end

let max_flow g ~capacity ~source ~sink =
  let n = Digraph.n_vertices g in
  let residual = residual_setup g ~capacity ~source ~sink in
  let rec pump total =
    match augment residual n ~source ~sink with
    | Some delta -> pump (total +. delta)
    | None -> total
  in
  pump 0.

let min_cut g ~capacity ~source ~sink =
  let n = Digraph.n_vertices g in
  let residual = residual_setup g ~capacity ~source ~sink in
  let rec pump total =
    match augment residual n ~source ~sink with
    | Some delta -> pump (total +. delta)
    | None -> total
  in
  let value = pump 0. in
  (* Source side = residual-reachable vertices. *)
  let side = Array.make n false in
  let q = Queue.create () in
  side.(source) <- true;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for v = 0 to n - 1 do
      if (not side.(v)) && residual.(u).(v) > 0. then begin
        side.(v) <- true;
        Queue.add v q
      end
    done
  done;
  let cut =
    List.filter (fun (u, v) -> side.(u) && not side.(v)) (Digraph.edges g)
  in
  (value, cut)
