(* Adjacency is stored twice (successors and predecessors) so that the
   cycle-breaking passes, which walk the CDG in both directions, pay the
   same cost either way.  Lists are kept sorted-by-insertion; membership
   is answered by a hash set of packed edge keys to keep [mem_edge] and
   duplicate-insertion O(1). *)

type t = {
  mutable n : int;
  mutable succ : int list array;
  mutable pred : int list array;
  edge_set : (int * int, unit) Hashtbl.t;
  mutable m : int;
}

let create ?(initial_capacity = 16) () =
  let cap = max 1 initial_capacity in
  {
    n = 0;
    succ = Array.make cap [];
    pred = Array.make cap [];
    edge_set = Hashtbl.create (4 * cap);
    m = 0;
  }

let n_vertices g = g.n
let n_edges g = g.m

let grow g needed =
  let cap = Array.length g.succ in
  if needed > cap then begin
    let cap' =
      let rec next c = if c >= needed then c else next (2 * c) in
      next (max 1 cap)
    in
    let succ' = Array.make cap' [] and pred' = Array.make cap' [] in
    Array.blit g.succ 0 succ' 0 g.n;
    Array.blit g.pred 0 pred' 0 g.n;
    g.succ <- succ';
    g.pred <- pred'
  end

let add_vertex g =
  let v = g.n in
  grow g (v + 1);
  g.n <- v + 1;
  v

let ensure_vertex g v =
  if v < 0 then invalid_arg "Digraph.ensure_vertex: negative vertex";
  if v >= g.n then begin
    grow g (v + 1);
    g.n <- v + 1
  end

let mem_edge g u v = Hashtbl.mem g.edge_set (u, v)

let add_edge g u v =
  ensure_vertex g u;
  ensure_vertex g v;
  if not (mem_edge g u v) then begin
    Hashtbl.replace g.edge_set (u, v) ();
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.m <- g.m + 1
  end

let remove_edge g u v =
  if u < g.n && v < g.n && mem_edge g u v then begin
    Hashtbl.remove g.edge_set (u, v);
    g.succ.(u) <- List.filter (fun w -> w <> v) g.succ.(u);
    g.pred.(v) <- List.filter (fun w -> w <> u) g.pred.(v);
    g.m <- g.m - 1
  end

let check_vertex g v name =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Digraph.%s: vertex %d out of range" name v)

let succ g v =
  check_vertex g v "succ";
  g.succ.(v)

let pred g v =
  check_vertex g v "pred";
  g.pred.(v)

let out_degree g v = List.length (succ g v)
let in_degree g v = List.length (pred g v)
let iter_succ f g v = List.iter f (succ g v)
let iter_pred f g v = List.iter f (pred g v)

let iter_vertices f g =
  for v = 0 to g.n - 1 do
    f v
  done

let fold_vertices f init g =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (List.rev g.succ.(u))
  done

let fold_edges f init g =
  let acc = ref init in
  iter_edges (fun u v -> acc := f !acc u v) g;
  !acc

let edges g = List.rev (fold_edges (fun acc u v -> (u, v) :: acc) [] g)

let of_edges ?(n = 0) es =
  let g = create ~initial_capacity:(max n 16) () in
  if n > 0 then ensure_vertex g (n - 1);
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g =
  let g' = create ~initial_capacity:(Array.length g.succ) () in
  g'.n <- g.n;
  Array.blit g.succ 0 g'.succ 0 g.n;
  Array.blit g.pred 0 g'.pred 0 g.n;
  Hashtbl.iter (fun k () -> Hashtbl.replace g'.edge_set k ()) g.edge_set;
  g'.m <- g.m;
  g'

let transpose g =
  let g' = create ~initial_capacity:(max 1 g.n) () in
  if g.n > 0 then ensure_vertex g' (g.n - 1);
  iter_edges (fun u v -> add_edge g' v u) g;
  g'

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d vertices, %d edges" g.n g.m;
  iter_edges (fun u v -> Format.fprintf ppf "@,%d -> %d" u v) g;
  Format.fprintf ppf "@]"
