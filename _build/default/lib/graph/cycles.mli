(** Cycle detection and search.

    A cycle is represented as the list of its vertices in traversal
    order, [[c1; c2; ...; ck]], meaning the edges
    [c1->c2, ..., c(k-1)->ck, ck->c1] are all present.  A self-loop is
    the singleton [[v]]. *)

val has_cycle : Digraph.t -> bool
(** [true] iff the graph contains a directed cycle (including
    self-loops). *)

val find_any : Digraph.t -> int list option
(** Some cycle if one exists; not necessarily the smallest.  Found by
    DFS back-edge detection, so it costs one traversal. *)

val shortest_through : Digraph.t -> int -> int list option
(** [shortest_through g v] is a minimum-length cycle containing [v]
    (BFS from each successor of [v] back to [v]), or [None]. *)

val shortest : Digraph.t -> int list option
(** A globally minimum-length cycle, or [None] when the graph is
    acyclic.  This is the paper's [GetSmallestCycle]: BFS is run from
    every vertex that lies in a non-trivial SCC and the shortest
    returning path wins; ties break towards the smallest starting
    vertex id, making the result deterministic. *)

val enumerate : ?max_cycles:int -> Digraph.t -> int list list
(** All elementary cycles, by Johnson's algorithm, each rotated so its
    smallest vertex comes first; enumeration stops after [max_cycles]
    (default [10_000]) as a safety valve on pathological graphs. *)

val girth : Digraph.t -> int option
(** Length of a shortest cycle, if any. *)
