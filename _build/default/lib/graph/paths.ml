exception Negative_weight

(* A simple pairing of (distance, vertex) in a sorted set works as the
   priority queue; graphs in this project stay small (thousands of
   vertices), so the O(log n) set operations are more than enough. *)
module Pq = Set.Make (struct
  type t = float * int

  let compare = compare
end)

let dijkstra g ~weight src =
  let n = Digraph.n_vertices g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  dist.(src) <- 0.;
  let pq = ref (Pq.singleton (0., src)) in
  while not (Pq.is_empty !pq) do
    let ((d, u) as top) = Pq.min_elt !pq in
    pq := Pq.remove top !pq;
    if d <= dist.(u) then begin
      let relax v =
        let w = weight u v in
        if w < 0. then raise Negative_weight;
        let d' = d +. w in
        if d' < dist.(v) then begin
          dist.(v) <- d';
          parent.(v) <- u;
          pq := Pq.add (d', v) !pq
        end
      in
      Digraph.iter_succ relax g u
    end
  done;
  (dist, parent)

let shortest_path g ~weight src dst =
  let dist, parent = dijkstra g ~weight src in
  if dist.(dst) = infinity then None
  else begin
    let rec build v acc = if v = src then v :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end

let path_weight ~weight path =
  let rec total acc = function
    | u :: (v :: _ as rest) -> total (acc +. weight u v) rest
    | [ _ ] | [] -> acc
  in
  total 0. path

let eccentricity g v =
  let dist = Traversal.bfs_distances g v in
  Array.fold_left (fun acc d -> if d > acc then d else acc) 0 dist

let diameter g =
  let best = ref 0 in
  Digraph.iter_vertices (fun v -> best := max !best (eccentricity g v)) g;
  !best
