(** Maximum flow / minimum cut (Edmonds–Karp).  Used for bisection
    bandwidth and cut-based quality metrics of synthesized
    topologies. *)

val max_flow :
  Digraph.t -> capacity:(int -> int -> float) -> source:int -> sink:int -> float
(** Maximum [source]→[sink] flow under per-edge capacities (queried
    once per edge at the start).  [0.] when no path exists.
    @raise Invalid_argument when [source = sink] or either vertex is
    out of range, or when a capacity is negative. *)

val min_cut :
  Digraph.t ->
  capacity:(int -> int -> float) ->
  source:int ->
  sink:int ->
  float * (int * int) list
(** The min-cut value together with the saturated cut edges
    (source-side to sink-side), in deterministic order. *)
