let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let attrs_to_string = function
  | [] -> ""
  | attrs ->
      let body =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs)
      in
      " [" ^ body ^ "]"

let render ?(name = "g") ?(vertex_label = string_of_int)
    ?(vertex_attrs = fun _ -> []) ?(edge_attrs = fun _ _ -> []) g =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Digraph.iter_vertices
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v
           (escape (vertex_label v))
           (match vertex_attrs v with
           | [] -> ""
           | attrs ->
               ", "
               ^ String.concat ", "
                   (List.map
                      (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v))
                      attrs))))
    g;
  Digraph.iter_edges
    (fun u v ->
      Buffer.add_string b
        (Printf.sprintf "  n%d -> n%d%s;\n" u v (attrs_to_string (edge_attrs u v))))
    g;
  Buffer.add_string b "}\n";
  Buffer.contents b

let output ?name ?vertex_label ?vertex_attrs ?edge_attrs oc g =
  output_string oc (render ?name ?vertex_label ?vertex_attrs ?edge_attrs g)
