open Noc_model
open Noc_synth

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let sw = Fixtures.sw
let core = Fixtures.core

(* ------------------------------------------------------------------ *)
(* Regular generators                                                  *)
(* ------------------------------------------------------------------ *)

let test_ring_shape () =
  let t = Regular.ring ~n_switches:5 in
  check int_c "switches" 5 (Topology.n_switches t);
  check int_c "links" 10 (Topology.n_links t);
  check bool_c "connected" true (Topology.is_connected t);
  check int_c "degree" 4 (Topology.degree t (sw 0))

let test_ring_too_small () =
  Alcotest.check_raises "1 switch"
    (Invalid_argument "Regular.ring: need at least 2 switches") (fun () ->
      ignore (Regular.ring ~n_switches:1))

let test_mesh_shape () =
  let t = Regular.mesh ~columns:3 ~rows:2 in
  check int_c "switches" 6 (Topology.n_switches t);
  (* 3x2 mesh: horizontal 2 per row x 2 rows, vertical 3; all doubled. *)
  check int_c "links" 14 (Topology.n_links t);
  check bool_c "connected" true (Topology.is_connected t);
  (* Corner has degree 2 (bidirectional = 4 endpoints). *)
  check int_c "corner degree" 4 (Topology.degree t (sw 0));
  check int_c "coords" 2 (fst (Regular.mesh_coords ~columns:3 (sw 5)))

let test_torus_wraps () =
  let mesh = Regular.mesh ~columns:3 ~rows:3 in
  let torus = Regular.torus ~columns:3 ~rows:3 in
  (* Torus adds 3 wraps per dimension, bidirectional. *)
  check int_c "extra wrap links" (Topology.n_links mesh + 12) (Topology.n_links torus)

let test_torus_no_duplicate_on_2 () =
  (* Dimension of size 2: wrap would duplicate the mesh link. *)
  let mesh = Regular.mesh ~columns:2 ~rows:3 in
  let torus = Regular.torus ~columns:2 ~rows:3 in
  check int_c "only row wraps added" (Topology.n_links mesh + 4)
    (Topology.n_links torus)

let test_fully_connected () =
  let t = Regular.fully_connected ~n_switches:4 in
  check int_c "n*(n-1) links" 12 (Topology.n_links t)

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let pipeline_traffic n =
  let t = Traffic.create ~n_cores:n in
  for i = 0 to n - 2 do
    ignore (Traffic.add_flow t ~src:(core i) ~dst:(core (i + 1)) ~bandwidth:100.)
  done;
  t

let test_mapping_range_checks () =
  let t = pipeline_traffic 4 in
  Alcotest.check_raises "zero" (Invalid_argument "Mapping.cluster: n_switches <= 0")
    (fun () -> ignore (Mapping.cluster t ~n_switches:0));
  Alcotest.check_raises "too many"
    (Invalid_argument "Mapping.cluster: more switches than cores") (fun () ->
      ignore (Mapping.cluster t ~n_switches:5))

let test_mapping_identity_when_equal () =
  let t = pipeline_traffic 4 in
  let m = Mapping.cluster t ~n_switches:4 in
  (* With as many switches as cores every core gets its own. *)
  let distinct = List.sort_uniq compare (Array.to_list (Array.map Ids.Switch.to_int m)) in
  check int_c "all distinct" 4 (List.length distinct)

let test_mapping_uses_all_switches () =
  let t = pipeline_traffic 12 in
  let m = Mapping.cluster t ~n_switches:5 in
  let used = List.sort_uniq compare (Array.to_list (Array.map Ids.Switch.to_int m)) in
  check int_c "5 switches used" 5 (List.length used)

let test_mapping_groups_heavy_pairs () =
  (* Two chatty pairs and two loners, 2 switches: each pair must share
     a switch. *)
  let t = Traffic.create ~n_cores:4 in
  ignore (Traffic.add_flow t ~src:(core 0) ~dst:(core 1) ~bandwidth:1000.);
  ignore (Traffic.add_flow t ~src:(core 2) ~dst:(core 3) ~bandwidth:1000.);
  ignore (Traffic.add_flow t ~src:(core 0) ~dst:(core 2) ~bandwidth:1.);
  let m = Mapping.cluster t ~n_switches:2 in
  check bool_c "pair 0-1 together" true (Ids.Switch.equal m.(0) m.(1));
  check bool_c "pair 2-3 together" true (Ids.Switch.equal m.(2) m.(3));
  check bool_c "pairs apart" false (Ids.Switch.equal m.(0) m.(2))

let test_mapping_balance_cap () =
  (* A hub talking to everyone must not swallow all cores into one
     cluster: sizes are capped at 2*ceil(n/k). *)
  let t = Traffic.create ~n_cores:12 in
  for i = 1 to 11 do
    ignore (Traffic.add_flow t ~src:(core 0) ~dst:(core i) ~bandwidth:500.)
  done;
  let m = Mapping.cluster t ~n_switches:4 in
  let sizes = Array.make 4 0 in
  Array.iter (fun s -> sizes.(Ids.Switch.to_int s) <- sizes.(Ids.Switch.to_int s) + 1) m;
  Array.iter (fun sz -> check bool_c "cap respected" true (sz <= 6)) sizes

let test_mapping_deterministic () =
  let t1 = pipeline_traffic 10 and t2 = pipeline_traffic 10 in
  let m1 = Mapping.cluster t1 ~n_switches:3 in
  let m2 = Mapping.cluster t2 ~n_switches:3 in
  check bool_c "same result" true (m1 = m2)

let test_intra_cluster_bandwidth () =
  let t = Traffic.create ~n_cores:4 in
  ignore (Traffic.add_flow t ~src:(core 0) ~dst:(core 1) ~bandwidth:100.);
  ignore (Traffic.add_flow t ~src:(core 2) ~dst:(core 3) ~bandwidth:60.);
  let mapping = [| sw 0; sw 0; sw 0; sw 1 |] in
  check (Alcotest.float 1e-9) "only 0-1 internal" 100.
    (Mapping.intra_cluster_bandwidth t mapping)

(* ------------------------------------------------------------------ *)
(* Custom synthesis                                                    *)
(* ------------------------------------------------------------------ *)

let media_spec () =
  match Noc_benchmarks.Registry.find "D26_media" with
  | Some s -> s
  | None -> Alcotest.fail "missing benchmark"

let test_synthesize_valid_design () =
  let spec = media_spec () in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Custom.synthesize_exn traffic ~n_switches:8 in
  Fixtures.check_valid "D26_media@8" net;
  check int_c "8 switches" 8 (Topology.n_switches (Network.topology net))

let test_synthesize_every_flow_routed () =
  let spec = media_spec () in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Custom.synthesize_exn traffic ~n_switches:14 in
  List.iter
    (fun (f : Traffic.flow) ->
      let src, dst = Network.endpoints net f.Traffic.id in
      if not (Ids.Switch.equal src dst) then
        check bool_c "route exists" true (Network.route net f.Traffic.id <> []))
    (Traffic.flows traffic)

let test_synthesize_respects_degree_budget_mostly () =
  (* The budget may be exceeded only by fallback links; on D26_media
     the demand graph is sparse enough that it never is. *)
  let spec = media_spec () in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let options =
    { Custom.default_options with Custom.max_out_degree = 3; max_in_degree = 3 }
  in
  let net = Custom.synthesize_exn ~options traffic ~n_switches:10 in
  Fixtures.check_valid "degree-limited" net

let test_synthesize_deterministic () =
  let spec = media_spec () in
  let t1 = spec.Noc_benchmarks.Spec.build () in
  let t2 = spec.Noc_benchmarks.Spec.build () in
  let n1 = Custom.synthesize_exn t1 ~n_switches:11 in
  let n2 = Custom.synthesize_exn t2 ~n_switches:11 in
  check int_c "same link count" (Topology.n_links (Network.topology n1))
    (Topology.n_links (Network.topology n2));
  check bool_c "same routes" true
    (Validate.routes_equivalent ~before:n1 ~after:n2)

let test_synthesize_switch_count_sweep () =
  let spec = media_spec () in
  List.iter
    (fun n ->
      let traffic = spec.Noc_benchmarks.Spec.build () in
      let net = Custom.synthesize_exn traffic ~n_switches:n in
      Fixtures.check_valid (Printf.sprintf "D26_media@%d" n) net)
    [ 5; 14; 26 ]

(* ------------------------------------------------------------------ *)
(* FM partitioning                                                     *)
(* ------------------------------------------------------------------ *)

let two_cliques_traffic () =
  (* Cores 0-3 and 4-7 chat densely within their group, sparsely
     across: the ideal bipartition is obvious. *)
  let t = Traffic.create ~n_cores:8 in
  let add a b bw = ignore (Traffic.add_flow t ~src:(core a) ~dst:(core b) ~bandwidth:bw) in
  List.iter (fun (a, b) -> add a b 100.) [ (0, 1); (1, 2); (2, 3); (3, 0) ];
  List.iter (fun (a, b) -> add a b 100.) [ (4, 5); (5, 6); (6, 7); (7, 4) ];
  add 0 4 1.;
  t

let test_fm_bipartition_finds_cliques () =
  let t = two_cliques_traffic () in
  let left, right =
    Fm_partition.bipartition t ~cores:[ 0; 1; 2; 3; 4; 5; 6; 7 ] ~max_part:4
  in
  check int_c "balanced" 4 (List.length left);
  check int_c "balanced'" 4 (List.length right);
  (* The cut must be the single weak flow. *)
  check (Alcotest.float 1e-9) "minimal cut" 1. (Fm_partition.cut_bandwidth t left right)

let test_fm_bipartition_validation () =
  let t = two_cliques_traffic () in
  Alcotest.check_raises "too few"
    (Invalid_argument "Fm_partition.bipartition: need at least 2 cores") (fun () ->
      ignore (Fm_partition.bipartition t ~cores:[ 0 ] ~max_part:1));
  Alcotest.check_raises "impossible cap"
    (Invalid_argument "Fm_partition.bipartition: cap makes a legal split impossible")
    (fun () -> ignore (Fm_partition.bipartition t ~cores:[ 0; 1; 2; 3 ] ~max_part:1))

let test_fm_cluster_contract () =
  let t = two_cliques_traffic () in
  let m = Fm_partition.cluster t ~n_switches:4 in
  check int_c "every core mapped" 8 (Array.length m);
  let used =
    List.sort_uniq compare (Array.to_list (Array.map Ids.Switch.to_int m))
  in
  check int_c "all switches used" 4 (List.length used);
  check bool_c "ids in range" true (List.for_all (fun s -> s >= 0 && s < 4) used)

let test_fm_cluster_beats_or_ties_greedy_cut () =
  (* On the clique example, FM's intra-cluster capture should at least
     match the greedy mapper's. *)
  let t = two_cliques_traffic () in
  let fm = Fm_partition.cluster t ~n_switches:2 in
  let greedy = Mapping.cluster t ~n_switches:2 in
  let captured m = Mapping.intra_cluster_bandwidth t m in
  check bool_c "fm captures the cliques" true (captured fm >= captured greedy -. 1e-9);
  check (Alcotest.float 1e-9) "fm optimal here" 800. (captured fm)

let test_fm_cluster_deterministic () =
  let spec =
    match Noc_benchmarks.Registry.find "D26_media" with
    | Some s -> s
    | None -> Alcotest.fail "missing benchmark"
  in
  let a = Fm_partition.cluster (spec.Noc_benchmarks.Spec.build ()) ~n_switches:7 in
  let b = Fm_partition.cluster (spec.Noc_benchmarks.Spec.build ()) ~n_switches:7 in
  check bool_c "identical" true (a = b)

let test_fm_synthesis_end_to_end () =
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> Alcotest.fail "missing benchmark"
  in
  let options = { Custom.default_options with Custom.mapper = Custom.Min_cut } in
  let net =
    Custom.synthesize_exn ~options (spec.Noc_benchmarks.Spec.build ()) ~n_switches:12
  in
  Fixtures.check_valid "min-cut synthesized" net;
  check bool_c "removal works on it" true
    (Noc_deadlock.Removal.run net).Noc_deadlock.Removal.deadlock_free

(* ------------------------------------------------------------------ *)
(* Mesh routing functions                                              *)
(* ------------------------------------------------------------------ *)

let mesh_net columns rows ~vcs =
  let n = columns * rows in
  let topo = Regular.mesh ~columns ~rows in
  if vcs > 1 then
    List.iter
      (fun (l : Topology.link) ->
        for _ = 2 to vcs do
          ignore (Topology.add_vc topo l.Topology.id)
        done)
      (Topology.links topo);
  let traffic = Traffic.create ~n_cores:n in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        ignore (Traffic.add_flow traffic ~src:(core s) ~dst:(core d) ~bandwidth:5.)
    done
  done;
  Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))

let test_xy_static_properties () =
  let net = mesh_net 3 3 ~vcs:1 in
  let rf = Mesh_routing.xy_static ~columns:3 ~rows:3 net in
  (* sw0 -> sw8 (corner to corner): first hop is +x, on VC 0. *)
  (match Routing_function.options rf ~at:(sw 0) ~dst:(sw 8) with
  | [ c ] ->
      let topo = Network.topology net in
      let info = Topology.link topo (Noc_model.Channel.link c) in
      check int_c "x first" 1 (Ids.Switch.to_int info.Topology.dst);
      check int_c "vc 0" 0 (Noc_model.Channel.vc c)
  | l -> Alcotest.failf "expected a single option, got %d" (List.length l));
  check bool_c "connected" true (Routing_function.is_connected rf net = Ok ());
  (* XY is deadlock-free: Duato with every channel as escape. *)
  let v = Noc_deadlock.Duato.check net rf ~escape:Noc_deadlock.Duato.escape_everything in
  check bool_c "XY Duato-free" true v.Noc_deadlock.Duato.deadlock_free

let test_adaptive_escape_structure () =
  let net = mesh_net 3 3 ~vcs:2 in
  let rf = Mesh_routing.adaptive_with_xy_escape ~columns:3 ~rows:3 net in
  (* Corner to opposite corner: 2 minimal directions + 1 escape. *)
  let opts = Routing_function.options rf ~at:(sw 0) ~dst:(sw 8) in
  check int_c "three options" 3 (List.length opts);
  let escapes = List.filter (fun c -> Noc_model.Channel.vc c = 0) opts in
  check int_c "exactly one escape" 1 (List.length escapes);
  (* Duato's condition holds with VC 0 as the escape set. *)
  let v = Noc_deadlock.Duato.check net rf ~escape:(fun c -> Noc_model.Channel.vc c = 0) in
  check bool_c "Duato-free" true v.Noc_deadlock.Duato.deadlock_free

(* ------------------------------------------------------------------ *)
(* Hardening                                                           *)
(* ------------------------------------------------------------------ *)

let test_harden_ring () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  check int_c "four critical links initially" 4
    (List.length (Noc_model.Metrics.critical_links net));
  let r = Harden.run net in
  check int_c "four backups" 4 r.Harden.links_added;
  check int_c "none critical afterwards" 0 r.Harden.remaining_critical;
  (* Routes untouched; the design is still valid and its CDG status is
     unchanged (new links carry nothing). *)
  Fixtures.check_valid "hardened ring" net;
  check int_c "eight links now" 8 (Topology.n_links (Network.topology net))

let test_harden_idempotent () =
  let net = Fixtures.xy_mesh_2x2 () in
  let r = Harden.run net in
  check int_c "robust design untouched" 0 r.Harden.links_added

let test_harden_benchmark () =
  let spec = media_spec () in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Custom.synthesize_exn traffic ~n_switches:14 in
  let r = Harden.run net in
  check int_c "no critical links remain" 0 r.Harden.remaining_critical;
  Fixtures.check_valid "hardened benchmark" net

(* ------------------------------------------------------------------ *)
(* Floorplan                                                           *)
(* ------------------------------------------------------------------ *)

let test_floorplan_grid () =
  let t = Regular.mesh ~columns:3 ~rows:3 in
  let fp = Floorplan.make t in
  check (Alcotest.pair int_c int_c) "switch 4 center" (1, 1)
    (Floorplan.position fp (sw 4));
  check (Alcotest.pair int_c int_c) "switch 8 corner" (2, 2)
    (Floorplan.position fp (sw 8))

let test_floorplan_lengths () =
  let t = Topology.create ~n_switches:4 in
  let l_short = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let l_long = Topology.add_link t ~src:(sw 0) ~dst:(sw 3) in
  let fp = Floorplan.make t in
  (* Grid is 2x2: 0=(0,0), 1=(1,0), 3=(1,1). *)
  check (Alcotest.float 1e-9) "adjacent 1mm" 1.0 (Floorplan.link_length_mm fp l_short);
  check (Alcotest.float 1e-9) "diagonal 2mm" 2.0 (Floorplan.link_length_mm fp l_long);
  check (Alcotest.float 1e-9) "total" 3.0 (Floorplan.total_wire_mm fp)

let test_floorplan_tile_scaling () =
  let t = Topology.create ~n_switches:4 in
  let l = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let fp = Floorplan.make ~tile_mm:2.5 t in
  check (Alcotest.float 1e-9) "scaled" 2.5 (Floorplan.link_length_mm fp l);
  let w, h = Floorplan.bounding_box_mm fp in
  check (Alcotest.float 1e-9) "bbox w" 5.0 w;
  check (Alcotest.float 1e-9) "bbox h" 5.0 h

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let traffic_gen =
  QCheck.Gen.(
    let* n_cores = int_range 4 20 in
    let* n_flows = int_range 3 40 in
    let* pairs =
      list_size (return n_flows)
        (triple (int_bound (n_cores - 1)) (int_bound (n_cores - 1)) (int_range 1 20))
    in
    return (n_cores, pairs))

let build_traffic (n_cores, pairs) =
  let t = Traffic.create ~n_cores in
  List.iter
    (fun (a, b, w) ->
      if a <> b then
        ignore
          (Traffic.add_flow t ~src:(core a) ~dst:(core b)
             ~bandwidth:(10. *. float_of_int w)))
    pairs;
  t

let arbitrary_traffic =
  QCheck.make
    ~print:(fun (n, pairs) ->
      Printf.sprintf "cores=%d flows=%d" n (List.length pairs))
    traffic_gen

let prop_synthesis_always_valid =
  QCheck.Test.make ~name:"synthesis yields valid routable networks" ~count:80
    arbitrary_traffic (fun input ->
      let traffic = build_traffic input in
      let n_cores = Traffic.n_cores traffic in
      let n_switches = max 2 (n_cores / 2) in
      if Traffic.n_flows traffic = 0 then true
      else
        match Custom.synthesize traffic ~n_switches with
        | Ok net -> Validate.is_valid net
        | Error _ -> false)

let prop_mapping_within_range =
  QCheck.Test.make ~name:"mapping targets valid switches and uses them all"
    ~count:80 arbitrary_traffic (fun input ->
      let traffic = build_traffic input in
      let n_cores = Traffic.n_cores traffic in
      let n_switches = max 1 (n_cores / 3) in
      let m = Mapping.cluster traffic ~n_switches in
      let used = List.sort_uniq compare (Array.to_list (Array.map Ids.Switch.to_int m)) in
      List.for_all (fun s -> s >= 0 && s < n_switches) used
      && List.length used = n_switches)

let prop_removal_works_on_synthesized =
  QCheck.Test.make ~name:"removal succeeds on every synthesized design" ~count:60
    arbitrary_traffic (fun input ->
      let traffic = build_traffic input in
      if Traffic.n_flows traffic = 0 then true
      else begin
        let n_switches = max 2 (Traffic.n_cores traffic / 2) in
        let net = Custom.synthesize_exn traffic ~n_switches in
        let report = Noc_deadlock.Removal.run net in
        report.Noc_deadlock.Removal.deadlock_free && Validate.is_valid net
      end)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_synthesis_always_valid; prop_mapping_within_range;
      prop_removal_works_on_synthesized ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "noc_synth"
    [
      ( "regular",
        [
          tc "ring shape" test_ring_shape;
          tc "ring too small" test_ring_too_small;
          tc "mesh shape" test_mesh_shape;
          tc "torus wraps" test_torus_wraps;
          tc "torus dimension-2 rule" test_torus_no_duplicate_on_2;
          tc "fully connected" test_fully_connected;
        ] );
      ( "mapping",
        [
          tc "range checks" test_mapping_range_checks;
          tc "identity when switches = cores" test_mapping_identity_when_equal;
          tc "uses all switches" test_mapping_uses_all_switches;
          tc "groups heavy pairs" test_mapping_groups_heavy_pairs;
          tc "balance cap" test_mapping_balance_cap;
          tc "deterministic" test_mapping_deterministic;
          tc "intra-cluster bandwidth" test_intra_cluster_bandwidth;
        ] );
      ( "custom",
        [
          tc "valid design" test_synthesize_valid_design;
          tc "every flow routed" test_synthesize_every_flow_routed;
          tc "degree budget" test_synthesize_respects_degree_budget_mostly;
          tc "deterministic" test_synthesize_deterministic;
          tc "switch count sweep" test_synthesize_switch_count_sweep;
        ] );
      ( "fm_partition",
        [
          tc "finds cliques" test_fm_bipartition_finds_cliques;
          tc "validation" test_fm_bipartition_validation;
          tc "cluster contract" test_fm_cluster_contract;
          tc "captures at least as much as greedy" test_fm_cluster_beats_or_ties_greedy_cut;
          tc "deterministic" test_fm_cluster_deterministic;
          tc "end-to-end synthesis" test_fm_synthesis_end_to_end;
        ] );
      ( "mesh_routing",
        [
          tc "xy static" test_xy_static_properties;
          tc "adaptive with escape" test_adaptive_escape_structure;
        ] );
      ( "harden",
        [
          tc "ring" test_harden_ring;
          tc "idempotent on robust designs" test_harden_idempotent;
          tc "benchmark" test_harden_benchmark;
        ] );
      ( "floorplan",
        [
          tc "grid positions" test_floorplan_grid;
          tc "manhattan lengths" test_floorplan_lengths;
          tc "tile scaling" test_floorplan_tile_scaling;
        ] );
      ("properties", qcheck_cases);
    ]
