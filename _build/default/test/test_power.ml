open Noc_model
open Noc_power

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let float_c = Alcotest.float 1e-9
let sw = Fixtures.sw

let params = Params.default_65nm

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_link_capacity () =
  (* 1 GHz x 32 bits = 4000 MB/s. *)
  check float_c "capacity" 4000. (Params.link_capacity_mbps params)

let test_params_positive () =
  check bool_c "all coefficients positive" true
    (params.Params.e_buffer_pj_per_bit > 0.
    && params.Params.e_clock_fj_per_bit_cycle > 0.
    && params.Params.a_buffer_um2_per_bit > 0.
    && params.Params.p_leak_buffer_nw_per_bit > 0.)

let test_technology_scaling () =
  let p90 = Params.scaled_90nm and p45 = Params.scaled_45nm in
  check bool_c "dynamic shrinks with the node" true
    (p45.Params.e_buffer_pj_per_bit < params.Params.e_buffer_pj_per_bit
    && params.Params.e_buffer_pj_per_bit < p90.Params.e_buffer_pj_per_bit);
  check bool_c "area shrinks with the node" true
    (p45.Params.a_buffer_um2_per_bit < params.Params.a_buffer_um2_per_bit
    && params.Params.a_buffer_um2_per_bit < p90.Params.a_buffer_um2_per_bit);
  check bool_c "leakage density grows with the node" true
    (p45.Params.p_leak_buffer_nw_per_bit > params.Params.p_leak_buffer_nw_per_bit
    && params.Params.p_leak_buffer_nw_per_bit > p90.Params.p_leak_buffer_nw_per_bit);
  (* End to end: the same design is smaller at 45 nm than at 90 nm. *)
  let net = (Fixtures.paper_ring ()).Fixtures.net in
  let a45 = (Report.of_network ~params:p45 net).Report.total_area_mm2 in
  let a90 = (Report.of_network ~params:p90 net).Report.total_area_mm2 in
  check bool_c "area ordering holds end to end" true (a45 < a90)

(* ------------------------------------------------------------------ *)
(* Switch model                                                        *)
(* ------------------------------------------------------------------ *)

let ring_net () = (Fixtures.paper_ring ()).Fixtures.net

let test_switch_ports () =
  let net = ring_net () in
  let b = Switch_model.analyze params net (sw 0) in
  (* Each ring switch: 1 in link + local, 1 out link + local. *)
  check int_c "in ports" 2 b.Switch_model.in_ports;
  check int_c "out ports" 2 b.Switch_model.out_ports;
  check int_c "vc buffers: link + local" 2 b.Switch_model.vc_buffers

let test_switch_power_positive () =
  let net = ring_net () in
  let b = Switch_model.analyze params net (sw 0) in
  check bool_c "dynamic > 0 (loaded)" true (b.Switch_model.dynamic_mw > 0.);
  check bool_c "leakage > 0" true (b.Switch_model.leakage_mw > 0.);
  check bool_c "area > 0" true (b.Switch_model.area_um2 > 0.);
  check bool_c "total = sum" true
    (Switch_model.total_mw b
    = b.Switch_model.dynamic_mw +. b.Switch_model.leakage_mw)

let test_vc_increases_static_not_dynamic () =
  let net = ring_net () in
  let before = Switch_model.analyze params net (sw 1) in
  (* Add a VC on the link into switch 1 (link L0). *)
  ignore (Topology.add_vc (Network.topology net) (Fixtures.lk 0));
  let after = Switch_model.analyze params net (sw 1) in
  check int_c "one more buffer" (before.Switch_model.vc_buffers + 1)
    after.Switch_model.vc_buffers;
  check bool_c "leakage grows" true
    (after.Switch_model.leakage_mw > before.Switch_model.leakage_mw);
  check bool_c "area grows" true
    (after.Switch_model.area_um2 > before.Switch_model.area_um2);
  check float_c "dynamic unchanged (same traffic)" before.Switch_model.dynamic_mw
    after.Switch_model.dynamic_mw

let test_dynamic_scales_with_load () =
  (* Same topology, one network loaded twice as heavily. *)
  let light = (Fixtures.paper_ring ()).Fixtures.net in
  let heavy = (Fixtures.paper_ring ()).Fixtures.net in
  let double (f : Traffic.flow) =
    ignore
      (Traffic.add_flow (Network.traffic heavy) ~src:f.Traffic.src
         ~dst:f.Traffic.dst ~bandwidth:f.Traffic.bandwidth)
  in
  ignore double;
  (* Simpler: scale by replacing routes with double-bandwidth flows is
     invasive; instead compare a loaded switch against an idle one. *)
  let loaded = Switch_model.analyze params light (sw 1) in
  let idle_net = (Fixtures.paper_ring ()).Fixtures.net in
  List.iter
    (fun (f, _) -> Network.set_route idle_net f [])
    (Network.routes idle_net);
  let idle = Switch_model.analyze params idle_net (sw 1) in
  check bool_c "loaded switch burns more dynamic" true
    (loaded.Switch_model.dynamic_mw > idle.Switch_model.dynamic_mw);
  check float_c "idle dynamic is zero" 0. idle.Switch_model.dynamic_mw

(* ------------------------------------------------------------------ *)
(* Link model                                                          *)
(* ------------------------------------------------------------------ *)

let test_link_power_scales_with_length () =
  let topo = Topology.create ~n_switches:9 in
  (* Switch grid 3x3: 0=(0,0), 8=(2,2). *)
  let short = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let long = Topology.add_link topo ~src:(sw 0) ~dst:(sw 8) in
  let traffic = Traffic.create ~n_cores:2 in
  let f1 = Traffic.add_flow traffic ~src:(Fixtures.core 0) ~dst:(Fixtures.core 1) ~bandwidth:100. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        if Ids.Core.to_int c = 0 then sw 0 else sw 1)
  in
  Network.set_route net f1 [ Channel.make short 0 ];
  let fp = Noc_synth.Floorplan.make topo in
  let b_short = Link_model.analyze params fp net short in
  let b_long = Link_model.analyze params fp net long in
  check bool_c "longer wire, more area" true
    (b_long.Link_model.area_um2 > b_short.Link_model.area_um2);
  check bool_c "loaded short link burns power" true
    (b_short.Link_model.dynamic_mw > 0.);
  check float_c "idle long link burns nothing" 0. b_long.Link_model.dynamic_mw

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_totals_consistent () =
  let net = ring_net () in
  let r = Report.of_network net in
  let sum_switch =
    List.fold_left
      (fun acc b -> acc +. Switch_model.total_mw b)
      0. r.Report.switches
  in
  let sum_link =
    List.fold_left (fun acc b -> acc +. b.Link_model.dynamic_mw) 0. r.Report.links
  in
  check (Alcotest.float 1e-6) "total = switches + links"
    (sum_switch +. sum_link) r.Report.total_power_mw;
  check int_c "vc count matches topology" (Topology.total_vcs (Network.topology net))
    r.Report.total_vcs;
  check bool_c "area positive" true (r.Report.total_area_mm2 > 0.)

let test_report_monotone_in_vcs () =
  (* The key property behind Figure 10: more VCs, more power and area,
     all else equal. *)
  let base = ring_net () in
  let more = Network.copy base in
  let topo = Network.topology more in
  List.iter
    (fun (l : Topology.link) -> ignore (Topology.add_vc topo l.Topology.id))
    (Topology.links topo);
  let r_base = Report.of_network base in
  let r_more = Report.of_network more in
  check bool_c "power grows with VCs" true
    (r_more.Report.total_power_mw > r_base.Report.total_power_mw);
  check bool_c "area grows with VCs" true
    (r_more.Report.total_area_mm2 > r_base.Report.total_area_mm2)

let test_report_ordering_costs_more_than_removal () =
  (* End-to-end: the Figure 10 relationship on a real benchmark. *)
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> Alcotest.fail "missing benchmark"
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let base = Noc_synth.Custom.synthesize_exn traffic ~n_switches:14 in
  let removal = Network.copy base in
  ignore (Noc_deadlock.Removal.run removal);
  let ordering = Network.copy base in
  ignore
    (Noc_deadlock.Resource_ordering.apply
       ~strategy:Noc_deadlock.Resource_ordering.Hop_index ordering);
  let p_removal = (Report.of_network removal).Report.total_power_mw in
  let p_ordering = (Report.of_network ordering).Report.total_power_mw in
  let p_base = (Report.of_network base).Report.total_power_mw in
  check bool_c "ordering > removal" true (p_ordering > p_removal);
  check bool_c "removal >= baseline" true (p_removal >= p_base);
  (* The paper's < 5 % overhead claim. *)
  check bool_c "removal overhead below 5%" true
    ((p_removal -. p_base) /. p_base < 0.05)

(* ------------------------------------------------------------------ *)
(* Per-flow energy                                                     *)
(* ------------------------------------------------------------------ *)

let test_flow_energy_structure () =
  let net = ring_net () in
  let fe = Flow_energy.of_network net in
  check int_c "all flows present" 4 (List.length fe.Flow_energy.flows);
  List.iter
    (fun c ->
      check bool_c "positive energy" true (c.Flow_energy.energy_pj_per_bit > 0.);
      check bool_c "positive power" true (c.Flow_energy.power_mw > 0.))
    fe.Flow_energy.flows;
  check bool_c "total = sum" true
    (abs_float
       (fe.Flow_energy.total_dynamic_mw
       -. List.fold_left (fun a c -> a +. c.Flow_energy.power_mw) 0.
            fe.Flow_energy.flows)
    < 1e-9)

let test_flow_energy_longer_costs_more () =
  let net = ring_net () in
  let fe = Flow_energy.of_network net in
  let cost flow =
    (List.find (fun c -> Ids.Flow.equal c.Flow_energy.flow flow) fe.Flow_energy.flows)
      .Flow_energy.energy_pj_per_bit
  in
  let ring = Fixtures.paper_ring () in
  ignore ring;
  (* F0 (3 hops) must cost more per bit than F1 (2 hops). *)
  check bool_c "3 hops > 2 hops" true
    (cost (Fixtures.fl 0) > cost (Fixtures.fl 1))

let test_flow_energy_ranking () =
  let net = ring_net () in
  let fe = Flow_energy.of_network net in
  match Flow_energy.ranked fe with
  | first :: rest ->
      List.iter
        (fun c ->
          check bool_c "descending" true
            (first.Flow_energy.power_mw >= c.Flow_energy.power_mw))
        rest
  | [] -> Alcotest.fail "expected flows"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_power_monotone_in_single_vc =
  (* Adding one VC anywhere never decreases power or area. *)
  let gen = QCheck.Gen.int_range 0 3 in
  QCheck.Test.make ~name:"adding any single VC never decreases power/area"
    ~count:20
    (QCheck.make ~print:string_of_int gen)
    (fun link_idx ->
      let base = ring_net () in
      let more = Network.copy base in
      ignore (Topology.add_vc (Network.topology more) (Fixtures.lk link_idx));
      let r_base = Report.of_network base in
      let r_more = Report.of_network more in
      r_more.Report.total_power_mw >= r_base.Report.total_power_mw
      && r_more.Report.total_area_mm2 >= r_base.Report.total_area_mm2)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_power_monotone_in_single_vc ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "noc_power"
    [
      ( "params",
        [
          tc "link capacity" test_link_capacity;
          tc "positive" test_params_positive;
          tc "technology scaling" test_technology_scaling;
        ] );
      ( "switch",
        [
          tc "port counting" test_switch_ports;
          tc "power positive" test_switch_power_positive;
          tc "VC raises static, not dynamic" test_vc_increases_static_not_dynamic;
          tc "dynamic scales with load" test_dynamic_scales_with_load;
        ] );
      ("link", [ tc "length and load scaling" test_link_power_scales_with_length ]);
      ( "report",
        [
          tc "totals consistent" test_report_totals_consistent;
          tc "monotone in VCs" test_report_monotone_in_vcs;
          tc "figure-10 relationship" test_report_ordering_costs_more_than_removal;
        ] );
      ( "flow_energy",
        [
          tc "structure" test_flow_energy_structure;
          tc "longer routes cost more" test_flow_energy_longer_costs_more;
          tc "ranking" test_flow_energy_ranking;
        ] );
      ("properties", qcheck_cases);
    ]
