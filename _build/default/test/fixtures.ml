(* Shared test fixtures.  The central one is the paper's running
   example (Figures 1-2): a 4-switch ring with four flows whose CDG has
   exactly one cycle L1 -> L2 -> L3 -> L4 -> L1. *)

open Noc_model

let sw = Ids.Switch.of_int
let core = Ids.Core.of_int
let lk = Ids.Link.of_int
let fl = Ids.Flow.of_int
let ch ?(vc = 0) l = Channel.make (lk l) vc

(* The paper numbers switches/links/flows from 1; we use 0-based ids,
   so the paper's L1 is our L0, F1 our F0, and so on. *)
type ring = { net : Network.t; links : Ids.Link.t array; flows : Ids.Flow.t array }

let paper_ring () =
  let topo = Topology.create ~n_switches:4 in
  let l1 = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let l2 = Topology.add_link topo ~src:(sw 1) ~dst:(sw 2) in
  let l3 = Topology.add_link topo ~src:(sw 2) ~dst:(sw 3) in
  let l4 = Topology.add_link topo ~src:(sw 3) ~dst:(sw 0) in
  let traffic = Traffic.create ~n_cores:4 in
  (* Flow endpoints are chosen so that min-hop routes on the ring are
     exactly the paper's R1..R4. *)
  let f1 = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 3) ~bandwidth:100. in
  let f2 = Traffic.add_flow traffic ~src:(core 2) ~dst:(core 0) ~bandwidth:100. in
  let f3 = Traffic.add_flow traffic ~src:(core 3) ~dst:(core 1) ~bandwidth:100. in
  let f4 = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 2) ~bandwidth:100. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        sw (Ids.Core.to_int c))
  in
  Network.set_route net f1 [ ch 0; ch 1; ch 2 ];
  Network.set_route net f2 [ ch 2; ch 3 ];
  Network.set_route net f3 [ ch 3; ch 0 ];
  Network.set_route net f4 [ ch 0; ch 1 ];
  { net; links = [| l1; l2; l3; l4 |]; flows = [| f1; f2; f3; f4 |] }

(* A 2x2 mesh with XY-routed all-to-all traffic: deadlock-free by
   construction (XY routing forbids the turns that close cycles). *)
let xy_mesh_2x2 () =
  let topo = Topology.create ~n_switches:4 in
  (* Switch layout: 0 1 / 2 3.  Bidirectional neighbour links. *)
  let pairs = [ (0, 1); (1, 0); (2, 3); (3, 2); (0, 2); (2, 0); (1, 3); (3, 1) ] in
  List.iter
    (fun (a, b) -> ignore (Topology.add_link topo ~src:(sw a) ~dst:(sw b)))
    pairs;
  let traffic = Traffic.create ~n_cores:4 in
  for s = 0 to 3 do
    for d = 0 to 3 do
      if s <> d then
        ignore (Traffic.add_flow traffic ~src:(core s) ~dst:(core d) ~bandwidth:10.)
    done
  done;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        sw (Ids.Core.to_int c))
  in
  let find a b =
    match Topology.find_links topo ~src:(sw a) ~dst:(sw b) with
    | l :: _ -> Channel.make l.Topology.id 0
    | [] -> failwith "xy_mesh_2x2: missing link"
  in
  (* XY: move horizontally (within the row) first, then vertically. *)
  let route s d =
    let col n = n mod 2 and row n = n / 2 in
    let x_hops = if col s = col d then [] else [ find s (row s * 2 + col d) ] in
    let after_x = (row s * 2) + col d in
    let y_hops = if row s = row d then [] else [ find after_x d ] in
    x_hops @ y_hops
  in
  List.iter
    (fun (f : Traffic.flow) ->
      let s = Ids.Core.to_int f.Traffic.src and d = Ids.Core.to_int f.Traffic.dst in
      Network.set_route net f.Traffic.id (route s d))
    (Traffic.flows traffic);
  net

let check_valid name net =
  match Validate.check net with
  | [] -> ()
  | issues ->
      Alcotest.failf "%s: invalid network: %a" name
        (Format.pp_print_list Validate.pp_issue)
        issues
