test/test_noc.mli:
