test/test_graph.ml: Alcotest Array Cycles Digraph Dot K_shortest List Max_flow Noc_graph Paths Printf QCheck QCheck_alcotest Scc String Toposort Traversal Union_find
