test/test_deadlock.mli:
