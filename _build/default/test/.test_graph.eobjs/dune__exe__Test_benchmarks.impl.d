test/test_benchmarks.ml: Alcotest Array Ids List Noc_benchmarks Noc_deadlock Noc_model Noc_sim Printf Registry Rng Spec Synthetic Traffic Workloads
