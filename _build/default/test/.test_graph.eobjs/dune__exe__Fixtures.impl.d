test/fixtures.ml: Alcotest Channel Format Ids List Network Noc_model Topology Traffic Validate
