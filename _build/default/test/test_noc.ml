open Noc_model

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let str_c = Alcotest.string
let sw = Fixtures.sw
let core = Fixtures.core
let ch = Fixtures.ch

let fmt_to_string pp v = Format.asprintf "%a" pp v

(* ------------------------------------------------------------------ *)
(* Ids and channels                                                    *)
(* ------------------------------------------------------------------ *)

let test_id_roundtrip () =
  check int_c "switch roundtrip" 7 (Ids.Switch.to_int (Ids.Switch.of_int 7));
  check int_c "flow roundtrip" 3 (Ids.Flow.to_int (Ids.Flow.of_int 3));
  check bool_c "equal" true (Ids.Core.equal (core 2) (core 2));
  check bool_c "not equal" false (Ids.Link.equal (Fixtures.lk 1) (Fixtures.lk 2))

let test_id_negative_rejected () =
  Alcotest.check_raises "negative id"
    (Invalid_argument "sw id must be non-negative") (fun () ->
      ignore (Ids.Switch.of_int (-1)))

let test_id_pp () =
  check str_c "switch" "sw3" (fmt_to_string Ids.Switch.pp (sw 3));
  check str_c "flow" "F0" (fmt_to_string Ids.Flow.pp (Ids.Flow.of_int 0))

let test_channel_make () =
  let c = Channel.make (Fixtures.lk 2) 1 in
  check int_c "link" 2 (Ids.Link.to_int (Channel.link c));
  check int_c "vc" 1 (Channel.vc c);
  Alcotest.check_raises "negative vc"
    (Invalid_argument "Channel.make: negative VC index") (fun () ->
      ignore (Channel.make (Fixtures.lk 0) (-1)))

let test_channel_compare_order () =
  let a = ch 0 and b = ch ~vc:1 0 and c = ch 1 in
  check bool_c "same link, vc orders" true (Channel.compare a b < 0);
  check bool_c "link dominates" true (Channel.compare b c < 0);
  check bool_c "equal" true (Channel.equal a (ch 0))

let test_channel_pp_primed () =
  check str_c "vc0 plain" "L3" (fmt_to_string Channel.pp (ch 3));
  check str_c "vc1 primed" "L3'" (fmt_to_string Channel.pp (ch ~vc:1 3));
  check str_c "vc2 numbered" "L3'2" (fmt_to_string Channel.pp (ch ~vc:2 3))

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_topology_create_invalid () =
  Alcotest.check_raises "zero switches"
    (Invalid_argument "Topology.create: need at least one switch") (fun () ->
      ignore (Topology.create ~n_switches:0))

let test_topology_links () =
  let t = Topology.create ~n_switches:3 in
  let l0 = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let l1 = Topology.add_link t ~src:(sw 1) ~dst:(sw 2) in
  check int_c "two links" 2 (Topology.n_links t);
  check int_c "dense ids" 1 (Ids.Link.to_int l1);
  let info = Topology.link t l0 in
  check int_c "src" 0 (Ids.Switch.to_int info.Topology.src);
  check int_c "dst" 1 (Ids.Switch.to_int info.Topology.dst)

let test_topology_self_loop_rejected () =
  let t = Topology.create ~n_switches:2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.add_link: self-loop")
    (fun () -> ignore (Topology.add_link t ~src:(sw 1) ~dst:(sw 1)))

let test_topology_unknown_switch () =
  let t = Topology.create ~n_switches:2 in
  Alcotest.check_raises "range"
    (Invalid_argument "Topology.add_link: switch 5 out of range") (fun () ->
      ignore (Topology.add_link t ~src:(sw 5) ~dst:(sw 0)))

let test_topology_vcs () =
  let t = Topology.create ~n_switches:2 in
  let l = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  check int_c "one vc initially" 1 (Topology.vc_count t l);
  check int_c "new index" 1 (Topology.add_vc t l);
  check int_c "new index 2" 2 (Topology.add_vc t l);
  check int_c "count" 3 (Topology.vc_count t l);
  check int_c "total" 3 (Topology.total_vcs t);
  check int_c "extra" 2 (Topology.extra_vcs t)

let test_topology_channels_list () =
  let t = Topology.create ~n_switches:2 in
  let l0 = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let _l1 = Topology.add_link t ~src:(sw 1) ~dst:(sw 0) in
  ignore (Topology.add_vc t l0);
  let cs = Topology.channels t in
  check int_c "3 channels" 3 (List.length cs);
  check str_c "ordering" "L0,L0',L1"
    (String.concat "," (List.map (fmt_to_string Channel.pp) cs))

let test_topology_adjacency () =
  let t = Topology.create ~n_switches:3 in
  let _ = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let _ = Topology.add_link t ~src:(sw 0) ~dst:(sw 2) in
  let _ = Topology.add_link t ~src:(sw 1) ~dst:(sw 0) in
  check int_c "out of 0" 2 (List.length (Topology.out_links t (sw 0)));
  check int_c "in of 0" 1 (List.length (Topology.in_links t (sw 0)));
  check int_c "degree 0" 3 (Topology.degree t (sw 0));
  check int_c "parallel none" 0
    (List.length (Topology.find_links t ~src:(sw 1) ~dst:(sw 2)))

let test_topology_parallel_links () =
  let t = Topology.create ~n_switches:2 in
  let _ = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let _ = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  check int_c "parallel allowed" 2
    (List.length (Topology.find_links t ~src:(sw 0) ~dst:(sw 1)))

let test_topology_connectivity () =
  let t = Topology.create ~n_switches:3 in
  let _ = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  check bool_c "disconnected" false (Topology.is_connected t);
  let _ = Topology.add_link t ~src:(sw 2) ~dst:(sw 0) in
  check bool_c "weakly connected" true (Topology.is_connected t)

let test_topology_switch_graph () =
  let t = Topology.create ~n_switches:3 in
  let _ = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let _ = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let g = Topology.switch_graph t in
  check int_c "3 vertices" 3 (Noc_graph.Digraph.n_vertices g);
  check int_c "parallel collapsed" 1 (Noc_graph.Digraph.n_edges g)

let test_topology_copy_independent () =
  let t = Topology.create ~n_switches:2 in
  let l = Topology.add_link t ~src:(sw 0) ~dst:(sw 1) in
  let t' = Topology.copy t in
  ignore (Topology.add_vc t' l);
  check int_c "original untouched" 1 (Topology.vc_count t l);
  check int_c "copy grew" 2 (Topology.vc_count t' l)

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let test_traffic_flows () =
  let t = Traffic.create ~n_cores:3 in
  let f0 = Traffic.add_flow t ~src:(core 0) ~dst:(core 1) ~bandwidth:10. in
  let _ = Traffic.add_flow t ~src:(core 0) ~dst:(core 2) ~bandwidth:20. in
  check int_c "two flows" 2 (Traffic.n_flows t);
  check (Alcotest.float 1e-9) "total bw" 30. (Traffic.total_bandwidth t);
  let f = Traffic.flow t f0 in
  check int_c "dst" 1 (Ids.Core.to_int f.Traffic.dst);
  check int_c "from core0" 2 (List.length (Traffic.flows_from t (core 0)));
  check int_c "to core2" 1 (List.length (Traffic.flows_to t (core 2)))

let test_traffic_rejections () =
  let t = Traffic.create ~n_cores:2 in
  Alcotest.check_raises "self flow" (Invalid_argument "Traffic.add_flow: self-flow")
    (fun () -> ignore (Traffic.add_flow t ~src:(core 0) ~dst:(core 0) ~bandwidth:1.));
  Alcotest.check_raises "zero bw"
    (Invalid_argument "Traffic.add_flow: non-positive bandwidth") (fun () ->
      ignore (Traffic.add_flow t ~src:(core 0) ~dst:(core 1) ~bandwidth:0.))

let test_traffic_demand () =
  let t = Traffic.create ~n_cores:2 in
  let _ = Traffic.add_flow t ~src:(core 0) ~dst:(core 1) ~bandwidth:5. in
  let _ = Traffic.add_flow t ~src:(core 0) ~dst:(core 1) ~bandwidth:7. in
  check (Alcotest.float 1e-9) "summed" 12. (Traffic.demand_between t (core 0) (core 1));
  check (Alcotest.float 1e-9) "reverse empty" 0.
    (Traffic.demand_between t (core 1) (core 0))

(* ------------------------------------------------------------------ *)
(* Routes                                                              *)
(* ------------------------------------------------------------------ *)

let ring_topo () =
  let t = Topology.create ~n_switches:4 in
  for i = 0 to 3 do
    ignore (Topology.add_link t ~src:(sw i) ~dst:(sw ((i + 1) mod 4)))
  done;
  t

let test_route_check_ok () =
  let t = ring_topo () in
  check bool_c "valid 2-hop" true
    (Route.check t ~src:(sw 0) ~dst:(sw 2) [ ch 0; ch 1 ] = Ok ())

let test_route_check_empty () =
  let t = ring_topo () in
  check bool_c "same switch empty ok" true
    (Route.check t ~src:(sw 1) ~dst:(sw 1) [] = Ok ());
  check bool_c "distinct empty bad" true
    (Result.is_error (Route.check t ~src:(sw 0) ~dst:(sw 1) []))

let test_route_check_discontinuous () =
  let t = ring_topo () in
  check bool_c "gap detected" true
    (Result.is_error (Route.check t ~src:(sw 0) ~dst:(sw 3) [ ch 0; ch 2 ]))

let test_route_check_wrong_endpoints () =
  let t = ring_topo () in
  check bool_c "wrong start" true
    (Result.is_error (Route.check t ~src:(sw 1) ~dst:(sw 2) [ ch 0; ch 1 ]));
  check bool_c "wrong end" true
    (Result.is_error (Route.check t ~src:(sw 0) ~dst:(sw 3) [ ch 0; ch 1 ]))

let test_route_check_bad_vc () =
  let t = ring_topo () in
  check bool_c "vc out of range" true
    (Result.is_error (Route.check t ~src:(sw 0) ~dst:(sw 1) [ ch ~vc:1 0 ]))

let test_route_check_repeat () =
  let t = ring_topo () in
  (* 0->1->2->3->0->1 repeats channel L0. *)
  check bool_c "repeat rejected" true
    (Result.is_error
       (Route.check t ~src:(sw 0) ~dst:(sw 1) [ ch 0; ch 1; ch 2; ch 3; ch 0 ]))

let test_route_pairs () =
  let r = [ ch 0; ch 1; ch 2 ] in
  check int_c "pairs" 2 (List.length (Route.consecutive_pairs r));
  check int_c "no pairs" 0 (List.length (Route.consecutive_pairs [ ch 0 ]));
  check bool_c "uses channel" true (Route.uses_channel r (ch 1));
  check bool_c "vc distinguishes" false (Route.uses_channel r (ch ~vc:1 1))

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let test_network_mapping_checked () =
  let topo = Topology.create ~n_switches:2 in
  let traffic = Traffic.create ~n_cores:1 in
  Alcotest.check_raises "mapping range"
    (Invalid_argument "Network.make: core 0 mapped to unknown switch 9") (fun () ->
      ignore (Network.make ~topology:topo ~traffic ~mapping:(fun _ -> sw 9)))

let test_network_routes_roundtrip () =
  let ring = Fixtures.paper_ring () in
  let f1 = ring.Fixtures.flows.(0) in
  check int_c "route length" 3 (Route.length (Network.route ring.Fixtures.net f1));
  check int_c "all routes" 4 (List.length (Network.routes ring.Fixtures.net))

let test_network_endpoints () =
  let ring = Fixtures.paper_ring () in
  let src, dst = Network.endpoints ring.Fixtures.net ring.Fixtures.flows.(1) in
  check int_c "src switch" 2 (Ids.Switch.to_int src);
  check int_c "dst switch" 0 (Ids.Switch.to_int dst)

let test_network_loads () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  (* L0 (the paper's L1) carries F1, F3 and F4, 100 MB/s each. *)
  check (Alcotest.float 1e-9) "channel load" 300. (Network.channel_load net (ch 0));
  check (Alcotest.float 1e-9) "link load" 300. (Network.link_load net (Fixtures.lk 0));
  check (Alcotest.float 1e-9) "other vc empty" 0.
    (Network.channel_load net (ch ~vc:1 0))

let test_network_copy_isolated () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let net' = Network.copy net in
  Network.set_route net' ring.Fixtures.flows.(0) [];
  ignore (Topology.add_vc (Network.topology net') (Fixtures.lk 0));
  check int_c "route preserved" 3
    (Route.length (Network.route net ring.Fixtures.flows.(0)));
  check int_c "vcs preserved" 1 (Topology.vc_count (Network.topology net) (Fixtures.lk 0))

(* ------------------------------------------------------------------ *)
(* CDG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cdg_paper_example () =
  let ring = Fixtures.paper_ring () in
  let cdg = Cdg.build ring.Fixtures.net in
  check int_c "4 channels" 4 (Cdg.n_channels cdg);
  check int_c "4 dependencies" 4 (Noc_graph.Digraph.n_edges (Cdg.graph cdg));
  check bool_c "cyclic" false (Cdg.is_deadlock_free cdg);
  match Cdg.smallest_cycle cdg with
  | None -> Alcotest.fail "expected the ring cycle"
  | Some cycle -> check int_c "cycle length 4" 4 (List.length cycle)

let test_cdg_dependency_flows () =
  let ring = Fixtures.paper_ring () in
  let cdg = Cdg.build ring.Fixtures.net in
  let flows = Cdg.flows_on_dependency cdg ~src:(ch 0) ~dst:(ch 1) in
  (* L1 -> L2 is created by F1 and F4 (paper numbering). *)
  check int_c "two flows" 2 (List.length flows);
  check bool_c "F1 there" true
    (List.exists (Ids.Flow.equal ring.Fixtures.flows.(0)) flows);
  check bool_c "F4 there" true
    (List.exists (Ids.Flow.equal ring.Fixtures.flows.(3)) flows);
  check int_c "absent edge empty" 0
    (List.length (Cdg.flows_on_dependency cdg ~src:(ch 1) ~dst:(ch 0)))

let test_cdg_acyclic_mesh () =
  let net = Fixtures.xy_mesh_2x2 () in
  Fixtures.check_valid "xy mesh" net;
  let cdg = Cdg.build net in
  check bool_c "XY routing deadlock-free" true (Cdg.is_deadlock_free cdg);
  check bool_c "no cycle found" true (Cdg.smallest_cycle cdg = None)

let test_cdg_includes_unused_channels () =
  let ring = Fixtures.paper_ring () in
  ignore (Topology.add_vc (Network.topology ring.Fixtures.net) (Fixtures.lk 0));
  let cdg = Cdg.build ring.Fixtures.net in
  check int_c "5 channels now" 5 (Cdg.n_channels cdg);
  check int_c "still 4 deps" 4 (Noc_graph.Digraph.n_edges (Cdg.graph cdg))

let test_cdg_cycles_enumeration () =
  let ring = Fixtures.paper_ring () in
  let cdg = Cdg.build ring.Fixtures.net in
  check int_c "exactly one elementary cycle" 1 (List.length (Cdg.cycles cdg))

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let test_routing_min_hop () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  (match Routing.route_flow net ring.Fixtures.flows.(0) with
  | Ok r -> check int_c "3 hops around the ring" 3 (Route.length r)
  | Error e -> Alcotest.fail e);
  match Routing.route_all net with
  | Ok () -> Fixtures.check_valid "rerouted ring" net
  | Error e -> Alcotest.fail e

let test_routing_unreachable () =
  let topo = Topology.create ~n_switches:2 in
  let traffic = Traffic.create ~n_cores:2 in
  let f = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:1. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  check bool_c "no path reported" true (Result.is_error (Routing.route_flow net f));
  check bool_c "route_all propagates" true (Result.is_error (Routing.route_all net))

let test_routing_same_switch () =
  let topo = Topology.create ~n_switches:1 in
  let traffic = Traffic.create ~n_cores:2 in
  let f = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:1. in
  let net = Network.make ~topology:topo ~traffic ~mapping:(fun _ -> sw 0) in
  match Routing.route_flow net f with
  | Ok r -> check int_c "empty route" 0 (Route.length r)
  | Error e -> Alcotest.fail e

let test_routing_load_aware_spreads () =
  (* Two parallel 2-hop paths between 0 and 3; two heavy flows should
     not pile on one path. *)
  let topo = Topology.create ~n_switches:4 in
  let _ = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let _ = Topology.add_link topo ~src:(sw 1) ~dst:(sw 3) in
  let _ = Topology.add_link topo ~src:(sw 0) ~dst:(sw 2) in
  let _ = Topology.add_link topo ~src:(sw 2) ~dst:(sw 3) in
  let traffic = Traffic.create ~n_cores:2 in
  let fa = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:100. in
  let fb = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:90. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        if Ids.Core.to_int c = 0 then sw 0 else sw 3)
  in
  (match Routing.route_all_load_aware net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fixtures.check_valid "load aware" net;
  let ra = Route.links (Network.route net fa) in
  let rb = Route.links (Network.route net fb) in
  check bool_c "disjoint paths" true
    (List.for_all (fun l -> not (List.exists (Ids.Link.equal l) rb)) ra)

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let test_validate_ok () =
  let ring = Fixtures.paper_ring () in
  check bool_c "paper ring valid" true (Validate.is_valid ring.Fixtures.net)

let test_validate_missing_route () =
  let ring = Fixtures.paper_ring () in
  Network.set_route ring.Fixtures.net ring.Fixtures.flows.(2) [];
  let issues = Validate.check ring.Fixtures.net in
  check int_c "one issue" 1 (List.length issues)

let test_validate_routes_equivalent () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let net' = Network.copy net in
  check bool_c "identical" true (Validate.routes_equivalent ~before:net ~after:net');
  (* Moving a flow to another VC of the same links keeps equivalence. *)
  ignore (Topology.add_vc (Network.topology net') (Fixtures.lk 0));
  Network.set_route net' ring.Fixtures.flows.(3) [ ch ~vc:1 0; ch 1 ];
  check bool_c "vc change ok" true (Validate.routes_equivalent ~before:net ~after:net');
  (* Changing physical links breaks it. *)
  Network.set_route net' ring.Fixtures.flows.(3) [ ch 0 ];
  check bool_c "physical change detected" false
    (Validate.routes_equivalent ~before:net ~after:net')

(* ------------------------------------------------------------------ *)
(* Routing functions                                                   *)
(* ------------------------------------------------------------------ *)

let test_rf_of_static_routes () =
  let ring = Fixtures.paper_ring () in
  let rf = Routing_function.of_static_routes ring.Fixtures.net in
  (* F1 (core0 -> core3) uses L0 at sw0. *)
  let opts = Routing_function.options rf ~at:(sw 0) ~dst:(sw 3) in
  check int_c "one option" 1 (List.length opts);
  check bool_c "it is L0" true (Channel.equal (List.hd opts) (ch 0));
  (* No flow from sw1 to sw0 exists, so no options there. *)
  check int_c "no options elsewhere" 0
    (List.length (Routing_function.options rf ~at:(sw 1) ~dst:(sw 0)));
  check int_c "empty at destination" 0
    (List.length (Routing_function.options rf ~at:(sw 3) ~dst:(sw 3)))

let test_rf_minimal_adaptive_diamond () =
  (* Two equal-length paths 0->3: the adaptive function offers both
     first hops. *)
  let topo = Topology.create ~n_switches:4 in
  let _ = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let _ = Topology.add_link topo ~src:(sw 1) ~dst:(sw 3) in
  let _ = Topology.add_link topo ~src:(sw 0) ~dst:(sw 2) in
  let _ = Topology.add_link topo ~src:(sw 2) ~dst:(sw 3) in
  let traffic = Traffic.create ~n_cores:2 in
  let _ = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:1. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        if Ids.Core.to_int c = 0 then sw 0 else sw 3)
  in
  let rf = Routing_function.minimal_adaptive net in
  check int_c "both first hops" 2
    (List.length (Routing_function.options rf ~at:(sw 0) ~dst:(sw 3)));
  check int_c "one hop from 1" 1
    (List.length (Routing_function.options rf ~at:(sw 1) ~dst:(sw 3)))

let test_rf_minimal_adaptive_vcs () =
  let ring = Fixtures.paper_ring () in
  ignore (Topology.add_vc (Network.topology ring.Fixtures.net) (Fixtures.lk 0));
  let rf = Routing_function.minimal_adaptive ring.Fixtures.net in
  check int_c "both VCs offered" 2
    (List.length (Routing_function.options rf ~at:(sw 0) ~dst:(sw 1)));
  let rf0 = Routing_function.minimal_adaptive ~all_vcs:false ring.Fixtures.net in
  check int_c "vc0 only" 1
    (List.length (Routing_function.options rf0 ~at:(sw 0) ~dst:(sw 1)))

let test_rf_make_validates () =
  let ring = Fixtures.paper_ring () in
  let topo = Network.topology ring.Fixtures.net in
  (* L1 leaves sw1, not sw0: querying must blow up. *)
  let bogus = Routing_function.make topo (fun ~at:_ ~dst:_ -> [ ch 1 ]) in
  check bool_c "invalid channel rejected" true
    (try
       ignore (Routing_function.options bogus ~at:(sw 0) ~dst:(sw 2));
       false
     with Invalid_argument _ -> true)

let test_rf_restrict_and_connectivity () =
  let ring = Fixtures.paper_ring () in
  let rf = Routing_function.of_static_routes ring.Fixtures.net in
  check bool_c "full function connected" true
    (Routing_function.is_connected rf ring.Fixtures.net = Ok ());
  let empty = Routing_function.restrict rf ~keep:(fun _ -> false) in
  check bool_c "empty restriction stranded" true
    (Result.is_error (Routing_function.is_connected empty ring.Fixtures.net))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_ring () =
  let ring = Fixtures.paper_ring () in
  let m = Metrics.of_network ring.Fixtures.net in
  check int_c "switches" 4 m.Metrics.n_switches;
  check int_c "links" 4 m.Metrics.n_links;
  check int_c "routed flows" 4 m.Metrics.n_routed_flows;
  (* Routes: 3 + 2 + 2 + 2 hops = 9/4. *)
  check (Alcotest.float 1e-9) "avg hops" 2.25 m.Metrics.avg_hops;
  check int_c "max hops" 3 m.Metrics.max_hops;
  check (Alcotest.float 1e-9) "connectivity" 1.0 m.Metrics.switch_connectivity;
  check bool_c "imbalance >= 1" true (m.Metrics.load_imbalance >= 1.)

let test_metrics_unrouted () =
  let ring = Fixtures.paper_ring () in
  List.iter
    (fun (f, _) -> Network.set_route ring.Fixtures.net f [])
    (Network.routes ring.Fixtures.net);
  let m = Metrics.of_network ring.Fixtures.net in
  check int_c "no routed flows" 0 m.Metrics.n_routed_flows;
  check (Alcotest.float 1e-9) "avg hops zero" 0. m.Metrics.avg_hops;
  check (Alcotest.float 1e-9) "imbalance zero" 0. m.Metrics.load_imbalance

let test_metrics_critical_links () =
  (* On the unidirectional ring every used link is a single point of
     failure. *)
  let ring = Fixtures.paper_ring () in
  let critical = Metrics.critical_links ring.Fixtures.net in
  check int_c "all four links critical" 4 (List.length critical);
  (* Adding a parallel link de-criticalizes its twin. *)
  let topo = Network.topology ring.Fixtures.net in
  let _ = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let critical' = Metrics.critical_links ring.Fixtures.net in
  check int_c "L0 covered by its twin" 3 (List.length critical');
  check bool_c "L0 no longer critical" false
    (List.exists (Ids.Link.equal (Fixtures.lk 0)) critical')

let test_metrics_critical_links_mesh () =
  (* The bidirectional 2x2 mesh has disjoint backups for every pair. *)
  let net = Fixtures.xy_mesh_2x2 () in
  check int_c "no single points of failure" 0
    (List.length (Metrics.critical_links net))

let test_metrics_cut_bandwidth () =
  let ring = Fixtures.paper_ring () in
  (* On a unidirectional 4-ring, any src->dst cut is a single link. *)
  check (Alcotest.float 1e-9) "ring cut" 1.
    (Metrics.flow_cut_bandwidth ring.Fixtures.net ~src:(sw 0) ~dst:(sw 2));
  (* Add a parallel link 0->1: cut towards 1 doubles. *)
  let topo = Network.topology ring.Fixtures.net in
  let _ = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  check (Alcotest.float 1e-9) "parallel doubles" 2.
    (Metrics.flow_cut_bandwidth ring.Fixtures.net ~src:(sw 0) ~dst:(sw 1))

(* ------------------------------------------------------------------ *)
(* Bandwidth feasibility                                               *)
(* ------------------------------------------------------------------ *)

let test_bandwidth_feasible () =
  let ring = Fixtures.paper_ring () in
  (* Heaviest link (L0) carries 300 MB/s. *)
  let b = Bandwidth.analyze ~capacity_mbps:400. ring.Fixtures.net in
  check bool_c "feasible at 400" true b.Bandwidth.feasible;
  (match b.Bandwidth.worst with
  | Some w ->
      check int_c "worst is L0" 0 (Ids.Link.to_int w.Bandwidth.link);
      check (Alcotest.float 1e-9) "75% utilization" 0.75 w.Bandwidth.utilization;
      check int_c "three flows on it" 3 (List.length w.Bandwidth.flows)
  | None -> Alcotest.fail "expected a loaded link");
  check int_c "nothing oversubscribed" 0 (List.length (Bandwidth.oversubscribed b))

let test_bandwidth_oversubscribed () =
  let ring = Fixtures.paper_ring () in
  let b = Bandwidth.analyze ~capacity_mbps:250. ring.Fixtures.net in
  check bool_c "infeasible at 250" false b.Bandwidth.feasible;
  match Bandwidth.oversubscribed b with
  | w :: _ -> check bool_c "over 100%" true (w.Bandwidth.utilization > 1.0)
  | [] -> Alcotest.fail "expected an oversubscribed link"

let test_bandwidth_validation () =
  let ring = Fixtures.paper_ring () in
  Alcotest.check_raises "capacity" (Invalid_argument "Bandwidth.analyze: capacity <= 0")
    (fun () -> ignore (Bandwidth.analyze ~capacity_mbps:0. ring.Fixtures.net))

(* ------------------------------------------------------------------ *)
(* Io                                                                  *)
(* ------------------------------------------------------------------ *)

let same_design a b =
  Topology.n_switches (Network.topology a) = Topology.n_switches (Network.topology b)
  && Topology.n_links (Network.topology a) = Topology.n_links (Network.topology b)
  && Topology.total_vcs (Network.topology a) = Topology.total_vcs (Network.topology b)
  && Traffic.n_flows (Network.traffic a) = Traffic.n_flows (Network.traffic b)
  && List.for_all2
       (fun (fa, ra) (fb, rb) ->
         Ids.Flow.equal fa fb
         && List.length ra = List.length rb
         && List.for_all2 Channel.equal ra rb)
       (Network.routes a) (Network.routes b)

let test_io_roundtrip_ring () =
  let ring = Fixtures.paper_ring () in
  let text = Io.save ring.Fixtures.net in
  match Io.load text with
  | Ok net -> check bool_c "roundtrip preserves design" true (same_design ring.Fixtures.net net)
  | Error e -> Alcotest.fail e

let test_io_roundtrip_with_vcs () =
  (* After removal the design has VC > 1 channels and rewritten routes;
     the format must carry them. *)
  let ring = Fixtures.paper_ring () in
  ignore (Noc_deadlock.Removal.run ring.Fixtures.net);
  let text = Io.save ring.Fixtures.net in
  match Io.load text with
  | Ok net ->
      check bool_c "vcs preserved" true (same_design ring.Fixtures.net net);
      check bool_c "still deadlock-free" true
        (Cdg.is_deadlock_free (Cdg.build net))
  | Error e -> Alcotest.fail e

let test_io_comments_and_blanks () =
  let ring = Fixtures.paper_ring () in
  let text = "# a comment\n\n" ^ Io.save ring.Fixtures.net ^ "\n# trailing\n" in
  check bool_c "tolerated" true (Result.is_ok (Io.load text))

let test_io_error_messages () =
  let cases =
    [
      ("nonsense 1\n", "unknown directive");
      ("noc-design 2\n", "unsupported format version");
      ("switches x\n", "bad switch count");
      ("noc-design 1\nswitches 2\n", "missing 'cores'");
      ("noc-design 1\ncores 2\n", "missing 'switches'");
      ("noc-design 1\nswitches 2\ncores 1\ncore 0 0\nroute 5 0:0\n",
       "route for unknown flow");
    ]
  in
  List.iter
    (fun (text, fragment) ->
      match Io.load text with
      | Ok _ -> Alcotest.failf "expected failure for %S" text
      | Error e ->
          let contains =
            let n = String.length fragment and h = String.length e in
            let rec scan i =
              i + n <= h && (String.sub e i n = fragment || scan (i + 1))
            in
            scan 0
          in
          check bool_c (Printf.sprintf "%S mentions %S (got %S)" text fragment e)
            true contains)
    cases

let test_io_rejects_invalid_route () =
  (* A structurally broken route must be caught by validation. *)
  let text =
    "noc-design 1\nswitches 2\ncores 2\nlink 0 0 1 1\ncore 0 0\ncore 1 1\n\
     flow 0 0 1 10\nroute 0 0:5\n"
  in
  check bool_c "bad vc rejected" true (Result.is_error (Io.load text))

let test_io_file_roundtrip () =
  let ring = Fixtures.paper_ring () in
  let path = Filename.temp_file "noc_io_test" ".noc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_file path ring.Fixtures.net;
      match Io.load_file path with
      | Ok net -> check bool_c "file roundtrip" true (same_design ring.Fixtures.net net)
      | Error e -> Alcotest.fail e)

let test_io_missing_file () =
  check bool_c "missing file is an error" true
    (Result.is_error (Io.load_file "/nonexistent/path.noc"))

(* ------------------------------------------------------------------ *)
(* Forwarding tables                                                   *)
(* ------------------------------------------------------------------ *)

let test_tables_compile_ring () =
  let ring = Fixtures.paper_ring () in
  let t = Tables.compile ring.Fixtures.net in
  (* Each flow contributes (hops + 1) entries: inject, forwards, eject. *)
  let expected =
    List.fold_left
      (fun acc (_, r) -> acc + Route.length r + 1)
      0
      (Network.routes ring.Fixtures.net)
  in
  check int_c "entry count" expected (Tables.total_entries t)

let test_tables_lookup_semantics () =
  let ring = Fixtures.paper_ring () in
  let t = Tables.compile ring.Fixtures.net in
  let f1 = ring.Fixtures.flows.(0) in
  (* F1 = {L0, L1, L2}: injected at sw0 onto L0. *)
  (match Tables.lookup t (sw 0) ~flow:f1 ~input:None with
  | Some (Some out) -> check bool_c "injects onto L0" true (Channel.equal out (ch 0))
  | Some None | None -> Alcotest.fail "expected injection entry");
  (* At sw1, input L0 forwards to L1. *)
  (match Tables.lookup t (sw 1) ~flow:f1 ~input:(Some (ch 0)) with
  | Some (Some out) -> check bool_c "forwards to L1" true (Channel.equal out (ch 1))
  | Some None | None -> Alcotest.fail "expected forward entry");
  (* At sw3, input L2 ejects. *)
  (match Tables.lookup t (sw 3) ~flow:f1 ~input:(Some (ch 2)) with
  | Some None -> ()
  | Some (Some _) | None -> Alcotest.fail "expected ejection entry");
  (* No phantom entries. *)
  check bool_c "absent entry" true
    (Tables.lookup t (sw 2) ~flow:f1 ~input:None = None)

let test_tables_check_passes () =
  let ring = Fixtures.paper_ring () in
  let t = Tables.compile ring.Fixtures.net in
  check bool_c "consistent" true (Tables.check ring.Fixtures.net t = Ok ())

let test_tables_check_catches_stale () =
  (* Compile, then change a route: the stale table must fail. *)
  let ring = Fixtures.paper_ring () in
  let t = Tables.compile ring.Fixtures.net in
  ignore (Topology.add_vc (Network.topology ring.Fixtures.net) (Fixtures.lk 0));
  Network.set_route ring.Fixtures.net ring.Fixtures.flows.(3) [ ch ~vc:1 0; ch 1 ];
  check bool_c "stale table detected" true
    (Result.is_error (Tables.check ring.Fixtures.net t))

let test_tables_after_removal () =
  (* End-to-end: tables recompiled after the removal pass must still
     check out, with the duplicated channels present. *)
  let ring = Fixtures.paper_ring () in
  ignore (Noc_deadlock.Removal.run ring.Fixtures.net);
  let t = Tables.compile ring.Fixtures.net in
  check bool_c "post-removal tables consistent" true
    (Tables.check ring.Fixtures.net t = Ok ());
  let rendered = Format.asprintf "%a" (Tables.pp_switch t) (sw 0) in
  check bool_c "shows the duplicate channel" true
    (let needle = "L0'" in
     let n = String.length needle and h = String.length rendered in
     let rec scan i = i + n <= h && (String.sub rendered i n = needle || scan (i + 1)) in
     scan 0)

(* ------------------------------------------------------------------ *)
(* Dot export                                                          *)
(* ------------------------------------------------------------------ *)

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_dot_topology () =
  let ring = Fixtures.paper_ring () in
  let s = Dot_export.topology ring.Fixtures.net in
  check bool_c "has switches" true (string_contains ~needle:"sw0" s);
  check bool_c "has links" true (string_contains ~needle:"L0 (1 VC" s);
  check bool_c "no highlight yet" false (string_contains ~needle:"red" s)

let test_dot_topology_highlights_vcs () =
  let ring = Fixtures.paper_ring () in
  ignore (Noc_deadlock.Removal.run ring.Fixtures.net);
  let s = Dot_export.topology ring.Fixtures.net in
  check bool_c "added VC highlighted" true (string_contains ~needle:"red" s);
  check bool_c "2 VC label" true (string_contains ~needle:"(2 VC" s)

let test_dot_heatmap () =
  let ring = Fixtures.paper_ring () in
  let utilization l = if Ids.Link.to_int l = 0 then 0.9 else 0.0 in
  let s = Dot_export.topology_heatmap ~utilization ring.Fixtures.net in
  check bool_c "hot link red" true (string_contains ~needle:"red" s);
  check bool_c "idle links grey" true (string_contains ~needle:"gray70" s);
  check bool_c "percentage label" true (string_contains ~needle:"L0 90%" s)

let test_dot_cdg_highlights_cycle () =
  let ring = Fixtures.paper_ring () in
  let s = Dot_export.cdg ring.Fixtures.net in
  check bool_c "cycle coloured" true (string_contains ~needle:"color=\"red\"" s);
  ignore (Noc_deadlock.Removal.run ring.Fixtures.net);
  let s' = Dot_export.cdg ring.Fixtures.net in
  check bool_c "no colour when acyclic" false (string_contains ~needle:"color=\"red\"" s');
  check bool_c "primed channel appears" true (string_contains ~needle:"L0'" s')

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random ring-with-chords networks with min-hop routes: the CDG built
   from any valid route set must only contain dependencies between
   head-to-tail links. *)
let random_net_gen =
  QCheck.Gen.(
    let* n_switches = int_range 3 8 in
    let* n_extra = int_bound 5 in
    let* extra =
      list_size (return n_extra)
        (pair (int_bound (n_switches - 1)) (int_bound (n_switches - 1)))
    in
    let* n_flows = int_range 1 12 in
    let* pairs =
      list_size (return n_flows)
        (pair (int_bound (n_switches - 1)) (int_bound (n_switches - 1)))
    in
    return (n_switches, extra, pairs))

let build_random_net (n_switches, extra, pairs) =
  let topo = Topology.create ~n_switches in
  for i = 0 to n_switches - 1 do
    ignore (Topology.add_link topo ~src:(sw i) ~dst:(sw ((i + 1) mod n_switches)))
  done;
  List.iter
    (fun (a, b) -> if a <> b then ignore (Topology.add_link topo ~src:(sw a) ~dst:(sw b)))
    extra;
  let traffic = Traffic.create ~n_cores:n_switches in
  List.iter
    (fun (a, b) ->
      if a <> b then
        ignore (Traffic.add_flow traffic ~src:(core a) ~dst:(core b) ~bandwidth:10.))
    pairs;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  match Routing.route_all net with
  | Ok () -> net
  | Error e -> failwith e

let arbitrary_net =
  QCheck.make
    ~print:(fun (n, extra, pairs) ->
      Printf.sprintf "switches=%d extra=%d flows=%d" n (List.length extra)
        (List.length pairs))
    random_net_gen

let prop_routing_valid =
  QCheck.Test.make ~name:"min-hop routing yields valid networks" ~count:100
    arbitrary_net (fun input ->
      let net = build_random_net input in
      Validate.is_valid net)

let prop_cdg_edges_head_to_tail =
  QCheck.Test.make ~name:"CDG edges connect head-to-tail links" ~count:100
    arbitrary_net (fun input ->
      let net = build_random_net input in
      let topo = Network.topology net in
      let cdg = Cdg.build net in
      Noc_graph.Digraph.fold_edges
        (fun acc u v ->
          let cu = Cdg.channel_of_vertex cdg u and cv = Cdg.channel_of_vertex cdg v in
          let lu = Topology.link topo (Channel.link cu) in
          let lv = Topology.link topo (Channel.link cv) in
          acc && Ids.Switch.equal lu.Topology.dst lv.Topology.src)
        true (Cdg.graph cdg))

let prop_cdg_deps_bounded_by_route_pairs =
  QCheck.Test.make ~name:"CDG edge count bounded by route pair count" ~count:100
    arbitrary_net (fun input ->
      let net = build_random_net input in
      let cdg = Cdg.build net in
      let pair_count =
        List.fold_left
          (fun acc (_, r) -> acc + List.length (Route.consecutive_pairs r))
          0 (Network.routes net)
      in
      Noc_graph.Digraph.n_edges (Cdg.graph cdg) <= pair_count)

let prop_io_roundtrip =
  QCheck.Test.make ~name:"Io.save/load round-trips any valid network" ~count:80
    arbitrary_net (fun input ->
      let net = build_random_net input in
      match Io.load (Io.save net) with
      | Ok net' -> same_design net net'
      | Error _ -> false)

(* Fuzz the design-file parser: single-character mutations of a valid
   file must always yield Ok or Error, never an exception. *)
let prop_io_parser_total =
  let base = Io.save (Fixtures.paper_ring ()).Fixtures.net in
  QCheck.Test.make ~name:"Io.load never raises on mutated input" ~count:300
    QCheck.(pair (int_bound (String.length base - 1)) printable_char)
    (fun (pos, c) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated pos c;
      match Io.load (Bytes.to_string mutated) with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "exception %s at pos %d" (Printexc.to_string e)
            pos)

let prop_tables_consistent =
  QCheck.Test.make ~name:"compiled tables always validate" ~count:80 arbitrary_net
    (fun input ->
      let net = build_random_net input in
      Tables.check net (Tables.compile net) = Ok ())

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_routing_valid; prop_cdg_edges_head_to_tail;
      prop_cdg_deps_bounded_by_route_pairs; prop_io_roundtrip;
      prop_io_parser_total; prop_tables_consistent;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "noc_model"
    [
      ( "ids_channels",
        [
          tc "id roundtrip" test_id_roundtrip;
          tc "negative rejected" test_id_negative_rejected;
          tc "printing" test_id_pp;
          tc "channel make" test_channel_make;
          tc "channel ordering" test_channel_compare_order;
          tc "primed printing" test_channel_pp_primed;
        ] );
      ( "topology",
        [
          tc "create invalid" test_topology_create_invalid;
          tc "links" test_topology_links;
          tc "self loop rejected" test_topology_self_loop_rejected;
          tc "unknown switch rejected" test_topology_unknown_switch;
          tc "vc management" test_topology_vcs;
          tc "channel list" test_topology_channels_list;
          tc "adjacency" test_topology_adjacency;
          tc "parallel links" test_topology_parallel_links;
          tc "connectivity" test_topology_connectivity;
          tc "switch graph" test_topology_switch_graph;
          tc "copy independent" test_topology_copy_independent;
        ] );
      ( "traffic",
        [
          tc "flows" test_traffic_flows;
          tc "rejections" test_traffic_rejections;
          tc "demand between" test_traffic_demand;
        ] );
      ( "route",
        [
          tc "valid route" test_route_check_ok;
          tc "empty routes" test_route_check_empty;
          tc "discontinuity" test_route_check_discontinuous;
          tc "wrong endpoints" test_route_check_wrong_endpoints;
          tc "bad vc" test_route_check_bad_vc;
          tc "repeated channel" test_route_check_repeat;
          tc "pairs and membership" test_route_pairs;
        ] );
      ( "network",
        [
          tc "mapping checked" test_network_mapping_checked;
          tc "routes roundtrip" test_network_routes_roundtrip;
          tc "endpoints" test_network_endpoints;
          tc "loads" test_network_loads;
          tc "copy isolated" test_network_copy_isolated;
        ] );
      ( "cdg",
        [
          tc "paper example" test_cdg_paper_example;
          tc "dependency flows" test_cdg_dependency_flows;
          tc "xy mesh acyclic" test_cdg_acyclic_mesh;
          tc "unused channels included" test_cdg_includes_unused_channels;
          tc "cycle enumeration" test_cdg_cycles_enumeration;
        ] );
      ( "routing",
        [
          tc "min hop" test_routing_min_hop;
          tc "unreachable" test_routing_unreachable;
          tc "same switch" test_routing_same_switch;
          tc "load aware spreads" test_routing_load_aware_spreads;
        ] );
      ( "validate",
        [
          tc "ok" test_validate_ok;
          tc "missing route" test_validate_missing_route;
          tc "routes equivalent" test_validate_routes_equivalent;
        ] );
      ( "routing_function",
        [
          tc "of static routes" test_rf_of_static_routes;
          tc "minimal adaptive diamond" test_rf_minimal_adaptive_diamond;
          tc "vc handling" test_rf_minimal_adaptive_vcs;
          tc "validation" test_rf_make_validates;
          tc "restrict and connectivity" test_rf_restrict_and_connectivity;
        ] );
      ( "metrics",
        [
          tc "ring" test_metrics_ring;
          tc "unrouted" test_metrics_unrouted;
          tc "critical links on the ring" test_metrics_critical_links;
          tc "no critical links on the mesh" test_metrics_critical_links_mesh;
          tc "cut bandwidth" test_metrics_cut_bandwidth;
        ] );
      ( "bandwidth",
        [
          tc "feasible" test_bandwidth_feasible;
          tc "oversubscribed" test_bandwidth_oversubscribed;
          tc "validation" test_bandwidth_validation;
        ] );
      ( "io",
        [
          tc "roundtrip ring" test_io_roundtrip_ring;
          tc "roundtrip with VCs" test_io_roundtrip_with_vcs;
          tc "comments and blanks" test_io_comments_and_blanks;
          tc "error messages" test_io_error_messages;
          tc "invalid route rejected" test_io_rejects_invalid_route;
          tc "file roundtrip" test_io_file_roundtrip;
          tc "missing file" test_io_missing_file;
        ] );
      ( "tables",
        [
          tc "compile ring" test_tables_compile_ring;
          tc "lookup semantics" test_tables_lookup_semantics;
          tc "check passes" test_tables_check_passes;
          tc "check catches stale tables" test_tables_check_catches_stale;
          tc "after removal" test_tables_after_removal;
        ] );
      ( "dot_export",
        [
          tc "topology" test_dot_topology;
          tc "topology highlights VCs" test_dot_topology_highlights_vcs;
          tc "utilization heatmap" test_dot_heatmap;
          tc "cdg highlights cycle" test_dot_cdg_highlights_cycle;
        ] );
      ("properties", qcheck_cases);
    ]
