open Noc_experiments

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Series                                                              *)
(* ------------------------------------------------------------------ *)

let test_series_render () =
  let t = Series.create ~header:[ "a"; "bb" ] in
  Series.add_row t [ "1"; "2" ];
  Series.add_row t [ "10"; "200" ];
  let s = Format.asprintf "%a" Series.pp t in
  check bool_c "header present" true (String.length s > 0);
  check int_c "three lines"
    3
    (List.length (String.split_on_char '\n' s))

let test_series_arity () =
  let t = Series.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Series.add_row: arity mismatch")
    (fun () -> Series.add_row t [ "only one" ])

(* ------------------------------------------------------------------ *)
(* Ring example                                                        *)
(* ------------------------------------------------------------------ *)

let test_ring_example_structure () =
  let t = Ring_example.build () in
  let cdg = Noc_model.Cdg.build t.Ring_example.net in
  check bool_c "cyclic as designed" false (Noc_model.Cdg.is_deadlock_free cdg);
  check int_c "4 links" 4 (Array.length t.Ring_example.links);
  check int_c "cycle of 4" 4 (List.length (Ring_example.cycle t))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_ring_example_narration_mentions_table1 () =
  let s = Format.asprintf "%t" Ring_example.narrate in
  check bool_c "narrates Table 1" true (contains ~needle:"Table 1" s);
  check bool_c "shows the break" true (contains ~needle:"break forward" s);
  check bool_c "reaches the acyclic CDG" true (contains ~needle:"acyclic=true" s)

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let spec name =
  match Noc_benchmarks.Registry.find name with
  | Some s -> s
  | None -> Alcotest.failf "missing %s" name

let test_sweep_point_consistency () =
  let p = Sweep.evaluate (spec "D36_8") ~n_switches:14 in
  check bool_c "baseline has no added VCs" true (p.Sweep.baseline.Sweep.vcs_added = 0);
  check bool_c "removal total = baseline + added" true
    (p.Sweep.removal.Sweep.total_vcs
    = p.Sweep.baseline.Sweep.total_vcs + p.Sweep.removal.Sweep.vcs_added);
  check bool_c "ordering total consistent" true
    (p.Sweep.ordering.Sweep.total_vcs
    = p.Sweep.baseline.Sweep.total_vcs + p.Sweep.ordering.Sweep.vcs_added);
  check bool_c "initially cyclic here" false p.Sweep.initially_deadlock_free;
  check bool_c "removal did work" true (p.Sweep.removal_iterations > 0)

let test_sweep_removal_beats_ordering () =
  let p = Sweep.evaluate (spec "D36_8") ~n_switches:14 in
  check bool_c "fewer VCs than greedy ordering" true
    (p.Sweep.removal.Sweep.vcs_added <= p.Sweep.ordering.Sweep.vcs_added);
  check bool_c "far fewer than hop-index" true
    (p.Sweep.removal.Sweep.vcs_added < p.Sweep.ordering_hop.Sweep.vcs_added);
  check bool_c "cheaper power than hop-index" true
    (p.Sweep.removal.Sweep.power_mw < p.Sweep.ordering_hop.Sweep.power_mw);
  check bool_c "smaller area than hop-index" true
    (p.Sweep.removal.Sweep.area_mm2 < p.Sweep.ordering_hop.Sweep.area_mm2)

let test_sweep_deterministic () =
  let a = Sweep.evaluate (spec "D26_media") ~n_switches:11 in
  let b = Sweep.evaluate (spec "D26_media") ~n_switches:11 in
  check bool_c "identical points" true (a = b)

(* ------------------------------------------------------------------ *)
(* Figures (the reproduction's acceptance tests)                       *)
(* ------------------------------------------------------------------ *)

let test_fig8_shape () =
  (* Figure 8's qualitative content: removal needs (near) zero VCs on
     D26_media at every switch count; resource ordering pays more and
     grows with the switch count. *)
  let rows = Figures.fig8 () in
  check int_c "eight sweep points" 8 (List.length rows);
  List.iter
    (fun r ->
      check bool_c
        (Printf.sprintf "removal <= ordering at %d" r.Figures.n_switches)
        true
        (r.Figures.removal_vcs <= r.Figures.ordering_vcs))
    rows;
  let zero_points =
    List.length (List.filter (fun r -> r.Figures.removal_vcs = 0) rows)
  in
  check bool_c "removal is zero for most switch counts" true (zero_points >= 6);
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  check bool_c "ordering grows with switch count" true
    (last.Figures.ordering_vcs > first.Figures.ordering_vcs)

let test_fig9_shape () =
  (* Figure 9: on the dense D36_8, removal needs some VCs but far fewer
     than resource ordering at every point. *)
  let rows = Figures.fig9 () in
  check int_c "seven sweep points" 7 (List.length rows);
  List.iter
    (fun r ->
      check bool_c
        (Printf.sprintf "removal strictly cheaper at %d" r.Figures.n_switches)
        true
        (r.Figures.removal_vcs < r.Figures.ordering_vcs))
    rows;
  let total_removal = List.fold_left (fun a r -> a + r.Figures.removal_vcs) 0 rows in
  let total_ordering = List.fold_left (fun a r -> a + r.Figures.ordering_vcs) 0 rows in
  check bool_c "at least 5x cheaper overall" true
    (total_ordering >= 5 * max 1 total_removal)

let test_fig10_shape () =
  (* Figure 10: ordering consumes more power than removal on every
     benchmark; removal's own overhead stays below the paper's 5 %. *)
  let rows = Figures.fig10 () in
  check int_c "six benchmarks" 6 (List.length rows);
  List.iter
    (fun r ->
      check bool_c (r.Figures.benchmark ^ ": ordering >= 1.0") true
        (r.Figures.ordering_power_norm >= 1.0);
      check bool_c (r.Figures.benchmark ^ ": overhead < 5%") true
        (r.Figures.removal_overhead_vs_none < 0.05);
      check bool_c (r.Figures.benchmark ^ ": area saving >= 0") true
        (r.Figures.area_saving >= 0.))
    rows;
  (* At least half the benchmarks show a clearly visible (>5 %) gap. *)
  let visible =
    List.length (List.filter (fun r -> r.Figures.ordering_power_norm > 1.05) rows)
  in
  check bool_c "gap visible on most benchmarks" true (visible >= 3)

let test_ablation_rows () =
  let rows = Figures.ablation () in
  check int_c "ten configurations" 10 (List.length rows);
  (* The reroute-first pre-pass must never leave removal worse off. *)
  let vcs prefix =
    (List.find
       (fun r ->
         String.length r.Figures.configuration >= String.length prefix
         && String.sub r.Figures.configuration 0 (String.length prefix) = prefix)
       rows)
      .Figures.vcs_added
  in
  check bool_c "reroute-first never worse" true
    (vcs "reroute-first" <= vcs "removal: smallest cycle, fwd+bwd");
  let find prefix =
    List.find
      (fun r ->
        String.length r.Figures.configuration >= String.length prefix
        && String.sub r.Figures.configuration 0 (String.length prefix) = prefix)
      rows
  in
  let removal = find "removal: smallest cycle, fwd+bwd" in
  let hop = find "resource ordering: hop-index" in
  check bool_c "removal cheaper than the paper baseline" true
    (removal.Figures.vcs_added < hop.Figures.vcs_added);
  (* The paper's argument against turn prohibition, quantified: on the
     design as synthesized, up*/down* is infeasible. *)
  let updown_raw = find "up*/down* routing (as synthesized)" in
  check bool_c "up*/down* infeasible on custom topology" true
    (updown_raw.Figures.note = "INFEASIBLE (unidirectional links)");
  let updown_bidir = find "up*/down* routing (bidirectionalized)" in
  check bool_c "bidirectionalizing costs links" true
    (contains ~needle:"links" updown_bidir.Figures.note)

(* Golden values: the whole pipeline is deterministic, so the exact
   figure series are pinned.  A change here is a change to the
   reproduction's results and must be deliberate (update EXPERIMENTS.md
   alongside). *)
let test_fig8_golden () =
  let rows =
    List.map
      (fun r -> (r.Figures.n_switches, r.Figures.removal_vcs, r.Figures.ordering_vcs))
      (Figures.fig8 ())
  in
  check
    Alcotest.(list (triple int int int))
    "figure 8 exact series"
    [
      (5, 0, 0); (8, 0, 1); (11, 0, 2); (14, 0, 5); (17, 0, 14); (20, 0, 19);
      (23, 0, 20); (25, 2, 38);
    ]
    rows

let test_fig9_golden () =
  let rows =
    List.map
      (fun r -> (r.Figures.n_switches, r.Figures.removal_vcs, r.Figures.ordering_vcs))
      (Figures.fig9 ())
  in
  check
    Alcotest.(list (triple int int int))
    "figure 9 exact series"
    [
      (10, 1, 25); (14, 3, 54); (18, 9, 86); (22, 6, 105); (26, 17, 152);
      (30, 5, 162); (35, 19, 215);
    ]
    rows

(* ------------------------------------------------------------------ *)
(* Design space                                                        *)
(* ------------------------------------------------------------------ *)

let test_design_space_explore () =
  let points =
    Design_space.explore ~switch_counts:[ 8; 11 ] ~degrees:[ 3; 4 ]
      (spec "D26_media")
  in
  check int_c "2 x 2 x 2 points" 8 (List.length points);
  let front = Design_space.pareto_front points in
  check bool_c "front non-empty" true (front <> []);
  check bool_c "front subset" true
    (List.for_all (fun p -> p.Design_space.pareto) front);
  (* Nothing on the front may be dominated by any point. *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let dominates =
            q.Design_space.power_mw < p.Design_space.power_mw
            && q.Design_space.area_mm2 < p.Design_space.area_mm2
            && q.Design_space.avg_hops < p.Design_space.avg_hops
          in
          check bool_c "front undominated" false dominates)
        points)
    front

let test_pareto_front_logic () =
  let mk power area hops =
    {
      Design_space.n_switches = 0;
      max_degree = 0;
      mapper = "x";
      vcs_added = 0;
      power_mw = power;
      area_mm2 = area;
      avg_hops = hops;
      pareto = false;
    }
  in
  let a = mk 1. 1. 1. and b = mk 2. 2. 2. and c = mk 1. 2. 0.5 in
  let front = Design_space.pareto_front [ a; b; c ] in
  check int_c "b dominated" 2 (List.length front)

let test_every_benchmark_every_scale () =
  (* Safety net across the whole matrix: every benchmark, several
     switch counts — synthesis must produce a valid design and removal
     must reach deadlock freedom while preserving physical routes. *)
  List.iter
    (fun s ->
      List.iter
        (fun n ->
          if n <= s.Noc_benchmarks.Spec.n_cores then begin
            let traffic = s.Noc_benchmarks.Spec.build () in
            let net = Noc_synth.Custom.synthesize_exn traffic ~n_switches:n in
            let before = Noc_model.Network.copy net in
            let r = Noc_deadlock.Removal.run net in
            let label = Printf.sprintf "%s@%d" s.Noc_benchmarks.Spec.name n in
            check bool_c (label ^ " free") true r.Noc_deadlock.Removal.deadlock_free;
            check bool_c (label ^ " valid") true (Noc_model.Validate.is_valid net);
            check bool_c (label ^ " routes preserved") true
              (Noc_model.Validate.routes_equivalent ~before ~after:net)
          end)
        [ 4; 6; 10; 14; 19; 24; 30; 36 ])
    Noc_benchmarks.Registry.all

(* ------------------------------------------------------------------ *)
(* Resilience                                                          *)
(* ------------------------------------------------------------------ *)

let test_resilience_ring_fragile () =
  (* Every link of the unidirectional ring is fatal. *)
  let t = Ring_example.build () in
  let r = Resilience.sweep t.Ring_example.net in
  check int_c "all 4 links" 4 r.Resilience.total_links;
  check int_c "nothing survivable" 0 r.Resilience.survivable_failures;
  List.iter
    (fun o -> check bool_c "unroutable" false o.Resilience.routable)
    r.Resilience.outcomes

let test_resilience_hardening_helps () =
  let t = Ring_example.build () in
  let net = t.Ring_example.net in
  ignore (Noc_synth.Harden.run net);
  let r = Resilience.sweep net in
  check int_c "all failures survivable" r.Resilience.total_links
    r.Resilience.survivable_failures;
  (* And the original design was not mutated by the sweep itself. *)
  check int_c "links intact" 8
    (Noc_model.Topology.n_links (Noc_model.Network.topology net))

let test_resilience_drop_link () =
  let t = Ring_example.build () in
  let degraded = Resilience.drop_link t.Ring_example.net (Fixtures.lk 0) in
  check int_c "one fewer link" 3
    (Noc_model.Topology.n_links (Noc_model.Network.topology degraded));
  (* VC counts of survivors are preserved. *)
  ignore
    (Noc_model.Topology.add_vc (Noc_model.Network.topology t.Ring_example.net)
       (Fixtures.lk 2));
  let degraded' = Resilience.drop_link t.Ring_example.net (Fixtures.lk 0) in
  let has_two_vcs =
    List.exists
      (fun (l : Noc_model.Topology.link) ->
        Noc_model.Topology.vc_count
          (Noc_model.Network.topology degraded')
          l.Noc_model.Topology.id
        = 2)
      (Noc_model.Topology.links (Noc_model.Network.topology degraded'))
  in
  check bool_c "vc counts carried over" true has_two_vcs

(* ------------------------------------------------------------------ *)
(* Load-latency                                                        *)
(* ------------------------------------------------------------------ *)

let test_load_latency_rejects_cyclic () =
  let t = Ring_example.build () in
  Alcotest.check_raises "cyclic rejected"
    (Invalid_argument "Load_latency.sweep: design still has CDG cycles")
    (fun () -> ignore (Load_latency.sweep t.Ring_example.net))

let test_load_latency_monotone_load () =
  let t = Ring_example.build () in
  ignore (Noc_deadlock.Removal.run t.Ring_example.net);
  let rows =
    Load_latency.sweep ~packets_per_flow:4 ~intervals:[ 64; 16; 4 ]
      t.Ring_example.net
  in
  check int_c "three points" 3 (List.length rows);
  (* Rows come back lowest load first; offered load strictly rises. *)
  let rec rising = function
    | a :: (b :: _ as rest) ->
        a.Load_latency.offered_load < b.Load_latency.offered_load && rising rest
    | [ _ ] | [] -> true
  in
  check bool_c "load rising" true (rising rows);
  List.iter
    (fun r ->
      check bool_c "all packets delivered" true r.Load_latency.completed;
      check bool_c "latency positive" true (r.Load_latency.avg_latency > 0.))
    rows

let test_load_latency_low_load_is_light () =
  (* At very light load the average latency approaches the no-contention
     path latency: small, bounded. *)
  let t = Ring_example.build () in
  ignore (Noc_deadlock.Removal.run t.Ring_example.net);
  match Load_latency.sweep ~packets_per_flow:2 ~intervals:[ 256 ] t.Ring_example.net with
  | [ r ] -> check bool_c "light load, light latency" true (r.Load_latency.avg_latency < 30.)
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Sim check                                                           *)
(* ------------------------------------------------------------------ *)

let test_sim_check_ring_demo () =
  let before, after = Sim_check.ring_demo () in
  check bool_c "before cyclic" true before.Sim_check.cdg_cyclic;
  check bool_c "after acyclic" false after.Sim_check.cdg_cyclic;
  (match before.Sim_check.outcome with
  | Noc_sim.Engine.Deadlocked _ -> ()
  | Noc_sim.Engine.Completed _ | Noc_sim.Engine.Timed_out _ ->
      Alcotest.fail "ring must deadlock before removal");
  match after.Sim_check.outcome with
  | Noc_sim.Engine.Completed _ -> ()
  | Noc_sim.Engine.Deadlocked _ | Noc_sim.Engine.Timed_out _ ->
      Alcotest.fail "ring must complete after removal"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "noc_experiments"
    [
      ( "series",
        [ tc "render" test_series_render; tc "arity" test_series_arity ] );
      ( "ring_example",
        [
          tc "structure" test_ring_example_structure;
          tc "narration" test_ring_example_narration_mentions_table1;
        ] );
      ( "sweep",
        [
          tc "consistency" test_sweep_point_consistency;
          tc "removal beats ordering" test_sweep_removal_beats_ordering;
          tc "deterministic" test_sweep_deterministic;
        ] );
      ( "figures",
        [
          slow "figure 8 shape" test_fig8_shape;
          slow "figure 9 shape" test_fig9_shape;
          slow "figure 8 golden values" test_fig8_golden;
          slow "figure 9 golden values" test_fig9_golden;
          slow "figure 10 shape" test_fig10_shape;
          tc "ablation" test_ablation_rows;
        ] );
      ( "design_space",
        [
          tc "explore" test_design_space_explore;
          tc "pareto logic" test_pareto_front_logic;
        ] );
      ( "full_matrix",
        [ slow "every benchmark at every scale" test_every_benchmark_every_scale ] );
      ( "resilience",
        [
          tc "ring is fragile" test_resilience_ring_fragile;
          tc "hardening helps" test_resilience_hardening_helps;
          tc "drop_link" test_resilience_drop_link;
        ] );
      ( "load_latency",
        [
          tc "rejects cyclic designs" test_load_latency_rejects_cyclic;
          tc "monotone load" test_load_latency_monotone_load;
          tc "light load light latency" test_load_latency_low_load_is_light;
        ] );
      ("sim_check", [ tc "ring demo" test_sim_check_ring_demo ]);
    ]
