(* The production tool flow, end to end on one design: synthesize ->
   save to disk -> reload -> health report -> reroute-first ->
   deadlock removal -> verify -> forwarding tables -> final report.
   Everything a team would script around `noc_tool` done through the
   library API.

   Run with: dune exec examples/toolflow.exe *)

open Noc_model

let step n title = Format.printf "@.[%d] %s@." n title

let () =
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> failwith "benchmark missing"
  in
  step 1 "synthesize D36_8 at 14 switches";
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Noc_synth.Custom.synthesize_exn traffic ~n_switches:14 in
  Format.printf "  %d links, %d flows routed@."
    (Topology.n_links (Network.topology net))
    (Traffic.n_flows traffic);

  step 2 "save and reload through the design-file format";
  let path = Filename.temp_file "toolflow" ".noc" in
  Io.save_file path net;
  let net =
    match Io.load_file path with
    | Ok net -> net
    | Error e -> failwith ("reload failed: " ^ e)
  in
  Sys.remove path;
  Format.printf "  round-trip OK@.";

  step 3 "design health report";
  Format.printf "  %a@." Metrics.pp (Metrics.of_network net);
  let bw = Bandwidth.analyze ~capacity_mbps:4000. net in
  Format.printf "  %a@." Bandwidth.pp bw;
  let critical = Metrics.critical_links net in
  Format.printf "  single-point-of-failure links: %d@." (List.length critical);

  step 4 "deadlock status";
  (match Cdg.smallest_cycle (Cdg.build net) with
  | Some cycle ->
      Format.printf "  CYCLIC: smallest cycle has %d channels@."
        (List.length cycle)
  | None -> Format.printf "  already deadlock-free@.");

  step 5 "reroute-first (free fixes), then minimal VC removal";
  let rr = Noc_deadlock.Reroute.run net in
  Format.printf "  %a@." Noc_deadlock.Reroute.pp_report rr;
  let report = Noc_deadlock.Removal.run net in
  Format.printf "  %a@." Noc_deadlock.Removal.pp_report report;

  step 6 "verification certificate";
  let cert = Noc_deadlock.Verify.certify net in
  Format.printf "  acyclic=%b, %d channels, %d dependencies@."
    cert.Noc_deadlock.Verify.acyclic cert.Noc_deadlock.Verify.n_channels
    cert.Noc_deadlock.Verify.n_dependencies;
  (match cert.Noc_deadlock.Verify.numbering with
  | Some numbering ->
      Format.printf "  numbering witness re-checks: %b@."
        (Noc_deadlock.Verify.check_numbering net numbering)
  | None -> ());

  step 7 "compile the hardware forwarding tables";
  let tables = Tables.compile net in
  (match Tables.check net tables with
  | Ok () ->
      Format.printf "  %d entries, consistent with all routes@."
        (Tables.total_entries tables)
  | Error e -> failwith e);

  step 8 "price the final design";
  Format.printf "  %a@." Noc_power.Report.pp_summary
    (Noc_power.Report.of_network net);
  let fe = Noc_power.Flow_energy.of_network net in
  (match Noc_power.Flow_energy.ranked fe with
  | top :: _ ->
      Format.printf "  hungriest flow: %a at %.3f mW@." Ids.Flow.pp
        top.Noc_power.Flow_energy.flow top.Noc_power.Flow_energy.power_mw
  | [] -> ());

  step 9 "stress the result in the wormhole simulator";
  let packets =
    Noc_benchmarks.Workloads.bandwidth_proportional net ~packet_length:4
      ~duration:2000 ~capacity_mbps:4000. ~seed:1
  in
  match Noc_sim.Engine.run net packets with
  | Noc_sim.Engine.Completed s ->
      Format.printf "  %d packets delivered in %d cycles, avg latency %.1f@."
        s.Noc_sim.Stats.delivered s.Noc_sim.Stats.cycles
        (Noc_sim.Stats.avg_latency s)
  | outcome -> Format.printf "  %a@." Noc_sim.Engine.pp_outcome outcome
