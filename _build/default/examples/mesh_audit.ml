(* Audit a regular mesh under two routing policies: unrestricted
   min-hop routing (deadlock-prone — the classic four-turn cycle) vs
   the same mesh after the removal pass.  Shows the library working on
   regular topologies, not just synthesized irregular ones, and
   contrasts the VC cost with resource ordering.

   Run with: dune exec examples/mesh_audit.exe [columns rows] *)

open Noc_model

let () =
  let columns, rows =
    if Array.length Sys.argv > 2 then
      (int_of_string Sys.argv.(1), int_of_string Sys.argv.(2))
    else (4, 4)
  in
  let topo = Noc_synth.Regular.mesh ~columns ~rows in
  let n = columns * rows in
  (* One core per switch, all-to-all-neighbourhood traffic: every core
     talks to the 4 cores at Manhattan distance <= 2 (wrap-free). *)
  let traffic = Traffic.create ~n_cores:n in
  let coord i = (i mod columns, i / columns) in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then begin
        let xs, ys = coord s and xd, yd = coord d in
        let dist = abs (xs - xd) + abs (ys - yd) in
        if dist <= 2 then
          ignore
            (Traffic.add_flow traffic ~src:(Ids.Core.of_int s)
               ~dst:(Ids.Core.of_int d) ~bandwidth:50.)
      end
    done
  done;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        Ids.Switch.of_int (Ids.Core.to_int c))
  in
  (match Routing.route_all_load_aware net with
  | Ok () -> ()
  | Error e -> failwith e);
  Format.printf "%dx%d mesh, %d flows, min-hop load-aware routing@.@." columns
    rows (Traffic.n_flows traffic);
  let cdg = Cdg.build net in
  Format.printf "CDG: %d channels, %d dependencies, deadlock-free: %b@.@."
    (Cdg.n_channels cdg)
    (Noc_graph.Digraph.n_edges (Cdg.graph cdg))
    (Cdg.is_deadlock_free cdg);
  let removal_net = Network.copy net in
  let report = Noc_deadlock.Removal.run removal_net in
  Format.printf "removal: %d cycles broken, +%d VCs@."
    report.Noc_deadlock.Removal.iterations report.Noc_deadlock.Removal.vcs_added;
  let ordering_net = Network.copy net in
  let ordering =
    Noc_deadlock.Resource_ordering.apply
      ~strategy:Noc_deadlock.Resource_ordering.Hop_index ordering_net
  in
  Format.printf "resource ordering: +%d VCs (%d classes)@.@."
    ordering.Noc_deadlock.Resource_ordering.vcs_added
    ordering.Noc_deadlock.Resource_ordering.classes_used;
  let cert = Noc_deadlock.Verify.certify removal_net in
  Format.printf "post-removal certificate: acyclic=%b, %d channels, %d deps@.@."
    cert.Noc_deadlock.Verify.acyclic cert.Noc_deadlock.Verify.n_channels
    cert.Noc_deadlock.Verify.n_dependencies;
  (* Same audit on a torus under all-to-all traffic: the wrap-around
     links let min-hop routes close dependency cycles around each ring
     dimension, so the removal pass has real work. *)
  let torus = Noc_synth.Regular.torus ~columns ~rows in
  let all_pairs = Traffic.create ~n_cores:n in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        ignore
          (Traffic.add_flow all_pairs ~src:(Ids.Core.of_int s)
             ~dst:(Ids.Core.of_int d) ~bandwidth:20.)
    done
  done;
  let tnet =
    Network.make ~topology:torus ~traffic:all_pairs ~mapping:(fun c ->
        Ids.Switch.of_int (Ids.Core.to_int c))
  in
  (match Routing.route_all_load_aware tnet with
  | Ok () -> ()
  | Error e -> failwith e);
  Format.printf "%dx%d torus, all-to-all traffic (%d flows)@." columns rows
    (Traffic.n_flows all_pairs);
  Format.printf "torus deadlock-free as routed: %b@."
    (Noc_deadlock.Removal.is_deadlock_free tnet);
  let treport = Noc_deadlock.Removal.run tnet in
  Format.printf "torus removal: %d cycles broken, +%d VCs, now acyclic: %b@."
    treport.Noc_deadlock.Removal.iterations
    treport.Noc_deadlock.Removal.vcs_added
    (Noc_deadlock.Removal.is_deadlock_free tnet)
