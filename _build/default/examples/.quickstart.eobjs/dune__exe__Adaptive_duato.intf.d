examples/adaptive_duato.mli:
