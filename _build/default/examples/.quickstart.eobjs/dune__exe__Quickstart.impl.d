examples/quickstart.ml: Cdg Channel Format Ids Network Noc_deadlock Noc_model Topology Traffic
