examples/custom_soc.mli:
