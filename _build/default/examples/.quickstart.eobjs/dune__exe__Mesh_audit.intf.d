examples/mesh_audit.mli:
