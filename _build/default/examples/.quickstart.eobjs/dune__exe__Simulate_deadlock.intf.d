examples/simulate_deadlock.mli:
