examples/toolflow.mli:
