examples/custom_soc.ml: Array Format List Network Noc_benchmarks Noc_deadlock Noc_model Noc_power Noc_synth String Sys Topology Traffic
