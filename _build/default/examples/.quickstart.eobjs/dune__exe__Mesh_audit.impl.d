examples/mesh_audit.ml: Array Cdg Format Ids Network Noc_deadlock Noc_graph Noc_model Noc_synth Routing Sys Traffic
