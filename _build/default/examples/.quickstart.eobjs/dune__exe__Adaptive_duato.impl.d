examples/adaptive_duato.ml: Channel Format Ids List Network Noc_deadlock Noc_experiments Noc_model Noc_sim Noc_synth Routing_function Topology Traffic
