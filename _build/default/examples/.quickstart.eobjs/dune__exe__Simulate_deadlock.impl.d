examples/simulate_deadlock.ml: Format List Noc_experiments Noc_sim String
