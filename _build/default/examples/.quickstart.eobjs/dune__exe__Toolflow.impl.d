examples/toolflow.ml: Bandwidth Cdg Filename Format Ids Io List Metrics Network Noc_benchmarks Noc_deadlock Noc_model Noc_power Noc_sim Noc_synth Sys Tables Topology Traffic
