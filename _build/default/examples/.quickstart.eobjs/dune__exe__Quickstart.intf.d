examples/quickstart.mli:
