(* Duato's condition in action (the paper's ref. [12]): fully adaptive
   minimal routing on a mesh is deadlock-prone on its own, but adding
   an XY escape lane (VC 0) makes it provably deadlock-free — and the
   adaptive wormhole simulator confirms the proof behaviourally.

   Run with: dune exec examples/adaptive_duato.exe *)

open Noc_model

let columns = 3
let rows = 3
let n = columns * rows

let build_network () =
  let topo = Noc_synth.Regular.mesh ~columns ~rows in
  (* Second VC on every link: VC 0 will be the escape lane, VC 1 the
     adaptive lane. *)
  List.iter
    (fun (l : Topology.link) -> ignore (Topology.add_vc topo l.Topology.id))
    (Topology.links topo);
  let traffic = Traffic.create ~n_cores:n in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        ignore
          (Traffic.add_flow traffic ~src:(Ids.Core.of_int s)
             ~dst:(Ids.Core.of_int d) ~bandwidth:10.)
    done
  done;
  Network.make ~topology:topo ~traffic ~mapping:(fun c ->
      Ids.Switch.of_int (Ids.Core.to_int c))

let () =
  let net = build_network () in
  Format.printf
    "3x3 mesh, 2 VCs per link, all-to-all traffic, fully adaptive minimal \
     routing.@.@.";
  (* Without an escape structure: treat every channel as escape, i.e.
     require the whole adaptive CDG to be acyclic.  It is not. *)
  let fully_adaptive = Routing_function.minimal_adaptive net in
  let naive =
    Noc_deadlock.Duato.check net fully_adaptive
      ~escape:Noc_deadlock.Duato.escape_everything
  in
  Format.printf "1) All channels as escape (plain CDG acyclicity):@.%a@.@."
    Noc_deadlock.Duato.pp_verdict naive;
  (* With the XY escape lane on VC 0. *)
  let rf = Noc_synth.Mesh_routing.adaptive_with_xy_escape ~columns ~rows net in
  let verdict =
    Noc_deadlock.Duato.check net rf ~escape:(fun c -> Channel.vc c = 0)
  in
  Format.printf "2) VC 0 as XY escape lane:@.%a@.@." Noc_deadlock.Duato.pp_verdict
    verdict;
  (* And a broken escape set, to show the connectivity side trips. *)
  let broken =
    Noc_deadlock.Duato.check net rf ~escape:(fun c ->
        Channel.vc c = 0 && Ids.Link.to_int (Channel.link c) mod 5 <> 0)
  in
  Format.printf "3) Escape set with holes (every 5th link removed):@.%a@.@."
    Noc_deadlock.Duato.pp_verdict broken;
  (* Behavioural confirmation: the adaptive simulator completes a
     stress burst under the protected function. *)
  let workload =
    Noc_sim.Adaptive_engine.workload_of_flows net ~packet_length:8
      ~packets_per_flow:2
  in
  Format.printf "4) Adaptive simulation under the escape-protected function:@.";
  (match Noc_sim.Adaptive_engine.run net rf workload with
  | Noc_sim.Adaptive_engine.Completed s ->
      Format.printf
        "   completed: %d packets in %d cycles, avg latency %.1f@.@."
        s.Noc_sim.Stats.delivered s.Noc_sim.Stats.cycles
        (Noc_sim.Stats.avg_latency s)
  | outcome ->
      Format.printf "   %a@.@." Noc_sim.Adaptive_engine.pp_outcome outcome);
  (* And the same workload on an UNPROTECTED single-lane ring stalls. *)
  let ring = Noc_experiments.Ring_example.build () in
  let ring_net = ring.Noc_experiments.Ring_example.net in
  let ring_rf = Routing_function.minimal_adaptive ring_net in
  let ring_load =
    Noc_sim.Adaptive_engine.workload_of_flows ring_net ~packet_length:8
      ~packets_per_flow:2
  in
  Format.printf "5) Same experiment, adaptive routing on the unprotected ring:@.";
  match Noc_sim.Adaptive_engine.run ring_net ring_rf ring_load with
  | Noc_sim.Adaptive_engine.Stalled d ->
      Format.printf "   STALLED at cycle %d with %d flits stuck — the deadlock \
                     the paper's algorithm exists to prevent.@."
        d.Noc_sim.Adaptive_engine.cycle d.Noc_sim.Adaptive_engine.in_network_flits
  | outcome -> Format.printf "   %a@." Noc_sim.Adaptive_engine.pp_outcome outcome
