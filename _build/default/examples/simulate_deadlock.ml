(* Watch a wormhole deadlock actually happen, then watch the fixed
   design complete: the behavioural counterpart of the paper's static
   guarantee, on both the ring example and a synthesized benchmark.

   Run with: dune exec examples/simulate_deadlock.exe *)

let pp_compact ppf (r : Noc_experiments.Sim_check.result) =
  let open Noc_sim.Engine in
  Format.fprintf ppf "%s (CDG %s): " r.Noc_experiments.Sim_check.label
    (if r.Noc_experiments.Sim_check.cdg_cyclic then "cyclic" else "acyclic");
  match r.Noc_experiments.Sim_check.outcome with
  | Completed s ->
      Format.fprintf ppf "completed in %d cycles, %d packets, avg latency %.1f"
        s.Noc_sim.Stats.cycles s.Noc_sim.Stats.delivered
        (Noc_sim.Stats.avg_latency s)
  | Timed_out s ->
      Format.fprintf ppf "timed out after %d cycles (%d delivered)"
        s.Noc_sim.Stats.cycles s.Noc_sim.Stats.delivered
  | Deadlocked d ->
      Format.fprintf ppf "DEADLOCK at cycle %d, %d flits stuck%s" d.cycle
        d.in_network_flits
        (match d.waits_for_cycle with
        | Some ids ->
            ", waits-for cycle: "
            ^ String.concat " -> " (List.map string_of_int ids)
        | None -> "")

let () =
  Format.printf "== The paper's ring example under burst traffic ==@.@.";
  let before, after = Noc_experiments.Sim_check.ring_demo () in
  Format.printf "  %a@.  %a@.@." pp_compact before pp_compact after;
  (match before.Noc_experiments.Sim_check.outcome with
  | Noc_sim.Engine.Deadlocked d ->
      Format.printf
        "The waits-for cycle above is the runtime shadow of the CDG cycle the \
         algorithm removes: each packet holds a channel the next one needs \
         (%d flits stuck forever).@.@."
        d.Noc_sim.Engine.in_network_flits
  | Noc_sim.Engine.Completed _ | Noc_sim.Engine.Timed_out _ -> ());
  Format.printf "== Same experiment on synthesized D36_8 at 14 switches ==@.@.";
  let before, after = Noc_experiments.Sim_check.benchmark_demo () in
  Format.printf "  %a@.  %a@." pp_compact before pp_compact after
