(* Custom SoC flow: take a realistic benchmark (D26_media), synthesize
   application-specific topologies at several switch counts, remove
   deadlocks, and compare the cost against resource ordering with the
   power/area model — the full flow behind Figures 8 and 10.

   Run with: dune exec examples/custom_soc.exe [benchmark] *)

open Noc_model

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "D26_media" in
  let spec =
    match Noc_benchmarks.Registry.find name with
    | Some s -> s
    | None ->
        Format.eprintf "unknown benchmark %s; available: %s@." name
          (String.concat ", " Noc_benchmarks.Registry.names);
        exit 2
  in
  Format.printf "benchmark: %a@.@." Noc_benchmarks.Spec.pp spec;
  let traffic = spec.Noc_benchmarks.Spec.build () in
  Format.printf "flows: %d, total demand %.0f MB/s@.@." (Traffic.n_flows traffic)
    (Traffic.total_bandwidth traffic);
  List.iter
    (fun n_switches ->
      let net = Noc_synth.Custom.synthesize_exn traffic ~n_switches in
      let topo = Network.topology net in
      Format.printf "== %d switches: %d links synthesized ==@." n_switches
        (Topology.n_links topo);
      (* Method 1: the paper's minimal deadlock removal. *)
      let removal_net = Network.copy net in
      let report = Noc_deadlock.Removal.run removal_net in
      let removal_power = Noc_power.Report.of_network removal_net in
      Format.printf "  removal:  +%d VC -> %a@."
        report.Noc_deadlock.Removal.vcs_added Noc_power.Report.pp_summary
        removal_power;
      (* Method 2: resource ordering as described in the paper. *)
      let ordering_net = Network.copy net in
      let ordering =
        Noc_deadlock.Resource_ordering.apply
          ~strategy:Noc_deadlock.Resource_ordering.Hop_index ordering_net
      in
      let ordering_power = Noc_power.Report.of_network ordering_net in
      Format.printf "  ordering: +%d VC -> %a@."
        ordering.Noc_deadlock.Resource_ordering.vcs_added
        Noc_power.Report.pp_summary ordering_power;
      let ratio =
        ordering_power.Noc_power.Report.total_power_mw
        /. removal_power.Noc_power.Report.total_power_mw
      in
      Format.printf "  ordering/removal power ratio: %.3f@.@." ratio)
    [ 8; 11; 14; 17; 20 ]
