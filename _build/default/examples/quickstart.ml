(* Quickstart: build a topology, define flows and routes, detect the
   deadlock, remove it, and verify — the paper's Figures 1-4 in ~40
   lines of API use.

   Run with: dune exec examples/quickstart.exe *)

open Noc_model

let () =
  (* A 4-switch ring (Figure 1 of the paper). *)
  let topo = Topology.create ~n_switches:4 in
  let sw = Ids.Switch.of_int in
  let l1 = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let l2 = Topology.add_link topo ~src:(sw 1) ~dst:(sw 2) in
  let l3 = Topology.add_link topo ~src:(sw 2) ~dst:(sw 3) in
  let l4 = Topology.add_link topo ~src:(sw 3) ~dst:(sw 0) in

  (* Four cores, one per switch, and four flows. *)
  let traffic = Traffic.create ~n_cores:4 in
  let core = Ids.Core.of_int in
  let f1 = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 3) ~bandwidth:100. in
  let f2 = Traffic.add_flow traffic ~src:(core 2) ~dst:(core 0) ~bandwidth:100. in
  let f3 = Traffic.add_flow traffic ~src:(core 3) ~dst:(core 1) ~bandwidth:100. in
  let f4 = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 2) ~bandwidth:100. in

  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        sw (Ids.Core.to_int c))
  in

  (* Static routes R1..R4 (the paper's).  VC 0 everywhere, for now. *)
  let ch l = Channel.make l 0 in
  Network.set_route net f1 [ ch l1; ch l2; ch l3 ];
  Network.set_route net f2 [ ch l3; ch l4 ];
  Network.set_route net f3 [ ch l4; ch l1 ];
  Network.set_route net f4 [ ch l1; ch l2 ];

  (* Is this design safe?  Build the channel dependency graph and ask. *)
  let cdg = Cdg.build net in
  Format.printf "CDG before removal:@.%a@.@." Cdg.pp cdg;
  (match Cdg.smallest_cycle cdg with
  | Some cycle ->
      Format.printf "deadlock risk! cycle: %a@.@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
           Channel.pp)
        cycle
  | None -> Format.printf "already deadlock-free@.@.");

  (* Remove the deadlock with the paper's algorithm. *)
  let report = Noc_deadlock.Removal.run net in
  Format.printf "%a@.@." Noc_deadlock.Removal.pp_report report;

  (* Verify, with an independently checkable certificate. *)
  let cert = Noc_deadlock.Verify.certify net in
  Format.printf "%a@.@." Noc_deadlock.Verify.pp_certificate cert;
  Format.printf "Topology after removal:@.%a@." Topology.pp topo
