# Mirrors .github/workflows/ci.yml so the gate is reproducible locally.
# `make ci` = build + tests + clean-tree check + bench regression gate
# (+ format check when ocamlformat is installed).

DUNE ?= dune

.PHONY: all build test fmt lint prove trace serve-smoke top-smoke sim-smoke \
  clean-tree bench bench-gate ci clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# .ocamlformat pins a version; skip gracefully where it isn't installed.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

# The static-analysis gate: every registry benchmark and the shared
# job files must lint clean at error level; writes lint.sarif
# (gitignored) as the machine-readable report.
lint: build
	$(DUNE) exec bin/noc_tool.exe -- lint --all-benchmarks
	$(DUNE) exec bin/noc_tool.exe -- lint test/cli/registry_jobs.json \
	  --format=json > /dev/null
	$(DUNE) exec bin/noc_tool.exe -- lint --all-benchmarks \
	  --format=sarif -o lint.sarif

# The independent-prover gate, mirroring the prove-smoke CI job: the
# escape-elimination prover must agree with Verify.certify on every
# registry benchmark as-is, and accept every removal-prepared design
# (exit 2 on any disagreement or residual deadlock potential).
prove: build
	$(DUNE) exec bin/noc_tool.exe -- prove --all-benchmarks
	$(DUNE) exec bin/noc_tool.exe -- prove --all-benchmarks \
	  --prepare removal --require-free

# The tracing smoke test: a Chrome trace must be parseable JSON with
# balanced begin/end events, and a generated noc-trace/1 stream must
# lint clean (NOC-TRC-*).  Writes trace.json (gitignored).
trace: build
	$(DUNE) exec bin/noc_tool.exe -- trace -b D36_8 --format chrome -o trace.json
	@b="$$(grep -c '"ph": "B"' trace.json)"; \
	e="$$(grep -c '"ph": "E"' trace.json)"; \
	if [ "$$b" -eq 0 ] || [ "$$b" -ne "$$e" ]; then \
	  echo "trace: unbalanced span events ($$b begin / $$e end)"; \
	  exit 1; \
	fi; \
	echo "trace: $$b spans, begin/end balanced"
	$(DUNE) exec bin/noc_tool.exe -- trace -b D36_8 --format jsonl -o trace.jsonl
	$(DUNE) exec bin/noc_tool.exe -- lint trace.jsonl
	@rm -f trace.jsonl

# The daemon smoke test, mirroring the serve-smoke + store-persistence
# CI jobs in miniature: start `noc serve` with a store, submit the full
# registry cold then warm across a restart, require a clean SIGTERM
# drain and a 100% warm-hit second pass.  Uses the built binary
# directly so the daemon holds no dune lock.
serve-smoke: build
	@set -e; \
	dir="$$(mktemp -d)"; \
	trap 'rm -rf "$$dir"' EXIT; \
	noc="$$(pwd)/_build/default/bin/noc_tool.exe"; \
	sock="$$dir/serve.sock"; \
	"$$noc" serve --socket "$$sock" --store "$$dir/store" -j 2 & \
	server=$$!; \
	for i in $$(seq 1 100); do [ -S "$$sock" ] && break; sleep 0.1; done; \
	[ -S "$$sock" ]; \
	"$$noc" submit test/cli/registry_jobs.json --socket "$$sock" \
	  | grep -q '12 ok, 0 failed, 0 rejected, 0 overloaded, 0 warm hits'; \
	kill -TERM "$$server"; wait "$$server"; \
	"$$noc" serve --socket "$$sock" --store "$$dir/store" -j 2 & \
	server=$$!; \
	for i in $$(seq 1 100); do [ -S "$$sock" ] && break; sleep 0.1; done; \
	"$$noc" submit test/cli/registry_jobs.json --socket "$$sock" \
	  | grep -q '12 ok, 0 failed, 0 rejected, 0 overloaded, 12 warm hits'; \
	kill -TERM "$$server"; wait "$$server"; \
	echo "serve-smoke: OK (cold run, clean drain, 100% warm restart)"

# The live-telemetry smoke test, mirroring the metrics-smoke CI job in
# miniature: boot the daemon with a Prometheus listener, do some work
# with a known correlation prefix, and require (a) the scrape to pass
# the strict exposition check (`top --raw` validates before printing),
# (b) the job counter to count the work, (c) every SLO gauge green,
# and (d) one rendered `top` dashboard frame.
top-smoke: build
	@set -e; \
	dir="$$(mktemp -d)"; \
	trap 'rm -rf "$$dir"' EXIT; \
	noc="$$(pwd)/_build/default/bin/noc_tool.exe"; \
	sock="$$dir/serve.sock"; \
	"$$noc" serve --socket "$$sock" --metrics-addr 9469 -j 2 --no-store & \
	server=$$!; \
	for i in $$(seq 1 100); do [ -S "$$sock" ] && break; sleep 0.1; done; \
	[ -S "$$sock" ]; \
	"$$noc" submit test/cli/registry_jobs.json --socket "$$sock" \
	  --corr top-smoke > /dev/null; \
	"$$noc" top --addr 9469 --raw > "$$dir/scrape.txt"; \
	grep -q '^noc_serve_jobs_total 12$$' "$$dir/scrape.txt"; \
	grep -q 'noc_slo_ok' "$$dir/scrape.txt"; \
	! grep -Eq '^noc_slo_ok\{[^}]*\} 0$$' "$$dir/scrape.txt"; \
	"$$noc" top --socket "$$sock" --once > "$$dir/top.txt"; \
	grep -q 'workers' "$$dir/top.txt"; \
	kill -TERM "$$server"; wait "$$server"; \
	echo "top-smoke: OK (scrape parses, counters live, SLOs green)"

# The simulation smoke test, mirroring the sim-smoke CI job: sweep the
# default campaign grid (2 benchmarks x 4 workloads x 3 preparations)
# and check the paper's claim cell by cell — the campaign itself exits
# 2 on any deadlock-freedom violation — then resume warm from the
# store and require bit-identical cell lines.
sim-smoke: build
	@set -e; \
	dir="$$(mktemp -d)"; \
	trap 'rm -rf "$$dir"' EXIT; \
	$(DUNE) exec bin/noc_tool.exe -- campaign --store "$$dir/store" -j 2 \
	  | tee "$$dir/cold.txt"; \
	grep -q 'invariants hold' "$$dir/cold.txt"; \
	$(DUNE) exec bin/noc_tool.exe -- campaign --store "$$dir/store" -j 2 \
	  > "$$dir/warm.txt"; \
	grep '^\[' "$$dir/warm.txt" | sed 's/  (warm)$$//' > "$$dir/warm-cells.txt"; \
	grep '^\[' "$$dir/cold.txt" | diff - "$$dir/warm-cells.txt"; \
	echo "sim-smoke: OK (invariants hold, warm resume bit-identical)"

clean-tree:
	@if git ls-files _build | grep -q .; then \
	  echo "clean-tree: _build/ artifacts are tracked in git"; \
	  git ls-files _build | head; \
	  exit 1; \
	fi
	@if git ls-files lint.sarif trace.json trace.jsonl BENCH_removal.json \
	  BENCH_service.json BENCH_sim.json | grep -q .; then \
	  echo "clean-tree: generated reports are tracked in git"; \
	  git ls-files lint.sarif trace.json trace.jsonl BENCH_*.json; \
	  exit 1; \
	fi
	@before="$$(git status --porcelain)"; \
	$(DUNE) build; \
	after="$$(git status --porcelain)"; \
	if [ "$$before" != "$$after" ]; then \
	  echo "clean-tree: dune build dirtied the tree"; \
	  echo "$$after"; \
	  exit 1; \
	fi
	@echo "clean-tree: OK"

# Re-measure the benchmarks (write BENCH_*.json, gitignored).
bench:
	$(DUNE) exec bench/main.exe -- removal
	$(DUNE) exec bench/main.exe -- service
	$(DUNE) exec bench/main.exe -- sim

# Compare fresh measurements against the committed baselines.
bench-gate: bench
	$(DUNE) exec bench/check_regression.exe -- \
	  bench/baseline/BENCH_removal.json BENCH_removal.json
	$(DUNE) exec bench/check_regression.exe -- \
	  bench/baseline/BENCH_service.json BENCH_service.json
	$(DUNE) exec bench/check_regression.exe -- \
	  bench/baseline/BENCH_sim.json BENCH_sim.json

ci: build test fmt lint prove trace clean-tree bench-gate top-smoke sim-smoke

clean:
	$(DUNE) clean
	rm -f BENCH_removal.json BENCH_service.json BENCH_sim.json lint.sarif \
	  trace.json trace.jsonl
