(* CI gate: diff a freshly measured bench report against the committed
   baseline.  Handles both report kinds, dispatching on the baseline's
   schema tag: bench-removal/1 (incremental-removal sweep),
   bench-service/1 (batch-service throughput/determinism) and
   bench-sim/1 (simulation campaign: deadlock-freedom invariants are
   hard; latency/throughput get tolerance bands).

   Usage: check_regression.exe BASELINE.json CURRENT.json

   Exit 0 when the current report matches the baseline's deterministic
   outputs and keeps the machine-independent ratios within tolerance;
   exit 1 with one line per violation otherwise; exit 2 on bad input. *)

open Noc_experiments

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg

let read_or_die label path =
  match read_file path with
  | Error msg ->
      Printf.eprintf "error: cannot read %s report %s: %s\n" label path msg;
      exit 2
  | Ok text -> text

let parse_or_die parse label path text =
  match parse text with
  | Error msg ->
      Printf.eprintf "error: cannot parse %s report %s: %s\n" label path msg;
      exit 2
  | Ok v -> v

let gate = function
  | [] ->
      print_endline "bench regression gate: PASS";
      exit 0
  | violations ->
      List.iter (Printf.printf "VIOLATION: %s\n") violations;
      print_endline "bench regression gate: FAIL";
      exit 1

let check_removal (baseline_path, baseline_text) (current_path, current_text) =
  let baseline =
    parse_or_die Bench_report.of_json "baseline" baseline_path baseline_text
  in
  let current =
    parse_or_die Bench_report.of_json "current" current_path current_text
  in
  Format.printf "current report:@.%a@.@." Bench_report.pp current;
  let d36 = List.filter (fun e -> e.Bench_report.benchmark = "D36_8") current in
  if d36 <> [] then
    Format.printf "aggregate D36_8 speedup: %.2fx (baseline %.2fx)@.@."
      (Bench_report.aggregate_speedup d36)
      (Bench_report.aggregate_speedup
         (List.filter (fun e -> e.Bench_report.benchmark = "D36_8") baseline));
  gate (Bench_report.compare_to_baseline ~baseline current)

let check_service (baseline_path, baseline_text) (current_path, current_text) =
  let open Noc_service in
  let baseline =
    parse_or_die Service_report.of_json "baseline" baseline_path baseline_text
  in
  let current =
    parse_or_die Service_report.of_json "current" current_path current_text
  in
  Format.printf "current report:@.%a@.@." Service_report.pp current;
  gate (Service_report.compare_to_baseline ~baseline current)

let check_sim (baseline_path, baseline_text) (current_path, current_text) =
  let open Noc_campaign in
  let baseline =
    parse_or_die Sim_report.of_json "baseline" baseline_path baseline_text
  in
  let current =
    parse_or_die Sim_report.of_json "current" current_path current_text
  in
  Format.printf "current report:@.%a@.@." Sim_report.pp current;
  gate (Sim_report.compare_to_baseline ~baseline current)

(* The baseline names the gate: a report pair must be of one kind. *)
let schema_of text =
  match Noc_service.Json.of_string text with
  | Ok root -> (
      match Noc_service.Json.member "schema" root with
      | Some (Noc_service.Json.Str s) -> Some s
      | _ -> None)
  | Error _ -> None

let () =
  match Sys.argv with
  | [| _; baseline_path; current_path |] -> (
      let baseline_text = read_or_die "baseline" baseline_path in
      let current_text = read_or_die "current" current_path in
      match schema_of baseline_text with
      | Some "bench-removal/1" ->
          check_removal (baseline_path, baseline_text)
            (current_path, current_text)
      | Some "bench-service/1" ->
          check_service (baseline_path, baseline_text)
            (current_path, current_text)
      | Some "bench-sim/1" ->
          check_sim (baseline_path, baseline_text) (current_path, current_text)
      | Some s ->
          Printf.eprintf "error: %s: unsupported schema %S\n" baseline_path s;
          exit 2
      | None ->
          Printf.eprintf "error: %s: cannot determine report schema\n"
            baseline_path;
          exit 2)
  | _ ->
      Printf.eprintf "usage: %s BASELINE.json CURRENT.json\n" Sys.argv.(0);
      exit 2
