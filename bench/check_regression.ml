(* CI gate: diff a freshly measured BENCH_removal.json against the
   committed baseline.

   Usage: check_regression.exe BASELINE.json CURRENT.json

   Exit 0 when the current report matches the baseline's deterministic
   outputs and keeps the incremental/rebuild speedup within tolerance;
   exit 1 with one line per violation otherwise; exit 2 on bad input. *)

open Noc_experiments

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg

let load label path =
  match read_file path with
  | Error msg ->
      Printf.eprintf "error: cannot read %s report %s: %s\n" label path msg;
      exit 2
  | Ok text -> (
      match Bench_report.of_json text with
      | Error msg ->
          Printf.eprintf "error: cannot parse %s report %s: %s\n" label path msg;
          exit 2
      | Ok entries -> entries)

let () =
  match Sys.argv with
  | [| _; baseline_path; current_path |] ->
      let baseline = load "baseline" baseline_path in
      let current = load "current" current_path in
      Format.printf "current report:@.%a@.@." Bench_report.pp current;
      let d36 =
        List.filter (fun e -> e.Bench_report.benchmark = "D36_8") current
      in
      if d36 <> [] then
        Format.printf "aggregate D36_8 speedup: %.2fx (baseline %.2fx)@.@."
          (Bench_report.aggregate_speedup d36)
          (Bench_report.aggregate_speedup
             (List.filter (fun e -> e.Bench_report.benchmark = "D36_8") baseline));
      (match Bench_report.compare_to_baseline ~baseline current with
      | [] ->
          print_endline "bench regression gate: PASS";
          exit 0
      | violations ->
          List.iter (Printf.printf "VIOLATION: %s\n") violations;
          print_endline "bench regression gate: FAIL";
          exit 1)
  | _ ->
      Printf.eprintf "usage: %s BASELINE.json CURRENT.json\n" Sys.argv.(0);
      exit 2
