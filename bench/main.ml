(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (Section 5) and times the core algorithm with
   bechamel.

   Usage: main.exe [table1|fig8|fig9|fig10|summary|ablation|simcheck|perf|all]
   (default: all). *)

open Noc_experiments

let section title = Format.printf "@.==== %s ====@.@." title

let run_table1 () =
  section "Table 1 + Figures 1-7: the paper's worked example";
  Format.printf "%t@." Ring_example.narrate

let run_fig8 () =
  section "Figure 8: extra VCs vs switch count, D26_media";
  Figures.pp_vc_rows ~title:"Figure 8 (D26_media)" Format.std_formatter
    (Figures.fig8 ());
  Format.printf "@."

let run_fig9 () =
  section "Figure 9: extra VCs vs switch count, D36_8";
  Figures.pp_vc_rows ~title:"Figure 9 (D36_8)" Format.std_formatter
    (Figures.fig9 ());
  Format.printf "@."

let run_fig10 () =
  section "Figure 10: normalised power across benchmarks (14 switches)";
  Figures.pp_power_rows Format.std_formatter (Figures.fig10 ());
  Format.printf "@."

let run_summary () =
  section "Aggregate claims (Section 5)";
  Figures.pp_summary Format.std_formatter (Figures.summary ());
  Format.printf "@."

let run_ablation () =
  section "Ablation: design choices of the removal algorithm";
  Figures.pp_ablation Format.std_formatter (Figures.ablation ());
  Format.printf "@."

let run_sweeps () =
  section "All-benchmark VC sweeps (beyond the paper's two)";
  List.iter
    (fun spec ->
      let n_cores = spec.Noc_benchmarks.Spec.n_cores in
      let counts =
        List.filter (fun n -> n <= n_cores) [ 5; 8; 11; 14; 17; 20; 23; 26 ]
      in
      let rows =
        List.map
          (fun n ->
            let p = Noc_experiments.Sweep.evaluate spec ~n_switches:n in
            {
              Noc_experiments.Figures.n_switches = n;
              removal_vcs = p.Noc_experiments.Sweep.removal.Noc_experiments.Sweep.vcs_added;
              ordering_vcs =
                p.Noc_experiments.Sweep.ordering_hop.Noc_experiments.Sweep.vcs_added;
            })
          counts
      in
      Figures.pp_vc_rows
        ~title:(Printf.sprintf "VC sweep (%s)" spec.Noc_benchmarks.Spec.name)
        Format.std_formatter rows;
      Format.printf "@.@.")
    Noc_benchmarks.Registry.all

let run_latency () =
  section "Load-latency curves: removal-fixed vs ordering-fixed (D36_8@14)";
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> assert false
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let base = Noc_synth.Custom.synthesize_exn traffic ~n_switches:14 in
  let removal_net = Noc_model.Network.copy base in
  ignore (Noc_deadlock.Removal.run removal_net);
  let ordering_net = Noc_model.Network.copy base in
  ignore
    (Noc_deadlock.Resource_ordering.apply
       ~strategy:Noc_deadlock.Resource_ordering.Hop_index ordering_net);
  Load_latency.pp_rows ~title:"after deadlock removal (+3 VC)" Format.std_formatter
    (Load_latency.sweep removal_net);
  Format.printf "@.@.";
  Load_latency.pp_rows ~title:"after hop-index resource ordering (+54 VC)"
    Format.std_formatter
    (Load_latency.sweep ordering_net);
  Format.printf "@."

let run_pareto () =
  section "Design-space exploration (D26_media): Pareto over power/area/hops";
  let spec =
    match Noc_benchmarks.Registry.find "D26_media" with
    | Some s -> s
    | None -> assert false
  in
  let points = Design_space.explore spec in
  Design_space.pp Format.std_formatter points;
  Format.printf "@.%d points, %d on the Pareto front@.@." (List.length points)
    (List.length (Design_space.pareto_front points))

let run_technode () =
  section "Figure-10 relationship across technology nodes (D36_8@14)";
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> assert false
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let base = Noc_synth.Custom.synthesize_exn traffic ~n_switches:14 in
  let removal_net = Noc_model.Network.copy base in
  ignore (Noc_deadlock.Removal.run removal_net);
  let ordering_net = Noc_model.Network.copy base in
  ignore
    (Noc_deadlock.Resource_ordering.apply
       ~strategy:Noc_deadlock.Resource_ordering.Hop_index ordering_net);
  let table =
    Series.create
      ~header:[ "node"; "removal mW"; "ordering mW"; "ratio"; "area saving" ]
  in
  List.iter
    (fun (label, params) ->
      let p net =
        (Noc_power.Report.of_network ~params net).Noc_power.Report.total_power_mw
      in
      let a net =
        (Noc_power.Report.of_network ~params net).Noc_power.Report.total_area_mm2
      in
      Series.add_row table
        [
          label;
          Printf.sprintf "%.1f" (p removal_net);
          Printf.sprintf "%.1f" (p ordering_net);
          Printf.sprintf "%.2f" (p ordering_net /. p removal_net);
          Printf.sprintf "%.1f%%"
            (100. *. (1. -. (a removal_net /. a ordering_net)));
        ])
    [
      ("90nm", Noc_power.Params.scaled_90nm);
      ("65nm", Noc_power.Params.default_65nm);
      ("45nm", Noc_power.Params.scaled_45nm);
    ];
  Format.printf "%a@.@." Series.pp table

let run_sensitivity () =
  section "Sensitivity: Figure-9 conclusion under different synthesis choices";
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> assert false
  in
  let table =
    Series.create
      ~header:[ "synthesis variant"; "removal VCs"; "ordering VCs"; "ratio" ]
  in
  let variant label options =
    let traffic = spec.Noc_benchmarks.Spec.build () in
    let base = Noc_synth.Custom.synthesize_exn ~options traffic ~n_switches:14 in
    let removal_net = Noc_model.Network.copy base in
    let r = Noc_deadlock.Removal.run removal_net in
    let ordering_net = Noc_model.Network.copy base in
    let o =
      Noc_deadlock.Resource_ordering.apply
        ~strategy:Noc_deadlock.Resource_ordering.Hop_index ordering_net
    in
    let rv = r.Noc_deadlock.Removal.vcs_added in
    let ov = o.Noc_deadlock.Resource_ordering.vcs_added in
    Series.add_row table
      [
        label; string_of_int rv; string_of_int ov;
        (if rv = 0 then "inf"
         else Printf.sprintf "%.1fx" (float_of_int ov /. float_of_int rv));
      ]
  in
  let open Noc_synth.Custom in
  variant "default (greedy mapper, degree 4)" default_options;
  variant "min-cut mapper" { default_options with mapper = Min_cut };
  variant "degree budget 3"
    { default_options with max_out_degree = 3; max_in_degree = 3 };
  variant "degree budget 6"
    { default_options with max_out_degree = 6; max_in_degree = 6 };
  variant "hop-count routing (not load-aware)"
    { default_options with load_aware_routing = false };
  variant "bidirectionalized"
    { default_options with force_bidirectional = true };
  Format.printf "%a@.@." Series.pp table

let run_resilience () =
  section "Single-link-failure resilience (D26_media@8, before/after hardening)";
  let spec =
    match Noc_benchmarks.Registry.find "D26_media" with
    | Some s -> s
    | None -> assert false
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Noc_synth.Custom.synthesize_exn traffic ~n_switches:8 in
  Format.printf "as synthesized:  %a@." Resilience.pp (Resilience.sweep net);
  let hardened = Noc_model.Network.copy net in
  let hr = Noc_synth.Harden.run hardened in
  Format.printf "after hardening (+%d links): %a@.@." hr.Noc_synth.Harden.links_added
    Resilience.pp (Resilience.sweep hardened)

let run_qos () =
  section "GT flow isolation under best-effort burst (D36_8@14)";
  Format.printf "%a@.@." Qos_check.pp_result (Qos_check.run ())

let run_simcheck () =
  section "Simulation cross-check: deadlock before, completion after";
  let before, after = Sim_check.ring_demo () in
  Format.printf "%a@.@.%a@.@." Sim_check.pp_result before Sim_check.pp_result after;
  let before, after = Sim_check.benchmark_demo () in
  Format.printf "%a@.@.%a@.@." Sim_check.pp_result before Sim_check.pp_result after

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per regenerated artefact, plus the   *)
(* end-to-end removal timing behind the paper's "runs in minutes"      *)
(* claim (ours runs in microseconds-to-milliseconds).                  *)
(* ------------------------------------------------------------------ *)

let perf_tests () =
  let open Bechamel in
  let ring = Ring_example.build () in
  let cycle = Ring_example.cycle ring in
  let spec name =
    match Noc_benchmarks.Registry.find name with
    | Some s -> s
    | None -> assert false
  in
  let d36_8 = (spec "D36_8").Noc_benchmarks.Spec.build () in
  let d26 = (spec "D26_media").Noc_benchmarks.Spec.build () in
  let big = Noc_synth.Custom.synthesize_exn d36_8 ~n_switches:20 in
  let test_table1 =
    Test.make ~name:"table1: fwd+bwd cost tables (ring)"
      (Staged.stage (fun () ->
           ignore (Noc_deadlock.Cost_table.forward ring.Ring_example.net cycle);
           ignore (Noc_deadlock.Cost_table.backward ring.Ring_example.net cycle)))
  in
  let test_cdg =
    Test.make ~name:"cdg: build (D36_8@20)"
      (Staged.stage (fun () -> ignore (Noc_model.Cdg.build big)))
  in
  let test_cycle_search =
    let cdg = Noc_model.Cdg.build big in
    Test.make ~name:"cdg: smallest-cycle search (D36_8@20)"
      (Staged.stage (fun () -> ignore (Noc_model.Cdg.smallest_cycle cdg)))
  in
  let test_removal =
    Test.make ~name:"fig9 core: removal (D36_8@20, copy+run)"
      (Staged.stage (fun () ->
           let net = Noc_model.Network.copy big in
           ignore (Noc_deadlock.Removal.run net)))
  in
  let test_synthesis =
    Test.make ~name:"fig8 core: synthesis (D26_media@14)"
      (Staged.stage (fun () ->
           ignore (Noc_synth.Custom.synthesize_exn d26 ~n_switches:14)))
  in
  let test_power =
    Test.make ~name:"fig10 core: power model (D36_8@20)"
      (Staged.stage (fun () -> ignore (Noc_power.Report.of_network big)))
  in
  let test_ordering =
    Test.make ~name:"baseline: hop-index resource ordering (D36_8@20)"
      (Staged.stage (fun () ->
           let net = Noc_model.Network.copy big in
           ignore
             (Noc_deadlock.Resource_ordering.apply
                ~strategy:Noc_deadlock.Resource_ordering.Hop_index net)))
  in
  let test_sim =
    let t = Ring_example.build () in
    ignore (Noc_deadlock.Removal.run t.Ring_example.net);
    let packets =
      Noc_sim.Traffic_gen.burst t.Ring_example.net ~packet_length:8
        ~packets_per_flow:2
    in
    Test.make ~name:"simcheck: wormhole sim (ring, post-removal)"
      (Staged.stage (fun () ->
           ignore (Noc_sim.Engine.run t.Ring_example.net packets)))
  in
  [
    test_table1; test_cdg; test_cycle_search; test_removal; test_synthesis;
    test_power; test_ordering; test_sim;
  ]

let run_perf () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let grouped = Test.make_grouped ~name:"noc" (perf_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  let clock = Hashtbl.find results (Measure.label Toolkit.Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
        in
        (name, estimate) :: acc)
      clock []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ns) ->
      if ns < 1_000. then Format.printf "%-55s %10.0f ns/run@." name ns
      else if ns < 1_000_000. then Format.printf "%-55s %10.1f us/run@." name (ns /. 1e3)
      else Format.printf "%-55s %10.2f ms/run@." name (ns /. 1e6))
    rows;
  (* The scalability claim, measured end to end on the densest design. *)
  let d36_8 =
    (Option.get (Noc_benchmarks.Registry.find "D36_8")).Noc_benchmarks.Spec.build ()
  in
  let t0 = Unix.gettimeofday () in
  let net = Noc_synth.Custom.synthesize_exn d36_8 ~n_switches:35 in
  let report = Noc_deadlock.Removal.run net in
  let t1 = Unix.gettimeofday () in
  Format.printf
    "@.end-to-end largest design (D36_8@@35): synthesis + removal of %d cycle(s) \
     in %.1f ms (paper: \"within minutes\")@."
    report.Noc_deadlock.Removal.iterations
    (1000. *. (t1 -. t0))

(* ------------------------------------------------------------------ *)
(* Machine-readable removal benchmark (BENCH_removal.json): the        *)
(* deterministic outputs and the incremental-vs-rebuild wall times     *)
(* per (benchmark, switch count), consumed by check_regression.exe     *)
(* against the committed baseline in CI.                               *)
(* ------------------------------------------------------------------ *)

let time_min_ms reps base f =
  (* Min over repetitions on pre-copied networks: the min is the run
     least disturbed by the collector and the scheduler, which is what
     a regression diff wants. *)
  let nets = Array.init reps (fun _ -> Noc_model.Network.copy base) in
  let best = ref infinity in
  let result = ref None in
  for i = 0 to reps - 1 do
    let t0 = Unix.gettimeofday () in
    let r = f nets.(i) in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (1000. *. !best, Option.get !result)

(* Per-phase attribution: one extra run of the incremental arm under
   the span tracer, on its own copy, after the timing arms — so the
   measured numbers above are from untraced runs and the phase shares
   come from the very same algorithm trajectory (it is deterministic). *)
let phase_attribution base =
  let collector = Noc_obs.Trace.create () in
  Noc_obs.Trace.install collector;
  let net = Noc_model.Network.copy base in
  ignore
    (Fun.protect ~finally:Noc_obs.Trace.uninstall (fun () ->
         Noc_deadlock.Removal.run net));
  Noc_obs.Export.phase_totals_ms collector

let removal_entries () =
  let points =
    [
      ("D36_8", [ 10; 14; 18; 22; 26; 30; 35 ]);
      ("D26_media", [ 8; 14; 20; 26 ]);
    ]
  in
  List.concat_map
    (fun (name, switch_counts) ->
      let spec =
        match Noc_benchmarks.Registry.find name with
        | Some s -> s
        | None -> assert false
      in
      let traffic = spec.Noc_benchmarks.Spec.build () in
      List.map
        (fun n_switches ->
          let base = Noc_synth.Custom.synthesize_exn traffic ~n_switches in
          let incremental_ms, inc =
            time_min_ms 5 base Noc_deadlock.Removal.run
          in
          let rebuild_ms, reb =
            time_min_ms 5 base (Noc_deadlock.Removal.run ~incremental:false)
          in
          (* Both arms are exact by construction; a mismatch here means
             the incremental CDG maintenance broke. *)
          assert (
            inc.Noc_deadlock.Removal.iterations
            = reb.Noc_deadlock.Removal.iterations);
          assert (
            inc.Noc_deadlock.Removal.vcs_added
            = reb.Noc_deadlock.Removal.vcs_added);
          {
            Bench_report.benchmark = name;
            n_switches;
            iterations = inc.Noc_deadlock.Removal.iterations;
            vcs_added = inc.Noc_deadlock.Removal.vcs_added;
            incremental_ms;
            rebuild_ms;
            phases = phase_attribution base;
          })
        switch_counts)
    points

let run_removal_json () =
  section "Removal benchmark: incremental vs rebuild-per-iteration";
  let entries = removal_entries () in
  Format.printf "%a@." Bench_report.pp entries;
  Format.printf "@.aggregate D36_8 speedup: %.2fx@."
    (Bench_report.aggregate_speedup
       (List.filter (fun e -> e.Bench_report.benchmark = "D36_8") entries));
  let out =
    Option.value ~default:"BENCH_removal.json"
      (Sys.getenv_opt "BENCH_REMOVAL_OUT")
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (Bench_report.to_json entries));
  Format.printf "wrote %s@." out

(* ------------------------------------------------------------------ *)
(* Machine-readable batch-service benchmark (BENCH_service.json): the  *)
(* deterministic result hash of every job over the full benchmark      *)
(* registry, batch wall times at 1/2/4 domains, and the warm-replay    *)
(* (fully cached) cost, consumed by check_regression.exe in CI.        *)
(* ------------------------------------------------------------------ *)

let service_jobs () =
  (* One removal, one ordering and one sweep job per registry
     benchmark, at a switch count clipped to the core count — enough
     work per job for the parallel arms to mean something, and full
     registry coverage for the hash baseline. *)
  List.concat_map
    (fun spec ->
      let name = spec.Noc_benchmarks.Spec.name in
      let n_switches = min 14 spec.Noc_benchmarks.Spec.n_cores in
      let design =
        Noc_service.Job.Benchmark
          {
            name;
            n_switches;
            max_degree = Noc_service.Job.default_max_degree;
          }
      in
      [
        { Noc_service.Job.design; method_ = Noc_service.Job.removal_defaults };
        {
          Noc_service.Job.design;
          method_ =
            Noc_service.Job.Resource_ordering
              { strategy = Noc_deadlock.Resource_ordering.Hop_index };
        };
        { Noc_service.Job.design; method_ = Noc_service.Job.Sweep };
      ])
    Noc_benchmarks.Registry.all

let run_batch ~domains ~cache jobs =
  let config =
    {
      Noc_service.Batch.default_config with
      Noc_service.Batch.domains;
      cache;
    }
  in
  Noc_service.Batch.run config jobs

let service_report () =
  let open Noc_service in
  let jobs = service_jobs () in
  let hashes results =
    List.map
      (fun (r : Batch.job_result) -> Outcome.result_hash r.Batch.outcome)
      results
  in
  (* Reference run: sequential, no cache.  Its result hashes are the
     deterministic baseline every other arm must reproduce. *)
  let reference, _ = run_batch ~domains:1 ~cache:None jobs in
  List.iter
    (fun (r : Batch.job_result) ->
      if not (Outcome.is_done r.Batch.outcome) then
        failwith
          (Printf.sprintf "service bench: job %s did not complete: %s"
             (Job.label r.Batch.job)
             (Format.asprintf "%a" Outcome.pp r.Batch.outcome)))
    reference;
  let reference_hashes = hashes reference in
  let timing domains =
    (* Fresh cache per arm: within one batch the duplicate-free job
       list makes every lookup a miss, so this times real solver work.
       Min over repetitions, like the removal bench. *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let results, summary =
        run_batch ~domains ~cache:(Some (Result_cache.create ~capacity:256)) jobs
      in
      if hashes results <> reference_hashes then
        failwith
          (Printf.sprintf
             "service bench: %d-domain batch diverged from the sequential \
              reference"
             domains);
      if summary.Batch.wall_ms < !best then best := summary.Batch.wall_ms
    done;
    {
      Service_report.domains;
      wall_ms = !best;
      jobs_per_s =
        (if !best > 0. then 1000. *. float_of_int (List.length jobs) /. !best
         else 0.);
    }
  in
  let host_cores = Domain.recommended_domain_count () in
  let arms = List.filter (fun d -> d = 1 || d <= host_cores) [ 1; 2; 4 ] in
  let timings = List.map timing arms in
  (* Collector overhead: the same sequential batch with and without a
     series-collector domain sampling the registry at a deliberately
     aggressive 20 Hz (the daemon default is 1 Hz).  The collector is
     started once around the whole rep loop — a daemon runs it for its
     entire life, so steady-state sampling interference is the cost
     being measured, not the one-time domain spawn — and min over
     repetitions discards scheduler noise like the other arms. *)
  let collector_arm with_collector =
    let reps () =
      let best = ref infinity in
      for _ = 1 to 3 do
        let results, summary =
          run_batch ~domains:1
            ~cache:(Some (Result_cache.create ~capacity:256))
            jobs
        in
        if hashes results <> reference_hashes then
          failwith
            "service bench: collector arm diverged from the sequential \
             reference";
        if summary.Batch.wall_ms < !best then best := summary.Batch.wall_ms
      done;
      !best
    in
    if with_collector then begin
      let series = Noc_obs.Series.create ~interval_s:0.05 ~window:1200 () in
      let collector = Noc_obs.Series.start series in
      Fun.protect ~finally:(fun () -> Noc_obs.Series.stop collector) reps
    end
    else reps ()
  in
  let collector_off_wall_ms = collector_arm false in
  let collector_on_wall_ms = collector_arm true in
  (* Warm replay: populate a cache, reset its counters, run again. *)
  let cache = Result_cache.create ~capacity:256 in
  let _ = run_batch ~domains:1 ~cache:(Some cache) jobs in
  Result_cache.reset_counters cache;
  let replay_results, replay_summary =
    run_batch ~domains:1 ~cache:(Some cache) jobs
  in
  if hashes replay_results <> reference_hashes then
    failwith "service bench: warm replay diverged from the sequential reference";
  let replay_stats = Result_cache.stats cache in
  {
    Service_report.host_cores;
    jobs =
      List.map
        (fun (r : Batch.job_result) ->
          {
            Service_report.label = Job.label r.Batch.job;
            job_hash = Job.hash r.Batch.job;
            result_hash = Outcome.result_hash r.Batch.outcome;
          })
        reference;
    timings;
    replay_wall_ms = replay_summary.Batch.wall_ms;
    replay_hit_rate = Result_cache.hit_rate replay_stats;
    collector_off_wall_ms = Some collector_off_wall_ms;
    collector_on_wall_ms = Some collector_on_wall_ms;
  }

let run_service_json () =
  section "Batch service: throughput, determinism, warm replay";
  let report = service_report () in
  Format.printf "%a@." Noc_service.Service_report.pp report;
  let out =
    Option.value ~default:"BENCH_service.json"
      (Sys.getenv_opt "BENCH_SERVICE_OUT")
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (Noc_service.Service_report.to_json report));
  Format.printf "@.wrote %s@." out

(* ------------------------------------------------------------------ *)
(* Machine-readable simulation benchmark (BENCH_sim.json): a small     *)
(* campaign over the paper's two benchmarks x four workloads x three   *)
(* preparations, with the deadlock-freedom invariants enforced before  *)
(* the report is even written, consumed by check_regression.exe in CI. *)
(* ------------------------------------------------------------------ *)

let sim_campaign () =
  let open Noc_campaign in
  let points =
    [
      { Campaign.benchmark = "D26_media"; n_switches = 14 };
      { Campaign.benchmark = "D36_8"; n_switches = 14 };
    ]
  in
  let workloads =
    Noc_benchmarks.Workloads.
      [ default_burst; default_uniform; default_hotspot; default_transpose ]
  in
  let jobs = Campaign.grid ~points ~workloads () in
  Campaign.run Campaign.default_config jobs

let run_sim_json () =
  section "Simulation campaign: deadlock invariants, latency, throughput";
  let open Noc_campaign in
  let cells = sim_campaign () in
  let verdict = Campaign.verify cells in
  Format.printf "%a@.@." Campaign.pp_verdict verdict;
  if not (Campaign.verdict_ok verdict) then
    failwith "sim bench: campaign invariants violated";
  let report = Sim_report.of_cells cells in
  Format.printf "%a@." Sim_report.pp report;
  let out =
    Option.value ~default:"BENCH_sim.json" (Sys.getenv_opt "BENCH_SIM_OUT")
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (Sim_report.to_json report));
  Format.printf "@.wrote %s@." out

let all_sections =
  [
    ("table1", run_table1);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("summary", run_summary);
    ("ablation", run_ablation);
    ("sweeps", run_sweeps);
    ("pareto", run_pareto);
    ("technode", run_technode);
    ("sensitivity", run_sensitivity);
    ("resilience", run_resilience);
    ("qos", run_qos);
    ("latency", run_latency);
    ("simcheck", run_simcheck);
    ("perf", run_perf);
    ("removal", run_removal_json);
    ("service", run_service_json);
    ("sim", run_sim_json);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = if args = [] || args = [ "all" ] then List.map fst all_sections else args in
  List.iter
    (fun name ->
      match List.assoc_opt name all_sections with
      | Some f -> f ()
      | None ->
          Format.eprintf "unknown section %S; available: %s all@." name
            (String.concat " " (List.map fst all_sections));
          exit 2)
    selected
