(* The static-analysis framework: every diagnostic code has at least
   one test that triggers it, the engine orders and counts findings as
   documented, the renderers emit well-formed documents, and the
   qcheck properties tie the linter to the certificate machinery
   (acyclic => numbering accepted; any single-step route mutation is
   caught). *)

open Noc_model
open Noc_analysis

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string
let sw = Fixtures.sw
let core = Fixtures.core
let lk = Fixtures.lk
let ch = Fixtures.ch

let run_pass (pass : Pass.t) net = pass.Pass.run (Pass.Design net)
let codes ds = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code.Diag_code.code) ds
let has_code c ds = List.mem c (codes ds)

let check_code name expected ds =
  check bool_c (name ^ ": fires " ^ expected) true (has_code expected ds)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* The code table                                                      *)
(* ------------------------------------------------------------------ *)

let test_code_table () =
  let codes = List.map (fun (c : Diag_code.t) -> c.Diag_code.code) Diag_code.all in
  check int_c "30 published codes" 30 (List.length codes);
  check int_c "codes are unique" (List.length codes)
    (List.length (List.sort_uniq String.compare codes));
  List.iter
    (fun c ->
      (match Diag_code.find c.Diag_code.code with
      | Some c' -> check bool_c (c.Diag_code.code ^ " find round-trip") true (c == c')
      | None -> Alcotest.failf "%s not found" c.Diag_code.code);
      check bool_c
        (c.Diag_code.code ^ " severity string round-trip")
        true
        (Diag_code.severity_of_string
           (Diag_code.severity_to_string c.Diag_code.severity)
        = Some c.Diag_code.severity))
    Diag_code.all;
  check bool_c "unknown code" true (Diag_code.find "NOC-NOPE-001" = None);
  check bool_c "Error >= Warning" true
    (Diag_code.severity_at_least ~floor:Diag_code.Warning Diag_code.Error);
  check bool_c "Info < Warning" false
    (Diag_code.severity_at_least ~floor:Diag_code.Warning Diag_code.Info)

(* Satellite 1: Validate issues carry the shared codes directly. *)
let test_validate_carries_codes () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  Network.set_route net ring.Fixtures.flows.(0) [];
  match Validate.check net with
  | [ i ] ->
      check string_c "code" "NOC-ROUTE-001" i.Validate.code.Diag_code.code;
      check string_c "message" "flow has no route" i.Validate.message
  | issues -> Alcotest.failf "expected one issue, got %d" (List.length issues)

(* ------------------------------------------------------------------ *)
(* Design passes, one trigger per code                                 *)
(* ------------------------------------------------------------------ *)

let test_route_codes () =
  (* NOC-ROUTE-001: a flow with no route at all. *)
  let ring = Fixtures.paper_ring () in
  Network.set_route ring.Fixtures.net ring.Fixtures.flows.(0) [];
  let ds = run_pass Passes.routes ring.Fixtures.net in
  check_code "missing" "NOC-ROUTE-001" ds;
  (match ds with
  | [ d ] ->
      check string_c "at the flow" "flow/0"
        (Diagnostic.location_path d.Diagnostic.location);
      check bool_c "suggests a fix" true (d.Diagnostic.fix <> None);
      check string_c "error severity" "error"
        (Diag_code.severity_to_string (Diagnostic.severity d))
  | _ -> Alcotest.fail "expected exactly one finding");
  (* NOC-ROUTE-002: a route that does not follow the topology. *)
  let ring = Fixtures.paper_ring () in
  Network.set_route ring.Fixtures.net ring.Fixtures.flows.(0) [ ch 0; ch 2 ];
  check_code "discontinuity" "NOC-ROUTE-002"
    (run_pass Passes.routes ring.Fixtures.net);
  (* NOC-ROUTE-003: a VC the link does not have. *)
  let ring = Fixtures.paper_ring () in
  Network.set_route ring.Fixtures.net ring.Fixtures.flows.(0)
    [ ch ~vc:7 0; ch 1; ch 2 ];
  check_code "bad vc" "NOC-ROUTE-003" (run_pass Passes.routes ring.Fixtures.net);
  (* NOC-ROUTE-004: a route that revisits a channel. *)
  let ring = Fixtures.paper_ring () in
  Network.set_route ring.Fixtures.net ring.Fixtures.flows.(0)
    [ ch 0; ch 1; ch 2; ch 3; ch 0; ch 1; ch 2 ];
  check_code "revisit" "NOC-ROUTE-004" (run_pass Passes.routes ring.Fixtures.net)

let two_component_net () =
  let topo = Topology.create ~n_switches:4 in
  let pairs = [ (0, 1); (1, 0); (2, 3); (3, 2) ] in
  List.iter
    (fun (a, b) -> ignore (Topology.add_link topo ~src:(sw a) ~dst:(sw b)))
    pairs;
  let traffic = Traffic.create ~n_cores:4 in
  let f1 = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:10. in
  let f2 = Traffic.add_flow traffic ~src:(core 2) ~dst:(core 3) ~bandwidth:10. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  let first ~src ~dst =
    match Topology.find_links topo ~src ~dst with
    | l :: _ -> Channel.make l.Topology.id 0
    | [] -> assert false
  in
  Network.set_route net f1 [ first ~src:(sw 0) ~dst:(sw 1) ];
  Network.set_route net f2 [ first ~src:(sw 2) ~dst:(sw 3) ];
  net

let test_topo_codes () =
  (* NOC-TOPO-001: two components, every switch still attached. *)
  let net = two_component_net () in
  Fixtures.check_valid "two components" net;
  let ds = run_pass Passes.connectivity net in
  check_code "disconnected" "NOC-TOPO-001" ds;
  check bool_c "no isolated switch" false (has_code "NOC-TOPO-002" ds);
  (* NOC-TOPO-002: a switch with no links at all. *)
  let topo = Topology.create ~n_switches:3 in
  ignore (Topology.add_link topo ~src:(sw 0) ~dst:(sw 1));
  let traffic = Traffic.create ~n_cores:2 in
  let f = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:10. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  Network.set_route net f [ ch 0 ];
  let ds = run_pass Passes.connectivity net in
  check_code "isolated" "NOC-TOPO-002" ds;
  let isolated =
    List.find
      (fun (d : Diagnostic.t) ->
        d.Diagnostic.code.Diag_code.code = "NOC-TOPO-002")
      ds
  in
  check string_c "at the switch" "switch/2"
    (Diagnostic.location_path isolated.Diagnostic.location)

let test_dead_hardware_codes () =
  (* NOC-CHAN-001: a link no route crosses. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let dead = Topology.add_link (Network.topology net) ~src:(sw 0) ~dst:(sw 2) in
  let ds = run_pass Passes.dead_channels net in
  check_code "dead link" "NOC-CHAN-001" ds;
  (match ds with
  | [ d ] ->
      check string_c "at the link"
        (Printf.sprintf "link/%d" (Ids.Link.to_int dead))
        (Diagnostic.location_path d.Diagnostic.location)
  | _ -> Alcotest.fail "expected exactly one dead link");
  (* A fully dead link is not also a dead-VC finding. *)
  check int_c "dead link is not a dead VC" 0
    (List.length (run_pass Passes.dead_vcs net));
  (* NOC-VC-001: an extra VC on a live link that no route uses. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Topology.add_vc (Network.topology net) (lk 0));
  let ds = run_pass Passes.dead_vcs net in
  check_code "dead vc" "NOC-VC-001" ds;
  (match ds with
  | [ d ] ->
      check string_c "at the channel" "channel/0.1"
        (Diagnostic.location_path d.Diagnostic.location)
  | _ -> Alcotest.fail "expected exactly one dead VC")

let test_cycle_witness () =
  (* NOC-CYCLE-001: the paper ring's one CDG cycle, as a warning. *)
  let ring = Fixtures.paper_ring () in
  match run_pass Passes.cdg_cycle ring.Fixtures.net with
  | [ d ] ->
      check string_c "code" "NOC-CYCLE-001" d.Diagnostic.code.Diag_code.code;
      check string_c "warning severity" "warning"
        (Diag_code.severity_to_string (Diagnostic.severity d));
      check bool_c "names the four channels" true
        (contains ~needle:"4 channels" d.Diagnostic.message)
  | ds -> Alcotest.failf "expected one cycle witness, got %d" (List.length ds)

let test_cycle_clean_on_mesh () =
  let net = Fixtures.xy_mesh_2x2 () in
  check int_c "xy mesh has no CDG cycle" 0
    (List.length (run_pass Passes.cdg_cycle net));
  check int_c "xy mesh certificate rechecks" 0
    (List.length (run_pass Passes.certificate net))

let test_certificate_recheck () =
  (* NOC-CERT-001 via the exposed recheck: a corrupted numbering on an
     acyclic design. *)
  let net = Fixtures.xy_mesh_2x2 () in
  (match (Noc_deadlock.Verify.certify net).Noc_deadlock.Verify.numbering with
  | None -> Alcotest.fail "xy mesh should certify acyclic"
  | Some numbering ->
      check int_c "true numbering rechecks clean" 0
        (List.length (Passes.recheck_numbering net numbering)));
  match Passes.recheck_numbering net [] with
  | [ d ] ->
      check string_c "code" "NOC-CERT-001" d.Diagnostic.code.Diag_code.code;
      check string_c "error severity" "error"
        (Diag_code.severity_to_string (Diagnostic.severity d))
  | ds -> Alcotest.failf "expected one recheck finding, got %d" (List.length ds)

let test_escape_codes () =
  (* NOC-ESC-002: on the all-VC0 ring the escape set is the whole
     (cyclic) CDG. *)
  let ring = Fixtures.paper_ring () in
  let ds = run_pass Passes.escape ring.Fixtures.net in
  check_code "cyclic escape" "NOC-ESC-002" ds;
  check bool_c "ring escape set is connected" false (has_code "NOC-ESC-001" ds);
  (* NOC-ESC-001: move one flow's first hop onto VC1 — the VC0
     restriction of the static routing function can no longer deliver
     it. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Topology.add_vc (Network.topology net) (lk 0));
  Network.set_route net ring.Fixtures.flows.(0) [ ch ~vc:1 0; ch 1; ch 2 ];
  Fixtures.check_valid "vc1 detour" net;
  check_code "disconnected escape" "NOC-ESC-001" (run_pass Passes.escape net)

let test_bandwidth_codes () =
  (* Ring loads: L0 carries F1+F3+F4 = 300 MB/s, the rest 200 MB/s. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  (* NOC-BW-001 at 250 MB/s: only L0 is oversubscribed. *)
  (match run_pass (Passes.bandwidth ~capacity_mbps:250.) net with
  | [ d ] ->
      check string_c "code" "NOC-BW-001" d.Diagnostic.code.Diag_code.code;
      check string_c "at link 0" "link/0"
        (Diagnostic.location_path d.Diagnostic.location);
      check string_c "warning severity" "warning"
        (Diag_code.severity_to_string (Diagnostic.severity d))
  | ds -> Alcotest.failf "expected one oversubscription, got %d" (List.length ds));
  (* NOC-BW-002 at 320 MB/s: L0 sits at 94%, nothing is over. *)
  (match run_pass (Passes.bandwidth ~capacity_mbps:320.) net with
  | [ d ] ->
      check string_c "code" "NOC-BW-002" d.Diagnostic.code.Diag_code.code;
      check string_c "info severity" "info"
        (Diag_code.severity_to_string (Diagnostic.severity d))
  | ds -> Alcotest.failf "expected one near-saturation, got %d" (List.length ds));
  (* Plenty of headroom: clean. *)
  check int_c "clean at 4000" 0
    (List.length (run_pass (Passes.bandwidth ~capacity_mbps:4000.) net))

let test_route_gating () =
  (* Passes that interpret routes stand down while the routes pass has
     findings — broken routes are its finding, not theirs. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  Network.set_route net ring.Fixtures.flows.(0) [ ch ~vc:7 0 ];
  List.iter
    (fun (pass : Pass.t) ->
      check int_c (pass.Pass.name ^ " stands down") 0
        (List.length (run_pass pass net)))
    [
      Passes.cdg_cycle;
      Passes.certificate;
      Passes.deadlock_freedom;
      Passes.escape;
      Passes.bandwidth ~capacity_mbps:250.;
    ]

(* ------------------------------------------------------------------ *)
(* The independent deadlock-freedom prover (NOC-DLF codes)             *)
(* ------------------------------------------------------------------ *)

module DF = Deadlock_freedom

let test_dlf_verdicts () =
  (* The paper ring: all four channels form one waiting knot. *)
  let ring = Fixtures.paper_ring () in
  let v = DF.analyze ring.Fixtures.net in
  check bool_c "ring can deadlock" false v.DF.deadlock_free;
  (match v.DF.knot with
  | Some knot -> check int_c "knot of 4 channels" 4 (List.length knot)
  | None -> Alcotest.fail "expected a knot");
  (match v.DF.knot_cycle with
  | Some cycle -> check int_c "cycle of 4 channels" 4 (List.length cycle)
  | None -> Alcotest.fail "expected a knot cycle");
  check bool_c "no escape ordering" true (v.DF.escape_order = None);
  (* The xy mesh: deadlock-free with a full, replayable ordering. *)
  let mesh = Fixtures.xy_mesh_2x2 () in
  let v = DF.analyze mesh in
  check bool_c "mesh is deadlock-free" true v.DF.deadlock_free;
  match v.DF.escape_order with
  | Some order ->
      check int_c "ordering covers every channel" v.DF.n_channels
        (List.length order);
      check bool_c "ordering replays" true (DF.check_escape_order mesh order);
      (* The replay really checks something: reversing the order (or
         dropping a channel) must fail whenever some route chains two
         channels. *)
      check bool_c "reversed ordering rejected" false
        (DF.check_escape_order mesh (List.rev order));
      check bool_c "truncated ordering rejected" false
        (DF.check_escape_order mesh (List.tl order))
  | None -> Alcotest.fail "expected an escape ordering"

let test_dlf_pass_codes () =
  (* NOC-DLF-003 (knot witness) and NOC-DLF-004 (VC lower bound) on the
     ring; silence on the mesh. *)
  let ring = Fixtures.paper_ring () in
  let ds = run_pass Passes.deadlock_freedom ring.Fixtures.net in
  check_code "knot" "NOC-DLF-003" ds;
  check_code "vc bound" "NOC-DLF-004" ds;
  check bool_c "the two provers agree on the ring" false
    (has_code "NOC-DLF-001" ds || has_code "NOC-DLF-002" ds);
  check int_c "mesh is clean" 0
    (List.length (run_pass Passes.deadlock_freedom (Fixtures.xy_mesh_2x2 ())));
  (* NOC-DLF-001/002 via the exposed cross-check — inside the pass they
     only fire when one of the two provers is actually buggy. *)
  let v_free = DF.analyze (Fixtures.xy_mesh_2x2 ()) in
  let v_knot = DF.analyze ring.Fixtures.net in
  (match Passes.cross_check_findings ~certified_acyclic:true v_knot with
  | [ d ] ->
      check string_c "prover rejects certified" "NOC-DLF-001"
        d.Diagnostic.code.Diag_code.code;
      check string_c "error severity" "error"
        (Diag_code.severity_to_string (Diagnostic.severity d))
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds));
  (match Passes.cross_check_findings ~certified_acyclic:false v_free with
  | [ d ] ->
      check string_c "prover accepts rejected" "NOC-DLF-002"
        d.Diagnostic.code.Diag_code.code
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds));
  check int_c "agreement is silent (free)" 0
    (List.length (Passes.cross_check_findings ~certified_acyclic:true v_free));
  check int_c "agreement is silent (knot)" 0
    (List.length
       (Passes.cross_check_findings ~certified_acyclic:false v_knot));
  (* NOC-DLF-005 via the exposed replay. *)
  let mesh = Fixtures.xy_mesh_2x2 () in
  (match Passes.escape_order_findings mesh [] with
  | [ d ] ->
      check string_c "replay rejects the empty ordering" "NOC-DLF-005"
        d.Diagnostic.code.Diag_code.code
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds));
  match (DF.analyze mesh).DF.escape_order with
  | Some order ->
      check int_c "true ordering accepted" 0
        (List.length (Passes.escape_order_findings mesh order))
  | None -> Alcotest.fail "expected an escape ordering"

let test_dlf_vc_bound () =
  let ring = Fixtures.paper_ring () in
  let b = DF.vc_lower_bound ring.Fixtures.net in
  check int_c "ring bound is 1" 1 b.DF.lower_bound;
  (match b.DF.disjoint_cycles with
  | [ cycle ] -> check int_c "one 4-cycle" 4 (List.length cycle)
  | cs -> Alcotest.failf "expected one packed cycle, got %d" (List.length cs));
  (* The bound is sound against what removal actually pays, and drops
     to 0 once the design is deadlock-free. *)
  let report = Noc_deadlock.Removal.run ring.Fixtures.net in
  check bool_c "bound <= vcs added" true
    (b.DF.lower_bound <= report.Noc_deadlock.Removal.vcs_added);
  check int_c "free design has bound 0" 0
    (DF.vc_lower_bound ring.Fixtures.net).DF.lower_bound

(* The CLI's --all-benchmarks shape: every registry benchmark at
   min(14, cores) with the default synthesis options. *)
let synthesize_benchmark name =
  let spec = Option.get (Noc_benchmarks.Registry.find name) in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let n_switches = min 14 (Traffic.n_cores traffic) in
  match Noc_synth.Custom.synthesize traffic ~n_switches with
  | Ok net -> net
  | Error e -> Alcotest.failf "synthesize %s: %s" name e

let provers_agree net =
  Bool.equal
    (Noc_deadlock.Verify.certify net).Noc_deadlock.Verify.acyclic
    (DF.analyze net).DF.deadlock_free

let test_dlf_registry_agreement () =
  (* The acceptance criterion: on every registry benchmark — as-is and
     removal-prepared — the independent prover and Verify.certify
     agree, and the static lower bound never exceeds what removal
     paid. *)
  List.iter
    (fun name ->
      let net = synthesize_benchmark name in
      check bool_c (name ^ " as-is agreement") true (provers_agree net);
      let bound = DF.vc_lower_bound net in
      let report = Noc_deadlock.Removal.run net in
      check bool_c (name ^ " bound <= vcs added") true
        (bound.DF.lower_bound <= report.Noc_deadlock.Removal.vcs_added);
      check bool_c (name ^ " removal-prepared agreement") true
        (provers_agree net);
      check bool_c (name ^ " removal-prepared is proven free") true
        (DF.analyze net).DF.deadlock_free)
    Noc_benchmarks.Registry.names

let test_dlf_sim_triangle () =
  (* The third leg of the cross-check triangle: the dynamic simulator.
     On the paper ring the prover predicts a deadlock and the simulator
     exhibits one; after removal the prover proves freedom and the
     simulator completes the same workload. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let burst net =
    Noc_sim.Traffic_gen.burst net ~packet_length:8 ~packets_per_flow:2
  in
  check bool_c "prover rejects the baseline" false
    (DF.analyze net).DF.deadlock_free;
  (match Noc_sim.Engine.run net (burst net) with
  | Noc_sim.Engine.Deadlocked _ -> ()
  | _ -> Alcotest.fail "ring should deadlock under burst");
  ignore (Noc_deadlock.Removal.run net);
  check bool_c "prover accepts the prepared design" true
    (DF.analyze net).DF.deadlock_free;
  match Noc_sim.Engine.run net (burst net) with
  | Noc_sim.Engine.Deadlocked _ ->
      Alcotest.fail "a proven-free design deadlocked in simulation"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The engine and renderers                                            *)
(* ------------------------------------------------------------------ *)

let test_engine_on_ring () =
  let ring = Fixtures.paper_ring () in
  let report =
    Engine.analyze
      ~passes:(Registry.design_passes ())
      ~label:"paper-ring"
      (Pass.Design ring.Fixtures.net)
  in
  check int_c "all nine passes ran" 9 (List.length report.Engine.passes_run);
  check bool_c "pass names match the registry" true
    (report.Engine.passes_run = Registry.names);
  (* The pre-removal ring lints clean at error level: its deadlock
     potential is the three warnings (cycle witness, waiting knot,
     cyclic escape set) plus the VC lower-bound info. *)
  check bool_c "cycle witness" true
    (has_code "NOC-CYCLE-001" report.Engine.diagnostics);
  check bool_c "waiting knot" true
    (has_code "NOC-DLF-003" report.Engine.diagnostics);
  check bool_c "cyclic escape" true
    (has_code "NOC-ESC-002" report.Engine.diagnostics);
  check bool_c "vc lower bound" true
    (has_code "NOC-DLF-004" report.Engine.diagnostics);
  let errors, warnings, infos = Engine.totals [ report ] in
  check int_c "no errors" 0 errors;
  check int_c "three warnings" 3 warnings;
  check int_c "one info" 1 infos;
  check bool_c "worst is warning" true
    (Engine.worst report = Some Diag_code.Warning);
  check int_c "fail-on=error counts none" 0
    (Engine.count_at_least ~floor:Diag_code.Error [ report ]);
  check int_c "fail-on=warning counts the warnings" 3
    (Engine.count_at_least ~floor:Diag_code.Warning [ report ]);
  (* Diagnostics come out sorted, most severe first. *)
  check bool_c "sorted by severity" true
    (List.sort Diagnostic.compare report.Engine.diagnostics
    = report.Engine.diagnostics)

let test_engine_clean_on_mesh () =
  let report =
    Engine.analyze
      ~passes:(Registry.design_passes ())
      ~label:"xy-mesh"
      (Pass.Design (Fixtures.xy_mesh_2x2 ()))
  in
  check int_c "xy mesh lints clean" 0 (List.length report.Engine.diagnostics);
  check bool_c "worst is none" true (Engine.worst report = None)

let ring_report () =
  let ring = Fixtures.paper_ring () in
  Engine.analyze
    ~passes:(Registry.design_passes ())
    ~label:"paper-ring"
    (Pass.Design ring.Fixtures.net)

let test_render_json () =
  let open Noc_json in
  let doc = Render.json ~version:"test" [ ring_report () ] in
  check string_c "schema" "noc-lint/1" (Json.to_str (Json.field "schema" doc));
  let summary = Json.field "summary" doc in
  check int_c "summary errors" 0 (Json.to_int (Json.field "errors" summary));
  check int_c "summary warnings" 3 (Json.to_int (Json.field "warnings" summary));
  let reports = Json.to_list (Json.field "reports" doc) in
  check int_c "one report" 1 (List.length reports);
  let report = List.hd reports in
  check string_c "target" "paper-ring" (Json.to_str (Json.field "target" report));
  let diags = Json.to_list (Json.field "diagnostics" report) in
  check int_c "four findings" 4 (List.length diags);
  List.iter
    (fun d ->
      let code = Json.to_str (Json.field "code" d) in
      check bool_c (code ^ " is published") true (Diag_code.find code <> None))
    diags;
  (* The document round-trips through the serializer. *)
  check bool_c "serialization round-trips" true
    (Json.of_string (Json.to_string doc) = Ok doc)

let test_render_sarif () =
  let open Noc_json in
  let doc = Render.sarif ~version:"test" [ ring_report () ] in
  check string_c "sarif version" "2.1.0" (Json.to_str (Json.field "version" doc));
  let runs = Json.to_list (Json.field "runs" doc) in
  check int_c "single run" 1 (List.length runs);
  let run = List.hd runs in
  let driver = Json.field "driver" (Json.field "tool" run) in
  check string_c "driver name" Render.tool_name
    (Json.to_str (Json.field "name" driver));
  let rules = Json.to_list (Json.field "rules" driver) in
  check int_c "rules cover the whole code table" (List.length Diag_code.all)
    (List.length rules);
  let results = Json.to_list (Json.field "results" run) in
  check int_c "one result per finding" 4 (List.length results);
  List.iter
    (fun r ->
      let rule = Json.to_str (Json.field "ruleId" r) in
      match Diag_code.find rule with
      | None -> Alcotest.failf "%s rule is not published" rule
      | Some code ->
          (* SARIF levels map Error -> error, Warning -> warning,
             Info -> note. *)
          let expected =
            match code.Diag_code.severity with
            | Diag_code.Error -> "error"
            | Diag_code.Warning -> "warning"
            | Diag_code.Info -> "note"
          in
          check string_c (rule ^ " level") expected
            (Json.to_str (Json.field "level" r)))
    results

let test_render_text () =
  let report = ring_report () in
  let text = Format.asprintf "%a" Render.text [ report ] in
  List.iter
    (fun needle ->
      check bool_c ("text mentions " ^ needle) true (contains ~needle text))
    [ "paper-ring"; "NOC-CYCLE-001"; "NOC-DLF-003"; "NOC-ESC-002"; "3 warnings" ]

(* ------------------------------------------------------------------ *)
(* The job-file pass: the NOC-JOB codes                                *)
(* ------------------------------------------------------------------ *)

module Job = Noc_service.Job
module Lint = Noc_service.Lint

let run_jobs_pass ?(path = "jobs.json") text =
  Lint.jobs_pass.Pass.run (Pass.Job_file { path; text })

let benchmark_job ?(name = "D26_media") ?(n_switches = 8) () =
  {
    Job.design = Job.Benchmark { name; n_switches; max_degree = 4 };
    method_ = Job.removal_defaults;
  }

let file_of_jobs jobs = Noc_json.Json.to_string (Job.list_to_json jobs)

let test_job_file_unparsable () =
  (match run_jobs_pass "not json" with
  | [ d ] ->
      check string_c "code" "NOC-JOB-001" d.Diagnostic.code.Diag_code.code;
      check string_c "at the file" "jobs.json"
        (Diagnostic.location_path d.Diagnostic.location)
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds));
  (* Wrong schema tag is a file-level error too. *)
  match run_jobs_pass {|{"schema": "noc-jobs/999", "jobs": []}|} with
  | [ d ] -> check string_c "code" "NOC-JOB-001" d.Diagnostic.code.Diag_code.code
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

let test_job_malformed () =
  let text =
    {|{"schema": "noc-jobs/1",
       "jobs": [{"design": {"benchmark": "D26_media"}, "method": "removal"}]}|}
  in
  match run_jobs_pass text with
  | [ d ] ->
      check string_c "code" "NOC-JOB-002" d.Diagnostic.code.Diag_code.code;
      check string_c "at the entry" "jobs.json#0"
        (Diagnostic.location_path d.Diagnostic.location)
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

let test_job_duplicate () =
  let job = benchmark_job () in
  match run_jobs_pass (file_of_jobs [ job; job ]) with
  | [ d ] ->
      check string_c "code" "NOC-JOB-003" d.Diagnostic.code.Diag_code.code;
      check string_c "at the second entry" "jobs.json#1"
        (Diagnostic.location_path d.Diagnostic.location);
      check string_c "warning severity" "warning"
        (Diag_code.severity_to_string (Diagnostic.severity d))
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

let test_job_bad_design () =
  (* Unknown benchmark, switch count out of range, degenerate degree:
     all NOC-JOB-004 errors. *)
  let cases =
    [
      benchmark_job ~name:"nope" ();
      benchmark_job ~n_switches:99 ();
      {
        Job.design =
          Job.Benchmark { name = "D26_media"; n_switches = 8; max_degree = 0 };
        method_ = Job.removal_defaults;
      };
    ]
  in
  List.iteri
    (fun i job ->
      match Lint.job_diagnostics ~location:Diagnostic.Design job with
      | [ d ] ->
          check string_c
            (Printf.sprintf "case %d code" i)
            "NOC-JOB-004" d.Diagnostic.code.Diag_code.code
      | ds ->
          Alcotest.failf "case %d: expected one finding, got %d" i
            (List.length ds))
    cases;
  (* An inline design that fails error-level lint is NOC-JOB-002. *)
  let topo = Topology.create ~n_switches:2 in
  ignore (Topology.add_link topo ~src:(sw 0) ~dst:(sw 1));
  let traffic = Traffic.create ~n_cores:2 in
  ignore (Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:10.);
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  (* The flow is left unrouted: NOC-ROUTE-001 at error level. *)
  let job = { Job.design = Job.Inline (Io.save net); method_ = Job.removal_defaults } in
  match Lint.job_diagnostics ~location:Diagnostic.Design job with
  | [ d ] ->
      check string_c "inline code" "NOC-JOB-002" d.Diagnostic.code.Diag_code.code;
      check bool_c "names the design finding" true
        (contains ~needle:"NOC-ROUTE-001" d.Diagnostic.message)
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

let test_job_hash_unstable () =
  (* NOC-JOB-005 via the exposed recheck: feed it a tampered encoding
     (a different job's) and an unparsable one. *)
  let job = benchmark_job () in
  check int_c "own encoding is stable" 0
    (List.length
       (Lint.hash_stability ~location:Diagnostic.Design
          ~encoded:(Job.to_json job) job));
  (match
     Lint.hash_stability ~location:Diagnostic.Design
       ~encoded:(Job.to_json (benchmark_job ~n_switches:9 ()))
       job
   with
  | [ d ] ->
      check string_c "tampered code" "NOC-JOB-005"
        d.Diagnostic.code.Diag_code.code
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds));
  match Lint.hash_stability ~location:Diagnostic.Design ~encoded:Noc_json.Json.Null job with
  | [ d ] ->
      check string_c "unparsable code" "NOC-JOB-005"
        d.Diagnostic.code.Diag_code.code
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

let test_vet_job () =
  (match Lint.vet_job (benchmark_job ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "good job rejected: %s" msg);
  (* Duplicate detection is whole-file; a lone good job with warnings
     still passes the gate. *)
  (match Lint.vet_job (benchmark_job ~name:"nope" ()) with
  | Ok () -> Alcotest.fail "unknown benchmark accepted"
  | Error msg ->
      check bool_c "names the code" true (contains ~needle:"NOC-JOB-004" msg);
      check bool_c "reads as a lint rejection" true
        (String.length msg >= 16 && String.sub msg 0 16 = "rejected by lint"));
  (* A valid inline design passes the gate end to end. *)
  let job =
    {
      Job.design = Job.Inline (Io.save (Fixtures.xy_mesh_2x2 ()));
      method_ = Job.removal_defaults;
    }
  in
  match Lint.vet_job job with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "inline mesh rejected: %s" msg

let test_registry_jobs_clean () =
  (* Every registry benchmark, as a job, survives the gate — the same
     invariant the CI lint gate enforces design-side. *)
  List.iter
    (fun name ->
      match Lint.vet_job (benchmark_job ~name ~n_switches:14 ()) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s rejected: %s" name msg)
    Noc_benchmarks.Registry.names

(* ------------------------------------------------------------------ *)
(* Properties (satellite 2)                                            *)
(* ------------------------------------------------------------------ *)

let random_net_gen =
  QCheck.Gen.(
    let* n_switches = int_range 3 9 in
    let* chords =
      list_size (int_bound 6)
        (pair (int_bound (n_switches - 1)) (int_bound (n_switches - 1)))
    in
    let* pairs =
      list_size (int_range 1 14)
        (pair (int_bound (n_switches - 1)) (int_bound (n_switches - 1)))
    in
    return (n_switches, chords, pairs))

let build_net (n_switches, chords, pairs) =
  let topo = Topology.create ~n_switches in
  for i = 0 to n_switches - 1 do
    ignore (Topology.add_link topo ~src:(sw i) ~dst:(sw ((i + 1) mod n_switches)))
  done;
  List.iter
    (fun (a, b) ->
      if a <> b then ignore (Topology.add_link topo ~src:(sw a) ~dst:(sw b)))
    chords;
  let traffic = Traffic.create ~n_cores:n_switches in
  List.iter
    (fun (a, b) ->
      if a <> b then
        ignore (Traffic.add_flow traffic ~src:(core a) ~dst:(core b) ~bandwidth:10.))
    pairs;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  (match Routing.route_all net with Ok () -> () | Error e -> failwith e);
  net

let arbitrary_net =
  QCheck.make
    ~print:(fun (n, chords, pairs) ->
      Printf.sprintf "switches=%d chords=%s flows=%s" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) chords))
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d>%d" a b) pairs)))
    random_net_gen

let prop_certify_acyclic_implies_numbering_accepted =
  (* After removal the design certifies acyclic, the independent
     recheck accepts the numbering, and the structural lint passes all
     come back clean. *)
  QCheck.Test.make ~name:"acyclic certificate implies accepted numbering"
    ~count:100 arbitrary_net (fun input ->
      let net = build_net input in
      ignore (Noc_deadlock.Removal.run net);
      match (Noc_deadlock.Verify.certify net).Noc_deadlock.Verify.numbering with
      | None -> false
      | Some numbering ->
          Noc_deadlock.Verify.check_numbering net numbering
          && Passes.recheck_numbering net numbering = []
          && run_pass Passes.cdg_cycle net = []
          && run_pass Passes.certificate net = [])

let prop_single_step_mutation_caught =
  (* Mutating any single route step to an out-of-range VC — and,
     separately, dropping any flow's whole route — fires the routes
     pass. *)
  QCheck.Test.make ~name:"any single route-step mutation fires a lint pass"
    ~count:50 arbitrary_net (fun input ->
      let reference = build_net input in
      let topo = Network.topology reference in
      List.for_all
        (fun (f, route) ->
          route = []
          || (let dropped = build_net input in
              Network.set_route dropped f [];
              has_code "NOC-ROUTE-001" (run_pass Passes.routes dropped))
             && List.for_all
                  (fun k ->
                    let mutated = build_net input in
                    let bumped =
                      List.mapi
                        (fun i c ->
                          if i = k then
                            Channel.make (Channel.link c)
                              (Topology.vc_count topo (Channel.link c))
                          else c)
                        route
                    in
                    Network.set_route mutated f bumped;
                    run_pass Passes.routes mutated <> [])
                  (List.init (List.length route) Fun.id))
        (Network.routes reference))

let prop_corrupt_numbering_rechecked =
  (* Whenever some route chains two channels, the empty numbering (no
     channel assigned) must fail the recheck. *)
  QCheck.Test.make ~name:"corrupted numbering fires the certificate recheck"
    ~count:100 arbitrary_net (fun input ->
      let net = build_net input in
      ignore (Noc_deadlock.Removal.run net);
      let chained =
        List.exists (fun (_, r) -> List.length r >= 2) (Network.routes net)
      in
      (not chained)
      ||
      match Passes.recheck_numbering net [] with
      | [ d ] -> d.Diagnostic.code.Diag_code.code = "NOC-CERT-001"
      | _ -> false)

let prop_clean_designs_vet =
  (* The gate never rejects a job whose design lints clean at error
     level: random nets always do (their findings are warnings). *)
  QCheck.Test.make ~name:"lint gate accepts structurally valid inline designs"
    ~count:50 arbitrary_net (fun input ->
      let net = build_net input in
      let job =
        { Job.design = Job.Inline (Io.save net); method_ = Job.removal_defaults }
      in
      Lint.vet_job job = Ok ())

let prop_prover_agrees_with_certify =
  (* The differential heart of the PR: on arbitrary routed networks the
     independent escape-elimination prover and the CDG certifier reach
     the same verdict, the winning side's witness replays, and the
     deadlock-freedom pass never escalates to an error. *)
  QCheck.Test.make ~name:"independent prover agrees with Verify.certify"
    ~count:100 arbitrary_net (fun input ->
      let net = build_net input in
      let v = DF.analyze net in
      provers_agree net
      && (match v.DF.escape_order with
         | Some order -> DF.check_escape_order net order
         | None -> v.DF.knot <> None && v.DF.knot_cycle <> None)
      && List.for_all
           (fun d -> Diagnostic.severity d <> Diag_code.Error)
           (run_pass Passes.deadlock_freedom net))

let prop_removal_meets_lower_bound =
  (* Removal never beats the static lower bound, and its output is
     accepted by the independent prover with a clean pass report. *)
  QCheck.Test.make ~name:"removal cost respects the static VC lower bound"
    ~count:50 arbitrary_net (fun input ->
      let net = build_net input in
      let bound = DF.vc_lower_bound net in
      let report = Noc_deadlock.Removal.run net in
      bound.DF.lower_bound <= report.Noc_deadlock.Removal.vcs_added
      && (DF.analyze net).DF.deadlock_free
      && run_pass Passes.deadlock_freedom net = [])

(* Synthetic regular topologies (ring / mesh / torus) with random flow
   sets, plus a validity-preserving route mutation: lift one route's
   first hop onto a freshly added VC. *)
let regular_net_gen =
  QCheck.Gen.(
    let* kind = int_bound 2 in
    let* columns = int_range 2 4 in
    let* rows = int_range 2 4 in
    let* pairs = list_size (int_range 1 12) (pair (int_bound 50) (int_bound 50)) in
    return (kind, columns, rows, pairs))

let build_regular (kind, columns, rows, pairs) =
  let topo =
    match kind with
    | 0 -> Noc_synth.Regular.ring ~n_switches:(columns * rows)
    | 1 -> Noc_synth.Regular.mesh ~columns ~rows
    | _ -> Noc_synth.Regular.torus ~columns ~rows
  in
  let n = Topology.n_switches topo in
  let traffic = Traffic.create ~n_cores:n in
  List.iter
    (fun (a, b) ->
      let s = a mod n and d = b mod n in
      if s <> d then
        ignore (Traffic.add_flow traffic ~src:(core s) ~dst:(core d) ~bandwidth:10.))
    pairs;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  (match Routing.route_all net with Ok () -> () | Error e -> failwith e);
  net

let arbitrary_regular_net =
  QCheck.make
    ~print:(fun (kind, columns, rows, pairs) ->
      Printf.sprintf "%s %dx%d flows=%s"
        (match kind with 0 -> "ring" | 1 -> "mesh" | _ -> "torus")
        columns rows
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d>%d" a b) pairs)))
    regular_net_gen

let prop_prover_agrees_on_regular_topologies =
  QCheck.Test.make
    ~name:"independent prover agrees on ring/mesh/torus under route mutation"
    ~count:100 arbitrary_regular_net (fun input ->
      let net = build_regular input in
      let as_is = provers_agree net in
      let mutated =
        let net = build_regular input in
        (match
           List.find_opt (fun (_, r) -> r <> []) (Network.routes net)
         with
        | Some (f, (c0 :: rest)) ->
            let topo = Network.topology net in
            let link = Channel.link c0 in
            ignore (Topology.add_vc topo link);
            Network.set_route net f
              (Channel.make link (Topology.vc_count topo link - 1) :: rest)
        | _ -> ());
        provers_agree net
      in
      let prepared =
        let net = build_regular input in
        ignore (Noc_deadlock.Removal.run net);
        provers_agree net && (DF.analyze net).DF.deadlock_free
      in
      as_is && mutated && prepared)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_certify_acyclic_implies_numbering_accepted;
      prop_single_step_mutation_caught;
      prop_corrupt_numbering_rechecked;
      prop_clean_designs_vet;
      prop_prover_agrees_with_certify;
      prop_removal_meets_lower_bound;
      prop_prover_agrees_on_regular_topologies;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "analysis"
    [
      ( "codes",
        [
          tc "table is unique and published" `Quick test_code_table;
          tc "validate carries codes" `Quick test_validate_carries_codes;
        ] );
      ( "passes",
        [
          tc "route codes" `Quick test_route_codes;
          tc "topology codes" `Quick test_topo_codes;
          tc "dead hardware codes" `Quick test_dead_hardware_codes;
          tc "cycle witness" `Quick test_cycle_witness;
          tc "clean on xy mesh" `Quick test_cycle_clean_on_mesh;
          tc "certificate recheck" `Quick test_certificate_recheck;
          tc "escape codes" `Quick test_escape_codes;
          tc "bandwidth codes" `Quick test_bandwidth_codes;
          tc "route gating" `Quick test_route_gating;
        ] );
      ( "deadlock-freedom",
        [
          tc "verdicts and witnesses" `Quick test_dlf_verdicts;
          tc "pass codes" `Quick test_dlf_pass_codes;
          tc "vc lower bound" `Quick test_dlf_vc_bound;
          tc "registry agreement" `Quick test_dlf_registry_agreement;
          tc "prover/simulator triangle" `Quick test_dlf_sim_triangle;
        ] );
      ( "engine",
        [
          tc "ring report" `Quick test_engine_on_ring;
          tc "mesh is clean" `Quick test_engine_clean_on_mesh;
          tc "json document" `Quick test_render_json;
          tc "sarif document" `Quick test_render_sarif;
          tc "text rendering" `Quick test_render_text;
        ] );
      ( "jobs",
        [
          tc "unparsable file" `Quick test_job_file_unparsable;
          tc "malformed entry" `Quick test_job_malformed;
          tc "duplicate entry" `Quick test_job_duplicate;
          tc "bad designs" `Quick test_job_bad_design;
          tc "hash stability recheck" `Quick test_job_hash_unstable;
          tc "batch gate" `Quick test_vet_job;
          tc "registry jobs vet clean" `Quick test_registry_jobs_clean;
        ] );
      ("properties", qcheck_cases);
    ]
