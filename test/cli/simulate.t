The simulate command runs the wormhole engine on a synthesized
benchmark. D36_8 at 14 switches has a cyclic channel-dependency graph,
and under the default burst workload it deadlocks with a certified
waits-for cycle:

  $ noc_tool simulate -b D36_8 -s 14
  D36_8@14 (as synthesized) (CDG cyclic):
    DEADLOCK at cycle 299: 88 flits stuck, 78 blocked packets, waits-for cycle: 378 -> 230 -> 158 -> 62

With --remove-deadlocks the VC-splitting pass breaks every CDG cycle
first, and the same traffic runs to completion:

  $ noc_tool simulate -b D36_8 -s 14 --remove-deadlocks | head -2
  D36_8@14 (after removal) (CDG acyclic):
    completed: simulation: 498 cycles, 460 packets delivered, 9280 flit moves, avg latency 135.7, max 497

The synthetic workloads beyond the default burst pattern are available
via --workload; they are seeded and deterministic:

  $ noc_tool simulate -b D36_8 -s 14 --workload uniform
  D36_8@14 (as synthesized) (CDG cyclic):
    DEADLOCK at cycle 857: 92 flits stuck, 172 blocked packets, waits-for cycle: 2427 -> 1490 -> 1485 -> 2252 -> 742

  $ noc_tool simulate -b D36_8 -s 14 --workload uniform --remove-deadlocks | head -2
  D36_8@14 (after removal) (CDG acyclic):
    completed: simulation: 1881 cycles, 2947 packets delivered, 29724 flit moves, avg latency 355.3, max 1785

Unknown benchmarks and workloads are rejected with the list of valid
names:

  $ noc_tool simulate -b nope
  error: unknown benchmark nope (try: D26_media, D36_4, D36_6, D36_8, D35_bott, D38_tvopd)
  [1]

  $ noc_tool simulate -b D36_8 --workload zipf
  error: unknown workload zipf (try: burst, uniform, hotspot, transpose, bursty, bandwidth)
  [1]
