The batch service streams one line per job in submission order and a
summary; wall times are scrubbed because they vary run to run.

  $ noc_tool batch jobs.json --telemetry tel.jsonl | sed -E 's/ +[0-9.]+ ms/ <ms>/g; s/ +\(cache hit\)//'
  [0] ok        removal D26_media@14 <ms>  vcs_added 0, iterations 0, power_mw 33.3796
  [1] ok        ordering D26_media@14 <ms>  vcs_added 5, power_mw 35.3156
  [2] ok        removal D26_media@14 <ms>  vcs_added 0, iterations 0, power_mw 33.3796
  
  3 jobs on 1 domain in <ms>: 3 ok, 0 failed, 0 timed out, 0 cancelled, 1 cache hit

The same batch on 2 domains produces the same deterministic columns.

The cache-hit count is scrubbed here: whether job 2 hits the cache
depends on whether job 0 finished first, which is scheduler-dependent
with more than one domain.

  $ noc_tool batch jobs.json -j 2 | sed -E 's/ +[0-9.]+ ms/ <ms>/g; s/ +\(cache hit\)//; s/[0-9]+ cache hits?/N cache hits/'
  [0] ok        removal D26_media@14 <ms>  vcs_added 0, iterations 0, power_mw 33.3796
  [1] ok        ordering D26_media@14 <ms>  vcs_added 5, power_mw 35.3156
  [2] ok        removal D26_media@14 <ms>  vcs_added 0, iterations 0, power_mw 33.3796
  
  3 jobs on 2 domains in <ms>: 3 ok, 0 failed, 0 timed out, 0 cancelled, N cache hits


Telemetry is JSON lines with a fixed envelope.

  $ sed -E 's/"ts":[0-9.]+/"ts":T/; s/"(wall_ms|ts)":[0-9.e+-]+/"\1":T/g' tel.jsonl | cut -c1-60
  {"ts":T,"event":"batch_started","jobs":3,"domains":1,"cache_
  {"ts":T,"event":"job_submitted","index":0,"job":"e3f92e46","
  {"ts":T,"event":"job_started","index":0,"job":"e3f92e46","la
  {"ts":T,"event":"job_finished","index":0,"job":"e3f92e46","l
  {"ts":T,"event":"job_submitted","index":1,"job":"409dd6eb","
  {"ts":T,"event":"job_started","index":1,"job":"409dd6eb","la
  {"ts":T,"event":"job_finished","index":1,"job":"409dd6eb","l
  {"ts":T,"event":"job_submitted","index":2,"job":"e3f92e46","
  {"ts":T,"event":"job_started","index":2,"job":"e3f92e46","la
  {"ts":T,"event":"job_finished","index":2,"job":"e3f92e46","l
  {"ts":T,"event":"batch_finished","wall_ms":T,"succeeded":3,"
