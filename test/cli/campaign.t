A campaign sweeps the full grid of Simulate jobs and checks the
paper's behavioural claim cell by cell: removal- and ordering-prepared
designs never deadlock, while the unprotected cyclic-CDG design
deadlocks with a certificate.

  $ noc_tool campaign --benchmarks D26_media,D36_8 --workloads burst,transpose --store ./store --out report.json --report report.md
  campaign: 12 cells (2 designs x 2 workload variants x 3 preparations)
  [1] completed             sim burst/as-is D26_media@14
  [2] completed             sim burst/removal D26_media@14
  [3] completed             sim burst/ordering D26_media@14
  [4] completed             sim transpose/as-is D26_media@14
  [5] completed             sim transpose/removal D26_media@14
  [6] completed             sim transpose/ordering D26_media@14
  [7] deadlock (certified)  sim burst/as-is D36_8@14
  [8] completed             sim burst/removal D36_8@14
  [9] completed             sim burst/ordering D36_8@14
  [10] deadlock (certified)  sim transpose/as-is D36_8@14
  [11] completed             sim transpose/removal D36_8@14
  [12] completed             sim transpose/ordering D36_8@14
  
  12 cells (0 warm), 2 deadlocks (2 on cyclic designs), 0 failed
  invariants hold
  slo: 5 objectives green
  wrote report.json
  wrote report.md


Rerunning the same campaign against the same store serves every cell
warm from disk, so an interrupted sweep resumes for free:

  $ noc_tool campaign --benchmarks D26_media,D36_8 --workloads burst,transpose --store ./store
  campaign: 12 cells (2 designs x 2 workload variants x 3 preparations)
  [1] completed             sim burst/as-is D26_media@14  (warm)
  [2] completed             sim burst/removal D26_media@14  (warm)
  [3] completed             sim burst/ordering D26_media@14  (warm)
  [4] completed             sim transpose/as-is D26_media@14  (warm)
  [5] completed             sim transpose/removal D26_media@14  (warm)
  [6] completed             sim transpose/ordering D26_media@14  (warm)
  [7] deadlock (certified)  sim burst/as-is D36_8@14  (warm)
  [8] completed             sim burst/removal D36_8@14  (warm)
  [9] completed             sim burst/ordering D36_8@14  (warm)
  [10] deadlock (certified)  sim transpose/as-is D36_8@14  (warm)
  [11] completed             sim transpose/removal D36_8@14  (warm)
  [12] completed             sim transpose/ordering D36_8@14  (warm)
  
  12 cells (12 warm), 2 deadlocks (2 on cyclic designs), 0 failed
  invariants hold
  slo: 5 objectives green


The JSON report carries the bench-sim/1 schema consumed by the CI
regression gate, and the Markdown report names the certified
deadlocks:

  $ head -2 report.json
  {
    "schema": "bench-sim/1",
  $ grep -c 'DEADLOCK (certified)' report.md
  2

A campaign restricted to acyclic designs has no deadlock witness to
offer; --no-expect-deadlock accepts that:

  $ noc_tool campaign --benchmarks D26_media --workloads burst --no-expect-deadlock
  campaign: 3 cells (1 designs x 1 workload variants x 3 preparations)
  [1] completed             sim burst/as-is D26_media@14
  [2] completed             sim burst/removal D26_media@14
  [3] completed             sim burst/ordering D26_media@14
  
  3 cells (0 warm), 0 deadlocks (0 on cyclic designs), 0 failed
  invariants hold
  slo: 5 objectives green

An artificially tight per-cell SLO burns the gate: the campaign prints
the burned objective and exits 2, and the report's slo section records
the verdicts (values are wall times, so only counts are checked here):

  $ noc_tool campaign --benchmarks D26_media --workloads burst --no-expect-deadlock --slo campaign_cell_p99_ms=0.000001 --out burned.json > burned.txt 2>&1
  [2]
  $ grep -c 'SLO burned' burned.txt
  1
  $ grep -c 'campaign_cell_p99_ms' burned.txt
  1
  $ grep -c '"slo":' burned.json
  6

An unknown SLO name is rejected up front:

  $ noc_tool campaign --benchmarks D26_media --workloads burst --slo nonsense=1
  error: unknown SLO "nonsense" (have: submit_p99_ms, queue_wait_p99_ms, store_hit_rate, dlf_agreement, campaign_cell_p99_ms)
  [1]

