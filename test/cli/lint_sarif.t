SARIF 2.1.0 shape, the --fail-on exit-code matrix, and --suppress.

The paper's ring (one CDG cycle, so the deadlock-freedom prover fires
NOC-DLF-003/004 alongside NOC-CYCLE-001 and NOC-ESC-002):

  $ cat > ring.noc <<'EOF'
  > noc-design 1
  > switches 4
  > cores 4
  > link 0 0 1 1
  > link 1 1 2 1
  > link 2 2 3 1
  > link 3 3 0 1
  > core 0 0
  > core 1 1
  > core 2 2
  > core 3 3
  > flow 0 0 3 100
  > flow 1 2 0 100
  > flow 2 3 1 100
  > flow 3 0 2 100
  > route 0 0:0 1:0 2:0
  > route 1 2:0 3:0
  > route 2 3:0 0:0
  > route 3 0:0 1:0
  > EOF

  $ noc_tool lint ring.noc --format=sarif -o lint.sarif

Top-level shape: the SARIF version and the official schema URI.

  $ grep -o '"version": "2.1.0"' lint.sarif
  "version": "2.1.0"
  $ grep -c 'sarif-schema-2.1.0.json' lint.sarif
  1

The rules table is the whole published catalog, and the five NOC-DLF
rules carry the documented level mapping (Error -> "error",
Warning -> "warning", Info -> "note") in defaultConfiguration:

  $ grep -c '"id": "NOC-' lint.sarif
  30
  $ grep -A 7 '"id": "NOC-DLF-' lint.sarif | grep -E '"id"|"level"'
                "id": "NOC-DLF-001",
                  "level": "error"
                "id": "NOC-DLF-002",
                  "level": "error"
                "id": "NOC-DLF-003",
                  "level": "warning"
                "id": "NOC-DLF-004",
                  "level": "note"
                "id": "NOC-DLF-005",
                  "level": "error"

Each result names a rule from the table, repeats the level, and
anchors a logical location (channel, link, or the design itself):

  $ sed -n '/"results"/,$p' lint.sarif \
  >   | grep -E '"ruleId"|"level"|"fullyQualifiedName"'
            "ruleId": "NOC-CYCLE-001",
            "level": "warning",
                    "fullyQualifiedName": "ring.noc/channel/0.0"
            "ruleId": "NOC-DLF-003",
            "level": "warning",
                    "fullyQualifiedName": "ring.noc/channel/0.0"
            "ruleId": "NOC-ESC-002",
            "level": "warning",
                    "fullyQualifiedName": "ring.noc/channel/0.0"
            "ruleId": "NOC-DLF-004",
            "level": "note",
                    "fullyQualifiedName": "ring.noc/design"

The --fail-on exit-code matrix on the same report (0 errors,
3 warnings, 1 info): only findings at or above the floor gate.

  $ noc_tool lint ring.noc --format=sarif -o /dev/null --fail-on=error
  $ noc_tool lint ring.noc --format=sarif -o /dev/null --fail-on=warning
  [2]
  $ noc_tool lint ring.noc --format=sarif -o /dev/null --fail-on=info
  [2]

--suppress mutes named codes before rendering and gating, so a strict
warning-level gate can ignore an advisory without muting the
deadlock-freedom codes.  A simulate job driven past the 1.0
flits/cycle injection ceiling draws the NOC-SIM-003 saturation
advisory:

  $ cat > sim_jobs.json <<'EOF'
  > {
  >   "schema": "noc-jobs/1",
  >   "jobs": [
  >     {"design": {"benchmark": "D26_media", "switches": 14},
  >      "method": "simulate",
  >      "options": {"workload": {"kind": "uniform", "rate": 1.5}}}
  >   ]
  > }
  > EOF

  $ noc_tool lint sim_jobs.json --fail-on=warning
  sim_jobs.json: 1 finding
    NOC-SIM-003 warning sim_jobs.json#0: uniform workload: injection rate 1.50 flits/cycle/flow exceeds the 1.0 a single injection port can sustain (fix: lower the injection rate or hotspot factor)
  1 target: 0 errors, 1 warning, 0 info
  [2]

  $ noc_tool lint sim_jobs.json --fail-on=warning --suppress NOC-SIM-003
  sim_jobs.json: clean
  1 target: 0 errors, 0 warnings, 0 info

Suppressing NOC-SIM-003 does not touch the ring's NOC-DLF findings —
the deadlock gate still fires:

  $ noc_tool lint ring.noc --fail-on=warning --suppress NOC-SIM-003 -o /dev/null
  [2]

Suppression applies to SARIF results too (the rules table stays the
full catalog); here the two NOC-DLF results drop out:

  $ noc_tool lint ring.noc --format=sarif -o s.sarif \
  >   --suppress NOC-DLF-003,NOC-DLF-004
  $ grep -c '"ruleId"' s.sarif
  2

Unknown codes are rejected up front rather than silently ignored:

  $ noc_tool lint ring.noc --suppress NOC-BOGUS-999
  error: --suppress: unknown diagnostic code NOC-BOGUS-999 (see noc_tool lint --format json for the catalog)
  [1]
