Submitting to a daemon that is not running fails fast with a clear
error naming the socket, and exit code 1 — the contract CI scripts
rely on to distinguish "daemon down" from "jobs failed" (exit 2).

  $ noc_tool submit jobs.json --socket no-such-daemon.sock
  error: cannot connect to no-such-daemon.sock: No such file or directory
  [1]

Same for serve-stats.

  $ noc_tool serve-stats --socket no-such-daemon.sock
  error: cannot connect to no-such-daemon.sock: No such file or directory
  [1]

A connectable path that is not a socket is also a clean error, not a
hang or a traceback.

  $ touch not-a-socket
  $ noc_tool submit jobs.json --socket not-a-socket
  error: cannot connect to not-a-socket: Connection refused
  [1]

An unreadable job file is reported before any connection attempt.

  $ noc_tool submit no-such-jobs.json --socket no-such-daemon.sock
  error: cannot read job file: no-such-jobs.json: No such file or directory
  [1]
