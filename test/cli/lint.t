The lint subcommand: the multi-pass static analyzer with stable codes.

The paper's running example as a design file: four switches in a ring,
one VC per link, and the four flows whose CDG has exactly one cycle.

  $ cat > ring.noc <<'EOF'
  > noc-design 1
  > switches 4
  > cores 4
  > link 0 0 1 1
  > link 1 1 2 1
  > link 2 2 3 1
  > link 3 3 0 1
  > core 0 0
  > core 1 1
  > core 2 2
  > core 3 3
  > flow 0 0 3 100
  > flow 1 2 0 100
  > flow 2 3 1 100
  > flow 3 0 2 100
  > route 0 0:0 1:0 2:0
  > route 1 2:0 3:0
  > route 2 3:0 0:0
  > route 3 0:0 1:0
  > EOF

The deadlock potential is reported as warnings (the removal tool is
the fix, not a design error), so the default error-level gate passes:

  $ noc_tool lint ring.noc
  ring.noc: 4 findings
    NOC-CYCLE-001 warning channel/0.0: CDG cycle of 4 channels: L0 -> L1 -> L2 -> L3 (design can deadlock) (fix: run `noc_tool remove` to break the cycles)
    NOC-DLF-003 warning channel/0.0: waiting knot of 4 channels (every member waits only on other members); sample cycle: L0 -> L1 -> L2 -> L3 (fix: run `noc_tool remove` to break the cycles)
    NOC-ESC-002 warning channel/0.0: extended CDG of the VC0 escape set is cyclic: L0 -> L1 -> L2 -> L3 (fix: run `noc_tool remove` to break the cycles)
    NOC-DLF-004 info design: any duplication-based removal must add at least 1 VC (1 vertex-disjoint wait cycles)
  1 target: 0 errors, 3 warnings, 1 info

Tightening the gate to warnings fails the same report:

  $ noc_tool lint ring.noc --fail-on=warning -o report.txt
  [2]

The bandwidth pass notes near-saturated links at info severity when
the capacity is tight (L0 carries three 100 MB/s flows):

  $ noc_tool lint ring.noc --capacity 320
  ring.noc: 5 findings
    NOC-CYCLE-001 warning channel/0.0: CDG cycle of 4 channels: L0 -> L1 -> L2 -> L3 (design can deadlock) (fix: run `noc_tool remove` to break the cycles)
    NOC-DLF-003 warning channel/0.0: waiting knot of 4 channels (every member waits only on other members); sample cycle: L0 -> L1 -> L2 -> L3 (fix: run `noc_tool remove` to break the cycles)
    NOC-ESC-002 warning channel/0.0: extended CDG of the VC0 escape set is cyclic: L0 -> L1 -> L2 -> L3 (fix: run `noc_tool remove` to break the cycles)
    NOC-BW-002 info link/0: link L0 is at 94% of its 320 MB/s capacity
    NOC-DLF-004 info design: any duplication-based removal must add at least 1 VC (1 vertex-disjoint wait cycles)
  1 target: 0 errors, 3 warnings, 2 info

Machine output is the noc-lint/1 JSON document:

  $ noc_tool lint ring.noc --format=json
  {
    "schema": "noc-lint/1",
    "tool": {
      "name": "noc_tool lint",
      "version": "1.0.0"
    },
    "reports": [
      {
        "target": "ring.noc",
        "passes": [
          "routes",
          "connectivity",
          "dead-channels",
          "dead-vcs",
          "cdg-cycle",
          "certificate",
          "deadlock-freedom",
          "escape",
          "bandwidth"
        ],
        "diagnostics": [
          {
            "code": "NOC-CYCLE-001",
            "severity": "warning",
            "location": "channel/0.0",
            "message": "CDG cycle of 4 channels: L0 -> L1 -> L2 -> L3 (design can deadlock)",
            "fix": "run `noc_tool remove` to break the cycles"
          },
          {
            "code": "NOC-DLF-003",
            "severity": "warning",
            "location": "channel/0.0",
            "message": "waiting knot of 4 channels (every member waits only on other members); sample cycle: L0 -> L1 -> L2 -> L3",
            "fix": "run `noc_tool remove` to break the cycles"
          },
          {
            "code": "NOC-ESC-002",
            "severity": "warning",
            "location": "channel/0.0",
            "message": "extended CDG of the VC0 escape set is cyclic: L0 -> L1 -> L2 -> L3",
            "fix": "run `noc_tool remove` to break the cycles"
          },
          {
            "code": "NOC-DLF-004",
            "severity": "info",
            "location": "design",
            "message": "any duplication-based removal must add at least 1 VC (1 vertex-disjoint wait cycles)"
          }
        ]
      }
    ],
    "summary": {
      "errors": 0,
      "warnings": 3,
      "infos": 1
    }
  }

A design whose routes are structurally broken does not even load: the
loader rejects it citing the same stable code, and an unusable input
exits 1 (error-level findings on loadable targets exit 2, below):

  $ sed 's/route 0 0:0/route 0 0:5/' ring.noc > broken.noc
  $ noc_tool lint broken.noc
  error: broken.noc: invalid design: NOC-ROUTE-003 F0: channel L0'5 uses VC 5 but link has only 1
  [1]

Job files are recognized by content and linted with the NOC-JOB pass;
the shared fixture's third job repeats its first:

  $ noc_tool lint jobs.json
  jobs.json: 1 finding
    NOC-JOB-003 warning jobs.json#2: job 2 repeats job 0 (hash e3f92e46); the second run will only exercise the cache (fix: drop the duplicate entry)
  1 target: 0 errors, 1 warning, 0 info

  $ noc_tool lint jobs.json --fail-on=warning -o report.txt
  [2]

SARIF output: a single run whose rules table is the whole published
catalog, one result per finding:

  $ noc_tool lint ring.noc jobs.json --format=sarif -o lint.sarif
  $ grep -o '"version": "2.1.0"' lint.sarif
  "version": "2.1.0"
  $ grep -c '"id": "NOC-' lint.sarif
  30
  $ grep -c '"ruleId"' lint.sarif
  5

Unusable inputs have stable codes too — a file that is not JSON (and
not a design) is a NOC-JOB-001 error:

  $ echo 'not json' > bad.json
  $ noc_tool lint bad.json
  bad.json: 1 finding
    NOC-JOB-001 error bad.json: expected null at offset 0
  1 target: 1 error, 0 warnings, 0 info
  [2]

A file that is not there at all is a plain CLI error:

  $ noc_tool lint missing.json
  error: cannot read missing.json: missing.json: No such file or directory
  [1]

With no files the named benchmark is synthesized and linted; the
registry designs are all clean at error level:

  $ noc_tool lint -b D26_media -s 8
  D26_media@8: clean
  1 target: 0 errors, 0 warnings, 0 info

The full-registry job file that CI's race-detection smoke batches is
itself lint-clean — the same gate Batch applies before the pool:

  $ noc_tool lint registry_jobs.json
  registry_jobs.json: clean
  1 target: 0 errors, 0 warnings, 0 info
