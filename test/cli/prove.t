The prove subcommand: the independent deadlock-freedom prover.

The paper's ring again — one CDG cycle through the four links:

  $ cat > ring.noc <<'EOF'
  > noc-design 1
  > switches 4
  > cores 4
  > link 0 0 1 1
  > link 1 1 2 1
  > link 2 2 3 1
  > link 3 3 0 1
  > core 0 0
  > core 1 1
  > core 2 2
  > core 3 3
  > flow 0 0 3 100
  > flow 1 2 0 100
  > flow 2 3 1 100
  > flow 3 0 2 100
  > route 0 0:0 1:0 2:0
  > route 1 2:0 3:0
  > route 2 3:0 0:0
  > route 3 0:0 1:0
  > EOF

The escape-elimination fixpoint leaves all four channels in a waiting
knot (every member waits only on other members), prints a concrete
waits-for cycle as the counterexample plus the static lower bound on
what any duplication-based removal must pay, and cross-checks the
verdict against the CDG certifier:

  $ noc_tool prove -i ring.noc
  ring.noc: can deadlock (4 channels, 4 waits, knot of 4 channels; cycle: L0 -> L1 -> L2 -> L3)
  ring.noc: any duplication-based removal must add at least 1 VC(s) (1 vertex-disjoint wait cycles)
  ring.noc: agreement: certify and prover both say cyclic

Agreement on a cyclic design still exits 0 — the provers are not in
conflict; --require-free turns residual deadlock potential into a
gate failure:

  $ noc_tool prove -i ring.noc --require-free
  ring.noc: can deadlock (4 channels, 4 waits, knot of 4 channels; cycle: L0 -> L1 -> L2 -> L3)
  ring.noc: any duplication-based removal must add at least 1 VC(s) (1 vertex-disjoint wait cycles)
  ring.noc: agreement: certify and prover both say cyclic
  [2]

--prepare removal runs the paper's algorithm first.  The removal pays
exactly the lower bound here (gap 0: one VC, the paper's Table 1
answer for the ring), and the prepared design gets a full escape
ordering — the witness that, replayed in reverse, is a valid
Dally-Towles numbering:

  $ noc_tool prove -i ring.noc --prepare removal --require-free
  ring.noc: removal added 1 VC(s); static lower bound 1 (gap 0)
  ring.noc: deadlock-free (5 channels, 4 waits, escape ordering of 5 channels)
  ring.noc: escape ordering: L0 -> L3 -> L2 -> L1 -> L0'
  ring.noc: agreement: certify and prover both say deadlock-free

Benchmarks synthesize like the other subcommands:

  $ noc_tool prove -b D26_media -s 8
  D26_media@8: deadlock-free (16 channels, 2 waits, escape ordering of 16 channels)
  D26_media@8: escape ordering: L0 -> L1 -> L2 -> L3 -> L4 -> L5 -> L6 -> L7 (+8 more)
  D26_media@8: agreement: certify and prover both say deadlock-free

The full registry, as synthesized: two designs carry deadlock
potential (D36_6 and D36_8), and both provers agree on every verdict:

  $ noc_tool prove --all-benchmarks
  D26_media@14: deadlock-free (29 channels, 6 waits, escape ordering of 29 channels)
  D26_media@14: escape ordering: L0 -> L1 -> L3 -> L4 -> L5 -> L7 -> L8 -> L9 (+21 more)
  D26_media@14: agreement: certify and prover both say deadlock-free
  D36_4@14: deadlock-free (38 channels, 31 waits, escape ordering of 38 channels)
  D36_4@14: escape ordering: L0 -> L4 -> L5 -> L6 -> L7 -> L17 -> L20 -> L24 (+30 more)
  D36_4@14: agreement: certify and prover both say deadlock-free
  D36_6@14: can deadlock (39 channels, 47 waits, knot of 30 channels; cycle: L38 -> L29 -> L32 -> L26)
  D36_6@14: any duplication-based removal must add at least 2 VC(s) (2 vertex-disjoint wait cycles)
  D36_6@14: agreement: certify and prover both say cyclic
  D36_8@14: can deadlock (45 channels, 53 waits, knot of 26 channels; cycle: L9 -> L2 -> L19 -> L24 -> L40 -> L44 -> L38)
  D36_8@14: any duplication-based removal must add at least 2 VC(s) (2 vertex-disjoint wait cycles)
  D36_8@14: agreement: certify and prover both say cyclic
  D35_bott@14: deadlock-free (36 channels, 11 waits, escape ordering of 36 channels)
  D35_bott@14: escape ordering: L0 -> L1 -> L2 -> L3 -> L4 -> L5 -> L8 -> L9 (+28 more)
  D35_bott@14: agreement: certify and prover both say deadlock-free
  D38_tvopd@14: deadlock-free (24 channels, 6 waits, escape ordering of 24 channels)
  D38_tvopd@14: escape ordering: L1 -> L2 -> L3 -> L4 -> L5 -> L6 -> L7 -> L8 (+16 more)
  D38_tvopd@14: agreement: certify and prover both say deadlock-free

Removal-prepared, every benchmark is independently proven deadlock
free, with the achieved VC cost reported against the lower bound —
this is the prove-smoke CI gate:

  $ noc_tool prove --all-benchmarks --prepare removal --require-free > prepared.txt
  $ grep -c 'agreement: certify and prover both say deadlock-free' prepared.txt
  6
  $ grep 'removal added' prepared.txt
  D26_media@14: removal added 0 VC(s); static lower bound 0 (gap 0)
  D36_4@14: removal added 0 VC(s); static lower bound 0 (gap 0)
  D36_6@14: removal added 2 VC(s); static lower bound 2 (gap 0)
  D36_8@14: removal added 3 VC(s); static lower bound 2 (gap 1)
  D35_bott@14: removal added 0 VC(s); static lower bound 0 (gap 0)
  D38_tvopd@14: removal added 0 VC(s); static lower bound 0 (gap 0)
