The trace subcommand: run deadlock removal under the span tracer and
export the collected trace.  D36_8 is deterministic — three cycles to
break, 27 spans — so counts are stable; only times are scrubbed.

The summary format is the human-readable per-phase table:

  $ noc_tool trace --benchmark D36_8 --format summary | sed -E 's/[0-9]+\.[0-9]{3}/<ms>/g; s/ +[0-9]+\.[0-9]%/ <pct>/g'
  span                            count     total ms   share
  break_cycle.apply                   3        <ms> <pct>
  cdg.apply_change                    3        <ms> <pct>
  cdg.build                           1        <ms> <pct>
  cost_table.both                     3        <ms> <pct>
  removal.break                       3        <ms> <pct>
  removal.cdg_update                  3        <ms> <pct>
  removal.cost_tables                 3        <ms> <pct>
  removal.find_cycle                  4        <ms> <pct>
  removal.iteration                   3        <ms> <pct>
  removal.run                         1        <ms> <pct>
  traced wall interval: <ms> ms over 27 spans
  metrics:
  noc_cdg_apply_changes_total      3
  noc_cdg_builds_total             1
  noc_pool_queue_wait_ms           0 samples, sum <ms>
  noc_pool_tasks_total             0
  noc_removal_cdg_incremental_total 3
  noc_removal_cdg_rebuild_total    0
  noc_removal_cycles_broken_total  3

The chrome format writes Perfetto-loadable trace-event JSON with
balanced begin/end pairs:

  $ noc_tool trace -b D36_8 --format chrome -o trace.json
  trace written to trace.json (3 iterations, 3 VCs added)
  $ grep -o '"ph": "[BE]"' trace.json | sort | uniq -c
       27 "ph": "B"
       27 "ph": "E"

The jsonl format is the noc-trace/1 stream: a schema header, one line
per event with relative nanosecond timestamps, then the metrics:

  $ noc_tool trace -b D36_8 --format jsonl | sed -E 's/"ts":[0-9.]+/"ts":T/; s/"epoch_ns":[0-9.]+/"epoch_ns":E/' | head -4
  {"schema":"noc-trace/1","clock":"monotonic","epoch_ns":E}
  {"ts":T,"event":"span_begin","name":"removal.run","domain":0}
  {"ts":T,"event":"span_begin","name":"cdg.build","domain":0}
  {"ts":T,"event":"span_end","name":"cdg.build","domain":0,"attrs":{"channels":45}}
  $ noc_tool trace -b D36_8 --format jsonl | wc -l
  62

The remove subcommand grows a --trace flag writing the same stream
alongside its normal work:

  $ noc_tool remove -b D36_8 --trace run.trace | head -2
  trace written to run.trace
  deadlock removal: 3 cycle(s) broken, 3 VC(s) added, deadlock-free

The lint subcommand recognises noc-trace/1 files and validates them
(NOC-TRC-*); a freshly written trace is clean by construction:

  $ noc_tool lint run.trace
  run.trace: clean
  1 target: 0 errors, 0 warnings, 0 info

Deleting one line from the stream breaks the span stack discipline:

  $ sed 3d run.trace > broken.trace
  $ noc_tool lint broken.trace
  broken.trace: 1 finding
    NOC-TRC-002 error broken.trace:3: span_end "cdg.build" does not match the open span "removal.run" (begun at line 2) on domain 0
  1 target: 1 error, 0 warnings, 0 info
  [2]

A wrong schema version is rejected up front:

  $ printf '{"schema":"noc-trace/9"}\n' > wrong.trace
  $ noc_tool lint wrong.trace
  wrong.trace: 1 finding
    NOC-TRC-001 error wrong.trace:1: unsupported schema "noc-trace/9" (want "noc-trace/1")
  1 target: 1 error, 0 warnings, 0 info
  [2]

An unknown benchmark name fails with the registry's suggestions:

  $ noc_tool trace -b nope
  error: unknown benchmark nope (try: D26_media, D36_4, D36_6, D36_8, D35_bott, D38_tvopd)
  [1]
