Malformed or missing inputs exit with a clear error, not a backtrace.

A job file that does not exist:

  $ noc_tool batch does-not-exist.json
  error: cannot read job file: does-not-exist.json: No such file or directory
  [1]

A file that is not JSON:

  $ echo 'not json' > bad.json
  $ noc_tool batch bad.json
  error: bad.json: expected null at offset 0
  [1]

A structurally valid file with a broken job:

  $ cat > badjob.json <<'EOF'
  > {"schema": "noc-jobs/1",
  >  "jobs": [{"design": {"benchmark": "D26_media"}, "method": "removal"}]}
  > EOF
  $ noc_tool batch badjob.json
  error: badjob.json: job 0: design: missing integer field "switches"
  [1]

A job naming an unknown benchmark is rejected by the submission-time
lint gate (it never reaches a worker), and the batch exits 2:

  $ cat > failing.json <<'EOF'
  > {"schema": "noc-jobs/1",
  >  "jobs": [{"design": {"benchmark": "nope", "switches": 3}, "method": "removal"}]}
  > EOF
  $ noc_tool batch failing.json | sed -E 's/ +[0-9.]+ ms/ <ms>/g'
  [0] FAILED    removal nope@3 <ms>  rejected by lint: NOC-JOB-004 unknown benchmark "nope" (try: D26_media, D36_4, D36_6, D36_8, D35_bott, D38_tvopd)
  
  1 job on 1 domain in <ms>: 0 ok, 1 failed, 0 timed out, 0 cancelled, 0 cache hits


  $ noc_tool batch failing.json > /dev/null
  [2]

With --no-lint the same job reaches the runner and fails there instead:

  $ noc_tool batch failing.json --no-lint | sed -E 's/ +[0-9.]+ ms/ <ms>/g'
  [0] FAILED    removal nope@3 <ms>  unknown benchmark "nope" (try: D26_media, D36_4, D36_6, D36_8, D35_bott, D38_tvopd)
  
  1 job on 1 domain in <ms>: 0 ok, 1 failed, 0 timed out, 0 cancelled, 0 cache hits


A design file that does not exist:

  $ noc_tool remove -i does-not-exist.noc
  error: does-not-exist.noc: No such file or directory
  [1]

Zero switches is rejected up front:

  $ noc_tool synth -b D26_media -s 0
  error: switch count must be at least 1
  [1]

Saving to an unwritable path is a clean error:

  $ noc_tool synth -b D26_media -s 8 -o /nonexistent-dir/out.noc
  error: /nonexistent-dir/out.noc: No such file or directory
  [1]
