(* The campaign subsystem: grid construction, the store-backed resume
   path, the deadlock-freedom verdict, the Markdown report, and the
   bench-sim/1 report with its baseline gate. *)

open Noc_service
open Noc_campaign

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "noc_campaign_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let two_designs = [ { Campaign.benchmark = "D26_media"; n_switches = 14 };
                    { Campaign.benchmark = "D36_8"; n_switches = 14 } ]

let small_grid () =
  Campaign.grid ~points:two_designs
    ~workloads:
      Noc_benchmarks.Workloads.[ default_burst; default_transpose ]
    ()

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_grid_factorial_size () =
  let jobs = small_grid () in
  (* 2 designs x 2 workloads x 3 preparations. *)
  check int_c "full factorial" 12 (List.length jobs);
  let hashes = List.map Job.hash jobs in
  check int_c "all cells distinct" 12
    (List.length (List.sort_uniq compare hashes));
  check bool_c "grid is deterministic" true (small_grid () = jobs)

let test_grid_rate_expansion () =
  let jobs =
    Campaign.grid ~prepares:[ Job.As_is ]
      ~rates:[ 0.05; 0.1; 0.2 ]
      ~points:[ List.hd two_designs ]
      ~workloads:
        Noc_benchmarks.Workloads.[ default_uniform; default_burst ]
      ()
  in
  (* uniform expands once per rate; burst (no rate knob) appears once. *)
  check int_c "3 rated + 1 unrated" 4 (List.length jobs);
  let rates =
    List.filter_map
      (fun (job : Job.t) ->
        match job.Job.method_ with
        | Job.Simulate { workload; _ } ->
            Noc_benchmarks.Workloads.injection_rate workload
        | _ -> None)
      jobs
  in
  check (Alcotest.list (Alcotest.float 1e-9)) "rates applied" [ 0.05; 0.1; 0.2 ]
    (List.sort compare rates)

(* ------------------------------------------------------------------ *)
(* Run + verify + resume                                               *)
(* ------------------------------------------------------------------ *)

let test_run_verify_and_resume () =
  with_temp_dir (fun dir ->
      let store = Store.create ~root:(Filename.concat dir "store") ~capacity:64 in
      let config = { Campaign.default_config with Campaign.store = Some store } in
      let jobs = small_grid () in
      let cells = Campaign.run config jobs in
      check int_c "every job produced a cell" 12 (List.length cells);
      check bool_c "grid order preserved" true
        (List.map Job.hash jobs
        = List.map (fun (c : Campaign.cell) -> Job.hash c.Campaign.job) cells);
      let verdict = Campaign.verify cells in
      check bool_c "invariants hold" true (Campaign.verdict_ok verdict);
      check int_c "nothing warm on the first run" 0 verdict.Campaign.warm;
      check bool_c "cyclic design deadlocked" true
        (verdict.Campaign.cyclic_deadlocks > 0);
      check int_c "no failures" 0 verdict.Campaign.failed;
      (* Deadlocks only on unprotected cells, and always certified. *)
      List.iter
        (fun (c : Campaign.cell) ->
          if Campaign.deadlocked c then begin
            check bool_c "deadlock on as-is only" true
              (Campaign.prepare_of c = Some Job.As_is);
            check bool_c "certified" true (Campaign.certified c);
            check bool_c "on a cyclic CDG" true (Campaign.cdg_cyclic c)
          end)
        cells;
      (* Second run resumes entirely from the store, bit-identically. *)
      let cells' = Campaign.run config jobs in
      let verdict' = Campaign.verify cells' in
      check int_c "all cells warm" 12 verdict'.Campaign.warm;
      check bool_c "warm results identical" true
        (List.map (fun (c : Campaign.cell) -> Outcome.result_hash c.Campaign.outcome) cells
        = List.map (fun (c : Campaign.cell) -> Outcome.result_hash c.Campaign.outcome) cells'))

let test_verify_flags_missing_cyclic_deadlock () =
  (* An acyclic-only campaign observes no deadlock; with the witness
     expectation on, that is a violation, with it off, a pass. *)
  let jobs =
    Campaign.grid
      ~points:[ { Campaign.benchmark = "D26_media"; n_switches = 14 } ]
      ~workloads:[ Noc_benchmarks.Workloads.default_burst ]
      ()
  in
  let cells = Campaign.run Campaign.default_config jobs in
  let strict = Campaign.verify cells in
  check bool_c "no cyclic cells at all, so nothing to witness" true
    (Campaign.verdict_ok strict);
  check int_c "no cyclic cells" 0 strict.Campaign.cyclic_cells

let test_markdown_report_shape () =
  let jobs = small_grid () in
  let cells = Campaign.run Campaign.default_config jobs in
  let verdict = Campaign.verify cells in
  let md = Campaign.markdown_report cells verdict in
  check bool_c "has the summary" true (contains ~needle:"# Simulation campaign" md);
  check bool_c "has the cell table" true (contains ~needle:"| design |" md);
  check bool_c "names the deadlock" true (contains ~needle:"DEADLOCK (certified)" md);
  check bool_c "no load-latency section without rates" false
    (contains ~needle:"## Load" md);
  (* With rates, the load-latency section appears. *)
  let rated =
    Campaign.grid ~prepares:[ Job.Removal_first ] ~rates:[ 0.05; 0.15 ]
      ~points:[ { Campaign.benchmark = "D36_8"; n_switches = 14 } ]
      ~workloads:[ Noc_benchmarks.Workloads.default_uniform ]
      ()
  in
  let rated_cells = Campaign.run Campaign.default_config rated in
  let rated_md =
    Campaign.markdown_report rated_cells
      (Campaign.verify ~expect_cyclic_deadlock:false rated_cells)
  in
  check bool_c "load-latency curves present" true
    (contains ~needle:"## Load" rated_md)

(* ------------------------------------------------------------------ *)
(* Sim_report: JSON round-trip and the regression gate                 *)
(* ------------------------------------------------------------------ *)

let report_of_small_grid () =
  let cells = Campaign.run Campaign.default_config (small_grid ()) in
  Sim_report.of_cells cells

let test_sim_report_roundtrip () =
  let report = report_of_small_grid () in
  check int_c "every finished cell reported" 12
    (List.length report.Sim_report.entries);
  match Sim_report.of_json (Sim_report.to_json report) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok decoded -> check bool_c "round-trips exactly" true (decoded = report)

let test_sim_report_gate_passes_on_self () =
  let report = report_of_small_grid () in
  check
    Alcotest.(list string)
    "self-comparison is clean" []
    (Sim_report.compare_to_baseline ~baseline:report report)

let with_entry f report =
  {
    report with
    Sim_report.entries =
      List.map
        (fun (e : Sim_report.entry) ->
          if e.Sim_report.prepare = "removal" && e.Sim_report.workload = "burst"
             && e.Sim_report.benchmark = "D36_8"
          then f e
          else e)
        report.Sim_report.entries;
  }

let test_sim_report_gate_catches_regressions () =
  let baseline = report_of_small_grid () in
  (* A protected cell that starts deadlocking is caught by the hard
     invariant even before the baseline diff. *)
  let broken =
    with_entry
      (fun e ->
        { e with Sim_report.deadlocked = true; certified = true;
                 cdg_cyclic = true; result_hash = "tampered" })
      baseline
  in
  let errors = Sim_report.compare_to_baseline ~baseline broken in
  check bool_c "deadlock flip caught" true (errors <> []);
  check bool_c "named as a protected-design deadlock" true
    (List.exists (contains ~needle:"removal-protected") errors);
  check bool_c "invariant check needs no baseline" true
    (Sim_report.invariant_errors broken <> []);
  (* Latency drift beyond the band fails; inside the band passes. *)
  let slow =
    with_entry
      (fun e ->
        { e with Sim_report.avg_latency = e.Sim_report.avg_latency *. 2.;
                 result_hash = "drifted" })
      baseline
  in
  check bool_c "2x latency caught" true
    (List.exists (contains ~needle:"avg latency")
       (Sim_report.compare_to_baseline ~baseline slow));
  let slight =
    with_entry
      (fun e ->
        { e with Sim_report.avg_latency = e.Sim_report.avg_latency *. 1.1;
                 result_hash = "drifted" })
      baseline
  in
  check
    Alcotest.(list string)
    "10% drift inside the band" []
    (Sim_report.compare_to_baseline ~baseline slight);
  (* A missing cell is a gate failure. *)
  let missing =
    {
      baseline with
      Sim_report.entries =
        List.filter
          (fun (e : Sim_report.entry) -> e.Sim_report.prepare <> "removal")
          baseline.Sim_report.entries;
    }
  in
  check bool_c "missing cell caught" true
    (List.exists (contains ~needle:"missing")
       (Sim_report.compare_to_baseline ~baseline missing));
  (* Delivery counts are exact: the sim is deterministic. *)
  let short =
    with_entry
      (fun e ->
        { e with Sim_report.delivered = e.Sim_report.delivered -. 1.;
                 result_hash = "drifted" })
      baseline
  in
  check bool_c "delivery change caught" true
    (List.exists (contains ~needle:"delivered")
       (Sim_report.compare_to_baseline ~baseline short))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "noc_campaign"
    [
      ( "grid",
        [
          tc "factorial size" test_grid_factorial_size;
          tc "rate expansion" test_grid_rate_expansion;
        ] );
      ( "run",
        [
          tc "verify and resume" test_run_verify_and_resume;
          tc "acyclic-only campaign" test_verify_flags_missing_cyclic_deadlock;
          tc "markdown report" test_markdown_report_shape;
        ] );
      ( "sim_report",
        [
          tc "round-trip" test_sim_report_roundtrip;
          tc "gate passes on self" test_sim_report_gate_passes_on_self;
          tc "gate catches regressions" test_sim_report_gate_catches_regressions;
        ] );
    ]
