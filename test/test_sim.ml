open Noc_model
open Noc_sim

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let sw = Fixtures.sw
let core = Fixtures.core
let ch = Fixtures.ch

(* ------------------------------------------------------------------ *)
(* Packets                                                             *)
(* ------------------------------------------------------------------ *)

let test_packet_make_checks () =
  let route = [ ch 0 ] in
  Alcotest.check_raises "length" (Invalid_argument "Packet.make: length < 1")
    (fun () ->
      ignore (Packet.make ~id:0 ~flow:(Fixtures.fl 0) ~route ~length:0 ~inject_at:0));
  Alcotest.check_raises "route" (Invalid_argument "Packet.make: empty route")
    (fun () ->
      ignore (Packet.make ~id:0 ~flow:(Fixtures.fl 0) ~route:[] ~length:1 ~inject_at:0));
  Alcotest.check_raises "time"
    (Invalid_argument "Packet.make: negative injection cycle") (fun () ->
      ignore (Packet.make ~id:0 ~flow:(Fixtures.fl 0) ~route ~length:1 ~inject_at:(-1)))

let test_packet_flits () =
  let p = Packet.make ~id:1 ~flow:(Fixtures.fl 0) ~route:[ ch 0 ] ~length:3 ~inject_at:0 in
  let flits = Packet.flits p in
  check int_c "three flits" 3 (List.length flits);
  (match flits with
  | head :: _ -> check bool_c "head" true (Packet.is_head head)
  | [] -> Alcotest.fail "no flits");
  check bool_c "tail" true (Packet.is_tail (List.nth flits 2));
  check bool_c "middle is neither" false
    (Packet.is_head (List.nth flits 1) || Packet.is_tail (List.nth flits 1))

let test_single_flit_packet_is_head_and_tail () =
  let p = Packet.make ~id:1 ~flow:(Fixtures.fl 0) ~route:[ ch 0 ] ~length:1 ~inject_at:0 in
  match Packet.flits p with
  | [ f ] -> check bool_c "both" true (Packet.is_head f && Packet.is_tail f)
  | _ -> Alcotest.fail "expected one flit"

(* ------------------------------------------------------------------ *)
(* Traffic generation                                                  *)
(* ------------------------------------------------------------------ *)

let test_burst_generation () =
  let ring = Fixtures.paper_ring () in
  let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length:4 ~packets_per_flow:3 in
  check int_c "4 flows x 3" 12 (List.length packets);
  check int_c "flits" 48 (Traffic_gen.total_flits packets);
  check bool_c "all at cycle 0" true
    (List.for_all (fun (p : Packet.t) -> p.Packet.inject_at = 0) packets)

let test_periodic_generation () =
  let ring = Fixtures.paper_ring () in
  let packets =
    Traffic_gen.periodic ring.Fixtures.net ~packet_length:2 ~packets_per_flow:2
      ~interval:10
  in
  check int_c "8 packets" 8 (List.length packets);
  let flow0 =
    List.filter (fun (p : Packet.t) -> Ids.Flow.to_int p.Packet.flow = 0) packets
  in
  check
    Alcotest.(list int)
    "flow 0 staggered" [ 0; 10 ]
    (List.sort compare (List.map (fun (p : Packet.t) -> p.Packet.inject_at) flow0))

let test_periodic_bad_interval () =
  let ring = Fixtures.paper_ring () in
  Alcotest.check_raises "interval" (Invalid_argument "Traffic_gen.periodic: interval < 1")
    (fun () ->
      ignore
        (Traffic_gen.periodic ring.Fixtures.net ~packet_length:1 ~packets_per_flow:1
           ~interval:0))

let test_generation_skips_local_flows () =
  (* A flow between cores on the same switch has an empty route and
     must not produce packets. *)
  let topo = Topology.create ~n_switches:2 in
  let l = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let traffic = Traffic.create ~n_cores:3 in
  let f_local = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:1. in
  let f_net = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 2) ~bandwidth:1. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        if Ids.Core.to_int c = 2 then sw 1 else sw 0)
  in
  Network.set_route net f_local [];
  Network.set_route net f_net [ Channel.make l 0 ];
  let packets = Traffic_gen.burst net ~packet_length:2 ~packets_per_flow:1 in
  check int_c "only the network flow" 1 (List.length packets);
  check bool_c "right flow" true
    (match packets with
    | [ p ] -> Ids.Flow.equal p.Packet.flow f_net
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Deadlock detection                                                  *)
(* ------------------------------------------------------------------ *)

let test_waits_for_cycle () =
  let edges =
    [
      { Deadlock_detect.waiter = 10; holder = 20 };
      { Deadlock_detect.waiter = 20; holder = 30 };
      { Deadlock_detect.waiter = 30; holder = 10 };
    ]
  in
  check bool_c "deadlocked" true (Deadlock_detect.is_deadlocked edges);
  match Deadlock_detect.find_cycle edges with
  | Some ids ->
      check
        Alcotest.(list int)
        "cycle members" [ 10; 20; 30 ]
        (List.sort compare ids)
  | None -> Alcotest.fail "cycle expected"

let test_waits_for_chain_no_cycle () =
  let edges =
    [
      { Deadlock_detect.waiter = 1; holder = 2 };
      { Deadlock_detect.waiter = 2; holder = 3 };
    ]
  in
  check bool_c "chain is not deadlock" false (Deadlock_detect.is_deadlocked edges);
  check bool_c "empty relation fine" false (Deadlock_detect.is_deadlocked [])

(* ------------------------------------------------------------------ *)
(* Engine: simple deliveries                                           *)
(* ------------------------------------------------------------------ *)

let one_link_net () =
  let topo = Topology.create ~n_switches:2 in
  let l = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  let traffic = Traffic.create ~n_cores:2 in
  let f = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:1. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  Network.set_route net f [ Channel.make l 0 ];
  (net, f, l)

let test_engine_single_packet () =
  let net, f, _ = one_link_net () in
  let p = Packet.make ~id:0 ~flow:f ~route:(Network.route net f) ~length:4 ~inject_at:0 in
  match Engine.run net [ p ] with
  | Engine.Completed s ->
      check int_c "delivered" 1 s.Stats.delivered;
      (* 4 flits, 1/cycle injection + 1 cycle in the buffer each:
         latency is small and positive. *)
      check bool_c "sane latency" true (Stats.max_latency s >= 4);
      check int_c "flit moves: 4 in + 4 out" 8 s.Stats.flits_moved
  | Engine.Deadlocked _ | Engine.Timed_out _ -> Alcotest.fail "expected completion"

let test_engine_respects_inject_at () =
  let net, f, _ = one_link_net () in
  let p = Packet.make ~id:0 ~flow:f ~route:(Network.route net f) ~length:1 ~inject_at:50 in
  match Engine.run net [ p ] with
  | Engine.Completed s ->
      check bool_c "waits for injection time" true (s.Stats.cycles >= 50)
  | Engine.Deadlocked _ | Engine.Timed_out _ -> Alcotest.fail "expected completion"

let test_engine_wormhole_blocking () =
  (* Two packets on the same single-channel route: strictly serialized
     because the channel is owned until the tail passes. *)
  let net, f, _ = one_link_net () in
  let route = Network.route net f in
  let p1 = Packet.make ~id:0 ~flow:f ~route ~length:6 ~inject_at:0 in
  let p2 = Packet.make ~id:1 ~flow:f ~route ~length:6 ~inject_at:0 in
  match Engine.run net [ p1; p2 ] with
  | Engine.Completed s ->
      check int_c "both delivered" 2 s.Stats.delivered;
      check bool_c "second waited" true (Stats.max_latency s > 6)
  | Engine.Deadlocked _ | Engine.Timed_out _ -> Alcotest.fail "expected completion"

let test_engine_unknown_channel_rejected () =
  let net, f, _ = one_link_net () in
  let bogus = Channel.make (Fixtures.lk 0) 3 in
  let p = Packet.make ~id:0 ~flow:f ~route:[ bogus ] ~length:1 ~inject_at:0 in
  Alcotest.check_raises "unknown channel"
    (Invalid_argument "Engine.run: packet uses unknown channel L0'3") (fun () ->
      ignore (Engine.run net [ p ]))

let test_engine_empty_workload () =
  let net, _, _ = one_link_net () in
  match Engine.run net [] with
  | Engine.Completed s ->
      check int_c "zero cycles" 0 s.Stats.cycles;
      check int_c "nothing" 0 s.Stats.delivered
  | Engine.Deadlocked _ | Engine.Timed_out _ -> Alcotest.fail "vacuous completion"

(* ------------------------------------------------------------------ *)
(* Engine: deadlock behaviour (the heart of the reproduction)          *)
(* ------------------------------------------------------------------ *)

let test_ring_deadlocks_under_burst () =
  let ring = Fixtures.paper_ring () in
  let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length:8 ~packets_per_flow:2 in
  match Engine.run ring.Fixtures.net packets with
  | Engine.Deadlocked d ->
      check bool_c "flits stuck" true (d.Engine.in_network_flits > 0);
      check bool_c "certificate found" true (d.Engine.waits_for_cycle <> None);
      check bool_c "blocked packets listed" true (d.Engine.blocked_packets <> [])
  | Engine.Completed _ -> Alcotest.fail "cyclic ring should deadlock under burst"
  | Engine.Timed_out _ -> Alcotest.fail "should stall, not time out"

let test_ring_completes_after_removal () =
  let ring = Fixtures.paper_ring () in
  ignore (Noc_deadlock.Removal.run ring.Fixtures.net);
  let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length:8 ~packets_per_flow:2 in
  match Engine.run ring.Fixtures.net packets with
  | Engine.Completed s -> check int_c "all 8 packets" 8 s.Stats.delivered
  | Engine.Deadlocked _ -> Alcotest.fail "acyclic CDG must not deadlock"
  | Engine.Timed_out _ -> Alcotest.fail "should finish quickly"

let test_ring_completes_after_resource_ordering () =
  let ring = Fixtures.paper_ring () in
  ignore (Noc_deadlock.Resource_ordering.apply ring.Fixtures.net);
  let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length:8 ~packets_per_flow:2 in
  match Engine.run ring.Fixtures.net packets with
  | Engine.Completed s -> check int_c "all delivered" 8 s.Stats.delivered
  | Engine.Deadlocked _ | Engine.Timed_out _ ->
      Alcotest.fail "ordering-fixed design must complete"

let test_xy_mesh_never_deadlocks () =
  let net = Fixtures.xy_mesh_2x2 () in
  let packets = Traffic_gen.burst net ~packet_length:12 ~packets_per_flow:2 in
  match Engine.run net packets with
  | Engine.Completed s ->
      check int_c "all delivered" (List.length packets) s.Stats.delivered
  | Engine.Deadlocked _ -> Alcotest.fail "XY routing cannot deadlock"
  | Engine.Timed_out _ -> Alcotest.fail "small mesh should finish"

let test_short_packets_escape_ring () =
  (* Single-flit packets never hold two channels at once, so even the
     cyclic ring drains: deadlock needs multi-channel occupancy. *)
  let ring = Fixtures.paper_ring () in
  let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length:1 ~packets_per_flow:2 in
  match Engine.run ring.Fixtures.net packets with
  | Engine.Completed s -> check int_c "all delivered" 8 s.Stats.delivered
  | Engine.Deadlocked _ -> Alcotest.fail "single-flit packets cannot deadlock here"
  | Engine.Timed_out _ -> Alcotest.fail "should finish"

let test_channel_utilization () =
  let net, f, l = one_link_net () in
  let p = Packet.make ~id:0 ~flow:f ~route:(Network.route net f) ~length:4 ~inject_at:0 in
  match Engine.run net [ p ] with
  | Engine.Completed s ->
      let c = Channel.make l 0 in
      (match Stats.busiest_channel s with
      | Some (busiest, n) ->
          check bool_c "the single channel is busiest" true (Channel.equal busiest c);
          check int_c "4 arrivals" 4 n
      | None -> Alcotest.fail "expected channel stats");
      check bool_c "utilization in (0, 1]" true
        (Stats.utilization s c > 0. && Stats.utilization s c <= 1.);
      check (Alcotest.float 1e-9) "unknown channel idle" 0.
        (Stats.utilization s (Channel.make l 7))
  | Engine.Deadlocked _ | Engine.Timed_out _ -> Alcotest.fail "expected completion"

let test_rotate_priority_still_correct () =
  (* Round-robin arbitration changes the schedule but not safety or
     delivery. *)
  let config = { Engine.default_config with Engine.rotate_priority = true } in
  let net = Fixtures.xy_mesh_2x2 () in
  let packets = Traffic_gen.burst net ~packet_length:8 ~packets_per_flow:2 in
  (match Engine.run ~config net packets with
  | Engine.Completed s -> check int_c "all delivered" (List.length packets) s.Stats.delivered
  | Engine.Deadlocked _ | Engine.Timed_out _ -> Alcotest.fail "mesh must complete");
  (* And the cyclic ring still deadlocks — fairness does not remove
     structural deadlock. *)
  let ring = Fixtures.paper_ring () in
  let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length:8 ~packets_per_flow:2 in
  match Engine.run ~config ring.Fixtures.net packets with
  | Engine.Deadlocked _ -> ()
  | Engine.Completed _ | Engine.Timed_out _ ->
      Alcotest.fail "rotation cannot fix a structural deadlock"

let test_router_latency_slows_delivery () =
  let run latency =
    let net, f, _ = one_link_net () in
    let p =
      Packet.make ~id:0 ~flow:f ~route:(Network.route net f) ~length:4 ~inject_at:0
    in
    let config = { Engine.default_config with Engine.router_latency = latency } in
    match Engine.run ~config net [ p ] with
    | Engine.Completed s -> s.Stats.cycles
    | Engine.Deadlocked _ | Engine.Timed_out _ -> -1
  in
  let fast = run 1 and slow = run 4 in
  check bool_c "both complete" true (fast > 0 && slow > 0);
  check bool_c "deeper pipeline is slower" true (slow > fast)

let test_router_latency_no_false_deadlock () =
  (* A latency deeper than the stall threshold must not be mistaken for
     a deadlock (the watchdog auto-scales). *)
  let net, f, _ = one_link_net () in
  let p =
    Packet.make ~id:0 ~flow:f ~route:(Network.route net f) ~length:2 ~inject_at:0
  in
  let config =
    { Engine.default_config with Engine.router_latency = 100; stall_threshold = 8 }
  in
  match Engine.run ~config net [ p ] with
  | Engine.Completed _ -> ()
  | Engine.Deadlocked _ -> Alcotest.fail "pipeline delay misread as deadlock"
  | Engine.Timed_out _ -> Alcotest.fail "should complete"

let test_engine_timeout_path () =
  (* A workload that cannot finish within max_cycles must report
     Timed_out with partial statistics, not hang or misreport. *)
  let net, f, _ = one_link_net () in
  let packets =
    List.init 50 (fun i ->
        Packet.make ~id:i ~flow:f ~route:(Network.route net f) ~length:8
          ~inject_at:0)
  in
  let config = { Engine.default_config with Engine.max_cycles = 20 } in
  match Engine.run ~config net packets with
  | Engine.Timed_out s ->
      check int_c "clock stopped at the cap" 20 s.Stats.cycles;
      check bool_c "partial delivery counted" true (s.Stats.delivered < 50)
  | Engine.Completed _ -> Alcotest.fail "cannot finish 400 flits in 20 cycles"
  | Engine.Deadlocked _ -> Alcotest.fail "a chain cannot deadlock"

let test_outcome_printers () =
  (* pp smoke tests: every outcome constructor renders. *)
  let net, f, _ = one_link_net () in
  let p = Packet.make ~id:0 ~flow:f ~route:(Network.route net f) ~length:2 ~inject_at:0 in
  let done_ = Engine.run net [ p ] in
  check bool_c "completed renders" true
    (String.length (Format.asprintf "%a" Engine.pp_outcome done_) > 0);
  let ring = Fixtures.paper_ring () in
  let stuck =
    Engine.run ring.Fixtures.net
      (Traffic_gen.burst ring.Fixtures.net ~packet_length:8 ~packets_per_flow:1)
  in
  check bool_c "deadlock renders" true
    (String.length (Format.asprintf "%a" Engine.pp_outcome stuck) > 0);
  check bool_c "stats render" true
    (match done_ with
    | Engine.Completed s -> String.length (Format.asprintf "%a" Stats.pp s) > 0
    | Engine.Deadlocked _ | Engine.Timed_out _ -> false)

let test_deterministic_outcomes () =
  let run_once () =
    let ring = Fixtures.paper_ring () in
    let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length:8 ~packets_per_flow:2 in
    match Engine.run ring.Fixtures.net packets with
    | Engine.Deadlocked d -> (d.Engine.cycle, d.Engine.in_network_flits)
    | Engine.Completed _ | Engine.Timed_out _ -> (-1, -1)
  in
  check (Alcotest.pair int_c int_c) "bit-identical reruns" (run_once ()) (run_once ())

(* ------------------------------------------------------------------ *)
(* Observability: Engine.run under a span collector                    *)
(* ------------------------------------------------------------------ *)

let counter_value name =
  List.fold_left
    (fun acc m ->
      match m with
      | Noc_obs.Metrics.Counter { name = n; value; _ } when n = name ->
          acc + value
      | _ -> acc)
    0 (Noc_obs.Metrics.snapshot ())

let test_engine_emits_spans_and_counters () =
  let collector = Noc_obs.Trace.create () in
  Noc_obs.Metrics.reset ();
  Noc_obs.Trace.install collector;
  let outcome =
    Fun.protect ~finally:Noc_obs.Trace.uninstall (fun () ->
        let net, f, _ = one_link_net () in
        let p =
          Packet.make ~id:0 ~flow:f ~route:(Network.route net f) ~length:4
            ~inject_at:0
        in
        Engine.run net [ p ])
  in
  (match outcome with
  | Engine.Completed _ -> ()
  | Engine.Deadlocked _ | Engine.Timed_out _ -> Alcotest.fail "expected completion");
  let spans = Noc_obs.Trace.completed_spans collector in
  let named n =
    List.filter (fun (s : Noc_obs.Trace.completed) -> s.Noc_obs.Trace.name = n) spans
  in
  check bool_c "one sim.run span" true (List.length (named "sim.run") = 1);
  check bool_c "cycle batch spans" true (named "sim.cycles" <> []);
  check int_c "injected counter" 4 (counter_value "noc_sim_flits_injected_total");
  check int_c "delivered counter" 4 (counter_value "noc_sim_flits_delivered_total");
  check int_c "no deadlock counted" 0 (counter_value "noc_sim_deadlocks_total")

let test_engine_counts_deadlocks () =
  let collector = Noc_obs.Trace.create () in
  Noc_obs.Metrics.reset ();
  Noc_obs.Trace.install collector;
  let outcome =
    Fun.protect ~finally:Noc_obs.Trace.uninstall (fun () ->
        let ring = Fixtures.paper_ring () in
        Engine.run ring.Fixtures.net
          (Traffic_gen.burst ring.Fixtures.net ~packet_length:8
             ~packets_per_flow:2))
  in
  (match outcome with
  | Engine.Deadlocked _ -> ()
  | Engine.Completed _ | Engine.Timed_out _ -> Alcotest.fail "expected deadlock");
  check int_c "deadlock counted" 1 (counter_value "noc_sim_deadlocks_total")

(* ------------------------------------------------------------------ *)
(* Adaptive engine                                                     *)
(* ------------------------------------------------------------------ *)

let mesh_with_two_vcs columns rows =
  let n = columns * rows in
  let topo = Noc_synth.Regular.mesh ~columns ~rows in
  List.iter
    (fun (l : Topology.link) -> ignore (Topology.add_vc topo l.Topology.id))
    (Topology.links topo);
  let traffic = Traffic.create ~n_cores:n in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        ignore (Traffic.add_flow traffic ~src:(core s) ~dst:(core d) ~bandwidth:5.)
    done
  done;
  Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))

let test_adaptive_workload_generation () =
  let net, _, _ = one_link_net () in
  let w = Adaptive_engine.workload_of_flows net ~packet_length:3 ~packets_per_flow:2 in
  check int_c "two packets" 2 (List.length w);
  check bool_c "right endpoints" true
    (List.for_all
       (fun (x : Adaptive_engine.workload) ->
         Ids.Switch.to_int x.Adaptive_engine.src = 0
         && Ids.Switch.to_int x.Adaptive_engine.dst = 1
         && x.Adaptive_engine.length = 3)
       w)

let test_adaptive_mesh_escape_completes () =
  let net = mesh_with_two_vcs 3 3 in
  let rf = Noc_synth.Mesh_routing.adaptive_with_xy_escape ~columns:3 ~rows:3 net in
  let w = Adaptive_engine.workload_of_flows net ~packet_length:8 ~packets_per_flow:2 in
  match Adaptive_engine.run net rf w with
  | Adaptive_engine.Completed s ->
      check int_c "all delivered" (List.length w) s.Stats.delivered
  | Adaptive_engine.Stalled _ -> Alcotest.fail "escape-protected function stalled"
  | Adaptive_engine.Timed_out _ -> Alcotest.fail "timed out"

let test_adaptive_xy_static_completes () =
  let net = mesh_with_two_vcs 3 3 in
  let rf = Noc_synth.Mesh_routing.xy_static ~columns:3 ~rows:3 net in
  let w = Adaptive_engine.workload_of_flows net ~packet_length:6 ~packets_per_flow:1 in
  match Adaptive_engine.run net rf w with
  | Adaptive_engine.Completed s ->
      check int_c "all delivered" (List.length w) s.Stats.delivered
  | Adaptive_engine.Stalled _ | Adaptive_engine.Timed_out _ ->
      Alcotest.fail "XY routing must complete"

let test_adaptive_unprotected_ring_stalls () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let rf = Noc_model.Routing_function.minimal_adaptive net in
  let w = Adaptive_engine.workload_of_flows net ~packet_length:8 ~packets_per_flow:2 in
  match Adaptive_engine.run net rf w with
  | Adaptive_engine.Stalled d ->
      check bool_c "flits stuck" true (d.Adaptive_engine.in_network_flits > 0);
      check bool_c "blocked packets reported" true
        (d.Adaptive_engine.blocked_packets <> [])
  | Adaptive_engine.Completed _ -> Alcotest.fail "unprotected ring should stall"
  | Adaptive_engine.Timed_out _ -> Alcotest.fail "should stall, not time out"

let test_adaptive_deterministic () =
  let run_once () =
    let net = mesh_with_two_vcs 3 3 in
    let rf = Noc_synth.Mesh_routing.adaptive_with_xy_escape ~columns:3 ~rows:3 net in
    let w = Adaptive_engine.workload_of_flows net ~packet_length:8 ~packets_per_flow:2 in
    match Adaptive_engine.run net rf w with
    | Adaptive_engine.Completed s -> (s.Stats.cycles, s.Stats.flits_moved)
    | Adaptive_engine.Stalled _ | Adaptive_engine.Timed_out _ -> (-1, -1)
  in
  check (Alcotest.pair int_c int_c) "bit identical" (run_once ()) (run_once ())

let test_adaptive_trace_invariants () =
  (* The adaptive engine's dynamic ownership must satisfy the same
     wormhole invariants as the fixed-route engine. *)
  let net = mesh_with_two_vcs 3 3 in
  let rf = Noc_synth.Mesh_routing.adaptive_with_xy_escape ~columns:3 ~rows:3 net in
  let w = Adaptive_engine.workload_of_flows net ~packet_length:6 ~packets_per_flow:2 in
  let emit, dump = Trace.recorder () in
  (match Adaptive_engine.run ~on_event:emit net rf w with
  | Adaptive_engine.Completed _ -> ()
  | Adaptive_engine.Stalled _ | Adaptive_engine.Timed_out _ ->
      Alcotest.fail "expected completion");
  let events = dump () in
  check bool_c "events recorded" true (events <> []);
  (match Trace.check_exclusive_ownership events with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("adaptive ownership: " ^ e));
  match Trace.check_balanced events with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("adaptive balance: " ^ e)

(* ------------------------------------------------------------------ *)
(* Trace invariants                                                    *)
(* ------------------------------------------------------------------ *)

let run_traced net packets =
  let emit, dump = Trace.recorder () in
  let outcome = Engine.run ~on_event:emit net packets in
  (outcome, dump ())

let route_table packets =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (p : Packet.t) ->
      Hashtbl.replace tbl p.Packet.id (Array.to_list p.Packet.route))
    packets;
  fun id -> Option.value ~default:[] (Hashtbl.find_opt tbl id)

let test_trace_mesh_invariants () =
  let net = Fixtures.xy_mesh_2x2 () in
  let packets = Traffic_gen.burst net ~packet_length:6 ~packets_per_flow:2 in
  let outcome, events = run_traced net packets in
  (match outcome with
  | Engine.Completed _ -> ()
  | Engine.Deadlocked _ | Engine.Timed_out _ -> Alcotest.fail "expected completion");
  check bool_c "events recorded" true (events <> []);
  (match Trace.check_exclusive_ownership events with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("ownership: " ^ e));
  (match Trace.check_balanced events with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("balance: " ^ e));
  match Trace.check_route_order (route_table packets) events with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("route order: " ^ e)

let test_trace_deadlock_unbalanced () =
  (* A deadlocked run must leave unreleased acquisitions: the checker
     is supposed to notice. *)
  let ring = Fixtures.paper_ring () in
  let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length:8 ~packets_per_flow:1 in
  let outcome, events = run_traced ring.Fixtures.net packets in
  (match outcome with
  | Engine.Deadlocked _ -> ()
  | Engine.Completed _ | Engine.Timed_out _ -> Alcotest.fail "expected deadlock");
  check bool_c "ownership still exclusive" true
    (Trace.check_exclusive_ownership events = Ok ());
  check bool_c "balance violated (stuck packets)" true
    (Result.is_error (Trace.check_balanced events))

let test_trace_checkers_reject_corrupt () =
  let c = Fixtures.ch 0 in
  let double_acquire =
    [
      Trace.Acquire { cycle = 0; packet = 1; channel = c };
      Trace.Acquire { cycle = 1; packet = 2; channel = c };
    ]
  in
  check bool_c "double acquire caught" true
    (Result.is_error (Trace.check_exclusive_ownership double_acquire));
  let foreign_release =
    [
      Trace.Acquire { cycle = 0; packet = 1; channel = c };
      Trace.Release { cycle = 1; packet = 2; channel = c };
    ]
  in
  check bool_c "foreign release caught" true
    (Result.is_error (Trace.check_exclusive_ownership foreign_release));
  let unowned_release = [ Trace.Release { cycle = 0; packet = 1; channel = c } ] in
  check bool_c "unowned release caught" true
    (Result.is_error (Trace.check_exclusive_ownership unowned_release))

let test_trace_route_order_checker () =
  let c0 = Fixtures.ch 0 and c1 = Fixtures.ch 1 in
  let routes = function 1 -> [ c0; c1 ] | _ -> [] in
  let ok =
    [
      Trace.Acquire { cycle = 0; packet = 1; channel = c0 };
      Trace.Acquire { cycle = 1; packet = 1; channel = c1 };
    ]
  in
  check bool_c "in order ok" true (Trace.check_route_order routes ok = Ok ());
  let skipped = [ Trace.Acquire { cycle = 0; packet = 1; channel = c1 } ] in
  check bool_c "skip caught" true
    (Result.is_error (Trace.check_route_order routes skipped))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* After removal, *any* burst workload on the paper ring completes:
   acyclic CDG -> no deadlock, for every packet length / count. *)
let prop_removal_implies_completion =
  QCheck.Test.make ~name:"post-removal ring completes for any workload" ~count:40
    QCheck.(pair (int_range 1 12) (int_range 1 4))
    (fun (packet_length, packets_per_flow) ->
      let ring = Fixtures.paper_ring () in
      ignore (Noc_deadlock.Removal.run ring.Fixtures.net);
      let packets = Traffic_gen.burst ring.Fixtures.net ~packet_length ~packets_per_flow in
      match Engine.run ring.Fixtures.net packets with
      | Engine.Completed s -> s.Stats.delivered = List.length packets
      | Engine.Deadlocked _ | Engine.Timed_out _ -> false)

let prop_trace_invariants_hold =
  QCheck.Test.make ~name:"wormhole invariants hold on every completed run"
    ~count:40
    QCheck.(pair (int_range 1 10) (int_range 1 3))
    (fun (packet_length, packets_per_flow) ->
      let net = Fixtures.xy_mesh_2x2 () in
      let packets = Traffic_gen.burst net ~packet_length ~packets_per_flow in
      let outcome, events = run_traced net packets in
      match outcome with
      | Engine.Completed _ ->
          Trace.check_exclusive_ownership events = Ok ()
          && Trace.check_balanced events = Ok ()
          && Trace.check_route_order (route_table packets) events = Ok ()
      | Engine.Deadlocked _ | Engine.Timed_out _ -> false)

let prop_flit_conservation =
  QCheck.Test.make ~name:"completed runs move every flit exactly route+1 times"
    ~count:40
    QCheck.(pair (int_range 1 8) (int_range 1 3))
    (fun (packet_length, packets_per_flow) ->
      let net = Fixtures.xy_mesh_2x2 () in
      let packets = Traffic_gen.burst net ~packet_length ~packets_per_flow in
      let expected =
        List.fold_left
          (fun acc (p : Packet.t) ->
            acc + (p.Packet.length * (Array.length p.Packet.route + 1)))
          0 packets
      in
      match Engine.run net packets with
      | Engine.Completed s -> s.Stats.flits_moved = expected
      | Engine.Deadlocked _ | Engine.Timed_out _ -> false)

(* Across the whole benchmark registry: once [Removal.run] has made the
   CDG acyclic, no seeded workload — AXI-style bursty convoys or
   bandwidth-proportional injection — can deadlock the design. *)
let registry_names =
  List.map (fun s -> s.Noc_benchmarks.Spec.name) Noc_benchmarks.Registry.all

let synth_benchmark name =
  let spec = Option.get (Noc_benchmarks.Registry.find name) in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let n_switches = min 12 spec.Noc_benchmarks.Spec.n_cores in
  Noc_synth.Custom.synthesize_exn traffic ~n_switches

let prop_removal_registry_never_deadlocks =
  QCheck.Test.make
    ~name:"post-removal registry designs never deadlock (any workload seed)"
    ~count:30
    QCheck.(triple (oneofl registry_names) (int_range 1 1000) bool)
    (fun (name, seed, bursty) ->
      let net = synth_benchmark name in
      ignore (Noc_deadlock.Removal.run net);
      let workload =
        if bursty then
          Noc_benchmarks.Workloads.Bursty
            {
              request_length = 1;
              response_length = 8;
              duration = 256;
              exchanges = 2;
              idle = 32;
              seed;
            }
        else
          Noc_benchmarks.Workloads.Bandwidth_proportional
            { packet_length = 4; duration = 256; capacity_mbps = 1000.; seed }
      in
      let packets = Noc_benchmarks.Workloads.generate net workload in
      match Engine.run net packets with
      | Engine.Deadlocked _ -> false
      | Engine.Completed _ | Engine.Timed_out _ -> true)

(* Every deadlock the engine reports on the cyclic ring must carry a
   waits-for cycle certificate that the detector itself confirms: the
   consecutive (waiter, holder) pairs of the certificate form a cycle
   over exactly its members, and each member is a blocked packet. *)
let prop_deadlock_certificates_check_out =
  QCheck.Test.make ~name:"deadlock certificates are confirmed by find_cycle"
    ~count:30
    QCheck.(pair (int_range 2 12) (int_range 1 4))
    (fun (packet_length, packets_per_flow) ->
      let ring = Fixtures.paper_ring () in
      let packets =
        Traffic_gen.burst ring.Fixtures.net ~packet_length ~packets_per_flow
      in
      match Engine.run ring.Fixtures.net packets with
      | Engine.Completed _ | Engine.Timed_out _ -> true (* light loads drain *)
      | Engine.Deadlocked d -> (
          match d.Engine.waits_for_cycle with
          | None -> false
          | Some [] -> false
          | Some (first :: _ as members) ->
              let rec pairs = function
                | a :: (b :: _ as rest) ->
                    { Deadlock_detect.waiter = a; holder = b } :: pairs rest
                | [ last ] ->
                    [ { Deadlock_detect.waiter = last; holder = first } ]
                | [] -> []
              in
              (match Deadlock_detect.find_cycle (pairs members) with
              | Some cycle ->
                  List.sort compare cycle = List.sort compare members
              | None -> false)
              && List.for_all
                   (fun m -> List.mem m d.Engine.blocked_packets)
                   members))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_removal_implies_completion; prop_flit_conservation;
      prop_trace_invariants_hold; prop_removal_registry_never_deadlocks;
      prop_deadlock_certificates_check_out;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "noc_sim"
    [
      ( "packet",
        [
          tc "constructor checks" test_packet_make_checks;
          tc "flit enumeration" test_packet_flits;
          tc "single-flit head=tail" test_single_flit_packet_is_head_and_tail;
        ] );
      ( "traffic_gen",
        [
          tc "burst" test_burst_generation;
          tc "periodic" test_periodic_generation;
          tc "bad interval" test_periodic_bad_interval;
          tc "skips local flows" test_generation_skips_local_flows;
        ] );
      ( "deadlock_detect",
        [
          tc "cycle found" test_waits_for_cycle;
          tc "chain is safe" test_waits_for_chain_no_cycle;
        ] );
      ( "engine_basic",
        [
          tc "single packet" test_engine_single_packet;
          tc "inject_at respected" test_engine_respects_inject_at;
          tc "wormhole serialization" test_engine_wormhole_blocking;
          tc "unknown channel rejected" test_engine_unknown_channel_rejected;
          tc "empty workload" test_engine_empty_workload;
        ] );
      ( "engine_deadlock",
        [
          tc "ring deadlocks under burst" test_ring_deadlocks_under_burst;
          tc "ring completes after removal" test_ring_completes_after_removal;
          tc "ring completes after ordering" test_ring_completes_after_resource_ordering;
          tc "xy mesh never deadlocks" test_xy_mesh_never_deadlocks;
          tc "single-flit packets escape" test_short_packets_escape_ring;
          tc "channel utilization" test_channel_utilization;
          tc "rotating priority" test_rotate_priority_still_correct;
          tc "router latency slows delivery" test_router_latency_slows_delivery;
          tc "deep pipeline is not a deadlock" test_router_latency_no_false_deadlock;
          tc "timeout path" test_engine_timeout_path;
          tc "outcome printers" test_outcome_printers;
          tc "deterministic" test_deterministic_outcomes;
        ] );
      ( "adaptive",
        [
          tc "workload generation" test_adaptive_workload_generation;
          tc "mesh with escape completes" test_adaptive_mesh_escape_completes;
          tc "xy static completes" test_adaptive_xy_static_completes;
          tc "unprotected ring stalls" test_adaptive_unprotected_ring_stalls;
          tc "deterministic" test_adaptive_deterministic;
          tc "trace invariants" test_adaptive_trace_invariants;
        ] );
      ( "observability",
        [
          tc "spans and flit counters" test_engine_emits_spans_and_counters;
          tc "deadlocks counted" test_engine_counts_deadlocks;
        ] );
      ( "trace",
        [
          tc "mesh invariants" test_trace_mesh_invariants;
          tc "deadlock leaves unbalanced trace" test_trace_deadlock_unbalanced;
          tc "checkers reject corrupt traces" test_trace_checkers_reject_corrupt;
          tc "route order checker" test_trace_route_order_checker;
        ] );
      ("properties", qcheck_cases);
    ]
