open Noc_service

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json: the hand-written printer/parser round-trips                   *)
(* ------------------------------------------------------------------ *)

(* Finite floats only: canonical JSON has no encoding for nan/inf. *)
let finite_float_gen =
  QCheck.Gen.(
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        map
          (fun (a, b) -> float_of_int a /. float_of_int (1 + abs b))
          (pair (int_range (-10_000) 10_000) (int_range 0 997));
        oneofl [ 0.; -0.; 1e-12; 1.5e300; -2.25 ];
      ])

let key_gen = QCheck.Gen.(string_size ~gen:printable (int_bound 12))

let json_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Num f) finite_float_gen;
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 20));
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map (fun xs -> Json.Arr xs) (list_size (int_bound 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4) (pair key_gen (self (depth - 1)))) );
          ])
    3

let arbitrary_json =
  QCheck.make ~print:(fun v -> Json.to_string v) json_gen

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json.of_string inverts to_string" ~count:500
    arbitrary_json (fun v -> Json.of_string (Json.to_string v) = Ok v)

let prop_json_pretty_roundtrip =
  QCheck.Test.make ~name:"Json.of_string inverts to_string_pretty" ~count:500
    arbitrary_json (fun v -> Json.of_string (Json.to_string_pretty v) = Ok v)

(* ------------------------------------------------------------------ *)
(* Job: canonical serialization round-trips, hash stable               *)
(* ------------------------------------------------------------------ *)

let job_gen =
  let open QCheck.Gen in
  let design_gen =
    oneof
      [
        (let* name =
           oneof
             [
               oneofl [ "D26_media"; "D36_8"; "D35_bott"; "not-a-benchmark" ];
               string_size ~gen:printable (int_range 1 16);
             ]
         in
         let* n_switches = int_range 1 64 in
         let* max_degree = int_range 1 8 in
         return (Job.Benchmark { name; n_switches; max_degree }));
        map
          (fun text -> Job.Inline text)
          (string_size ~gen:printable (int_bound 80));
      ]
  in
  let workload_gen =
    let open Noc_benchmarks.Workloads in
    oneof
      [
        (let* packet_length = int_range 1 12 in
         let* packets_per_flow = int_range 1 4 in
         return (Burst { packet_length; packets_per_flow }));
        (let* packet_length = int_range 1 12 in
         let* duration = int_range 1 1024 in
         let* rate = map (fun n -> float_of_int n /. 100.) (int_range 1 120) in
         let* seed = int_range 0 1000 in
         return (Uniform_random { packet_length; duration; rate; seed }));
        (let* packet_length = int_range 1 12 in
         let* duration = int_range 1 1024 in
         let* rate = map (fun n -> float_of_int n /. 100.) (int_range 1 120) in
         let* factor = map (fun n -> float_of_int n /. 10.) (int_range 10 80) in
         let* seed = int_range 0 1000 in
         return (Hotspot { packet_length; duration; rate; factor; seed }));
        (let* packet_length = int_range 1 12 in
         let* packets_per_flow = int_range 1 4 in
         let* interval = int_range 1 64 in
         return (Transpose { packet_length; packets_per_flow; interval }));
        (let* request_length = int_range 1 4 in
         let* response_length = int_range 1 16 in
         let* duration = int_range 1 1024 in
         let* exchanges = int_range 1 4 in
         let* idle = int_range 1 128 in
         let* seed = int_range 0 1000 in
         return
           (Bursty
              { request_length; response_length; duration; exchanges; idle; seed }));
        (let* packet_length = int_range 1 12 in
         let* duration = int_range 1 1024 in
         let* capacity_mbps = map float_of_int (int_range 100 10_000) in
         let* seed = int_range 0 1000 in
         return
           (Bandwidth_proportional { packet_length; duration; capacity_mbps; seed }));
      ]
  in
  let method_gen =
    oneof
      [
        (let* heuristic =
           oneofl
             [
               Noc_deadlock.Removal.Smallest_cycle_first;
               Noc_deadlock.Removal.Any_cycle_first;
             ]
         in
         let* directions =
           oneofl
             [
               [ Noc_deadlock.Cost_table.Forward; Noc_deadlock.Cost_table.Backward ];
               [ Noc_deadlock.Cost_table.Forward ];
               [ Noc_deadlock.Cost_table.Backward ];
             ]
         in
         let* resource =
           oneofl
             [
               Noc_deadlock.Break_cycle.Virtual_channel;
               Noc_deadlock.Break_cycle.Physical_link;
             ]
         in
         return (Job.Removal { heuristic; directions; resource }));
        map
          (fun strategy -> Job.Resource_ordering { strategy })
          (oneofl
             [
               Noc_deadlock.Resource_ordering.Greedy_ordered;
               Noc_deadlock.Resource_ordering.Hop_index;
             ]);
        return Job.Sweep;
        (let* prepare =
           oneofl [ Job.As_is; Job.Removal_first; Job.Ordering_first ]
         in
         let* workload = workload_gen in
         let* buffer_depth = int_range 1 8 in
         let* max_cycles = int_range 100 10_000 in
         return (Job.Simulate { prepare; workload; buffer_depth; max_cycles }));
      ]
  in
  let* design = design_gen in
  let* method_ = method_gen in
  return { Job.design; method_ }

let arbitrary_job = QCheck.make ~print:Job.canonical job_gen

let prop_job_roundtrip =
  QCheck.Test.make ~name:"Job.of_json inverts to_json" ~count:500 arbitrary_job
    (fun job -> Job.of_json (Job.to_json job) = Ok job)

let prop_job_roundtrip_via_text =
  QCheck.Test.make ~name:"Job round-trips through canonical text" ~count:500
    arbitrary_job (fun job ->
      match Json.of_string (Job.canonical job) with
      | Error _ -> false
      | Ok v -> Job.of_json v = Ok job)

let prop_job_hash_stable =
  QCheck.Test.make ~name:"Job.hash is stable across encode/decode" ~count:500
    arbitrary_job (fun job ->
      match Job.of_json (Job.to_json job) with
      | Error _ -> false
      | Ok decoded -> Job.hash decoded = Job.hash job)

let prop_job_file_roundtrip =
  QCheck.Test.make ~name:"Job file list round-trips (pretty form)" ~count:100
    QCheck.(make QCheck.Gen.(list_size (int_bound 5) job_gen))
    (fun jobs ->
      Job.list_of_json (Json.to_string_pretty (Job.list_to_json jobs)) = Ok jobs)

let test_job_defaults_fill_in () =
  (* Omitted optional fields decode to the documented defaults and the
     result re-encodes canonically — so a terse hand-written job file
     and its fully-explicit form have the same content hash. *)
  let terse =
    {|{"design": {"benchmark": "D26_media", "switches": 14}, "method": "removal"}|}
  in
  let explicit =
    {
      Job.design =
        Job.Benchmark
          { name = "D26_media"; n_switches = 14; max_degree = Job.default_max_degree };
      method_ = Job.removal_defaults;
    }
  in
  match Result.bind (Json.of_string terse) Job.of_json with
  | Error e -> Alcotest.failf "terse job did not parse: %s" e
  | Ok decoded ->
      check bool_c "defaults applied" true (decoded = explicit);
      check string_c "same content hash" (Job.hash explicit) (Job.hash decoded)

let test_job_file_rejects_bad_schema () =
  let bad = {|{"schema": "noc-jobs/999", "jobs": []}|} in
  match Job.list_of_json bad with
  | Ok _ -> Alcotest.fail "accepted an unsupported schema"
  | Error e ->
      let contains ~needle haystack =
        let n = String.length needle and h = String.length haystack in
        let rec scan i =
          i + n <= h && (String.sub haystack i n = needle || scan (i + 1))
        in
        n = 0 || scan 0
      in
      check bool_c "error names the schema" true (contains ~needle:"noc-jobs" e)

let test_simulate_defaults_pinned () =
  (* A terse simulate job decodes to the documented defaults... *)
  let terse =
    {|{"design": {"benchmark": "D36_8", "switches": 14}, "method": "simulate"}|}
  in
  let explicit =
    {
      Job.design =
        Job.Benchmark
          { name = "D36_8"; n_switches = 14; max_degree = Job.default_max_degree };
      method_ = Job.simulate Noc_benchmarks.Workloads.default_uniform;
    }
  in
  (match Result.bind (Json.of_string terse) Job.of_json with
  | Error e -> Alcotest.failf "terse simulate job did not parse: %s" e
  | Ok decoded ->
      check bool_c "defaults applied" true (decoded = explicit);
      check string_c "same content hash" (Job.hash explicit) (Job.hash decoded));
  (* ...and a workload given only by kind decodes to the corresponding
     [Workloads.default_*] spec, pinning the JSON-level defaults to the
     library-level ones. *)
  List.iter
    (fun kind ->
      let text =
        Printf.sprintf
          {|{"design": {"benchmark": "D36_8", "switches": 14},
             "method": "simulate", "options": {"workload": {"kind": %S}}}|}
          kind
      in
      match Result.bind (Json.of_string text) Job.of_json with
      | Ok { Job.method_ = Job.Simulate { workload; _ }; _ } ->
          check bool_c (kind ^ " kind alone gives the default spec") true
            (Some workload = Noc_benchmarks.Workloads.of_kind kind)
      | Ok _ -> Alcotest.fail "decoded to a non-simulate method"
      | Error e -> Alcotest.failf "workload kind %s did not parse: %s" kind e)
    Noc_benchmarks.Workloads.kinds

let run_simulate_job ~prepare workload =
  Runner.execute
    {
      Job.design =
        Job.Benchmark
          { name = "D36_8"; n_switches = 14; max_degree = Job.default_max_degree };
      method_ = Job.simulate ~prepare workload;
    }

let test_simulate_runner_outcomes () =
  let metric outcome name =
    match Outcome.metric outcome name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  (* Unprotected cyclic design: a certified deadlock, reported as data
     (status Done) so campaigns can cache and analyze it. *)
  let stuck =
    run_simulate_job ~prepare:Job.As_is Noc_benchmarks.Workloads.default_burst
  in
  check bool_c "as-is run is Done" true (Outcome.is_done stuck);
  check (Alcotest.float 0.) "cdg cyclic" 1. (metric stuck "cdg_cyclic");
  check (Alcotest.float 0.) "deadlocked" 1. (metric stuck "deadlocked");
  check (Alcotest.float 0.) "certified" 1. (metric stuck "certified");
  check bool_c "cycle members counted" true (metric stuck "waits_for_len" > 0.);
  (* The same design behind the removal pass completes, and the prep
     cost (extra VCs) is reported alongside the sim metrics. *)
  let fixed =
    run_simulate_job ~prepare:Job.Removal_first
      Noc_benchmarks.Workloads.default_burst
  in
  check (Alcotest.float 0.) "acyclic after removal" 0. (metric fixed "cdg_cyclic");
  check (Alcotest.float 0.) "no deadlock" 0. (metric fixed "deadlocked");
  check (Alcotest.float 0.) "all packets delivered"
    (metric fixed "packets")
    (metric fixed "delivered");
  check bool_c "removal cost reported" true (metric fixed "vcs_added" > 0.);
  check bool_c "latency percentiles ordered" true
    (metric fixed "p50_latency" <= metric fixed "p95_latency"
    && metric fixed "p95_latency" <= metric fixed "p99_latency"
    && metric fixed "p99_latency" <= metric fixed "max_latency");
  (* Resource ordering also protects, at a much higher VC cost. *)
  let ordered =
    run_simulate_job ~prepare:Job.Ordering_first
      Noc_benchmarks.Workloads.default_burst
  in
  check (Alcotest.float 0.) "ordering protects" 0. (metric ordered "deadlocked");
  check bool_c "ordering costs more VCs" true
    (metric ordered "vcs_added" > metric fixed "vcs_added")

let test_simulate_lint_codes () =
  let codes job =
    List.map
      (fun (d : Noc_analysis.Diagnostic.t) ->
        d.Noc_analysis.Diagnostic.code.Noc_model.Diag_code.code)
      (Lint.job_diagnostics ~location:Noc_analysis.Diagnostic.Design job)
  in
  let design =
    Job.Benchmark
      { name = "D36_8"; n_switches = 14; max_degree = Job.default_max_degree }
  in
  let sim ?prepare ?buffer_depth ?max_cycles workload =
    { Job.design; method_ = Job.simulate ?prepare ?buffer_depth ?max_cycles workload }
  in
  check Alcotest.(list string) "clean job" []
    (codes (sim Noc_benchmarks.Workloads.default_uniform));
  let bad_workload =
    Noc_benchmarks.Workloads.Uniform_random
      { packet_length = 0; duration = 512; rate = -1.; seed = 1 }
  in
  check bool_c "invalid workload -> NOC-SIM-001" true
    (List.mem "NOC-SIM-001" (codes (sim bad_workload)));
  check bool_c "bad engine config -> NOC-SIM-002" true
    (List.mem "NOC-SIM-002"
       (codes (sim ~buffer_depth:0 Noc_benchmarks.Workloads.default_uniform)));
  let saturated =
    Noc_benchmarks.Workloads.Hotspot
      { packet_length = 4; duration = 512; rate = 0.5; factor = 4.; seed = 1 }
  in
  check bool_c "oversubscribed workload -> NOC-SIM-003" true
    (List.mem "NOC-SIM-003" (codes (sim saturated)));
  (* The saturation warning must not reject the job at the batch gate. *)
  check bool_c "warning does not reject" true
    (Result.is_ok (Lint.vet_job (sim saturated)));
  check bool_c "error rejects" true
    (Result.is_error (Lint.vet_job (sim bad_workload)))

(* ------------------------------------------------------------------ *)
(* Outcome                                                             *)
(* ------------------------------------------------------------------ *)

let test_outcome_hash_ignores_wall_time () =
  let metrics = [ ("vcs_added", 3.); ("power_mw", 35.25) ] in
  let a = Outcome.done_ ~wall_ms:1.0 metrics in
  let b = Outcome.done_ ~wall_ms:999.0 metrics in
  check string_c "wall time excluded" (Outcome.result_hash a) (Outcome.result_hash b);
  let c = Outcome.done_ ~wall_ms:1.0 [ ("vcs_added", 4.); ("power_mw", 35.25) ] in
  check bool_c "metrics included" false
    (Outcome.result_hash a = Outcome.result_hash c)

let test_outcome_roundtrip () =
  List.iter
    (fun outcome ->
      match Outcome.of_json (Outcome.to_json outcome) with
      | Ok decoded -> check bool_c "round-trips" true (decoded = outcome)
      | Error e -> Alcotest.failf "outcome did not round-trip: %s" e)
    [
      Outcome.done_ ~wall_ms:1.5 [ ("a", 1.); ("b", -2.25) ];
      Outcome.failed ~wall_ms:0.5 "boom";
      Outcome.timed_out ~wall_ms:7.;
      Outcome.cancelled;
    ]

(* ------------------------------------------------------------------ *)
(* Pool: order preservation and error propagation                      *)
(* ------------------------------------------------------------------ *)

let test_pool_preserves_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  check bool_c "3 domains = sequential" true
    (Noc_pool.Pool.run ~domains:3 (fun x -> x * x) xs = expected);
  check bool_c "1 domain = sequential" true
    (Noc_pool.Pool.run ~domains:1 (fun x -> x * x) xs = expected)

let test_pool_reraises () =
  Alcotest.check_raises "first failing index wins" (Failure "item 3") (fun () ->
      ignore
        (Noc_pool.Pool.run ~domains:2
           (fun x -> if x >= 3 then failwith (Printf.sprintf "item %d" x) else x)
           (List.init 10 Fun.id)))

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

let test_cache_lru_eviction () =
  let cache = Result_cache.create ~capacity:2 in
  let outcome k = Outcome.done_ [ ("k", float_of_int k) ] in
  check bool_c "no eviction below capacity" false
    (Result_cache.store cache "a" (outcome 1));
  check bool_c "no eviction at capacity" false
    (Result_cache.store cache "b" (outcome 2));
  ignore (Result_cache.find cache "a");
  check bool_c "store beyond capacity evicts" true
    (Result_cache.store cache "c" (outcome 3));
  check bool_c "recently-used survives" true (Result_cache.find cache "a" <> None);
  check bool_c "least-recently-used evicted" true (Result_cache.find cache "b" = None);
  let stats = Result_cache.stats cache in
  check int_c "one eviction" 1 stats.Result_cache.evictions;
  check int_c "two entries" 2 stats.Result_cache.entries

(* ------------------------------------------------------------------ *)
(* Batch engine                                                        *)
(* ------------------------------------------------------------------ *)

let registry_jobs () =
  (* One removal and one ordering job per registry benchmark: full
     registry coverage, at a switch count clipped to the core count. *)
  List.concat_map
    (fun spec ->
      let design =
        Job.Benchmark
          {
            name = spec.Noc_benchmarks.Spec.name;
            n_switches = min 10 spec.Noc_benchmarks.Spec.n_cores;
            max_degree = Job.default_max_degree;
          }
      in
      [
        { Job.design; method_ = Job.removal_defaults };
        {
          Job.design;
          method_ =
            Job.Resource_ordering
              { strategy = Noc_deadlock.Resource_ordering.Hop_index };
        };
      ])
    Noc_benchmarks.Registry.all

let run_batch ?cache ~domains jobs =
  Batch.run { Batch.default_config with Batch.domains; cache } jobs

let deterministic_payload (r : Batch.job_result) =
  ( r.Batch.index,
    Job.hash r.Batch.job,
    r.Batch.outcome.Outcome.status,
    r.Batch.outcome.Outcome.metrics,
    Outcome.result_hash r.Batch.outcome )

let test_batch_differential_4_domains () =
  (* The determinism contract of the whole subsystem: a 4-domain batch
     over the full benchmark registry is bit-identical — same order,
     same statuses, same metric lists, same result hashes — to the
     sequential run.  Wall times are the only field allowed to vary. *)
  let jobs = registry_jobs () in
  let sequential, seq_summary = run_batch ~domains:1 jobs in
  let parallel, par_summary = run_batch ~domains:4 jobs in
  check int_c "all jobs succeeded sequentially"
    (List.length jobs) seq_summary.Batch.succeeded;
  check int_c "all jobs succeeded in parallel"
    (List.length jobs) par_summary.Batch.succeeded;
  check bool_c "bit-identical to sequential execution" true
    (List.map deterministic_payload sequential
    = List.map deterministic_payload parallel)

let test_batch_streams_in_submission_order () =
  let jobs = registry_jobs () in
  let streamed = ref [] in
  let on_result (r : Batch.job_result) = streamed := r.Batch.index :: !streamed in
  let _ = Batch.run ~on_result { Batch.default_config with Batch.domains = 4 } jobs in
  check bool_c "on_result follows submission order" true
    (List.rev !streamed = List.init (List.length jobs) Fun.id)

let test_batch_warm_replay_all_hits () =
  let jobs = registry_jobs () in
  let cache = Result_cache.create ~capacity:64 in
  let cold, _ = run_batch ~cache ~domains:1 jobs in
  Result_cache.reset_counters cache;
  let warm, warm_summary = run_batch ~cache ~domains:1 jobs in
  check int_c "every job a cache hit"
    (List.length jobs) warm_summary.Batch.cache_hits;
  check bool_c "100% hit rate" true
    (Result_cache.hit_rate (Result_cache.stats cache) = 1.0);
  check bool_c "replay results identical" true
    (List.map deterministic_payload cold = List.map deterministic_payload warm)

let test_batch_fail_fast_cancels () =
  let bad =
    {
      Job.design = Job.Benchmark { name = "nope"; n_switches = 3; max_degree = 4 };
      method_ = Job.removal_defaults;
    }
  in
  let ok = List.hd (registry_jobs ()) in
  let results, summary =
    Batch.run
      { Batch.default_config with Batch.fail_fast = true }
      [ bad; ok; ok ]
  in
  check int_c "one failure" 1 summary.Batch.failed;
  check int_c "rest cancelled" 2 summary.Batch.cancelled;
  check bool_c "cancelled jobs carry no metrics" true
    (List.for_all
       (fun (r : Batch.job_result) ->
         r.Batch.index = 0 || r.Batch.outcome.Outcome.metrics = [])
       results)

let test_batch_timeout_classification () =
  let ok = List.hd (registry_jobs ()) in
  let _, summary =
    Batch.run
      { Batch.default_config with Batch.timeout_ms = Some 0. }
      [ ok ]
  in
  check int_c "over-budget job classified timed out" 1 summary.Batch.timed_out

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_telemetry_stream_shape () =
  let sink, events = Telemetry.memory () in
  let jobs = [ List.hd (registry_jobs ()) ] in
  let cache = Result_cache.create ~capacity:4 in
  let _ =
    Batch.run
      { Batch.default_config with Batch.telemetry = sink; cache = Some cache }
      jobs
  in
  let names =
    List.map
      (fun e -> Json.to_str (Json.field "event" e))
      (events ())
  in
  check bool_c "event sequence" true
    (names
    = [
        "batch_started"; "job_submitted"; "job_started"; "job_finished";
        "batch_finished";
      ]);
  List.iter
    (fun e ->
      (* Every event is one parseable JSONL line with the envelope. *)
      check bool_c "has a timestamp" true (Json.member "ts" e <> None);
      match Json.of_string (Telemetry.line e) with
      | Ok round -> check bool_c "line parses back" true (round = e)
      | Error msg -> Alcotest.failf "telemetry line does not parse: %s" msg)
    (events ())

let test_telemetry_to_file_atomic () =
  let dir = Filename.temp_file "noc_telemetry_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "events.jsonl" in
  let sink = Telemetry.to_file path in
  sink.Telemetry.emit (Telemetry.queue_depth ~depth:3);
  sink.Telemetry.emit (Telemetry.cache_evicted ~entries:4 ~capacity:4);
  (* Atomicity contract: nothing visible at [path] until close renames
     the temp file into place — a killed run leaves no truncated file. *)
  check bool_c "absent before close" false (Sys.file_exists path);
  sink.Telemetry.close ();
  check bool_c "present after close" true (Sys.file_exists path);
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check int_c "both events written" 2 (List.length lines);
  List.iter
    (fun l ->
      match Json.of_string l with
      | Ok e -> check bool_c "has a timestamp" true (Json.member "ts" e <> None)
      | Error msg -> Alcotest.failf "line does not parse: %s" msg)
    lines;
  check bool_c "no temp leftover" true
    (Sys.readdir dir |> Array.to_list
    |> List.for_all (fun f -> f = "events.jsonl"));
  Sys.remove path;
  Unix.rmdir dir

let test_telemetry_new_events () =
  let qd = Telemetry.queue_depth ~depth:7 in
  check bool_c "queue_depth event name" true
    (Json.to_str (Json.field "event" qd) = "queue_depth");
  check bool_c "queue_depth depth field" true
    (Json.member "depth" qd = Some (Json.Num 7.));
  let ev = Telemetry.cache_evicted ~entries:8 ~capacity:8 in
  check bool_c "cache_evicted event name" true
    (Json.to_str (Json.field "event" ev) = "cache_evicted");
  check bool_c "cache_evicted fields" true
    (Json.member "entries" ev = Some (Json.Num 8.)
    && Json.member "capacity" ev = Some (Json.Num 8.))

(* ------------------------------------------------------------------ *)
(* Wire: length-prefixed frames survive arbitrary chunk boundaries     *)
(* ------------------------------------------------------------------ *)

let outcome_gen =
  let open QCheck.Gen in
  let* status =
    oneof
      [
        return Outcome.Done;
        map (fun m -> Outcome.Failed m) (string_size ~gen:printable (int_bound 30));
        return Outcome.Timed_out;
        return Outcome.Cancelled;
      ]
  in
  let* metrics =
    list_size (int_bound 4)
      (pair (string_size ~gen:printable (int_range 1 10)) finite_float_gen)
  in
  let* wall_ms = map float_of_int (int_bound 10_000) in
  return { Outcome.status; metrics; wall_ms }

let request_gen =
  let open QCheck.Gen in
  frequency
    [
      ( 4,
        let* id = int_bound 10_000 in
        let* corr =
          opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 12))
        in
        let* job = job_gen in
        return (Wire.Submit { id; corr; job }) );
      (1, return Wire.Stats);
      (1, return Wire.Metrics);
      (1, return Wire.Ping);
    ]

let response_gen =
  let open QCheck.Gen in
  frequency
    [
      ( 1,
        map
          (fun protocol -> Wire.Hello { protocol })
          (oneofl [ "noc-wire/1"; "noc-wire/9" ]) );
      ( 4,
        let* id = int_bound 10_000 in
        let* job = job_gen in
        let* outcome = outcome_gen in
        let* cached = bool in
        return (Wire.Result { id; job_hash = Job.hash job; outcome; cached }) );
      ( 1,
        let* id = int_bound 10_000 in
        map
          (fun reason -> Wire.Rejected { id; reason })
          (string_size ~gen:printable (int_bound 40)) );
      ( 1,
        let* id = int_bound 10_000 in
        let* queue_depth = int_bound 256 in
        return (Wire.Overloaded { id; queue_depth }) );
      ( 1,
        map
          (fun s -> Wire.Stats_report s)
          (string_size ~gen:printable (int_bound 200)) );
      ( 1,
        let* uptime_s = map float_of_int (int_bound 100_000) in
        let* draining = bool in
        let* queue_depth = int_bound 256 in
        let* inflight = int_bound 64 in
        let* store =
          opt
            (let* entries = int_bound 500 in
             let* hits = int_bound 500 in
             let* misses = int_bound 500 in
             let* evictions = int_bound 500 in
             let* hit_rate = map float_of_int (int_bound 1) in
             return { Wire.entries; hits; misses; evictions; hit_rate })
        in
        let* tag = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
        return
          (Wire.Metrics_report
             {
               mr_stats =
                 { Wire.uptime_s; draining; queue_depth; inflight; store };
               mr_metrics = Json.Obj [ ("schema", Json.Str tag) ];
               mr_series = Json.Arr [ Json.Num 1.; Json.Num 2. ];
               mr_slo = Json.Obj [ ("slos", Json.Arr []) ];
             }) );
      (1, return Wire.Pong);
      (1, map (fun s -> Wire.Error_msg s) (string_size ~gen:printable (int_bound 40)));
    ]

(* Feed [data] in 1–7 byte chunks driven by the generated [sizes] list
   (whatever remains goes in one final chunk), so frames get split at
   arbitrary points — including inside the 4-byte length prefix. *)
let feed_in_chunks dec data sizes =
  let n = String.length data in
  let rec go off sizes =
    if off < n then
      match sizes with
      | [] -> Wire.feed dec data ~off ~len:(n - off)
      | s :: rest ->
          let len = min (1 + (s mod 7)) (n - off) in
          Wire.feed dec data ~off ~len;
          go (off + len) rest
  in
  go 0 sizes

let decode_all dec =
  let rec loop acc =
    match Wire.next dec with
    | Ok (Some json) -> loop (json :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error e
  in
  loop []

let chunked_stream_prop ~name ~encode ~decode gen =
  QCheck.Test.make ~name ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 6) gen)
           (list_size (int_bound 400) (int_bound 1_000_000))))
    (fun (messages, sizes) ->
      let data = String.concat "" (List.map encode messages) in
      let dec = Wire.decoder () in
      feed_in_chunks dec data sizes;
      match decode_all dec with
      | Error _ -> false
      | Ok frames ->
          List.length frames = List.length messages
          && List.for_all2 (fun j m -> decode j = Ok m) frames messages)

let prop_wire_requests_chunked =
  chunked_stream_prop ~name:"wire requests survive arbitrary chunking"
    ~encode:Wire.encode_request ~decode:Wire.request_of_json request_gen

let prop_wire_responses_chunked =
  chunked_stream_prop ~name:"wire responses survive arbitrary chunking"
    ~encode:Wire.encode_response ~decode:Wire.response_of_json response_gen

let test_wire_rejects_oversized_frame () =
  let dec = Wire.decoder () in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Wire.max_frame_bytes + 1));
  Wire.feed_string dec (Bytes.to_string header);
  match Wire.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

let test_wire_rejects_garbage_payload () =
  let dec = Wire.decoder () in
  Wire.feed_string dec (Wire.frame "not json");
  match Wire.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-JSON payload accepted"

(* ------------------------------------------------------------------ *)
(* Store: the persistent content-addressed result store                *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "noc_service_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let hex_key seed = Digest.to_hex (Digest.string seed)

let object_path ~root key =
  Filename.concat
    (Filename.concat (Filename.concat root "objects") (String.sub key 0 2))
    (String.sub key 2 (String.length key - 2) ^ ".json")

let test_store_persists_across_reopen () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "store" in
      let key = hex_key "persist-me" in
      let outcome = Outcome.done_ ~wall_ms:1.5 [ ("vcs_added", 2.) ] in
      let s1 = Store.create ~root ~capacity:8 in
      check bool_c "cold miss" true (Store.find s1 key = None);
      ignore (Store.store s1 key outcome);
      check bool_c "warm hit" true (Store.find s1 key = Some outcome);
      (* A second handle on the same root sees the object — the
         daemon-restart scenario. *)
      let s2 = Store.create ~root ~capacity:8 in
      (match Store.find s2 key with
      | Some got ->
          check bool_c "outcome identical after reopen" true (got = outcome)
      | None -> Alcotest.fail "store lost the object across reopen");
      let stats = Store.stats s2 in
      check int_c "one entry" 1 stats.Store.entries;
      check int_c "one hit" 1 stats.Store.hits;
      check int_c "no misses" 0 stats.Store.misses)

let test_store_rebuilds_missing_index () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "store" in
      let s1 = Store.create ~root ~capacity:8 in
      let keys = List.map (fun i -> hex_key (string_of_int i)) [ 1; 2; 3 ] in
      List.iteri
        (fun i k -> ignore (Store.store s1 k (Outcome.done_ [ ("k", float_of_int i) ])))
        keys;
      (* The index is a rebuildable cache: losing it must not lose data. *)
      Sys.remove (Filename.concat root "index.json");
      let s2 = Store.create ~root ~capacity:8 in
      check int_c "rescan found every object" 3 (Store.stats s2).Store.entries;
      List.iter
        (fun k -> check bool_c "object readable" true (Store.find s2 k <> None))
        keys)

let test_store_lru_eviction_removes_file () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "store" in
      let s = Store.create ~root ~capacity:2 in
      let key i = hex_key (string_of_int i) in
      let out i = Outcome.done_ [ ("k", float_of_int i) ] in
      check bool_c "no eviction below capacity" false
        (Store.store s (key 1) (out 1));
      check bool_c "no eviction at capacity" false
        (Store.store s (key 2) (out 2));
      ignore (Store.find s (key 1));
      check bool_c "store beyond capacity evicts" true
        (Store.store s (key 3) (out 3));
      check bool_c "recently-used survives" true (Store.find s (key 1) <> None);
      check bool_c "least-recently-used evicted" true
        (Store.find s (key 2) = None);
      check int_c "eviction counted" 1 (Store.stats s).Store.evictions;
      check bool_c "evicted object gone from disk" true
        (not (Sys.file_exists (object_path ~root (key 2))));
      let s2 = Store.create ~root ~capacity:2 in
      check int_c "reopen sees the surviving pair" 2 (Store.stats s2).Store.entries)

let test_store_corrupt_object_is_a_miss () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "store" in
      let s = Store.create ~root ~capacity:4 in
      let key = hex_key "corrupt-me" in
      ignore (Store.store s key (Outcome.done_ [ ("k", 1.) ]));
      let file = object_path ~root key in
      check bool_c "object file exists" true (Sys.file_exists file);
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc "{ truncated");
      let s2 = Store.create ~root ~capacity:4 in
      check bool_c "corrupt object reads as a miss" true
        (Store.find s2 key = None);
      check bool_c "corrupt object deleted" true (not (Sys.file_exists file));
      (* The store heals: a fresh write round-trips again. *)
      ignore (Store.store s2 key (Outcome.done_ [ ("k", 2.) ]));
      check bool_c "healed" true (Store.find s2 key <> None))

(* ------------------------------------------------------------------ *)
(* Cache eviction is observable in the metrics registry                *)
(* ------------------------------------------------------------------ *)

let counter_value name =
  List.fold_left
    (fun acc m ->
      match m with
      | Noc_obs.Metrics.Counter { name = n; value; _ } when n = name -> value
      | _ -> acc)
    0
    (Noc_obs.Metrics.snapshot ())

let test_cache_eviction_bumps_obs_counter () =
  let before = counter_value "noc_cache_evictions_total" in
  let cache = Result_cache.create ~capacity:1 in
  ignore (Result_cache.store cache "a" (Outcome.done_ [ ("k", 1.) ]));
  ignore (Result_cache.store cache "b" (Outcome.done_ [ ("k", 2.) ]));
  check int_c "noc_cache_evictions_total counter bumped" (before + 1)
    (counter_value "noc_cache_evictions_total")

(* ------------------------------------------------------------------ *)
(* Server: in-process end-to-end, warm across a restart                *)
(* ------------------------------------------------------------------ *)

let test_server_end_to_end_warm_restart () =
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "serve.sock" in
      let jobs = List.filteri (fun i _ -> i < 4) (registry_jobs ()) in
      let run_once ~expect_cached =
        let store =
          Store.create ~root:(Filename.concat dir "store") ~capacity:64
        in
        let server =
          Server.create
            {
              Server.default_config with
              socket_path = socket;
              store = Some store;
              domains = 2;
            }
        in
        let d = Domain.spawn (fun () -> Server.run server) in
        let deadline = Unix.gettimeofday () +. 10. in
        let rec wait_for_socket () =
          if Sys.file_exists socket then ()
          else if Unix.gettimeofday () > deadline then
            Alcotest.fail "server socket never appeared"
          else begin
            Unix.sleepf 0.01;
            wait_for_socket ()
          end
        in
        wait_for_socket ();
        let client =
          match Client.connect ~socket with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        (match Client.ping client with
        | Ok () -> ()
        | Error e -> Alcotest.failf "ping failed: %s" e);
        let replies =
          match Client.submit_all client jobs ~on_result:(fun _ _ _ -> ()) with
          | Ok rs -> rs
          | Error e -> Alcotest.fail e
        in
        Client.close client;
        Server.stop server;
        Domain.join d;
        check int_c "one reply per job" (List.length jobs)
          (List.length replies);
        List.iter
          (fun r ->
            match r with
            | Wire.Result { outcome; cached; _ } ->
                check bool_c "job succeeded" true (Outcome.is_done outcome);
                check bool_c
                  (if expect_cached then "served from the store"
                   else "served cold")
                  expect_cached cached
            | _ -> Alcotest.fail "expected a result reply")
          replies;
        replies
      in
      let cold = run_once ~expect_cached:false in
      let warm = run_once ~expect_cached:true in
      (* Warm replies carry bit-identical results: restart determinism. *)
      List.iter2
        (fun a b ->
          match (a, b) with
          | ( Wire.Result { outcome = oa; job_hash = ha; _ },
              Wire.Result { outcome = ob; job_hash = hb; _ } ) ->
              check string_c "same job hash" ha hb;
              check string_c "same result hash" (Outcome.result_hash oa)
                (Outcome.result_hash ob)
          | _ -> ())
        cold warm)

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_json_roundtrip;
      prop_json_pretty_roundtrip;
      prop_job_roundtrip;
      prop_job_roundtrip_via_text;
      prop_job_hash_stable;
      prop_job_file_roundtrip;
      prop_wire_requests_chunked;
      prop_wire_responses_chunked;
    ]

let () =
  Alcotest.run "noc_service"
    [
      ("properties", qcheck_cases);
      ( "job",
        [
          Alcotest.test_case "defaults fill in" `Quick test_job_defaults_fill_in;
          Alcotest.test_case "bad schema rejected" `Quick
            test_job_file_rejects_bad_schema;
          Alcotest.test_case "simulate defaults pinned" `Quick
            test_simulate_defaults_pinned;
          Alcotest.test_case "simulate runner outcomes" `Quick
            test_simulate_runner_outcomes;
          Alcotest.test_case "simulate lint codes" `Quick
            test_simulate_lint_codes;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "hash ignores wall time" `Quick
            test_outcome_hash_ignores_wall_time;
          Alcotest.test_case "round-trip" `Quick test_outcome_roundtrip;
        ] );
      ( "pool",
        [
          Alcotest.test_case "preserves order" `Quick test_pool_preserves_order;
          Alcotest.test_case "re-raises" `Quick test_pool_reraises;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "eviction bumps obs counter" `Quick
            test_cache_eviction_bumps_obs_counter;
        ] );
      ( "wire",
        [
          Alcotest.test_case "oversized frame rejected" `Quick
            test_wire_rejects_oversized_frame;
          Alcotest.test_case "garbage payload rejected" `Quick
            test_wire_rejects_garbage_payload;
        ] );
      ( "store",
        [
          Alcotest.test_case "persists across reopen" `Quick
            test_store_persists_across_reopen;
          Alcotest.test_case "rebuilds missing index" `Quick
            test_store_rebuilds_missing_index;
          Alcotest.test_case "lru eviction removes file" `Quick
            test_store_lru_eviction_removes_file;
          Alcotest.test_case "corrupt object is a miss" `Quick
            test_store_corrupt_object_is_a_miss;
        ] );
      ( "server",
        [
          Alcotest.test_case "end-to-end, warm restart" `Quick
            test_server_end_to_end_warm_restart;
        ] );
      ( "batch",
        [
          Alcotest.test_case "4-domain differential" `Quick
            test_batch_differential_4_domains;
          Alcotest.test_case "streams in order" `Quick
            test_batch_streams_in_submission_order;
          Alcotest.test_case "warm replay" `Quick test_batch_warm_replay_all_hits;
          Alcotest.test_case "fail fast" `Quick test_batch_fail_fast_cancels;
          Alcotest.test_case "timeout classification" `Quick
            test_batch_timeout_classification;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stream shape" `Quick test_telemetry_stream_shape;
          Alcotest.test_case "to_file is atomic" `Quick
            test_telemetry_to_file_atomic;
          Alcotest.test_case "queue_depth and cache_evicted" `Quick
            test_telemetry_new_events;
        ] );
    ]
