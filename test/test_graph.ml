open Noc_graph

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let int_list = Alcotest.(list int)
let int_list_opt = Alcotest.(option (list int))

(* ------------------------------------------------------------------ *)
(* Digraph basics                                                      *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  let g = Digraph.create () in
  check int_c "no vertices" 0 (Digraph.n_vertices g);
  check int_c "no edges" 0 (Digraph.n_edges g)

let test_add_vertex_dense () =
  let g = Digraph.create () in
  check int_c "first id" 0 (Digraph.add_vertex g);
  check int_c "second id" 1 (Digraph.add_vertex g);
  check int_c "count" 2 (Digraph.n_vertices g)

let test_ensure_vertex () =
  let g = Digraph.create () in
  Digraph.ensure_vertex g 5;
  check int_c "grows to 6" 6 (Digraph.n_vertices g);
  Digraph.ensure_vertex g 2;
  check int_c "no shrink" 6 (Digraph.n_vertices g)

let test_ensure_vertex_negative () =
  let g = Digraph.create () in
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Digraph.ensure_vertex: negative vertex") (fun () ->
      Digraph.ensure_vertex g (-1))

let test_add_edge_allocates () =
  let g = Digraph.create () in
  Digraph.add_edge g 2 5;
  check int_c "vertices" 6 (Digraph.n_vertices g);
  check bool_c "edge present" true (Digraph.mem_edge g 2 5);
  check bool_c "reverse absent" false (Digraph.mem_edge g 5 2)

let test_add_edge_idempotent () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  check int_c "simple graph" 1 (Digraph.n_edges g);
  check int_list "single successor" [ 1 ] (Digraph.succ g 0)

let test_remove_edge () =
  let g = Digraph.of_edges [ (0, 1); (1, 2); (0, 2) ] in
  Digraph.remove_edge g 0 1;
  check bool_c "gone" false (Digraph.mem_edge g 0 1);
  check int_c "two left" 2 (Digraph.n_edges g);
  Digraph.remove_edge g 0 1;
  check int_c "idempotent" 2 (Digraph.n_edges g);
  check int_list "pred of 2" [ 1; 0 ] (List.sort (fun a b -> compare b a) (Digraph.pred g 2))

let test_self_loop () =
  let g = Digraph.create () in
  Digraph.add_edge g 3 3;
  check bool_c "self loop" true (Digraph.mem_edge g 3 3);
  check int_c "out" 1 (Digraph.out_degree g 3);
  check int_c "in" 1 (Digraph.in_degree g 3)

let test_degrees () =
  let g = Digraph.of_edges [ (0, 1); (0, 2); (3, 0) ] in
  check int_c "out 0" 2 (Digraph.out_degree g 0);
  check int_c "in 0" 1 (Digraph.in_degree g 0);
  check int_c "out 2" 0 (Digraph.out_degree g 2)

let test_succ_out_of_range () =
  let g = Digraph.create () in
  Alcotest.check_raises "range check"
    (Invalid_argument "Digraph.succ: vertex 0 out of range") (fun () ->
      ignore (Digraph.succ g 0))

let test_edges_listing () =
  let g = Digraph.of_edges [ (1, 0); (0, 1); (2, 1) ] in
  let es = List.sort compare (Digraph.edges g) in
  check Alcotest.(list (pair int int)) "all edges" [ (0, 1); (1, 0); (2, 1) ] es

let test_transpose () =
  let g = Digraph.of_edges [ (0, 1); (1, 2) ] in
  let t = Digraph.transpose g in
  check bool_c "reversed" true (Digraph.mem_edge t 1 0);
  check bool_c "reversed2" true (Digraph.mem_edge t 2 1);
  check int_c "same vertex count" (Digraph.n_vertices g) (Digraph.n_vertices t);
  check int_c "same edge count" (Digraph.n_edges g) (Digraph.n_edges t)

let test_copy_independent () =
  let g = Digraph.of_edges [ (0, 1) ] in
  let g' = Digraph.copy g in
  Digraph.add_edge g' 1 2;
  Digraph.remove_edge g' 0 1;
  check bool_c "original keeps edge" true (Digraph.mem_edge g 0 1);
  check int_c "original vertex count" 2 (Digraph.n_vertices g);
  check bool_c "copy lost edge" false (Digraph.mem_edge g' 0 1)

let test_of_edges_n () =
  let g = Digraph.of_edges ~n:10 [ (0, 1) ] in
  check int_c "forced size" 10 (Digraph.n_vertices g)

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let chain n =
  Digraph.of_edges (List.init (n - 1) (fun i -> (i, i + 1)))

let test_bfs_distances () =
  let g = Digraph.of_edges [ (0, 1); (0, 2); (1, 3); (2, 3); (4, 0) ] in
  let d = Traversal.bfs_distances g 0 in
  check int_c "self" 0 d.(0);
  check int_c "direct" 1 d.(1);
  check int_c "two hops" 2 d.(3);
  check int_c "unreachable" (-1) d.(4)

let test_bfs_order_starts_at_src () =
  let g = chain 5 in
  match Traversal.bfs_order g 2 with
  | [] -> Alcotest.fail "empty order"
  | first :: _ -> check int_c "starts at src" 2 first

let test_shortest_path_simple () =
  let g = Digraph.of_edges [ (0, 1); (1, 2); (0, 2) ] in
  check int_list_opt "direct edge wins" (Some [ 0; 2 ])
    (Traversal.shortest_path g 0 2)

let test_shortest_path_none () =
  let g = Digraph.of_edges [ (0, 1) ] in
  Digraph.ensure_vertex g 2;
  check int_list_opt "unreachable" None (Traversal.shortest_path g 1 2)

let test_shortest_path_self () =
  let g = chain 3 in
  check int_list_opt "trivial" (Some [ 1 ]) (Traversal.shortest_path g 1 1)

let test_dfs_postorder_chain () =
  let g = chain 4 in
  check int_list "postorder of a chain" [ 0; 1; 2; 3 ] (Traversal.dfs_postorder g)

let test_dfs_postorder_covers_all () =
  let g = Digraph.of_edges [ (0, 1); (2, 3) ] in
  check int_c "covers every vertex" 4 (List.length (Traversal.dfs_postorder g))

let test_reachable () =
  let g = Digraph.of_edges [ (0, 1); (1, 2); (3, 1) ] in
  let r = Traversal.reachable g 0 in
  check bool_c "self" true r.(0);
  check bool_c "down" true r.(2);
  check bool_c "not up" false r.(3);
  check bool_c "is_reachable agrees" true (Traversal.is_reachable g 0 2)

(* Deep graph: the iterative DFS must not overflow the stack. *)
let test_dfs_deep () =
  let g = chain 200_000 in
  check int_c "deep chain postorder size" 200_000
    (List.length (Traversal.dfs_postorder g))

(* ------------------------------------------------------------------ *)
(* SCC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_scc_two_cycles () =
  let g = Digraph.of_edges [ (0, 1); (1, 0); (2, 3); (3, 4); (4, 2); (1, 2) ] in
  let r = Scc.compute g in
  check int_c "two components" 2 r.Scc.count;
  check bool_c "0 and 1 together" true (r.Scc.component.(0) = r.Scc.component.(1));
  check bool_c "2,3,4 together" true
    (r.Scc.component.(2) = r.Scc.component.(3)
    && r.Scc.component.(3) = r.Scc.component.(4));
  check bool_c "distinct" true (r.Scc.component.(0) <> r.Scc.component.(2))

let test_scc_reverse_topological_ids () =
  (* Edge from the {0,1} component into the {2} component: the source
     component must get the larger id. *)
  let g = Digraph.of_edges [ (0, 1); (1, 0); (1, 2) ] in
  let r = Scc.compute g in
  check bool_c "source SCC later" true (r.Scc.component.(0) > r.Scc.component.(2))

let test_scc_acyclic_all_singletons () =
  let g = chain 6 in
  check int_c "n components" 6 (Scc.compute g).Scc.count;
  check int_c "no non-trivial" 0 (List.length (Scc.non_trivial g))

let test_scc_self_loop_non_trivial () =
  let g = Digraph.of_edges [ (0, 0); (0, 1) ] in
  check Alcotest.(list (list int)) "self loop counts" [ [ 0 ] ] (Scc.non_trivial g)

let test_condensation_acyclic () =
  let g = Digraph.of_edges [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  let _, cg = Scc.condensation g in
  check bool_c "condensation acyclic" true (Toposort.is_acyclic cg);
  check int_c "two vertices" 2 (Digraph.n_vertices cg);
  check int_c "one edge" 1 (Digraph.n_edges cg)

(* ------------------------------------------------------------------ *)
(* Cycles                                                              *)
(* ------------------------------------------------------------------ *)

let ring n =
  Digraph.of_edges (List.init n (fun i -> (i, (i + 1) mod n)))

let is_cycle g vs =
  match vs with
  | [] -> false
  | [ v ] -> Digraph.mem_edge g v v
  | first :: _ ->
      let rec ok = function
        | a :: (b :: _ as rest) -> Digraph.mem_edge g a b && ok rest
        | [ last ] -> Digraph.mem_edge g last first
        | [] -> true
      in
      ok vs

let test_has_cycle () =
  check bool_c "ring cyclic" true (Cycles.has_cycle (ring 4));
  check bool_c "chain acyclic" false (Cycles.has_cycle (chain 4));
  check bool_c "self loop cyclic" true (Cycles.has_cycle (Digraph.of_edges [ (0, 0) ]))

let test_find_any_valid () =
  let g = ring 5 in
  match Cycles.find_any g with
  | None -> Alcotest.fail "cycle expected"
  | Some c -> check bool_c "valid cycle" true (is_cycle g c)

let test_find_any_none () =
  check Alcotest.(option (list int)) "acyclic" None (Cycles.find_any (chain 4))

let test_shortest_ring () =
  let g = ring 6 in
  match Cycles.shortest g with
  | None -> Alcotest.fail "cycle expected"
  | Some c ->
      check int_c "whole ring" 6 (List.length c);
      check bool_c "valid" true (is_cycle g c)

let test_shortest_prefers_small () =
  (* 6-ring plus a chord creating a 2-cycle between 0 and 1. *)
  let g = ring 6 in
  Digraph.add_edge g 1 0;
  match Cycles.shortest g with
  | None -> Alcotest.fail "cycle expected"
  | Some c ->
      check int_c "2-cycle found" 2 (List.length c);
      check bool_c "valid" true (is_cycle g c)

let test_shortest_self_loop () =
  let g = ring 4 in
  Digraph.add_edge g 2 2;
  match Cycles.shortest g with
  | Some [ v ] -> check int_c "the self loop" 2 v
  | Some c -> Alcotest.failf "expected self-loop, got length %d" (List.length c)
  | None -> Alcotest.fail "cycle expected"

let test_shortest_through () =
  let g = ring 4 in
  (match Cycles.shortest_through g 2 with
  | Some c ->
      check int_c "length" 4 (List.length c);
      check int_c "starts at 2" 2 (List.hd c)
  | None -> Alcotest.fail "cycle expected");
  let acyclic = chain 3 in
  check bool_c "none in chain" true (Cycles.shortest_through acyclic 1 = None)

let test_girth () =
  check Alcotest.(option int) "ring girth" (Some 4) (Cycles.girth (ring 4));
  check Alcotest.(option int) "chain girth" None (Cycles.girth (chain 4))

let test_enumerate_ring () =
  let cycles = Cycles.enumerate (ring 4) in
  check int_c "single elementary cycle" 1 (List.length cycles);
  check int_list "canonical rotation" [ 0; 1; 2; 3 ] (List.hd cycles)

let test_enumerate_complete3 () =
  (* K3 with all 6 arcs: three 2-cycles and two 3-cycles. *)
  let edges = [ (0, 1); (1, 0); (1, 2); (2, 1); (0, 2); (2, 0) ] in
  let cycles = Cycles.enumerate (Digraph.of_edges edges) in
  let by_len n = List.length (List.filter (fun c -> List.length c = n) cycles) in
  check int_c "2-cycles" 3 (by_len 2);
  check int_c "3-cycles" 2 (by_len 3);
  check int_c "total" 5 (List.length cycles)

let test_enumerate_bounded () =
  let edges = [ (0, 1); (1, 0); (1, 2); (2, 1); (0, 2); (2, 0) ] in
  let cycles = Cycles.enumerate ~max_cycles:2 (Digraph.of_edges edges) in
  check int_c "stops at bound" 2 (List.length cycles)

(* ------------------------------------------------------------------ *)
(* Toposort                                                            *)
(* ------------------------------------------------------------------ *)

let test_toposort_chain () =
  check int_list_opt "chain order" (Some [ 0; 1; 2; 3 ]) (Toposort.sort (chain 4))

let test_toposort_cyclic () =
  check int_list_opt "cyclic none" None (Toposort.sort (ring 3))

let test_toposort_respects_edges () =
  let edges = [ (3, 1); (1, 0); (3, 0); (2, 0) ] in
  let g = Digraph.of_edges edges in
  match Toposort.sort g with
  | None -> Alcotest.fail "acyclic expected"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.iter
        (fun (u, v) ->
          check bool_c (Printf.sprintf "%d before %d" u v) true (pos.(u) < pos.(v)))
        edges

let test_layers () =
  let g = Digraph.of_edges [ (0, 2); (1, 2); (2, 3) ] in
  check
    Alcotest.(option (list (list int)))
    "longest-path layers"
    (Some [ [ 0; 1 ]; [ 2 ]; [ 3 ] ])
    (Toposort.layers g)

let test_layers_cyclic () =
  check Alcotest.(option (list (list int))) "cyclic layers" None
    (Toposort.layers (ring 3))

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let test_dijkstra_weights () =
  (* 0->1->2 costs 2, direct 0->2 costs 5: indirect wins. *)
  let g = Digraph.of_edges [ (0, 1); (1, 2); (0, 2) ] in
  let weight u v = if u = 0 && v = 2 then 5. else 1. in
  let dist, _ = Paths.dijkstra g ~weight 0 in
  check (Alcotest.float 1e-9) "cheap path" 2. dist.(2);
  check int_list_opt "path itself" (Some [ 0; 1; 2 ]) (Paths.shortest_path g ~weight 0 2)

let test_dijkstra_unreachable () =
  let g = Digraph.of_edges [ (0, 1) ] in
  Digraph.ensure_vertex g 2;
  let dist, _ = Paths.dijkstra g ~weight:(fun _ _ -> 1.) 0 in
  check bool_c "infinite" true (dist.(2) = infinity)

let test_dijkstra_negative_rejected () =
  let g = Digraph.of_edges [ (0, 1) ] in
  Alcotest.check_raises "negative weight" Paths.Negative_weight (fun () ->
      ignore (Paths.dijkstra g ~weight:(fun _ _ -> -1.) 0))

let test_path_weight () =
  let weight _ _ = 2.5 in
  check (Alcotest.float 1e-9) "3 edges" 7.5 (Paths.path_weight ~weight [ 0; 1; 2; 3 ]);
  check (Alcotest.float 1e-9) "empty" 0. (Paths.path_weight ~weight [])

let test_eccentricity_diameter () =
  let g = chain 5 in
  check int_c "ecc of head" 4 (Paths.eccentricity g 0);
  check int_c "ecc of tail" 0 (Paths.eccentricity g 4);
  check int_c "diameter" 4 (Paths.diameter g);
  check int_c "ring diameter" 3 (Paths.diameter (ring 4))

(* ------------------------------------------------------------------ *)
(* K-shortest paths                                                    *)
(* ------------------------------------------------------------------ *)

let unit_weight _ _ = 1.

let test_yen_basic () =
  (* Diamond: 0->1->3 and 0->2->3, plus direct 0->3. *)
  let g = Digraph.of_edges [ (0, 1); (1, 3); (0, 2); (2, 3); (0, 3) ] in
  let paths = K_shortest.yen g ~weight:unit_weight ~k:3 0 3 in
  check int_c "three paths" 3 (List.length paths);
  check int_list "best is direct" [ 0; 3 ] (List.hd paths);
  List.iter
    (fun p -> check int_c "others are 2-hop" 3 (List.length p))
    (List.tl paths)

let test_yen_ordering_by_weight () =
  let g = Digraph.of_edges [ (0, 1); (1, 3); (0, 2); (2, 3); (0, 3) ] in
  (* Make the direct edge expensive: it must come last. *)
  let weight u v = if u = 0 && v = 3 then 10. else 1. in
  let paths = K_shortest.yen g ~weight ~k:3 0 3 in
  check int_c "three paths" 3 (List.length paths);
  check int_list "direct edge now last" [ 0; 3 ]
    (List.nth paths 2)

let test_yen_fewer_than_k () =
  let g = chain 4 in
  let paths = K_shortest.yen g ~weight:unit_weight ~k:5 0 3 in
  check int_c "only one path exists" 1 (List.length paths)

let test_yen_unreachable () =
  let g = Digraph.of_edges [ (0, 1) ] in
  Digraph.ensure_vertex g 2;
  check int_c "no paths" 0 (List.length (K_shortest.yen g ~weight:unit_weight ~k:3 0 2))

let test_yen_loopless () =
  (* A cycle adjacent to the path must not leak into results. *)
  let g = Digraph.of_edges [ (0, 1); (1, 2); (1, 1); (2, 1) ] in
  let paths = K_shortest.yen g ~weight:unit_weight ~k:4 0 2 in
  List.iter
    (fun p ->
      check int_c "no repeated vertices" (List.length p)
        (List.length (List.sort_uniq compare p)))
    paths

let test_yen_k_invalid () =
  let g = chain 2 in
  Alcotest.check_raises "k" (Invalid_argument "K_shortest.yen: k < 1") (fun () ->
      ignore (K_shortest.yen g ~weight:unit_weight ~k:0 0 1))

(* ------------------------------------------------------------------ *)
(* Max flow                                                            *)
(* ------------------------------------------------------------------ *)

let test_max_flow_simple () =
  (* Two disjoint unit paths 0->3: flow 2. *)
  let g = Digraph.of_edges [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  check (Alcotest.float 1e-9) "two paths" 2.
    (Max_flow.max_flow g ~capacity:(fun _ _ -> 1.) ~source:0 ~sink:3)

let test_max_flow_bottleneck () =
  (* 0 -> 1 -> 2 with capacities 5 then 2: bottleneck 2. *)
  let g = Digraph.of_edges [ (0, 1); (1, 2) ] in
  let capacity u _ = if u = 0 then 5. else 2. in
  check (Alcotest.float 1e-9) "bottleneck" 2.
    (Max_flow.max_flow g ~capacity ~source:0 ~sink:2)

let test_max_flow_disconnected () =
  let g = Digraph.of_edges [ (0, 1) ] in
  Digraph.ensure_vertex g 2;
  check (Alcotest.float 1e-9) "zero" 0.
    (Max_flow.max_flow g ~capacity:(fun _ _ -> 1.) ~source:0 ~sink:2)

let test_max_flow_validation () =
  let g = Digraph.of_edges [ (0, 1) ] in
  Alcotest.check_raises "source=sink" (Invalid_argument "Max_flow: source = sink")
    (fun () -> ignore (Max_flow.max_flow g ~capacity:(fun _ _ -> 1.) ~source:0 ~sink:0));
  Alcotest.check_raises "negative" (Invalid_argument "Max_flow: negative capacity")
    (fun () ->
      ignore (Max_flow.max_flow g ~capacity:(fun _ _ -> -1.) ~source:0 ~sink:1))

let test_min_cut_edges () =
  (* Diamond with a weak edge 0->1 (cap 1) and strong 0->2 (cap 3),
     both feeding 3 with cap 3; cut should include the weak edge when
     saturated. *)
  let g = Digraph.of_edges [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let capacity u v = if u = 0 && v = 1 then 1. else 3. in
  let value, cut = Max_flow.min_cut g ~capacity ~source:0 ~sink:3 in
  check (Alcotest.float 1e-9) "cut value" 4. value;
  check bool_c "cut non-empty" true (cut <> []);
  (* The cut's capacity equals the flow value. *)
  let cut_cap = List.fold_left (fun acc (u, v) -> acc +. capacity u v) 0. cut in
  check (Alcotest.float 1e-9) "cut capacity = flow" value cut_cap

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_dot_structure () =
  let g = Digraph.of_edges [ (0, 1) ] in
  let s = Dot.render ~name:"demo" g in
  check bool_c "digraph header" true (string_contains ~needle:"digraph \"demo\"" s);
  check bool_c "edge" true (string_contains ~needle:"n0 -> n1" s);
  check bool_c "closes" true (string_contains ~needle:"}" s)

let test_dot_labels_and_attrs () =
  let g = Digraph.of_edges [ (0, 1) ] in
  let s =
    Dot.render
      ~vertex_label:(fun v -> Printf.sprintf "ch%d" v)
      ~vertex_attrs:(fun v -> if v = 0 then [ ("color", "red") ] else [])
      ~edge_attrs:(fun _ _ -> [ ("style", "dashed") ])
      g
  in
  check bool_c "label used" true (string_contains ~needle:"label=\"ch0\"" s);
  check bool_c "vertex attr" true (string_contains ~needle:"color=\"red\"" s);
  check bool_c "edge attr" true (string_contains ~needle:"style=\"dashed\"" s)

let test_dot_escaping () =
  let g = Digraph.of_edges [ (0, 0) ] in
  let s = Dot.render ~vertex_label:(fun _ -> "a\"b\\c") g in
  check bool_c "quote escaped" true (string_contains ~needle:"a\\\"b\\\\c" s)

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let test_union_find_basic () =
  let uf = Union_find.create 5 in
  check int_c "initial sets" 5 (Union_find.n_sets uf);
  check bool_c "union merges" true (Union_find.union uf 0 1);
  check bool_c "second union no-op" false (Union_find.union uf 1 0);
  check bool_c "same" true (Union_find.same uf 0 1);
  check bool_c "not same" false (Union_find.same uf 0 2);
  check int_c "4 sets" 4 (Union_find.n_sets uf)

let test_union_find_transitive () =
  let uf = Union_find.create 4 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  check bool_c "transitively same" true (Union_find.same uf 0 3);
  check int_c "one set" 1 (Union_find.n_sets uf)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let random_graph_gen =
  QCheck.Gen.(
    sized_size (int_bound 40) (fun n ->
        let n = max 2 n in
        list_size (int_bound (3 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
        >|= fun edges -> (n, edges)))

let arbitrary_graph =
  QCheck.make ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat "; " (List.map (fun (u, v) -> Printf.sprintf "%d,%d" u v) es)))
    random_graph_gen

let build (n, edges) = Digraph.of_edges ~n edges

let prop_scc_vs_toposort =
  QCheck.Test.make ~name:"acyclic iff all SCCs trivial" ~count:200 arbitrary_graph
    (fun input ->
      let g = build input in
      Toposort.is_acyclic g = (Scc.non_trivial g = []))

let prop_shortest_cycle_valid =
  QCheck.Test.make ~name:"shortest cycle is a real cycle" ~count:200 arbitrary_graph
    (fun input ->
      let g = build input in
      match Cycles.shortest g with
      | None -> not (Cycles.has_cycle g)
      | Some c -> is_cycle g c)

let prop_shortest_cycle_minimal =
  QCheck.Test.make ~name:"shortest cycle no longer than any enumerated" ~count:100
    arbitrary_graph (fun input ->
      let g = build input in
      match Cycles.shortest g with
      | None -> true
      | Some c ->
          let all = Cycles.enumerate ~max_cycles:2000 g in
          List.for_all (fun c' -> List.length c <= List.length c') all)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose twice is identity" ~count:200 arbitrary_graph
    (fun input ->
      let g = build input in
      let tt = Digraph.transpose (Digraph.transpose g) in
      List.sort compare (Digraph.edges g) = List.sort compare (Digraph.edges tt))

let prop_bfs_triangle =
  QCheck.Test.make ~name:"bfs distance triangle inequality over edges" ~count:200
    arbitrary_graph (fun input ->
      let g = build input in
      let d = Traversal.bfs_distances g 0 in
      Digraph.fold_edges
        (fun acc u v ->
          acc && (d.(u) < 0 || d.(v) < 0 || d.(v) <= d.(u) + 1))
        true g)

let prop_yen_first_is_dijkstra =
  QCheck.Test.make ~name:"yen's first path weighs the same as dijkstra's" ~count:100
    arbitrary_graph (fun input ->
      let g = build input in
      let n = Digraph.n_vertices g in
      if n < 2 then true
      else begin
        let src = 0 and dst = n - 1 in
        let d = Paths.shortest_path g ~weight:unit_weight src dst in
        match (K_shortest.yen g ~weight:unit_weight ~k:1 src dst, d) with
        | [], None -> true
        | [ p ], Some best -> List.length p = List.length best
        | [], Some _ | _ :: _, None | _ :: _ :: _, _ -> false
      end)

let prop_yen_sorted_and_distinct =
  QCheck.Test.make ~name:"yen paths are sorted by weight and distinct" ~count:100
    arbitrary_graph (fun input ->
      let g = build input in
      let n = Digraph.n_vertices g in
      if n < 2 then true
      else begin
        let paths = K_shortest.yen g ~weight:unit_weight ~k:4 0 (n - 1) in
        let weights = List.map (fun p -> List.length p) paths in
        let rec sorted = function
          | a :: (b :: _ as rest) -> a <= b && sorted rest
          | [ _ ] | [] -> true
        in
        sorted weights
        && List.length paths = List.length (List.sort_uniq compare paths)
      end)

let prop_toposort_sound =
  QCheck.Test.make ~name:"toposort puts every edge forward" ~count:200
    arbitrary_graph (fun input ->
      let g = build input in
      match Toposort.sort g with
      | None -> true
      | Some order ->
          let pos = Array.make (Digraph.n_vertices g) 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          Digraph.fold_edges (fun acc u v -> acc && pos.(u) < pos.(v)) true g)

(* Brute-force enumeration of all simple paths, to cross-check Yen. *)
let all_simple_paths g src dst =
  let n = Digraph.n_vertices g in
  let results = ref [] in
  let visited = Array.make n false in
  let rec walk path v =
    if v = dst then results := List.rev (v :: path) :: !results
    else begin
      visited.(v) <- true;
      List.iter (fun w -> if not visited.(w) then walk (v :: path) w) (Digraph.succ g v);
      visited.(v) <- false
    end
  in
  if n > 0 then walk [] src;
  !results

let prop_yen_matches_bruteforce =
  QCheck.Test.make ~name:"yen finds the k genuinely shortest simple paths"
    ~count:60
    (QCheck.make ~print:(fun (n, es) ->
         Printf.sprintf "n=%d edges=%d" n (List.length es))
       QCheck.Gen.(
         let* n = int_range 2 7 in
         let* edges =
           list_size (int_bound 14) (pair (int_bound (n - 1)) (int_bound (n - 1)))
         in
         return (n, edges)))
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let k = 3 in
      let yen = K_shortest.yen g ~weight:unit_weight ~k 0 (n - 1) in
      let brute =
        all_simple_paths g 0 (n - 1)
        |> List.map (fun p -> (List.length p, p))
        |> List.sort compare
        |> List.map snd
      in
      let expected = List.filteri (fun i _ -> i < k) brute in
      List.length yen = List.length expected
      && List.for_all2
           (fun a b -> List.length a = List.length b)
           yen expected)

let prop_max_flow_bounded =
  QCheck.Test.make ~name:"max flow bounded by out-capacity of source" ~count:100
    arbitrary_graph (fun input ->
      let g = build input in
      let n = Digraph.n_vertices g in
      if n < 2 then true
      else begin
        let flow = Max_flow.max_flow g ~capacity:(fun _ _ -> 1.) ~source:0 ~sink:(n - 1) in
        flow <= float_of_int (Digraph.out_degree g 0) +. 1e-9 && flow >= 0.
      end)

let prop_min_cut_equals_max_flow =
  QCheck.Test.make ~name:"min cut capacity equals max flow" ~count:100
    arbitrary_graph (fun input ->
      let g = build input in
      let n = Digraph.n_vertices g in
      if n < 2 then true
      else begin
        let capacity _ _ = 1. in
        let flow = Max_flow.max_flow g ~capacity ~source:0 ~sink:(n - 1) in
        let value, cut = Max_flow.min_cut g ~capacity ~source:0 ~sink:(n - 1) in
        let cut_cap = List.fold_left (fun acc (u, v) -> acc +. capacity u v) 0. cut in
        abs_float (flow -. value) < 1e-9 && abs_float (value -. cut_cap) < 1e-9
      end)

(* The optimized smallest-cycle scan must agree with the verbatim seed
   implementation on the exact cycle returned — not just its length —
   because the removal trajectory tie-breaks on vertex ids and
   adjacency order. *)
let prop_shortest_matches_reference =
  QCheck.Test.make ~name:"shortest equals the reference implementation"
    ~count:300 arbitrary_graph (fun input ->
      let g = build input in
      Cycles.shortest g = Cycles.shortest_reference g)

(* Search hints are pure acceleration: any prefer list (including
   out-of-range vertices) must leave the result bit-identical. *)
let prop_shortest_prefer_lossless =
  QCheck.Test.make ~name:"shortest with hints returns the same cycle"
    ~count:200 arbitrary_graph (fun input ->
      let g = build input in
      let n = Digraph.n_vertices g in
      let prefers =
        [ [ 0 ]; [ n - 1; 0; n / 2 ]; [ -1; n + 5 ]; List.init n Fun.id ]
      in
      let expected = Cycles.shortest g in
      List.for_all (fun prefer -> Cycles.shortest ~prefer g = expected) prefers)

(* [bound] is an exclusive cutoff: a bound one above the true length
   changes nothing, the true length itself rules the cycle out. *)
let prop_shortest_through_bound_lossless =
  QCheck.Test.make ~name:"bounded shortest_through agrees with unbounded"
    ~count:100 arbitrary_graph (fun input ->
      let g = build input in
      let n = Digraph.n_vertices g in
      let ok v =
        match Cycles.shortest_through g v with
        | None -> Cycles.shortest_through ~bound:(n + 2) g v = None
        | Some c ->
            let l = List.length c in
            Cycles.shortest_through ~bound:(l + 1) g v = Some c
            && Cycles.shortest_through ~bound:l g v = None
      in
      List.for_all ok (List.init n Fun.id))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_scc_vs_toposort;
      prop_shortest_cycle_valid;
      prop_shortest_cycle_minimal;
      prop_shortest_matches_reference;
      prop_shortest_prefer_lossless;
      prop_shortest_through_bound_lossless;
      prop_transpose_involution;
      prop_bfs_triangle;
      prop_toposort_sound;
      prop_yen_first_is_dijkstra;
      prop_yen_sorted_and_distinct;
      prop_yen_matches_bruteforce;
      prop_max_flow_bounded;
      prop_min_cut_equals_max_flow;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "noc_graph"
    [
      ( "digraph",
        [
          tc "empty" test_empty;
          tc "add_vertex dense ids" test_add_vertex_dense;
          tc "ensure_vertex grows" test_ensure_vertex;
          tc "ensure_vertex rejects negatives" test_ensure_vertex_negative;
          tc "add_edge allocates endpoints" test_add_edge_allocates;
          tc "add_edge idempotent" test_add_edge_idempotent;
          tc "remove_edge" test_remove_edge;
          tc "self loop" test_self_loop;
          tc "degrees" test_degrees;
          tc "succ range check" test_succ_out_of_range;
          tc "edges listing" test_edges_listing;
          tc "transpose" test_transpose;
          tc "copy is independent" test_copy_independent;
          tc "of_edges ~n" test_of_edges_n;
        ] );
      ( "traversal",
        [
          tc "bfs distances" test_bfs_distances;
          tc "bfs order starts at src" test_bfs_order_starts_at_src;
          tc "shortest path prefers fewer hops" test_shortest_path_simple;
          tc "shortest path none" test_shortest_path_none;
          tc "shortest path to self" test_shortest_path_self;
          tc "dfs postorder chain" test_dfs_postorder_chain;
          tc "dfs postorder covers all" test_dfs_postorder_covers_all;
          tc "reachability" test_reachable;
          tc "dfs survives deep graphs" test_dfs_deep;
        ] );
      ( "scc",
        [
          tc "two cycles" test_scc_two_cycles;
          tc "reverse topological ids" test_scc_reverse_topological_ids;
          tc "acyclic all singletons" test_scc_acyclic_all_singletons;
          tc "self loop non-trivial" test_scc_self_loop_non_trivial;
          tc "condensation acyclic" test_condensation_acyclic;
        ] );
      ( "cycles",
        [
          tc "has_cycle" test_has_cycle;
          tc "find_any returns a valid cycle" test_find_any_valid;
          tc "find_any none on DAG" test_find_any_none;
          tc "shortest on ring" test_shortest_ring;
          tc "shortest prefers the 2-cycle" test_shortest_prefers_small;
          tc "shortest handles self loops" test_shortest_self_loop;
          tc "shortest through a vertex" test_shortest_through;
          tc "girth" test_girth;
          tc "enumerate ring" test_enumerate_ring;
          tc "enumerate K3" test_enumerate_complete3;
          tc "enumerate bounded" test_enumerate_bounded;
        ] );
      ( "toposort",
        [
          tc "chain" test_toposort_chain;
          tc "cyclic" test_toposort_cyclic;
          tc "respects edges" test_toposort_respects_edges;
          tc "layers" test_layers;
          tc "layers cyclic" test_layers_cyclic;
        ] );
      ( "paths",
        [
          tc "dijkstra weights" test_dijkstra_weights;
          tc "dijkstra unreachable" test_dijkstra_unreachable;
          tc "dijkstra rejects negative" test_dijkstra_negative_rejected;
          tc "path weight" test_path_weight;
          tc "eccentricity and diameter" test_eccentricity_diameter;
        ] );
      ( "k_shortest",
        [
          tc "diamond" test_yen_basic;
          tc "ordering by weight" test_yen_ordering_by_weight;
          tc "fewer than k" test_yen_fewer_than_k;
          tc "unreachable" test_yen_unreachable;
          tc "loopless" test_yen_loopless;
          tc "k invalid" test_yen_k_invalid;
        ] );
      ( "max_flow",
        [
          tc "two disjoint paths" test_max_flow_simple;
          tc "bottleneck" test_max_flow_bottleneck;
          tc "disconnected" test_max_flow_disconnected;
          tc "validation" test_max_flow_validation;
          tc "min cut edges" test_min_cut_edges;
        ] );
      ( "dot",
        [
          tc "structure" test_dot_structure;
          tc "labels and attrs" test_dot_labels_and_attrs;
          tc "escaping" test_dot_escaping;
        ] );
      ( "union_find",
        [
          tc "basics" test_union_find_basic;
          tc "transitivity" test_union_find_transitive;
        ] );
      ("properties", qcheck_cases);
    ]
