open Noc_model
open Noc_benchmarks

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

(* [stream n f t]: draw [n] values with [f], threading the pure state. *)
let stream n f t =
  let rec go t acc remaining =
    if remaining = 0 then List.rev acc
    else
      let v, t = f t in
      go t (v :: acc) (remaining - 1)
  in
  go t [] n

let test_rng_deterministic () =
  let xs = stream 20 Rng.next (Rng.make 42) in
  let ys = stream 20 Rng.next (Rng.make 42) in
  check bool_c "same stream" true (xs = ys)

let test_rng_pure_state () =
  (* The state is a value: drawing from it twice gives the same answer,
     and never perturbs an earlier state. *)
  let t = Rng.make 42 in
  let a, t' = Rng.next t in
  let b, _ = Rng.next t in
  check bool_c "replayable" true (a = b);
  let c, _ = Rng.next t' in
  check bool_c "successor advances" false (a = c)

let test_rng_seed_sensitivity () =
  let a, _ = Rng.next (Rng.make 1) and b, _ = Rng.next (Rng.make 2) in
  check bool_c "different streams" false (a = b)

let test_rng_int_bounds () =
  List.iter
    (fun v -> check bool_c "in range" true (v >= 0 && v < 13))
    (stream 1000 (fun t -> Rng.int t 13) (Rng.make 7))

let test_rng_int_invalid () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int (Rng.make 7) 0))

let test_rng_float_bounds () =
  List.iter
    (fun v -> check bool_c "in range" true (v >= 0. && v < 2.5))
    (stream 1000 (fun t -> Rng.float t 2.5) (Rng.make 9))

let test_rng_sample_distinct () =
  let xs, _ = Rng.sample_distinct (Rng.make 11) 10 ~exclude:3 ~count:9 in
  check int_c "count" 9 (List.length xs);
  check int_c "distinct" 9 (List.length (List.sort_uniq compare xs));
  check bool_c "exclusion respected" false (List.mem 3 xs)

let test_rng_sample_too_many () =
  Alcotest.check_raises "too many"
    (Invalid_argument "Rng.sample_distinct: not enough values") (fun () ->
      ignore (Rng.sample_distinct (Rng.make 11) 5 ~exclude:0 ~count:5))

let test_rng_pick () =
  let arr = [| "a"; "b"; "c" |] in
  List.iter
    (fun v -> check bool_c "picks member" true (Array.mem v arr))
    (stream 50 (fun t -> Rng.pick t arr) (Rng.make 3))

(* ------------------------------------------------------------------ *)
(* Registry and specs                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_complete () =
  check int_c "six benchmarks" 6 (List.length Registry.all);
  check
    Alcotest.(list string)
    "figure 10 order"
    [ "D26_media"; "D36_4"; "D36_6"; "D36_8"; "D35_bott"; "D38_tvopd" ]
    Registry.names

let test_registry_find () =
  check bool_c "exact" true (Registry.find "D36_8" <> None);
  check bool_c "case-insensitive" true (Registry.find "d26_MEDIA" <> None);
  check bool_c "missing" true (Registry.find "nope" = None)

let test_spec_core_counts () =
  let expect = [ ("D26_media", 26); ("D36_4", 36); ("D36_6", 36); ("D36_8", 36);
                 ("D35_bott", 35); ("D38_tvopd", 38) ] in
  List.iter
    (fun (name, n) ->
      match Registry.find name with
      | Some s -> check int_c name n s.Spec.n_cores
      | None -> Alcotest.failf "missing %s" name)
    expect

let test_all_benchmarks_well_formed () =
  List.iter
    (fun s ->
      let t = s.Spec.build () in
      check int_c (s.Spec.name ^ " core count") s.Spec.n_cores (Traffic.n_cores t);
      check bool_c (s.Spec.name ^ " has flows") true (Traffic.n_flows t > 0);
      check bool_c
        (s.Spec.name ^ " positive bandwidths")
        true
        (List.for_all
           (fun (f : Traffic.flow) -> f.Traffic.bandwidth > 0.)
           (Traffic.flows t)))
    Registry.all

let test_builds_are_reproducible () =
  List.iter
    (fun s ->
      let a = s.Spec.build () and b = s.Spec.build () in
      let row (f : Traffic.flow) =
        (Ids.Core.to_int f.Traffic.src, Ids.Core.to_int f.Traffic.dst, f.Traffic.bandwidth)
      in
      check bool_c (s.Spec.name ^ " reproducible") true
        (List.map row (Traffic.flows a) = List.map row (Traffic.flows b)))
    Registry.all

let test_d36_out_degrees () =
  List.iter
    (fun (name, k) ->
      match Registry.find name with
      | None -> Alcotest.failf "missing %s" name
      | Some s ->
          let t = s.Spec.build () in
          check int_c (name ^ " flow count") (36 * k) (Traffic.n_flows t);
          for src = 0 to 35 do
            let outs = Traffic.flows_from t (Ids.Core.of_int src) in
            check int_c (Printf.sprintf "%s core %d fan-out" name src) k
              (List.length outs)
          done)
    [ ("D36_4", 4); ("D36_6", 6); ("D36_8", 8) ]

let test_d35_bottleneck_structure () =
  match Registry.find "D35_bott" with
  | None -> Alcotest.fail "missing"
  | Some s ->
      let t = s.Spec.build () in
      (* The three memories each receive from at least 10 processors. *)
      List.iter
        (fun m ->
          let inbound = Traffic.flows_to t (Ids.Core.of_int m) in
          check bool_c
            (Printf.sprintf "memory %d is a hotspot" m)
            true
            (List.length inbound >= 10))
        [ 32; 33; 34 ]

let test_d26_memory_hotspots () =
  match Registry.find "D26_media" with
  | None -> Alcotest.fail "missing"
  | Some s ->
      let t = s.Spec.build () in
      (* DRAM0 (core 16) serves the video pipeline and CPU. *)
      check bool_c "dram0 busy" true
        (List.length (Traffic.flows_to t (Ids.Core.of_int 16)) >= 3);
      check bool_c "dram0 responds" true
        (List.length (Traffic.flows_from t (Ids.Core.of_int 16)) >= 3)

let test_d38_pipelines () =
  match Registry.find "D38_tvopd" with
  | None -> Alcotest.fail "missing"
  | Some s ->
      let t = s.Spec.build () in
      (* Both pipelines are connected stage-to-stage. *)
      let has_flow a b =
        List.exists
          (fun (f : Traffic.flow) -> Ids.Core.to_int f.Traffic.dst = b)
          (Traffic.flows_from t (Ids.Core.of_int a))
      in
      for stage = 1 to 16 do
        check bool_c (Printf.sprintf "A stage %d->%d" stage (stage + 1)) true
          (has_flow stage (stage + 1))
      done;
      for stage = 18 to 34 do
        check bool_c (Printf.sprintf "B stage %d->%d" stage (stage + 1)) true
          (has_flow stage (stage + 1))
      done

(* ------------------------------------------------------------------ *)
(* Synthetic patterns                                                  *)
(* ------------------------------------------------------------------ *)

let test_synthetic_uniform () =
  let t = Synthetic.uniform ~n_cores:10 ~flows_per_core:3 ~seed:1 in
  check int_c "flow count" 30 (Traffic.n_flows t);
  for src = 0 to 9 do
    check int_c "fan-out" 3 (List.length (Traffic.flows_from t (Ids.Core.of_int src)))
  done;
  let t' = Synthetic.uniform ~n_cores:10 ~flows_per_core:3 ~seed:1 in
  let rows x =
    List.map
      (fun (f : Traffic.flow) ->
        (Ids.Core.to_int f.Traffic.src, Ids.Core.to_int f.Traffic.dst))
      (Traffic.flows x)
  in
  check bool_c "seeded reproducible" true (rows t = rows t');
  Alcotest.check_raises "too dense"
    (Invalid_argument "Synthetic.uniform: flows_per_core >= n_cores") (fun () ->
      ignore (Synthetic.uniform ~n_cores:3 ~flows_per_core:3 ~seed:1))

let test_synthetic_transpose () =
  let t = Synthetic.transpose ~n_cores:9 ~bandwidth:10. in
  (* k = 3: core i -> 3i mod 9; cores 0, 4, 8 map to themselves... 0->0
     silent, 4->12 mod 9=3, 8->24 mod 9=6. *)
  check bool_c "0 silent" true (Traffic.flows_from t (Ids.Core.of_int 0) = []);
  check int_c "4 targets 3" 3
    (Ids.Core.to_int
       (List.hd (Traffic.flows_from t (Ids.Core.of_int 4))).Traffic.dst)

let test_synthetic_bit_complement () =
  let t = Synthetic.bit_complement ~n_cores:5 ~bandwidth:10. in
  (* 5 cores: middle core 2 silent, others paired. *)
  check int_c "four flows" 4 (Traffic.n_flows t);
  check bool_c "middle silent" true (Traffic.flows_from t (Ids.Core.of_int 2) = []);
  check int_c "0 pairs with 4" 4
    (Ids.Core.to_int
       (List.hd (Traffic.flows_from t (Ids.Core.of_int 0))).Traffic.dst)

let test_synthetic_hotspot () =
  let t = Synthetic.hotspot ~n_cores:10 ~n_hotspots:2 ~background:5. ~hotspot_bw:50. in
  (* Hotspots are cores 8 and 9; each receives from 4 senders. *)
  check int_c "hotspot 8 inbound" 4
    (List.length (Traffic.flows_to t (Ids.Core.of_int 8)));
  check int_c "hotspot 9 inbound" 4
    (List.length (Traffic.flows_to t (Ids.Core.of_int 9)));
  Alcotest.check_raises "range"
    (Invalid_argument "Synthetic.hotspot: n_hotspots out of range") (fun () ->
      ignore (Synthetic.hotspot ~n_cores:4 ~n_hotspots:4 ~background:1. ~hotspot_bw:1.))

let test_synthetic_neighbour_ring_shape () =
  let t = Synthetic.neighbour_ring ~n_cores:6 ~bandwidth:10. in
  check int_c "one flow per core" 6 (Traffic.n_flows t);
  check int_c "wraps" 0
    (Ids.Core.to_int
       (List.hd (Traffic.flows_from t (Ids.Core.of_int 5))).Traffic.dst)

let test_synthetic_ring_deadlocks () =
  (* End-to-end: distance-2 ring traffic (every flow takes two hops) on
     a unidirectional ring closes the canonical CDG cycle; neighbour
     traffic alone would not (1-hop flows create no dependencies). *)
  let n = 5 in
  let traffic = Traffic.create ~n_cores:n in
  for i = 0 to n - 1 do
    ignore
      (Traffic.add_flow traffic ~src:(Ids.Core.of_int i)
         ~dst:(Ids.Core.of_int ((i + 2) mod n))
         ~bandwidth:10.)
  done;
  let topo = Noc_model.Topology.create ~n_switches:n in
  for i = 0 to n - 1 do
    ignore
      (Noc_model.Topology.add_link topo ~src:(Ids.Switch.of_int i)
         ~dst:(Ids.Switch.of_int ((i + 1) mod n)))
  done;
  let net =
    Noc_model.Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        Ids.Switch.of_int (Ids.Core.to_int c))
  in
  (match Noc_model.Routing.route_all net with Ok () -> () | Error e -> Alcotest.fail e);
  check bool_c "cyclic CDG" false (Noc_deadlock.Removal.is_deadlock_free net);
  let report = Noc_deadlock.Removal.run net in
  check bool_c "removable" true report.Noc_deadlock.Removal.deadlock_free

let test_synthetic_spec_wrapper () =
  let spec =
    Synthetic.spec_of ~name:"uniform10" ~description:"test" ~n_cores:10 (fun () ->
        Synthetic.uniform ~n_cores:10 ~flows_per_core:2 ~seed:7)
  in
  check bool_c "buildable" true (Traffic.n_flows (spec.Spec.build ()) = 20)

(* ------------------------------------------------------------------ *)
(* Bandwidth-proportional workloads                                    *)
(* ------------------------------------------------------------------ *)

let workload_net () =
  (* Two flows, one 10x heavier, on a 3-switch chain. *)
  let topo = Noc_model.Topology.create ~n_switches:3 in
  let l0 = Noc_model.Topology.add_link topo ~src:(Ids.Switch.of_int 0) ~dst:(Ids.Switch.of_int 1) in
  let l1 = Noc_model.Topology.add_link topo ~src:(Ids.Switch.of_int 1) ~dst:(Ids.Switch.of_int 2) in
  let traffic = Traffic.create ~n_cores:3 in
  let heavy = Traffic.add_flow traffic ~src:(Ids.Core.of_int 0) ~dst:(Ids.Core.of_int 1) ~bandwidth:1000. in
  let light = Traffic.add_flow traffic ~src:(Ids.Core.of_int 1) ~dst:(Ids.Core.of_int 2) ~bandwidth:100. in
  let net =
    Noc_model.Network.make ~topology:topo ~traffic ~mapping:(fun c ->
        Ids.Switch.of_int (Ids.Core.to_int c))
  in
  Noc_model.Network.set_route net heavy [ Noc_model.Channel.make l0 0 ];
  Noc_model.Network.set_route net light [ Noc_model.Channel.make l1 0 ];
  (net, heavy, light)

let count_for flow packets =
  List.length
    (List.filter (fun (p : Noc_sim.Packet.t) -> Ids.Flow.equal p.Noc_sim.Packet.flow flow) packets)

let test_workload_proportional () =
  let net, heavy, light = workload_net () in
  let packets =
    Workloads.bandwidth_proportional net ~packet_length:4 ~duration:1000
      ~capacity_mbps:4000. ~seed:5
  in
  let h = count_for heavy packets and l = count_for light packets in
  (* heavy: 1000/4000 * 1000 / 4 = 62 packets; light: ~6. *)
  check bool_c "roughly 10x ratio" true (h >= 5 * l && l >= 1);
  List.iter
    (fun (p : Noc_sim.Packet.t) ->
      check bool_c "within duration" true (p.Noc_sim.Packet.inject_at < 1000))
    packets

let test_workload_deterministic () =
  let net, _, _ = workload_net () in
  let gen () =
    List.map
      (fun (p : Noc_sim.Packet.t) -> (p.Noc_sim.Packet.id, p.Noc_sim.Packet.inject_at))
      (Workloads.bandwidth_proportional net ~packet_length:4 ~duration:500
         ~capacity_mbps:4000. ~seed:9)
  in
  check bool_c "same schedule" true (gen () = gen ())

let test_workload_simulates () =
  let net, _, _ = workload_net () in
  let packets =
    Workloads.bandwidth_proportional net ~packet_length:4 ~duration:300
      ~capacity_mbps:4000. ~seed:3
  in
  match Noc_sim.Engine.run net packets with
  | Noc_sim.Engine.Completed s ->
      check int_c "all delivered" (List.length packets) s.Noc_sim.Stats.delivered
  | Noc_sim.Engine.Deadlocked _ | Noc_sim.Engine.Timed_out _ ->
      Alcotest.fail "chain cannot deadlock"

let test_workload_validation () =
  let net, _, _ = workload_net () in
  Alcotest.check_raises "duration"
    (Invalid_argument "Workloads.bandwidth_proportional: duration < 1") (fun () ->
      ignore
        (Workloads.bandwidth_proportional net ~packet_length:4 ~duration:0
           ~capacity_mbps:4000. ~seed:1))

let test_offered_load () =
  let net, _, _ = workload_net () in
  (* (1000 + 100) / 4000 / 2 flows = 0.1375 flits/cycle/flow. *)
  check (Alcotest.float 1e-9) "mean rate" 0.1375
    (Workloads.offered_load net ~capacity_mbps:4000.)

(* Workload specs: the first-class descriptions behind Simulate jobs. *)

let all_default_specs =
  Workloads.
    [
      default_burst; default_uniform; default_hotspot; default_transpose;
      default_bursty; default_bandwidth;
    ]

let test_spec_kinds_round_trip () =
  List.iter
    (fun spec ->
      match Workloads.of_kind (Workloads.kind spec) with
      | Some d ->
          check bool_c (Workloads.kind spec) true
            (Workloads.kind d = Workloads.kind spec)
      | None -> Alcotest.fail (Workloads.kind spec ^ " not registered"))
    all_default_specs;
  check int_c "kinds list complete" (List.length all_default_specs)
    (List.length Workloads.kinds);
  check bool_c "unknown kind" true (Workloads.of_kind "zipf" = None)

let test_spec_generators_deterministic () =
  let net, _, _ = workload_net () in
  List.iter
    (fun spec ->
      let shape () =
        List.map
          (fun (p : Noc_sim.Packet.t) ->
            ( p.Noc_sim.Packet.id,
              p.Noc_sim.Packet.inject_at,
              p.Noc_sim.Packet.length ))
          (Workloads.generate net spec)
      in
      check bool_c (Workloads.kind spec ^ ": nonempty") true (shape () <> []);
      check bool_c
        (Workloads.kind spec ^ ": deterministic")
        true
        (shape () = shape ()))
    all_default_specs

let test_spec_seed_changes_schedule () =
  let net, _, _ = workload_net () in
  let times seed =
    List.map
      (fun (p : Noc_sim.Packet.t) -> p.Noc_sim.Packet.inject_at)
      (Workloads.generate net (Workloads.with_seed Workloads.default_uniform seed))
  in
  check bool_c "different seeds, different schedules" true (times 1 <> times 2)

let test_hotspot_targets_heaviest_destination () =
  (* Core 1 receives 1000 MB/s against core 2's 100, so the flow into it
     is the hotspot and injects [factor] times more packets. *)
  let net, heavy, light = workload_net () in
  let packets = Workloads.generate net Workloads.default_hotspot in
  let h = count_for heavy packets and l = count_for light packets in
  check bool_c "hotspot flow denser" true (h >= 2 * l && l >= 1)

let test_transpose_wave_schedule () =
  (* Destination-major order: the flow into core 1 leads each interval,
     the flow into core 2 is phase-shifted half an interval behind. *)
  let net, heavy, light = workload_net () in
  let packets = Workloads.generate net Workloads.default_transpose in
  check int_c "flows x packets_per_flow" 8 (List.length packets);
  let at flow =
    List.sort compare
      (List.filter_map
         (fun (p : Noc_sim.Packet.t) ->
           if Ids.Flow.equal p.Noc_sim.Packet.flow flow then
             Some p.Noc_sim.Packet.inject_at
           else None)
         packets)
  in
  check Alcotest.(list int) "leading flow on the grid" [ 0; 32; 64; 96 ]
    (at heavy);
  check Alcotest.(list int) "trailing flow phase-shifted" [ 16; 48; 80; 112 ]
    (at light)

let test_bursty_request_response_pairs () =
  let net, _, _ = workload_net () in
  let packets = Workloads.generate net Workloads.default_bursty in
  let lengths =
    List.map (fun (p : Noc_sim.Packet.t) -> p.Noc_sim.Packet.length) packets
  in
  check bool_c "only request/response lengths" true
    (List.for_all (fun l -> l = 1 || l = 8) lengths);
  check int_c "every request paired with a response"
    (List.length (List.filter (( = ) 1) lengths))
    (List.length (List.filter (( = ) 8) lengths));
  check bool_c "within duration" true
    (List.for_all
       (fun (p : Noc_sim.Packet.t) -> p.Noc_sim.Packet.inject_at < 512)
       packets)

let test_spec_validate_and_saturation () =
  let bad =
    Workloads.Uniform_random
      { packet_length = 0; duration = 0; rate = 0.; seed = 1 }
  in
  check int_c "three errors" 3 (List.length (Workloads.validate bad));
  check bool_c "defaults valid" true
    (List.for_all (fun s -> Workloads.validate s = []) all_default_specs);
  check bool_c "defaults below saturation" true
    (List.for_all
       (fun s -> Workloads.saturation_warning s = None)
       all_default_specs);
  (match Workloads.at_rate Workloads.default_uniform 1.5 with
  | Some w ->
      check bool_c "oversaturated rate flagged" true
        (Workloads.saturation_warning w <> None);
      check (Alcotest.option (Alcotest.float 1e-9)) "rate updated" (Some 1.5)
        (Workloads.injection_rate w)
  | None -> Alcotest.fail "uniform is rate-parameterized");
  check bool_c "burst has no rate knob" true
    (Workloads.at_rate Workloads.default_burst 0.5 = None)

let test_flows_of_table () =
  let t = Spec.flows_of_table ~n_cores:3 [ (0, 1, 10.); (1, 2, 20.) ] in
  check int_c "two flows" 2 (Traffic.n_flows t);
  check (Alcotest.float 1e-9) "bandwidths" 30. (Traffic.total_bandwidth t)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "noc_benchmarks"
    [
      ( "rng",
        [
          tc "deterministic" test_rng_deterministic;
          tc "pure state" test_rng_pure_state;
          tc "seed sensitivity" test_rng_seed_sensitivity;
          tc "int bounds" test_rng_int_bounds;
          tc "int invalid" test_rng_int_invalid;
          tc "float bounds" test_rng_float_bounds;
          tc "sample distinct" test_rng_sample_distinct;
          tc "sample too many" test_rng_sample_too_many;
          tc "pick" test_rng_pick;
        ] );
      ( "registry",
        [
          tc "complete" test_registry_complete;
          tc "find" test_registry_find;
          tc "core counts" test_spec_core_counts;
        ] );
      ( "specs",
        [
          tc "well formed" test_all_benchmarks_well_formed;
          tc "reproducible" test_builds_are_reproducible;
          tc "D36_k fan-out" test_d36_out_degrees;
          tc "D35 bottleneck" test_d35_bottleneck_structure;
          tc "D26 memory hotspots" test_d26_memory_hotspots;
          tc "D38 pipelines" test_d38_pipelines;
          tc "flows_of_table" test_flows_of_table;
        ] );
      ( "workloads",
        [
          tc "bandwidth proportional" test_workload_proportional;
          tc "deterministic" test_workload_deterministic;
          tc "runs in the simulator" test_workload_simulates;
          tc "validation" test_workload_validation;
          tc "offered load" test_offered_load;
          tc "spec kinds round-trip" test_spec_kinds_round_trip;
          tc "spec generators deterministic" test_spec_generators_deterministic;
          tc "seed changes the schedule" test_spec_seed_changes_schedule;
          tc "hotspot targets heaviest destination"
            test_hotspot_targets_heaviest_destination;
          tc "transpose wave schedule" test_transpose_wave_schedule;
          tc "bursty request/response pairs" test_bursty_request_response_pairs;
          tc "spec validation and saturation" test_spec_validate_and_saturation;
        ] );
      ( "synthetic",
        [
          tc "uniform" test_synthetic_uniform;
          tc "transpose" test_synthetic_transpose;
          tc "bit complement" test_synthetic_bit_complement;
          tc "hotspot" test_synthetic_hotspot;
          tc "neighbour ring shape" test_synthetic_neighbour_ring_shape;
          tc "ring deadlocks and is repaired" test_synthetic_ring_deadlocks;
          tc "spec wrapper" test_synthetic_spec_wrapper;
        ] );
    ]
