open Noc_model
open Noc_deadlock

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let ch = Fixtures.ch
let sw = Fixtures.sw
let core = Fixtures.core

let paper_cycle = [ ch 0; ch 1; ch 2; ch 3 ]

(* ------------------------------------------------------------------ *)
(* Cost tables (Algorithm 2 / Table 1)                                 *)
(* ------------------------------------------------------------------ *)

let test_table1_forward () =
  let ring = Fixtures.paper_ring () in
  let t = Cost_table.forward ring.Fixtures.net paper_cycle in
  (* Table 1 of the paper, rows F1..F4, columns D1..D4. *)
  let expected =
    [| [| 1; 2; 0; 0 |]; [| 0; 0; 1; 0 |]; [| 0; 0; 0; 1 |]; [| 1; 0; 0; 0 |] |]
  in
  check int_c "4 rows" 4 (Array.length t.Cost_table.costs);
  Array.iteri
    (fun row expected_row ->
      Array.iteri
        (fun col v ->
          check int_c
            (Printf.sprintf "cost F%d D%d" (row + 1) (col + 1))
            v
            t.Cost_table.costs.(row).(col))
        expected_row)
    expected;
  check Alcotest.(array int) "MAX row" [| 1; 2; 1; 1 |] t.Cost_table.max_costs;
  check int_c "f_cost" 1 t.Cost_table.best_cost;
  check int_c "f_pos = D1" 0 t.Cost_table.best_pos

let test_table1_backward () =
  let ring = Fixtures.paper_ring () in
  let t = Cost_table.backward ring.Fixtures.net paper_cycle in
  (* Walking routes in reverse: F1 prices D1 at 2 (duplicate L2, L3
     after the edge head? no: L2 then rest of its path inside the
     cycle, i.e. L2 and L3), D2 at 1 (just L3).  F2 prices D3 at 1,
     F3 prices D4 at 1, F4 prices D1 at 1. *)
  let expected =
    [| [| 2; 1; 0; 0 |]; [| 0; 0; 1; 0 |]; [| 0; 0; 0; 1 |]; [| 1; 0; 0; 0 |] |]
  in
  Array.iteri
    (fun row expected_row ->
      Array.iteri
        (fun col v ->
          check int_c
            (Printf.sprintf "bwd cost F%d D%d" (row + 1) (col + 1))
            v
            t.Cost_table.costs.(row).(col))
        expected_row)
    expected;
  check Alcotest.(array int) "bwd MAX" [| 2; 1; 1; 1 |] t.Cost_table.max_costs;
  check int_c "b_cost" 1 t.Cost_table.best_cost;
  check int_c "b_pos = D2" 1 t.Cost_table.best_pos

let test_cost_table_empty_cycle_rejected () =
  let ring = Fixtures.paper_ring () in
  Alcotest.check_raises "empty cycle" (Invalid_argument "Cost_table: empty cycle")
    (fun () -> ignore (Cost_table.forward ring.Fixtures.net []))

let test_cost_table_dependency_labels () =
  let ring = Fixtures.paper_ring () in
  let t = Cost_table.forward ring.Fixtures.net paper_cycle in
  let d1 = Cost_table.dependency t 0 in
  check bool_c "D1 = (L1, L2)" true
    (Channel.equal (fst d1) (ch 0) && Channel.equal (snd d1) (ch 1));
  let d4 = Cost_table.dependency t 3 in
  check bool_c "D4 wraps to (L4, L1)" true
    (Channel.equal (fst d4) (ch 3) && Channel.equal (snd d4) (ch 0))

let test_channels_to_duplicate_forward () =
  let ring = Fixtures.paper_ring () in
  let t = Cost_table.forward ring.Fixtures.net paper_cycle in
  (* Breaking D2 = (L2, L3) forward for F1 duplicates L1 and L2. *)
  let dups = Cost_table.channels_to_duplicate t ring.Fixtures.flows.(0) 1 in
  check int_c "two channels" 2 (List.length dups);
  check bool_c "L1 first" true (Channel.equal (List.nth dups 0) (ch 0));
  check bool_c "L2 second" true (Channel.equal (List.nth dups 1) (ch 1));
  (* F2 does not create D2. *)
  check int_c "F2 untouched" 0
    (List.length (Cost_table.channels_to_duplicate t ring.Fixtures.flows.(1) 1))

let test_channels_to_duplicate_backward () =
  let ring = Fixtures.paper_ring () in
  let t = Cost_table.backward ring.Fixtures.net paper_cycle in
  (* Breaking D1 = (L1, L2) backward for F1 duplicates L2 and L3. *)
  let dups = Cost_table.channels_to_duplicate t ring.Fixtures.flows.(0) 0 in
  check int_c "two channels" 2 (List.length dups);
  check bool_c "L2 first" true (Channel.equal (List.nth dups 0) (ch 1));
  check bool_c "L3 second" true (Channel.equal (List.nth dups 1) (ch 2))

let test_cost_table_flow_selection () =
  (* A flow crossing the cycle through a single channel must not get a
     row. *)
  let ring = Fixtures.paper_ring () in
  let t = Cost_table.forward ring.Fixtures.net paper_cycle in
  check int_c "only flows with >1 cycle channel" 4 (Array.length t.Cost_table.flows)

(* ------------------------------------------------------------------ *)
(* Break cycle                                                         *)
(* ------------------------------------------------------------------ *)

let test_break_forward_d1 () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let before = Network.copy net in
  let t = Cost_table.forward net paper_cycle in
  let change = Break_cycle.apply net t in
  check int_c "one VC added" 1 (List.length change.Break_cycle.added_channels);
  check int_c "two flows rerouted" 2 (List.length change.Break_cycle.rerouted_flows);
  check bool_c "physical routes preserved" true
    (Validate.routes_equivalent ~before ~after:net);
  Fixtures.check_valid "after break" net;
  check bool_c "now deadlock-free" true (Removal.is_deadlock_free net)

let test_break_updates_topology () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let t = Cost_table.forward net paper_cycle in
  ignore (Break_cycle.apply net t);
  check int_c "L1 now has 2 VCs" 2
    (Topology.vc_count (Network.topology net) (Fixtures.lk 0));
  check int_c "extra VCs counted" 1 (Topology.extra_vcs (Network.topology net))

let test_break_backward_d2 () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let t = Cost_table.backward net paper_cycle in
  let change = Break_cycle.apply net t in
  (* Backward best is D2 at cost 1: duplicate L3 for F1 only. *)
  check int_c "one VC" 1 (List.length change.Break_cycle.added_channels);
  check int_c "one flow" 1 (List.length change.Break_cycle.rerouted_flows);
  Fixtures.check_valid "after backward break" net;
  check bool_c "deadlock-free" true (Removal.is_deadlock_free net)

let test_break_shares_duplicates () =
  (* Breaking D2 forward reroutes F1 (needs L1,L2) and nobody else; use
     D1 instead where F1 and F4 share the single L1 duplicate. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let t = Cost_table.forward net paper_cycle in
  let change = Break_cycle.apply_at net t 0 in
  check int_c "shared single duplicate" 1 (List.length change.Break_cycle.added_channels);
  check int_c "both creators rerouted" 2 (List.length change.Break_cycle.rerouted_flows);
  (* Both F1 and F4 must now start on the same new channel L1'. *)
  let r1 = Network.route net ring.Fixtures.flows.(0) in
  let r4 = Network.route net ring.Fixtures.flows.(3) in
  check bool_c "same duplicate head" true
    (Channel.equal (List.hd r1) (List.hd r4));
  check int_c "duplicate vc" 1 (Channel.vc (List.hd r1))

let test_break_bad_column () =
  let ring = Fixtures.paper_ring () in
  let t = Cost_table.forward ring.Fixtures.net paper_cycle in
  Alcotest.check_raises "range" (Invalid_argument "Break_cycle.apply_at: bad column")
    (fun () -> ignore (Break_cycle.apply_at ring.Fixtures.net t 7))

let test_break_figure7_chain () =
  (* Breaking D2 = (L2, L3) must duplicate BOTH L1 and L2 for F1;
     duplicating only L2 would re-close the cycle through L1 -> L2'
     (Figure 7 of the paper).  We verify the safe behaviour. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let t = Cost_table.forward net paper_cycle in
  let change = Break_cycle.apply_at net t 1 in
  check int_c "two duplicates" 2 (List.length change.Break_cycle.added_channels);
  check bool_c "deadlock-free" true (Removal.is_deadlock_free net);
  let r1 = Network.route net ring.Fixtures.flows.(0) in
  check bool_c "F1 = L1' L2' L3" true
    (List.for_all2 Channel.equal r1 [ ch ~vc:1 0; ch ~vc:1 1; ch 2 ])

(* ------------------------------------------------------------------ *)
(* Removal driver (Algorithm 1)                                        *)
(* ------------------------------------------------------------------ *)

let test_removal_paper_example () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let before = Network.copy net in
  let report = Removal.run net in
  check bool_c "deadlock-free" true report.Removal.deadlock_free;
  check int_c "one iteration" 1 report.Removal.iterations;
  check int_c "one VC added (paper adds L1')" 1 report.Removal.vcs_added;
  check bool_c "physical routes preserved" true
    (Validate.routes_equivalent ~before ~after:net);
  Fixtures.check_valid "after removal" net;
  check bool_c "verified" true (Removal.is_deadlock_free net)

let test_removal_idempotent () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Removal.run net);
  let report = Removal.run net in
  check int_c "nothing to do" 0 report.Removal.iterations;
  check int_c "no VCs" 0 report.Removal.vcs_added

let test_removal_acyclic_input () =
  let net = Fixtures.xy_mesh_2x2 () in
  let report = Removal.run net in
  check int_c "zero iterations" 0 report.Removal.iterations;
  check int_c "zero VCs" 0 report.Removal.vcs_added;
  check bool_c "free" true report.Removal.deadlock_free

let test_removal_forward_only () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let report = Removal.run ~directions:[ Cost_table.Forward ] net in
  check bool_c "forward-only still works" true report.Removal.deadlock_free;
  check bool_c "verified" true (Removal.is_deadlock_free net)

let test_removal_backward_only () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let report = Removal.run ~directions:[ Cost_table.Backward ] net in
  check bool_c "backward-only still works" true report.Removal.deadlock_free;
  check bool_c "verified" true (Removal.is_deadlock_free net)

let test_removal_any_cycle_heuristic () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let report = Removal.run ~heuristic:Removal.Any_cycle_first net in
  check bool_c "any-cycle heuristic works" true report.Removal.deadlock_free

(* Two overlapping cycles: a figure-eight on 6 links.  Ring A uses
   L0 L1 L2, ring B uses L3 L4 L5; they share switch 0 via flows that
   couple the two rings. *)
let double_ring () =
  let topo = Topology.create ~n_switches:3 in
  (* Triangle 0->1->2->0, doubled. *)
  let mk a b = ignore (Topology.add_link topo ~src:(sw a) ~dst:(sw b)) in
  mk 0 1;
  mk 1 2;
  mk 2 0;
  mk 0 2;
  mk 2 1;
  mk 1 0;
  let traffic = Traffic.create ~n_cores:3 in
  let add a b = ignore (Traffic.add_flow traffic ~src:(core a) ~dst:(core b) ~bandwidth:10.) in
  (* Flows that wrap both triangles far enough to close both cycles. *)
  add 0 2;
  add 1 0;
  add 2 1;
  add 0 1;
  add 2 0;
  add 1 2;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  (* Clockwise flows take 2 hops (closing cycle A), counter-clockwise
     flows take 2 hops the other way (closing cycle B). *)
  let l a b =
    match Topology.find_links topo ~src:(sw a) ~dst:(sw b) with
    | lk :: _ -> Channel.make lk.Topology.id 0
    | [] -> failwith "missing"
  in
  let flows = Array.of_list (Traffic.flows traffic) in
  Network.set_route net flows.(0).Traffic.id [ l 0 1; l 1 2 ];
  Network.set_route net flows.(1).Traffic.id [ l 1 2; l 2 0 ];
  Network.set_route net flows.(2).Traffic.id [ l 2 0; l 0 1 ];
  Network.set_route net flows.(3).Traffic.id [ l 0 2; l 2 1 ];
  Network.set_route net flows.(4).Traffic.id [ l 2 1; l 1 0 ];
  Network.set_route net flows.(5).Traffic.id [ l 1 0; l 0 2 ];
  net

let test_removal_double_ring () =
  let net = double_ring () in
  let before = Network.copy net in
  check bool_c "initially cyclic" false (Removal.is_deadlock_free net);
  let report = Removal.run net in
  check bool_c "free" true report.Removal.deadlock_free;
  check bool_c "two cycles need two breaks" true (report.Removal.iterations >= 2);
  check bool_c "routes preserved" true
    (Validate.routes_equivalent ~before ~after:net);
  Fixtures.check_valid "double ring" net

let test_removal_iteration_cap () =
  let net = double_ring () in
  let report = Removal.run ~max_iterations:1 net in
  check bool_c "cap reported" false report.Removal.deadlock_free;
  check int_c "stopped at cap" 1 report.Removal.iterations;
  Fixtures.check_valid "still valid at cap" net

(* ------------------------------------------------------------------ *)
(* Resource ordering baseline                                          *)
(* ------------------------------------------------------------------ *)

let test_resource_ordering_ring_greedy () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let before = Network.copy net in
  let r = Resource_ordering.apply net in
  check bool_c "acyclic afterwards" true (Removal.is_deadlock_free net);
  check bool_c "routes preserved" true
    (Validate.routes_equivalent ~before ~after:net);
  Fixtures.check_valid "after ordering" net;
  check bool_c "some VCs added" true (r.Resource_ordering.vcs_added >= 1)

let test_resource_ordering_hop_index () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let r = Resource_ordering.apply ~strategy:Resource_ordering.Hop_index net in
  check bool_c "acyclic" true (Removal.is_deadlock_free net);
  (* Longest route has 3 hops -> 3 classes. *)
  check int_c "classes = max route length" 3 r.Resource_ordering.classes_used;
  Fixtures.check_valid "after hop-index" net

let test_resource_ordering_monotone_routes () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Resource_ordering.apply net);
  let n = Topology.n_links (Network.topology net) in
  let number c = (Channel.vc c * n) + Ids.Link.to_int (Channel.link c) in
  List.iter
    (fun (_, route) ->
      List.iter
        (fun (a, b) ->
          check bool_c "strictly increasing" true (number a < number b))
        (Route.consecutive_pairs route))
    (Network.routes net)

let test_resource_ordering_costlier_than_removal () =
  (* On the 4-link micro example greedy ordering happens to tie removal
     at one extra VC (both pay for the single wrap-around); the strict
     "ordering needs far more" claim is exercised at benchmark scale in
     the experiment tests.  Here we pin the tie and the hop-index
     variant's strictly higher price. *)
  let removal_net = (Fixtures.paper_ring ()).Fixtures.net in
  let greedy_net = (Fixtures.paper_ring ()).Fixtures.net in
  let hop_net = (Fixtures.paper_ring ()).Fixtures.net in
  let rr = Removal.run removal_net in
  let rg = Resource_ordering.apply greedy_net in
  let rh = Resource_ordering.apply ~strategy:Resource_ordering.Hop_index hop_net in
  check bool_c "removal never worse" true
    (rr.Removal.vcs_added <= rg.Resource_ordering.vcs_added);
  check bool_c "hop-index strictly worse" true
    (rr.Removal.vcs_added < rh.Resource_ordering.vcs_added)

(* ------------------------------------------------------------------ *)
(* Physical-link resource variant                                      *)
(* ------------------------------------------------------------------ *)

let test_physical_break_adds_link () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let links_before = Topology.n_links (Network.topology net) in
  let t = Cost_table.forward net paper_cycle in
  let change = Break_cycle.apply ~resource:Break_cycle.Physical_link net t in
  check int_c "one new physical link" (links_before + 1)
    (Topology.n_links (Network.topology net));
  check bool_c "duplicate rides VC 0" true
    (List.for_all (fun c -> Channel.vc c = 0) change.Break_cycle.added_channels);
  check bool_c "now deadlock-free" true (Removal.is_deadlock_free net);
  Fixtures.check_valid "physical break" net

let test_physical_removal_preserves_switch_paths () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let before = Network.copy net in
  let report = Removal.run ~resource:Break_cycle.Physical_link net in
  check bool_c "free" true report.Removal.deadlock_free;
  check int_c "one resource added" 1 report.Removal.vcs_added;
  check bool_c "switch paths preserved" true
    (Validate.switch_paths_equivalent ~before ~after:net);
  (* The duplicate is a new link between the same switches, so no link
     carries more than one VC. *)
  List.iter
    (fun (l : Topology.link) ->
      check int_c "single VC everywhere" 1
        (Topology.vc_count (Network.topology net) l.Topology.id))
    (Topology.links (Network.topology net))

let test_physical_removal_on_benchmark () =
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> Alcotest.fail "missing benchmark"
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Noc_synth.Custom.synthesize_exn traffic ~n_switches:14 in
  let before = Network.copy net in
  let report = Removal.run ~resource:Break_cycle.Physical_link net in
  check bool_c "free" true report.Removal.deadlock_free;
  check bool_c "switch paths preserved" true
    (Validate.switch_paths_equivalent ~before ~after:net);
  Fixtures.check_valid "physical variant benchmark" net

let test_switch_paths_equivalent_detects_change () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let net' = Network.copy net in
  check bool_c "identical" true
    (Validate.switch_paths_equivalent ~before:net ~after:net');
  (* Rerouting F4 (0 -> 2 via L1 L2) the long way around changes the
     switch sequence. *)
  Network.set_route net' ring.Fixtures.flows.(3) [];
  check bool_c "detected" false
    (Validate.switch_paths_equivalent ~before:net ~after:net')

(* ------------------------------------------------------------------ *)
(* Up*/down* routing baseline                                          *)
(* ------------------------------------------------------------------ *)

let test_updown_fails_on_unidirectional_ring () =
  (* The paper's argument against turn prohibition: it needs
     bidirectional links, which custom topologies don't guarantee. *)
  let ring = Fixtures.paper_ring () in
  (match Updown.apply ring.Fixtures.net with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unidirectional ring cannot be up*/down* routed");
  (* And the failure left the design untouched. *)
  check int_c "routes intact" 3
    (Route.length (Network.route ring.Fixtures.net ring.Fixtures.flows.(0)))

let bidirectional_ring () =
  let topo = Topology.create ~n_switches:4 in
  for i = 0 to 3 do
    ignore (Topology.add_link topo ~src:(sw i) ~dst:(sw ((i + 1) mod 4)));
    ignore (Topology.add_link topo ~src:(sw ((i + 1) mod 4)) ~dst:(sw i))
  done;
  let traffic = Traffic.create ~n_cores:4 in
  for s = 0 to 3 do
    for d = 0 to 3 do
      if s <> d then
        ignore (Traffic.add_flow traffic ~src:(core s) ~dst:(core d) ~bandwidth:10.)
    done
  done;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  (match Noc_model.Routing.route_all net with Ok () -> () | Error e -> failwith e);
  net

let test_updown_succeeds_on_bidirectional () =
  let net = bidirectional_ring () in
  match Updown.apply net with
  | Error e -> Alcotest.fail e
  | Ok _ ->
      check bool_c "valid" true (Validate.is_valid net);
      check bool_c "acyclic by construction" true (Removal.is_deadlock_free net);
      check int_c "no VCs ever added" 0 (Topology.extra_vcs (Network.topology net))

let test_updown_no_vcs_added () =
  let net = bidirectional_ring () in
  let before = Topology.total_vcs (Network.topology net) in
  (match Updown.apply net with Ok _ -> () | Error e -> Alcotest.fail e);
  check int_c "vc count unchanged" before (Topology.total_vcs (Network.topology net))

let test_updown_hop_accounting () =
  let net = bidirectional_ring () in
  match Updown.apply net with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check bool_c "hop totals recorded" true
        (r.Updown.total_hops_before > 0 && r.Updown.total_hops_after > 0);
      check bool_c "up*/down* never shortens below minimum" true
        (r.Updown.total_hops_after >= r.Updown.total_hops_before)

let test_updown_route_exists () =
  let ring = Fixtures.paper_ring () in
  check bool_c "F1 blocked on the ring" false
    (Updown.route_exists ring.Fixtures.net ring.Fixtures.flows.(0));
  let net = bidirectional_ring () in
  List.iter
    (fun (f : Traffic.flow) ->
      check bool_c "all flows routable bidirectionally" true
        (Updown.route_exists net f.Traffic.id))
    (Traffic.flows (Network.traffic net))

let test_updown_on_mesh_traffic () =
  (* All-to-all on a bidirectional mesh: must be feasible, valid, and
     deadlock-free without a single VC. *)
  let topo = Noc_synth.Regular.mesh ~columns:3 ~rows:3 in
  let traffic = Traffic.create ~n_cores:9 in
  for s = 0 to 8 do
    for d = 0 to 8 do
      if s <> d then
        ignore (Traffic.add_flow traffic ~src:(core s) ~dst:(core d) ~bandwidth:5.)
    done
  done;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  match Updown.apply net with
  | Error e -> Alcotest.fail e
  | Ok _ ->
      check bool_c "valid" true (Validate.is_valid net);
      check bool_c "deadlock-free" true (Removal.is_deadlock_free net)

(* ------------------------------------------------------------------ *)
(* Reroute-first                                                       *)
(* ------------------------------------------------------------------ *)

let test_reroute_no_alternatives_on_ring () =
  (* The unidirectional ring offers exactly one path per pair; the
     pre-pass must fail gracefully and leave everything untouched. *)
  let ring = Fixtures.paper_ring () in
  let before = Network.copy ring.Fixtures.net in
  let r = Reroute.run ring.Fixtures.net in
  check bool_c "cycles remain" false r.Reroute.fully_acyclic;
  check int_c "nothing rerouted" 0 (List.length r.Reroute.changes);
  check bool_c "routes untouched" true
    (Validate.routes_equivalent ~before ~after:ring.Fixtures.net)

let test_reroute_breaks_cycle_with_alternative () =
  (* Ring plus a chord that lets F1 bypass L1: the cycle is breakable
     with zero VCs. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let topo = Network.topology net in
  (* Chord sw0 -> sw2 gives F1 (0->3) and F4 (0->2) an alternative. *)
  let _ = Topology.add_link topo ~src:(sw 0) ~dst:(sw 2) in
  let r = Reroute.run net in
  check bool_c "fully acyclic by rerouting" true r.Reroute.fully_acyclic;
  check bool_c "at least one change" true (r.Reroute.changes <> []);
  check int_c "no VCs needed afterwards" 0 (Removal.run net).Removal.vcs_added;
  Fixtures.check_valid "rerouted design" net

let test_reroute_plus_removal_cheaper_on_benchmark () =
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> Alcotest.fail "missing benchmark"
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let base = Noc_synth.Custom.synthesize_exn traffic ~n_switches:20 in
  let plain = Network.copy base in
  let plain_cost = (Removal.run plain).Removal.vcs_added in
  let combo = Network.copy base in
  let rr = Reroute.run combo in
  let combo_cost = (Removal.run combo).Removal.vcs_added in
  check bool_c "rerouting helped at least once" true (rr.Reroute.cycles_broken > 0);
  check bool_c "combo never worse" true (combo_cost <= plain_cost);
  check bool_c "combo still valid" true (Validate.is_valid combo);
  check bool_c "combo deadlock-free" true (Removal.is_deadlock_free combo)

let test_reroute_respects_detour_budget () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let topo = Network.topology net in
  let _ = Topology.add_link topo ~src:(sw 0) ~dst:(sw 2) in
  let r = Reroute.run ~max_detour:0 net in
  (* With zero allowed detour, only same-length alternatives count. *)
  List.iter
    (fun c ->
      check bool_c "no longer than before" true
        (Route.length c.Reroute.new_route <= Route.length c.Reroute.old_route))
    r.Reroute.changes

let test_report_printers () =
  (* pp smoke tests across the library's report types. *)
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  let removal = Removal.run net in
  let renders pp v = String.length (Format.asprintf "%a" pp v) > 0 in
  check bool_c "removal report" true (renders Removal.pp_report removal);
  check bool_c "certificate" true (renders Verify.pp_certificate (Verify.certify net));
  let ring2 = Fixtures.paper_ring () in
  let ordering = Resource_ordering.apply ring2.Fixtures.net in
  check bool_c "ordering report" true (renders Resource_ordering.pp_report ordering);
  let table = Cost_table.forward (Fixtures.paper_ring ()).Fixtures.net paper_cycle in
  check bool_c "cost table" true (renders Cost_table.pp table);
  let balance = Vc_balance.run net in
  check bool_c "balance report" true (renders Vc_balance.pp_report balance);
  let reroute = Reroute.run net in
  check bool_c "reroute report" true (renders Reroute.pp_report reroute);
  let optimal = Optimal.search net in
  check bool_c "optimal report" true (renders Optimal.pp_result optimal)

(* ------------------------------------------------------------------ *)
(* GT isolation                                                        *)
(* ------------------------------------------------------------------ *)

let test_isolation_basic () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Removal.run net);
  let gt = ring.Fixtures.flows.(0) in
  (* F1 shares L1' with F4 and L2/L3 with others before isolation. *)
  check bool_c "initially shared" true
    (Result.is_error (Isolation.verify_isolation net ~guaranteed:[ gt ]));
  let r = Isolation.isolate net ~guaranteed:[ gt ] in
  check bool_c "now exclusive" true
    (Isolation.verify_isolation net ~guaranteed:[ gt ] = Ok ());
  check bool_c "still deadlock-free" true (Removal.is_deadlock_free net);
  check bool_c "bought some VCs" true (r.Isolation.vcs_added > 0);
  Fixtures.check_valid "isolated ring" net

let test_isolation_physical_path_preserved () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Removal.run net);
  let before = Network.copy net in
  ignore (Isolation.isolate net ~guaranteed:[ ring.Fixtures.flows.(0) ]);
  check bool_c "links unchanged" true
    (Validate.routes_equivalent ~before ~after:net)

let test_isolation_rejections () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  Alcotest.check_raises "cyclic input"
    (Invalid_argument "Isolation.isolate: CDG is cyclic; run Removal first")
    (fun () -> ignore (Isolation.isolate net ~guaranteed:[ ring.Fixtures.flows.(0) ]));
  ignore (Removal.run net);
  Alcotest.check_raises "duplicate flow"
    (Invalid_argument "Isolation.isolate: duplicate flow in the guaranteed list")
    (fun () ->
      ignore
        (Isolation.isolate net
           ~guaranteed:[ ring.Fixtures.flows.(0); ring.Fixtures.flows.(0) ]))

let test_isolation_two_flows () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Removal.run net);
  let gts = [ ring.Fixtures.flows.(0); ring.Fixtures.flows.(1) ] in
  ignore (Isolation.isolate net ~guaranteed:gts);
  check bool_c "both exclusive" true
    (Isolation.verify_isolation net ~guaranteed:gts = Ok ());
  check bool_c "still deadlock-free" true (Removal.is_deadlock_free net)

let test_isolation_reuses_idle_vcs () =
  (* One flow on a 2-VC link where VC 1 is idle: isolation must reuse
     it instead of buying VC 2. *)
  let topo = Topology.create ~n_switches:2 in
  let l = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  ignore (Topology.add_vc topo l);
  let traffic = Traffic.create ~n_cores:2 in
  let fa = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:10. in
  let fb = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:10. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  Network.set_route net fa [ Channel.make l 0 ];
  Network.set_route net fb [ Channel.make l 0 ];
  let r = Isolation.isolate net ~guaranteed:[ fa ] in
  check int_c "no VC bought" 0 r.Isolation.vcs_added;
  check int_c "one move" 1 r.Isolation.moves;
  check bool_c "exclusive" true (Isolation.verify_isolation net ~guaranteed:[ fa ] = Ok ())

(* ------------------------------------------------------------------ *)
(* VC balancing                                                        *)
(* ------------------------------------------------------------------ *)

let test_vc_balance_requires_acyclic () =
  let ring = Fixtures.paper_ring () in
  Alcotest.check_raises "cyclic rejected"
    (Invalid_argument "Vc_balance.run: CDG is cyclic; run Removal first")
    (fun () -> ignore (Vc_balance.run ring.Fixtures.net))

let test_vc_balance_spreads_flows () =
  (* Two flows share one link that has a second, idle VC. *)
  let topo = Topology.create ~n_switches:2 in
  let l = Topology.add_link topo ~src:(sw 0) ~dst:(sw 1) in
  ignore (Topology.add_vc topo l);
  let traffic = Traffic.create ~n_cores:2 in
  let fa = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:10. in
  let fb = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:10. in
  let fc = Traffic.add_flow traffic ~src:(core 0) ~dst:(core 1) ~bandwidth:10. in
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  List.iter (fun f -> Network.set_route net f [ Channel.make l 0 ]) [ fa; fb; fc ];
  let r = Vc_balance.run net in
  check int_c "was 3 on one channel" 3 r.Vc_balance.max_flows_per_channel_before;
  check int_c "now split 2/1" 2 r.Vc_balance.max_flows_per_channel_after;
  check bool_c "still acyclic" true (Removal.is_deadlock_free net);
  Fixtures.check_valid "balanced" net

let test_vc_balance_preserves_safety_on_benchmark () =
  let spec =
    match Noc_benchmarks.Registry.find "D36_8" with
    | Some s -> s
    | None -> Alcotest.fail "missing benchmark"
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Noc_synth.Custom.synthesize_exn traffic ~n_switches:14 in
  ignore (Removal.run net);
  let before = Network.copy net in
  let r = Vc_balance.run net in
  check bool_c "never worse" true
    (r.Vc_balance.max_flows_per_channel_after
    <= r.Vc_balance.max_flows_per_channel_before);
  check bool_c "still acyclic" true (Removal.is_deadlock_free net);
  check bool_c "physical routes untouched" true
    (Validate.routes_equivalent ~before ~after:net);
  Fixtures.check_valid "balanced benchmark" net

(* ------------------------------------------------------------------ *)
(* Exact optimum (branch-and-bound)                                    *)
(* ------------------------------------------------------------------ *)

let test_optimal_ring () =
  let ring = Fixtures.paper_ring () in
  let r = Optimal.search ring.Fixtures.net in
  check int_c "minimum is one VC" 1 r.Optimal.vcs_added;
  check bool_c "proven" true r.Optimal.proven_optimal;
  check bool_c "solution free" true (Removal.is_deadlock_free r.Optimal.solution);
  check bool_c "solution valid" true (Validate.is_valid r.Optimal.solution);
  (* Input untouched. *)
  check bool_c "input still cyclic" false (Removal.is_deadlock_free ring.Fixtures.net)

let test_optimal_acyclic_input () =
  let net = Fixtures.xy_mesh_2x2 () in
  let r = Optimal.search net in
  check int_c "zero cost" 0 r.Optimal.vcs_added;
  check bool_c "proven" true r.Optimal.proven_optimal

let test_optimal_budget_fallback () =
  let ring = Fixtures.paper_ring () in
  let r = Optimal.search ~node_budget:1 ring.Fixtures.net in
  check bool_c "not proven under a starved budget" false r.Optimal.proven_optimal;
  check bool_c "still returns a free design" true
    (Removal.is_deadlock_free r.Optimal.solution)

let test_optimal_never_worse_than_heuristic () =
  let net = double_ring () in
  let h = Removal.run (Network.copy net) in
  let o = Optimal.search net in
  check bool_c "optimal <= heuristic" true
    (o.Optimal.vcs_added <= h.Removal.vcs_added);
  check bool_c "proven on this small design" true o.Optimal.proven_optimal

(* ------------------------------------------------------------------ *)
(* Duato's condition                                                   *)
(* ------------------------------------------------------------------ *)

let test_duato_static_ring_cyclic () =
  (* With every channel as escape, Duato's check degenerates to plain
     CDG acyclicity: the ring must fail with a 4-cycle. *)
  let ring = Fixtures.paper_ring () in
  let rf = Noc_model.Routing_function.of_static_routes ring.Fixtures.net in
  let v = Duato.check ring.Fixtures.net rf ~escape:Duato.escape_everything in
  check bool_c "not free" false v.Duato.deadlock_free;
  check bool_c "no connectivity issue" true (v.Duato.connectivity_failure = None);
  match v.Duato.extended_cdg_cycle with
  | Some cycle -> check int_c "the 4-cycle" 4 (List.length cycle)
  | None -> Alcotest.fail "expected a cycle"

let test_duato_static_ring_after_removal () =
  let ring = Fixtures.paper_ring () in
  ignore (Removal.run ring.Fixtures.net);
  let rf = Noc_model.Routing_function.of_static_routes ring.Fixtures.net in
  let v = Duato.check ring.Fixtures.net rf ~escape:Duato.escape_everything in
  check bool_c "free after removal" true v.Duato.deadlock_free;
  (* Agreement with the direct certificate. *)
  check bool_c "agrees with Verify" true
    (Verify.certify ring.Fixtures.net).Verify.acyclic

let test_duato_xy_mesh_free () =
  let net = Fixtures.xy_mesh_2x2 () in
  let rf = Noc_model.Routing_function.of_static_routes net in
  let v = Duato.check net rf ~escape:Duato.escape_everything in
  check bool_c "XY mesh free" true v.Duato.deadlock_free

let test_duato_empty_escape_disconnected () =
  let ring = Fixtures.paper_ring () in
  let rf = Noc_model.Routing_function.of_static_routes ring.Fixtures.net in
  let v = Duato.check ring.Fixtures.net rf ~escape:(fun _ -> false) in
  check bool_c "not free" false v.Duato.deadlock_free;
  check bool_c "connectivity blamed" true (v.Duato.connectivity_failure <> None);
  check int_c "no escape channels" 0 v.Duato.n_escape_channels

let test_duato_adaptive_needs_escape () =
  (* Fully adaptive minimal routing on the (cyclic) ring cannot be
     proven free with the trivial escape set. *)
  let ring = Fixtures.paper_ring () in
  let rf = Noc_model.Routing_function.minimal_adaptive ring.Fixtures.net in
  let v = Duato.check ring.Fixtures.net rf ~escape:Duato.escape_everything in
  check bool_c "not free" false v.Duato.deadlock_free

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let test_certificate_cyclic () =
  let ring = Fixtures.paper_ring () in
  let cert = Verify.certify ring.Fixtures.net in
  check bool_c "cyclic" false cert.Verify.acyclic;
  check bool_c "no numbering" true (cert.Verify.numbering = None);
  (match cert.Verify.sample_cycle with
  | Some c -> check int_c "4-cycle" 4 (List.length c)
  | None -> Alcotest.fail "expected a sample cycle");
  check int_c "no structural issues" 0 (List.length cert.Verify.structural_issues)

let test_certificate_after_removal () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Removal.run net);
  let cert = Verify.certify net in
  check bool_c "acyclic" true cert.Verify.acyclic;
  match cert.Verify.numbering with
  | None -> Alcotest.fail "expected numbering witness"
  | Some numbering ->
      check bool_c "witness validates" true (Verify.check_numbering net numbering)

let test_check_numbering_rejects_bogus () =
  let ring = Fixtures.paper_ring () in
  let net = ring.Fixtures.net in
  ignore (Removal.run net);
  (* Constant numbering cannot be strictly increasing. *)
  let bogus =
    List.map (fun c -> (c, 0)) (Topology.channels (Network.topology net))
  in
  check bool_c "rejected" false (Verify.check_numbering net bogus);
  check bool_c "missing channels rejected" false (Verify.check_numbering net [])

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random networks on ring+chord topologies with min-hop routes. *)
let random_net_gen =
  QCheck.Gen.(
    let* n_switches = int_range 3 9 in
    let* chords =
      list_size (int_bound 6)
        (pair (int_bound (n_switches - 1)) (int_bound (n_switches - 1)))
    in
    let* pairs =
      list_size (int_range 1 14)
        (pair (int_bound (n_switches - 1)) (int_bound (n_switches - 1)))
    in
    return (n_switches, chords, pairs))

let build_net (n_switches, chords, pairs) =
  let topo = Topology.create ~n_switches in
  for i = 0 to n_switches - 1 do
    ignore (Topology.add_link topo ~src:(sw i) ~dst:(sw ((i + 1) mod n_switches)))
  done;
  List.iter
    (fun (a, b) -> if a <> b then ignore (Topology.add_link topo ~src:(sw a) ~dst:(sw b)))
    chords;
  let traffic = Traffic.create ~n_cores:n_switches in
  List.iter
    (fun (a, b) ->
      if a <> b then
        ignore (Traffic.add_flow traffic ~src:(core a) ~dst:(core b) ~bandwidth:10.))
    pairs;
  let net =
    Network.make ~topology:topo ~traffic ~mapping:(fun c -> sw (Ids.Core.to_int c))
  in
  (match Routing.route_all net with Ok () -> () | Error e -> failwith e);
  net

let arbitrary_net =
  QCheck.make
    ~print:(fun (n, chords, pairs) ->
      Printf.sprintf "switches=%d chords=%s flows=%s" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) chords))
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d>%d" a b) pairs)))
    random_net_gen

let prop_removal_terminates_free =
  QCheck.Test.make ~name:"removal always reaches deadlock freedom" ~count:150
    arbitrary_net (fun input ->
      let net = build_net input in
      let report = Removal.run net in
      report.Removal.deadlock_free && Removal.is_deadlock_free net)

let prop_removal_preserves_routes =
  QCheck.Test.make ~name:"removal preserves physical routes and validity" ~count:150
    arbitrary_net (fun input ->
      let net = build_net input in
      let before = Network.copy net in
      ignore (Removal.run net);
      Validate.routes_equivalent ~before ~after:net && Validate.is_valid net)

let prop_removal_cheaper_than_ordering =
  QCheck.Test.make ~name:"removal never needs more VCs than greedy ordering"
    ~count:100 arbitrary_net (fun input ->
      let net_removal = build_net input in
      let net_ordering = build_net input in
      let rr = Removal.run net_removal in
      let ro = Resource_ordering.apply net_ordering in
      rr.Removal.vcs_added <= ro.Resource_ordering.vcs_added)

let prop_ordering_acyclic_by_construction =
  QCheck.Test.make ~name:"resource ordering always yields acyclic CDG" ~count:100
    arbitrary_net (fun input ->
      let net = build_net input in
      ignore (Resource_ordering.apply net);
      Removal.is_deadlock_free net)

let prop_hop_index_acyclic =
  QCheck.Test.make ~name:"hop-index ordering always yields acyclic CDG" ~count:100
    arbitrary_net (fun input ->
      let net = build_net input in
      ignore (Resource_ordering.apply ~strategy:Resource_ordering.Hop_index net);
      Removal.is_deadlock_free net && Validate.is_valid net)

let prop_certificate_witness_checks =
  QCheck.Test.make ~name:"certificate numbering validates after removal" ~count:100
    arbitrary_net (fun input ->
      let net = build_net input in
      ignore (Removal.run net);
      match (Verify.certify net).Verify.numbering with
      | None -> false
      | Some numbering -> Verify.check_numbering net numbering)

let prop_break_removes_the_edge =
  (* The defining postcondition of Break_cycle.apply: the broken
     dependency edge is gone from the rebuilt CDG. *)
  QCheck.Test.make ~name:"breaking a cycle removes the targeted dependency"
    ~count:100 arbitrary_net (fun input ->
      let net = build_net input in
      let cdg = Cdg.build net in
      match Cdg.smallest_cycle cdg with
      | None -> true
      | Some cycle ->
          let table = Cost_table.forward net cycle in
          let change = Break_cycle.apply net table in
          let src, dst = change.Break_cycle.broken in
          let cdg' = Cdg.build net in
          Cdg.flows_on_dependency cdg' ~src ~dst = []
          && Validate.is_valid net)

let prop_optimal_bounds_heuristic =
  QCheck.Test.make ~name:"exact optimum never exceeds the heuristic" ~count:40
    arbitrary_net (fun input ->
      let net = build_net input in
      let h = Removal.run (Network.copy net) in
      let o = Optimal.search ~node_budget:3_000 net in
      o.Optimal.vcs_added <= h.Removal.vcs_added
      && Removal.is_deadlock_free o.Optimal.solution)

let prop_incremental_cdg_exact =
  (* The tentpole invariant: maintaining the CDG in place across
     removal iterations ([validate] re-checks [Cdg.equal] against a
     fresh [Cdg.build] after every single break) yields the same
     trajectory as rebuilding from scratch each round. *)
  QCheck.Test.make ~name:"incremental removal is exactly the rebuild removal"
    ~count:60 arbitrary_net (fun input ->
      let inc_net = build_net input in
      let reb_net = build_net input in
      let inc = Removal.run ~validate:true inc_net in
      let reb = Removal.run ~incremental:false reb_net in
      inc.Removal.iterations = reb.Removal.iterations
      && inc.Removal.vcs_added = reb.Removal.vcs_added
      && Cdg.equal (Cdg.build inc_net) (Cdg.build reb_net))

let prop_cost_tables_match_reference =
  (* The shared-pass cost tables must reproduce the seed's per-cell
     rescan implementation field for field. *)
  QCheck.Test.make ~name:"optimized cost tables equal the reference tables"
    ~count:100 arbitrary_net (fun input ->
      let net = build_net input in
      match Cdg.smallest_cycle (Cdg.build net) with
      | None -> true
      | Some cycle ->
          let fwd, bwd = Cost_table.both net cycle in
          fwd = Cost_table.forward_reference net cycle
          && bwd = Cost_table.backward_reference net cycle)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_removal_terminates_free;
      prop_removal_preserves_routes;
      prop_removal_cheaper_than_ordering;
      prop_ordering_acyclic_by_construction;
      prop_hop_index_acyclic;
      prop_certificate_witness_checks;
      prop_break_removes_the_edge;
      prop_optimal_bounds_heuristic;
      prop_incremental_cdg_exact;
      prop_cost_tables_match_reference;
    ]

(* ------------------------------------------------------------------ *)
(* Incremental CDG maintenance on fixed-seed synthetic topologies      *)
(* ------------------------------------------------------------------ *)

let synthetic_nets () =
  let open Noc_benchmarks.Synthetic in
  List.map
    (fun (name, traffic, n_switches) ->
      (name, Noc_synth.Custom.synthesize_exn traffic ~n_switches))
    [
      ("uniform/s7", uniform ~n_cores:16 ~flows_per_core:3 ~seed:7, 8);
      ("uniform/s23", uniform ~n_cores:20 ~flows_per_core:4 ~seed:23, 10);
      ("transpose", transpose ~n_cores:16 ~bandwidth:100., 7);
      ( "hotspot",
        hotspot ~n_cores:12 ~n_hotspots:2 ~background:20. ~hotspot_bw:120.,
        6 );
      ("neighbour_ring", neighbour_ring ~n_cores:10 ~bandwidth:80., 5);
    ]

let test_incremental_validates_on_synthetic () =
  List.iter
    (fun (name, net) ->
      (* [validate] raises Failure the first time the incrementally
         maintained CDG diverges from a fresh build. *)
      let fixed = Network.copy net in
      let report = Removal.run ~validate:true fixed in
      check bool_c
        (Printf.sprintf "%s: deadlock free" name)
        true report.Removal.deadlock_free;
      check bool_c
        (Printf.sprintf "%s: fresh CDG of the result is acyclic" name)
        true
        (Removal.is_deadlock_free fixed))
    (synthetic_nets ())

let test_incremental_equals_rebuild_on_synthetic () =
  List.iter
    (fun (name, net) ->
      let inc_net = Network.copy net in
      let reb_net = Network.copy net in
      let inc = Removal.run inc_net in
      let reb = Removal.run ~incremental:false reb_net in
      check int_c
        (Printf.sprintf "%s: iterations" name)
        reb.Removal.iterations inc.Removal.iterations;
      check int_c
        (Printf.sprintf "%s: vcs added" name)
        reb.Removal.vcs_added inc.Removal.vcs_added;
      check bool_c
        (Printf.sprintf "%s: final CDGs equal" name)
        true
        (Cdg.equal (Cdg.build inc_net) (Cdg.build reb_net)))
    (synthetic_nets ())

let test_cost_tables_reference_on_synthetic () =
  List.iter
    (fun (name, net) ->
      match Cdg.smallest_cycle (Cdg.build net) with
      | None -> ()
      | Some cycle ->
          let fwd, bwd = Cost_table.both net cycle in
          check bool_c
            (Printf.sprintf "%s: forward table" name)
            true
            (fwd = Cost_table.forward_reference net cycle);
          check bool_c
            (Printf.sprintf "%s: backward table" name)
            true
            (bwd = Cost_table.backward_reference net cycle))
    (synthetic_nets ())

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "noc_deadlock"
    [
      ( "cost_table",
        [
          tc "Table 1 forward (paper)" test_table1_forward;
          tc "Table 1 backward" test_table1_backward;
          tc "empty cycle rejected" test_cost_table_empty_cycle_rejected;
          tc "dependency labels" test_cost_table_dependency_labels;
          tc "channels to duplicate (forward)" test_channels_to_duplicate_forward;
          tc "channels to duplicate (backward)" test_channels_to_duplicate_backward;
          tc "flow selection" test_cost_table_flow_selection;
        ] );
      ( "break_cycle",
        [
          tc "forward break at D1" test_break_forward_d1;
          tc "topology updated" test_break_updates_topology;
          tc "backward break at D2" test_break_backward_d2;
          tc "duplicates shared between flows" test_break_shares_duplicates;
          tc "bad column rejected" test_break_bad_column;
          tc "figure-7 chain duplication" test_break_figure7_chain;
        ] );
      ( "removal",
        [
          tc "paper example (fig 1-4)" test_removal_paper_example;
          tc "idempotent" test_removal_idempotent;
          tc "acyclic input untouched" test_removal_acyclic_input;
          tc "forward only" test_removal_forward_only;
          tc "backward only" test_removal_backward_only;
          tc "any-cycle heuristic" test_removal_any_cycle_heuristic;
          tc "double ring" test_removal_double_ring;
          tc "iteration cap" test_removal_iteration_cap;
        ] );
      ( "resource_ordering",
        [
          tc "greedy on ring" test_resource_ordering_ring_greedy;
          tc "hop index on ring" test_resource_ordering_hop_index;
          tc "numbers increase along routes" test_resource_ordering_monotone_routes;
          tc "costlier than removal" test_resource_ordering_costlier_than_removal;
        ] );
      ( "physical_link_variant",
        [
          tc "break adds a parallel link" test_physical_break_adds_link;
          tc "removal preserves switch paths" test_physical_removal_preserves_switch_paths;
          tc "benchmark scale" test_physical_removal_on_benchmark;
          tc "switch-path equivalence detects change" test_switch_paths_equivalent_detects_change;
        ] );
      ( "updown",
        [
          tc "fails on unidirectional ring" test_updown_fails_on_unidirectional_ring;
          tc "succeeds on bidirectional ring" test_updown_succeeds_on_bidirectional;
          tc "never adds VCs" test_updown_no_vcs_added;
          tc "hop accounting" test_updown_hop_accounting;
          tc "route_exists" test_updown_route_exists;
          tc "mesh all-to-all" test_updown_on_mesh_traffic;
        ] );
      ("printers", [ tc "all report types render" test_report_printers ]);
      ( "isolation",
        [
          tc "basic exclusivity" test_isolation_basic;
          tc "physical path preserved" test_isolation_physical_path_preserved;
          tc "rejections" test_isolation_rejections;
          tc "two flows" test_isolation_two_flows;
          tc "reuses idle VCs" test_isolation_reuses_idle_vcs;
        ] );
      ( "vc_balance",
        [
          tc "requires acyclic input" test_vc_balance_requires_acyclic;
          tc "spreads flows" test_vc_balance_spreads_flows;
          tc "safe on benchmark" test_vc_balance_preserves_safety_on_benchmark;
        ] );
      ( "optimal",
        [
          tc "ring minimum" test_optimal_ring;
          tc "acyclic input" test_optimal_acyclic_input;
          tc "budget fallback" test_optimal_budget_fallback;
          tc "never worse than heuristic" test_optimal_never_worse_than_heuristic;
        ] );
      ( "reroute",
        [
          tc "no alternative on ring" test_reroute_no_alternatives_on_ring;
          tc "chord enables zero-VC fix" test_reroute_breaks_cycle_with_alternative;
          tc "cheaper on benchmark" test_reroute_plus_removal_cheaper_on_benchmark;
          tc "detour budget" test_reroute_respects_detour_budget;
        ] );
      ( "duato",
        [
          tc "static ring cyclic" test_duato_static_ring_cyclic;
          tc "static ring after removal" test_duato_static_ring_after_removal;
          tc "xy mesh free" test_duato_xy_mesh_free;
          tc "empty escape disconnected" test_duato_empty_escape_disconnected;
          tc "adaptive needs escape" test_duato_adaptive_needs_escape;
        ] );
      ( "verify",
        [
          tc "certificate on cyclic design" test_certificate_cyclic;
          tc "certificate after removal" test_certificate_after_removal;
          tc "bogus numbering rejected" test_check_numbering_rejects_bogus;
        ] );
      ( "incremental",
        [
          tc "validates on synthetic topologies"
            test_incremental_validates_on_synthetic;
          tc "equals rebuild on synthetic topologies"
            test_incremental_equals_rebuild_on_synthetic;
          tc "cost tables match reference on synthetic topologies"
            test_cost_tables_reference_on_synthetic;
        ] );
      ("properties", qcheck_cases);
    ]
