(* The observability layer: monotonic clock, metrics registry, span
   tracer, sinks, and exporters.  The properties mirror the invariants
   the exporters and the NOC-TRC lint pass rely on: every domain's
   event stream is well-parenthesized, Chrome export round-trips
   through Json.t, and a disabled tracer records nothing at all. *)

module Clock = Noc_obs.Clock
module Sink = Noc_obs.Sink
module Trace = Noc_obs.Trace
module Metrics = Noc_obs.Metrics
module Export = Noc_obs.Export
module Json = Noc_json.Json

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* Every test that installs a collector must leave tracing off. *)
let with_collector f =
  let c = Trace.create () in
  Trace.install c;
  Fun.protect ~finally:Trace.uninstall (fun () -> f c)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  check bool_c "time does not go backwards" true (Int64.compare b a >= 0);
  check (Alcotest.float 1e-9) "ms_between of equal instants" 0.
    (Clock.ms_between ~start_ns:a ~stop_ns:a)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let find_metric name =
  List.find_opt
    (fun m -> Metrics.metric_name m = name)
    (Metrics.snapshot ())

let test_metrics_basics () =
  let c = Metrics.counter "noc_test_ops_total" in
  let g = Metrics.gauge "noc_test_level" in
  let h = Metrics.histogram "noc_test_latency_ms" in
  Metrics.incr c;
  Metrics.add c 4;
  Metrics.set_gauge g 2.5;
  Metrics.observe h 0.25;
  Metrics.observe h 1e9;
  (match find_metric "noc_test_ops_total" with
  | Some (Metrics.Counter { value; _ }) -> check int_c "counter" 5 value
  | _ -> Alcotest.fail "counter missing");
  (match find_metric "noc_test_level" with
  | Some (Metrics.Gauge { value; _ }) ->
      check (Alcotest.float 0.) "gauge" 2.5 value
  | _ -> Alcotest.fail "gauge missing");
  (match find_metric "noc_test_latency_ms" with
  | Some (Metrics.Histogram { count; overflow; sum; buckets; _ }) ->
      check int_c "histogram count" 2 count;
      check int_c "histogram overflow" 1 overflow;
      check (Alcotest.float 1.) "histogram sum" 1e9 sum;
      check bool_c "0.25 lands in the 0.5 bucket" true
        (List.exists (fun (ub, n) -> ub = 0.5 && n = 1) buckets)
  | _ -> Alcotest.fail "histogram missing");
  (* Same name, same kind: the same handle.  Same name, other kind:
     rejected. *)
  Metrics.incr (Metrics.counter "noc_test_ops_total");
  (match find_metric "noc_test_ops_total" with
  | Some (Metrics.Counter { value; _ }) -> check int_c "shared handle" 6 value
  | _ -> Alcotest.fail "counter missing");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"noc_test_level\" is already a gauge")
    (fun () -> ignore (Metrics.histogram "noc_test_level"))

let test_metrics_name_hygiene () =
  let rejects name make =
    match make name with
    | exception Invalid_argument msg ->
        check bool_c (name ^ " error names the convention") true
          (String.length msg > 0
          && (let needle = "noc_<subsystem>_<name>[_total]" in
              let n = String.length needle and h = String.length msg in
              let rec scan i =
                i + n <= h && (String.sub msg i n = needle || scan (i + 1))
              in
              scan 0))
    | _ -> Alcotest.failf "%S should have been rejected" name
  in
  (* No prefix, too few segments, bad characters, wrong suffix. *)
  rejects "requests_total" (fun n -> ignore (Metrics.counter n));
  rejects "noc_total" (fun n -> ignore (Metrics.counter n));
  rejects "noc_serve_Requests_total" (fun n -> ignore (Metrics.counter n));
  rejects "noc_serve_requests" (fun n -> ignore (Metrics.counter n));
  rejects "noc_serve_depth_total" (fun n -> ignore (Metrics.gauge n));
  (* Labeled identities are distinct instruments; bad label keys fail. *)
  let a = Metrics.counter ~labels:[ ("method", "ping") ] "noc_test_req_total" in
  let b = Metrics.counter ~labels:[ ("method", "stats") ] "noc_test_req_total" in
  Metrics.incr a;
  Metrics.incr a;
  Metrics.incr b;
  (match find_metric {|noc_test_req_total{method="ping"}|} with
  | Some (Metrics.Counter { value; labels; _ }) ->
      check int_c "labeled counter isolated" 2 value;
      check bool_c "labels carried in snapshot" true
        (labels = [ ("method", "ping") ])
  | _ -> Alcotest.fail "labeled counter missing");
  match Metrics.counter ~labels:[ ("Bad-Key", "x") ] "noc_test_req_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad label key accepted"

let test_metrics_reset () =
  let c = Metrics.counter "noc_test_reset_total" in
  Metrics.add c 7;
  Metrics.reset ();
  Metrics.incr c;
  match find_metric "noc_test_reset_total" with
  | Some (Metrics.Counter { value; _ }) ->
      check int_c "reset zeroes in place, handle survives" 1 value
  | _ -> Alcotest.fail "counter missing"

let test_metrics_snapshot_sorted () =
  let names = List.map Metrics.metric_name (Metrics.snapshot ()) in
  check bool_c "snapshot is name-sorted" true
    (List.sort compare names = names)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let test_sink_memory_and_tee () =
  let a, events_a = Sink.memory () in
  let b, events_b = Sink.memory () in
  let t = Sink.tee a b in
  t.Sink.emit (Json.Str "x");
  t.Sink.emit (Json.Num 1.);
  t.Sink.close ();
  check int_c "tee duplicates" 2 (List.length (events_a ()));
  check bool_c "both sides identical" true (events_a () = events_b ())

let test_sink_to_file_atomic () =
  let dir = Filename.temp_file "noc_obs_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "out.jsonl" in
  let sink = Sink.to_file path in
  sink.Sink.emit (Json.Obj [ ("n", Json.Num 1.) ]);
  sink.Sink.emit (Json.Obj [ ("n", Json.Num 2.) ]);
  (* Atomicity: nothing at [path] until close renames the temp file. *)
  check bool_c "absent before close" false (Sys.file_exists path);
  sink.Sink.close ();
  check bool_c "present after close" true (Sys.file_exists path);
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check int_c "both lines landed" 2 (List.length lines);
  check bool_c "no temp leftover" true
    (Sys.readdir dir |> Array.to_list |> List.for_all (fun f -> f = "out.jsonl"));
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_noop () =
  check bool_c "tracing off by default" false (Trace.enabled ());
  let sp = Trace.start "ignored" in
  Trace.add_attr sp "k" (Trace.Int 1);
  Trace.finish sp;
  check int_c "with_span passes the value through" 41
    (Trace.with_span "ignored" (fun _ -> 41));
  (* A collector that was never installed records nothing, and its
     JSONL export is exactly one header line (no metrics passed). *)
  let c = Trace.create () in
  check int_c "no events" 0 (List.length (Trace.events c));
  check int_c "header only" 1 (List.length (Export.jsonl c))

let test_span_nesting () =
  with_collector (fun c ->
      Trace.with_span "outer" (fun sp ->
          Trace.add_attr sp "k" (Trace.Str "v");
          Trace.with_span "inner" (fun _ -> ());
          Trace.with_span "inner" (fun _ -> ()));
      let spans = Trace.completed_spans c in
      check int_c "three spans" 3 (List.length spans);
      let outer = List.find (fun s -> s.Trace.name = "outer") spans in
      check int_c "outer at depth 0" 0 outer.Trace.depth;
      check bool_c "outer keeps its attr" true
        (outer.Trace.attrs = [ ("k", Trace.Str "v") ]);
      List.iter
        (fun s ->
          if s.Trace.name = "inner" then begin
            check int_c "inner at depth 1" 1 s.Trace.depth;
            check bool_c "inner within outer" true
              (s.Trace.start_ns >= outer.Trace.start_ns
              && s.Trace.stop_ns <= outer.Trace.stop_ns)
          end)
        spans)

let test_span_closes_on_exception () =
  with_collector (fun c ->
      (try
         Trace.with_span "raises" (fun _ -> failwith "boom")
       with Failure _ -> ());
      check int_c "span closed by the exception path" 1
        (List.length (Trace.completed_spans c)))

let test_uninstall_freezes () =
  let c = Trace.create () in
  Trace.install c;
  Trace.with_span "before" (fun _ -> ());
  Trace.uninstall ();
  Trace.with_span "after" (fun _ -> ());
  let names = List.map (fun s -> s.Trace.name) (Trace.completed_spans c) in
  check bool_c "only the traced span recorded" true (names = [ "before" ])

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let run_workload () =
  Trace.with_span "work" (fun _ ->
      Trace.with_span "step" ~attrs:[ ("i", Trace.Int 1) ] (fun _ -> ());
      Trace.with_span "step" ~attrs:[ ("i", Trace.Int 2) ] (fun _ -> ()))

let test_chrome_shape () =
  with_collector (fun c ->
      run_workload ();
      let json = Export.chrome c in
      let events =
        match Json.member "traceEvents" json with
        | Some (Json.Arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      let phase ev =
        match Json.member "ph" ev with Some (Json.Str p) -> p | _ -> "?"
      in
      let begins = List.filter (fun e -> phase e = "B") events in
      let ends = List.filter (fun e -> phase e = "E") events in
      check int_c "three B" 3 (List.length begins);
      check int_c "balanced B/E" (List.length begins) (List.length ends);
      (* Timestamps are microseconds relative to the collector epoch,
         emitted in order within the single domain. *)
      let ts ev =
        match Json.member "ts" ev with Some (Json.Num t) -> t | _ -> nan
      in
      let tss = List.map ts events in
      check bool_c "chrome timestamps sorted" true
        (List.sort compare tss = tss))

let test_jsonl_lints_clean () =
  with_collector (fun c ->
      run_workload ();
      let text =
        String.concat "\n"
          (List.map Sink.line (Export.jsonl ~metrics:(Metrics.snapshot ()) c))
        ^ "\n"
      in
      match Noc_analysis.Trace_check.check ~path:"mem.trace" text with
      | [] -> ()
      | ds ->
          Alcotest.failf "exported stream should lint clean, got %d: %s"
            (List.length ds)
            (String.concat "; "
               (List.map
                  (fun (d : Noc_analysis.Diagnostic.t) ->
                    d.Noc_analysis.Diagnostic.message)
                  ds)))

let test_trace_check_catches_corruption () =
  with_collector (fun c ->
      run_workload ();
      let lines = List.map Sink.line (Export.jsonl c) in
      let has_code code ds =
        List.exists
          (fun (d : Noc_analysis.Diagnostic.t) ->
            d.Noc_analysis.Diagnostic.code.Noc_model.Diag_code.code = code)
          ds
      in
      let checks text = Noc_analysis.Trace_check.check ~path:"t" text in
      (* Dropping one span_end leaves a span open: NOC-TRC-002. *)
      let drop_last_end =
        String.concat "\n" (List.filteri (fun i _ -> i <> List.length lines - 1) lines)
      in
      check bool_c "truncation is unbalanced" true
        (has_code "NOC-TRC-002" (checks drop_last_end));
      (* A garbage line: NOC-TRC-001. *)
      check bool_c "garbage line unparsable" true
        (has_code "NOC-TRC-001"
           (checks (String.concat "\n" (List.hd lines :: [ "not json" ]))));
      (* Hand-built stream with a backwards timestamp: NOC-TRC-003. *)
      let backwards =
        String.concat "\n"
          [
            {|{"schema":"noc-trace/1","clock":"monotonic","epoch_ns":0}|};
            {|{"ts":10,"event":"span_begin","name":"a","domain":0}|};
            {|{"ts":5,"event":"span_end","name":"a","domain":0}|};
          ]
      in
      check bool_c "backwards time is non-monotonic" true
        (has_code "NOC-TRC-003" (checks backwards)))

let test_phase_totals () =
  with_collector (fun c ->
      run_workload ();
      let totals = Export.phase_totals_ms c in
      check bool_c "every span name attributed" true
        (List.map fst totals = [ "step"; "work" ]);
      let step = List.assoc "step" totals and work = List.assoc "work" totals in
      check bool_c "children within the parent" true (step <= work))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random span programs: rose trees of named spans, run on one domain. *)
type prog = Node of string * prog list

let prog_gen =
  QCheck.Gen.(
    let name = oneofl [ "alpha"; "beta"; "gamma"; "delta" ] in
    sized_size (int_bound 20) (fix (fun self n ->
        if n <= 0 then map (fun s -> Node (s, [])) name
        else
          let* s = name in
          let* k = int_bound 3 in
          let* kids = list_size (return k) (self (n / (k + 1))) in
          return (Node (s, kids)))))

let rec prog_size (Node (_, kids)) =
  1 + List.fold_left (fun a k -> a + prog_size k) 0 kids

let rec run_prog (Node (name, kids)) =
  Trace.with_span name (fun _ -> List.iter run_prog kids)

let rec prog_print (Node (name, kids)) =
  if kids = [] then name
  else Printf.sprintf "%s(%s)" name (String.concat "," (List.map prog_print kids))

let arbitrary_prog = QCheck.make ~print:prog_print prog_gen

let prop_streams_well_parenthesized =
  (* Any program's per-domain event stream obeys stack discipline, and
     the matched span count equals the program size. *)
  QCheck.Test.make ~name:"span streams are well-parenthesized" ~count:100
    arbitrary_prog (fun prog ->
      with_collector (fun c ->
          run_prog prog;
          let balanced entries =
            let rec go stack = function
              | [] -> stack = []
              | Trace.Begin { name; _ } :: rest -> go (name :: stack) rest
              | Trace.End { name; _ } :: rest -> (
                  match stack with
                  | top :: stack' -> top = name && go stack' rest
                  | [] -> false)
            in
            go [] entries
          in
          List.for_all (fun (_, entries) -> balanced entries) (Trace.events c)
          && List.length (Trace.completed_spans c) = prog_size prog))

let prop_chrome_round_trips =
  (* Chrome export survives print + parse through Json.t unchanged. *)
  QCheck.Test.make ~name:"chrome export round-trips through Json" ~count:50
    arbitrary_prog (fun prog ->
      with_collector (fun c ->
          run_prog prog;
          let json = Export.chrome ~metrics:(Metrics.snapshot ()) c in
          match Json.of_string (Json.to_string json) with
          | Ok json' -> json' = json
          | Error _ -> false))

let prop_disabled_emits_nothing =
  (* With no collector installed, running any program records no event
     anywhere — in particular not into a collector created earlier. *)
  QCheck.Test.make ~name:"disabled tracer emits nothing" ~count:100
    arbitrary_prog (fun prog ->
      let c = Trace.create () in
      run_prog prog;
      Trace.events c = [] && Export.jsonl c = [ List.hd (Export.jsonl c) ])

(* ------------------------------------------------------------------ *)
(* Exposition, concurrency, and series properties                      *)
(* ------------------------------------------------------------------ *)

module Expo = Noc_obs.Expo
module Series = Noc_obs.Series

(* Label values with every character the Prometheus text format must
   escape, plus the structural characters of the format itself. *)
let hostile_value_gen =
  QCheck.Gen.(
    string_size
      ~gen:(oneofl [ '\\'; '"'; '\n'; 'a'; 'z'; '0'; ' '; '{'; '}'; ','; '=' ])
      (int_bound 12))

let expo_metric_gen i =
  QCheck.Gen.(
    let* v = hostile_value_gen in
    let labels = [ ("i", string_of_int i); ("v", v) ] in
    let counter =
      let* value = int_bound 1000 in
      return (Metrics.Counter { name = "noc_prop_events_total"; labels; value })
    in
    let gauge =
      let* value = float_bound_inclusive 100. in
      return (Metrics.Gauge { name = "noc_prop_depth"; labels; value })
    in
    let histogram =
      let* c1 = int_bound 5 in
      let* c2 = int_bound 5 in
      let* overflow = int_bound 3 in
      let* sum = float_bound_inclusive 50. in
      return
        (Metrics.Histogram
           {
             name = "noc_prop_wait_ms";
             labels;
             buckets = [ (0.5, c1); (2.0, c2) ];
             overflow;
             count = c1 + c2 + overflow;
             sum;
           })
    in
    oneof [ counter; gauge; histogram ])

let expo_metrics_gen =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let rec build i acc =
      if i >= n then return (List.rev acc)
      else
        let* m = expo_metric_gen i in
        build (i + 1) (m :: acc)
    in
    build 0 [])

let prop_exposition_parses =
  (* Whatever label values a metric carries, the rendered exposition
     stays inside the strict grammar check_text accepts, and the JSON
     form decodes back to the same metrics. *)
  QCheck.Test.make ~name:"hostile label values survive exposition" ~count:200
    (QCheck.make ~print:Expo.text expo_metrics_gen)
    (fun ms ->
      (match Expo.check_text (Expo.text ms) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)
      && Expo.metrics_of_json (Expo.json ms) = Ok ms)

let counter_total name =
  List.fold_left
    (fun acc m ->
      match m with
      | Metrics.Counter { name = n; value; _ } when n = name -> acc + value
      | _ -> acc)
    0 (Metrics.snapshot ())

let histogram_count name =
  List.fold_left
    (fun acc m ->
      match m with
      | Metrics.Histogram { name = n; count; _ } when n = name -> acc + count
      | _ -> acc)
    0 (Metrics.snapshot ())

let prop_concurrent_updates_lossless =
  (* N domains hammering the same counter and histogram lose nothing,
     and snapshots taken mid-flight never tear. *)
  QCheck.Test.make ~name:"concurrent domain updates are lossless" ~count:5
    QCheck.(pair (int_range 1 4) (int_range 100 2000))
    (fun (domains, iters) ->
      let c = Metrics.counter "noc_test_concurrent_total" in
      let h = Metrics.histogram "noc_test_concurrent_ms" in
      let c0 = counter_total "noc_test_concurrent_total" in
      let h0 = histogram_count "noc_test_concurrent_ms" in
      let workers =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for i = 1 to iters do
                  Metrics.incr c;
                  Metrics.observe h (float_of_int (i mod 7));
                  if i mod 256 = 0 then ignore (Metrics.snapshot ())
                done))
      in
      List.iter Domain.join workers;
      counter_total "noc_test_concurrent_total" - c0 = domains * iters
      && histogram_count "noc_test_concurrent_ms" - h0 = domains * iters)

let prop_series_round_trips =
  (* A sampled ring buffer survives to_json/of_json byte-identically,
     at any window size and past the wrap-around point. *)
  QCheck.Test.make ~name:"series ring buffer round-trips through JSON"
    ~count:30
    QCheck.(pair (int_range 1 6) (int_range 0 15))
    (fun (window, samples) ->
      ignore (Metrics.counter "noc_test_series_total");
      let t = Series.create ~interval_s:0.5 ~window () in
      for i = 1 to samples do
        Series.sample ~now_s:(float_of_int i) t
      done;
      match Series.of_json (Series.to_json t) with
      | Error _ -> false
      | Ok t' ->
          Series.to_json t' = Series.to_json t
          && List.for_all
               (fun k -> List.length (Series.points t k) <= window)
               (Series.keys t))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_streams_well_parenthesized;
      prop_chrome_round_trips;
      prop_disabled_emits_nothing;
      prop_exposition_parses;
      prop_concurrent_updates_lossless;
      prop_series_round_trips;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "obs"
    [
      ("clock", [ tc "monotone" `Quick test_clock_monotone ]);
      ( "metrics",
        [
          tc "counters, gauges, histograms" `Quick test_metrics_basics;
          tc "name hygiene" `Quick test_metrics_name_hygiene;
          tc "reset in place" `Quick test_metrics_reset;
          tc "snapshot sorted" `Quick test_metrics_snapshot_sorted;
        ] );
      ( "sinks",
        [
          tc "memory and tee" `Quick test_sink_memory_and_tee;
          tc "to_file is atomic" `Quick test_sink_to_file_atomic;
        ] );
      ( "tracer",
        [
          tc "disabled is a no-op" `Quick test_disabled_is_noop;
          tc "nesting and attributes" `Quick test_span_nesting;
          tc "closes on exception" `Quick test_span_closes_on_exception;
          tc "uninstall freezes the stream" `Quick test_uninstall_freezes;
        ] );
      ( "export",
        [
          tc "chrome shape" `Quick test_chrome_shape;
          tc "jsonl lints clean" `Quick test_jsonl_lints_clean;
          tc "trace lint catches corruption" `Quick
            test_trace_check_catches_corruption;
          tc "phase totals" `Quick test_phase_totals;
        ] );
      ("properties", qcheck_cases);
    ]
