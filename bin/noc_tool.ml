(* noc_tool: command-line front end for the deadlock-removal flow.

   Subcommands: list, synth, remove, ordering, updown, duato, optimal,
   harden, analyze, lint, prove, dot, tables, compare, simulate, batch,
   serve, submit, serve-stats, trace, example.  Every command works on a named
   benchmark synthesized at a chosen switch count — or on a design file
   via --input — so results are reproducible from the shell. *)

open Cmdliner
open Noc_model

let version = "1.0.0"

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let logs_term = Term.(const setup_logs $ Logs_cli.level ())

(* Shared arguments ------------------------------------------------- *)

let benchmark_arg =
  let doc =
    Printf.sprintf "Benchmark name. One of: %s."
      (String.concat ", " Noc_benchmarks.Registry.names)
  in
  Arg.(value & opt string "D26_media" & info [ "b"; "benchmark" ] ~doc)

let switches_arg =
  let doc = "Number of switches to synthesize." in
  Arg.(value & opt int 14 & info [ "s"; "switches" ] ~doc)

let degree_arg =
  let doc = "Per-switch link budget for synthesis." in
  Arg.(value & opt int 4 & info [ "max-degree" ] ~doc)

let lookup_benchmark name =
  match Noc_benchmarks.Registry.find name with
  | Some s -> Ok s
  | None ->
      Error
        (Printf.sprintf "unknown benchmark %s (try: %s)" name
           (String.concat ", " Noc_benchmarks.Registry.names))

let synthesize name n_switches max_degree =
  Result.bind (lookup_benchmark name) (fun spec ->
      let traffic = spec.Noc_benchmarks.Spec.build () in
      if n_switches < 1 then Error "switch count must be at least 1"
      else if n_switches > Traffic.n_cores traffic then
        Error
          (Printf.sprintf "%s has %d cores; switch count must not exceed that"
             name (Traffic.n_cores traffic))
      else begin
        let options =
          {
            Noc_synth.Custom.default_options with
            Noc_synth.Custom.max_out_degree = max_degree;
            max_in_degree = max_degree;
          }
        in
        match Noc_synth.Custom.synthesize ~options traffic ~n_switches with
        | Ok net -> Ok (spec, net)
        | Error e -> Error e
      end)

let or_die = function
  | Ok v -> v
  | Error e ->
      Format.eprintf "error: %s@." e;
      exit 1

let input_arg =
  Arg.(value
       & opt (some string) None
       & info [ "i"; "input" ]
           ~doc:"Load the design from $(docv) (noc-design format) instead of \
                 synthesizing a benchmark."
           ~docv:"FILE")

let save_arg =
  Arg.(value
       & opt (some string) None
       & info [ "o"; "save" ]
           ~doc:"Write the resulting design to $(docv) in noc-design format."
           ~docv:"FILE")

(* A design either loaded from a file or synthesized from a benchmark. *)
let obtain_network ~input ~name ~n_switches ~degree =
  match input with
  | Some path -> Io.load_file path
  | None -> Result.map snd (synthesize name n_switches degree)

let maybe_save save net =
  match save with
  | None -> ()
  | Some path -> (
      match Io.save_file path net with
      | () -> Format.printf "design written to %s@." path
      | exception Sys_error e -> or_die (Error e))

(* Tracing ----------------------------------------------------------- *)

type trace_format = Chrome | Jsonl | Summary

let trace_format_arg =
  let doc =
    "Trace output format: $(b,chrome) (trace-event JSON, loadable in \
     Perfetto or chrome://tracing), $(b,jsonl) (the noc-trace/1 stream, \
     lintable with $(b,noc_tool lint)), or $(b,summary) (per-phase \
     wall-time table)."
  in
  Arg.(value
       & opt
           (enum [ ("chrome", Chrome); ("jsonl", Jsonl); ("summary", Summary) ])
           Chrome
       & info [ "format" ] ~docv:"FORMAT" ~doc)

let write_trace ~format ~output collector =
  let metrics = Noc_obs.Metrics.snapshot () in
  let with_out f =
    match output with
    | None -> f stdout
    | Some path -> (
        match open_out path with
        | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
        | exception Sys_error e -> or_die (Error e))
  in
  match format with
  | Summary ->
      with_out (fun oc ->
          let ppf = Format.formatter_of_out_channel oc in
          Format.fprintf ppf "%a@."
            (Noc_obs.Export.pp_summary ~metrics)
            collector)
  | Chrome ->
      with_out (fun oc ->
          output_string oc
            (Noc_json.Json.to_string_pretty
               (Noc_obs.Export.chrome ~metrics collector));
          output_char oc '\n')
  | Jsonl ->
      with_out (fun oc ->
          List.iter
            (fun l ->
              output_string oc (Noc_obs.Sink.line l);
              output_char oc '\n')
            (Noc_obs.Export.jsonl ~metrics collector))

let trace_file_arg =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a span trace of this run and write it to $(docv) as \
                 a noc-trace/1 JSONL stream (lintable with \
                 $(b,noc_tool lint)).")

(* [--trace FILE] support for existing commands: collect spans around
   [f] and drop a noc-trace/1 stream at [path].  Metrics are reset so
   the stream describes this run alone. *)
let with_tracing trace f =
  match trace with
  | None -> f ()
  | Some path ->
      let collector = Noc_obs.Trace.create () in
      Noc_obs.Metrics.reset ();
      Noc_obs.Trace.install collector;
      let result = Fun.protect ~finally:Noc_obs.Trace.uninstall f in
      write_trace ~format:Jsonl ~output:(Some path) collector;
      Format.printf "trace written to %s@." path;
      result

(* Commands --------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun s -> Format.printf "%a@." Noc_benchmarks.Spec.pp s)
      Noc_benchmarks.Registry.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available benchmarks")
    Term.(const run $ const ())

let synth_cmd =
  let run () name n_switches degree save =
    let _, net = or_die (synthesize name n_switches degree) in
    maybe_save save net;
    let topo = Network.topology net in
    Format.printf "%a@.@." Topology.pp topo;
    let cdg = Cdg.build net in
    Format.printf "CDG: %d channels, %d dependencies@."
      (Cdg.n_channels cdg)
      (Noc_graph.Digraph.n_edges (Cdg.graph cdg));
    match Cdg.smallest_cycle cdg with
    | None -> Format.printf "design is deadlock-free as synthesized@."
    | Some cycle ->
        Format.printf "smallest CDG cycle (%d channels): %a@."
          (List.length cycle)
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
             Channel.pp)
          cycle
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize a topology and report deadlock status")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ save_arg)

let heuristic_arg =
  let choice =
    Arg.enum
      [
        ("smallest", Noc_deadlock.Removal.Smallest_cycle_first);
        ("any", Noc_deadlock.Removal.Any_cycle_first);
      ]
  in
  Arg.(value & opt choice Noc_deadlock.Removal.Smallest_cycle_first
       & info [ "heuristic" ] ~doc:"Cycle selection: $(b,smallest) or $(b,any).")

let directions_arg =
  let choice =
    Arg.enum
      [
        ("both", [ Noc_deadlock.Cost_table.Forward; Noc_deadlock.Cost_table.Backward ]);
        ("forward", [ Noc_deadlock.Cost_table.Forward ]);
        ("backward", [ Noc_deadlock.Cost_table.Backward ]);
      ]
  in
  Arg.(value
       & opt choice [ Noc_deadlock.Cost_table.Forward; Noc_deadlock.Cost_table.Backward ]
       & info [ "directions" ]
           ~doc:"Break directions to consider: $(b,both), $(b,forward) or $(b,backward).")

let resource_arg =
  let choice =
    Arg.enum
      [
        ("vc", Noc_deadlock.Break_cycle.Virtual_channel);
        ("link", Noc_deadlock.Break_cycle.Physical_link);
      ]
  in
  Arg.(value & opt choice Noc_deadlock.Break_cycle.Virtual_channel
       & info [ "resource" ]
           ~doc:"What a duplicated channel costs: a $(b,vc) on the same link \
                 (default) or a parallel physical $(b,link) for VC-less \
                 architectures.")

let reroute_first_arg =
  Arg.(value & flag
       & info [ "reroute-first" ]
           ~doc:"Try to break cycles by rerouting flows onto alternative \
                 physical paths before adding any VCs.")

let balance_arg =
  Arg.(value & flag
       & info [ "balance" ]
           ~doc:"After removal, spread flows across each link's VCs \
                 (acyclicity-preserving) to reduce head-of-line blocking.")

let no_incremental_arg =
  Arg.(value & flag
       & info [ "no-incremental" ]
           ~doc:"Rebuild the CDG from scratch every iteration (the \
                 historical behaviour) instead of maintaining it in \
                 place.  The result is identical; this exists for \
                 cross-checking and benchmarking.")

let validate_cdg_arg =
  Arg.(value & flag
       & info [ "validate-cdg" ]
           ~doc:"After every removal iteration, assert that the \
                 incrementally maintained CDG is structurally equal to \
                 a fresh rebuild.  Slow; for debugging.")

let remove_cmd =
  let run () name n_switches degree heuristic directions resource reroute
      balance no_incremental validate_cdg trace input save =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    if reroute then
      Format.printf "%a@.@." Noc_deadlock.Reroute.pp_report
        (Noc_deadlock.Reroute.run net);
    let report =
      with_tracing trace (fun () ->
          Noc_deadlock.Removal.run ~heuristic ~directions ~resource
            ~incremental:(not no_incremental) ~validate:validate_cdg net)
    in
    Format.printf "%a@.@." Noc_deadlock.Removal.pp_report report;
    if balance && report.Noc_deadlock.Removal.deadlock_free then
      Format.printf "%a@.@." Noc_deadlock.Vc_balance.pp_report
        (Noc_deadlock.Vc_balance.run net);
    let cert = Noc_deadlock.Verify.certify net in
    Format.printf "%a@.@." Noc_deadlock.Verify.pp_certificate cert;
    Format.printf "%a@." Noc_power.Report.pp_summary
      (Noc_power.Report.of_network net);
    maybe_save save net
  in
  Cmd.v
    (Cmd.info "remove" ~doc:"Remove deadlocks from a design, verify, and price")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ heuristic_arg $ directions_arg $ resource_arg $ reroute_first_arg
          $ balance_arg $ no_incremental_arg $ validate_cdg_arg
          $ trace_file_arg $ input_arg $ save_arg)

let optimal_cmd =
  let budget_arg =
    Arg.(value & opt int 30_000
         & info [ "budget" ] ~doc:"Branch-and-bound node budget.")
  in
  let run () name n_switches degree input budget =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    let heuristic = Noc_deadlock.Removal.run (Network.copy net) in
    let o = Noc_deadlock.Optimal.search ~node_budget:budget net in
    Format.printf "heuristic: +%d VC(s)@.%a@."
      heuristic.Noc_deadlock.Removal.vcs_added Noc_deadlock.Optimal.pp_result o
  in
  Cmd.v
    (Cmd.info "optimal"
       ~doc:"Exact minimum-VC removal (branch-and-bound oracle) vs the heuristic")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ input_arg $ budget_arg)

let harden_cmd =
  let run () name n_switches degree input save =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    let critical = Metrics.critical_links net in
    Format.printf "single points of failure: %d@." (List.length critical);
    let r = Noc_synth.Harden.run net in
    Format.printf "%a@." Noc_synth.Harden.pp_report r;
    maybe_save save net
  in
  Cmd.v
    (Cmd.info "harden" ~doc:"Add backup links until no single link failure \
                             can disconnect a flow")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ input_arg $ save_arg)

let strategy_arg =
  let choice =
    Arg.enum
      [
        ("greedy", Noc_deadlock.Resource_ordering.Greedy_ordered);
        ("hop-index", Noc_deadlock.Resource_ordering.Hop_index);
      ]
  in
  Arg.(value & opt choice Noc_deadlock.Resource_ordering.Hop_index
       & info [ "strategy" ]
           ~doc:"Ordering strategy: $(b,hop-index) (paper baseline) or $(b,greedy).")

let ordering_cmd =
  let run () name n_switches degree strategy input save =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    let report = Noc_deadlock.Resource_ordering.apply ~strategy net in
    Format.printf "%a@.@." Noc_deadlock.Resource_ordering.pp_report report;
    Format.printf "%a@." Noc_power.Report.pp_summary
      (Noc_power.Report.of_network net);
    maybe_save save net
  in
  Cmd.v
    (Cmd.info "ordering" ~doc:"Apply the resource-ordering baseline")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ strategy_arg $ input_arg $ save_arg)

let updown_cmd =
  let run () name n_switches degree input save =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    (match Noc_deadlock.Updown.apply net with
    | Ok report ->
        Format.printf "%a@.@." Noc_deadlock.Updown.pp_report report;
        Format.printf "%a@." Noc_power.Report.pp_summary
          (Noc_power.Report.of_network net);
        maybe_save save net
    | Error e ->
        Format.printf
          "up*/down* routing is infeasible on this design: %s@.(this is the \
           paper's argument for VC-based removal on custom topologies)@."
          e)
  in
  Cmd.v
    (Cmd.info "updown"
       ~doc:"Apply up*/down* turn-prohibition routing (literature baseline)")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ input_arg $ save_arg)

let dot_cmd =
  let kind_arg =
    let choice = Arg.enum [ ("topology", `Topology); ("cdg", `Cdg) ] in
    Arg.(value & opt choice `Topology
         & info [ "kind" ] ~doc:"What to render: $(b,topology) or $(b,cdg).")
  in
  let run () name n_switches degree input kind =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    match kind with
    | `Topology -> print_string (Dot_export.topology net)
    | `Cdg -> print_string (Dot_export.cdg net)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for the topology or the CDG")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ input_arg $ kind_arg)

let compare_cmd =
  let run () name n_switches =
    let spec = or_die (lookup_benchmark name) in
    let point = Noc_experiments.Sweep.evaluate spec ~n_switches in
    Format.printf "%a@." Noc_experiments.Sweep.pp_point point
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare removal vs ordering on one design point")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg)

let simulate_cmd =
  let fix_arg =
    Arg.(value & flag
         & info [ "remove-deadlocks" ] ~doc:"Run the removal pass before simulating.")
  in
  let packet_length_arg =
    Arg.(value & opt int 8 & info [ "packet-length" ] ~doc:"Flits per packet.")
  in
  let packets_arg =
    Arg.(value & opt int 2 & info [ "packets" ] ~doc:"Packets per flow.")
  in
  let workload_arg =
    Arg.(value
         & opt (some string) None
         & info [ "workload" ] ~docv:"KIND"
             ~doc:(Printf.sprintf
                     "Injection schedule to simulate, one of: %s. Defaults to \
                      the burst workload shaped by $(b,--packet-length) and \
                      $(b,--packets)."
                     (String.concat ", " Noc_benchmarks.Workloads.kinds)))
  in
  let run () name n_switches degree fix packet_length packets_per_flow workload
      =
    let _, net = or_die (synthesize name n_switches degree) in
    if fix then ignore (Noc_deadlock.Removal.run net);
    let workload =
      Option.map
        (fun kind ->
          match Noc_benchmarks.Workloads.of_kind kind with
          | Some w -> w
          | None ->
              or_die
                (Error
                   (Printf.sprintf "unknown workload %s (try: %s)" kind
                      (String.concat ", " Noc_benchmarks.Workloads.kinds))))
        workload
    in
    let result =
      Noc_experiments.Sim_check.check ~packet_length ~packets_per_flow
        ?workload
        ~label:(Printf.sprintf "%s@%d%s" name n_switches
                  (if fix then " (after removal)" else " (as synthesized)"))
        net
    in
    Format.printf "%a@." Noc_experiments.Sim_check.pp_result result
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the wormhole simulator on a design")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ fix_arg $ packet_length_arg $ packets_arg $ workload_arg)

let analyze_cmd =
  let capacity_arg =
    Arg.(value & opt float 4000.
         & info [ "capacity" ] ~doc:"Link capacity in MB/s for the feasibility check.")
  in
  let top_arg =
    Arg.(value & opt int 5
         & info [ "top" ] ~doc:"How many of the most power-hungry flows to list.")
  in
  let run () name n_switches degree input capacity top =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    Format.printf "%a@.@." Metrics.pp (Metrics.of_network net);
    Format.printf "%a@.@." Bandwidth.pp (Bandwidth.analyze ~capacity_mbps:capacity net);
    let fe = Noc_power.Flow_energy.of_network net in
    Format.printf "top %d flows by dynamic power (of %.3f mW total):@." top
      fe.Noc_power.Flow_energy.total_dynamic_mw;
    List.iteri
      (fun i c ->
        if i < top then
          Format.printf "  %a: %d hops, %.2f pJ/bit, %.3f mW@." Ids.Flow.pp
            c.Noc_power.Flow_energy.flow c.Noc_power.Flow_energy.hops
            c.Noc_power.Flow_energy.energy_pj_per_bit
            c.Noc_power.Flow_energy.power_mw)
      (Noc_power.Flow_energy.ranked fe);
    let deadlock_free = Noc_deadlock.Removal.is_deadlock_free net in
    Format.printf "@.deadlock-free as analyzed: %b@." deadlock_free
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Design health report: metrics, bandwidth feasibility, flow energy")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ input_arg $ capacity_arg $ top_arg)

let duato_cmd =
  let function_arg =
    let choice = Arg.enum [ ("static", `Static); ("adaptive", `Adaptive) ] in
    Arg.(value & opt choice `Static
         & info [ "function" ]
             ~doc:"Routing function: $(b,static) (from installed routes) or \
                   $(b,adaptive) (fully adaptive minimal).")
  in
  let escape_arg =
    let choice = Arg.enum [ ("all", `All); ("vc0", `Vc0) ] in
    Arg.(value & opt choice `All
         & info [ "escape" ]
             ~doc:"Escape channel set: $(b,all) channels or $(b,vc0) only.")
  in
  let run () name n_switches degree input func escape =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    let rf =
      match func with
      | `Static -> Routing_function.of_static_routes net
      | `Adaptive -> Routing_function.minimal_adaptive net
    in
    let escape =
      match escape with
      | `All -> Noc_deadlock.Duato.escape_everything
      | `Vc0 -> fun c -> Channel.vc c = 0
    in
    Format.printf "%a@." Noc_deadlock.Duato.pp_verdict
      (Noc_deadlock.Duato.check net rf ~escape)
  in
  Cmd.v
    (Cmd.info "duato"
       ~doc:"Check Duato's deadlock-freedom condition for a routing function")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ input_arg $ function_arg $ escape_arg)

let tables_cmd =
  let switch_arg =
    Arg.(value & opt (some int) None
         & info [ "switch" ] ~doc:"Print only this switch's table." ~docv:"N")
  in
  let run () name n_switches degree input switch =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    let t = Tables.compile net in
    (match Tables.check net t with
    | Ok () -> ()
    | Error e ->
        Format.eprintf "internal error: inconsistent tables: %s@." e;
        exit 1);
    Format.printf "%d table entries across %d switches@.@."
      (Tables.total_entries t)
      (Topology.n_switches (Network.topology net));
    let print s = Format.printf "%a@.@." (Tables.pp_switch t) (Ids.Switch.of_int s) in
    match switch with
    | Some s -> print s
    | None ->
        for s = 0 to Topology.n_switches (Network.topology net) - 1 do
          print s
        done
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Compile and print per-switch forwarding tables")
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ input_arg $ switch_arg)

let lint_cmd =
  let files_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"FILE"
             ~doc:"Inputs to lint: noc-design files, noc-jobs/1 job files \
                   and/or noc-trace/1 trace streams (classified by \
                   content).  With no $(docv), the benchmark named by \
                   $(b,--benchmark) is synthesized and linted.")
  in
  let format_arg =
    let choice = Arg.enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ] in
    Arg.(value & opt choice `Text
         & info [ "format" ]
             ~doc:"Output format: $(b,text), $(b,json) (noc-lint/1) or \
                   $(b,sarif) (SARIF 2.1.0).")
  in
  let fail_on_arg =
    let choice =
      Arg.enum
        [
          ("error", Diag_code.Error);
          ("warning", Diag_code.Warning);
          ("info", Diag_code.Info);
        ]
    in
    Arg.(value & opt choice Diag_code.Error
         & info [ "fail-on" ]
             ~doc:"Exit 2 when any finding at or above this severity exists: \
                   $(b,error) (default), $(b,warning) or $(b,info).")
  in
  let all_benchmarks_arg =
    Arg.(value & flag
         & info [ "all-benchmarks" ]
             ~doc:"Lint every registry benchmark (synthesized at the default \
                   switch count); ignores $(docv) and $(b,--benchmark).")
  in
  let capacity_arg =
    Arg.(value & opt float Noc_analysis.Passes.default_capacity_mbps
         & info [ "capacity" ]
             ~doc:"Link capacity in MB/s for the bandwidth pass.")
  in
  let suppress_arg =
    Arg.(value & opt (list string) []
         & info [ "suppress" ] ~docv:"CODE[,CODE]"
             ~doc:"Drop findings with these diagnostic codes (e.g. \
                   $(b,NOC-SIM-003)) before rendering and before the \
                   $(b,--fail-on) gate, so advisories can be muted without \
                   lowering the gate for every other code.  Unknown codes \
                   are an error.")
  in
  let jobs_arg =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for $(b,--all-benchmarks) (each benchmark \
                   is synthesized and analyzed independently; results are \
                   merged in registry order, so the output is identical at \
                   any $(docv)).  0 (default) picks the machine's \
                   recommended domain count.")
  in
  let output_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the report to $(docv) instead of stdout.")
  in
  let read_file path =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  in
  (* A design file's first significant line is its format tag; anything
     else is handed to the jobs pass (which reports unusable JSON with a
     stable code instead of a hard error). *)
  let is_design_text text =
    let lines = String.split_on_char '\n' text in
    let significant l =
      let l = String.trim l in
      l <> "" && not (String.length l > 0 && l.[0] = '#')
    in
    match List.find_opt significant lines with
    | Some l -> String.length (String.trim l) >= 10
                && String.sub (String.trim l) 0 10 = "noc-design"
    | None -> false
  in
  (* Trace streams announce themselves on the first line; a substring
     check (rather than a JSON parse) keeps corrupted trace files
     classified as traces, so the NOC-TRC pass gets to report them. *)
  let is_trace_text text =
    let first = match String.index_opt text '\n' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    let pat = "noc-trace/" in
    let n = String.length first and m = String.length pat in
    let rec scan i = i + m <= n && (String.sub first i m = pat || scan (i + 1)) in
    scan 0
  in
  let run () files format fail_on all_benchmarks name n_switches degree
      capacity suppress jobs output =
    let passes = Noc_service.Lint.all_passes ~capacity_mbps:capacity () in
    let suppress =
      List.map
        (fun code ->
          match Diag_code.find code with
          | Some _ -> code
          | None ->
              or_die
                (Error
                   (Printf.sprintf
                      "--suppress: unknown diagnostic code %s (see noc_tool \
                       lint --format json for the catalog)"
                      code)))
        suppress
    in
    let reports =
      if all_benchmarks then
        (* Per-benchmark synthesis + analysis is independent, so fan it
           out over a domain pool; Pool.run keeps registry order, so the
           merged output is byte-identical at any -j. *)
        let analyze_spec spec =
          let n = min 14 spec.Noc_benchmarks.Spec.n_cores in
          Result.map
            (fun (_, net) ->
              Noc_analysis.Engine.analyze ~passes
                ~label:(Printf.sprintf "%s@%d" spec.Noc_benchmarks.Spec.name n)
                (Noc_analysis.Pass.Design net))
            (synthesize spec.Noc_benchmarks.Spec.name n degree)
        in
        let specs = Noc_benchmarks.Registry.all in
        let domains =
          let auto =
            min (List.length specs) (Domain.recommended_domain_count ())
          in
          if jobs <= 0 then max 1 auto else jobs
        in
        List.map or_die (Noc_pool.Pool.run ~domains analyze_spec specs)
      else
        let targets =
          if files = [] then
            let spec = or_die (lookup_benchmark name) in
            let _, net = or_die (synthesize name n_switches degree) in
            ignore spec;
            [
              ( Printf.sprintf "%s@%d" name n_switches,
                Noc_analysis.Pass.Design net );
            ]
          else
            List.map
              (fun path ->
                let text =
                  or_die
                    (Result.map_error
                       (fun e -> Printf.sprintf "cannot read %s: %s" path e)
                       (read_file path))
                in
                if is_design_text text then
                  match Io.load text with
                  | Ok net -> (path, Noc_analysis.Pass.Design net)
                  | Error e ->
                      or_die (Error (Printf.sprintf "%s: %s" path e))
                else if is_trace_text text then
                  (path, Noc_analysis.Pass.Trace_file { path; text })
                else (path, Noc_analysis.Pass.Job_file { path; text }))
              files
        in
        List.map
          (fun (label, target) ->
            Noc_analysis.Engine.analyze ~passes ~label target)
          targets
    in
    let reports =
      if suppress = [] then reports
      else
        List.map
          (fun (r : Noc_analysis.Engine.report) ->
            {
              r with
              Noc_analysis.Engine.diagnostics =
                List.filter
                  (fun (d : Noc_analysis.Diagnostic.t) ->
                    not
                      (List.mem d.Noc_analysis.Diagnostic.code.Diag_code.code
                         suppress))
                  r.Noc_analysis.Engine.diagnostics;
            })
          reports
    in
    let rendered =
      match format with
      | `Text -> Format.asprintf "%a" Noc_analysis.Render.text reports
      | `Json ->
          Noc_json.Json.to_string_pretty
            (Noc_analysis.Render.json ~version reports)
          ^ "\n"
      | `Sarif ->
          Noc_json.Json.to_string_pretty
            (Noc_analysis.Render.sarif ~version reports)
          ^ "\n"
    in
    (match output with
    | None -> print_string rendered
    | Some path -> (
        try
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc rendered)
        with Sys_error e -> or_die (Error e)));
    if Noc_analysis.Engine.count_at_least ~floor:fail_on reports > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze designs and job files (stable diagnostic codes)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the multi-pass static analyzer over NoC designs and \
              noc-jobs/1 job files: route/topology well-formedness, dead \
              channels and VCs, CDG cycle witnesses, certificate rechecks, \
              Duato escape coverage, bandwidth feasibility and job-file \
              sanity.  Every finding carries a stable NOC-*-NNN code (see \
              docs/ANALYSIS.md).";
           `P
             "Exits 0 when no finding reaches the $(b,--fail-on) severity, \
              2 when one does, 1 on unusable inputs.  $(b,--suppress) drops \
              named codes before the gate, so e.g. NOC-SIM-003 saturation \
              advisories can be muted under $(b,--fail-on warning) without \
              also muting the NOC-DLF prover codes.";
         ])
    Term.(const run $ logs_term $ files_arg $ format_arg $ fail_on_arg
          $ all_benchmarks_arg $ benchmark_arg $ switches_arg $ degree_arg
          $ capacity_arg $ suppress_arg $ jobs_arg $ output_arg)

let prove_cmd =
  let all_benchmarks_arg =
    Arg.(value & flag
         & info [ "all-benchmarks" ]
             ~doc:"Prove every registry benchmark (synthesized at the \
                   default switch count); ignores $(b,--benchmark).")
  in
  let prepare_arg =
    let choice = Arg.enum [ ("as-is", `As_is); ("removal", `Removal) ] in
    Arg.(value & opt choice `As_is
         & info [ "prepare" ]
             ~doc:"Design preparation before proving: $(b,as-is) (default) \
                   or $(b,removal) (run the paper's removal algorithm first \
                   and report its VC cost against the static lower bound).")
  in
  let require_free_arg =
    Arg.(value & flag
         & info [ "require-free" ]
             ~doc:"Exit 2 unless every design is proven deadlock-free.")
  in
  let pp_order_head ppf order =
    let head = List.filteri (fun i _ -> i < 8) order in
    Format.fprintf ppf "%a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
         Channel.pp)
      head;
    let rest = List.length order - List.length head in
    if rest > 0 then Format.fprintf ppf " (+%d more)" rest
  in
  let run () name n_switches degree input prepare require_free all_benchmarks
      =
    let targets =
      if all_benchmarks then
        List.map
          (fun spec ->
            let n = min 14 spec.Noc_benchmarks.Spec.n_cores in
            let _, net =
              or_die (synthesize spec.Noc_benchmarks.Spec.name n degree)
            in
            (Printf.sprintf "%s@%d" spec.Noc_benchmarks.Spec.name n, net))
          Noc_benchmarks.Registry.all
      else
        let label =
          match input with
          | Some path -> path
          | None -> Printf.sprintf "%s@%d" name n_switches
        in
        [ (label, or_die (obtain_network ~input ~name ~n_switches ~degree)) ]
    in
    let disagreed = ref false and any_cyclic = ref false in
    List.iter
      (fun (label, net) ->
        (match prepare with
        | `As_is -> ()
        | `Removal ->
            let bound = Noc_analysis.Deadlock_freedom.vc_lower_bound net in
            let report = Noc_deadlock.Removal.run net in
            Format.printf
              "%s: removal added %d VC(s); static lower bound %d (gap %d)@."
              label report.Noc_deadlock.Removal.vcs_added
              bound.Noc_analysis.Deadlock_freedom.lower_bound
              (report.Noc_deadlock.Removal.vcs_added
              - bound.Noc_analysis.Deadlock_freedom.lower_bound));
        let v = Noc_analysis.Deadlock_freedom.analyze net in
        Format.printf "%s: %a@." label
          Noc_analysis.Deadlock_freedom.pp_verdict v;
        (match v.Noc_analysis.Deadlock_freedom.escape_order with
        | Some order ->
            Format.printf "%s: escape ordering: %a@." label pp_order_head
              order;
            if
              not (Noc_analysis.Deadlock_freedom.check_escape_order net order)
            then begin
              Format.printf
                "%s: DISAGREEMENT: escape ordering rejected by the \
                 independent replay@."
                label;
              disagreed := true
            end
        | None ->
            any_cyclic := true;
            if prepare = `As_is then begin
              let bound = Noc_analysis.Deadlock_freedom.vc_lower_bound net in
              Format.printf
                "%s: any duplication-based removal must add at least %d \
                 VC(s) (%d vertex-disjoint wait cycles)@."
                label bound.Noc_analysis.Deadlock_freedom.lower_bound
                (List.length
                   bound.Noc_analysis.Deadlock_freedom.disjoint_cycles)
            end);
        let cert = Noc_deadlock.Verify.certify net in
        let verdict_name free = if free then "deadlock-free" else "cyclic" in
        if
          Bool.equal cert.Noc_deadlock.Verify.acyclic
            v.Noc_analysis.Deadlock_freedom.deadlock_free
        then
          Format.printf "%s: agreement: certify and prover both say %s@."
            label
            (verdict_name v.Noc_analysis.Deadlock_freedom.deadlock_free)
        else begin
          Format.printf "%s: DISAGREEMENT: certify says %s, prover says %s@."
            label
            (verdict_name cert.Noc_deadlock.Verify.acyclic)
            (verdict_name v.Noc_analysis.Deadlock_freedom.deadlock_free);
          disagreed := true
        end)
      targets;
    if !disagreed || (require_free && !any_cyclic) then exit 2
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Decide deadlock freedom with the independent prover and print \
             its witness"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Re-decides deadlock freedom of the design's routing relation \
              with the escape-elimination prover (the Mendlovic\226\128\147Matias \
              necessary-and-sufficient condition specialized to static \
              single-path routing), which shares no code with the CDG \
              certifier, and prints the constructive witness: an escape \
              ordering when the design is deadlock-free, or a waiting knot \
              plus a concrete waits-for cycle when it is not.  On cyclic \
              designs it also reports the static lower bound on the VCs any \
              duplication-based removal must add; with $(b,--prepare \
              removal) it runs the paper's algorithm first and reports the \
              achieved VC cost against that bound.";
           `P
             "Every design is cross-checked against Verify.certify; any \
              disagreement between the two provers exits 2 (and is a bug in \
              one of them).  $(b,--require-free) additionally exits 2 when \
              a design is (agreed) cyclic, which makes the command a CI \
              gate for removal-prepared designs.";
         ])
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ input_arg $ prepare_arg $ require_free_arg $ all_benchmarks_arg)

(* One result line, shared between batch and submit so their outputs
   diff cleanly in the service-conformance CI job. *)
let print_job_line ~index ~label ~(outcome : Noc_service.Outcome.t) ~marker =
  let open Noc_service in
  let status, detail =
    match outcome.Outcome.status with
    | Outcome.Done ->
        let metric name =
          Option.map
            (fun v -> Printf.sprintf "%s %g" name v)
            (Outcome.metric outcome name)
        in
        ( "ok",
          String.concat ", "
            (List.filter_map metric
               [
                 (* removal/ordering/sweep columns *)
                 "vcs_added";
                 "iterations";
                 "power_mw";
                 (* simulate columns (absent on the other job types) *)
                 "deadlocked";
                 "cycles";
                 "avg_latency";
               ]) )
    | Outcome.Failed msg -> ("FAILED", msg)
    | Outcome.Timed_out -> ("TIMED OUT", "")
    | Outcome.Cancelled -> ("cancelled", "")
  in
  Format.printf "[%d] %-9s %-28s %8.1f ms%s%s@." index status label
    outcome.Outcome.wall_ms marker
    (if detail = "" then "" else "  " ^ detail)

let jobs_file_arg =
  Arg.(required
       & pos 0 (some string) None
       & info [] ~docv:"JOBS.json"
           ~doc:"Job file (schema noc-jobs/1; see docs/SERVICE.md).")

let read_whole_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error e

let load_jobs path =
  let open Noc_service in
  Result.bind
    (Result.map_error
       (fun e -> Printf.sprintf "cannot read job file: %s" e)
       (read_whole_file path))
    (fun text ->
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (Job.list_of_json text))

let batch_cmd =
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "j"; "domains" ]
             ~doc:"Worker domains. 1 runs jobs inline; more spreads them \
                   over a domain pool without changing any result.")
  in
  let telemetry_arg =
    Arg.(value
         & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE"
             ~doc:"Append one JSON line per event (job submitted / started / \
                   finished, batch summary) to $(docv).")
  in
  let cache_arg =
    Arg.(value & opt int 1024
         & info [ "cache-size" ]
             ~doc:"Capacity of the content-addressed result cache; 0 disables \
                   caching.")
  in
  let timeout_arg =
    Arg.(value
         & opt (some float) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-job wall budget. Jobs over budget are reported as \
                   timed-out and their metrics withheld (running jobs are \
                   never interrupted mid-flight).")
  in
  let fail_fast_arg =
    Arg.(value & flag
         & info [ "fail-fast" ]
             ~doc:"After the first failure or timeout, cancel jobs that have \
                   not started yet.")
  in
  let no_lint_arg =
    Arg.(value & flag
         & info [ "no-lint" ]
             ~doc:"Skip the submission-time lint gate (jobs with error-level \
                   static findings are normally rejected before reaching a \
                   worker domain).")
  in
  let print_result (r : Noc_service.Batch.job_result) =
    print_job_line ~index:r.Noc_service.Batch.index
      ~label:(Noc_service.Job.label r.Noc_service.Batch.job)
      ~outcome:r.Noc_service.Batch.outcome
      ~marker:(if r.Noc_service.Batch.cache_hit then "  (cache hit)" else "")
  in
  let run () jobs_file domains telemetry cache_size timeout_ms fail_fast
      no_lint trace =
    let open Noc_service in
    if domains < 1 then or_die (Error "--domains must be at least 1");
    if cache_size < 0 then or_die (Error "--cache-size must be >= 0");
    let jobs = or_die (load_jobs jobs_file) in
    let sink =
      match telemetry with
      | None -> Telemetry.null
      | Some path -> (
          try Telemetry.to_file path
          with Sys_error e -> or_die (Error e))
    in
    let config =
      {
        Batch.domains;
        cache =
          (if cache_size = 0 then None
           else Some (Result_cache.create ~capacity:cache_size));
        telemetry = sink;
        timeout_ms;
        fail_fast;
        lint = not no_lint;
      }
    in
    let _, summary =
      with_tracing trace (fun () ->
          Batch.run ~on_result:print_result config jobs)
    in
    Format.printf "@.%a@." Batch.pp_summary summary;
    if summary.Batch.succeeded <> summary.Batch.total then exit 2
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run a job file through the multicore batch service"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Reads a noc-jobs/1 file, runs every job through a pool of \
              worker domains with a content-addressed result cache, streams \
              one line per job in submission order, and prints a summary. \
              Results are bit-identical for any $(b,--domains) setting.";
           `P "Exits 1 on an unusable job file, 2 when any job fails.";
         ])
    Term.(const run $ logs_term $ jobs_file_arg $ domains_arg $ telemetry_arg
          $ cache_arg $ timeout_arg $ fail_fast_arg $ no_lint_arg
          $ trace_file_arg)

(* The persistent service ------------------------------------------- *)

let socket_arg =
  Arg.(value & opt string "noc-serve.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the daemon listens on (created by \
                 $(b,serve), connected to by $(b,submit), \
                 $(b,serve-stats) and $(b,top)).")

(* Repeatable SLO threshold override, shared by serve / campaign / top:
   how CI injects an artificially tight objective to prove the gate
   actually burns. *)
let slo_arg =
  Arg.(value & opt_all string []
       & info [ "slo" ] ~docv:"NAME=VALUE"
           ~doc:"Override a declared SLO threshold (e.g. \
                 $(b,submit_p99_ms=0.001)). Repeatable. Known names: \
                 submit_p99_ms, queue_wait_p99_ms, store_hit_rate, \
                 dlf_agreement, campaign_cell_p99_ms.")

let apply_slo_overrides overrides =
  List.fold_left
    (fun slos spec -> or_die (Noc_obs.Slo.override slos spec))
    Noc_obs.Slo.defaults overrides

let serve_cmd =
  let tcp_arg =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Additionally listen on 127.0.0.1:$(docv) for clients \
                   that cannot speak AF_UNIX.")
  in
  let domains_arg =
    Arg.(value & opt int 2
         & info [ "j"; "domains" ] ~doc:"Worker domains executing jobs.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue-capacity" ]
             ~doc:"Bounded work-queue depth; submissions beyond it get a \
                   typed $(b,overloaded) response instead of blocking.")
  in
  let store_arg =
    Arg.(value & opt string ".noc-store"
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Root of the persistent content-addressed result store \
                   (sharded objects + LRU index); warm hits survive \
                   restarts.")
  in
  let no_store_arg =
    Arg.(value & flag
         & info [ "no-store" ]
             ~doc:"Serve without a result store (every job recomputes).")
  in
  let store_capacity_arg =
    Arg.(value & opt int 4096
         & info [ "store-capacity" ]
             ~doc:"Maximum objects kept on disk before LRU eviction.")
  in
  let telemetry_arg =
    Arg.(value
         & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE"
             ~doc:"Write one JSON line per event (connections, jobs, drain) \
                   to $(docv) on shutdown (atomic temp-plus-rename).")
  in
  let no_lint_arg =
    Arg.(value & flag
         & info [ "no-lint" ]
             ~doc:"Disable the submission-time lint gate (error-level \
                   static findings normally reject a job before it \
                   reaches a worker).")
  in
  let metrics_addr_arg =
    Arg.(value & opt (some int) None
         & info [ "metrics-addr" ] ~docv:"PORT"
             ~doc:"Serve one-shot HTTP GET /metrics scrapes (Prometheus \
                   text format v0.0.4, including the noc_slo_ok verdict \
                   gauges) on 127.0.0.1:$(docv).")
  in
  let run () socket tcp metrics_addr domains queue store no_store
      store_capacity telemetry no_lint slo_overrides trace =
    let open Noc_service in
    if domains < 1 then or_die (Error "--domains must be at least 1");
    if queue < 1 then or_die (Error "--queue-capacity must be at least 1");
    if store_capacity < 1 then
      or_die (Error "--store-capacity must be at least 1");
    let store =
      if no_store then None
      else
        match Store.create ~root:store ~capacity:store_capacity with
        | s -> Some s
        | exception Sys_error e -> or_die (Error e)
        | exception Unix.Unix_error (e, _, arg) ->
            or_die
              (Error (Printf.sprintf "%s: %s" arg (Unix.error_message e)))
    in
    let sink =
      match telemetry with
      | None -> Telemetry.null
      | Some path -> (
          try Telemetry.to_file path with Sys_error e -> or_die (Error e))
    in
    let config =
      {
        Server.socket_path = socket;
        tcp_port = tcp;
        metrics_addr;
        domains;
        queue_capacity = queue;
        store;
        telemetry = sink;
        lint = not no_lint;
        slos = apply_slo_overrides slo_overrides;
        series_interval_s = Server.default_config.Server.series_interval_s;
        series_window = Server.default_config.Server.series_window;
      }
    in
    let server = Server.create config in
    let request_stop _ = Server.stop server in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Format.printf "noc serve: listening on %s%s%s (%d domain%s, store: %s)@."
      socket
      (match tcp with
      | None -> ""
      | Some port -> Printf.sprintf " and 127.0.0.1:%d" port)
      (match metrics_addr with
      | None -> ""
      | Some port -> Printf.sprintf ", metrics on http://127.0.0.1:%d/metrics" port)
      domains
      (if domains = 1 then "" else "s")
      (match store with
      | None -> "disabled"
      | Some s -> Printf.sprintf "%s (%d warm)" (Store.root s)
                    (Store.stats s).Store.entries);
    Format.print_flush ();
    (try with_tracing trace (fun () -> Server.run server)
     with
    | Unix.Unix_error (e, _, arg) ->
        or_die (Error (Printf.sprintf "%s: %s" arg (Unix.error_message e)))
    | Failure e -> or_die (Error e));
    Format.printf "noc serve: drained cleanly@.";
    Format.print_flush ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent job daemon (noc-wire/1 over a Unix socket)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Long-lived counterpart of $(b,noc_tool batch): accepts \
              noc-jobs/1 jobs over a length-prefixed-JSON wire protocol, \
              vets each through the static lint gate, serves repeats from \
              a disk-backed content-addressed store (warm across \
              restarts), runs misses on a domain pool with typed \
              backpressure, and streams results as they complete.";
           `P
             "SIGTERM or SIGINT drains gracefully: stop accepting, finish \
              in-flight jobs, flush telemetry, trace and the store index, \
              exit 0.  See docs/SERVICE.md for the wire protocol and \
              store layout, docs/OBSERVABILITY.md for the metrics \
              endpoint and SLOs.";
         ])
    Term.(const run $ logs_term $ socket_arg $ tcp_arg $ metrics_addr_arg
          $ domains_arg $ queue_arg $ store_arg $ no_store_arg
          $ store_capacity_arg $ telemetry_arg $ no_lint_arg $ slo_arg
          $ trace_file_arg)

let submit_cmd =
  let corr_arg =
    Arg.(value
         & opt (some string) None
         & info [ "corr" ] ~docv:"PREFIX"
             ~doc:"Correlation-id prefix: job $(i,i) is submitted with \
                   correlation id $(docv)-$(i,i), which the daemon threads \
                   into its telemetry events and job spans. Defaults to \
                   $(b,submit-<pid>).")
  in
  let run () jobs_file socket corr =
    let open Noc_service in
    let jobs = or_die (load_jobs jobs_file) in
    let corr_prefix =
      match corr with
      | Some p -> p
      | None -> Printf.sprintf "submit-%d" (Unix.getpid ())
    in
    let client = or_die (Client.connect ~socket) in
    let print_result index job (reply : Wire.response) =
      match reply with
      | Wire.Result { outcome; cached; _ } ->
          print_job_line ~index ~label:(Job.label job) ~outcome
            ~marker:(if cached then "  (warm)" else "")
      | Wire.Rejected { reason; _ } ->
          Format.printf "[%d] %-9s %-28s %s@." index "REJECTED" (Job.label job)
            reason
      | Wire.Overloaded { queue_depth; _ } ->
          Format.printf "[%d] %-9s %-28s queue full (depth %d)@." index
            "OVERLOADED" (Job.label job) queue_depth
      | Wire.Hello _ | Wire.Stats_report _ | Wire.Metrics_report _
      | Wire.Pong | Wire.Error_msg _ ->
          ()
    in
    let replies =
      match Client.submit_all ~corr_prefix client jobs ~on_result:print_result
      with
      | Ok replies ->
          Client.close client;
          replies
      | Error e ->
          Client.close client;
          or_die (Error e)
    in
    let count p = List.length (List.filter p replies) in
    let ok =
      count (function
        | Wire.Result { outcome; _ } -> Outcome.is_done outcome
        | _ -> false)
    in
    let failed =
      count (function
        | Wire.Result { outcome; _ } -> not (Outcome.is_done outcome)
        | _ -> false)
    in
    let rejected = count (function Wire.Rejected _ -> true | _ -> false) in
    let overloaded = count (function Wire.Overloaded _ -> true | _ -> false) in
    let warm =
      count (function Wire.Result { cached = true; _ } -> true | _ -> false)
    in
    let total = List.length replies in
    Format.printf "@.%d job%s: %d ok, %d failed, %d rejected, %d overloaded, \
                   %d warm hit%s@."
      total
      (if total = 1 then "" else "s")
      ok failed rejected overloaded warm
      (if warm = 1 then "" else "s");
    if ok <> total then exit 2
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a job file to a running noc serve daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Reads a noc-jobs/1 file, submits every job over the daemon's \
              socket, and streams one line per result in submission order \
              — same columns as $(b,noc_tool batch), with $(b,(warm)) \
              marking results served from the daemon's persistent store.";
           `P
             "Every job carries a correlation id ($(b,--corr) prefix plus \
              its index), so one submission is traceable across the wire, \
              the daemon's telemetry JSONL and its trace spans.";
           `P
             "Exits 1 on an unusable job file or unreachable daemon, 2 \
              when any job fails, is rejected or is shed as overloaded.";
         ])
    Term.(const run $ logs_term $ jobs_file_arg $ socket_arg $ corr_arg)

(* Client-side rendering of the typed stats record — line-compatible
   with the daemon's legacy text report, because the serve-smoke and
   store-persistence CI jobs grep these exact shapes out of
   serve-stats output. *)
let render_wire_stats b (s : Noc_service.Wire.stats) =
  let open Noc_service in
  Printf.bprintf b "serve_uptime_seconds %.3f\n" s.Wire.uptime_s;
  Printf.bprintf b "serve_queue_depth %d\n" s.Wire.queue_depth;
  Printf.bprintf b "serve_inflight %d\n" s.Wire.inflight;
  Printf.bprintf b "serve_draining %d\n" (if s.Wire.draining then 1 else 0);
  match s.Wire.store with
  | None -> Printf.bprintf b "store_enabled 0\n"
  | Some st ->
      Printf.bprintf b "store_enabled 1\n";
      Printf.bprintf b "store_entries %d\n" st.Wire.entries;
      Printf.bprintf b "store_hits %d\n" st.Wire.hits;
      Printf.bprintf b "store_misses %d\n" st.Wire.misses;
      Printf.bprintf b "store_evictions %d\n" st.Wire.evictions;
      Printf.bprintf b "store_hit_rate %.6f\n" st.Wire.hit_rate

let render_wire_metric b m =
  match m with
  | Noc_obs.Metrics.Counter { value; _ } ->
      Printf.bprintf b "%s %d\n" (Noc_obs.Metrics.metric_name m) value
  | Noc_obs.Metrics.Gauge { value; _ } ->
      Printf.bprintf b "%s %g\n" (Noc_obs.Metrics.metric_name m) value
  | Noc_obs.Metrics.Histogram { buckets; overflow; count; sum; _ } ->
      let name = Noc_obs.Metrics.metric_name m in
      let cum = ref 0 in
      List.iter
        (fun (le, n) ->
          cum := !cum + n;
          Printf.bprintf b "%s_bucket{le=\"%g\"} %d\n" name le !cum)
        buckets;
      Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name (!cum + overflow);
      Printf.bprintf b "%s_sum %g\n" name sum;
      Printf.bprintf b "%s_count %d\n" name count

let fetch_metrics_report socket =
  let open Noc_service in
  let client = or_die (Client.connect ~socket) in
  match Client.metrics client with
  | Ok report ->
      Client.close client;
      report
  | Error e ->
      Client.close client;
      or_die (Error e)

let serve_stats_cmd =
  let run () socket =
    let open Noc_service in
    let report = fetch_metrics_report socket in
    let b = Buffer.create 1024 in
    Printf.bprintf b "# noc serve metrics (%s)\n" Wire.protocol;
    render_wire_stats b report.Wire.mr_stats;
    (match Noc_obs.Expo.metrics_of_json report.Wire.mr_metrics with
    | Ok metrics -> List.iter (render_wire_metric b) metrics
    | Error e ->
        or_die (Error (Printf.sprintf "malformed metrics payload: %s" e)));
    print_string (Buffer.contents b)
  in
  Cmd.v
    (Cmd.info "serve-stats"
       ~doc:"Print a running daemon's live /metrics-style report"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Asks the daemon for its typed metrics report and renders it \
              as text: uptime, queue depth, in-flight jobs, store \
              entries/hit-rate/evictions, then every counter, gauge and \
              histogram in the noc_obs registry (including the \
              noc_slo_ok verdict gauges), one plain-text line each.";
           `P
             "For the Prometheus exposition format, scrape the daemon's \
              $(b,--metrics-addr) HTTP endpoint or use $(b,noc_tool top \
              --raw) instead.";
         ])
    Term.(const run $ logs_term $ socket_arg)

(* noc_tool top ----------------------------------------------------- *)

(* One-shot HTTP/1.0 GET against the daemon's --metrics-addr listener:
   connect, send the request, read to EOF, strip the header block. *)
let http_scrape ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally (fun () ->
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot connect to 127.0.0.1:%d: %s" port
               (Unix.error_message e))
      | () -> (
          let req = "GET /metrics HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n" in
          let rec write_all off =
            if off < String.length req then
              write_all
                (off + Unix.write_substring fd req off (String.length req - off))
          in
          let buf = Buffer.create 4096 and chunk = Bytes.create 65536 in
          let rec read_all () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                read_all ()
          in
          try
            write_all 0;
            read_all ();
            let response = Buffer.contents buf in
            let header_end =
              match String.index_opt response '\r' with
              | _ -> (
                  let rec find i =
                    if i + 3 >= String.length response then None
                    else if String.sub response i 4 = "\r\n\r\n" then Some i
                    else find (i + 1)
                  in
                  find 0)
            in
            match header_end with
            | None -> Error "malformed HTTP response (no header terminator)"
            | Some i ->
                let status = String.sub response 0 (String.index response '\r') in
                if
                  String.length status >= 12
                  && String.sub status 9 3 = "200"
                then
                  Ok
                    (String.sub response (i + 4)
                       (String.length response - i - 4))
                else Error (Printf.sprintf "scrape failed: %s" status)
          with Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "scrape failed: %s" (Unix.error_message e))))

let top_cmd =
  let addr_arg =
    Arg.(value & opt (some int) None
         & info [ "addr" ] ~docv:"PORT"
             ~doc:"Scrape the daemon's HTTP metrics listener on \
                   127.0.0.1:$(docv) instead of speaking the wire protocol \
                   (implies $(b,--raw)).")
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between refreshes.")
  in
  let iterations_arg =
    Arg.(value & opt int 0
         & info [ "iterations" ] ~docv:"N"
             ~doc:"Stop after $(docv) refreshes; 0 runs until interrupted.")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Print a single frame and exit (no screen clearing); \
                   shorthand for $(b,--iterations 1).")
  in
  let raw_arg =
    Arg.(value & flag
         & info [ "raw" ]
             ~doc:"Print one validated Prometheus text exposition instead \
                   of the dashboard (repeat with $(b,--iterations)). The \
                   document is checked against the format parser first, \
                   so a malformed scrape fails loudly.")
  in
  (* Dashboard helpers: all lookups go through the decoded snapshot so
     wire mode and tests share one path. *)
  let gauge_value metrics name =
    List.find_map
      (function
        | Noc_obs.Metrics.Gauge { name = n; labels = []; value } when n = name
          ->
            Some value
        | _ -> None)
      metrics
  in
  let counter_value metrics name =
    List.find_map
      (function
        | Noc_obs.Metrics.Counter { name = n; labels = []; value } when n = name
          ->
            Some value
        | _ -> None)
      metrics
  in
  let render_dashboard ~socket ~interval ~prev
      (report : Noc_service.Wire.metrics_report) metrics verdicts =
    let open Noc_service in
    let b = Buffer.create 2048 in
    let s = report.Wire.mr_stats in
    let now = Unix.gettimeofday () in
    Printf.bprintf b "noc top — %s   uptime %.1fs   refresh %.1fs\n" socket
      s.Wire.uptime_s interval;
    let workers = gauge_value metrics "noc_pool_workers"
    and busy = gauge_value metrics "noc_pool_busy_workers" in
    Printf.bprintf b "queue %d   inflight %d   draining %s   workers %s\n"
      s.Wire.queue_depth s.Wire.inflight
      (if s.Wire.draining then "yes" else "no")
      (match (workers, busy) with
      | Some w, Some u -> Printf.sprintf "%.0f (%.0f busy)" w u
      | Some w, None -> Printf.sprintf "%.0f" w
      | None, _ -> "-");
    (match s.Wire.store with
    | None -> Printf.bprintf b "store: disabled\n"
    | Some st ->
        Printf.bprintf b
          "store: %d entries, %d hits / %d misses (hit rate %.1f%%), %d \
           evictions\n"
          st.Wire.entries st.Wire.hits st.Wire.misses
          (100. *. st.Wire.hit_rate) st.Wire.evictions);
    Printf.bprintf b "jobs %s   rejected %s   overloaded %s   warm hits %s\n"
      (match counter_value metrics "noc_serve_jobs_total" with
      | Some v -> string_of_int v
      | None -> "-")
      (match counter_value metrics "noc_serve_rejected_total" with
      | Some v -> string_of_int v
      | None -> "-")
      (match counter_value metrics "noc_serve_overloaded_total" with
      | Some v -> string_of_int v
      | None -> "-")
      (match counter_value metrics "noc_serve_warm_hits_total" with
      | Some v -> string_of_int v
      | None -> "-");
    (* Per-method latency table; rates are client-side deltas between
       refreshes, so the first frame shows "-". *)
    Printf.bprintf b "\n%-10s %9s %9s %9s %9s\n" "method" "req/s" "p50 ms"
      "p99 ms" "count";
    let methods =
      List.filter_map
        (fun m ->
          match m with
          | Noc_obs.Metrics.Histogram { name = "noc_serve_request_ms"; labels;
                                        count; _ } ->
              Option.map
                (fun meth -> (meth, m, count))
                (List.assoc_opt "method" labels)
          | _ -> None)
        metrics
    in
    List.iter
      (fun (meth, m, count) ->
        let quant q =
          match Noc_obs.Metrics.quantile ~q m with
          | Some v -> Printf.sprintf "%9.2f" v
          | None -> Printf.sprintf "%9s" "-"
        in
        let rate =
          match !prev with
          | Some (t0, counts) -> (
              match List.assoc_opt meth counts with
              | Some c0 when now > t0 ->
                  Printf.sprintf "%9.2f" (float_of_int (count - c0) /. (now -. t0))
              | _ -> Printf.sprintf "%9s" "-")
          | None -> Printf.sprintf "%9s" "-"
        in
        Printf.bprintf b "%-10s %s %s %s %9d\n" meth rate (quant 0.5)
          (quant 0.99) count)
      (List.sort compare methods);
    prev := Some (now, List.map (fun (meth, _, c) -> (meth, c)) methods);
    (match
       List.find_map
         (fun m ->
           match m with
           | Noc_obs.Metrics.Histogram
               { name = "noc_serve_submit_to_result_ms"; _ } ->
               Noc_obs.Metrics.quantile ~q:0.99 m
           | _ -> None)
         metrics
     with
    | Some p99 -> Printf.bprintf b "\nsubmit-to-result p99: %.2f ms\n" p99
    | None -> ());
    if verdicts <> [] then begin
      Printf.bprintf b "\nSLOs:\n";
      List.iter
        (fun v ->
          Printf.bprintf b "  %s\n"
            (Format.asprintf "%a" Noc_obs.Slo.pp_verdict v))
        verdicts
    end;
    Buffer.contents b
  in
  let run () socket addr interval iterations once raw =
    let open Noc_service in
    if interval <= 0. then or_die (Error "--interval must be positive");
    let raw = raw || addr <> None in
    let iterations =
      (* Raw dumps are one-shot unless a repeat count is asked for;
         the dashboard refreshes until interrupted. *)
      if once then 1 else if raw && iterations = 0 then 1 else iterations
    in
    let prev = ref None in
    let frame () =
      if raw then begin
        let text =
          match addr with
          | Some port -> or_die (http_scrape ~port)
          | None ->
              let report = fetch_metrics_report socket in
              let metrics =
                match Noc_obs.Expo.metrics_of_json report.Wire.mr_metrics with
                | Ok ms -> ms
                | Error e ->
                    or_die
                      (Error (Printf.sprintf "malformed metrics payload: %s" e))
              in
              Noc_obs.Expo.text metrics
        in
        (match Noc_obs.Expo.check_text text with
        | Ok () -> ()
        | Error e ->
            or_die (Error (Printf.sprintf "malformed exposition: %s" e)));
        print_string text
      end
      else begin
        let report = fetch_metrics_report socket in
        let metrics =
          match Noc_obs.Expo.metrics_of_json report.Wire.mr_metrics with
          | Ok ms -> ms
          | Error e ->
              or_die (Error (Printf.sprintf "malformed metrics payload: %s" e))
        in
        let verdicts =
          match report.Wire.mr_slo with
          | Noc_json.Json.Null -> []
          | v -> (
              match Noc_obs.Slo.verdicts_of_json v with
              | Ok vs -> vs
              | Error e ->
                  or_die (Error (Printf.sprintf "malformed slo payload: %s" e)))
        in
        if iterations <> 1 then print_string "\027[H\027[2J";
        print_string
          (render_dashboard ~socket ~interval ~prev report metrics verdicts)
      end;
      flush stdout
    in
    let rec loop i =
      if iterations = 0 || i < iterations then begin
        frame ();
        if iterations = 0 || i + 1 < iterations then Unix.sleepf interval;
        loop (i + 1)
      end
    in
    loop 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live dashboard over a running noc serve daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Polls the daemon's typed metrics report over the wire and \
              renders a refreshing dashboard: per-method request rates \
              (client-side deltas between refreshes), p50/p99 latency \
              quantiles interpolated from histogram buckets, queue depth, \
              worker utilization, store hit rate, and the declared SLOs \
              with their burn status.";
           `P
             "$(b,--raw) prints the Prometheus text exposition instead \
              (validated against the format checker); with $(b,--addr) \
              the document is scraped from the daemon's HTTP listener, \
              exactly as a Prometheus server would see it.";
         ])
    Term.(const run $ logs_term $ socket_arg $ addr_arg $ interval_arg
          $ iterations_arg $ once_arg $ raw_arg)

let campaign_cmd =
  let benchmarks_arg =
    Arg.(value
         & opt (list string) [ "D26_media"; "D36_8" ]
         & info [ "benchmarks" ] ~docv:"NAMES"
             ~doc:(Printf.sprintf
                     "Comma-separated benchmark names to sweep. Available: %s."
                     (String.concat ", " Noc_benchmarks.Registry.names)))
  in
  let switch_counts_arg =
    Arg.(value & opt (list int) [ 14 ]
         & info [ "switch-counts" ] ~docv:"NS"
             ~doc:"Comma-separated switch counts to synthesize each benchmark \
                   at.")
  in
  let workloads_arg =
    Arg.(value
         & opt (list string) [ "burst"; "uniform"; "hotspot"; "transpose" ]
         & info [ "workloads" ] ~docv:"KINDS"
             ~doc:(Printf.sprintf
                     "Comma-separated workload kinds, from: %s."
                     (String.concat ", " Noc_benchmarks.Workloads.kinds)))
  in
  let rates_arg =
    Arg.(value & opt (list float) []
         & info [ "rates" ] ~docv:"RATES"
             ~doc:"Comma-separated injection rates (flits/cycle/flow). Each \
                   rate-parameterized workload (uniform, hotspot) is swept \
                   once per rate, which is what fills the load-latency \
                   section of the report; other kinds ignore this.")
  in
  let prepares_arg =
    Arg.(value
         & opt (list string) [ "as-is"; "removal"; "ordering" ]
         & info [ "prepares" ] ~docv:"PREPARES"
             ~doc:"Comma-separated design preparations to compare, from: \
                   as-is, removal, ordering.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"PRNG seed applied to every seeded workload.")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "j"; "domains" ]
             ~doc:"Worker domains for the batch engine. Results are \
                   bit-identical for any setting.")
  in
  let campaign_store_arg =
    Arg.(value
         & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Persistent result store. Cells already in the store are \
                   served warm (this is how an interrupted campaign resumes); \
                   fresh results are written back for the next run.")
  in
  let store_capacity_arg =
    Arg.(value & opt int 4096
         & info [ "store-capacity" ]
             ~doc:"Maximum objects kept on disk before LRU eviction.")
  in
  let out_arg =
    Arg.(value
         & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the machine-readable bench-sim/1 report (the \
                   BENCH_sim.json the CI gate checks) to $(docv).")
  in
  let report_arg =
    Arg.(value
         & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Render the campaign as a Markdown document (summary, \
                   per-cell table, load-latency curves) to $(docv).")
  in
  let no_lint_arg =
    Arg.(value & flag
         & info [ "no-lint" ]
             ~doc:"Skip the submission-time lint gate.")
  in
  let no_expect_arg =
    Arg.(value & flag
         & info [ "no-expect-deadlock" ]
             ~doc:"Do not require that at least one unprotected cyclic-CDG \
                   cell deadlocks. Useful for campaigns over acyclic designs \
                   only.")
  in
  let write_file path contents =
    match
      try
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc contents);
        Ok ()
      with Sys_error e -> Error e
    with
    | Ok () -> Format.printf "wrote %s@." path
    | Error e -> or_die (Error e)
  in
  let run () benchmarks switch_counts degree workload_kinds rates seed
      prepare_names domains store_dir store_capacity out report_path no_lint
      no_expect slo_overrides trace =
    let open Noc_service in
    if domains < 1 then or_die (Error "--domains must be at least 1");
    if store_capacity < 1 then
      or_die (Error "--store-capacity must be at least 1");
    (* Validate overrides before any cell runs. *)
    let slos = apply_slo_overrides slo_overrides in
    List.iter (fun b -> ignore (or_die (lookup_benchmark b))) benchmarks;
    let workloads =
      List.map
        (fun kind ->
          match Noc_benchmarks.Workloads.of_kind kind with
          | Some w -> Noc_benchmarks.Workloads.with_seed w seed
          | None ->
              or_die
                (Error
                   (Printf.sprintf "unknown workload %s (try: %s)" kind
                      (String.concat ", " Noc_benchmarks.Workloads.kinds))))
        workload_kinds
    in
    let prepares =
      List.map (fun name -> or_die (Job.prepare_of_name name)) prepare_names
    in
    let points =
      List.concat_map
        (fun benchmark ->
          List.map
            (fun n_switches -> { Noc_campaign.Campaign.benchmark; n_switches })
            switch_counts)
        benchmarks
    in
    let jobs =
      Noc_campaign.Campaign.grid ~max_degree:degree ~prepares ~rates ~points
        ~workloads ()
    in
    let store =
      match store_dir with
      | None -> None
      | Some root -> (
          match Store.create ~root ~capacity:store_capacity with
          | s -> Some s
          | exception Sys_error e -> or_die (Error e)
          | exception Unix.Unix_error (e, _, arg) ->
              or_die
                (Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))))
    in
    Format.printf "campaign: %d cells (%d designs x %d workload variants x %d \
                   preparations)@."
      (List.length jobs) (List.length points)
      (List.length jobs
      / max 1 (List.length points * List.length prepares))
      (List.length prepares);
    (* One deterministic line per cell: no wall times, so the output is
       stable enough for cram tests and diffing between runs. *)
    let index = ref 0 in
    let print_cell (cell : Noc_campaign.Campaign.cell) =
      let word =
        if not (Outcome.is_done cell.Noc_campaign.Campaign.outcome) then
          "FAILED"
        else if Noc_campaign.Campaign.deadlocked cell then
          if Noc_campaign.Campaign.certified cell then "deadlock (certified)"
          else "deadlock"
        else "completed"
      in
      incr index;
      Format.printf "[%d] %-21s %s%s@." !index word
        (Job.label cell.Noc_campaign.Campaign.job)
        (if cell.Noc_campaign.Campaign.cached then "  (warm)" else "")
    in
    let cells =
      with_tracing trace (fun () ->
          Noc_campaign.Campaign.run ~on_cell:print_cell
            { Noc_campaign.Campaign.domains; store; lint = not no_lint }
            jobs)
    in
    let verdict =
      Noc_campaign.Campaign.verify ~expect_cyclic_deadlock:(not no_expect)
        cells
    in
    Format.printf "@.%a@." Noc_campaign.Campaign.pp_verdict verdict;
    (* SLO gate: the campaign's own objectives (per-cell wall time,
       prover agreement, …) evaluated over the in-process registry the
       run just populated. *)
    let slo_verdicts =
      Noc_obs.Slo.evaluate slos (Noc_obs.Metrics.snapshot ())
    in
    let burned = Noc_obs.Slo.burned slo_verdicts in
    (* Green verdicts print as one deterministic line (the measured
       values are wall times, which would churn the cram pins); burned
       ones print in full — that output precedes a non-zero exit. *)
    (match burned with
    | [] ->
        Format.printf "slo: %d objective%s green@."
          (List.length slo_verdicts)
          (if List.length slo_verdicts = 1 then "" else "s")
    | bs ->
        Format.printf "%d SLO%s burned:@." (List.length bs)
          (if List.length bs = 1 then "" else "s");
        List.iter (fun v -> Format.printf "  %a@." Noc_obs.Slo.pp_verdict v) bs);
    Option.iter
      (fun path ->
        write_file path
          (Noc_campaign.Sim_report.to_json
             (Noc_campaign.Sim_report.of_cells ~slo:slo_verdicts cells)))
      out;
    Option.iter
      (fun path ->
        write_file path (Noc_campaign.Campaign.markdown_report cells verdict))
      report_path;
    if not (Noc_campaign.Campaign.verdict_ok verdict) || burned <> [] then
      exit 2
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Sweep a simulation campaign and check the deadlock invariants"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Builds the full grid (benchmark x switch count x workload x \
              injection rate x preparation) of Simulate jobs, runs it \
              through the multicore batch engine behind the lint gate, and \
              checks every finished cell against the paper's behavioural \
              claim: designs prepared by VC-based removal or resource \
              ordering never deadlock, and every deadlock on an unprotected \
              cyclic-CDG design carries a waits-for cycle certificate.";
           `P
             "With $(b,--store), finished cells persist on disk and a rerun \
              of the same campaign serves them warm, so an interrupted \
              sweep resumes where it stopped.  $(b,--out) emits the \
              bench-sim/1 JSON consumed by the CI regression gate; \
              $(b,--report) renders the Markdown table with load-latency \
              curves.";
           `P
             "After the behavioural invariants, the declared SLOs \
              (per-cell p99 wall time, prover/certify agreement, …) are \
              evaluated over the run's metrics registry and recorded in \
              the report's $(b,slo) section; $(b,--slo NAME=VALUE) \
              overrides a threshold, which is how CI injects a violation \
              to prove the gate burns.";
           `P "Exits 2 when any invariant is violated or any SLO is burned.";
         ])
    Term.(const run $ logs_term $ benchmarks_arg $ switch_counts_arg
          $ degree_arg $ workloads_arg $ rates_arg $ seed_arg $ prepares_arg
          $ domains_arg $ campaign_store_arg $ store_capacity_arg $ out_arg
          $ report_arg $ no_lint_arg $ no_expect_arg $ slo_arg
          $ trace_file_arg)

let trace_cmd =
  let output_arg =
    Arg.(value
         & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the trace to $(docv) instead of stdout.")
  in
  let run () name n_switches degree format output input =
    let net = or_die (obtain_network ~input ~name ~n_switches ~degree) in
    let collector = Noc_obs.Trace.create () in
    Noc_obs.Metrics.reset ();
    Noc_obs.Trace.install collector;
    let report =
      Fun.protect ~finally:Noc_obs.Trace.uninstall (fun () ->
          Noc_deadlock.Removal.run net)
    in
    write_trace ~format ~output collector;
    match output with
    | Some path ->
        Format.printf "trace written to %s (%d iterations, %d VCs added)@."
          path report.Noc_deadlock.Removal.iterations
          report.Noc_deadlock.Removal.vcs_added
    | None -> ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run deadlock removal under the span tracer and export the trace"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Synthesizes (or loads) a design, runs the removal algorithm \
              with tracing enabled, and exports the spans: one \
              $(b,removal.iteration) span per broken cycle, carrying its \
              cycle length, candidate-edge count, chosen direction, cost \
              and VCs added, with the cycle search, cost tables, break and \
              CDG update nested underneath.";
           `P
             "$(b,--format chrome) loads directly into Perfetto \
              (ui.perfetto.dev) or chrome://tracing; $(b,--format jsonl) \
              emits the noc-trace/1 stream checked by the NOC-TRC lint \
              pass; $(b,--format summary) prints a per-phase wall-time \
              table.";
         ])
    Term.(const run $ logs_term $ benchmark_arg $ switches_arg $ degree_arg
          $ trace_format_arg $ output_arg $ input_arg)

let example_cmd =
  let run () = Format.printf "%t@." Noc_experiments.Ring_example.narrate in
  Cmd.v
    (Cmd.info "example" ~doc:"Walk through the paper's ring example (Table 1)")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "noc_tool" ~version
      ~doc:"Deadlock removal for wormhole NoCs (DATE 2010 reproduction)"
  in
  let group =
    Cmd.group info
      [
        list_cmd; synth_cmd; remove_cmd; ordering_cmd; updown_cmd; dot_cmd;
        analyze_cmd; lint_cmd; prove_cmd; duato_cmd; optimal_cmd; harden_cmd;
        tables_cmd;
        compare_cmd; simulate_cmd; campaign_cmd; batch_cmd; serve_cmd;
        submit_cmd; serve_stats_cmd; top_cmd; trace_cmd; example_cmd;
      ]
  in
  exit (Cmd.eval group)
