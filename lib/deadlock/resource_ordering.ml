open Noc_model

type strategy = Hop_index | Greedy_ordered

type report = { strategy : strategy; vcs_added : int; classes_used : int }

let ensure_vcs topo link wanted =
  while Topology.vc_count topo link <= wanted do
    ignore (Topology.add_vc topo link)
  done

let apply_hop_index net =
  let topo = Network.topology net in
  let classes = ref 0 in
  let rewrite (flow, route) =
    let hop p c =
      let link = Channel.link c in
      ensure_vcs topo link p;
      if p + 1 > !classes then classes := p + 1;
      Channel.make link p
    in
    Network.set_route net flow (List.mapi hop route)
  in
  List.iter rewrite (Network.routes net);
  !classes

let apply_greedy_ordered net =
  let topo = Network.topology net in
  let n = max 1 (Topology.n_links topo) in
  let classes = ref 0 in
  (* Resource number of channel (l, v) is [v * n + l]: VC index is the
     major key, so moving up one VC always clears any link id. *)
  let rewrite (flow, route) =
    let last = ref (-1) in
    let step c =
      let link = Channel.link c in
      let idx = Ids.Link.to_int link in
      let v = if !last < idx then 0 else ((!last - idx) / n) + 1 in
      ensure_vcs topo link v;
      if v + 1 > !classes then classes := v + 1;
      last := (v * n) + idx;
      Channel.make link v
    in
    Network.set_route net flow (List.map step route)
  in
  List.iter rewrite (Network.routes net);
  !classes

let apply ?(strategy = Greedy_ordered) net =
  Noc_obs.Trace.with_span "resource_ordering.apply"
    ~attrs:
      [
        ( "strategy",
          Noc_obs.Trace.Str
            (match strategy with
            | Hop_index -> "hop-index"
            | Greedy_ordered -> "greedy-ordered") );
      ]
  @@ fun sp ->
  let before = Topology.total_vcs (Network.topology net) in
  let classes_used =
    match strategy with
    | Hop_index -> apply_hop_index net
    | Greedy_ordered -> apply_greedy_ordered net
  in
  let vcs_added = Topology.total_vcs (Network.topology net) - before in
  Noc_obs.Trace.add_attr sp "vcs_added" (Noc_obs.Trace.Int vcs_added);
  Noc_obs.Trace.add_attr sp "classes_used" (Noc_obs.Trace.Int classes_used);
  { strategy; vcs_added; classes_used }

let pp_report ppf r =
  let name =
    match r.strategy with
    | Hop_index -> "hop-index"
    | Greedy_ordered -> "greedy-ordered"
  in
  Format.fprintf ppf "resource ordering (%s): %d VC(s) added, %d class(es)" name
    r.vcs_added r.classes_used
