open Noc_model

type resource_kind = Virtual_channel | Physical_link

type change = {
  direction : Cost_table.direction;
  broken : Channel.t * Channel.t;
  added_channels : Channel.t list;
  rerouted_flows : Ids.Flow.t list;
  route_changes : (Ids.Flow.t * Route.t * Route.t) list;
}

let apply_at ?(resource = Virtual_channel) net (table : Cost_table.t) col =
  let k = Array.length table.Cost_table.cycle in
  if col < 0 || col >= k then invalid_arg "Break_cycle.apply_at: bad column";
  Noc_obs.Trace.with_span "break_cycle.apply"
    ~attrs:
      [
        ("column", Noc_obs.Trace.Int col);
        ("cost", Noc_obs.Trace.Int table.Cost_table.max_costs.(col));
      ]
  @@ fun _sp ->
  let topo = Network.topology net in
  let broken = Cost_table.dependency table col in
  (* One shared duplicate per original channel: the first flow that
     needs channel [c] duplicated allocates the VC, later flows reuse
     it.  This realizes the "cost = column max" sharing of the paper. *)
  let duplicates = Channel.Table.create 8 in
  let added = ref [] in
  let duplicate_of c =
    match Channel.Table.find_opt duplicates c with
    | Some d -> d
    | None ->
        let d =
          match resource with
          | Virtual_channel ->
              let vc = Topology.add_vc topo (Channel.link c) in
              Channel.make (Channel.link c) vc
          | Physical_link ->
              let info = Topology.link topo (Channel.link c) in
              let id =
                Topology.add_link topo ~src:info.Topology.src
                  ~dst:info.Topology.dst
              in
              Channel.make id 0
        in
        Channel.Table.replace duplicates c d;
        added := d :: !added;
        d
  in
  let rerouted = ref [] in
  let route_changes = ref [] in
  let reroute_row row =
    let flow = table.Cost_table.flows.(row) in
    let to_dup = Cost_table.channels_to_duplicate table flow col in
    if to_dup <> [] then begin
      let dup_set = Channel.Set.of_list to_dup in
      let subst c = if Channel.Set.mem c dup_set then duplicate_of c else c in
      let old_route = Network.route net flow in
      let new_route = List.map subst old_route in
      Network.set_route net flow new_route;
      rerouted := flow :: !rerouted;
      route_changes := (flow, old_route, new_route) :: !route_changes
    end
  in
  Array.iteri (fun row _ -> reroute_row row) table.Cost_table.flows;
  {
    direction = table.Cost_table.direction;
    broken;
    added_channels = List.rev !added;
    rerouted_flows = List.rev !rerouted;
    route_changes = List.rev !route_changes;
  }

let apply ?resource net table =
  apply_at ?resource net table table.Cost_table.best_pos

let cdg_change c =
  { Cdg.new_channels = c.added_channels; reroutes = c.route_changes }

let pp_change ppf c =
  let dir =
    match c.direction with
    | Cost_table.Forward -> "forward"
    | Cost_table.Backward -> "backward"
  in
  let src, dst = c.broken in
  Format.fprintf ppf "@[<h>break %s at %a -> %a: +%d VC, rerouted %d flow(s)@]" dir
    Channel.pp src Channel.pp dst
    (List.length c.added_channels)
    (List.length c.rerouted_flows)
