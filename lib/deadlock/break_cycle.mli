(** Applying a break decision to the network: the [BreakCycleForward] /
    [BreakCycleBackward] procedures of the paper.

    Breaking column [i] of a cost table duplicates, for every flow that
    creates the dependency [Di], the cycle channels that flow used
    before (forward) or after (backward) the dependency, and reroutes
    those flows onto the duplicates.  A duplicate is one fresh VC on
    the same physical link and is shared by all rerouted flows, which
    is why the price is the column {e maximum}, not the sum. *)

open Noc_model

type resource_kind =
  | Virtual_channel
      (** Duplicate a channel as a new VC on the same physical link
          (the paper's default). *)
  | Physical_link
      (** Duplicate the physical link itself — the paper's fallback
          "if the NoC architecture does not support VCs".  Routes stay
          on the same switch sequence but move to the fresh link. *)

type change = {
  direction : Cost_table.direction;
  broken : Channel.t * Channel.t;  (** The removed dependency edge. *)
  added_channels : Channel.t list;  (** Fresh duplicates. *)
  rerouted_flows : Ids.Flow.t list;
  route_changes : (Ids.Flow.t * Route.t * Route.t) list;
      (** Per rerouted flow: route before and after, in the same order
          as [rerouted_flows] — the raw material for incremental CDG
          maintenance. *)
}

val apply : ?resource:resource_kind -> Network.t -> Cost_table.t -> change
(** Breaks the cycle at the table's [best_pos].  Mutates the network's
    topology (VC or link additions) and routes.  With
    [Virtual_channel] (default) the physical path of every flow is
    preserved — only VC indices change; with [Physical_link] the
    switch sequence is preserved and flows move to parallel links. *)

val apply_at :
  ?resource:resource_kind -> Network.t -> Cost_table.t -> int -> change
(** Same, at an explicit column (used by tests and ablations).
    @raise Invalid_argument on an out-of-range column. *)

val cdg_change : change -> Cdg.change
(** The delta this change induces on a CDG of the pre-change network,
    for {!Cdg.apply_change}. *)

val pp_change : Format.formatter -> change -> unit
