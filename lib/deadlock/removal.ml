open Noc_model

type report = {
  iterations : int;
  vcs_added : int;
  changes : Break_cycle.change list;
  deadlock_free : bool;
}

type heuristic = Smallest_cycle_first | Any_cycle_first

let find_cycle ?(hint = []) ?(reference = false) heuristic cdg =
  match heuristic with
  | Smallest_cycle_first ->
      if reference then
        Option.map
          (List.map (Cdg.channel_of_vertex cdg))
          (Noc_graph.Cycles.shortest_reference (Cdg.graph cdg))
      else Cdg.smallest_cycle ~hint cdg
  | Any_cycle_first ->
      Option.map
        (List.map (Cdg.channel_of_vertex cdg))
        (Noc_graph.Cycles.find_any (Cdg.graph cdg))

let pick_table ?(reference = false) net directions cycle =
  match (reference, directions) with
  | false, [ Cost_table.Forward; Cost_table.Backward ] ->
      (* The default direction list: price both tables in one shared
         pass.  Strict [<] keeps the forward-wins-ties rule below. *)
      let fwd, bwd = Cost_table.both net cycle in
      if bwd.Cost_table.best_cost < fwd.Cost_table.best_cost then bwd else fwd
  | _ ->
      let compute d =
        match (reference, d) with
        | false, Cost_table.Forward -> Cost_table.forward net cycle
        | false, Cost_table.Backward -> Cost_table.backward net cycle
        | true, Cost_table.Forward -> Cost_table.forward_reference net cycle
        | true, Cost_table.Backward -> Cost_table.backward_reference net cycle
      in
      (match List.map compute directions with
      | [] -> invalid_arg "Removal.run: empty direction list"
      | first :: rest ->
          (* Algorithm 1 step 7: forward wins ties, and [directions]
             lists Forward first by default, so [<] (strict) implements
             "f_cost <= b_cost chooses forward". *)
          List.fold_left
            (fun best t ->
              if t.Cost_table.best_cost < best.Cost_table.best_cost then t
              else best)
            first rest)

(* Channels worth probing first in the next cycle search: everything
   the break just touched.  Any new cycle was either already present
   (shares no touched channel — found by the main scan regardless) or
   was created/kept by the rerouted flows, in which case it passes
   through one of these. *)
let hint_channels (change : Break_cycle.change) =
  let src, dst = change.broken in
  src :: dst :: change.added_channels

module Trace = Noc_obs.Trace

(* Incremental CDG maintenance versus full rebuilds is the perf story
   of this module; the counters expose the split in every trace. *)
let cdg_incremental = Noc_obs.Metrics.counter "noc_removal_cdg_incremental_total"
let cdg_rebuild = Noc_obs.Metrics.counter "noc_removal_cdg_rebuild_total"
let cycles_broken = Noc_obs.Metrics.counter "noc_removal_cycles_broken_total"

let direction_label = function
  | Cost_table.Forward -> "forward"
  | Cost_table.Backward -> "backward"

let run ?(max_iterations = 10_000) ?(heuristic = Smallest_cycle_first)
    ?(directions = [ Cost_table.Forward; Cost_table.Backward ])
    ?(resource = Break_cycle.Virtual_channel) ?(incremental = true)
    ?(validate = false) net =
  Trace.with_span "removal.run" @@ fun run_sp ->
  let before = Topology.total_vcs (Network.topology net) in
  let reference = not incremental in
  let finish_run report =
    Trace.add_attr run_sp "iterations" (Trace.Int report.iterations);
    Trace.add_attr run_sp "vcs_added" (Trace.Int report.vcs_added);
    Trace.add_attr run_sp "deadlock_free" (Trace.Bool report.deadlock_free);
    report
  in
  (* One span per removal iteration, carrying the decision the paper's
     Algorithm 1 makes there: cycle length, candidate edges priced,
     chosen direction, its cost, and the VCs the break added.  The
     recursion happens outside the span so iterations are siblings
     under [removal.run], not a nest [max_iterations] deep. *)
  let iteration iter cdg cycle =
    Trace.with_span "removal.iteration"
      ~attrs:
        [
          ("iter", Trace.Int (iter + 1));
          ("cycle_len", Trace.Int (List.length cycle));
        ]
    @@ fun it_sp ->
    let table =
      Trace.with_span "removal.cost_tables" (fun _ ->
          pick_table ~reference net directions cycle)
    in
    let change =
      Trace.with_span "removal.break" (fun _ ->
          Break_cycle.apply ~resource net table)
    in
    Noc_obs.Metrics.incr cycles_broken;
    Trace.add_attr it_sp "candidate_edges"
      (Trace.Int (Array.length table.Cost_table.max_costs));
    Trace.add_attr it_sp "direction"
      (Trace.Str (direction_label change.Break_cycle.direction));
    Trace.add_attr it_sp "cost" (Trace.Int table.Cost_table.best_cost);
    Trace.add_attr it_sp "vcs_added"
      (Trace.Int (List.length change.Break_cycle.added_channels));
    Logs.debug (fun m ->
        m "removal: iteration %d, cycle length %d, %a" (iter + 1)
          (List.length cycle) Break_cycle.pp_change change);
    let cdg, hint =
      Trace.with_span "removal.cdg_update" (fun _ ->
          if incremental then begin
            Noc_obs.Metrics.incr cdg_incremental;
            Cdg.apply_change cdg (Break_cycle.cdg_change change);
            if validate && not (Cdg.equal cdg (Cdg.build net)) then
              failwith "Removal.run: incremental CDG diverged from fresh build";
            (cdg, hint_channels change)
          end
          else begin
            Noc_obs.Metrics.incr cdg_rebuild;
            (Cdg.build net, [])
          end)
    in
    (change, cdg, hint)
  in
  let rec loop iter changes cdg hint =
    match
      Trace.with_span "removal.find_cycle" (fun _ ->
          find_cycle ~hint ~reference heuristic cdg)
    with
    | None ->
        finish_run
          {
            iterations = iter;
            vcs_added = Topology.total_vcs (Network.topology net) - before;
            changes = List.rev changes;
            deadlock_free = true;
          }
    | Some cycle ->
        if iter >= max_iterations then
          finish_run
            {
              iterations = iter;
              vcs_added = Topology.total_vcs (Network.topology net) - before;
              changes = List.rev changes;
              deadlock_free = false;
            }
        else begin
          let change, cdg, hint = iteration iter cdg cycle in
          loop (iter + 1) (change :: changes) cdg hint
        end
  in
  loop 0 [] (Cdg.build net) []

let is_deadlock_free net = Cdg.is_deadlock_free (Cdg.build net)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>deadlock removal: %d cycle(s) broken, %d VC(s) added, %s"
    r.iterations r.vcs_added
    (if r.deadlock_free then "deadlock-free" else "ITERATION CAP HIT");
  List.iter (fun c -> Format.fprintf ppf "@,  %a" Break_cycle.pp_change c) r.changes;
  Format.fprintf ppf "@]"
