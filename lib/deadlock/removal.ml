open Noc_model

type report = {
  iterations : int;
  vcs_added : int;
  changes : Break_cycle.change list;
  deadlock_free : bool;
}

type heuristic = Smallest_cycle_first | Any_cycle_first

let find_cycle ?(hint = []) ?(reference = false) heuristic cdg =
  match heuristic with
  | Smallest_cycle_first ->
      if reference then
        Option.map
          (List.map (Cdg.channel_of_vertex cdg))
          (Noc_graph.Cycles.shortest_reference (Cdg.graph cdg))
      else Cdg.smallest_cycle ~hint cdg
  | Any_cycle_first ->
      Option.map
        (List.map (Cdg.channel_of_vertex cdg))
        (Noc_graph.Cycles.find_any (Cdg.graph cdg))

let pick_table ?(reference = false) net directions cycle =
  match (reference, directions) with
  | false, [ Cost_table.Forward; Cost_table.Backward ] ->
      (* The default direction list: price both tables in one shared
         pass.  Strict [<] keeps the forward-wins-ties rule below. *)
      let fwd, bwd = Cost_table.both net cycle in
      if bwd.Cost_table.best_cost < fwd.Cost_table.best_cost then bwd else fwd
  | _ ->
      let compute d =
        match (reference, d) with
        | false, Cost_table.Forward -> Cost_table.forward net cycle
        | false, Cost_table.Backward -> Cost_table.backward net cycle
        | true, Cost_table.Forward -> Cost_table.forward_reference net cycle
        | true, Cost_table.Backward -> Cost_table.backward_reference net cycle
      in
      (match List.map compute directions with
      | [] -> invalid_arg "Removal.run: empty direction list"
      | first :: rest ->
          (* Algorithm 1 step 7: forward wins ties, and [directions]
             lists Forward first by default, so [<] (strict) implements
             "f_cost <= b_cost chooses forward". *)
          List.fold_left
            (fun best t ->
              if t.Cost_table.best_cost < best.Cost_table.best_cost then t
              else best)
            first rest)

(* Channels worth probing first in the next cycle search: everything
   the break just touched.  Any new cycle was either already present
   (shares no touched channel — found by the main scan regardless) or
   was created/kept by the rerouted flows, in which case it passes
   through one of these. *)
let hint_channels (change : Break_cycle.change) =
  let src, dst = change.broken in
  src :: dst :: change.added_channels

let run ?(max_iterations = 10_000) ?(heuristic = Smallest_cycle_first)
    ?(directions = [ Cost_table.Forward; Cost_table.Backward ])
    ?(resource = Break_cycle.Virtual_channel) ?(incremental = true)
    ?(validate = false) net =
  let before = Topology.total_vcs (Network.topology net) in
  let reference = not incremental in
  let rec loop iter changes cdg hint =
    match find_cycle ~hint ~reference heuristic cdg with
    | None ->
        {
          iterations = iter;
          vcs_added = Topology.total_vcs (Network.topology net) - before;
          changes = List.rev changes;
          deadlock_free = true;
        }
    | Some cycle ->
        if iter >= max_iterations then
          {
            iterations = iter;
            vcs_added = Topology.total_vcs (Network.topology net) - before;
            changes = List.rev changes;
            deadlock_free = false;
          }
        else begin
          let table = pick_table ~reference net directions cycle in
          let change = Break_cycle.apply ~resource net table in
          Logs.debug (fun m ->
              m "removal: iteration %d, cycle length %d, %a" (iter + 1)
                (List.length cycle) Break_cycle.pp_change change);
          let cdg, hint =
            if incremental then begin
              Cdg.apply_change cdg (Break_cycle.cdg_change change);
              if validate && not (Cdg.equal cdg (Cdg.build net)) then
                failwith
                  "Removal.run: incremental CDG diverged from fresh build";
              (cdg, hint_channels change)
            end
            else (Cdg.build net, [])
          in
          loop (iter + 1) (change :: changes) cdg hint
        end
  in
  loop 0 [] (Cdg.build net) []

let is_deadlock_free net = Cdg.is_deadlock_free (Cdg.build net)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>deadlock removal: %d cycle(s) broken, %d VC(s) added, %s"
    r.iterations r.vcs_added
    (if r.deadlock_free then "deadlock-free" else "ITERATION CAP HIT");
  List.iter (fun c -> Format.fprintf ppf "@,  %a" Break_cycle.pp_change c) r.changes;
  Format.fprintf ppf "@]"
