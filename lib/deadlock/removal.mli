(** The deadlock-removal driver — Algorithm 1 of the paper.

    Repeatedly: build the CDG, find its smallest cycle, price breaking
    every dependency of that cycle in the forward and the backward
    direction, break at the overall cheapest spot, update topology and
    routes; stop when the CDG is acyclic.  The network is mutated in
    place; use {!Noc_model.Network.copy} first to keep the original. *)

open Noc_model

type report = {
  iterations : int;  (** Number of cycles broken. *)
  vcs_added : int;
      (** Channels added — the paper's |L'| - |L| cost.  With the
          [Physical_link] resource kind this counts fresh parallel
          links instead of VCs. *)
  changes : Break_cycle.change list;  (** One entry per broken cycle. *)
  deadlock_free : bool;  (** [true] unless the iteration cap was hit. *)
}

type heuristic = Smallest_cycle_first | Any_cycle_first
(** Which cycle to attack each round.  The paper argues for smallest
    first (breaking it often breaks overlapping larger cycles);
    [Any_cycle_first] exists for the ablation study. *)

val run :
  ?max_iterations:int ->
  ?heuristic:heuristic ->
  ?directions:Cost_table.direction list ->
  ?resource:Break_cycle.resource_kind ->
  ?incremental:bool ->
  ?validate:bool ->
  Network.t ->
  report
(** Removes all CDG cycles.  [max_iterations] (default [10_000]) is a
    safety valve; if it is hit, [deadlock_free] is [false] and the
    network is left in its last (valid, but still cyclic) state.
    [directions] restricts the candidate break directions (default
    both; forward wins ties, as in Algorithm 1 step 7).  [resource]
    selects what a duplicate costs: a VC (default) or a parallel
    physical link for VC-less architectures.

    The CDG is built once up front and then maintained {e in place}
    across iterations via {!Noc_model.Cdg.apply_change}, with the
    channels touched by each break hinting the next smallest-cycle
    search.  Both are exact: the trajectory (cycles chosen, breaks
    applied, VCs added) is identical to rebuilding from scratch every
    round.  [incremental:false] forces the historical behaviour —
    rebuild per iteration, the unpruned
    {!Noc_graph.Cycles.shortest_reference} scan, and the
    per-cell-rescan {!Cost_table.forward_reference} tables — and
    exists as the benchmark comparison arm and as a cross-check.  [validate] (default off)
    asserts [Cdg.equal (incrementally maintained) (fresh build)] after
    every single iteration and raises [Failure] on divergence; it
    makes each round as expensive as the rebuild path, so it is meant
    for tests and debugging, not production runs. *)

val is_deadlock_free : Network.t -> bool
(** [true] iff the network's CDG is already acyclic. *)

val pp_report : Format.formatter -> report -> unit
