(** Cost tables of Algorithm 2 ([FindDepToBreakForward]) and its
    backward twin.

    Given a cycle [c1 ... ck] of the CDG, the table has one row per
    flow involved in the cycle and one column per dependency (cycle
    edge) [Di = (ci, c(i+1 mod k))].  Entry [(f, Di)] is the number of
    CDG vertices that must be duplicated to break [Di] as far as flow
    [f] alone is concerned — [0] when [f] does not create [Di].  The
    per-column maximum is the real price of breaking there (duplicated
    channels are shared between flows), and the cheapest column is
    where the cycle gets broken. *)

open Noc_model

type direction = Forward | Backward

type t = {
  direction : direction;
  cycle : Channel.t array;  (** [c1 ... ck] in dependency order. *)
  flows : Ids.Flow.t array;
      (** Row labels: flows with more than one route channel inside the
          cycle, in flow-id order. *)
  routes : Route.t array;
      (** Snapshot of each involved flow's route at analysis time,
          parallel to [flows]. *)
  costs : int array array;  (** [costs.(row).(col)]; [0] = no dependency. *)
  max_costs : int array;  (** Column maxima — the MAX row of Table 1. *)
  best_cost : int;  (** Minimum over columns of [max_costs]. *)
  best_pos : int;  (** First column achieving [best_cost]. *)
}

val forward : Network.t -> Channel.t list -> t
(** Algorithm 2 verbatim: costs counted from where each flow enters
    the cycle, walking routes source-to-destination.
    @raise Invalid_argument on an empty cycle. *)

val backward : Network.t -> Channel.t list -> t
(** Same analysis walking routes destination-to-source: the cost of a
    column counts the cycle channels from the dependency's head to
    where the flow leaves the cycle. *)

val both : Network.t -> Channel.t list -> t * t
(** [(forward, backward)] tables of the same cycle, sharing the
    direction-blind work (involved-flow filter, per-route dependency
    location, prefix sums) — what the removal driver wants every
    iteration.  Equal to [(forward net c, backward net c)].
    @raise Invalid_argument on an empty cycle. *)

val forward_reference : Network.t -> Channel.t list -> t
val backward_reference : Network.t -> Channel.t list -> t
(** The pre-optimization implementations, kept verbatim: one
    route rescan per table cell.  They produce identical tables to
    {!forward}/{!backward} — property-tested — and exist as the
    executable specification and as the benchmark baseline arm used by
    [Removal.run ~incremental:false]. *)

val dependency : t -> int -> Channel.t * Channel.t
(** [dependency t i] is the edge labelled [D(i+1)] in the paper:
    [(ci, c(i+1 mod k))]. *)

val channels_to_duplicate : t -> Ids.Flow.t -> int -> Channel.t list
(** The cycle channels flow [f] would need duplicated to break column
    [i], in route order; empty when [f] does not create that
    dependency.  Forward: from the flow's entry up to the tail of the
    edge.  Backward: from the head of the edge to the flow's exit. *)

val pp : Format.formatter -> t -> unit
(** Renders the table in the layout of Table 1 of the paper. *)
