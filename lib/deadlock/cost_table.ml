open Noc_model

type direction = Forward | Backward

type t = {
  direction : direction;
  cycle : Channel.t array;
  flows : Ids.Flow.t array;
  routes : Route.t array;
  costs : int array array;
  max_costs : int array;
  best_cost : int;
  best_pos : int;
}

let dependency t i =
  let k = Array.length t.cycle in
  (t.cycle.(i), t.cycle.((i + 1) mod k))

(* Position of the (unique, routes being simple) occurrence of the
   dependency [ci -> cj] inside a route, or [None] when the flow does
   not create it. *)
let dep_position route ci cj =
  let arr = Array.of_list route in
  let m = Array.length arr in
  let rec scan i =
    if i + 1 >= m then None
    else if Channel.equal arr.(i) ci && Channel.equal arr.(i + 1) cj then Some i
    else scan (i + 1)
  in
  scan 0

let duplicate_set direction ~cycle_set ~route ~ci ~cj =
  match dep_position route ci cj with
  | None -> []
  | Some idx ->
      let arr = Array.of_list route in
      let m = Array.length arr in
      let in_cycle c = Channel.Set.mem c cycle_set in
      let collect lo hi =
        let out = ref [] in
        for p = hi downto lo do
          if in_cycle arr.(p) then out := arr.(p) :: !out
        done;
        !out
      in
      (match direction with
      | Forward -> collect 0 idx
      | Backward -> collect (idx + 1) (m - 1))

let involved_flows net in_cycle =
  let crosses (f : Traffic.flow) =
    (* The flow is involved as soon as two of its channels lie on the
       cycle; no need to scan the rest of the route. *)
    let rec scan count = function
      | [] -> false
      | c :: rest ->
          if in_cycle c then count + 1 >= 2 || scan (count + 1) rest
          else scan count rest
    in
    scan 0 (Network.route net f.Traffic.id)
  in
  List.filter crosses (Traffic.flows (Network.traffic net))

(* The removal driver prices both directions of the same cycle every
   iteration, and the expensive parts — finding the involved flows and
   locating each flow's cycle dependencies — are direction-blind, so
   both tables are computed in one shared pass. *)
let finish direction ~cycle ~flows ~routes ~k ~n_rows costs =
  let max_costs =
    Array.init k (fun col ->
        let best = ref 0 in
        for row = 0 to n_rows - 1 do
          if costs.(row).(col) > !best then best := costs.(row).(col)
        done;
        !best)
  in
  (* Columns with max 0 carry no dependency created by an involved flow
     (possible only on degenerate inputs); they cannot be broken, so
     they are skipped when choosing the minimum. *)
  let best_cost = ref max_int and best_pos = ref (-1) in
  Array.iteri
    (fun col c -> if c > 0 && c < !best_cost then begin best_cost := c; best_pos := col end)
    max_costs;
  if !best_pos < 0 then begin
    (* No breakable column: fall back to column 0 with the price of
       duplicating the whole cycle.  The driver treats this as "break
       everything", which always succeeds. *)
    best_cost := k;
    best_pos := 0
  end;
  {
    direction;
    cycle;
    flows;
    routes;
    costs;
    max_costs;
    best_cost = !best_cost;
    best_pos = !best_pos;
  }

let both net cycle_list =
  if cycle_list = [] then invalid_arg "Cost_table: empty cycle";
  Noc_obs.Trace.with_span "cost_table.both"
    ~attrs:[ ("cycle_len", Noc_obs.Trace.Int (List.length cycle_list)) ]
  @@ fun _sp ->
  let cycle = Array.of_list cycle_list in
  let k = Array.length cycle in
  let col_of = Channel.Table.create (2 * k) in
  Array.iteri (fun i c -> Channel.Table.replace col_of c i) cycle;
  let in_cycle c = Channel.Table.mem col_of c in
  let flows = Array.of_list (involved_flows net in_cycle) in
  let n_rows = Array.length flows in
  let fwd_costs = Array.make_matrix n_rows k 0 in
  let bwd_costs = Array.make_matrix n_rows k 0 in
  let routes = Array.map (fun f -> Network.route net f.Traffic.id) flows in
  (* Single pass per route instead of one [duplicate_set] scan per
     (row, column, direction): a route position [p] carries the
     dependency of column [col] iff [arr.(p)] is the cycle's [col]-th
     channel and [arr.(p+1)] follows it on the cycle; the costs are
     then the number of cycle channels the route uses up to [p]
     (forward) or after it (backward) — prefix-sum reads.  The counts
     are exactly [List.length (duplicate_set ...)], just not
     recomputed from scratch per cell. *)
  for row = 0 to n_rows - 1 do
    let arr = Array.of_list routes.(row) in
    let m = Array.length arr in
    let prefix = Array.make (m + 1) 0 in
    for p = 0 to m - 1 do
      prefix.(p + 1) <- (prefix.(p) + if in_cycle arr.(p) then 1 else 0)
    done;
    for p = 0 to m - 2 do
      match Channel.Table.find_opt col_of arr.(p) with
      | Some col when Channel.equal cycle.((col + 1) mod k) arr.(p + 1) ->
          (* Routes are simple, so each dependency occurs at most once
             per route. *)
          fwd_costs.(row).(col) <- prefix.(p + 1);
          bwd_costs.(row).(col) <- prefix.(m) - prefix.(p + 1)
      | Some _ | None -> ()
    done
  done;
  let flow_ids = Array.map (fun f -> f.Traffic.id) flows in
  ( finish Forward ~cycle ~flows:flow_ids ~routes ~k ~n_rows fwd_costs,
    finish Backward ~cycle ~flows:flow_ids ~routes ~k ~n_rows bwd_costs )

let forward net cycle = fst (both net cycle)
let backward net cycle = snd (both net cycle)

(* The pre-optimization implementation, kept verbatim as an executable
   specification: one [duplicate_set] rescan per (row, column) and a
   full-route involvement filter.  [both] must agree with it exactly —
   the property tests check this, and [Removal.run ~incremental:false]
   (the benchmark "before" arm) uses it so the baseline measures the
   seed code, not a silently optimized variant. *)
let compute_reference direction net cycle_list =
  if cycle_list = [] then invalid_arg "Cost_table: empty cycle";
  let cycle = Array.of_list cycle_list in
  let k = Array.length cycle in
  let cycle_set = Channel.Set.of_list cycle_list in
  let involved =
    let crosses (f : Traffic.flow) =
      let inside =
        List.filter
          (fun c -> Channel.Set.mem c cycle_set)
          (Network.route net f.Traffic.id)
      in
      List.length inside > 1
    in
    List.filter crosses (Traffic.flows (Network.traffic net))
  in
  let flows = Array.of_list involved in
  let n_rows = Array.length flows in
  let costs = Array.make_matrix n_rows k 0 in
  for row = 0 to n_rows - 1 do
    let route = Network.route net flows.(row).Traffic.id in
    for col = 0 to k - 1 do
      let ci = cycle.(col) and cj = cycle.((col + 1) mod k) in
      costs.(row).(col) <-
        List.length (duplicate_set direction ~cycle_set ~route ~ci ~cj)
    done
  done;
  finish direction ~cycle
    ~flows:(Array.map (fun f -> f.Traffic.id) flows)
    ~routes:(Array.map (fun f -> Network.route net f.Traffic.id) flows)
    ~k ~n_rows costs

let forward_reference net cycle = compute_reference Forward net cycle
let backward_reference net cycle = compute_reference Backward net cycle

let channels_to_duplicate t flow col =
  let ci, cj = dependency t col in
  let cycle_set = Channel.Set.of_list (Array.to_list t.cycle) in
  let row = ref (-1) in
  Array.iteri (fun i f -> if Ids.Flow.equal f flow then row := i) t.flows;
  if !row < 0 then []
  else
    duplicate_set t.direction ~cycle_set ~route:t.routes.(!row) ~ci ~cj

let pp ppf t =
  let k = Array.length t.cycle in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "     ";
  for col = 1 to k do
    Format.fprintf ppf "D%-3d" col
  done;
  Array.iteri
    (fun row f ->
      Format.fprintf ppf "@,%-5s" (Format.asprintf "%a" Ids.Flow.pp f);
      Array.iter (fun c -> Format.fprintf ppf "%-4d" c) t.costs.(row))
    t.flows;
  Format.fprintf ppf "@,%-5s" "MAX";
  Array.iter (fun c -> Format.fprintf ppf "%-4d" c) t.max_costs;
  Format.fprintf ppf "@]"
