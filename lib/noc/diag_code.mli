(** The shared table of stable diagnostic codes.

    Every machine-readable finding in the toolchain — {!Validate}
    issues, the [noc_analysis] lint passes, the service's job vetting —
    carries one of these codes.  Codes are stable identifiers of the
    form [NOC-<AREA>-<NNN>]: once published they never change meaning,
    new findings get new numbers, and docs/ANALYSIS.md documents each
    one.  Keeping the table here, below every emitting layer, is what
    guarantees a single source of truth (no duplicated strings). *)

type severity = Error | Warning | Info

val severity_rank : severity -> int
(** [Error] = 2, [Warning] = 1, [Info] = 0. *)

val severity_at_least : floor:severity -> severity -> bool
(** [true] iff the severity is at least as severe as [floor]. *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val pp_severity : Format.formatter -> severity -> unit

type t = {
  code : string;  (** Stable id, e.g. ["NOC-ROUTE-003"]. *)
  severity : severity;  (** Default severity of findings with this code. *)
  summary : string;  (** One-line description for catalogs. *)
}

(** {1 Route well-formedness} *)

val route_missing : t
val route_broken : t
val route_bad_vc : t
val route_revisit : t

(** {1 Topology shape} *)

val topo_disconnected : t
val topo_isolated_switch : t

(** {1 Dead hardware} *)

val chan_dead_link : t
val vc_dead : t

(** {1 Deadlock structure} *)

val cycle_witness : t
val cert_numbering_rejected : t

(** {1 Independent deadlock-freedom prover} *)

val dlf_prover_rejects_certified : t
val dlf_prover_accepts_rejected : t
val dlf_knot : t
val dlf_vc_lower_bound : t
val dlf_escape_order_rejected : t

(** {1 Escape-channel coverage (Duato baseline)} *)

val escape_disconnected : t
val escape_cyclic : t

(** {1 Bandwidth feasibility} *)

val bw_oversubscribed : t
val bw_near_saturation : t

(** {1 Job files (noc-jobs/1)} *)

val job_file_unparsable : t
val job_malformed : t
val job_duplicate : t
val job_bad_design : t
val job_hash_unstable : t

(** {1 Simulation jobs} *)

val sim_bad_workload : t
val sim_bad_engine : t
val sim_saturated : t

(** {1 Trace streams (noc-trace/1)} *)

val trace_unparsable : t
val trace_unbalanced : t
val trace_nonmonotonic : t

val all : t list
(** Every code, catalog order. *)

val find : string -> t option
(** Lookup by code string. *)

val pp : Format.formatter -> t -> unit
