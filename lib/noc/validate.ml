type issue = {
  flow : Ids.Flow.t option;
  code : Diag_code.t;
  message : string;
}

let check net =
  let topo = Network.topology net in
  let check_flow (f : Traffic.flow) =
    let src, dst = Network.endpoints net f.Traffic.id in
    let r = Network.route net f.Traffic.id in
    match Route.check_detailed topo ~src ~dst r with
    | Ok () -> None
    | Error (Route.Missing_route _) ->
        Some
          {
            flow = Some f.Traffic.id;
            code = Diag_code.route_missing;
            message = "flow has no route";
          }
    | Error e ->
        Some
          {
            flow = Some f.Traffic.id;
            code = Route.error_code e;
            message = Route.error_message e;
          }
  in
  List.filter_map check_flow (Traffic.flows (Network.traffic net))

let is_valid net = check net = []

let routes_equivalent ~before ~after =
  let physical net =
    List.map (fun (f, r) -> (f, Route.links r)) (Network.routes net)
  in
  let same (fa, la) (fb, lb) =
    Ids.Flow.equal fa fb && List.length la = List.length lb
    && List.for_all2 Ids.Link.equal la lb
  in
  let ra = physical before and rb = physical after in
  List.length ra = List.length rb && List.for_all2 same ra rb

let switch_paths_equivalent ~before ~after =
  let switch_path net route =
    let topo = Network.topology net in
    match route with
    | [] -> []
    | first :: _ ->
        let head = (Topology.link topo (Channel.link first)).Topology.src in
        head
        :: List.map
             (fun c -> (Topology.link topo (Channel.link c)).Topology.dst)
             route
  in
  let paths net =
    List.map (fun (f, r) -> (f, switch_path net r)) (Network.routes net)
  in
  let same (fa, pa) (fb, pb) =
    Ids.Flow.equal fa fb && List.length pa = List.length pb
    && List.for_all2 Ids.Switch.equal pa pb
  in
  let ra = paths before and rb = paths after in
  List.length ra = List.length rb && List.for_all2 same ra rb

let pp_issue ppf i =
  match i.flow with
  | Some f ->
      Format.fprintf ppf "%s %a: %s" i.code.Diag_code.code Ids.Flow.pp f
        i.message
  | None -> Format.fprintf ppf "%s %s" i.code.Diag_code.code i.message
