(** Whole-design invariant checking.  Used as a post-condition by the
    deadlock-removal pass (the transformed network must still be a
    well-formed design that routes every flow) and heavily exercised by
    the property-based tests. *)

type issue = {
  flow : Ids.Flow.t option;
  code : Diag_code.t;  (** Stable diagnostic code from the shared table. *)
  message : string;
}

val check : Network.t -> issue list
(** All violations found: per-flow route problems (via {!Route.check})
    and missing routes for flows with distinct endpoints.  Empty means
    the design is well-formed. *)

val is_valid : Network.t -> bool

val routes_equivalent : before:Network.t -> after:Network.t -> bool
(** [true] iff both designs route the same flow set through the same
    sequence of *physical links* (VC indices may differ).  The
    VC-based deadlock-removal pass must preserve this: it only moves
    flows between VCs of the same links. *)

val switch_paths_equivalent : before:Network.t -> after:Network.t -> bool
(** Weaker equivalence: the same flow set visits the same *switch
    sequence* (links and VCs may differ).  This is the invariant of
    the physical-link removal variant, which moves flows onto fresh
    parallel links between the same switches. *)

val pp_issue : Format.formatter -> issue -> unit
