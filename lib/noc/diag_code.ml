(* The one shared table of stable diagnostic codes.  It lives in
   noc_model — below every layer that emits diagnostics — so the
   validator, the static-analysis passes and the service's job vetting
   all name their findings from a single place, and no code string is
   ever duplicated at a use site. *)

type severity = Error | Warning | Info

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0
let severity_at_least ~floor s = severity_rank s >= severity_rank floor

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let pp_severity ppf s = Format.pp_print_string ppf (severity_to_string s)

type t = { code : string; severity : severity; summary : string }

(* Route well-formedness (pass: routes). *)
let route_missing =
  {
    code = "NOC-ROUTE-001";
    severity = Error;
    summary = "flow between distinct switches has no route";
  }

let route_broken =
  {
    code = "NOC-ROUTE-002";
    severity = Error;
    summary = "route does not follow the topology (endpoints or continuity)";
  }

let route_bad_vc =
  {
    code = "NOC-ROUTE-003";
    severity = Error;
    summary = "route uses a VC index outside the link's VC count";
  }

let route_revisit =
  {
    code = "NOC-ROUTE-004";
    severity = Error;
    summary = "route revisits a channel (routes must be simple)";
  }

(* Topology shape (pass: connectivity). *)
let topo_disconnected =
  {
    code = "NOC-TOPO-001";
    severity = Error;
    summary = "topology is not (weakly) connected";
  }

let topo_isolated_switch =
  {
    code = "NOC-TOPO-002";
    severity = Warning;
    summary = "switch has no attached links";
  }

(* Dead hardware (passes: dead-channels, dead-vcs). *)
let chan_dead_link =
  {
    code = "NOC-CHAN-001";
    severity = Warning;
    summary = "no route crosses any VC of the link (dead channel)";
  }

let vc_dead =
  {
    code = "NOC-VC-001";
    severity = Warning;
    summary = "VC is allocated but no route uses it (dead VC)";
  }

(* Deadlock structure (passes: cdg-cycle, certificate). *)
let cycle_witness =
  {
    code = "NOC-CYCLE-001";
    severity = Warning;
    summary = "channel dependency graph has a cycle (design can deadlock)";
  }

let cert_numbering_rejected =
  {
    code = "NOC-CERT-001";
    severity = Error;
    summary = "certificate numbering rejected by the independent recheck";
  }

(* Escape-channel coverage for the Duato baseline (pass: escape). *)
let escape_disconnected =
  {
    code = "NOC-ESC-001";
    severity = Warning;
    summary = "VC0 escape set is not connected for the static routing function";
  }

let escape_cyclic =
  {
    code = "NOC-ESC-002";
    severity = Warning;
    summary = "extended dependency graph of the VC0 escape set is cyclic";
  }

(* Bandwidth feasibility (pass: bandwidth). *)
let bw_oversubscribed =
  {
    code = "NOC-BW-001";
    severity = Warning;
    summary = "link load exceeds its capacity (oversubscribed)";
  }

let bw_near_saturation =
  {
    code = "NOC-BW-002";
    severity = Info;
    summary = "link load above 90% of its capacity";
  }

(* Independent deadlock-freedom prover (pass: deadlock-freedom).
   The prover re-decides deadlock freedom of the routing relation with
   its own escape-elimination fixpoint — no shared code with
   Cdg/Verify — so these codes are the cross-examination verdicts. *)
let dlf_prover_rejects_certified =
  {
    code = "NOC-DLF-001";
    severity = Error;
    summary =
      "certificate says deadlock-free but the independent condition finds a \
       waiting knot";
  }

let dlf_prover_accepts_rejected =
  {
    code = "NOC-DLF-002";
    severity = Error;
    summary =
      "certificate says cyclic but the independent condition proves \
       deadlock freedom";
  }

let dlf_knot =
  {
    code = "NOC-DLF-003";
    severity = Warning;
    summary =
      "independent condition rejects the routing relation (waiting knot \
       witness)";
  }

let dlf_vc_lower_bound =
  {
    code = "NOC-DLF-004";
    severity = Info;
    summary =
      "static lower bound on the VCs any duplication-based removal must add";
  }

let dlf_escape_order_rejected =
  {
    code = "NOC-DLF-005";
    severity = Error;
    summary = "escape ordering witness fails the independent linear replay";
  }

(* Job files (pass: jobs, in the service layer). *)
let job_file_unparsable =
  {
    code = "NOC-JOB-001";
    severity = Error;
    summary = "job file is not valid JSON or has the wrong schema tag";
  }

let job_malformed =
  {
    code = "NOC-JOB-002";
    severity = Error;
    summary = "job entry is malformed";
  }

let job_duplicate =
  {
    code = "NOC-JOB-003";
    severity = Warning;
    summary = "job file repeats a job (identical content hash)";
  }

let job_bad_design =
  {
    code = "NOC-JOB-004";
    severity = Error;
    summary = "job names an unknown benchmark or an impossible switch count";
  }

let job_hash_unstable =
  {
    code = "NOC-JOB-005";
    severity = Error;
    summary = "canonical encoding round-trip changes the job's content hash";
  }

(* Simulation jobs (pass: jobs, in the service layer). *)
let sim_bad_workload =
  {
    code = "NOC-SIM-001";
    severity = Error;
    summary = "simulation job has invalid workload parameters";
  }

let sim_bad_engine =
  {
    code = "NOC-SIM-002";
    severity = Error;
    summary = "simulation job has an invalid engine configuration";
  }

let sim_saturated =
  {
    code = "NOC-SIM-003";
    severity = Warning;
    summary = "simulation workload offers more than one flit/cycle per flow";
  }

(* Trace streams (pass: traces, in the service layer). *)
let trace_unparsable =
  {
    code = "NOC-TRC-001";
    severity = Error;
    summary = "trace file is not a noc-trace/1 stream";
  }

let trace_unbalanced =
  {
    code = "NOC-TRC-002";
    severity = Error;
    summary = "span events are not balanced within a domain";
  }

let trace_nonmonotonic =
  {
    code = "NOC-TRC-003";
    severity = Warning;
    summary = "timestamps are not monotone within a domain";
  }

let all =
  [
    route_missing;
    route_broken;
    route_bad_vc;
    route_revisit;
    topo_disconnected;
    topo_isolated_switch;
    chan_dead_link;
    vc_dead;
    cycle_witness;
    cert_numbering_rejected;
    dlf_prover_rejects_certified;
    dlf_prover_accepts_rejected;
    dlf_knot;
    dlf_vc_lower_bound;
    dlf_escape_order_rejected;
    escape_disconnected;
    escape_cyclic;
    bw_oversubscribed;
    bw_near_saturation;
    job_file_unparsable;
    job_malformed;
    job_duplicate;
    job_bad_design;
    job_hash_unstable;
    sim_bad_workload;
    sim_bad_engine;
    sim_saturated;
    trace_unparsable;
    trace_unbalanced;
    trace_nonmonotonic;
  ]

let find code = List.find_opt (fun t -> String.equal t.code code) all
let pp ppf t = Format.fprintf ppf "%s [%a]" t.code pp_severity t.severity
