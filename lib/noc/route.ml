type t = Channel.t list

let links r = List.map Channel.link r
let length = List.length
let uses_channel r c = List.exists (Channel.equal c) r

let consecutive_pairs r =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs r

type error =
  | Missing_route of { src : Ids.Switch.t; dst : Ids.Switch.t }
  | Bad_vc of { channel : Channel.t; have : int }
  | Wrong_source of { actual : Ids.Switch.t; expected : Ids.Switch.t }
  | Wrong_destination of { actual : Ids.Switch.t; expected : Ids.Switch.t }
  | Discontinuity of Channel.t * Channel.t
  | Repeated_channel of Channel.t

let error_code = function
  | Missing_route _ -> Diag_code.route_missing
  | Bad_vc _ -> Diag_code.route_bad_vc
  | Wrong_source _ | Wrong_destination _ | Discontinuity _ ->
      Diag_code.route_broken
  | Repeated_channel _ -> Diag_code.route_revisit

let error_message = function
  | Missing_route { src; dst } ->
      Format.asprintf "empty route between distinct switches %a and %a"
        Ids.Switch.pp src Ids.Switch.pp dst
  | Bad_vc { channel; have } ->
      Format.asprintf "channel %a uses VC %d but link has only %d" Channel.pp
        channel (Channel.vc channel) have
  | Wrong_source { actual; expected } ->
      Format.asprintf "route starts at %a, expected %a" Ids.Switch.pp actual
        Ids.Switch.pp expected
  | Wrong_destination { actual; expected } ->
      Format.asprintf "route ends at %a, expected %a" Ids.Switch.pp actual
        Ids.Switch.pp expected
  | Discontinuity (a, b) ->
      Format.asprintf "discontinuous route: %a then %a" Channel.pp a Channel.pp b
  | Repeated_channel _ -> "route repeats a channel"

let check_detailed topo ~src ~dst r =
  let check_vc c =
    let have = Topology.vc_count topo (Channel.link c) in
    if Channel.vc c >= have then Some (Bad_vc { channel = c; have }) else None
  in
  match r with
  | [] ->
      if Ids.Switch.equal src dst then Ok ()
      else Error (Missing_route { src; dst })
  | first :: _ -> (
      match List.find_map check_vc r with
      | Some e -> Error e
      | None ->
          let first_link = Topology.link topo (Channel.link first) in
          let last = List.nth r (List.length r - 1) in
          let last_link = Topology.link topo (Channel.link last) in
          if not (Ids.Switch.equal first_link.Topology.src src) then
            Error
              (Wrong_source
                 { actual = first_link.Topology.src; expected = src })
          else if not (Ids.Switch.equal last_link.Topology.dst dst) then
            Error
              (Wrong_destination
                 { actual = last_link.Topology.dst; expected = dst })
          else begin
            let continuous (a, b) =
              let la = Topology.link topo (Channel.link a) in
              let lb = Topology.link topo (Channel.link b) in
              Ids.Switch.equal la.Topology.dst lb.Topology.src
            in
            match
              List.find_opt (fun p -> not (continuous p)) (consecutive_pairs r)
            with
            | Some (a, b) -> Error (Discontinuity (a, b))
            | None -> (
                let sorted = List.sort Channel.compare r in
                let rec dup = function
                  | a :: (b :: _ as rest) ->
                      if Channel.equal a b then Some a else dup rest
                  | [ _ ] | [] -> None
                in
                match dup sorted with
                | Some c -> Error (Repeated_channel c)
                | None -> Ok ())
          end)

let check topo ~src ~dst r =
  Result.map_error error_message (check_detailed topo ~src ~dst r)

let pp ppf r =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Channel.pp) r
