(** The Channel Dependency Graph (Definition 4): one vertex per channel
    of the topology, one edge [ci -> cj] when at least one flow's route
    uses [ci] and then immediately [cj].  A cycle in this graph is the
    necessary condition for a wormhole routing deadlock (Dally &
    Towles), and its absence is sufficient for deadlock freedom under
    static routing. *)

type t

val build : Network.t -> t
(** Builds the CDG of the network's current topology and routes. *)

type change = {
  new_channels : Channel.t list;
      (** Channels (fresh VCs or links) added to the topology. *)
  reroutes : (Ids.Flow.t * Route.t * Route.t) list;
      (** Per rerouted flow: its route before and after the edit. *)
}
(** A delta against the network state the CDG currently reflects —
    the CDG-relevant part of a {e break-cycle} step. *)

val apply_change : t -> change -> unit
(** [apply_change t c] updates [t] in place so that it equals (in the
    sense of {!equal}, i.e. bit-for-bit including vertex numbering and
    adjacency order) a fresh {!build} of the edited network.  This is
    the removal loop's fast path: the flow→dependency index is patched
    with only the rerouted flows' old and new pairs, and the digraph is
    re-projected from the index without touching the network at all. *)

val equal : t -> t -> bool
(** Structural identity: same channels in the same vertex order, same
    digraph including adjacency-list order, same dependency→flows
    index.  Two equal CDGs drive the removal algorithm through the
    same trajectory; used by the [validate] mode of
    [Removal.run] to assert incremental maintenance against a fresh
    rebuild. *)

val graph : t -> Noc_graph.Digraph.t
(** The underlying digraph; vertex ids are dense channel indices. *)

val n_channels : t -> int

val channel_of_vertex : t -> int -> Channel.t
(** @raise Invalid_argument on an out-of-range vertex. *)

val vertex_of_channel : t -> Channel.t -> int
(** @raise Not_found when the channel does not exist in the topology
    snapshot this CDG was built from. *)

val flows_on_dependency : t -> src:Channel.t -> dst:Channel.t -> Ids.Flow.t list
(** The flows whose routes create the dependency edge, in flow-id
    order; empty when the edge is absent. *)

val is_deadlock_free : t -> bool
(** [true] iff the CDG is acyclic. *)

val smallest_cycle : ?hint:Channel.t list -> t -> Channel.t list option
(** The paper's [GetSmallestCycle]: a minimum-length cycle as a channel
    list in dependency order, or [None] when acyclic.  [hint] channels
    (typically those touched by the last break) seed the search bound —
    they accelerate the scan but never change the returned cycle;
    channels unknown to this CDG are ignored. *)

val cycles : ?max_cycles:int -> t -> Channel.t list list
(** All elementary cycles (bounded enumeration), for diagnostics. *)

val pp : Format.formatter -> t -> unit
