(** A route: the ordered list of channels a flow traverses from its
    source switch to its destination switch (Definition 3). *)

type t = Channel.t list

val links : t -> Ids.Link.t list
val length : t -> int

val uses_channel : t -> Channel.t -> bool

val consecutive_pairs : t -> (Channel.t * Channel.t) list
(** The channel dependencies a route induces: [(c1,c2); (c2,c3); ...].
    Empty for routes with fewer than two channels. *)

type error =
  | Missing_route of { src : Ids.Switch.t; dst : Ids.Switch.t }
      (** Empty route between distinct switches. *)
  | Bad_vc of { channel : Channel.t; have : int }
      (** VC index at or above the link's VC count. *)
  | Wrong_source of { actual : Ids.Switch.t; expected : Ids.Switch.t }
  | Wrong_destination of { actual : Ids.Switch.t; expected : Ids.Switch.t }
  | Discontinuity of Channel.t * Channel.t
      (** Consecutive links are not head-to-tail. *)
  | Repeated_channel of Channel.t  (** Routes must be simple. *)

val error_code : error -> Diag_code.t
(** The stable diagnostic code of each violation class. *)

val error_message : error -> string

val check_detailed : Topology.t -> src:Ids.Switch.t -> dst:Ids.Switch.t -> t ->
  (unit, error) result
(** Structural validation of a route on a topology:
    - non-empty unless [src = dst];
    - every channel's VC index is within the link's VC count;
    - the first link leaves [src], the last enters [dst];
    - consecutive links are head-to-tail;
    - no channel repeats (routes are simple, as required for
      wormhole-deadlock analysis on static routes).

    The first violation found (in the order above) is returned. *)

val check : Topology.t -> src:Ids.Switch.t -> dst:Ids.Switch.t -> t ->
  (unit, string) result
(** [check_detailed] with the error rendered via {!error_message}. *)

val pp : Format.formatter -> t -> unit
