module Digraph = Noc_graph.Digraph

(* The CDG is maintained incrementally across removal iterations, so
   its state is the *index* [dep_flows] — which flow creates which
   dependency at which position of its route — from which the digraph
   is a deterministic projection ([refresh]).  Keeping [dep_flows]
   keyed by channel pairs (not vertex ids) is what makes vertex
   renumbering after a VC addition cheap and exact.

   Exactness matters: the removal loop breaks ties by vertex id and by
   adjacency-list order, so an incrementally maintained CDG must be
   *structurally identical* to [build net] — same vertex numbering,
   same succ/pred order — or the algorithm's trajectory (and the
   pinned figure series in the tests) silently changes.  [refresh]
   guarantees this by construction:

   - vertices are the topology's channels sorted by [Channel.compare],
     which is exactly the order [Topology.channels] yields;
   - edges are inserted in ascending order of their first-encounter
     key — the minimum [(flow, route position)] over the flows that
     create the dependency — which is the order a fresh scan of the
     route list encounters them, because that scan walks flows in
     ascending id order and each route left to right.

   A contributor [(flow, i)] names the dependency at position [i] of
   [flow]'s route, so distinct dependencies never share a
   first-encounter key: [edge_order] can be a map from key to channel
   pair, kept up to date pair-by-pair as routes change. *)

type contributor = Ids.Flow.t * int (* flow, pair index in its route *)

let compare_contributor (f1, i1) (f2, i2) =
  let c = Ids.Flow.compare f1 f2 in
  if c <> 0 then c else Int.compare i1 i2

module Contrib_map = Map.Make (struct
  type t = contributor

  let compare = compare_contributor
end)

type t = {
  mutable graph : Digraph.t;
  mutable channel_of_vertex : Channel.t array;
  vertex_of_channel : int Channel.Table.t;
  dep_flows : (Channel.t * Channel.t, contributor list) Hashtbl.t;
  mutable edge_order : (Channel.t * Channel.t) Contrib_map.t;
      (** first-encounter key -> dependency; ascending-key iteration is
          exactly the fresh-build edge insertion order. *)
}

type change = {
  new_channels : Channel.t list;
  reroutes : (Ids.Flow.t * Route.t * Route.t) list;
}

let min_contributor = function
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun k c -> if compare_contributor c k < 0 then c else k)
           first rest)

let add_route_deps dep_flows flow route =
  List.iteri
    (fun i pair ->
      let old = Option.value ~default:[] (Hashtbl.find_opt dep_flows pair) in
      Hashtbl.replace dep_flows pair ((flow, i) :: old))
    (Route.consecutive_pairs route)

let remove_route_deps dep_flows flow route =
  List.iter
    (fun pair ->
      match Hashtbl.find_opt dep_flows pair with
      | None -> ()
      | Some contribs -> (
          match
            List.filter (fun (f, _) -> not (Ids.Flow.equal f flow)) contribs
          with
          | [] -> Hashtbl.remove dep_flows pair
          | rest -> Hashtbl.replace dep_flows pair rest))
    (Route.consecutive_pairs route)

(* Re-derive vertex numbering (from index [from] on — channels below
   it kept their positions) and the digraph from [channel_of_vertex],
   [dep_flows] and [edge_order].  Channels are never removed, so
   replacing the shifted suffix of [vertex_of_channel] leaves no stale
   entries.  Edges come out of [edge_order] deduplicated (one pair per
   first-encounter key), so the unchecked digraph insert applies. *)
let refresh ?(from = 0) t =
  let n = Array.length t.channel_of_vertex in
  for i = from to n - 1 do
    Channel.Table.replace t.vertex_of_channel t.channel_of_vertex.(i) i
  done;
  let graph = Digraph.create ~initial_capacity:(max 1 n) () in
  if n > 0 then Digraph.ensure_vertex graph (n - 1);
  Contrib_map.iter
    (fun _ (a, b) ->
      Digraph.unsafe_add_edge graph
        (Channel.Table.find t.vertex_of_channel a)
        (Channel.Table.find t.vertex_of_channel b))
    t.edge_order;
  t.graph <- graph

(* Merge the (few) new channels into the sorted vertex array; returns
   the first index whose numbering changed.  [Topology] only ever adds
   channels, and [Channel.compare] is total and duplicate-free here
   (a channel exists at most once), so a single backwards merge keeps
   the array exactly as a full re-sort would. *)
let insert_channels t channels =
  let add = List.sort Channel.compare channels in
  let old = t.channel_of_vertex in
  let n_old = Array.length old in
  let n_add = List.length add in
  let out = Array.make (n_old + n_add) (List.hd add) in
  let first_changed = ref (n_old + n_add) in
  let rec merge i add k =
    match add with
    | [] ->
        (* Every new channel placed: [k = i] holds by counting, so the
           remaining old prefix keeps its positions. *)
        for j = 0 to i do
          out.(j) <- old.(j)
        done
    | c :: rest ->
        if i >= 0 && Channel.compare old.(i) c > 0 then begin
          out.(k) <- old.(i);
          if k <> i then first_changed := min !first_changed k;
          merge (i - 1) add (k - 1)
        end
        else begin
          out.(k) <- c;
          first_changed := min !first_changed k;
          merge i rest (k - 1)
        end
  in
  merge (n_old - 1) (List.rev add) (n_old + n_add - 1);
  t.channel_of_vertex <- out;
  !first_changed

(* Rebuild-vs-incremental is the central perf trade of the incremental
   CDG work; the counters make the split visible in every trace. *)
let builds_total = Noc_obs.Metrics.counter "noc_cdg_builds_total"
let applies_total = Noc_obs.Metrics.counter "noc_cdg_apply_changes_total"

let build net =
  Noc_obs.Trace.with_span "cdg.build" @@ fun sp ->
  Noc_obs.Metrics.incr builds_total;
  let topo = Network.topology net in
  let channels = Array.of_list (Topology.channels topo) in
  (* [Topology.channels] already yields [Channel.compare] order; the
     sort is a cheap one-time guarantee, not a per-iteration cost. *)
  Array.sort Channel.compare channels;
  let n = Array.length channels in
  let vertex_of_channel = Channel.Table.create (2 * n) in
  let dep_flows = Hashtbl.create (4 * n) in
  List.iter
    (fun (flow, route) -> add_route_deps dep_flows flow route)
    (Network.routes net);
  let edge_order =
    Hashtbl.fold
      (fun pair contribs acc ->
        match min_contributor contribs with
        | None -> acc
        | Some key -> Contrib_map.add key pair acc)
      dep_flows Contrib_map.empty
  in
  let t =
    {
      graph = Digraph.create ();
      channel_of_vertex = channels;
      vertex_of_channel;
      dep_flows;
      edge_order;
    }
  in
  refresh t;
  Noc_obs.Trace.add_attr sp "channels" (Noc_obs.Trace.Int n);
  t

let apply_change t { new_channels; reroutes } =
  Noc_obs.Trace.with_span "cdg.apply_change"
    ~attrs:
      [
        ("new_channels", Noc_obs.Trace.Int (List.length new_channels));
        ("reroutes", Noc_obs.Trace.Int (List.length reroutes));
      ]
  @@ fun _sp ->
  Noc_obs.Metrics.incr applies_total;
  (* Collect the dependencies whose contributor lists may change, and
     their keys as of now, before touching anything: [edge_order] can
     then be patched pair-by-pair instead of being rebuilt. *)
  let affected = Hashtbl.create 16 in
  let note pair =
    if not (Hashtbl.mem affected pair) then
      Hashtbl.replace affected pair
        (min_contributor
           (Option.value ~default:[] (Hashtbl.find_opt t.dep_flows pair)))
  in
  List.iter
    (fun (_, old_route, new_route) ->
      List.iter note (Route.consecutive_pairs old_route);
      List.iter note (Route.consecutive_pairs new_route))
    reroutes;
  List.iter
    (fun (flow, old_route, new_route) ->
      remove_route_deps t.dep_flows flow old_route;
      add_route_deps t.dep_flows flow new_route)
    reroutes;
  (* Two phases: drop every stale key first, then insert the fresh
     ones.  A key can migrate between pairs in one change (the old
     route's position [i] and the new route's position [i] are
     different dependencies), so interleaving remove/add per pair
     could clobber a binding another pair just wrote. *)
  let rekeyed =
    Hashtbl.fold
      (fun pair old_key acc ->
        let new_key =
          min_contributor
            (Option.value ~default:[] (Hashtbl.find_opt t.dep_flows pair))
        in
        if old_key = new_key then acc else (pair, old_key, new_key) :: acc)
      affected []
  in
  List.iter
    (fun (_, old_key, _) ->
      match old_key with
      | Some k -> t.edge_order <- Contrib_map.remove k t.edge_order
      | None -> ())
    rekeyed;
  List.iter
    (fun (pair, _, new_key) ->
      match new_key with
      | Some k -> t.edge_order <- Contrib_map.add k pair t.edge_order
      | None -> ())
    rekeyed;
  let from =
    if new_channels = [] then Array.length t.channel_of_vertex
    else insert_channels t new_channels
  in
  refresh ~from t

let graph t = t.graph
let n_channels t = Array.length t.channel_of_vertex

let channel_of_vertex t v =
  if v < 0 || v >= Array.length t.channel_of_vertex then
    invalid_arg (Printf.sprintf "Cdg.channel_of_vertex: vertex %d out of range" v);
  t.channel_of_vertex.(v)

let vertex_of_channel t c = Channel.Table.find t.vertex_of_channel c

let flows_on_dependency t ~src ~dst =
  List.sort_uniq Ids.Flow.compare
    (List.map fst
       (Option.value ~default:[] (Hashtbl.find_opt t.dep_flows (src, dst))))

let equal a b =
  Array.length a.channel_of_vertex = Array.length b.channel_of_vertex
  && Array.for_all2 Channel.equal a.channel_of_vertex b.channel_of_vertex
  && Digraph.equal a.graph b.graph
  && Contrib_map.equal ( = ) a.edge_order b.edge_order
  &&
  let sorted_bindings t =
    Hashtbl.fold
      (fun pair contribs acc ->
        (pair, List.sort compare_contributor contribs) :: acc)
      t.dep_flows []
    |> List.sort compare
  in
  sorted_bindings a = sorted_bindings b

let is_deadlock_free t = not (Noc_graph.Cycles.has_cycle t.graph)

let smallest_cycle ?(hint = []) t =
  let prefer =
    List.filter_map (Channel.Table.find_opt t.vertex_of_channel) hint
  in
  Option.map
    (List.map (channel_of_vertex t))
    (Noc_graph.Cycles.shortest ~prefer t.graph)

let cycles ?max_cycles t =
  List.map
    (List.map (channel_of_vertex t))
    (Noc_graph.Cycles.enumerate ?max_cycles t.graph)

let pp ppf t =
  Format.fprintf ppf "@[<v>CDG: %d channels, %d dependencies"
    (n_channels t) (Digraph.n_edges t.graph);
  Digraph.iter_edges
    (fun u v ->
      Format.fprintf ppf "@,%a -> %a" Channel.pp (channel_of_vertex t u) Channel.pp
        (channel_of_vertex t v))
    t.graph;
  Format.fprintf ppf "@]"
