(** The built-in pass registry.  Higher layers append their own passes
    (the service contributes the job-file pass) before handing the list
    to {!Engine.analyze}. *)

val design_passes : ?capacity_mbps:float -> unit -> Pass.t list
(** The nine design passes, catalog order.  [capacity_mbps]
    parameterizes the bandwidth pass (default
    {!Passes.default_capacity_mbps}). *)

val names : string list
