(** The pass driver: run every applicable pass over a target and
    collect the findings, most severe first. *)

open Noc_model

type report = {
  label : string;  (** What was analyzed, e.g. ["D26_media@14"] or a path. *)
  passes_run : string list;  (** Names of the passes that applied. *)
  diagnostics : Diagnostic.t list;  (** Sorted by {!Diagnostic.compare}. *)
}

val analyze : passes:Pass.t list -> label:string -> Pass.target -> report
(** Runs the passes whose scope matches the target.  A pass that raises
    [Failure]/[Invalid_argument] aborts the analysis with a [Failure]
    naming the pass — lint passes are expected to guard themselves
    (see {!Passes.when_routes_valid}-style gating). *)

val worst : report -> Diag_code.severity option
(** Severity of the most severe finding; [None] when clean. *)

val count_at_least : floor:Diag_code.severity -> report list -> int
(** Findings at or above [floor] across reports — the [--fail-on]
    gate's count. *)

val totals : report list -> int * int * int
(** [(errors, warnings, infos)] across reports. *)
