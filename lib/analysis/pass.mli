(** An analysis pass: a named, self-describing check that inspects one
    target and returns structured {!Diagnostic.t} findings.

    Passes are registered in {!Registry} (design passes) and extended
    by higher layers (the service contributes the job-file pass); the
    {!Engine} runs whichever passes apply to a target. *)

open Noc_model

type target =
  | Design of Network.t  (** A complete NoC design. *)
  | Job_file of { path : string; text : string }
      (** A noc-jobs/1 batch file, as raw text plus its display path. *)
  | Trace_file of { path : string; text : string }
      (** A noc-trace/1 span-trace stream, as raw text plus its display
          path. *)

type scope = Design_scope | Job_scope | Trace_scope

type t = {
  name : string;  (** Registry name, e.g. ["routes"]. *)
  prefix : string;
      (** Stable code prefix; every diagnostic the pass emits uses it,
          e.g. ["NOC-ROUTE"]. *)
  scope : scope;
  severity_floor : Diag_code.severity;
      (** The most severe diagnostic this pass can emit.  An engine
          that only needs an exit code may skip passes whose floor is
          below the failure threshold. *)
  doc : string;  (** One-line description for catalogs and [--help]. *)
  run : target -> Diagnostic.t list;
      (** Must return [[]] on targets outside the pass's scope. *)
}

val applies : t -> target -> bool
(** Scope/target agreement. *)

val pp : Format.formatter -> t -> unit
