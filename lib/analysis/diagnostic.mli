(** A single structured finding of a static-analysis pass.

    Every diagnostic names a stable code from the shared
    {!Noc_model.Diag_code} table, a severity, the network element (or
    job-file entry) it is anchored to, a human message, and optionally
    a suggested fix.  Diagnostics are pure data; rendering to text,
    JSON or SARIF lives in {!Render}. *)

open Noc_model

type location =
  | Design  (** The design (or file) as a whole. *)
  | Switch of Ids.Switch.t
  | Link of Ids.Link.t
  | Channel of Channel.t
  | Flow of Ids.Flow.t
  | Job of { path : string; index : int option }
      (** A job file, optionally one job entry in it. *)
  | File of { path : string; line : int option }
      (** A plain file, optionally one (1-based) line in it — trace
          streams and other non-design artefacts. *)

val location_path : location -> string
(** Stable element path, e.g. ["flow/3"], ["channel/5.1"],
    ["jobs.json#2"]. *)

type t = {
  code : Diag_code.t;
  severity : Diag_code.severity;
      (** Usually [code.severity]; passes may downgrade in context. *)
  location : location;
  message : string;
  fix : string option;  (** A suggested remediation, when one is known. *)
}

val v :
  ?severity:Diag_code.severity ->
  ?fix:string ->
  Diag_code.t ->
  location ->
  string ->
  t
(** [v code location message] — severity defaults to the code's. *)

val severity : t -> Diag_code.severity

val compare : t -> t -> int
(** Most severe first, then code, then location path, then message. *)

val pp : Format.formatter -> t -> unit
(** One line: [CODE severity location: message (fix: ...)]. *)
