let design_passes ?(capacity_mbps = Passes.default_capacity_mbps) () =
  [
    Passes.routes;
    Passes.connectivity;
    Passes.dead_channels;
    Passes.dead_vcs;
    Passes.cdg_cycle;
    Passes.certificate;
    Passes.deadlock_freedom;
    Passes.escape;
    Passes.bandwidth ~capacity_mbps;
  ]

let names = List.map (fun p -> p.Pass.name) (design_passes ())
