(* The nine design-level passes.  Each is deliberately small: it maps
   one existing analysis (Validate, Cdg/Verify, Duato, Bandwidth) into
   structured diagnostics with stable codes, so the linter never owns
   algorithmic logic of its own — it owns the reporting contract. *)

open Noc_model

let design_only run = function
  | Pass.Design net -> run net
  | Pass.Job_file _ | Pass.Trace_file _ -> []

(* Passes that interpret routes (CDG construction, escape coverage,
   bandwidth accounting) are only meaningful — and only safe — on
   designs whose routes are structurally well-formed; broken routes are
   the routes pass's finding, not theirs. *)
let when_routes_valid f net = if Validate.check net = [] then f net else []

(* 1. routes ------------------------------------------------------- *)

let fix_of_code (code : Diag_code.t) =
  if code == Diag_code.route_missing then
    Some "route the flow (Noc_model.Routing.route_all) or drop it"
  else None

let routes =
  {
    Pass.name = "routes";
    prefix = "NOC-ROUTE";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Error;
    doc = "every flow's route exists and follows the physical topology";
    run =
      design_only (fun net ->
          List.map
            (fun (i : Validate.issue) ->
              let location =
                match i.Validate.flow with
                | Some f -> Diagnostic.Flow f
                | None -> Diagnostic.Design
              in
              Diagnostic.v ?fix:(fix_of_code i.Validate.code) i.Validate.code
                location i.Validate.message)
            (Validate.check net));
  }

(* 2. connectivity ------------------------------------------------- *)

let connectivity =
  {
    Pass.name = "connectivity";
    prefix = "NOC-TOPO";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Error;
    doc = "the topology is connected and no switch is isolated";
    run =
      design_only (fun net ->
          let topo = Network.topology net in
          let isolated =
            List.filter_map
              (fun s ->
                let s = Ids.Switch.of_int s in
                if Topology.degree topo s = 0 then
                  Some
                    (Diagnostic.v Diag_code.topo_isolated_switch
                       (Diagnostic.Switch s) "switch has no attached links"
                       ~fix:"connect the switch or drop it from the design")
                else None)
              (List.init (Topology.n_switches topo) Fun.id)
          in
          let disconnected =
            if Topology.is_connected topo then []
            else
              [
                Diagnostic.v Diag_code.topo_disconnected Diagnostic.Design
                  "topology is not (weakly) connected";
              ]
          in
          disconnected @ isolated);
  }

(* 3. dead channels ------------------------------------------------ *)

let used_channels net =
  let used = Channel.Table.create 64 in
  List.iter
    (fun (_, route) -> List.iter (fun c -> Channel.Table.replace used c ()) route)
    (Network.routes net);
  used

let dead_channels =
  {
    Pass.name = "dead-channels";
    prefix = "NOC-CHAN";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Warning;
    doc = "every physical link carries at least one routed flow";
    run =
      design_only (fun net ->
          let topo = Network.topology net in
          let used = used_channels net in
          List.filter_map
            (fun (l : Topology.link) ->
              let vcs = Topology.vc_count topo l.Topology.id in
              let any_used =
                List.exists
                  (fun v ->
                    Channel.Table.mem used (Channel.make l.Topology.id v))
                  (List.init vcs Fun.id)
              in
              if any_used then None
              else
                Some
                  (Diagnostic.v Diag_code.chan_dead_link
                     (Diagnostic.Link l.Topology.id)
                     (Format.asprintf
                        "link %a (%a -> %a) carries no routed flow"
                        Ids.Link.pp l.Topology.id Ids.Switch.pp l.Topology.src
                        Ids.Switch.pp l.Topology.dst)
                     ~fix:"remove the link or route traffic over it"))
            (Topology.links topo));
  }

(* 4. dead VCs ----------------------------------------------------- *)

let dead_vcs =
  {
    Pass.name = "dead-vcs";
    prefix = "NOC-VC";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Warning;
    doc = "every allocated VC of a live link is used by some route";
    run =
      design_only (fun net ->
          let topo = Network.topology net in
          let used = used_channels net in
          List.concat_map
            (fun (l : Topology.link) ->
              let vcs = Topology.vc_count topo l.Topology.id in
              let channel v = Channel.make l.Topology.id v in
              let live =
                List.exists
                  (fun v -> Channel.Table.mem used (channel v))
                  (List.init vcs Fun.id)
              in
              if not live then
                (* A fully dead link is NOC-CHAN-001's finding. *)
                []
              else
                List.filter_map
                  (fun v ->
                    if Channel.Table.mem used (channel v) then None
                    else
                      Some
                        (Diagnostic.v Diag_code.vc_dead
                           (Diagnostic.Channel (channel v))
                           (Format.asprintf
                              "VC %d of link %a is allocated but unused" v
                              Ids.Link.pp l.Topology.id)
                           ~fix:
                             "rebalance flows over the link's VCs or drop \
                              the VC"))
                  (List.init vcs Fun.id))
            (Topology.links topo));
  }

(* 5. CDG cycle witness -------------------------------------------- *)

let pp_cycle ppf cycle =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
    Channel.pp ppf cycle

let cdg_cycle =
  {
    Pass.name = "cdg-cycle";
    prefix = "NOC-CYCLE";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Warning;
    doc = "the channel dependency graph is acyclic (deadlock freedom)";
    run =
      design_only
        (when_routes_valid (fun net ->
             let cert = Noc_deadlock.Verify.certify net in
             match cert.Noc_deadlock.Verify.sample_cycle with
             | None -> []
             | Some cycle ->
                 [
                   Diagnostic.v Diag_code.cycle_witness
                     (Diagnostic.Channel (List.hd cycle))
                     (Format.asprintf
                        "CDG cycle of %d channels: %a (design can deadlock)"
                        (List.length cycle) pp_cycle cycle)
                     ~fix:"run `noc_tool remove` to break the cycles";
                 ]));
  }

(* 6. certificate-numbering recheck -------------------------------- *)

let recheck_numbering net numbering =
  if Noc_deadlock.Verify.check_numbering net numbering then []
  else
    [
      Diagnostic.v Diag_code.cert_numbering_rejected Diagnostic.Design
        "the deadlock-freedom certificate's channel numbering fails the \
         independent linear-time recheck"
        ~fix:"rebuild the certificate (Noc_deadlock.Verify.certify)";
    ]

let certificate =
  {
    Pass.name = "certificate";
    prefix = "NOC-CERT";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Error;
    doc =
      "an acyclic verdict's numbering witness passes the independent recheck";
    run =
      design_only
        (when_routes_valid (fun net ->
             match (Noc_deadlock.Verify.certify net).Noc_deadlock.Verify.numbering with
             | None -> []
             | Some numbering -> recheck_numbering net numbering));
  }

(* 7. independent deadlock-freedom prover -------------------------- *)

(* Cross-examination of the two provers.  [certified_acyclic] is
   Verify.certify's verdict; the argument order makes the helper usable
   from tests with a fabricated verdict (the pass itself can only see
   the codes fire when one of the implementations is actually buggy,
   which is the point). *)
(* SLO surface: every NOC-DLF-001/002 finding is a prover/certify
   disagreement, counted so the dlf_agreement objective (disagreements
   at most 0) burns the moment either implementation drifts. *)
let disagreements_total =
  lazy (Noc_obs.Metrics.counter "noc_dlf_disagreements_total")

let cross_check_findings ~certified_acyclic (v : Deadlock_freedom.verdict) =
  let disagree () =
    Noc_obs.Metrics.incr (Lazy.force disagreements_total)
  in
  if certified_acyclic && not v.Deadlock_freedom.deadlock_free then begin
    disagree ();
    let where =
      match v.Deadlock_freedom.knot with
      | Some (c :: _) -> Diagnostic.Channel c
      | _ -> Diagnostic.Design
    in
    [
      Diagnostic.v Diag_code.dlf_prover_rejects_certified where
        (Format.asprintf
           "Verify.certify accepts the design but the independent condition \
            finds a waiting knot of %d channels"
           (match v.Deadlock_freedom.knot with
           | Some k -> List.length k
           | None -> 0))
        ~fix:"one of the two provers is wrong: file a bug with the design";
    ]
  end
  else if (not certified_acyclic) && v.Deadlock_freedom.deadlock_free then begin
    disagree ();
    [
      Diagnostic.v Diag_code.dlf_prover_accepts_rejected Diagnostic.Design
        "Verify.certify rejects the design but the independent condition \
         proves deadlock freedom"
        ~fix:"one of the two provers is wrong: file a bug with the design";
    ]
  end
  else []

(* Replay of the prover's own witness, again as an exposed helper so a
   corrupted ordering can be exercised from tests. *)
let escape_order_findings net order =
  if Deadlock_freedom.check_escape_order net order then []
  else
    [
      Diagnostic.v Diag_code.dlf_escape_order_rejected Diagnostic.Design
        "the escape ordering witness fails the independent linear replay"
        ~fix:"rerun the prover (Deadlock_freedom.analyze)";
    ]

let deadlock_freedom =
  {
    Pass.name = "deadlock-freedom";
    prefix = "NOC-DLF";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Error;
    doc =
      "the independent escape-elimination prover agrees with Verify.certify";
    run =
      design_only
        (when_routes_valid (fun net ->
             let v = Deadlock_freedom.analyze net in
             let cert = Noc_deadlock.Verify.certify net in
             let cross =
               cross_check_findings
                 ~certified_acyclic:cert.Noc_deadlock.Verify.acyclic v
             in
             let witness =
               match v.Deadlock_freedom.escape_order with
               | Some order -> escape_order_findings net order
               | None -> (
                   let knot_finding =
                     match (v.Deadlock_freedom.knot, v.Deadlock_freedom.knot_cycle)
                     with
                     | Some (c :: _ as knot), Some cycle ->
                         [
                           Diagnostic.v Diag_code.dlf_knot
                             (Diagnostic.Channel c)
                             (Format.asprintf
                                "waiting knot of %d channels (every member \
                                 waits only on other members); sample cycle: \
                                 %a"
                                (List.length knot) pp_cycle cycle)
                             ~fix:"run `noc_tool remove` to break the cycles";
                         ]
                     | _ -> []
                   in
                   let bound = Deadlock_freedom.vc_lower_bound net in
                   match bound.Deadlock_freedom.lower_bound with
                   | 0 -> knot_finding
                   | n ->
                       knot_finding
                       @ [
                           Diagnostic.v Diag_code.dlf_vc_lower_bound
                             Diagnostic.Design
                             (Printf.sprintf
                                "any duplication-based removal must add at \
                                 least %d VC%s (%d vertex-disjoint wait \
                                 cycles)"
                                n
                                (if n = 1 then "" else "s")
                                n);
                         ])
             in
             cross @ witness));
  }

(* 8. escape-channel coverage (Duato baseline) --------------------- *)

let escape =
  {
    Pass.name = "escape";
    prefix = "NOC-ESC";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Warning;
    doc =
      "the VC0 escape set satisfies Duato's condition for the static routes";
    run =
      design_only
        (when_routes_valid (fun net ->
             let rf = Routing_function.of_static_routes net in
             let verdict =
               Noc_deadlock.Duato.check net rf ~escape:(fun c ->
                   Channel.vc c = 0)
             in
             let disconnected =
               match verdict.Noc_deadlock.Duato.connectivity_failure with
               | None -> []
               | Some why ->
                   [
                     Diagnostic.v Diag_code.escape_disconnected
                       Diagnostic.Design
                       (Printf.sprintf
                          "VC0 escape set is not connected for the static \
                           routing function: %s"
                          why)
                       ~fix:
                         "keep at least one VC0 path per flow when \
                          rebalancing VCs";
                   ]
             in
             let cyclic =
               match verdict.Noc_deadlock.Duato.extended_cdg_cycle with
               | None -> []
               | Some cycle ->
                   [
                     Diagnostic.v Diag_code.escape_cyclic
                       (Diagnostic.Channel (List.hd cycle))
                       (Format.asprintf
                          "extended CDG of the VC0 escape set is cyclic: %a"
                          pp_cycle cycle)
                       ~fix:"run `noc_tool remove` to break the cycles";
                   ]
             in
             disconnected @ cyclic));
  }

(* 9. bandwidth ---------------------------------------------------- *)

let default_capacity_mbps = 4000.

let bandwidth ~capacity_mbps =
  {
    Pass.name = "bandwidth";
    prefix = "NOC-BW";
    scope = Pass.Design_scope;
    severity_floor = Diag_code.Warning;
    doc =
      Printf.sprintf
        "no link is oversubscribed at %g MB/s capacity (90%%+ is noted)"
        capacity_mbps;
    run =
      design_only
        (when_routes_valid (fun net ->
             let report = Bandwidth.analyze ~capacity_mbps net in
             List.filter_map
               (fun (u : Bandwidth.link_usage) ->
                 if u.Bandwidth.utilization > 1.0 then
                   Some
                     (Diagnostic.v Diag_code.bw_oversubscribed
                        (Diagnostic.Link u.Bandwidth.link)
                        (Format.asprintf
                           "link %a carries %.1f MB/s, %.0f%% of its %g MB/s \
                            capacity"
                           Ids.Link.pp u.Bandwidth.link u.Bandwidth.load_mbps
                           (100. *. u.Bandwidth.utilization)
                           capacity_mbps)
                        ~fix:
                          "reroute flows off the link or raise the link \
                           capacity")
                 else if u.Bandwidth.utilization >= 0.9 then
                   Some
                     (Diagnostic.v Diag_code.bw_near_saturation
                        (Diagnostic.Link u.Bandwidth.link)
                        (Format.asprintf
                           "link %a is at %.0f%% of its %g MB/s capacity"
                           Ids.Link.pp u.Bandwidth.link
                           (100. *. u.Bandwidth.utilization)
                           capacity_mbps))
                 else None)
               report.Bandwidth.usages));
  }
