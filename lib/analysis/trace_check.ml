(* The noc-trace/1 file pass: structural validation of an exported
   span-trace stream.  The exporter upholds three invariants by
   construction — a schema header, per-domain monotone timestamps, and
   well-parenthesized span nesting — so any violation means the file
   was truncated, hand-edited, or produced by a broken writer, and
   downstream consumers (Perfetto conversion, phase attribution) would
   silently mis-attribute time.  The pass re-checks all three from the
   raw text alone. *)

module Json = Noc_json.Json

let schema = "noc-trace/1"

let diag ~path ~line code msg =
  Diagnostic.v code (Diagnostic.File { path; line = Some line }) msg

(* One parsed span event; metric lines carry no domain and take no part
   in the balance/monotonicity checks. *)
type event =
  | Span_begin of { name : string; ts : float; domain : int }
  | Span_end of { name : string; ts : float; domain : int }
  | Metric
  | Other of string

let classify_line json =
  match Json.member "event" json with
  | Some (Json.Str kind) -> (
      let name () =
        match Json.member "name" json with
        | Some (Json.Str s) -> Ok s
        | _ -> Error "missing \"name\""
      in
      let ts () =
        match Json.member "ts" json with
        | Some (Json.Num f) -> Ok f
        | _ -> Error "missing numeric \"ts\""
      in
      let domain () =
        match Json.member "domain" json with
        | Some (Json.Num f) -> Ok (int_of_float f)
        | _ -> Error "missing numeric \"domain\""
      in
      let span make =
        match (name (), ts (), domain ()) with
        | Ok name, Ok ts, Ok domain -> Ok (make ~name ~ts ~domain)
        | (Error e, _, _ | _, Error e, _ | _, _, Error e) ->
            Error (Printf.sprintf "%s event %s" kind e)
      in
      match kind with
      | "span_begin" ->
          span (fun ~name ~ts ~domain -> Span_begin { name; ts; domain })
      | "span_end" ->
          span (fun ~name ~ts ~domain -> Span_end { name; ts; domain })
      | "metric" -> Ok Metric
      | other -> Ok (Other other))
  | Some _ | None -> Error "line has no \"event\" field"

let check_header ~path line_no text =
  match Json.of_string text with
  | Error e ->
      Error
        (diag ~path ~line:line_no Noc_model.Diag_code.trace_unparsable
           (Printf.sprintf "header line is not JSON: %s" e))
  | Ok json -> (
      match Json.member "schema" json with
      | Some (Json.Str s) when String.equal s schema -> Ok ()
      | Some (Json.Str s) ->
          Error
            (diag ~path ~line:line_no Noc_model.Diag_code.trace_unparsable
               (Printf.sprintf "unsupported schema %S (want %S)" s schema))
      | Some _ | None ->
          Error
            (diag ~path ~line:line_no Noc_model.Diag_code.trace_unparsable
               "header line has no \"schema\" field"))

let check ~path text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  match lines with
  | [] ->
      [
        Diagnostic.v Noc_model.Diag_code.trace_unparsable
          (Diagnostic.File { path; line = None })
          "file is empty (a noc-trace/1 stream starts with a schema header)";
      ]
  | (header_no, header) :: body -> (
      match check_header ~path header_no header with
      | Error d -> [ d ]
      | Ok () ->
          let diags = ref [] in
          let add d = diags := d :: !diags in
          (* Per-domain open-span stack (for balance) and last
             timestamp (for monotonicity); each entry on the stack
             remembers its begin line for the report. *)
          let stacks : (int, (string * int) list ref) Hashtbl.t =
            Hashtbl.create 4
          in
          let last_ts : (int, float) Hashtbl.t = Hashtbl.create 4 in
          let stack domain =
            match Hashtbl.find_opt stacks domain with
            | Some s -> s
            | None ->
                let s = ref [] in
                Hashtbl.replace stacks domain s;
                s
          in
          let check_ts line domain ts =
            (match Hashtbl.find_opt last_ts domain with
            | Some prev when ts < prev ->
                add
                  (diag ~path ~line Noc_model.Diag_code.trace_nonmonotonic
                     (Printf.sprintf
                        "domain %d timestamp goes backwards (%.0f after %.0f)"
                        domain ts prev))
            | Some _ | None -> ());
            Hashtbl.replace last_ts domain ts
          in
          List.iter
            (fun (line, text) ->
              match Json.of_string text with
              | Error e ->
                  add
                    (diag ~path ~line Noc_model.Diag_code.trace_unparsable
                       (Printf.sprintf "line is not JSON: %s" e))
              | Ok json -> (
                  match classify_line json with
                  | Error msg ->
                      add
                        (diag ~path ~line Noc_model.Diag_code.trace_unparsable
                           msg)
                  | Ok (Other _) | Ok Metric -> ()
                  | Ok (Span_begin { name; ts; domain }) ->
                      check_ts line domain ts;
                      let s = stack domain in
                      s := (name, line) :: !s
                  | Ok (Span_end { name; ts; domain }) -> (
                      check_ts line domain ts;
                      let s = stack domain in
                      match !s with
                      | (top, _) :: rest when String.equal top name ->
                          s := rest
                      | (top, top_line) :: _ ->
                          add
                            (diag ~path ~line
                               Noc_model.Diag_code.trace_unbalanced
                               (Printf.sprintf
                                  "span_end %S does not match the open span \
                                   %S (begun at line %d) on domain %d"
                                  name top top_line domain))
                      | [] ->
                          add
                            (diag ~path ~line
                               Noc_model.Diag_code.trace_unbalanced
                               (Printf.sprintf
                                  "span_end %S with no open span on domain %d"
                                  name domain)))))
            body;
          Hashtbl.iter
            (fun domain s ->
              List.iter
                (fun (name, line) ->
                  add
                    (diag ~path ~line Noc_model.Diag_code.trace_unbalanced
                       (Printf.sprintf
                          "span %S on domain %d is never closed" name domain)))
                !s)
            stacks;
          List.rev !diags)

let pass =
  {
    Pass.name = "traces";
    prefix = "NOC-TRC";
    scope = Pass.Trace_scope;
    severity_floor = Noc_model.Diag_code.Error;
    doc =
      "noc-trace/1 streams parse, balance their spans, and keep per-domain \
       timestamps monotone";
    run =
      (function
      | Pass.Design _ | Pass.Job_file _ -> []
      | Pass.Trace_file { path; text } -> check ~path text);
  }
