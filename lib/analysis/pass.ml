open Noc_model

type target =
  | Design of Network.t
  | Job_file of { path : string; text : string }
  | Trace_file of { path : string; text : string }

type scope = Design_scope | Job_scope | Trace_scope

type t = {
  name : string;
  prefix : string;
  scope : scope;
  severity_floor : Diag_code.severity;
  doc : string;
  run : target -> Diagnostic.t list;
}

let applies pass target =
  match (pass.scope, target) with
  | Design_scope, Design _ | Job_scope, Job_file _ | Trace_scope, Trace_file _
    ->
      true
  | Design_scope, (Job_file _ | Trace_file _)
  | Job_scope, (Design _ | Trace_file _)
  | Trace_scope, (Design _ | Job_file _) ->
      false

let pp ppf p =
  Format.fprintf ppf "%s (%s-*, up to %a)" p.name p.prefix
    Diag_code.pp_severity p.severity_floor
