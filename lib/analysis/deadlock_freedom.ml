(* Independent deadlock-freedom prover.

   Everything here is deliberately self-contained: the waits-for
   relation is rebuilt from the routes with a private interning table,
   and the condition is decided by an escape-elimination fixpoint
   (reverse Kahn over waits, processed in deterministic rounds) rather
   than the DFS toposort Verify uses.  The value of the module is the
   disagreement surface: if this code and Noc_deadlock.Verify ever
   return different verdicts on the same network, one of them has a
   bug, and the NOC-DLF-001/002 lint codes make that loud. *)

open Noc_model

type verdict = {
  deadlock_free : bool;
  n_channels : int;
  n_waits : int;
  escape_order : Channel.t list option;
  knot : Channel.t list option;
  knot_cycle : Channel.t list option;
}

type bound = { lower_bound : int; disjoint_cycles : Channel.t list list }

(* Private arena: channels of the topology interned into dense indices
   (Topology.channels is ordered by link then VC, so indices are
   stable), waits deduplicated.  [succs] are the channels a flit on the
   key waits for; [preds] the reverse, used to propagate escapes. *)
type arena = {
  channels : Channel.t array;
  succs : int list array;
  preds : int list array;
  n_waits : int;
}

let build_arena net =
  let channels = Array.of_list (Topology.channels (Network.topology net)) in
  let n = Array.length channels in
  let index = Channel.Table.create (2 * max 1 n) in
  Array.iteri (fun i c -> Channel.Table.replace index c i) channels;
  let succs = Array.make n [] and preds = Array.make n [] in
  let seen = Hashtbl.create 256 in
  let n_waits = ref 0 in
  List.iter
    (fun (_flow, route) ->
      List.iter
        (fun (a, b) ->
          match
            (Channel.Table.find_opt index a, Channel.Table.find_opt index b)
          with
          | Some u, Some v when not (Hashtbl.mem seen (u, v)) ->
              Hashtbl.replace seen (u, v) ();
              succs.(u) <- v :: succs.(u);
              preds.(v) <- u :: preds.(v);
              incr n_waits
          | _ -> ())
        (Route.consecutive_pairs route))
    (Network.routes net);
  { channels; succs; preds; n_waits = !n_waits }

(* The fixpoint.  A channel escapes once all channels it waits for have
   escaped; wait-free channels escape vacuously.  Rounds (all channels
   eligible at the start of a round escape together, ascending index)
   make the elimination order a pure function of the network. *)
let eliminate arena =
  let n = Array.length arena.channels in
  let pending = Array.map List.length arena.succs in
  let escaped = Array.make n false in
  let order = ref [] (* reversed escape order *) in
  let wave = ref [] in
  for v = n - 1 downto 0 do
    if pending.(v) = 0 then wave := v :: !wave
  done;
  while !wave <> [] do
    let current = !wave in
    wave := [];
    List.iter
      (fun v ->
        escaped.(v) <- true;
        order := v :: !order)
      current;
    let next = ref [] in
    List.iter
      (fun v ->
        List.iter
          (fun u ->
            if not escaped.(u) then begin
              pending.(u) <- pending.(u) - 1;
              if pending.(u) = 0 then next := u :: !next
            end)
          arena.preds.(v))
      current;
    wave := List.sort_uniq compare !next
  done;
  (escaped, List.rev !order)

(* A concrete waits-for cycle inside the knot: follow the smallest
   non-escaped successor from the smallest knot member until a vertex
   repeats.  Total because every knot member waits on a knot member. *)
let cycle_in_knot arena escaped start =
  let position = Hashtbl.create 16 in
  let path = ref [] in
  let rec walk v len =
    match Hashtbl.find_opt position v with
    | Some at ->
        let tail = List.rev !path in
        List.filteri (fun i _ -> i >= at) tail
    | None ->
        Hashtbl.replace position v len;
        path := v :: !path;
        let next =
          List.fold_left
            (fun best u ->
              if escaped.(u) then best
              else match best with Some b when b <= u -> best | _ -> Some u)
            None arena.succs.(v)
        in
        walk (Option.get next) (len + 1)
  in
  walk start 0

let analyze net =
  let arena = build_arena net in
  let n = Array.length arena.channels in
  let escaped, order = eliminate arena in
  if List.length order = n then
    {
      deadlock_free = true;
      n_channels = n;
      n_waits = arena.n_waits;
      escape_order = Some (List.map (fun v -> arena.channels.(v)) order);
      knot = None;
      knot_cycle = None;
    }
  else begin
    let knot = ref [] in
    for v = n - 1 downto 0 do
      if not escaped.(v) then knot := v :: !knot
    done;
    let cycle = cycle_in_knot arena escaped (List.hd !knot) in
    {
      deadlock_free = false;
      n_channels = n;
      n_waits = arena.n_waits;
      escape_order = None;
      knot = Some (List.map (fun v -> arena.channels.(v)) !knot);
      knot_cycle = Some (List.map (fun v -> arena.channels.(v)) cycle);
    }
  end

(* Witness replay, on purpose not reusing [eliminate]: a valid escape
   ordering lists every channel exactly once and, for each wait (a, b),
   ranks b (the waited-for channel) strictly earlier than a. *)
let check_escape_order net order =
  let rank = Channel.Table.create 64 in
  let duplicate = ref false in
  List.iteri
    (fun i c ->
      if Channel.Table.mem rank c then duplicate := true
      else Channel.Table.replace rank c i)
    order;
  (not !duplicate)
  && List.for_all
       (fun (_flow, route) ->
         List.for_all
           (fun (a, b) ->
             match
               (Channel.Table.find_opt rank a, Channel.Table.find_opt rank b)
             with
             | Some ra, Some rb -> rb < ra
             | _ -> false)
           (Route.consecutive_pairs route))
       (Network.routes net)

(* VC lower bound: greedy vertex-disjoint cycle packing over the
   waits-for relation.  Each packed cycle must lose at least one of its
   own channels to duplication before the relation can become acyclic,
   and disjoint cycles need distinct duplications, so the packing size
   bounds vcs_added from below.  Shortest-cycle-first keeps the packing
   large and the witness readable. *)
let shortest_cycle_through arena alive start =
  let n = Array.length arena.channels in
  let dist = Array.make n (-1) and parent = Array.make n (-1) in
  dist.(start) <- 0;
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun u ->
        if alive.(u) && dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          parent.(u) <- v;
          Queue.add u queue
        end)
      arena.succs.(v)
  done;
  (* Close the cycle through the best reachable predecessor of start. *)
  let closer =
    List.fold_left
      (fun best p ->
        if (not alive.(p)) || dist.(p) < 0 then best
        else
          match best with
          | Some b when dist.(b) <= dist.(p) -> best
          | _ -> Some p)
      None arena.preds.(start)
  in
  match closer with
  | None -> None
  | Some p ->
      let rec unwind v acc =
        if v = start then start :: acc else unwind parent.(v) (v :: acc)
      in
      Some (unwind p [])

let vc_lower_bound net =
  let arena = build_arena net in
  let n = Array.length arena.channels in
  let alive = Array.make n true in
  let cycles = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let best = ref None in
    for v = 0 to n - 1 do
      if alive.(v) then
        match shortest_cycle_through arena alive v with
        | None -> ()
        | Some cycle -> (
            match !best with
            | Some b when List.length b <= List.length cycle -> ()
            | _ -> best := Some cycle)
    done;
    match !best with
    | None -> continue_ := false
    | Some cycle ->
        List.iter (fun v -> alive.(v) <- false) cycle;
        cycles := cycle :: !cycles
  done;
  let disjoint_cycles =
    List.rev_map (List.map (fun v -> arena.channels.(v))) !cycles
  in
  { lower_bound = List.length disjoint_cycles; disjoint_cycles }

let pp_channels ppf cs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
    Channel.pp ppf cs

let pp_verdict ppf v =
  if v.deadlock_free then
    Format.fprintf ppf
      "deadlock-free (%d channels, %d waits, escape ordering of %d channels)"
      v.n_channels v.n_waits
      (match v.escape_order with Some o -> List.length o | None -> 0)
  else
    Format.fprintf ppf
      "can deadlock (%d channels, %d waits, knot of %d channels; cycle: %a)"
      v.n_channels v.n_waits
      (match v.knot with Some k -> List.length k | None -> 0)
      pp_channels
      (match v.knot_cycle with Some c -> c | None -> [])
