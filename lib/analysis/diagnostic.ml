open Noc_model

type location =
  | Design
  | Switch of Ids.Switch.t
  | Link of Ids.Link.t
  | Channel of Channel.t
  | Flow of Ids.Flow.t
  | Job of { path : string; index : int option }
  | File of { path : string; line : int option }

let location_path = function
  | Design -> "design"
  | Switch s -> Printf.sprintf "switch/%d" (Ids.Switch.to_int s)
  | Link l -> Printf.sprintf "link/%d" (Ids.Link.to_int l)
  | Channel c ->
      Printf.sprintf "channel/%d.%d" (Ids.Link.to_int (Channel.link c))
        (Channel.vc c)
  | Flow f -> Printf.sprintf "flow/%d" (Ids.Flow.to_int f)
  | Job { path; index } -> (
      match index with
      | None -> path
      | Some i -> Printf.sprintf "%s#%d" path i)
  | File { path; line } -> (
      match line with
      | None -> path
      | Some l -> Printf.sprintf "%s:%d" path l)

type t = {
  code : Diag_code.t;
  severity : Diag_code.severity;
  location : location;
  message : string;
  fix : string option;
}

let v ?severity ?fix code location message =
  let severity =
    match severity with Some s -> s | None -> code.Diag_code.severity
  in
  { code; severity; location; message; fix }

let severity d = d.severity

let compare a b =
  let by_severity =
    compare
      (Diag_code.severity_rank b.severity)
      (Diag_code.severity_rank a.severity)
  in
  if by_severity <> 0 then by_severity
  else
    let by_code = String.compare a.code.Diag_code.code b.code.Diag_code.code in
    if by_code <> 0 then by_code
    else
      let by_loc = String.compare (location_path a.location) (location_path b.location) in
      if by_loc <> 0 then by_loc else String.compare a.message b.message

let pp ppf d =
  Format.fprintf ppf "%s %a %s: %s" d.code.Diag_code.code Diag_code.pp_severity
    d.severity (location_path d.location) d.message;
  match d.fix with
  | None -> ()
  | Some fix -> Format.fprintf ppf " (fix: %s)" fix
