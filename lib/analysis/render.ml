(* Rendering of lint reports: human text, machine JSON (noc-lint/1) and
   SARIF 2.1.0.  The JSON forms are built on the shared Noc_json values
   so they print canonically (stable field order, lossless floats). *)

open Noc_model
module Json = Noc_json.Json

let tool_name = "noc_tool lint"

(* Text ------------------------------------------------------------ *)

let text ppf reports =
  List.iter
    (fun (r : Engine.report) ->
      match r.Engine.diagnostics with
      | [] -> Format.fprintf ppf "%s: clean@." r.Engine.label
      | ds ->
          Format.fprintf ppf "%s: %d finding%s@." r.Engine.label (List.length ds)
            (if List.length ds = 1 then "" else "s");
          List.iter (fun d -> Format.fprintf ppf "  %a@." Diagnostic.pp d) ds)
    reports;
  let errors, warnings, infos = Engine.totals reports in
  Format.fprintf ppf "%d target%s: %d error%s, %d warning%s, %d info@."
    (List.length reports)
    (if List.length reports = 1 then "" else "s")
    errors
    (if errors = 1 then "" else "s")
    warnings
    (if warnings = 1 then "" else "s")
    infos

(* JSON (noc-lint/1) ------------------------------------------------ *)

let diagnostic_to_json (d : Diagnostic.t) =
  Json.Obj
    ([
       ("code", Json.Str d.Diagnostic.code.Diag_code.code);
       ( "severity",
         Json.Str (Diag_code.severity_to_string d.Diagnostic.severity) );
       ("location", Json.Str (Diagnostic.location_path d.Diagnostic.location));
       ("message", Json.Str d.Diagnostic.message);
     ]
    @
    match d.Diagnostic.fix with
    | None -> []
    | Some fix -> [ ("fix", Json.Str fix) ])

let report_to_json (r : Engine.report) =
  Json.Obj
    [
      ("target", Json.Str r.Engine.label);
      ("passes", Json.Arr (List.map (fun n -> Json.Str n) r.Engine.passes_run));
      ( "diagnostics",
        Json.Arr (List.map diagnostic_to_json r.Engine.diagnostics) );
    ]

let json ~version reports =
  let errors, warnings, infos = Engine.totals reports in
  Json.Obj
    [
      ("schema", Json.Str "noc-lint/1");
      ( "tool",
        Json.Obj
          [ ("name", Json.Str tool_name); ("version", Json.Str version) ] );
      ("reports", Json.Arr (List.map report_to_json reports));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Num (float_of_int errors));
            ("warnings", Json.Num (float_of_int warnings));
            ("infos", Json.Num (float_of_int infos));
          ] );
    ]

(* SARIF 2.1.0 ------------------------------------------------------ *)

let sarif_level = function
  | Diag_code.Error -> "error"
  | Diag_code.Warning -> "warning"
  | Diag_code.Info -> "note"

let rule_to_json (c : Diag_code.t) =
  Json.Obj
    [
      ("id", Json.Str c.Diag_code.code);
      ( "shortDescription",
        Json.Obj [ ("text", Json.Str c.Diag_code.summary) ] );
      ( "defaultConfiguration",
        Json.Obj [ ("level", Json.Str (sarif_level c.Diag_code.severity)) ] );
    ]

let result_to_json ~label (d : Diagnostic.t) =
  let location =
    match d.Diagnostic.location with
    | Diagnostic.Job { path; index } ->
        Json.Obj
          ([
             ( "physicalLocation",
               Json.Obj
                 [
                   ( "artifactLocation",
                     Json.Obj [ ("uri", Json.Str path) ] );
                 ] );
           ]
          @
          match index with
          | None -> []
          | Some i ->
              [
                ( "logicalLocations",
                  Json.Arr
                    [
                      Json.Obj
                        [
                          ( "fullyQualifiedName",
                            Json.Str (Printf.sprintf "job/%d" i) );
                        ];
                    ] );
              ])
    | Diagnostic.File { path; line } ->
        Json.Obj
          [
            ( "physicalLocation",
              Json.Obj
                ([
                   ( "artifactLocation",
                     Json.Obj [ ("uri", Json.Str path) ] );
                 ]
                @
                match line with
                | None -> []
                | Some l ->
                    [
                      ( "region",
                        Json.Obj [ ("startLine", Json.Num (float_of_int l)) ]
                      );
                    ]) );
          ]
    | loc ->
        Json.Obj
          [
            ( "logicalLocations",
              Json.Arr
                [
                  Json.Obj
                    [
                      ( "fullyQualifiedName",
                        Json.Str
                          (label ^ "/" ^ Diagnostic.location_path loc) );
                    ];
                ] );
          ]
  in
  Json.Obj
    [
      ("ruleId", Json.Str d.Diagnostic.code.Diag_code.code);
      ("level", Json.Str (sarif_level d.Diagnostic.severity));
      ("message", Json.Obj [ ("text", Json.Str d.Diagnostic.message) ]);
      ("locations", Json.Arr [ location ]);
    ]

let sarif ~version reports =
  let results =
    List.concat_map
      (fun (r : Engine.report) ->
        List.map (result_to_json ~label:r.Engine.label) r.Engine.diagnostics)
      reports
  in
  Json.Obj
    [
      ( "$schema",
        Json.Str
          "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json"
      );
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.Arr
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str tool_name);
                            ("version", Json.Str version);
                            ( "informationUri",
                              Json.Str
                                "https://github.com/noc-deadlock-removal" );
                            ( "rules",
                              Json.Arr (List.map rule_to_json Diag_code.all) );
                          ] );
                    ] );
                ("results", Json.Arr results);
              ];
          ] );
    ]
