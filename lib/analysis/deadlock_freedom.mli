(** Independent deadlock-freedom prover.

    This module re-decides deadlock freedom of a design's routing
    relation from first principles, sharing {e no} algorithmic code
    with [Noc_deadlock.Verify] or [Noc_model.Cdg]: it builds its own
    waits-for relation directly from the routes, interns channels into
    its own dense arena, and decides the condition with an
    escape-elimination fixpoint instead of a DFS topological sort.
    Agreement between the two implementations is the cross-check the
    [deadlock-freedom] lint pass (NOC-DLF codes) and [noc_tool prove]
    enforce.

    {2 The condition}

    Mendlovic & Matias (arXiv 2503.04583) characterize the existence
    of deadlock-free routing on an arbitrary directed network through
    the escape structure of its resource-waiting relation; Verbeek &
    Schmaltz (arXiv 1110.4677) formalize the matching
    necessary-and-sufficient deadlock criterion for wormhole networks.
    Specialized to static single-path routing, the criterion is:

    A packet occupying channel [a] at a non-final position of its
    route waits for exactly one channel [b] (the route's next hop).
    Call a channel {e escaping} when every wait out of it leads to a
    channel already known to escape (channels with no outgoing wait
    escape vacuously — a flit on them can always drain).  The routing
    relation is deadlock-free {b iff} every channel escapes.  The
    elimination order is a constructive witness (an {e escape
    ordering}: along every route, each channel's successor escapes
    strictly earlier).  When the fixpoint is non-empty, the residue is
    a {e knot}: a non-empty channel set in which every member waits
    only on other members — exactly a configuration from which no flit
    can ever advance, i.e. a reachable deadlock for some filling of
    the buffers.

    Necessity and sufficiency are elementary for single-path wormhole
    routing (the knot is the deadlocked configuration; conversely an
    escape ordering is a Dally–Towles numbering read backwards), which
    is what makes the implementation safe to trust as an {e
    independent} oracle: the theorem is re-derivable in a paragraph,
    and the witness is replayable in linear time
    ({!check_escape_order}). *)

open Noc_model

type verdict = {
  deadlock_free : bool;
  n_channels : int;  (** Channels of the topology (the arena size). *)
  n_waits : int;  (** Distinct waits-for pairs induced by the routes. *)
  escape_order : Channel.t list option;
      (** Elimination order (waited-on channels first); [Some] iff
          deadlock-free.  Reversed, it is a valid resource numbering. *)
  knot : Channel.t list option;
      (** The non-escaping residue in channel order; [Some] iff the
          relation can deadlock. *)
  knot_cycle : Channel.t list option;
      (** A waits-for cycle inside the knot, as a compact
          counterexample; [Some] iff the relation can deadlock. *)
}

val analyze : Network.t -> verdict
(** Decides the condition for the network's current routes.  Channels
    are the topology's (link, vc) pairs; waits are the routes'
    consecutive channel pairs, deduplicated. *)

val check_escape_order : Network.t -> Channel.t list -> bool
(** Independent linear-time replay of an {!verdict.escape_order}
    witness: [true] iff the order has no duplicates and, for every
    consecutive channel pair [(a, b)] of every route, [b] appears
    strictly before [a].  Channels missing from the order fail. *)

type bound = {
  lower_bound : int;
      (** Any preparation that (like the paper's Algorithm 1) only
          duplicates channels and re-distributes their flows must add
          at least this many duplicates: every waits-for cycle of the
          baseline survives unless one of its channels is duplicated,
          and vertex-disjoint cycles need distinct duplications. *)
  disjoint_cycles : Channel.t list list;
      (** The vertex-disjoint cycle packing witnessing the bound,
          shortest-first greedy. *)
}

val vc_lower_bound : Network.t -> bound
(** Static lower bound on the VCs a duplication-based removal must add
    to this design; [{ lower_bound = 0; disjoint_cycles = [] }] when
    the relation is already deadlock-free. *)

val pp_verdict : Format.formatter -> verdict -> unit
