open Noc_model

type report = {
  label : string;
  passes_run : string list;
  diagnostics : Diagnostic.t list;
}

let analyze ~passes ~label target =
  let applicable = List.filter (fun p -> Pass.applies p target) passes in
  let diagnostics =
    List.concat_map
      (fun (p : Pass.t) ->
        try p.Pass.run target
        with
        | Failure msg | Invalid_argument msg ->
          raise
            (Failure (Printf.sprintf "pass %s failed on %s: %s" p.Pass.name label msg)))
      applicable
  in
  {
    label;
    passes_run = List.map (fun (p : Pass.t) -> p.Pass.name) applicable;
    diagnostics = List.sort Diagnostic.compare diagnostics;
  }

let worst report =
  match report.diagnostics with [] -> None | d :: _ -> Some (Diagnostic.severity d)

let count_at_least ~floor reports =
  List.fold_left
    (fun acc r ->
      acc
      + List.length
          (List.filter
             (fun d -> Diag_code.severity_at_least ~floor (Diagnostic.severity d))
             r.diagnostics))
    0 reports

let totals reports =
  let count s =
    List.fold_left
      (fun acc r ->
        acc
        + List.length
            (List.filter (fun d -> Diagnostic.severity d = s) r.diagnostics))
      0 reports
  in
  (count Diag_code.Error, count Diag_code.Warning, count Diag_code.Info)
