(** Lint output renderers: human text, machine JSON ([noc-lint/1]) and
    SARIF 2.1.0 (single run, rules = the whole {!Noc_model.Diag_code}
    table, one result per diagnostic). *)

val tool_name : string
(** ["noc_tool lint"], the SARIF driver name. *)

val text : Format.formatter -> Engine.report list -> unit
(** Per-target findings plus a one-line totals summary. *)

val json : version:string -> Engine.report list -> Noc_json.Json.t
(** The [noc-lint/1] document: tool, per-target reports, totals. *)

val sarif : version:string -> Engine.report list -> Noc_json.Json.t
(** A SARIF 2.1.0 log.  Network-element findings become logical
    locations ([<target>/<element-path>]); job-file findings carry the
    file as a physical artifact location. *)
