(** The built-in design-level passes.  See docs/ANALYSIS.md for the
    full catalog of codes each pass can emit. *)

open Noc_model

val routes : Pass.t
(** [NOC-ROUTE-001..004]: every flow's route exists and follows the
    topology (via {!Noc_model.Validate}). *)

val connectivity : Pass.t
(** [NOC-TOPO-001..002]: the topology is weakly connected; no switch is
    isolated. *)

val dead_channels : Pass.t
(** [NOC-CHAN-001]: links no route crosses (wasted hardware). *)

val dead_vcs : Pass.t
(** [NOC-VC-001]: allocated VCs of live links that no route uses. *)

val cdg_cycle : Pass.t
(** [NOC-CYCLE-001]: a smallest CDG cycle witness (via
    {!Noc_deadlock.Verify.certify}). *)

val certificate : Pass.t
(** [NOC-CERT-001]: an acyclic certificate's numbering must pass
    {!Noc_deadlock.Verify.check_numbering}. *)

val recheck_numbering :
  Network.t -> (Channel.t * int) list -> Diagnostic.t list
(** The certificate pass's core, exposed so a corrupted numbering can
    be exercised directly (the pass itself rechecks the numbering it
    just computed, which only fails on an internal inconsistency). *)

val deadlock_freedom : Pass.t
(** [NOC-DLF-001..005]: the independent escape-elimination prover
    ({!Deadlock_freedom}) agrees with {!Noc_deadlock.Verify.certify};
    on (agreed) cyclic designs it reports the knot witness and the
    static VC lower bound. *)

val cross_check_findings :
  certified_acyclic:bool -> Deadlock_freedom.verdict -> Diagnostic.t list
(** The pass's cross-examination core, exposed so the disagreement
    codes (NOC-DLF-001/002) can be exercised with a fabricated verdict —
    in the pass itself they only fire when one of the two provers is
    actually buggy. *)

val escape_order_findings :
  Network.t -> Channel.t list -> Diagnostic.t list
(** The pass's witness-replay core, exposed so a corrupted escape
    ordering can be exercised directly (NOC-DLF-005). *)

val escape : Pass.t
(** [NOC-ESC-001..002]: Duato-baseline escape coverage of the VC0
    channels for the static routing function. *)

val default_capacity_mbps : float
(** [4000.], matching [noc_tool analyze]'s default. *)

val bandwidth : capacity_mbps:float -> Pass.t
(** [NOC-BW-001..002]: per-link oversubscription (and near-saturation)
    at the given capacity, via {!Noc_model.Bandwidth}. *)
