(** The [noc-trace/1] trace-file pass ([NOC-TRC-001..003]).

    Validates an exported span-trace stream from its raw text: the
    schema header and line shape ([NOC-TRC-001], error), LIFO balance
    of [span_begin]/[span_end] per domain ([NOC-TRC-002], error), and
    per-domain timestamp monotonicity ([NOC-TRC-003], warning).  The
    exporter guarantees all three by construction, so any finding
    means truncation, hand-editing, or a broken writer. *)

val check : path:string -> string -> Diagnostic.t list
(** The pass's core, on raw file text; [path] only labels locations. *)

val pass : Pass.t
(** The pass, scoped to {!Pass.Trace_file} targets. *)
