(** Cycle-driven wormhole network simulator.

    Model: each channel (link x VC) owns one flit FIFO of
    [buffer_depth] at its downstream switch.  A packet acquires a
    channel when its head flit enters it and releases it only when its
    tail flit leaves — the wormhole property that makes cyclic channel
    dependencies deadly.  One flit crosses each channel per cycle; one
    flit per flow is injected per cycle; arbitration is deterministic
    (channel id, then flow id), so runs are exactly reproducible.

    The simulator never tries to work around a deadlock: if packets
    stop moving while flits remain in flight, it reports the deadlock
    together with a waits-for cycle certificate.  That is the
    behavioural ground truth the paper's static analysis predicts. *)

open Noc_model

type config = {
  buffer_depth : int;  (** Flits per channel FIFO (default 4). *)
  max_cycles : int;  (** Hard wall clock (default 200_000). *)
  stall_threshold : int;
      (** Consecutive motionless cycles that count as a deadlock
          (default 64; any value > network diameter is safe because a
          live network moves at least one flit per cycle). *)
  rotate_priority : bool;
      (** When [true], the channel service order rotates by one
          position per cycle (round-robin fairness); when [false]
          (default) lower channel ids always win contention.  Both are
          deterministic. *)
  router_latency : int;
      (** Pipeline depth of a hop: a flit that entered a buffer at
          cycle [t] becomes eligible to leave at [t + router_latency].
          Default [1] (single-cycle routers); real designs are 2–4. *)
}

val default_config : config

type deadlock_info = {
  cycle : int;  (** Cycle at which the stall was declared. *)
  in_network_flits : int;
  blocked_packets : int list;  (** Every packet waiting on a channel. *)
  waits_for_cycle : int list option;
      (** A cyclic chain of packet ids, when one exists: the formal
          deadlock certificate. *)
}

type outcome =
  | Completed of Stats.t
  | Deadlocked of deadlock_info
  | Timed_out of Stats.t  (** [max_cycles] elapsed without stall. *)

val run :
  ?config:config -> ?on_event:(Trace.event -> unit) -> Network.t ->
  Packet.t list -> outcome
(** Simulates the packet workload on the network's current topology
    and VC structure.  Packet routes must use existing channels.
    [on_event] (default: none) receives every observable action, in
    order — see {!Trace}.

    When a {!Noc_obs.Trace} collector is installed, the run records a
    ["sim.run"] span (packet/flit counts, outcome, cycles) containing
    one ["sim.cycles"] span per 1024-cycle batch, and bumps the
    [sim.flits_injected] / [sim.flits_delivered] / [sim.deadlocks]
    metrics.
    @raise Invalid_argument when a packet references an unknown
    channel. *)

val pp_outcome : Format.formatter -> outcome -> unit
