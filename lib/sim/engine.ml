open Noc_model

type config = {
  buffer_depth : int;
  max_cycles : int;
  stall_threshold : int;
  rotate_priority : bool;
  router_latency : int;
}

let default_config =
  {
    buffer_depth = 4;
    max_cycles = 200_000;
    stall_threshold = 64;
    rotate_priority = false;
    router_latency = 1;
  }

type deadlock_info = {
  cycle : int;
  in_network_flits : int;
  blocked_packets : int list;
  waits_for_cycle : int list option;
}

type outcome =
  | Completed of Stats.t
  | Deadlocked of deadlock_info
  | Timed_out of Stats.t

(* A flit sitting in a channel FIFO; [arrived] forbids moving twice in
   one cycle (one hop per cycle). *)
type buffered = { flit : Packet.flit; mutable arrived : int }

(* Observability: one span around the whole run, one span per batch of
   [span_cycle_batch] cycles (per-cycle spans would swamp the trace),
   and process totals for injected/delivered flits.  Counters are lazy
   so merely linking the simulator never adds sim rows to unrelated
   metric snapshots. *)
let span_cycle_batch = 1024
let flits_injected_total = lazy (Noc_obs.Metrics.counter "noc_sim_flits_injected_total")
let flits_delivered_total = lazy (Noc_obs.Metrics.counter "noc_sim_flits_delivered_total")
let deadlocks_total = lazy (Noc_obs.Metrics.counter "noc_sim_deadlocks_total")

type chan_state = {
  channel : Channel.t;
  capacity : int;
  queue : buffered Queue.t;
  mutable owner : int option;  (* packet id holding the channel *)
  mutable accepted : bool;  (* a flit already entered this cycle *)
  mutable arrivals : int;  (* total flits accepted, for utilization *)
}

(* Per-flow injection port: packets leave in order; [sent] counts the
   flits of the front packet already pushed into the network. *)
type source = { mutable pending : Packet.t list; mutable sent : int }

let route_index (p : Packet.t) c =
  let n = Array.length p.Packet.route in
  let rec go i =
    if i >= n then invalid_arg "Engine: flit in a channel not on its route"
    else if Channel.equal p.Packet.route.(i) c then i
    else go (i + 1)
  in
  go 0

let run ?(config = default_config) ?(on_event = fun (_ : Trace.event) -> ()) net
    packets =
  let total_flits =
    List.fold_left (fun acc (p : Packet.t) -> acc + p.Packet.length) 0 packets
  in
  Noc_obs.Trace.with_span "sim.run"
    ~attrs:
      [
        ("packets", Noc_obs.Trace.Int (List.length packets));
        ("flits", Noc_obs.Trace.Int total_flits);
      ]
  @@ fun run_span ->
  let topo = Network.topology net in
  let states = Channel.Table.create 256 in
  List.iter
    (fun c ->
      Channel.Table.replace states c
        {
          channel = c;
          capacity = config.buffer_depth;
          queue = Queue.create ();
          owner = None;
          accepted = false;
          arrivals = 0;
        })
    (Topology.channels topo);
  let state c =
    match Channel.Table.find_opt states c with
    | Some s -> s
    | None ->
        invalid_arg
          (Format.asprintf "Engine.run: packet uses unknown channel %a" Channel.pp c)
  in
  (* Validate all packet routes up front. *)
  List.iter
    (fun (p : Packet.t) -> Array.iter (fun c -> ignore (state c)) p.Packet.route)
    packets;
  let channel_order =
    List.map state (List.sort Channel.compare (Topology.channels topo))
  in
  (* Sources keyed by flow id, packets in (inject_at, id) order. *)
  let by_flow = Hashtbl.create 64 in
  List.iter
    (fun (p : Packet.t) ->
      let k = Ids.Flow.to_int p.Packet.flow in
      Hashtbl.replace by_flow k
        (p :: Option.value ~default:[] (Hashtbl.find_opt by_flow k)))
    packets;
  let sources =
    Hashtbl.fold
      (fun k ps acc ->
        let sorted =
          List.sort
            (fun (a : Packet.t) b ->
              match compare a.Packet.inject_at b.Packet.inject_at with
              | 0 -> compare a.Packet.id b.Packet.id
              | c -> c)
            ps
        in
        (k, { pending = sorted; sent = 0 }) :: acc)
      by_flow []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let n_packets = List.length packets in
  let flits_moved = ref 0 in
  let injected_flits = ref 0 in
  let ejected_flits = ref 0 in
  let acc = Stats.Accumulator.create () in
  let record_delivery (p : Packet.t) cycle =
    Stats.Accumulator.record acc ~flow:p.Packet.flow
      ~latency:(cycle - p.Packet.inject_at)
  in
  let delivered () = Stats.Accumulator.delivered acc in
  let network_flits () =
    Channel.Table.fold (fun _ cs acc -> acc + Queue.length cs.queue) states 0
  in
  let stats cycle =
    let channel_moves =
      List.filter_map
        (fun cs -> if cs.arrivals > 0 then Some (cs.channel, cs.arrivals) else None)
        channel_order
    in
    {
      Stats.cycles = cycle;
      delivered = delivered ();
      flits_moved = !flits_moved;
      per_flow = Stats.Accumulator.flow_stats acc;
      channel_moves;
    }
  in
  let n_channels = List.length channel_order in
  (* Service order of the channels this cycle: fixed priority, or
     rotated by one position per cycle for round-robin fairness. *)
  let service_order cycle =
    if (not config.rotate_priority) || n_channels = 0 then channel_order
    else begin
      let k = cycle mod n_channels in
      let rec split i acc rest =
        if i = k then rest @ List.rev acc
        else
          match rest with
          | x :: tl -> split (i + 1) (x :: acc) tl
          | [] -> List.rev acc
      in
      split 0 [] channel_order
    end
  in
  (* One simulation cycle; returns true when anything moved. *)
  let step cycle =
    let moved = ref false in
    List.iter (fun cs -> cs.accepted <- false) channel_order;
    (* Forwarding and ejection. *)
    let forward cs =
      match Queue.peek_opt cs.queue with
      | None -> ()
      | Some b when b.arrived + config.router_latency > cycle -> ()
      | Some b ->
          let p = b.flit.Packet.packet in
          let i = route_index p cs.channel in
          if i = Array.length p.Packet.route - 1 then begin
            (* Ejection into the destination NI: always drains. *)
            ignore (Queue.pop cs.queue);
            incr flits_moved;
            incr ejected_flits;
            moved := true;
            if Packet.is_tail b.flit then begin
              cs.owner <- None;
              on_event
                (Trace.Release { cycle; packet = p.Packet.id; channel = cs.channel });
              record_delivery p cycle;
              on_event (Trace.Deliver { cycle; packet = p.Packet.id })
            end
          end
          else begin
            let cs' = state p.Packet.route.(i + 1) in
            let was_free = cs'.owner = None in
            let may_own =
              match cs'.owner with
              | Some o -> o = p.Packet.id
              | None -> Packet.is_head b.flit
            in
            if may_own && (not cs'.accepted) && Queue.length cs'.queue < cs'.capacity
            then begin
              ignore (Queue.pop cs.queue);
              cs'.owner <- Some p.Packet.id;
              if was_free then
                on_event
                  (Trace.Acquire
                     { cycle; packet = p.Packet.id; channel = cs'.channel });
              cs'.accepted <- true;
              cs'.arrivals <- cs'.arrivals + 1;
              Queue.push { flit = b.flit; arrived = cycle } cs'.queue;
              on_event
                (Trace.Hop
                   {
                     cycle;
                     packet = p.Packet.id;
                     flit = b.flit.Packet.index;
                     channel = cs'.channel;
                   });
              if Packet.is_tail b.flit then begin
                cs.owner <- None;
                on_event
                  (Trace.Release
                     { cycle; packet = p.Packet.id; channel = cs.channel })
              end;
              incr flits_moved;
              moved := true
            end
          end
    in
    List.iter forward (service_order cycle);
    (* Injection, one flit per flow per cycle. *)
    let inject src =
      match src.pending with
      | [] -> ()
      | p :: rest ->
          if p.Packet.inject_at <= cycle then begin
            let cs' = state p.Packet.route.(0) in
            let flit = { Packet.packet = p; index = src.sent } in
            let was_free = cs'.owner = None in
            let may_own =
              match cs'.owner with
              | Some o -> o = p.Packet.id
              | None -> Packet.is_head flit
            in
            if may_own && (not cs'.accepted) && Queue.length cs'.queue < cs'.capacity
            then begin
              cs'.owner <- Some p.Packet.id;
              if Packet.is_head flit then
                on_event (Trace.Inject { cycle; packet = p.Packet.id });
              if was_free then
                on_event
                  (Trace.Acquire
                     { cycle; packet = p.Packet.id; channel = cs'.channel });
              cs'.accepted <- true;
              cs'.arrivals <- cs'.arrivals + 1;
              Queue.push { flit; arrived = cycle } cs'.queue;
              on_event
                (Trace.Hop
                   {
                     cycle;
                     packet = p.Packet.id;
                     flit = flit.Packet.index;
                     channel = cs'.channel;
                   });
              src.sent <- src.sent + 1;
              incr flits_moved;
              incr injected_flits;
              moved := true;
              if src.sent = p.Packet.length then begin
                src.pending <- rest;
                src.sent <- 0
              end
            end
          end
    in
    List.iter inject sources;
    !moved
  in
  (* Waits-for edges at stall time, for the deadlock certificate. *)
  let waits_for cycle =
    let edges = ref [] in
    let blocked = ref [] in
    let consider_waiter pid next_cs =
      blocked := pid :: !blocked;
      match next_cs.owner with
      | Some q when q <> pid ->
          edges := { Deadlock_detect.waiter = pid; holder = q } :: !edges
      | Some _ | None -> ()
    in
    List.iter
      (fun cs ->
        match Queue.peek_opt cs.queue with
        | None -> ()
        | Some b ->
            let p = b.flit.Packet.packet in
            let i = route_index p cs.channel in
            if i < Array.length p.Packet.route - 1 then
              consider_waiter p.Packet.id (state p.Packet.route.(i + 1)))
      channel_order;
    List.iter
      (fun src ->
        match src.pending with
        | p :: _ when p.Packet.inject_at <= cycle ->
            consider_waiter p.Packet.id (state p.Packet.route.(0))
        | _ :: _ | [] -> ())
      sources;
    (List.rev !edges, List.sort_uniq compare !blocked)
  in
  (* Span batching: one "sim.cycles" span per [span_cycle_batch] cycles
     keeps the trace readable at any simulation length.  Spans nest
     strictly inside "sim.run" (LIFO per domain), which the balanced-
     span lint pass checks. *)
  let batch_span = ref Noc_obs.Trace.null_span in
  let rotate_batch cycle =
    Noc_obs.Trace.finish !batch_span;
    batch_span :=
      Noc_obs.Trace.start
        ~attrs:[ ("cycle", Noc_obs.Trace.Int cycle) ]
        "sim.cycles"
  in
  let conclude outcome =
    Noc_obs.Trace.finish !batch_span;
    Noc_obs.Metrics.add (Lazy.force flits_injected_total) !injected_flits;
    Noc_obs.Metrics.add (Lazy.force flits_delivered_total) !ejected_flits;
    let name, cycles =
      match outcome with
      | Completed s -> ("completed", s.Stats.cycles)
      | Timed_out s -> ("timed-out", s.Stats.cycles)
      | Deadlocked d ->
          Noc_obs.Metrics.incr (Lazy.force deadlocks_total);
          ("deadlocked", d.cycle)
    in
    Noc_obs.Trace.add_attr run_span "outcome" (Noc_obs.Trace.Str name);
    Noc_obs.Trace.add_attr run_span "cycles" (Noc_obs.Trace.Int cycles);
    Noc_obs.Trace.add_attr run_span "delivered"
      (Noc_obs.Trace.Int (delivered ()));
    outcome
  in
  let rec loop cycle stall =
    if delivered () = n_packets then conclude (Completed (stats cycle))
    else if cycle >= config.max_cycles then conclude (Timed_out (stats cycle))
    else begin
      if cycle mod span_cycle_batch = 0 then rotate_batch cycle;
      let moved = step cycle in
      let in_net = network_flits () in
      let eligible_source =
        List.exists
          (fun src ->
            match src.pending with
            | p :: _ -> p.Packet.inject_at <= cycle
            | [] -> false)
          sources
      in
      let alive = in_net > 0 || eligible_source in
      let stall = if moved || not alive then 0 else stall + 1 in
      (* Deep pipelines legitimately idle for [router_latency] cycles;
         the watchdog must not mistake that for a deadlock. *)
      let threshold = max config.stall_threshold (4 * config.router_latency) in
      if stall >= threshold then begin
        let edges, blocked = waits_for cycle in
        conclude
          (Deadlocked
             {
               cycle;
               in_network_flits = in_net;
               blocked_packets = blocked;
               waits_for_cycle = Deadlock_detect.find_cycle edges;
             })
      end
      else loop (cycle + 1) stall
    end
  in
  loop 0 0

let pp_outcome ppf = function
  | Completed s -> Format.fprintf ppf "completed: %a" Stats.pp s
  | Timed_out s -> Format.fprintf ppf "TIMED OUT: %a" Stats.pp s
  | Deadlocked d ->
      Format.fprintf ppf
        "DEADLOCK at cycle %d: %d flits stuck, %d blocked packets%a" d.cycle
        d.in_network_flits
        (List.length d.blocked_packets)
        (fun ppf -> function
          | Some cycle_ids ->
              Format.fprintf ppf ", waits-for cycle: %a"
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
                   Format.pp_print_int)
                cycle_ids
          | None -> Format.fprintf ppf ", no waits-for cycle (starvation)")
        d.waits_for_cycle
