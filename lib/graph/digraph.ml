(* Adjacency is stored twice (successors and predecessors) so that the
   cycle-breaking passes, which walk the CDG in both directions, pay the
   same cost either way.  Lists are kept sorted-by-insertion; membership
   is answered by scanning the successor list.  The graphs this module
   serves (CDGs, topology graphs) have small out-degrees, so the scan
   beats a hash set of edge keys in practice: the hash table dominated
   both construction time and allocation in the incremental-CDG hot
   path, which rebuilds the graph once per removal iteration. *)

type t = {
  mutable n : int;
  mutable succ : int list array;
  mutable pred : int list array;
  mutable m : int;
}

let create ?(initial_capacity = 16) () =
  let cap = max 1 initial_capacity in
  { n = 0; succ = Array.make cap []; pred = Array.make cap []; m = 0 }

let n_vertices g = g.n
let n_edges g = g.m

let grow g needed =
  let cap = Array.length g.succ in
  if needed > cap then begin
    let cap' =
      let rec next c = if c >= needed then c else next (2 * c) in
      next (max 1 cap)
    in
    let succ' = Array.make cap' [] and pred' = Array.make cap' [] in
    Array.blit g.succ 0 succ' 0 g.n;
    Array.blit g.pred 0 pred' 0 g.n;
    g.succ <- succ';
    g.pred <- pred'
  end

let add_vertex g =
  let v = g.n in
  grow g (v + 1);
  g.n <- v + 1;
  v

let ensure_vertex g v =
  if v < 0 then invalid_arg "Digraph.ensure_vertex: negative vertex";
  if v >= g.n then begin
    grow g (v + 1);
    g.n <- v + 1
  end

let mem_edge g u v =
  u >= 0 && u < g.n && v >= 0 && v < g.n && List.mem v g.succ.(u)

let add_edge g u v =
  ensure_vertex g u;
  ensure_vertex g v;
  if not (List.mem v g.succ.(u)) then begin
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.m <- g.m + 1
  end

(* [add_edge] minus the dedup scan and vertex growth, for bulk loads
   where the caller guarantees both vertices exist and the edge is not
   yet present (e.g. rebuilding from a deduplicated edge index).
   Violating that corrupts the edge count and duplicates adjacency
   entries. *)
let unsafe_add_edge g u v =
  g.succ.(u) <- v :: g.succ.(u);
  g.pred.(v) <- u :: g.pred.(v);
  g.m <- g.m + 1

let remove_edge g u v =
  if mem_edge g u v then begin
    g.succ.(u) <- List.filter (fun w -> w <> v) g.succ.(u);
    g.pred.(v) <- List.filter (fun w -> w <> u) g.pred.(v);
    g.m <- g.m - 1
  end

let check_vertex g v name =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Digraph.%s: vertex %d out of range" name v)

let succ g v =
  check_vertex g v "succ";
  g.succ.(v)

let pred g v =
  check_vertex g v "pred";
  g.pred.(v)

let out_degree g v = List.length (succ g v)
let in_degree g v = List.length (pred g v)
let iter_succ f g v = List.iter f (succ g v)
let iter_pred f g v = List.iter f (pred g v)

let iter_vertices f g =
  for v = 0 to g.n - 1 do
    f v
  done

let fold_vertices f init g =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (List.rev g.succ.(u))
  done

let fold_edges f init g =
  let acc = ref init in
  iter_edges (fun u v -> acc := f !acc u v) g;
  !acc

let edges g = List.rev (fold_edges (fun acc u v -> (u, v) :: acc) [] g)

let of_edges ?(n = 0) es =
  let g = create ~initial_capacity:(max n 16) () in
  if n > 0 then ensure_vertex g (n - 1);
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g =
  let g' = create ~initial_capacity:(Array.length g.succ) () in
  g'.n <- g.n;
  Array.blit g.succ 0 g'.succ 0 g.n;
  Array.blit g.pred 0 g'.pred 0 g.n;
  g'.m <- g.m;
  g'

let equal a b =
  a.n = b.n && a.m = b.m
  && (let same = ref true in
      (try
         for v = 0 to a.n - 1 do
           if a.succ.(v) <> b.succ.(v) || a.pred.(v) <> b.pred.(v) then begin
             same := false;
             raise Exit
           end
         done
       with Exit -> ());
      !same)

let transpose g =
  let g' = create ~initial_capacity:(max 1 g.n) () in
  if g.n > 0 then ensure_vertex g' (g.n - 1);
  iter_edges (fun u v -> add_edge g' v u) g;
  g'

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d vertices, %d edges" g.n g.m;
  iter_edges (fun u v -> Format.fprintf ppf "@,%d -> %d" u v) g;
  Format.fprintf ppf "@]"
