let bfs_distances g src =
  let n = Digraph.n_vertices g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let relax v =
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v q
      end
    in
    Digraph.iter_succ relax g u
  done;
  dist

let bfs_order g src =
  let n = Digraph.n_vertices g in
  let seen = Array.make n false in
  let q = Queue.create () in
  let order = ref [] in
  seen.(src) <- true;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    let visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        Queue.add v q
      end
    in
    Digraph.iter_succ visit g u
  done;
  List.rev !order

let shortest_path ?(max_edges = max_int) ?allowed g src dst =
  let permitted =
    match allowed with None -> fun _ -> true | Some f -> f
  in
  if src = dst then if max_edges >= 0 then Some [ src ] else None
  else if max_edges < 1 || not (permitted src) then None
  else begin
    let n = Digraph.n_vertices g in
    let parent = Array.make n (-1) in
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      (* Every vertex at distance [max_edges - 1] may still discover
         [dst]; anything deeper cannot yield a path within the budget,
         so its successors are not explored at all. *)
      let du = dist.(u) in
      if du < max_edges then
        let visit v =
          if dist.(v) < 0 && permitted v then begin
            dist.(v) <- du + 1;
            parent.(v) <- u;
            if v = dst then found := true else Queue.add v q
          end
        in
        Digraph.iter_succ visit g u
    done;
    if not !found then None
    else begin
      let rec build v acc = if v = src then v :: acc else build parent.(v) (v :: acc) in
      Some (build dst [])
    end
  end

(* Iterative DFS with an explicit stack of (vertex, remaining successors)
   frames, so deep graphs (long dependency chains) cannot blow the OCaml
   stack. *)
let dfs_postorder g =
  let n = Digraph.n_vertices g in
  let seen = Array.make n false in
  let post = ref [] in
  let visit_root r =
    if not seen.(r) then begin
      seen.(r) <- true;
      let stack = ref [ (r, Digraph.succ g r) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, next) :: rest -> (
            match next with
            | [] ->
                post := u :: !post;
                stack := rest
            | v :: vs ->
                stack := (u, vs) :: rest;
                if not seen.(v) then begin
                  seen.(v) <- true;
                  stack := (v, Digraph.succ g v) :: !stack
                end)
      done
    end
  in
  Digraph.iter_vertices visit_root g;
  !post

let reachable g src =
  let n = Digraph.n_vertices g in
  let seen = Array.make n false in
  List.iter (fun v -> seen.(v) <- true) (bfs_order g src);
  seen

let is_reachable g u v = u = v || (reachable g u).(v)
