(** Mutable directed graphs over dense integer vertices.

    Vertices are integers [0 .. n_vertices g - 1].  New vertices are
    allocated densely by {!add_vertex}; edges are unlabelled and simple
    (at most one edge per ordered pair).  The structure keeps both
    successor and predecessor adjacency, so forward and backward
    traversals are equally cheap.

    This module is the workhorse under the channel-dependency graph and
    the topology graph of the deadlock-removal flow: both need cheap
    edge insertion/removal and repeated cycle searches. *)

type t
(** A mutable directed graph. *)

val create : ?initial_capacity:int -> unit -> t
(** [create ()] is an empty graph. [initial_capacity] pre-sizes the
    internal tables (default [16]); it never limits growth. *)

val copy : t -> t
(** [copy g] is an independent deep copy of [g]. *)

val add_vertex : t -> int
(** [add_vertex g] allocates and returns the next fresh vertex id. *)

val ensure_vertex : t -> int -> unit
(** [ensure_vertex g v] allocates vertices until [v] is a valid id.
    @raise Invalid_argument if [v < 0]. *)

val n_vertices : t -> int
(** Number of allocated vertices. *)

val n_edges : t -> int
(** Number of edges currently present. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] is [true] iff the edge [u -> v] is present. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the edge [u -> v], allocating the
    endpoints with {!ensure_vertex} if needed.  Inserting an existing
    edge is a no-op (graphs are simple). *)

val unsafe_add_edge : t -> int -> int -> unit
(** [add_edge] without the duplicate check or vertex allocation, for
    bulk loads: the caller must guarantee that both endpoints are
    already valid vertices and that the edge is absent, or the graph
    is corrupted (wrong edge count, duplicated adjacency entries).
    Prepends to both adjacency lists exactly like {!add_edge}. *)

val remove_edge : t -> int -> int -> unit
(** [remove_edge g u v] deletes the edge [u -> v] if present. *)

val succ : t -> int -> int list
(** Successors of a vertex, in unspecified but deterministic order. *)

val pred : t -> int -> int list
(** Predecessors of a vertex. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_succ : (int -> unit) -> t -> int -> unit
val iter_pred : (int -> unit) -> t -> int -> unit

val iter_vertices : (int -> unit) -> t -> unit
val fold_vertices : ('a -> int -> 'a) -> 'a -> t -> 'a

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : ('a -> int -> int -> 'a) -> 'a -> t -> 'a

val edges : t -> (int * int) list
(** All edges as [(src, dst)] pairs, ordered by source then insertion. *)

val of_edges : ?n:int -> (int * int) list -> t
(** [of_edges es] builds a graph containing every edge of [es];
    [n] forces at least [n] vertices to exist. *)

val transpose : t -> t
(** [transpose g] is a fresh graph with every edge reversed. *)

val equal : t -> t -> bool
(** Structural equality: same vertex count, same edges, {e and} the
    same adjacency-list order.  The order sensitivity is deliberate:
    the deadlock-removal pipeline breaks ties by adjacency order, so
    two graphs are interchangeable for it only when this holds. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: one [u -> v] line per edge. *)
