(** Cycle detection and search.

    A cycle is represented as the list of its vertices in traversal
    order, [[c1; c2; ...; ck]], meaning the edges
    [c1->c2, ..., c(k-1)->ck, ck->c1] are all present.  A self-loop is
    the singleton [[v]]. *)

val has_cycle : Digraph.t -> bool
(** [true] iff the graph contains a directed cycle (including
    self-loops). *)

val find_any : Digraph.t -> int list option
(** Some cycle if one exists; not necessarily the smallest.  Found by
    DFS back-edge detection, so it costs one traversal. *)

val shortest_through : ?bound:int -> Digraph.t -> int -> int list option
(** [shortest_through g v] is a minimum-length cycle containing [v]
    (BFS from each successor of [v] back to [v]), or [None].

    [bound] is an exclusive cap: only cycles {e strictly} shorter than
    [bound] are returned, and the underlying BFSs stop exploring at
    the matching depth.  When the true minimum is below the cap, the
    result is identical to the unbounded call. *)

val shortest : ?prefer:int list -> Digraph.t -> int list option
(** A globally minimum-length cycle, or [None] when the graph is
    acyclic.  This is the paper's [GetSmallestCycle]: every vertex of
    a non-trivial SCC is a candidate root and the shortest returning
    path wins; ties break towards the smallest root id, making the
    result deterministic.

    [prefer] hints at vertices likely to lie on a short cycle (for the
    removal loop: the channels touched by the previous break).  They
    are probed first so the global length bound tightens early and the
    remaining per-candidate searches can be cut off.  Hints are purely
    an acceleration: the returned cycle is the same with or without
    them, and unknown vertex ids are ignored. *)

val shortest_reference : Digraph.t -> int list option
(** The straightforward implementation of {!shortest} (a full BFS from
    every successor of every candidate vertex, no bounds, no SCC
    confinement), kept as an executable specification: [shortest]
    returns exactly the same cycle.  It is the differential-testing
    oracle and the benchmark's "before" arm; prefer {!shortest}
    everywhere else. *)

val enumerate : ?max_cycles:int -> Digraph.t -> int list list
(** All elementary cycles, by Johnson's algorithm, each rotated so its
    smallest vertex comes first; enumeration stops after [max_cycles]
    (default [10_000]) as a safety valve on pathological graphs. *)

val girth : Digraph.t -> int option
(** Length of a shortest cycle, if any. *)
