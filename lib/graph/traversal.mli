(** Breadth-first and depth-first traversals over {!Digraph.t}. *)

val bfs_distances : Digraph.t -> int -> int array
(** [bfs_distances g src] is an array [d] with [d.(v)] the number of
    edges on a shortest path from [src] to [v], or [-1] when [v] is
    unreachable. *)

val bfs_order : Digraph.t -> int -> int list
(** Vertices reachable from [src] in BFS discovery order (includes
    [src] itself, first). *)

val shortest_path :
  ?max_edges:int -> ?allowed:(int -> bool) -> Digraph.t -> int -> int -> int list option
(** [shortest_path g src dst] is a minimum-edge-count path
    [[src; ...; dst]], or [None] if [dst] is unreachable.  When
    [src = dst] the path is [[src]] (zero edges).

    [max_edges] cuts the BFS off: only paths of at most that many
    edges are found (the frontier beyond the budget is never
    explored).  [allowed] restricts the search to a vertex subset;
    [src] and [dst] must themselves be allowed or the result is
    [None].  Both default to the unrestricted search, and when the
    unrestricted shortest path satisfies the restrictions the very
    same path is returned — the BFS discovery order is unchanged. *)

val dfs_postorder : Digraph.t -> int list
(** Postorder of a DFS forest covering every vertex (roots scanned in
    increasing id order).  The head of the list finished first. *)

val reachable : Digraph.t -> int -> bool array
(** [reachable g src] marks every vertex reachable from [src]
    (including [src]). *)

val is_reachable : Digraph.t -> int -> int -> bool
(** [is_reachable g u v] is [true] iff a directed path [u ->* v]
    exists (trivially true for [u = v]). *)
