let has_cycle g =
  let non_trivial = Scc.non_trivial g in
  non_trivial <> []

(* DFS with colors; on meeting a grey vertex we unwind the explicit
   path stack to extract the cycle. *)
let find_any g =
  let n = Digraph.n_vertices g in
  let color = Array.make n 0 in
  (* 0 white, 1 grey, 2 black *)
  let cycle = ref None in
  let rec walk path u =
    color.(u) <- 1;
    let path = u :: path in
    let check v =
      if !cycle = None then
        if color.(v) = 1 then begin
          (* [path] is [u; ...; v; ...]; the cycle is v ... u. *)
          let rec take acc = function
            | [] -> acc
            | w :: ws -> if w = v then w :: acc else take (w :: acc) ws
          in
          cycle := Some (take [] path)
        end
        else if color.(v) = 0 then walk path v
    in
    Digraph.iter_succ check g u;
    color.(u) <- 2
  in
  let try_root v = if color.(v) = 0 && !cycle = None then walk [] v in
  Digraph.iter_vertices try_root g;
  !cycle

(* Shortest cycle through v = 1 + shortest path from some successor of
   v back to v.  A single BFS from v over the whole graph would not
   find the path *ending* at v, so we search from each successor and
   read the parent chain when v is re-entered.

   [bound] is an exclusive upper limit on the cycle length: only
   strictly shorter cycles are returned, and each per-successor BFS is
   cut off at the matching edge budget (a path of [e] edges closes a
   cycle of length [e + 1]).  [allowed] restricts the BFS to a vertex
   subset; the caller must guarantee that every shortest returning
   path lies inside it (true for v's own SCC), so restricting never
   changes the answer — it only skips provably dead frontier. *)
let shortest_through_in ?(bound = max_int) ?allowed g v =
  if bound <= 1 then None
  else if Digraph.mem_edge g v v then Some [ v ]
  else begin
    let best = ref None in
    let best_len = ref bound in
    let consider s =
      if !best_len > 2 then
        match Traversal.shortest_path ~max_edges:(!best_len - 2) ?allowed g s v with
        | None -> ()
        | Some path ->
            let len = List.length path in
            if len < !best_len then begin
              best := Some path;
              best_len := len
            end
    in
    List.iter consider (List.sort compare (Digraph.succ g v));
    match !best with
    | None -> None
    | Some path -> Some (v :: List.filter (fun w -> w <> v) path)
  end

let shortest_through ?bound g v = shortest_through_in ?bound g v

let cycle_length = List.length

let shortest ?(prefer = []) g =
  (* Restrict the search to vertices inside non-trivial SCCs: every
     cycle lives entirely within one SCC, so other vertices cannot
     start one.  The scan visits candidates in ascending vertex order
     with strict improvement, so the result is the cycle of globally
     minimal length rooted at the smallest such vertex — exactly the
     answer the naive all-vertices fold produced, but with three
     lossless prunings:
     - a self-loop prescan (a self-loop is always the unique winner);
     - per-vertex searches bounded by the best length found so far;
     - each BFS confined to the candidate's own SCC.
     [prefer] vertices (typically those touched by the last CDG edit)
     are probed first purely to seed the bound: probing cannot change
     which cycle wins because the main scan still runs with an
     off-by-one slack ([b + 1]) that keeps every equally-short cycle
     at a smaller vertex reachable. *)
  let n = Digraph.n_vertices g in
  let selfloop = ref None in
  (try
     for v = 0 to n - 1 do
       if Digraph.mem_edge g v v then begin
         selfloop := Some v;
         raise Exit
       end
     done
   with Exit -> ());
  match !selfloop with
  | Some v -> Some [ v ]
  | None ->
      let scc = Scc.compute g in
      let comp = scc.Scc.component in
      let size = Array.make scc.Scc.count 0 in
      for v = 0 to n - 1 do
        size.(comp.(v)) <- size.(comp.(v)) + 1
      done;
      let candidate v = size.(comp.(v)) >= 2 in
      (* Flat (CSR) snapshot of the predecessor adjacency: the probe
         BFS below is the scan's inner loop, and walking list cells
         through a closure there costs more than one up-front copy.
         Row [v] preserves [Digraph.pred g v] order exactly. *)
      let m = Digraph.n_edges g in
      let poff = Array.make (n + 1) 0 in
      let padj = Array.make (max 1 m) 0 in
      let fill = ref 0 in
      for v = 0 to n - 1 do
        poff.(v) <- !fill;
        List.iter
          (fun u ->
            padj.(!fill) <- u;
            incr fill)
          (Digraph.pred g v)
      done;
      poff.(n) <- !fill;
      (* Scratch state shared by every bounded BFS of the scan —
         [stamp]/[gen] make clearing O(1) — so the inner loop never
         allocates.  Discovery order is identical to a fresh BFS, so
         the parent chains (hence the returned cycles) are too. *)
      let dist = Array.make n 0 in
      let parent = Array.make n (-1) in
      let stamp = Array.make n 0 in
      let tstamp = Array.make n 0 in
      let gen = ref 0 in
      (* Each vertex is enqueued at most once per BFS, so a flat array
         of size [n] is queue enough; [stamp]/[gen] make per-BFS
         clearing O(1). *)
      let queue = Array.make (max 1 n) 0 in
      let bfs s v c max_edges =
        incr gen;
        let gn = !gen in
        stamp.(s) <- gn;
        dist.(s) <- 0;
        parent.(s) <- -1;
        queue.(0) <- s;
        let head = ref 0 and tail = ref 1 in
        let found = ref false in
        while (not !found) && !head < !tail do
          let u = queue.(!head) in
          incr head;
          let du = dist.(u) in
          if du < max_edges then begin
            let rec visit = function
              | [] -> ()
              | w :: ws ->
                  if stamp.(w) <> gn && comp.(w) = c then begin
                    stamp.(w) <- gn;
                    dist.(w) <- du + 1;
                    parent.(w) <- u;
                    if w = v then found := true
                    else begin
                      queue.(!tail) <- w;
                      incr tail
                    end
                  end;
                  if not !found then visit ws
            in
            visit (Digraph.succ g u)
          end
        done;
        !found
      in
      (* Length of the shortest cycle through [v] if it is strictly
         below [bound], else 0 — a single backward BFS instead of one
         forward BFS per successor.  The shortest cycle through [v] is
         [1 + min over in-SCC successors s of dist(s -> v)], and a
         backward BFS from [v] over predecessor edges discovers
         vertices in nondecreasing dist-to-[v] order, so the first
         successor it reaches realizes that minimum.  Self-loops are
         prescanned away, so [v] itself is never a target. *)
      let probe ~bound v =
        let max_edges = bound - 2 in
        if max_edges < 1 then 0
        else begin
          let c = comp.(v) in
          incr gen;
          let gn = !gen in
          let has_target = ref false in
          List.iter
            (fun s ->
              if comp.(s) = c then begin
                tstamp.(s) <- gn;
                has_target := true
              end)
            (Digraph.succ g v);
          if not !has_target then 0
          else begin
            stamp.(v) <- gn;
            dist.(v) <- 0;
            queue.(0) <- v;
            let head = ref 0 and tail = ref 1 in
            let res = ref 0 in
            (try
               while !head < !tail do
                 let u = queue.(!head) in
                 incr head;
                 let du = dist.(u) in
                 if du < max_edges then
                   for i = poff.(u) to poff.(u + 1) - 1 do
                     let w = padj.(i) in
                     if stamp.(w) <> gn && comp.(w) = c then begin
                       stamp.(w) <- gn;
                       dist.(w) <- du + 1;
                       if tstamp.(w) = gn then begin
                         (* v -> w -> ... -> v: dist(w) edges back to
                            v plus the closing edge = dist(w) + 1
                            vertices. *)
                         res := du + 2;
                         raise Exit
                       end;
                       queue.(!tail) <- w;
                       incr tail
                     end
                   done
               done
             with Exit -> ());
            !res
          end
        end
      in
      let through ~bound v =
        let c = comp.(v) in
        let best = ref None in
        let best_len = ref bound in
        List.iter
          (fun s ->
            (* A successor outside v's SCC has no path back to v; and
               once the bound hits 2 nothing can improve (self-loops
               were prescanned away). *)
            if !best_len > 2 && comp.(s) = c && bfs s v c (!best_len - 2)
            then begin
              let rec build w acc =
                if w = s then w :: acc else build parent.(w) (w :: acc)
              in
              let path = build v [] in
              (* Found within [best_len - 2] edges, so this cycle is
                 strictly shorter than [best_len] by construction. *)
              best := Some path;
              best_len := List.length path
            end)
          (List.sort compare (Digraph.succ g v));
        match !best with
        | None -> None
        | Some path -> Some (v :: List.filter (fun w -> w <> v) path)
      in
      (* The hint pass only needs a length to seed the bound, so the
         cheap probe suffices — no cycle reconstruction. *)
      let hint_bound = ref max_int in
      List.iter
        (fun h ->
          if h >= 0 && h < n && candidate h && !hint_bound > 2 then begin
            let l = probe ~bound:!hint_bound h in
            if l > 0 then hint_bound := l
          end)
        (List.sort_uniq compare prefer);
      let best = ref None in
      let limit =
        ref (if !hint_bound = max_int then max_int else !hint_bound + 1)
      in
      (try
         for v = 0 to n - 1 do
           if candidate v then begin
             let l = probe ~bound:!limit v in
             if l > 0 then begin
               (* The probe says the minimum through [v] is exactly
                  [l]; rerun the seed's per-successor search with the
                  matching budget to obtain the exact seed cycle (the
                  first successor in sorted order achieving [l], with
                  BFS-parent tie-breaks).  Any bound > l yields the
                  same winner, so the tight [l + 1] is lossless. *)
               match through ~bound:(l + 1) v with
               | Some c ->
                   best := Some c;
                   limit := l;
                   (* Without self-loops no cycle is shorter than 2, so
                      the first 2-cycle found cannot be beaten. *)
                   if l <= 2 then raise Exit
               | None ->
                   (* Unreachable: the probe and [through] compute the
                      same SCC-confined shortest distances. *)
                   assert false
             end
           end
         done
       with Exit -> ());
      !best

(* The pre-optimization implementation, kept verbatim as an executable
   specification: no per-vertex bounds, no SCC-confined BFS, no
   self-loop prescan.  [shortest] must agree with it exactly (same
   cycle, not just same length) — the property tests check this, and
   the bench suite uses it as the "before" arm. *)
let shortest_reference g =
  let through v =
    if Digraph.mem_edge g v v then Some [ v ]
    else begin
      let best = ref None in
      let consider s =
        match Traversal.shortest_path g s v with
        | None -> ()
        | Some path ->
            let len = List.length path in
            let better =
              match !best with None -> true | Some b -> len < List.length b
            in
            if better then best := Some path
      in
      List.iter consider (List.sort compare (Digraph.succ g v));
      match !best with
      | None -> None
      | Some path -> Some (v :: List.filter (fun w -> w <> v) path)
    end
  in
  let candidates = List.sort compare (List.concat (Scc.non_trivial g)) in
  let pick best v =
    match through v with
    | None -> best
    | Some c -> (
        match best with
        | None -> Some c
        | Some b -> if cycle_length c < cycle_length b then Some c else best)
  in
  List.fold_left pick None candidates

let girth g = Option.map cycle_length (shortest g)

(* Johnson's elementary-cycle enumeration, bounded. *)
let enumerate ?(max_cycles = 10_000) g =
  let n = Digraph.n_vertices g in
  let results = ref [] in
  let count = ref 0 in
  let blocked = Array.make n false in
  let b_sets = Array.make n [] in
  let stack = ref [] in
  let exception Done in
  let rec unblock v =
    if blocked.(v) then begin
      blocked.(v) <- false;
      let deps = b_sets.(v) in
      b_sets.(v) <- [];
      List.iter unblock deps
    end
  in
  let normalize cycle =
    (* Rotate so the smallest vertex leads: canonical form for
       deduplication and stable test expectations. *)
    let arr = Array.of_list cycle in
    let k = Array.length arr in
    let min_pos = ref 0 in
    for i = 1 to k - 1 do
      if arr.(i) < arr.(!min_pos) then min_pos := i
    done;
    List.init k (fun i -> arr.((i + !min_pos) mod k))
  in
  let emit cycle =
    results := normalize cycle :: !results;
    incr count;
    if !count >= max_cycles then raise Done
  in
  let rec circuit s allowed v =
    let found = ref false in
    blocked.(v) <- true;
    stack := v :: !stack;
    let explore w =
      if w >= s && allowed w then
        if w = s then begin
          emit (List.rev !stack);
          found := true
        end
        else if not blocked.(w) then
          if circuit s allowed w then found := true
    in
    Digraph.iter_succ explore g v;
    if !found then unblock v
    else
      Digraph.iter_succ
        (fun w ->
          if w >= s && allowed w && not (List.mem v b_sets.(w)) then
            b_sets.(w) <- v :: b_sets.(w))
        g v;
    (match !stack with
    | w :: rest when w = v -> stack := rest
    | _ -> assert false);
    !found
  in
  (try
     for s = 0 to n - 1 do
       (* Only consider the SCC of s in the subgraph induced by
          vertices >= s; the [w >= s] guards in [circuit] realize the
          induced-subgraph restriction, and the SCC pre-check below
          keeps the allowed set tight. *)
       Array.fill blocked 0 n false;
       Array.fill b_sets 0 n [];
       stack := [];
       let allowed w = w >= s in
       if List.exists (fun w -> w >= s) (Digraph.succ g s) || Digraph.mem_edge g s s
       then ignore (circuit s allowed s)
     done
   with Done -> ());
  List.rev !results
