(** The [noc serve] daemon: accepts {!Wire} frames over a Unix-domain
    (and optionally loopback-TCP) socket, vets each submitted job
    through the {!Lint.vet_job} admission gate, serves warm hits from
    the persistent {!Store}, schedules misses on the domain pool with
    typed [Overloaded] backpressure from the bounded queue, and
    streams results back as they complete.

    One thread (the caller of {!run}) owns all descriptors and never
    blocks on a socket; worker domains execute jobs and write their
    own result frames under per-connection mutexes.  {!stop} — safe
    from a signal handler — triggers a graceful drain: stop accepting,
    reject new submissions, finish in-flight jobs, shut the pool down,
    flush the store index and telemetry, then return from {!run}. *)

type config = {
  socket_path : string;  (** Unix-domain socket; created, unlinked on exit. *)
  tcp_port : int option;  (** Also listen on 127.0.0.1:[port]. *)
  domains : int;  (** Worker domains (≥ 1). *)
  queue_capacity : int;
      (** Bounded-queue depth; beyond it submissions get [Overloaded]. *)
  store : Store.t option;  (** Persistent result store (warm restarts). *)
  telemetry : Telemetry.sink;
  lint : bool;  (** Vet submissions before they reach the pool. *)
}

val default_config : config
(** [noc-serve.sock], no TCP, 2 domains, queue 64, no store, null
    telemetry, lint on. *)

type t

val create : config -> t
(** Spawns the worker domains; does not open sockets yet.
    @raise Invalid_argument on a non-positive domain count or queue
    capacity. *)

val run : t -> unit
(** Open the listeners and serve until {!stop}; performs the full
    drain (including closing the telemetry sink) before returning.
    Ignores SIGPIPE process-wide. *)

val stop : t -> unit
(** Request a graceful drain.  Only sets an atomic flag and writes a
    self-pipe byte, so it is safe from a signal handler or another
    domain.  Idempotent. *)

val stopping : t -> bool

val stats_report : t -> string
(** The text [/metrics]-style report served for {!Wire.Stats}: serve
    gauges (uptime, queue depth, in-flight, draining), store counters
    and hit rate, then every instrument in the {!Noc_obs.Metrics}
    registry (histograms as cumulative buckets). *)
