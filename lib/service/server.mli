(** The [noc serve] daemon: accepts {!Wire} frames over a Unix-domain
    (and optionally loopback-TCP) socket, vets each submitted job
    through the {!Lint.vet_job} admission gate, serves warm hits from
    the persistent {!Store}, schedules misses on the domain pool with
    typed [Overloaded] backpressure from the bounded queue, and
    streams results back as they complete.

    One thread (the caller of {!run}) owns all descriptors and never
    blocks on a socket; worker domains execute jobs and write their
    own result frames under per-connection mutexes.  {!stop} — safe
    from a signal handler — triggers a graceful drain: stop accepting,
    reject new submissions, finish in-flight jobs, shut the pool down,
    flush the store index and telemetry, then return from {!run}. *)

type config = {
  socket_path : string;  (** Unix-domain socket; created, unlinked on exit. *)
  tcp_port : int option;  (** Also listen on 127.0.0.1:[port]. *)
  metrics_addr : int option;
      (** Also serve one-shot HTTP [GET /metrics] scrapes (Prometheus
          text, {!Noc_obs.Expo.text}) on 127.0.0.1:[port]. *)
  domains : int;  (** Worker domains (≥ 1). *)
  queue_capacity : int;
      (** Bounded-queue depth; beyond it submissions get [Overloaded]. *)
  store : Store.t option;  (** Persistent result store (warm restarts). *)
  telemetry : Telemetry.sink;
  lint : bool;  (** Vet submissions before they reach the pool. *)
  slos : Noc_obs.Slo.t list;
      (** Objectives evaluated on every scrape and {!Wire.Metrics}
          reply; verdicts are exported as [noc_slo_ok] gauges. *)
  series_interval_s : float;  (** Collector sampling period (s). *)
  series_window : int;  (** Ring-buffer points kept per series. *)
}

val default_config : config
(** [noc-serve.sock], no TCP, 2 domains, queue 64, no store, null
    telemetry, lint on, no metrics listener, {!Noc_obs.Slo.defaults},
    1 s series sampling over a 120-point window. *)

type t

val create : config -> t
(** Spawns the worker domains; does not open sockets yet.
    @raise Invalid_argument on a non-positive domain count or queue
    capacity. *)

val run : t -> unit
(** Open the listeners and serve until {!stop}; performs the full
    drain (including closing the telemetry sink) before returning.
    Ignores SIGPIPE process-wide. *)

val stop : t -> unit
(** Request a graceful drain.  Only sets an atomic flag and writes a
    self-pipe byte, so it is safe from a signal handler or another
    domain.  Idempotent. *)

val stopping : t -> bool

val stats_report : t -> string
(** The legacy text report served for {!Wire.Stats}: serve gauges
    (uptime, queue depth, in-flight, draining), store counters and hit
    rate, then every instrument in the {!Noc_obs.Metrics} registry
    (histograms as cumulative buckets).  Deprecated in favour of
    {!metrics_report}; kept one release. *)

val typed_stats : t -> Wire.stats
(** The typed statistics record behind {!Wire.Metrics}. *)

val metrics_report : t -> Wire.response
(** The full {!Wire.Metrics_report} reply: typed stats, registry
    snapshot with [noc_slo_ok] verdict gauges appended, series window,
    and SLO verdicts. *)
