(** The result of running one {!Job}: a status plus a flat, ordered
    (metric, value) list.  Wall time is carried for telemetry and
    summaries but excluded from {!result_hash}, so outcomes compare
    bit-identically across machines, domain counts and cache hits. *)

type status =
  | Done
  | Failed of string  (** The solver or design loading reported an error. *)
  | Timed_out  (** Exceeded the per-job time budget (classified after the
                   run; OCaml computations cannot be interrupted). *)
  | Cancelled  (** Skipped before starting — batch cancelled or deadline
                   already passed while queued. *)

type t = { status : status; metrics : (string * float) list; wall_ms : float }

val done_ : ?wall_ms:float -> (string * float) list -> t
val failed : ?wall_ms:float -> string -> t
val timed_out : wall_ms:float -> t
val cancelled : t

val result_hash : t -> string
(** MD5 hex of the canonical encoding of status + metrics (wall time
    excluded).  The determinism witness: sequential and 4-domain runs
    of the same job must produce equal hashes. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val metric : t -> string -> float option
val is_done : t -> bool
val pp : Format.formatter -> t -> unit
