(** noc-wire/1 client: what [noc_tool submit] and [serve-stats] use to
    talk to a running daemon.  Blocking, single-connection, and
    [result]-valued throughout — a dead socket is an expected error,
    not an exception. *)

type t

val connect : socket:string -> (t, string) result
(** Connect to the daemon's Unix-domain socket and verify its
    {!Wire.Hello} greeting (protocol version match). *)

val close : t -> unit

val request : t -> Wire.request -> (unit, string) result
val next_response : t -> (Wire.response, string) result

val ping : t -> (unit, string) result

val stats : t -> (Wire.stats, string) result
(** Typed daemon statistics ({!Wire.stats}) — the [stats] record of a
    {!Wire.Metrics} exchange. *)

val metrics : t -> (Wire.metrics_report, string) result
(** The full typed report: stats record, [noc-metrics/1] snapshot,
    [noc-series/1] window, and SLO verdicts. *)

val stats_text : t -> (string, string) result
[@@ocaml.deprecated "use Client.stats (typed) or Client.metrics"]
(** The legacy text report via {!Wire.Stats}.  Kept one release for
    pre-PR-8 servers; new code should use {!stats} or {!metrics}. *)

val submit_all :
  ?corr_prefix:string ->
  t ->
  Job.t list ->
  on_result:(int -> Job.t -> Wire.response -> unit) ->
  (Wire.response list, string) result
(** Submit every job (reply-matching id = list index) and collect one
    reply per job, invoking [on_result] in submission order regardless
    of completion order.  The returned list is in submission order.
    When [corr_prefix] is given, job [i] carries the correlation id
    ["<corr_prefix>-<i>"] into the daemon's spans and telemetry. *)
