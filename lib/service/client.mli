(** noc-wire/1 client: what [noc_tool submit] and [serve-stats] use to
    talk to a running daemon.  Blocking, single-connection, and
    [result]-valued throughout — a dead socket is an expected error,
    not an exception. *)

type t

val connect : socket:string -> (t, string) result
(** Connect to the daemon's Unix-domain socket and verify its
    {!Wire.Hello} greeting (protocol version match). *)

val close : t -> unit

val request : t -> Wire.request -> (unit, string) result
val next_response : t -> (Wire.response, string) result

val ping : t -> (unit, string) result
val stats : t -> (string, string) result
(** The daemon's text [/metrics]-style report. *)

val submit_all :
  t ->
  Job.t list ->
  on_result:(int -> Job.t -> Wire.response -> unit) ->
  (Wire.response list, string) result
(** Submit every job (correlation id = list index) and collect one
    reply per job, invoking [on_result] in submission order regardless
    of completion order.  The returned list is in submission order. *)
